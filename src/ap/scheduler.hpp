// Weakly-fair nondeterministic scheduler for Abstract Protocol processes.
//
// Execution rules (Section 3):
//   1. an action is executed only when its guard is true;
//   2. actions are executed one at a time;
//   3. an action whose guard is continuously true is eventually executed.
// Rule 3 (weak fairness) is realized by a rotating cursor over all actions;
// a seeded random policy is also available so property tests can explore
// many interleavings.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ap/channel.hpp"
#include "ap/process.hpp"
#include "util/rng.hpp"

namespace zmail::ap {

// One executed action, for traces and debugging.
struct TraceEntry {
  std::uint64_t step = 0;
  ProcessId process = kNoProcess;
  std::string action;
  std::string msg_type;  // empty for non-receive actions
  ProcessId msg_from = kNoProcess;
};

class Scheduler {
 public:
  enum class Policy { kRoundRobin, kRandom };

  explicit Scheduler(Policy policy = Policy::kRoundRobin,
                     std::uint64_t seed = 1);

  // Registers the process and returns its id.  The scheduler owns nothing;
  // callers keep ownership (processes usually live in a System object).
  ProcessId add_process(Process& p, std::string name);

  // Runs until no action is enabled or `max_steps` executed.
  // Returns the number of steps taken.
  std::uint64_t run(std::uint64_t max_steps = 1'000'000);

  // Executes exactly one enabled action; returns false when quiescent.
  bool step();

  // Channel from -> to (created on demand).
  Channel& channel(ProcessId from, ProcessId to);
  const Channel* find_channel(ProcessId from, ProcessId to) const;

  std::size_t process_count() const noexcept { return processes_.size(); }
  Process& process(ProcessId id) { return *processes_.at(id); }
  const Process& process(ProcessId id) const { return *processes_.at(id); }

  bool all_channels_empty() const noexcept;
  // All channels into `to` are empty (used by quiesce-style timeout guards).
  bool inbound_empty(ProcessId to) const noexcept;
  // All channels out of `from` are empty.
  bool outbound_empty(ProcessId from) const noexcept;
  std::size_t total_messages_in_flight() const noexcept;

  std::uint64_t steps_executed() const noexcept { return steps_; }
  std::uint64_t messages_sent() const noexcept { return messages_sent_; }

  void set_trace_enabled(bool enabled) noexcept { trace_enabled_ = enabled; }
  const std::vector<TraceEntry>& trace() const noexcept { return trace_; }

 private:
  friend class Process;
  void do_send(ProcessId from, ProcessId to, std::string type,
               crypto::Bytes payload);

  // (process index, action index) of every registered action, flattened.
  struct ActionRef {
    ProcessId pid;
    std::size_t action_index;
  };

  bool guard_enabled(const ActionRef& ref, ProcessId* matched_sender) const;
  void execute(const ActionRef& ref, ProcessId matched_sender);

  Policy policy_;
  Rng rng_;
  std::vector<Process*> processes_;
  std::map<std::pair<ProcessId, ProcessId>, Channel> channels_;
  std::vector<ActionRef> action_refs_;
  std::size_t cursor_ = 0;
  std::uint64_t steps_ = 0;
  std::uint64_t messages_sent_ = 0;
  bool trace_enabled_ = false;
  std::vector<TraceEntry> trace_;
};

// Read-only view of global state for timeout guards.
class GlobalView {
 public:
  explicit GlobalView(const Scheduler& s) noexcept : sched_(&s) {}

  bool all_channels_empty() const noexcept {
    return sched_->all_channels_empty();
  }
  bool inbound_empty(ProcessId to) const noexcept {
    return sched_->inbound_empty(to);
  }
  bool outbound_empty(ProcessId from) const noexcept {
    return sched_->outbound_empty(from);
  }
  const Scheduler& scheduler() const noexcept { return *sched_; }

 private:
  const Scheduler* sched_;
};

}  // namespace zmail::ap
