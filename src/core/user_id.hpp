// Strong per-ISP user identifier.
//
// Users are dense slots inside one ISP's Population, so a u32 index is the
// whole identity — the type exists to keep user slots from mixing silently
// with ISP indices, byte counts, and loop variables now that the facade is
// typed (mirrors IspId in core/config.hpp).  Construction from an index is
// implicit, like IspId, so `isp.user(3)` keeps reading naturally; getting
// the raw index back out is explicit (`slot()`).
//
// `kInvalidUser` is the "no user" sentinel (slot 0xFFFFFFFF): it marks
// unpaid sends in Outbound/PendingTransfer records, replacing the old
// size_t(-1) kNoUser.  On the WAL/wire, user ids keep their pre-UserId u64
// encoding (invalid <-> u64 max) so v1 logs and snapshots replay unchanged;
// use user_to_wire()/user_from_wire() at the boundary.
#pragma once

#include <cstddef>
#include <cstdint>

namespace zmail::core {

class UserId {
 public:
  using Slot = std::uint32_t;
  static constexpr Slot kInvalidSlot = 0xFFFFFFFFu;

  // Implicit from an index, like IspId: populations are dense and loops
  // hand out raw indices.  size_t(-1) (the historical kNoUser) truncates
  // to kInvalidSlot, which is exactly the sentinel.
  constexpr UserId(std::size_t slot = 0) noexcept
      : slot_(static_cast<Slot>(slot)) {}

  constexpr Slot slot() const noexcept { return slot_; }
  constexpr bool valid() const noexcept { return slot_ != kInvalidSlot; }

  friend constexpr bool operator==(UserId a, UserId b) noexcept {
    return a.slot_ == b.slot_;
  }
  friend constexpr bool operator!=(UserId a, UserId b) noexcept {
    return a.slot_ != b.slot_;
  }
  friend constexpr bool operator<(UserId a, UserId b) noexcept {
    return a.slot_ < b.slot_;
  }

 private:
  Slot slot_;
};

// "No user" sentinel (unpaid sends, unattributed transfers).
inline constexpr UserId kInvalidUser{
    static_cast<std::size_t>(UserId::kInvalidSlot)};

// WAL/wire boundary: user ids travel as u64 with u64-max meaning "none",
// the pre-UserId convention, so records logged before this type existed
// replay byte-for-byte.
constexpr std::uint64_t user_to_wire(UserId u) noexcept {
  return u.valid() ? u.slot() : ~std::uint64_t{0};
}
constexpr UserId user_from_wire(std::uint64_t w) noexcept {
  return w >= UserId::kInvalidSlot
             ? kInvalidUser
             : UserId(static_cast<std::size_t>(w));
}

}  // namespace zmail::core
