# Empty dependencies file for bench_e5_payment_overhead.
# This may be replaced when dependencies are built.
