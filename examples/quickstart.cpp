// Quickstart: the paper's bootstrap scenario — two compliant ISPs and the
// bank.  Alice (ISP 0) and Bob (ISP 1) exchange mail; every message moves
// exactly one e-penny from sender to receiver, the ISPs' credit arrays
// mirror each other, and a snapshot round verifies and settles the flows.
//
//   ./quickstart
#include <cstdio>

#include "core/system.hpp"
#include "util/table.hpp"

using namespace zmail;

int main() {
  core::ZmailParams params;
  params.n_isps = 2;
  params.users_per_isp = 2;
  params.initial_user_balance = 10;

  core::ZmailSystem sys(params, /*seed=*/2005);

  const net::EmailAddress alice = net::make_user_address(0, 0);
  const net::EmailAddress bob = net::make_user_address(1, 0);

  std::printf("Zmail quickstart: %s <-> %s\n\n", alice.str().c_str(),
              bob.str().c_str());

  // Alice sends Bob three messages; Bob replies once.
  sys.send_email(alice, bob, "Lunch?", "Noon at the usual place?");
  sys.send_email(alice, bob, "Agenda", "Attached below.");
  sys.send_email(alice, bob, "One more thing", "Bring the draft.");
  sys.send_email(bob, alice, "Re: Lunch?", "Noon works.");
  sys.run_for(sim::kMinute);

  Table balances({"user", "e-penny balance", "sent", "received(paid)"});
  for (std::size_t i = 0; i < 2; ++i) {
    const auto u = sys.isp(i).user(0);
    balances.add_row({net::make_user_address(i, 0).str(),
                      Table::num(u.balance), Table::num(u.lifetime_sent),
                      Table::num(u.lifetime_received_paid)});
  }
  balances.print("balances after 4 messages (started at 10)");

  std::printf("\ncredit arrays (each ISP's ledger toward the other):\n");
  std::printf("  isp0.credit[1] = %+lld   isp1.credit[0] = %+lld   (sum 0)\n",
              static_cast<long long>(sys.isp(0).credit()[1]),
              static_cast<long long>(sys.isp(1).credit()[0]));

  std::printf("\ne-pennies in the whole system: %lld (conserved: %s)\n",
              static_cast<long long>(sys.total_epennies()),
              sys.conservation_holds() ? "yes" : "NO");

  // A bank snapshot: requests, 10-minute quiesce, credit reports, pairwise
  // verification, bulk settlement.
  std::printf("\nrunning a bank snapshot round (Section 4.4)...\n");
  sys.start_snapshot();
  sys.run_for(30 * sim::kMinute);
  std::printf("  violations found: %zu (honest world)\n",
              sys.bank().last_violations().size());
  std::printf("  settlement: isp0 account %s, isp1 account %s\n",
              sys.bank().account(0).str().c_str(),
              sys.bank().account(1).str().c_str());
  std::printf("  (net mail flow 0 -> 1 was 2 messages, so $0.02 moved)\n");
  return 0;
}
