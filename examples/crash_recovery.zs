# Crash-recovery smoke: both settlement parties die mid-scenario and come
# back from their durable store (snapshot + WAL replay).  Run with
#
#   ./scenario_runner examples/crash_recovery.zs --store-dir /tmp/zmail_crash
#
# The `crash` verb refuses to run without --store-dir: with no durable
# state there is nothing to recover from.
# retry=1 reliable=1: crashes destroy in-flight datagrams, so the ISP<->bank
# wires must retransmit and paid mail must ride the ack'd transport.
world isps=3 users=4 balance=100 limit=200 seed=2718 retry=1 reliable=1

# Build up real state: paid mail in both directions, a top-up, a day roll.
send 0.0 1.1 subject hello
send 1.1 2.2 subject hola
send 2.3 0.2 subject hi
run 30m
buy 0.2 25
day
run 30m

# First settlement round, which also checkpoints every party.
snapshot
run 30m

# Kill an ISP for 20 minutes while mail keeps flowing toward it.
crash 1 20m
send 0.0 1.1 subject while-you-were-out
run 1h
expect conservation

# Now the bank itself dies across a trade and a settlement round.
crash bank 20m
sell 0.2 5
run 1h
snapshot
run 30m

expect violations 0
expect conservation
print balances
