// Failure injection and randomized fuzzing of the protocol surfaces.
//
// Two layers:
//   1. wire fuzz — every handler that accepts bytes from the network is
//      fed random garbage, truncations, and bit-flipped real messages; it
//      must never crash and never change monetary state;
//   2. operation fuzz — long random sequences of API operations (sends,
//      trades, snapshots, day rollovers, compliance flips, quiesces) with
//      the global invariants checked throughout.
#include <gtest/gtest.h>

#include "core/invariants.hpp"
#include "core/system.hpp"
#include "net/faults.hpp"

namespace zmail::core {
namespace {

net::EmailAddress user(std::size_t i, std::size_t u) {
  return net::make_user_address(i, u);
}

// --- Layer 1: wire fuzz -------------------------------------------------------

class WireFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzzTest, GarbageNeverCrashesOrMovesMoney) {
  Rng rng(GetParam());
  ZmailParams p;
  p.n_isps = 2;
  p.users_per_isp = 2;
  Rng key_rng(GetParam() ^ 0xFF);
  const crypto::KeyPair keys = crypto::generate_keypair(key_rng);
  Isp isp(0, p, keys.pub, 5);
  Bank bank(p, keys, 6);

  const EPenny isp_held = isp.epennies_held();
  const Money bank_account = bank.account(0);

  for (int i = 0; i < 300; ++i) {
    crypto::Bytes junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    switch (rng.next_below(6)) {
      case 0: isp.on_email(1, junk); break;
      case 1: isp.on_buyreply(junk); break;
      case 2: isp.on_sellreply(junk); break;
      case 3: isp.on_request(junk); break;
      case 4: (void)bank.on_buy(0, junk); break;
      case 5: bank.on_reply(0, junk); break;
    }
  }
  EXPECT_EQ(isp.epennies_held(), isp_held);
  EXPECT_EQ(bank.account(0), bank_account);
  EXPECT_FALSE(isp.in_quiesce());
  EXPECT_GT(isp.metrics().bad_envelopes, 0u);
}

TEST_P(WireFuzzTest, BitFlippedRealMessagesRejected) {
  Rng rng(GetParam() + 1'000);
  ZmailParams p;
  p.n_isps = 2;
  p.users_per_isp = 2;
  p.minavail = 50;
  p.maxavail = 200;
  Rng key_rng(GetParam() ^ 0xAA);
  const crypto::KeyPair keys = crypto::generate_keypair(key_rng);
  Isp isp(0, p, keys.pub, 7);
  Bank bank(p, keys, 8);

  // Produce one real buy, capture its reply, then flip bits in copies.
  isp.set_avail(10);
  isp.maybe_trade_with_bank();
  crypto::Bytes reply;
  for (const Outbound& o : isp.take_outbox()) reply = bank.on_buy(0, o.payload);
  ASSERT_FALSE(reply.empty());

  for (int i = 0; i < 200; ++i) {
    crypto::Bytes mutated = reply;
    const std::size_t byte = rng.next_below(mutated.size());
    mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    isp.on_buyreply(mutated);
    EXPECT_EQ(isp.avail(), 10) << "tampered reply changed state";
  }
  // The pristine reply still works exactly once afterwards.
  isp.on_buyreply(reply);
  EXPECT_EQ(isp.avail(), 200);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 6));

// --- Layer 2: operation fuzz ---------------------------------------------------

class OpFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OpFuzzTest, InvariantsSurviveRandomOperationSequences) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  ZmailParams p;
  p.n_isps = 4;
  p.users_per_isp = 5;
  p.initial_user_balance = 60;
  p.default_daily_limit = 40;
  p.minavail = 200;
  p.maxavail = 2'000;
  p.initial_avail = 1'000;
  p.compliant = {true, true, true, false};
  ZmailSystem sys(p, seed);
  Money money_total = sys.total_real_money();

  auto random_user = [&](bool compliant_only) {
    for (;;) {
      const std::size_t i = rng.next_below(p.n_isps);
      if (compliant_only && !sys.is_compliant(i)) continue;
      return user(i, rng.next_below(p.users_per_isp));
    }
  };

  for (int op = 0; op < 400; ++op) {
    switch (rng.next_below(10)) {
      case 0:
      case 1:
      case 2:  // plain send (any sender)
        sys.send_email(random_user(false), random_user(false), "f", "b",
                       rng.bernoulli(0.2) ? net::MailClass::kSpam
                                          : net::MailClass::kLegitimate);
        break;
      case 3: {  // multi-recipient send
        net::EmailMessage msg = net::make_email(random_user(false),
                                                random_user(false), "m", "b");
        msg.to.push_back(random_user(false));
        msg.to.push_back(random_user(false));
        sys.send_email_multi(msg);
        break;
      }
      case 4:
        sys.buy_epennies(random_user(true), rng.uniform_int(1, 30));
        break;
      case 5:
        sys.sell_epennies(random_user(true), rng.uniform_int(1, 30));
        break;
      case 6:  // short idle
        sys.run_for(static_cast<sim::Duration>(
            rng.next_below(static_cast<std::uint64_t>(sim::kMinute))));
        break;
      case 7:  // snapshot (possibly overlapping quiesce windows)
        sys.start_snapshot();
        sys.run_for(rng.bernoulli(0.5) ? 15 * sim::kMinute : sim::kMinute);
        break;
      case 8:  // day rollover
        for (std::size_t i = 0; i < p.n_isps; ++i)
          if (sys.is_compliant(i)) sys.isp(i).end_of_day();
        break;
      case 9:  // drain fully, then occasionally flip the legacy ISP
        sys.run_for(30 * sim::kMinute);
        if (!sys.is_compliant(3) && sys.epennies_in_flight() == 0 &&
            rng.bernoulli(0.3)) {
          sys.make_compliant(3);
          // The flip brings ISP 3's users' real-money accounts (and its
          // till) into the measured economy.
          money_total = sys.total_real_money();
        }
        break;
    }

    // Cheap invariants on every step.
    for (std::size_t i = 0; i < p.n_isps; ++i) {
      if (!sys.is_compliant(i)) continue;
      ASSERT_GE(sys.isp(i).avail(), 0) << "seed " << seed << " op " << op;
      for (std::size_t u = 0; u < p.users_per_isp; ++u)
        ASSERT_GE(sys.isp(i).user(u).balance, 0)
            << "seed " << seed << " op " << op;
    }
  }

  // Full drain, then the global invariants.
  sys.run_for(2 * sim::kHour);
  EXPECT_EQ(sys.epennies_in_flight(), 0) << "seed " << seed;
  EXPECT_TRUE(sys.conservation_holds()) << "seed " << seed;
  EXPECT_EQ(sys.total_real_money(), money_total) << "seed " << seed;
  EXPECT_EQ(sys.bank().metrics().inconsistent_pairs_found, 0u)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpFuzzTest,
                         ::testing::Range<std::uint64_t>(10, 26));

// --- Layer 3: corruption round trip over every wire type ----------------------
//
// A FaultInjector bit-flips half and truncates a quarter of ALL datagrams —
// emails on the reliable transport, plain emails to/from the legacy ISP,
// buy/sell exchanges, snapshot requests and credit reports, acks.  Every
// parse/unseal path sees mangled input mid-protocol; the hardened
// configuration must neither crash nor leak a single e-penny, and once the
// network heals every paid email must have landed.

class CorruptionRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CorruptionRoundTripTest, MangledWiresNeverCrashOrLeak) {
  const std::uint64_t seed = GetParam();
  ZmailParams p;
  p.n_isps = 3;
  p.users_per_isp = 3;
  p.initial_user_balance = 500;
  p.default_daily_limit = 1'000;
  p.minavail = 50;
  p.maxavail = 200;
  p.initial_avail = 100;
  p.compliant = {true, true, false};  // a legacy ISP keeps kMsgEmail in play
  p.retry.enabled = true;
  p.reliable_email_transport = true;
  ZmailSystem sys(p, seed);
  sys.enable_bank_trading(sim::kMinute);

  net::FaultPlan plan;
  plan.rates.corrupt = 0.5;
  plan.rates.truncate = 0.25;
  net::FaultInjector inj(plan, seed ^ 0xC0FFEE);
  sys.attach_faults(&inj);

  InvariantAuditor auditor(sys);
  Rng rng(seed + 3);
  for (int i = 0; i < 40; ++i) {
    // Paid compliant<->compliant, free compliant->legacy, legacy->compliant.
    sys.send_email(user(0, rng.next_below(3)), user(1, rng.next_below(3)),
                   "x", "p" + std::to_string(i));
    if (i % 4 == 0)
      sys.send_email(user(0, 0), user(2, 0), "x", "to-legacy");
    if (i % 4 == 2)
      sys.send_email(user(2, 0), user(1, 0), "x", "from-legacy");
    // Force bank trades so buy/sell wires cross the hostile network too.
    if (i % 8 == 1) sys.buy_epennies(user(0, 0), 60);
    if (i % 8 == 5) sys.sell_epennies(user(1, 0), 30);
    sys.run_for(sim::kMinute);
  }
  sys.start_snapshot();  // request/reply wires get mangled as well
  sys.run_for(sim::kHour);

  // Heal and drain: recovery must finish the job.
  sys.attach_faults(nullptr);
  sys.run_for(2 * sim::kHour);

  EXPECT_GT(inj.counters().corrupted + inj.counters().truncated, 0u);
  const IspMetrics m = sys.total_isp_metrics();
  EXPECT_EQ(m.emails_received_compliant + m.emails_refunded,
            m.emails_sent_compliant)
      << "seed " << seed;
  EXPECT_EQ(sys.pending_transfers(), 0u) << "seed " << seed;
  EXPECT_TRUE(sys.conservation_holds()) << "seed " << seed;
  auditor.check_now();
  EXPECT_TRUE(auditor.report().ok())
      << "seed " << seed << ": "
      << (auditor.report().messages.empty()
              ? ""
              : auditor.report().messages.front());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionRoundTripTest,
                         ::testing::Range<std::uint64_t>(40, 46));

}  // namespace
}  // namespace zmail::core
