#include "sim/simulator.hpp"

#include <cinttypes>
#include <cstdio>

namespace zmail::sim {

std::string format_time(SimTime t) {
  const std::int64_t days = t / kDay;
  t %= kDay;
  const std::int64_t hours = t / kHour;
  t %= kHour;
  const std::int64_t minutes = t / kMinute;
  t %= kMinute;
  const std::int64_t seconds = t / kSecond;
  const std::int64_t millis = (t % kSecond) / kMillisecond;
  char buf[64];
  std::snprintf(buf, sizeof buf,
                "%" PRId64 "d %02" PRId64 ":%02" PRId64 ":%02" PRId64
                ".%03" PRId64,
                days, hours, minutes, seconds, millis);
  return buf;
}

void Simulator::schedule_at(SimTime at, EventFn fn) {
  ZMAIL_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

void Simulator::schedule_after(Duration delay, EventFn fn) {
  ZMAIL_ASSERT(delay >= 0);
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_every(Duration period, std::function<bool()> fn,
                               SimTime first) {
  ZMAIL_ASSERT(period > 0);
  const SimTime start = first >= 0 ? first : now_ + period;
  auto task = std::make_shared<RecurringTask>(RecurringTask{period, std::move(fn)});
  schedule_at(start, [this, task] { run_recurring(task); });
}

void Simulator::run_recurring(const std::shared_ptr<RecurringTask>& task) {
  if (task->fn()) schedule_after(task->period, [this, task] { run_recurring(task); });
}

bool Simulator::step(SimTime until) {
  if (queue_.empty() || queue_.top().at > until) return false;
  Event e = queue_.top();
  queue_.pop();
  now_ = e.at;
  ++executed_;
  e.fn();
  return true;
}

std::uint64_t Simulator::run(SimTime until) {
  std::uint64_t n = 0;
  while (step(until)) ++n;
  // When a finite horizon was requested, the clock advances to it even if
  // the queue drained early; an open-ended run leaves the clock at the last
  // event.
  if (until != INT64_MAX && now_ < until) now_ = until;
  return n;
}

}  // namespace zmail::sim
