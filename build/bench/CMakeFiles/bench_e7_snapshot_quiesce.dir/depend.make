# Empty dependencies file for bench_e7_snapshot_quiesce.
# This may be replaced when dependencies are built.
