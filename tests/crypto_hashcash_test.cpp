#include "crypto/hashcash.hpp"

#include <gtest/gtest.h>

namespace zmail::crypto {
namespace {

TEST(Hashcash, SolveAndVerify) {
  const PowStamp stamp = pow_solve("alice@isp0.example", 10);
  EXPECT_TRUE(pow_verify(stamp));
  EXPECT_EQ(stamp.resource, "alice@isp0.example");
  EXPECT_EQ(stamp.difficulty_bits, 10);
}

TEST(Hashcash, ZeroDifficultyIsFree) {
  std::uint64_t attempts = 0;
  const PowStamp stamp = pow_solve("x", 0, 0, &attempts);
  EXPECT_EQ(attempts, 1u);
  EXPECT_TRUE(pow_verify(stamp));
}

TEST(Hashcash, WrongResourceFailsVerification) {
  PowStamp stamp = pow_solve("bob@isp1.example", 12);
  stamp.resource = "mallory@isp2.example";
  EXPECT_FALSE(pow_verify(stamp));
}

TEST(Hashcash, RaisingDifficultyInvalidatesStamp) {
  PowStamp stamp = pow_solve("carol", 8);
  // A stamp solved for 8 bits almost surely fails at 24 bits.
  stamp.difficulty_bits = 24;
  EXPECT_FALSE(pow_verify(stamp));
}

TEST(Hashcash, ExpectedWorkGrowsWithDifficulty) {
  // Average attempts over several puzzles should grow roughly 2^k.
  auto avg_attempts = [](int bits) {
    std::uint64_t total = 0;
    for (int i = 0; i < 8; ++i) {
      std::uint64_t attempts = 0;
      pow_solve("r" + std::to_string(i), bits,
                static_cast<std::uint64_t>(i) << 32, &attempts);
      total += attempts;
    }
    return static_cast<double>(total) / 8.0;
  };
  const double easy = avg_attempts(4);
  const double hard = avg_attempts(12);
  EXPECT_GT(hard, easy * 8);  // 2^8 = 256 expected; demand at least 8x
}

TEST(Hashcash, StartCounterChangesSolution) {
  const PowStamp a = pow_solve("same", 8, 0);
  const PowStamp b = pow_solve("same", 8, a.counter + 1);
  EXPECT_NE(a.counter, b.counter);
  EXPECT_TRUE(pow_verify(a));
  EXPECT_TRUE(pow_verify(b));
}

}  // namespace
}  // namespace zmail::crypto
