# Empty dependencies file for net_email_test.
# This may be replaced when dependencies are built.
