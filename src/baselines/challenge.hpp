// Human challenge-response baseline (paper Section 2.3, "human effort based
// approaches": Mailblocks, Active Spam Killer).
//
// First contact from an unknown sender is held and a CAPTCHA-style
// challenge is returned; a correct response whitelists the sender.  The
// model tracks the costs the paper criticizes: human seconds spent on
// challenges, delivery latency for held mail, and legitimate mail lost when
// senders never respond ("a challenge can be perceived as rude").
#pragma once

#include <cstdint>
#include <set>
#include <string>

#include "net/email.hpp"
#include "util/rng.hpp"

namespace zmail::baselines {

struct ChallengeParams {
  double human_response_prob = 0.9;   // legit senders who bother to answer
  double spammer_solve_prob = 0.01;   // automation beating the CAPTCHA
  double human_seconds_per_challenge = 12.0;
  double held_latency_seconds = 3600.0;  // typical round-trip until answered
};

struct ChallengeStats {
  std::uint64_t delivered_whitelisted = 0;  // known sender, no challenge
  std::uint64_t challenges_issued = 0;
  std::uint64_t delivered_after_challenge = 0;
  std::uint64_t lost_no_response = 0;       // legit mail dropped
  std::uint64_t spam_delivered = 0;         // spammer beat the challenge
  std::uint64_t spam_blocked = 0;
  double human_seconds = 0.0;
  double total_latency_seconds = 0.0;
};

class ChallengeResponse {
 public:
  ChallengeResponse(const ChallengeParams& params, zmail::Rng rng)
      : params_(params), rng_(rng) {}

  // Processes one incoming message; `truth_spam` drives the sender's
  // response behaviour.  Returns true when the mail is (eventually)
  // delivered.
  bool process(const net::EmailAddress& sender, bool truth_spam);

  const ChallengeStats& stats() const noexcept { return stats_; }
  std::size_t whitelist_size() const noexcept { return whitelist_.size(); }

 private:
  ChallengeParams params_;
  zmail::Rng rng_;
  std::set<std::string> whitelist_;
  ChallengeStats stats_;
};

}  // namespace zmail::baselines
