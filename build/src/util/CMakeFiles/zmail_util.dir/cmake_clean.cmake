file(REMOVE_RECURSE
  "CMakeFiles/zmail_util.dir/log.cpp.o"
  "CMakeFiles/zmail_util.dir/log.cpp.o.d"
  "CMakeFiles/zmail_util.dir/money.cpp.o"
  "CMakeFiles/zmail_util.dir/money.cpp.o.d"
  "CMakeFiles/zmail_util.dir/rng.cpp.o"
  "CMakeFiles/zmail_util.dir/rng.cpp.o.d"
  "CMakeFiles/zmail_util.dir/stats.cpp.o"
  "CMakeFiles/zmail_util.dir/stats.cpp.o.d"
  "CMakeFiles/zmail_util.dir/table.cpp.o"
  "CMakeFiles/zmail_util.dir/table.cpp.o.d"
  "libzmail_util.a"
  "libzmail_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zmail_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
