// R1 — chaos fault sweep: zero-sum safety under a hostile network.
//
// The paper's money argument (Sections 4.1-4.4) implicitly assumes the
// transport delivers every message.  This bench drops that assumption: a
// deterministic FaultInjector loses, duplicates, reorders, corrupts, and
// truncates datagrams, cuts host pairs apart, and crashes hosts outright,
// while the hardened configuration (ISP<->bank retry/backoff + the reliable
// email transport) has to keep the books straight.
//
// Regenerates:
//   R1.a  fault-rate grid x seeds: 100% of paid emails delivered or
//         refunded, zero invariant violations, nothing left in flight
//   R1.b  a network partition between two ISPs: mail queued while the link
//         is cut, fully recovered after the heal
//   R1.c  host crashes (one ISP, then the bank) with in-flight loss:
//         retransmits and trade retries recover every message
//
// `--audit` additionally runs the InvariantAuditor *continuously* (every 10
// simulated minutes) inside each replica instead of only at the end.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/invariants.hpp"
#include "core/system.hpp"
#include "net/address.hpp"
#include "net/faults.hpp"
#include "util/table.hpp"

using namespace zmail;

namespace {

// The hardened configuration: everything the fault model needs switched on.
core::ZmailParams hardened() {
  core::ZmailParams p;
  p.n_isps = 3;
  p.users_per_isp = 6;
  p.initial_user_balance = 10'000;
  p.default_daily_limit = 100'000;
  p.record_inboxes = false;
  p.retry.enabled = true;             // ISP<->bank wires retransmit on timeout
  p.reliable_email_transport = true;  // paid emails ride the ack/ARQ transport
  p.email_max_retransmits = 0;        // retry forever: no abandons expected
  return p;
}

struct Scenario {
  net::FaultPlan plan;
  int sends = 360;  // one inter-ISP email per simulated minute
  bool audit_continuous = false;
};

// One replica: `sends` minutes of cross-ISP mail with bank trading and two
// snapshot rounds, all under the scenario's fault plan, then a drain window
// (faults still active) that must leave zero transfers pending.
sweep::MetricBag run_chaos(const Scenario& sc, std::uint64_t seed) {
  core::ZmailSystem sys(hardened(), seed);
  const core::ZmailParams& p = sys.params();
  sys.enable_bank_trading();
  const sim::Duration traffic_span =
      static_cast<sim::Duration>(sc.sends) * sim::kMinute;
  sys.enable_periodic_snapshots(traffic_span / 2);

  // Independent fault stream: the same (plan, seed) replays bit-identically.
  net::FaultInjector inj(sc.plan, seed ^ 0x5DEECE66Dull);
  sys.attach_faults(&inj);

  core::InvariantAuditor auditor(sys);
  if (sc.audit_continuous) auditor.run_continuously(10 * sim::kMinute);

  Rng traffic(seed + 17);
  for (int i = 0; i < sc.sends; ++i) {
    const std::size_t src = traffic.next_below(p.n_isps);
    std::size_t dst = traffic.next_below(p.n_isps - 1);
    if (dst >= src) ++dst;
    sys.send_email(net::make_user_address(src, traffic.next_below(p.users_per_isp)),
                   net::make_user_address(dst, traffic.next_below(p.users_per_isp)),
                   "chaos", "m" + std::to_string(i));
    sys.run_for(sim::kMinute);
  }

  // Drain with the faults still injecting: recovery has to work under fire.
  sys.run_for(sim::kHour);
  for (int k = 0; k < 12 && sys.pending_transfers() > 0; ++k)
    sys.run_for(15 * sim::kMinute);
  sys.attach_faults(nullptr);

  auditor.check_now();
  if (!auditor.report().ok())
    for (const std::string& msg : auditor.report().messages)
      std::fprintf(stderr, "r1 seed=%llu: INVARIANT: %s\n",
                   static_cast<unsigned long long>(seed), msg.c_str());

  sweep::MetricBag bag;
  const core::IspMetrics m = sys.total_isp_metrics();
  bag.count("sent", static_cast<double>(m.emails_sent_compliant));
  bag.count("received", static_cast<double>(m.emails_received_compliant));
  bag.count("refunded", static_cast<double>(m.emails_refunded));
  bag.count("retransmitted", static_cast<double>(m.emails_retransmitted));
  bag.count("dup_dropped", static_cast<double>(m.duplicate_emails_dropped));
  bag.count("bank_retries",
            static_cast<double>(m.bank_retries + m.report_retries));
  bag.count("pending", static_cast<double>(sys.pending_transfers()));
  bag.count("violations", static_cast<double>(auditor.report().violations));
  bag.count("replays_absorbed",
            static_cast<double>(auditor.report().replays_absorbed));
  const net::FaultCounters& fc = inj.counters();
  bag.count("injected", static_cast<double>(fc.total_injected()));
  bag.count("dropped", static_cast<double>(fc.dropped));
  bag.count("duplicated", static_cast<double>(fc.duplicated));
  bag.count("corrupted", static_cast<double>(fc.corrupted));
  bag.count("partitioned", static_cast<double>(fc.partitioned));
  bag.count("outage_lost", static_cast<double>(fc.outage_lost));
  return bag;
}

struct SectionVerdict {
  bool accounted = true;   // received + refunded == sent at every point
  bool drained = true;     // pending == 0 at every point
  bool clean = true;       // zero auditor violations at every point
};

// Prints one row per sweep point and folds the acceptance booleans.
SectionVerdict print_sweep(const sweep::SweepResult& res,
                           const std::string& title) {
  Table t({"scenario", "paid sent", "delivered", "refunded", "retransmits",
           "dups dropped", "trade retries", "faults injected", "violations"});
  SectionVerdict v;
  for (const auto& pr : res.points) {
    const auto& b = pr.merged;
    if (b.counter("received") + b.counter("refunded") != b.counter("sent"))
      v.accounted = false;
    if (b.counter("pending") != 0) v.drained = false;
    if (b.counter("violations") != 0) v.clean = false;
    t.add_row({pr.point.label, Table::num(b.counter("sent"), 0),
               Table::num(b.counter("received"), 0),
               Table::num(b.counter("refunded"), 0),
               Table::num(b.counter("retransmitted"), 0),
               Table::num(b.counter("dup_dropped"), 0),
               Table::num(b.counter("bank_retries"), 0),
               Table::num(b.counter("injected"), 0),
               Table::num(b.counter("violations"), 0)});
  }
  t.print(title);
  return v;
}

sweep::SweepOptions sweep_opts(const bench::Options& opt, std::size_t replicas) {
  sweep::SweepOptions so;
  so.base_seed = opt.seed;
  so.threads = opt.threads;
  so.replicas = std::max(opt.replicas, replicas);
  return so;
}

void r1a_rates(bench::Bench& harness) {
  const bench::Options& opt = harness.options();
  const auto pt = [](std::string label, double drop, double dup, double corrupt,
                     double truncate = 0.0) {
    return sweep::Point{std::move(label),
                        {{"drop", drop},
                         {"dup", dup},
                         {"corrupt", corrupt},
                         {"truncate", truncate}}};
  };
  std::vector<sweep::Point> grid = {
      pt("fault-free", 0, 0, 0),
      pt("drop=5%", 0.05, 0, 0),
      pt("dup=5%", 0, 0.05, 0),
      pt("corrupt=1%", 0, 0, 0.01),
      pt("drop=5% dup=5% corrupt=1%", 0.05, 0.05, 0.01),
  };
  if (!opt.smoke) {
    grid.push_back(pt("truncate=1%", 0, 0, 0, 0.01));
    grid.push_back(pt("drop=20%", 0.20, 0, 0));
  }

  // The acceptance point must hold over >= 3 independent seeds.
  const auto so = sweep_opts(opt, opt.smoke ? 1 : 3);
  const int sends = opt.smoke ? 90 : 360;
  const sweep::SweepResult res = harness.run_sweep(
      "r1a_rates", grid, so,
      [&](const sweep::Point& q, std::uint64_t seed, std::size_t) {
        Scenario sc;
        sc.sends = sends;
        sc.audit_continuous = opt.audit;
        sc.plan.rates.drop = q.param("drop");
        sc.plan.rates.duplicate = q.param("dup");
        sc.plan.rates.corrupt = q.param("corrupt");
        sc.plan.rates.truncate = q.param("truncate");
        return run_chaos(sc, seed);
      });

  const SectionVerdict v = print_sweep(
      res, "R1.a  fault-rate grid (" + std::to_string(so.replicas) +
               " seed(s) per point)");
  bench::check(v.accounted,
               "every paid email is delivered or refunded at every fault rate");
  bench::check(v.drained, "no transfer is left pending after the drain");
  bench::check(v.clean, "the invariant auditor found zero violations");

  const auto& clean_run = res.points.front().merged;
  bench::check(clean_run.counter("retransmitted") == 0 &&
                   clean_run.counter("refunded") == 0,
               "the fault-free point never retransmits or refunds");
  bool injected = true;
  for (std::size_t i = 1; i < res.points.size(); ++i)
    if (res.points[i].merged.counter("injected") == 0) injected = false;
  bench::check(injected, "every faulty point actually injected faults");
}

void r1b_partition(bench::Bench& harness) {
  const bench::Options& opt = harness.options();
  const int sends = opt.smoke ? 120 : 360;
  const sim::Duration span =
      static_cast<sim::Duration>(sends) * sim::kMinute;

  const sweep::SweepResult res = harness.run_sweep(
      "r1b_partition", {sweep::Point{"isp0 <-> isp1 cut for span/4", {}}},
      sweep_opts(opt, opt.smoke ? 1 : 3),
      [&](const sweep::Point&, std::uint64_t seed, std::size_t) {
        Scenario sc;
        sc.sends = sends;
        sc.audit_continuous = opt.audit;
        sc.plan.partitions.push_back(net::Partition{0, 1, span / 4, span / 2});
        return run_chaos(sc, seed);
      });

  const SectionVerdict v = print_sweep(res, "R1.b  partition and heal");
  const auto& b = res.points.front().merged;
  bench::check(b.counter("partitioned") > 0,
               "the partition swallowed live traffic");
  bench::check(v.accounted && v.drained,
               "every email queued across the partition lands after the heal");
  bench::check(v.clean, "no invariant violated by the partition");
}

void r1c_crashes(bench::Bench& harness) {
  const bench::Options& opt = harness.options();
  const int sends = opt.smoke ? 120 : 360;
  const sim::Duration span =
      static_cast<sim::Duration>(sends) * sim::kMinute;
  const net::HostId bank_host = hardened().n_isps;

  const sweep::SweepResult res = harness.run_sweep(
      "r1c_crashes", {sweep::Point{"isp1 crash, then bank crash", {}}},
      sweep_opts(opt, opt.smoke ? 1 : 3),
      [&](const sweep::Point&, std::uint64_t seed, std::size_t) {
        Scenario sc;
        sc.sends = sends;
        sc.audit_continuous = opt.audit;
        // Crashes lose in-flight datagrams (the harsh model).
        sc.plan.outage_preserves_inflight = false;
        sc.plan.outages.push_back(
            net::HostOutage{1, span / 4, span / 4 + span / 8});
        sc.plan.outages.push_back(
            net::HostOutage{bank_host, 5 * span / 8, 3 * span / 4});
        return run_chaos(sc, seed);
      });

  const SectionVerdict v = print_sweep(res, "R1.c  host crash and restart");
  const auto& b = res.points.front().merged;
  bench::check(b.counter("outage_lost") > 0,
               "the crashes really destroyed in-flight datagrams");
  bench::check(v.accounted && v.drained,
               "every email is delivered or refunded across both crashes");
  bench::check(v.clean, "no invariant violated by the crashes");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("r1_fault_sweep", argc, argv);
  std::printf("=== R1: chaos fault sweep ===\n");
  r1a_rates(harness);
  r1b_partition(harness);
  r1c_crashes(harness);
  return harness.finish();
}
