#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace zmail::net {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  Network net_{sim_, Rng(5), LatencyModel{10 * sim::kMillisecond,
                                          5 * sim::kMillisecond}};
};

TEST_F(NetworkTest, DeliversToRegisteredHandler) {
  std::vector<std::string> got;
  const HostId a = net_.add_host("a", [](const Datagram&) {});
  const HostId b = net_.add_host(
      "b", [&got](const Datagram& d) { got.push_back(d.type); });
  net_.send(a, b, "email", {1, 2, 3});
  sim_.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "email");
}

TEST_F(NetworkTest, DeliveryTakesAtLeastBaseLatency) {
  sim::SimTime delivered_at = -1;
  const HostId a = net_.add_host("a", [](const Datagram&) {});
  const HostId b = net_.add_host(
      "b", [&](const Datagram&) { delivered_at = sim_.now(); });
  net_.send(a, b, "x", {});
  sim_.run();
  EXPECT_GE(delivered_at, 10 * sim::kMillisecond);
}

TEST_F(NetworkTest, PerPairFifoUnderJitter) {
  std::vector<std::uint8_t> order;
  const HostId a = net_.add_host("a", [](const Datagram&) {});
  const HostId b = net_.add_host("b", [&order](const Datagram& d) {
    order.push_back(d.payload.at(0));
  });
  for (std::uint8_t i = 0; i < 50; ++i) net_.send(a, b, "m", {i});
  sim_.run();
  ASSERT_EQ(order.size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST_F(NetworkTest, CountsDatagramsAndBytes) {
  const HostId a = net_.add_host("a", [](const Datagram&) {});
  const HostId b = net_.add_host("b", [](const Datagram&) {});
  net_.send(a, b, "t", crypto::Bytes(100, 0));
  net_.send(b, a, "t", crypto::Bytes(50, 0));
  EXPECT_EQ(net_.datagrams_sent(), 2u);
  EXPECT_GT(net_.bytes_sent(), 150u);
  EXPECT_GT(net_.bytes_sent_to(b), 100u);
  EXPECT_GT(net_.bytes_sent_to(a), 50u);
  EXPECT_LT(net_.bytes_sent_to(a), net_.bytes_sent_to(b));
}

TEST_F(NetworkTest, MxResolution) {
  const HostId a = net_.add_host("mail.a", [](const Datagram&) {});
  net_.bind_domain("a.example", a);
  EXPECT_EQ(net_.resolve("a.example"), a);
  EXPECT_EQ(net_.resolve("unknown.example"), kNoHost);
}

TEST_F(NetworkTest, HostNames) {
  const HostId a = net_.add_host("alpha", [](const Datagram&) {});
  EXPECT_EQ(net_.host_name(a), "alpha");
  EXPECT_EQ(net_.host_count(), 1u);
}

TEST_F(NetworkTest, SelfSendWorks) {
  int got = 0;
  HostId a_id = kNoHost;
  a_id = net_.add_host("a", [&](const Datagram& d) {
    ++got;
    EXPECT_EQ(d.from, a_id);
  });
  net_.send(a_id, a_id, "loop", {});
  sim_.run();
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace zmail::net
