file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_payment_overhead.dir/bench_e5_payment_overhead.cpp.o"
  "CMakeFiles/bench_e5_payment_overhead.dir/bench_e5_payment_overhead.cpp.o.d"
  "bench_e5_payment_overhead"
  "bench_e5_payment_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_payment_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
