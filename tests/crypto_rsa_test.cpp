#include "crypto/rsa.hpp"

#include <gtest/gtest.h>

#include "crypto/hmac.hpp"
#include "crypto/primes.hpp"

namespace zmail::crypto {
namespace {

class RsaTest : public ::testing::Test {
 protected:
  zmail::Rng rng_{2024};
  KeyPair keys_ = generate_keypair(rng_);
};

TEST_F(RsaTest, KeypairIsConsistent) {
  EXPECT_EQ(keys_.pub.n, keys_.priv.n);
  EXPECT_EQ(keys_.pub.exp, 65537u);
  EXPECT_GT(keys_.pub.n, 1ULL << 60);  // 62-bit modulus by default
}

TEST_F(RsaTest, RawRsaRoundTripsBothDirections) {
  for (std::uint64_t m : {0ULL, 1ULL, 42ULL, 123456789ULL}) {
    EXPECT_EQ(rsa_apply(keys_.priv, rsa_apply(keys_.pub, m)), m);
    EXPECT_EQ(rsa_apply(keys_.pub, rsa_apply(keys_.priv, m)), m);
  }
}

TEST_F(RsaTest, NcrDcrRoundTripPublicToPrivate) {
  const Bytes plain = from_string("buy 500 e-pennies, nonce 17");
  const Envelope env = ncr(keys_.pub, plain, rng_);
  const auto out = dcr(keys_.priv, env);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, plain);
}

TEST_F(RsaTest, NcrDcrRoundTripPrivateToPublic) {
  // The bank seals replies with its private key; anyone with B_b reads them.
  const Bytes plain = from_string("buyreply nr|true");
  const Envelope env = ncr(keys_.priv, plain, rng_);
  const auto out = dcr(keys_.pub, env);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, plain);
}

TEST_F(RsaTest, EmptyPlaintextSupported) {
  const Envelope env = ncr(keys_.pub, Bytes{}, rng_);
  const auto out = dcr(keys_.priv, env);
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST_F(RsaTest, WrongKeyFailsMac) {
  zmail::Rng rng2(999);
  const KeyPair other = generate_keypair(rng2);
  const Envelope env = ncr(keys_.pub, from_string("secret"), rng_);
  EXPECT_FALSE(dcr(other.priv, env).has_value());
}

TEST_F(RsaTest, DecryptingWithSameHalfFails) {
  // NCR with pub must not be readable with pub (needs the private half).
  const Envelope env = ncr(keys_.pub, from_string("secret"), rng_);
  EXPECT_FALSE(dcr(keys_.pub, env).has_value());
}

TEST_F(RsaTest, TamperedCiphertextDetected) {
  Envelope env = ncr(keys_.pub, from_string("pay 100"), rng_);
  env.ciphertext[0] ^= 0xFF;
  EXPECT_FALSE(dcr(keys_.priv, env).has_value());
}

TEST_F(RsaTest, TamperedWrappedKeyDetected) {
  Envelope env = ncr(keys_.pub, from_string("pay 100"), rng_);
  env.wrapped_key1 ^= 1;
  EXPECT_FALSE(dcr(keys_.priv, env).has_value());
}

TEST_F(RsaTest, TamperedNonceDetected) {
  Envelope env = ncr(keys_.pub, from_string("pay 100"), rng_);
  env.ctr_nonce ^= 1;
  EXPECT_FALSE(dcr(keys_.priv, env).has_value());
}

TEST_F(RsaTest, EnvelopeSerializationRoundTrips) {
  const Envelope env = ncr(keys_.pub, from_string("wire me"), rng_);
  const Bytes wire = env.serialize();
  const auto back = Envelope::deserialize(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->wrapped_key1, env.wrapped_key1);
  EXPECT_EQ(back->wrapped_key2, env.wrapped_key2);
  EXPECT_EQ(back->ctr_nonce, env.ctr_nonce);
  EXPECT_EQ(back->ciphertext, env.ciphertext);
  EXPECT_TRUE(digest_equal(back->mac, env.mac));
  EXPECT_EQ(dcr(keys_.priv, *back).value(), from_string("wire me"));
}

TEST_F(RsaTest, TruncatedWireRejected) {
  const Bytes wire = ncr(keys_.pub, from_string("x"), rng_).serialize();
  for (std::size_t cut : {0u, 5u, 24u}) {
    const Bytes truncated(wire.begin(),
                          wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(Envelope::deserialize(truncated).has_value());
  }
}

TEST_F(RsaTest, TrailingGarbageRejected) {
  Bytes wire = ncr(keys_.pub, from_string("x"), rng_).serialize();
  wire.push_back(0);
  EXPECT_FALSE(Envelope::deserialize(wire).has_value());
}

TEST_F(RsaTest, SignVerify) {
  const Bytes msg = from_string("credit report: [3, -1, 0]");
  const std::uint64_t sig = rsa_sign(keys_.priv, msg);
  EXPECT_TRUE(rsa_verify(keys_.pub, msg, sig));
  EXPECT_FALSE(rsa_verify(keys_.pub, from_string("forged"), sig));
  EXPECT_FALSE(rsa_verify(keys_.pub, msg, sig ^ 1));
  EXPECT_FALSE(rsa_verify(keys_.pub, msg, keys_.pub.n));  // out of range
}

TEST(RsaKeygen, SmallModulusStillRoundTrips) {
  zmail::Rng rng(5);
  const KeyPair kp = generate_keypair(rng, 32);
  EXPECT_EQ(rsa_apply(kp.priv, rsa_apply(kp.pub, 12345 % kp.pub.n)),
            12345 % kp.pub.n);
}

TEST(RsaKeygen, DistinctSeedsDistinctKeys) {
  zmail::Rng r1(1), r2(2);
  EXPECT_NE(generate_keypair(r1).pub.n, generate_keypair(r2).pub.n);
}

}  // namespace
}  // namespace zmail::crypto
