// zmail::sweep — the parallel experiment harness.
//
// A sweep is a grid of Points (parameter coordinates), each run `replicas`
// times with an independent deterministically-derived seed.  Replicas
// execute on a work-stealing thread pool; every (point, replica) writes its
// MetricBag into a pre-assigned slot and the harness reduces the slots in
// replica order after the barrier, so the merged statistics are
// bit-identical regardless of thread count:
//
//     merged(point) = bag(point, 0).merge(bag(point, 1)) ... (point, R-1)
//
// The replica function receives its derived seed and must take all
// randomness from it (ZmailSystem's constructor seed, workload Rngs split
// from it, ...); it must not touch shared mutable state.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/stats.hpp"

namespace zmail::sweep {

// Splitmix-based mixing of (base_seed, point_index, replica) into one
// well-dispersed 64-bit seed.  Pure function: same triple, same seed,
// forever — experiment trajectories in BENCH_*.json stay comparable
// across machines and thread counts.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t point_index,
                          std::uint64_t replica) noexcept;

// One coordinate of the parameter grid.
struct Point {
  std::string label;                    // e.g. "isps=8"
  std::map<std::string, double> params; // e.g. {"isps": 8, "users": 4}

  double param(const std::string& key, double fallback = 0.0) const {
    const auto it = params.find(key);
    return it == params.end() ? fallback : it->second;
  }
};

// A mergeable bag of named metrics produced by one replica: streaming
// stats, fixed-shape histograms, and plain additive counters.  Names are
// kept sorted (std::map) so serialization order is deterministic.
class MetricBag {
 public:
  // Creates the entry on first use.
  OnlineStats& stat(const std::string& name) { return stats_[name]; }
  Histogram& hist(const std::string& name, double lo, double hi,
                  std::size_t buckets);
  void count(const std::string& name, double delta = 1.0) {
    counters_[name] += delta;
  }

  const OnlineStats* find_stat(const std::string& name) const;
  double counter(const std::string& name) const;

  const std::map<std::string, OnlineStats>& stats() const { return stats_; }
  const std::map<std::string, Histogram>& hists() const { return hists_; }
  const std::map<std::string, double>& counters() const { return counters_; }

  // Folds `o` into this bag.  Stats/counters union by name; histograms with
  // the same name must have the same shape.
  void merge(const MetricBag& o);

  json::Value to_json() const;

 private:
  std::map<std::string, OnlineStats> stats_;
  std::map<std::string, Histogram> hists_;
  std::map<std::string, double> counters_;
};

// One replica's work: given the grid point and the derived seed, run the
// experiment and return its metrics.
using ReplicaFn =
    std::function<MetricBag(const Point& point, std::uint64_t seed,
                            std::size_t replica)>;

struct SweepOptions {
  std::uint64_t base_seed = 42;
  std::size_t replicas = 1;
  std::size_t threads = 1;  // 0 = hardware concurrency
};

struct PointResult {
  Point point;
  MetricBag merged;           // replicas folded in replica order
  std::size_t replicas = 0;
  double replica_seconds = 0; // Σ per-replica wall time (CPU-cost proxy)
};

struct SweepResult {
  std::vector<PointResult> points;
  double wall_seconds = 0;    // whole-sweep wall clock
  std::size_t threads = 0;
  std::size_t replicas = 0;
  std::uint64_t base_seed = 0;

  const PointResult& at_label(const std::string& label) const;
  // Total of a named counter across all points (e.g. "events" for the
  // events/sec headline).
  double total_counter(const std::string& name) const;

  json::Value to_json() const;
};

// Runs |grid| x replicas tasks across the pool and reduces deterministically.
SweepResult run(const std::vector<Point>& grid, const SweepOptions& options,
                const ReplicaFn& fn);

// Single-point convenience.
SweepResult run(const Point& point, const SweepOptions& options,
                const ReplicaFn& fn);

}  // namespace zmail::sweep
