// Federated banks (paper Section 5, "Bank Setup"): the central bank's role
// split across three collaborating banks, each serving a share of the
// ISPs; buy/sell and snapshots run over the network against the home bank,
// and a billing round ends with netted inter-bank clearing.
//
//   ./federated_banks
#include <cstdio>

#include "core/federated_system.hpp"
#include "util/table.hpp"

using namespace zmail;

int main() {
  core::ZmailParams params;
  params.n_isps = 6;
  params.users_per_isp = 4;
  params.initial_user_balance = 40;

  core::FederatedZmailSystem sys(params, /*n_banks=*/3, /*seed=*/2005);

  std::printf("6 ISPs served by 3 collaborating banks (round-robin homes)\n");
  Table homes({"ISP", "home bank"});
  for (std::size_t i = 0; i < params.n_isps; ++i)
    homes.add_row({net::isp_domain(i),
                   "bank" + std::to_string(sys.federation().home_bank(i)) +
                       ".example"});
  homes.print("home-bank assignment");

  // Cross-bank mail in a ring plus a hot pair.
  for (std::size_t i = 0; i < params.n_isps; ++i)
    sys.send_email(net::make_user_address(i, 0),
                   net::make_user_address((i + 1) % params.n_isps, 0),
                   "ring", "hello neighbour");
  for (int k = 0; k < 5; ++k)
    sys.send_email(net::make_user_address(0, 1),
                   net::make_user_address(4, 1), "hot", "pair");
  sys.run_for(sim::kHour);

  std::printf("\nrunning one federated billing round...\n");
  sys.start_snapshot();
  sys.run_for(30 * sim::kMinute);

  const core::FederationMetrics& m = sys.federation().metrics();
  Table round({"metric", "value"});
  round.add_row({"reports gathered", Table::num(m.reports_received)});
  round.add_row({"inter-bank column-exchange messages",
                 Table::num(m.interbank_messages)});
  round.add_row({"inter-bank bytes", Table::num(m.interbank_bytes)});
  round.add_row({"intra-bank settlements",
                 Table::num(m.settlements_intra_bank)});
  round.add_row({"cross-bank settlements",
                 Table::num(m.settlements_cross_bank)});
  round.add_row({"netted clearing transfers",
                 Table::num(m.clearing_transfers)});
  round.add_row({"violations", Table::num(m.violations_found)});
  round.print("federated snapshot round");

  Table clearing({"bank", "net clearing position"});
  for (std::size_t b = 0; b < 3; ++b)
    clearing.add_row({"bank" + std::to_string(b) + ".example",
                      sys.federation().clearing_position(b).str()});
  clearing.print("inter-bank clearing (sums to $0)");

  std::printf("\nconservation holds: %s\n",
              sys.conservation_holds() ? "yes" : "NO");
  return 0;
}
