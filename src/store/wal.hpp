// Append-only write-ahead log.
//
// The settlement state of a Zmail party (bank or compliant ISP) is a
// deterministic state machine; the WAL records every command applied to it,
// so <latest snapshot> + <WAL tail replay> reconstructs the exact pre-crash
// state (see core::Isp::apply_wal_record / core::Bank::apply_wal_record).
//
// On-disk grammar (all integers big-endian, matching the wire format):
//
//   wal     := header record*
//   header  := "ZWAL" version:u32 base_lsn:u64 crc:u32      (20 bytes; crc
//              is CRC32C over the first 16 header bytes)
//   record  := body_len:u32 body_crc:u32 body
//   body    := lsn:u64 type:u8 payload:u8[body_len - 9]
//
// LSNs are assigned monotonically starting at base_lsn; a gap or repeat is
// corruption.  Scanning stops *cleanly* at the first byte that does not
// continue a valid record — a torn final write (partial record, bad CRC,
// short length prefix) yields exactly the records before it, never a crash
// or a partial apply.
//
// Durability model: append() encodes into an in-memory buffer; sync() is
// the fsync point — it write(2)s the buffer and optionally fsync(2)s, so
// the file only ever contains records up to the last sync.  Group commit is
// a sync cadence (`group_commit_records`): with N > 1, up to N-1 records
// ride in the buffer and are lost by simulate_crash(), which is how the
// simulation models losing the un-fsynced tail of a real crash.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "crypto/bytes.hpp"
#include "store/status.hpp"

namespace zmail::store {

// Log sequence number.  1-based; 0 means "none".
using Lsn = std::uint64_t;

// Where state machines log commands (core::Isp / core::Bank hold one of
// these, attached by the harness; detached during replay so recovery does
// not re-log the records it is applying).
class WalSink {
 public:
  virtual ~WalSink() = default;
  virtual void append(std::uint8_t type, const crypto::Bytes& payload) = 0;
};

// One decoded record, borrowed from the scan buffer.
struct WalRecord {
  Lsn lsn = 0;
  std::uint8_t type = 0;
  const std::uint8_t* payload = nullptr;
  std::size_t payload_len = 0;
};

struct WalScanResult {
  // kOk: clean end of file.  kTruncated / kCorrupt: a torn or damaged tail
  // was found — everything before `valid_bytes` is intact and was visited.
  // Header-level failures (kBadMagic, kUnknownVersion, ...) visit nothing.
  StoreStatus status = StoreStatus::kOk;
  std::uint64_t records = 0;
  Lsn base_lsn = 0;
  Lsn last_lsn = 0;          // last valid LSN (base_lsn - 1 when empty)
  std::size_t valid_bytes = 0;  // offset just past the last valid record
};

// Scans an in-memory WAL image, invoking `fn` for each valid record in
// order.  Never throws, never reads past the buffer: recovery and the
// torn-write fuzzer share this one decoder.
WalScanResult wal_scan(const crypto::Bytes& file,
                       const std::function<void(const WalRecord&)>& fn = {});

// Append side.  Not thread-safe (each party owns its log, and the
// simulation applies commands from one thread).
class WalWriter : public WalSink {
 public:
  struct Stats {
    std::uint64_t records_appended = 0;
    std::uint64_t bytes_appended = 0;   // encoded record bytes (excl. header)
    std::uint64_t syncs = 0;            // write(2) flushes
    std::uint64_t fsyncs = 0;           // fsync(2) barriers issued
  };

  WalWriter() = default;
  ~WalWriter() override;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Opens or creates `path`.  An existing log is scanned; a torn tail is
  // trimmed and appends continue after the last valid record.  `fsync_data`
  // false skips the fsync(2) barrier at sync points (write(2) still runs —
  // benches measuring pure append cost use this).  Returns false and fills
  // `error` on failure.
  bool open(const std::string& path, std::uint32_t group_commit_records = 1,
            bool fsync_data = true, std::string* error = nullptr);
  bool is_open() const noexcept { return fd_ >= 0; }
  void close();

  // Appends one record, returning its LSN; syncs automatically every
  // `group_commit_records` appends.
  Lsn append_record(std::uint8_t type, const crypto::Bytes& payload);
  void append(std::uint8_t type, const crypto::Bytes& payload) override {
    append_record(type, payload);
  }

  // Explicit fsync point: flushes buffered records to the file (and to
  // stable storage when fsync_data).  After sync(), durable_lsn() ==
  // next_lsn() - 1.
  void sync();

  // Everything at or behind this LSN survives a crash.
  Lsn durable_lsn() const noexcept { return durable_lsn_; }
  Lsn next_lsn() const noexcept { return next_lsn_; }
  std::uint32_t group_commit_records() const noexcept { return group_; }

  // Checkpoint truncation: the snapshot now covers every logged record, so
  // restart the log empty with base_lsn = next_lsn() (LSNs stay monotonic
  // across the truncation).
  bool truncate_behind_checkpoint(std::string* error = nullptr);

  // Models the crash: buffered (un-synced) records vanish, exactly as the
  // un-fsynced page-cache tail of a real process death would.  The file is
  // left as the last sync() wrote it; the writer rewinds its LSN counter to
  // match and can keep appending after recovery.
  void simulate_crash();

  const Stats& stats() const noexcept { return stats_; }

 private:
  bool write_header(Lsn base_lsn, std::string* error);

  int fd_ = -1;
  std::string path_;
  std::uint32_t group_ = 1;
  bool fsync_data_ = true;
  Lsn next_lsn_ = 1;
  Lsn durable_lsn_ = 0;
  crypto::Bytes pending_;            // encoded, not yet written records
  std::uint32_t pending_records_ = 0;
  Stats stats_;
};

// Reads a whole file into `out`; kNotFound when it does not exist.
StoreStatus read_file(const std::string& path, crypto::Bytes& out);

}  // namespace zmail::store
