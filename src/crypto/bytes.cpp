#include "crypto/bytes.hpp"

#include "util/assert.hpp"

namespace zmail::crypto {

void put_u8(Bytes& b, std::uint8_t v) { b.push_back(v); }

void put_u32(Bytes& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 24));
  b.push_back(static_cast<std::uint8_t>(v >> 16));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v));
}

void put_u64(Bytes& b, std::uint64_t v) {
  put_u32(b, static_cast<std::uint32_t>(v >> 32));
  put_u32(b, static_cast<std::uint32_t>(v));
}

void put_i64(Bytes& b, std::int64_t v) {
  put_u64(b, static_cast<std::uint64_t>(v));
}

void put_bytes(Bytes& b, const Bytes& v) {
  put_u32(b, static_cast<std::uint32_t>(v.size()));
  b.insert(b.end(), v.begin(), v.end());
}

void put_string(Bytes& b, std::string_view v) {
  put_u32(b, static_cast<std::uint32_t>(v.size()));
  b.insert(b.end(), v.begin(), v.end());
}

bool ByteReader::have(std::size_t n) noexcept {
  if (failed_ || data_->size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::get_u8() noexcept {
  if (!have(1)) return 0;
  return (*data_)[pos_++];
}

std::uint32_t ByteReader::get_u32() noexcept {
  if (!have(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | (*data_)[pos_++];
  return v;
}

std::uint64_t ByteReader::get_u64() noexcept {
  const std::uint64_t hi = get_u32();
  const std::uint64_t lo = get_u32();
  return (hi << 32) | lo;
}

std::int64_t ByteReader::get_i64() noexcept {
  return static_cast<std::int64_t>(get_u64());
}

Bytes ByteReader::get_bytes() noexcept {
  const std::uint32_t n = get_u32();
  if (!have(n)) return {};
  Bytes out(data_->begin() + static_cast<std::ptrdiff_t>(pos_),
            data_->begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

void ByteReader::get_bytes_into(Bytes& out) noexcept {
  const std::uint32_t n = get_u32();
  if (!have(n)) {
    out.clear();
    return;
  }
  out.assign(data_->begin() + static_cast<std::ptrdiff_t>(pos_),
             data_->begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
}

std::string ByteReader::get_string() noexcept {
  const Bytes b = get_bytes();
  return {b.begin(), b.end()};
}

std::string to_hex(const Bytes& b) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t v : b) {
    out += digits[v >> 4];
    out += digits[v & 0xF];
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  ZMAIL_ASSERT(hex.size() % 2 == 0);
  auto val = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    ZMAIL_ASSERT_MSG(false, "invalid hex digit");
  };
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2)
    out.push_back(
        static_cast<std::uint8_t>((val(hex[i]) << 4) | val(hex[i + 1])));
  return out;
}

Bytes from_string(std::string_view s) { return Bytes(s.begin(), s.end()); }

}  // namespace zmail::crypto
