# Empty dependencies file for zmail_util.
# This may be replaced when dependencies are built.
