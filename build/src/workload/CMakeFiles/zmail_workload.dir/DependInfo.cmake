
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/corpus.cpp" "src/workload/CMakeFiles/zmail_workload.dir/corpus.cpp.o" "gcc" "src/workload/CMakeFiles/zmail_workload.dir/corpus.cpp.o.d"
  "/root/repo/src/workload/traffic.cpp" "src/workload/CMakeFiles/zmail_workload.dir/traffic.cpp.o" "gcc" "src/workload/CMakeFiles/zmail_workload.dir/traffic.cpp.o.d"
  "/root/repo/src/workload/virus.cpp" "src/workload/CMakeFiles/zmail_workload.dir/virus.cpp.o" "gcc" "src/workload/CMakeFiles/zmail_workload.dir/virus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/zmail_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/zmail_net.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/zmail_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zmail_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ap/CMakeFiles/zmail_ap.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zmail_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
