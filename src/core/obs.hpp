// zmail::obs — observability layer: structured (JSON) export of the
// counters the protocol code already keeps.
//
// Nothing here adds instrumentation; it serializes what IspMetrics,
// BankMetrics, and the stats types record, in a stable machine-readable
// schema ("zmail-obs-v1") that BENCH_*.json files and the sweep harness
// embed.  Key order is fixed (struct field order / sorted names), so two
// runs of the same experiment diff cleanly.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.hpp"
#include "core/system.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace zmail::obs {

json::Value to_json(const core::IspMetrics& m);
json::Value to_json(const core::BankMetrics& m);
json::Value to_json(const core::LegacyHostStats& s);
json::Value to_json(const OnlineStats& s);
json::Value to_json(const Histogram& h);
// Samples export summary percentiles, not raw observations (raw data can be
// millions of points; the consumers in EXPERIMENTS.md only read quantiles).
json::Value to_json(const Sample& s);

// Whole-system snapshot: aggregate + per-ISP metrics, bank metrics,
// delivery latency, network totals, conservation status.
json::Value snapshot(const core::ZmailSystem& sys);

// Named lazy metric sources.  Providers are invoked at snapshot() time, so
// a registry built before a run observes the state at export, not at
// registration.  Registration order is serialization order.
class MetricsRegistry {
 public:
  using Provider = std::function<json::Value()>;

  void add(std::string name, Provider provider);
  // Convenience: registers obs::snapshot(sys).  The system must outlive
  // the registry's last snapshot() call.
  void add_system(std::string name, const core::ZmailSystem& sys);

  std::size_t size() const noexcept { return providers_.size(); }

  // {"schema": "zmail-obs-v1", "<name>": <provider()>, ...}
  json::Value snapshot() const;
  bool write_file(const std::string& path, std::string* error = nullptr) const;

 private:
  std::vector<std::pair<std::string, Provider>> providers_;
};

}  // namespace zmail::obs
