// Snapshot format: the v1 byte layout is pinned by a golden file, unknown
// versions/features are rejected with typed errors, and the file writer is
// atomic (temp + rename).
#include "store/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace zmail::store {
namespace {

SnapshotData golden_snapshot() {
  SnapshotData s;
  s.meta.version = kSnapshotVersion;
  s.meta.features = 0;
  s.meta.next_lsn = 0x0102030405060708ull;
  s.meta.sim_time_us = 1234567890;
  SnapshotSection sec;
  sec.id = kStateSection;
  sec.payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42};
  s.sections.push_back(sec);
  return s;
}

std::string to_hex(const crypto::Bytes& b) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(2 * b.size());
  for (std::uint8_t v : b) {
    out.push_back(digits[v >> 4]);
    out.push_back(digits[v & 0xF]);
  }
  return out;
}

// The v1 on-disk layout, byte for byte.  If this test breaks, the format
// changed: bump kSnapshotVersion and teach decode_snapshot the old layout
// instead of editing the golden string.
TEST(SnapshotGoldenTest, V1ByteLayoutIsPinned) {
  const crypto::Bytes encoded = encode_snapshot(golden_snapshot());
  EXPECT_EQ(to_hex(encoded),
            // magic  version  features next_lsn
            "5a534e50"
            "00000001"
            "00000000"
            "0102030405060708"
            // sim_time_us      sections header-crc
            "00000000499602d2"
            "00000001"
            "cebfcd9c"
            // section: id      len              payload    payload-crc
            "00000001"
            "0000000000000006"
            "deadbeef0042"
            "fb6bb3d0");
}

TEST(SnapshotCodecTest, EncodeDecodeRoundTrip) {
  const SnapshotData in = golden_snapshot();
  SnapshotData out;
  ASSERT_EQ(decode_snapshot(encode_snapshot(in), out), StoreStatus::kOk);
  EXPECT_EQ(out.meta.version, in.meta.version);
  EXPECT_EQ(out.meta.features, in.meta.features);
  EXPECT_EQ(out.meta.next_lsn, in.meta.next_lsn);
  EXPECT_EQ(out.meta.sim_time_us, in.meta.sim_time_us);
  ASSERT_EQ(out.sections.size(), 1u);
  EXPECT_EQ(out.sections[0].id, kStateSection);
  EXPECT_EQ(out.sections[0].payload, in.sections[0].payload);
}

TEST(SnapshotCodecTest, UnknownVersionIsATypedError) {
  SnapshotData s = golden_snapshot();
  s.meta.version = kSnapshotVersion + 1;  // a future format
  SnapshotData out;
  EXPECT_EQ(decode_snapshot(encode_snapshot(s), out),
            StoreStatus::kUnknownVersion);
}

TEST(SnapshotCodecTest, UnknownFeatureBitIsATypedError) {
  SnapshotData s = golden_snapshot();
  s.meta.features = 0x80000000u;  // a feature flag this build predates
  SnapshotData out;
  EXPECT_EQ(decode_snapshot(encode_snapshot(s), out),
            StoreStatus::kUnknownFeature);
}

TEST(SnapshotCodecTest, DamageIsDetected) {
  const crypto::Bytes intact = encode_snapshot(golden_snapshot());
  SnapshotData out;

  crypto::Bytes bad_magic = intact;
  bad_magic[1] ^= 0xFF;
  EXPECT_EQ(decode_snapshot(bad_magic, out), StoreStatus::kBadMagic);

  crypto::Bytes bad_header = intact;
  bad_header[13] ^= 0x01;  // inside next_lsn: header crc must catch it
  EXPECT_EQ(decode_snapshot(bad_header, out), StoreStatus::kCorrupt);

  crypto::Bytes bad_payload = intact;
  bad_payload[intact.size() - 5] ^= 0x01;  // last payload byte
  EXPECT_EQ(decode_snapshot(bad_payload, out), StoreStatus::kCorrupt);

  crypto::Bytes short_file(intact.begin(), intact.begin() + 40);
  EXPECT_EQ(decode_snapshot(short_file, out), StoreStatus::kTruncated);

  EXPECT_EQ(decode_snapshot(crypto::Bytes{}, out), StoreStatus::kNotFound);
}

TEST(SnapshotFileTest, WriteReadRoundTripAndMissingFile) {
  const std::string path = "store_snapshot_test_file.zsnap";
  std::remove(path.c_str());

  SnapshotData missing;
  EXPECT_EQ(read_snapshot_file(path, missing), StoreStatus::kNotFound);

  std::string err;
  ASSERT_EQ(write_snapshot_file(path, golden_snapshot(), true, &err),
            StoreStatus::kOk)
      << err;
  SnapshotData out;
  ASSERT_EQ(read_snapshot_file(path, out), StoreStatus::kOk);
  EXPECT_EQ(out.meta.next_lsn, golden_snapshot().meta.next_lsn);

  // A rewrite replaces the file atomically — no .tmp litter on success.
  SnapshotData second = golden_snapshot();
  second.meta.sim_time_us = 777;
  ASSERT_EQ(write_snapshot_file(path, second, true, &err), StoreStatus::kOk);
  ASSERT_EQ(read_snapshot_file(path, out), StoreStatus::kOk);
  EXPECT_EQ(out.meta.sim_time_us, 777u);
  FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp) std::fclose(tmp);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace zmail::store
