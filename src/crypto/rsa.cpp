#include "crypto/rsa.hpp"

#include "crypto/hmac.hpp"
#include "crypto/primes.hpp"
#include "crypto/xtea.hpp"
#include "util/assert.hpp"

namespace zmail::crypto {

KeyPair generate_keypair(zmail::Rng& rng, int modulus_bits) {
  ZMAIL_ASSERT(modulus_bits >= 16 && modulus_bits <= 62);
  const int half = modulus_bits / 2;
  constexpr std::uint64_t kE = 65537;
  for (;;) {
    const std::uint64_t p = random_prime(rng, half);
    const std::uint64_t q = random_prime(rng, modulus_bits - half);
    if (p == q) continue;
    const std::uint64_t n = p * q;
    const std::uint64_t phi = (p - 1) * (q - 1);
    if (gcd_u64(kE, phi) != 1) continue;
    const std::uint64_t d = modinv(kE, phi);
    return KeyPair{RsaKey{n, kE}, RsaKey{n, d}};
  }
}

std::uint64_t rsa_apply(const RsaKey& key, std::uint64_t m) noexcept {
  ZMAIL_ASSERT(m < key.n);
  return powmod(m, key.exp, key.n);
}

std::size_t Envelope::serialized_size() const noexcept {
  return 8 + 8 + 8 + 4 + ciphertext.size() + mac.size();
}

Bytes Envelope::serialize() const {
  Bytes out;
  serialize_into(out);
  return out;
}

void Envelope::serialize_into(Bytes& out) const {
  out.clear();
  out.reserve(serialized_size());
  put_u64(out, wrapped_key1);
  put_u64(out, wrapped_key2);
  put_u64(out, ctr_nonce);
  put_bytes(out, ciphertext);
  out.insert(out.end(), mac.begin(), mac.end());
}

std::optional<Envelope> Envelope::deserialize(const Bytes& wire) {
  Envelope env;
  if (!deserialize_into(wire, env)) return std::nullopt;
  return env;
}

bool Envelope::deserialize_into(const Bytes& wire, Envelope& env) {
  ByteReader r(wire);
  env.wrapped_key1 = r.get_u64();
  env.wrapped_key2 = r.get_u64();
  env.ctr_nonce = r.get_u64();
  r.get_bytes_into(env.ciphertext);
  if (!r.ok()) return false;
  for (auto& byte : env.mac) byte = r.get_u8();
  return r.ok() && r.at_end();
}

namespace {

// Session-key bytes from the two RSA-transported halves.
Bytes session_key_material(std::uint64_t k1, std::uint64_t k2) {
  Bytes material;
  put_u64(material, k1);
  put_u64(material, k2);
  return material;
}

Digest envelope_mac(const Bytes& key_material, const Envelope& env) {
  Bytes mac_input;
  put_u64(mac_input, env.ctr_nonce);
  put_bytes(mac_input, env.ciphertext);
  return hmac_sha256(key_material, mac_input);
}

}  // namespace

Envelope ncr(const RsaKey& key, const Bytes& plaintext, zmail::Rng& rng) {
  Envelope env;
  ncr_into(key, plaintext, rng, env);
  return env;
}

void ncr_into(const RsaKey& key, const Bytes& plaintext, zmail::Rng& rng,
              Envelope& env) {
  ZMAIL_ASSERT(key.n > 1);
  const std::uint64_t k1 = rng.next_below(key.n);
  const std::uint64_t k2 = rng.next_below(key.n);

  env.wrapped_key1 = rsa_apply(key, k1);
  env.wrapped_key2 = rsa_apply(key, k2);
  env.ctr_nonce = rng.next_u64();

  const Bytes material = session_key_material(k1, k2);
  const XteaKey sym = xtea_key_from_bytes(material);
  xtea_ctr_into(plaintext, sym, env.ctr_nonce, env.ciphertext);
  env.mac = envelope_mac(material, env);
}

std::optional<Bytes> dcr(const RsaKey& key, const Envelope& env) {
  Bytes plain;
  if (!dcr_into(key, env, plain)) return std::nullopt;
  return plain;
}

bool dcr_into(const RsaKey& key, const Envelope& env, Bytes& plain_out) {
  if (key.n <= 1 || env.wrapped_key1 >= key.n || env.wrapped_key2 >= key.n)
    return false;
  const std::uint64_t k1 = rsa_apply(key, env.wrapped_key1);
  const std::uint64_t k2 = rsa_apply(key, env.wrapped_key2);
  const Bytes material = session_key_material(k1, k2);
  if (!digest_equal(envelope_mac(material, env), env.mac))
    return false;  // tampered, replay-spliced, or wrong key
  const XteaKey sym = xtea_key_from_bytes(material);
  xtea_ctr_into(env.ciphertext, sym, env.ctr_nonce, plain_out);
  return true;
}

namespace {
// Fold a digest into a value < n for textbook signing.
std::uint64_t digest_to_residue(const Digest& d, std::uint64_t n) noexcept {
  std::uint64_t acc = 0;
  for (std::uint8_t byte : d)
    acc = static_cast<std::uint64_t>(
        ((static_cast<__uint128_t>(acc) << 8) | byte) % n);
  return acc;
}
}  // namespace

std::uint64_t rsa_sign(const RsaKey& priv, const Bytes& message) noexcept {
  const Digest d = sha256(message);
  return rsa_apply(priv, digest_to_residue(d, priv.n));
}

bool rsa_verify(const RsaKey& pub, const Bytes& message,
                std::uint64_t signature) noexcept {
  if (signature >= pub.n) return false;
  const Digest d = sha256(message);
  return rsa_apply(pub, signature) == digest_to_residue(d, pub.n);
}

}  // namespace zmail::crypto
