#include "store/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "store/crc32c.hpp"

namespace zmail::store {

namespace {

constexpr std::uint8_t kMagic[4] = {'Z', 'S', 'N', 'P'};
constexpr std::size_t kHeaderSize = 36;
constexpr std::size_t kSectionOverhead = 16;  // id + len + crc
constexpr std::uint64_t kMaxSection = 1ull << 32;

std::uint32_t read_u32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

std::uint64_t read_u64(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint64_t>(read_u32(p)) << 32) | read_u32(p + 4);
}

}  // namespace

crypto::Bytes encode_snapshot(const SnapshotData& snap) {
  crypto::Bytes out;
  out.reserve(kHeaderSize);
  out.insert(out.end(), kMagic, kMagic + 4);
  crypto::put_u32(out, snap.meta.version);
  crypto::put_u32(out, snap.meta.features);
  crypto::put_u64(out, snap.meta.next_lsn);
  crypto::put_u64(out, snap.meta.sim_time_us);
  crypto::put_u32(out, static_cast<std::uint32_t>(snap.sections.size()));
  crypto::put_u32(out, crc32c(out.data(), out.size()));
  for (const SnapshotSection& s : snap.sections) {
    crypto::put_u32(out, s.id);
    crypto::put_u64(out, s.payload.size());
    out.insert(out.end(), s.payload.begin(), s.payload.end());
    crypto::put_u32(out, crc32c(s.payload.data(), s.payload.size()));
  }
  return out;
}

namespace {

// Shared validation walk over a raw snapshot image: header checks, then
// CRC-verify each section and hand (id, payload ptr, len) to `emit`.  Both
// the copying decoder and the mmap view are thin wrappers over this.
template <typename Emit>
StoreStatus parse_snapshot(const std::uint8_t* data, std::size_t size,
                           SnapshotMeta& meta, Emit&& emit) {
  if (size < kHeaderSize)
    return size == 0 ? StoreStatus::kNotFound : StoreStatus::kTruncated;
  if (std::memcmp(data, kMagic, 4) != 0) return StoreStatus::kBadMagic;
  if (read_u32(data + 32) != crc32c(data, 32)) return StoreStatus::kCorrupt;
  meta.version = read_u32(data + 4);
  if (meta.version < kSnapshotVersion || meta.version > kMaxSnapshotVersion)
    return StoreStatus::kUnknownVersion;
  meta.features = read_u32(data + 8);
  // Feature acceptance is version-gated: a v1 file may not carry bits that
  // only v2 defines, even if this build would understand them.
  if ((meta.features & ~supported_features_for(meta.version)) != 0)
    return StoreStatus::kUnknownFeature;
  meta.next_lsn = read_u64(data + 12);
  meta.sim_time_us = read_u64(data + 20);
  const std::uint32_t count = read_u32(data + 28);

  std::size_t pos = kHeaderSize;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (size - pos < kSectionOverhead) return StoreStatus::kTruncated;
    const std::uint32_t id = read_u32(data + pos);
    const std::uint64_t len = read_u64(data + pos + 4);
    if (len > kMaxSection) return StoreStatus::kCorrupt;
    if (size - pos - kSectionOverhead < len) return StoreStatus::kTruncated;
    const std::uint8_t* payload = data + pos + 12;
    if (read_u32(payload + len) != crc32c(payload, len))
      return StoreStatus::kCorrupt;
    emit(id, payload, len);
    pos += kSectionOverhead + len;
  }
  return StoreStatus::kOk;
}

}  // namespace

StoreStatus decode_snapshot(const crypto::Bytes& file, SnapshotData& out) {
  out = SnapshotData{};
  out.sections.clear();
  return parse_snapshot(
      file.data(), file.size(), out.meta,
      [&out](std::uint32_t id, const std::uint8_t* payload,
             std::uint64_t len) {
        SnapshotSection s;
        s.id = id;
        s.payload.assign(payload, payload + len);
        out.sections.push_back(std::move(s));
      });
}

StoreStatus write_snapshot_file(const std::string& path,
                                const SnapshotData& snap, bool fsync_data,
                                std::string* error) {
  const crypto::Bytes encoded = encode_snapshot(snap);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error) *error = "snapshot: open " + tmp + ": " + std::strerror(errno);
    return StoreStatus::kIoError;
  }
  std::size_t off = 0;
  while (off < encoded.size()) {
    const ssize_t n = ::write(fd, encoded.data() + off, encoded.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error) *error = "snapshot: write: " + std::string(std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return StoreStatus::kIoError;
    }
    off += static_cast<std::size_t>(n);
  }
  if (fsync_data) ::fsync(fd);
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = "snapshot: rename: " + std::string(std::strerror(errno));
    ::unlink(tmp.c_str());
    return StoreStatus::kIoError;
  }
  return StoreStatus::kOk;
}

StoreStatus read_snapshot_file(const std::string& path, SnapshotData& out) {
  crypto::Bytes file;
  const StoreStatus rs = read_file(path, file);
  if (rs != StoreStatus::kOk) return rs;
  return decode_snapshot(file, out);
}

StoreStatus SnapshotFileView::open(const std::string& path) {
  close();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    return errno == ENOENT ? StoreStatus::kNotFound : StoreStatus::kIoError;
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return StoreStatus::kIoError;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return StoreStatus::kNotFound;
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) return StoreStatus::kIoError;
  map_ = static_cast<const std::uint8_t*>(map);
  map_size_ = size;

  // CRC-verify everything once up front; afterwards section views are
  // trusted pointers into the mapping.
  const StoreStatus rs = parse_snapshot(
      map_, map_size_, meta_,
      [this](std::uint32_t id, const std::uint8_t* payload,
             std::uint64_t len) {
        sections_.push_back(SectionView{id, payload, len});
      });
  if (rs != StoreStatus::kOk) close();
  return rs;
}

void SnapshotFileView::close() {
  if (map_ != nullptr)
    ::munmap(const_cast<std::uint8_t*>(map_), map_size_);
  map_ = nullptr;
  map_size_ = 0;
  sections_.clear();
  meta_ = SnapshotMeta{};
}

const SnapshotFileView::SectionView* SnapshotFileView::find(
    std::uint32_t id) const noexcept {
  for (const SectionView& s : sections_)
    if (s.id == id) return &s;
  return nullptr;
}

}  // namespace zmail::store
