#include "core/bank.hpp"

#include <gtest/gtest.h>

#include "core/isp.hpp"

namespace zmail::core {
namespace {

ZmailParams params4() {
  ZmailParams p;
  p.n_isps = 4;
  p.users_per_isp = 2;
  return p;
}

class BankTest : public ::testing::Test {
 protected:
  BankTest() : keys_(crypto::generate_keypair(rng_)), bank_(params_, keys_, 5) {}

  // Builds a sealed CreditReport as isp g would send it.
  crypto::Bytes sealed_report(std::uint64_t seq, std::vector<EPenny> credit) {
    return seal(keys_.pub, CreditReport{seq, std::move(credit)}.serialize(),
                rng_);
  }

  Rng rng_{500};
  ZmailParams params_ = params4();
  crypto::KeyPair keys_;
  Bank bank_;
};

TEST_F(BankTest, BuyDebitsAccountAndMints) {
  crypto::NonceGenerator nnc(1);
  const BuyRequest req{100, nnc.next()};
  const crypto::Bytes reply_wire =
      bank_.on_buy(2, seal(keys_.pub, req.serialize(), rng_));
  ASSERT_FALSE(reply_wire.empty());
  EXPECT_EQ(bank_.account(2),
            params_.initial_isp_bank_account - Money::from_epennies(100));
  EXPECT_EQ(bank_.metrics().epennies_minted, 100);
  const auto plain = unseal(keys_.pub, reply_wire);
  ASSERT_TRUE(plain.has_value());
  const auto reply = BuyReply::deserialize(*plain);
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->accepted);
  EXPECT_EQ(reply->nonce, req.nonce);
}

TEST_F(BankTest, BuyRejectedWhenShortButStillReplies) {
  bank_.set_account(1, Money::from_epennies(10));
  crypto::NonceGenerator nnc(2);
  const BuyRequest req{100, nnc.next()};
  const crypto::Bytes reply_wire =
      bank_.on_buy(1, seal(keys_.pub, req.serialize(), rng_));
  const auto reply = BuyReply::deserialize(*unseal(keys_.pub, reply_wire));
  ASSERT_TRUE(reply.has_value());
  EXPECT_FALSE(reply->accepted);
  EXPECT_EQ(bank_.account(1), Money::from_epennies(10));  // untouched
  EXPECT_EQ(bank_.metrics().buys_rejected, 1u);
}

TEST_F(BankTest, SellCreditsAccountAndBurns) {
  crypto::NonceGenerator nnc(3);
  const SellRequest req{40, nnc.next()};
  const crypto::Bytes reply_wire =
      bank_.on_sell(0, seal(keys_.pub, req.serialize(), rng_));
  ASSERT_FALSE(reply_wire.empty());
  EXPECT_EQ(bank_.account(0),
            params_.initial_isp_bank_account + Money::from_epennies(40));
  EXPECT_EQ(bank_.metrics().epennies_burned, 40);
  EXPECT_EQ(bank_.epennies_outstanding(), -40);
}

TEST_F(BankTest, MalformedBuyIgnored) {
  EXPECT_TRUE(bank_.on_buy(0, {1, 2, 3}).empty());
  EXPECT_EQ(bank_.metrics().bad_envelopes, 1u);
}

TEST_F(BankTest, NonPositiveBuyValueRejected) {
  crypto::NonceGenerator nnc(4);
  const BuyRequest req{0, nnc.next()};
  EXPECT_TRUE(bank_.on_buy(0, seal(keys_.pub, req.serialize(), rng_)).empty());
  EXPECT_EQ(bank_.metrics().bad_envelopes, 1u);
}

TEST_F(BankTest, SnapshotSendsOneRequestPerCompliantIsp) {
  const auto reqs = bank_.start_snapshot();
  EXPECT_EQ(reqs.size(), 4u);
  EXPECT_TRUE(bank_.round_open());
  // A second call while the round is open yields nothing.
  EXPECT_TRUE(bank_.start_snapshot().empty());
}

TEST_F(BankTest, SnapshotSkipsNonCompliant) {
  params_.compliant = {true, false, true, false};
  Bank bank(params_, keys_, 5);
  const auto reqs = bank.start_snapshot();
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].first, 0u);
  EXPECT_EQ(reqs[1].first, 2u);
}

TEST_F(BankTest, ConsistentRoundFindsNoViolations) {
  bank_.start_snapshot();
  // Flow: isp0 -> isp1 net 5; all other pairs zero.
  bank_.on_reply(0, sealed_report(0, {0, 5, 0, 0}));
  bank_.on_reply(1, sealed_report(0, {-5, 0, 0, 0}));
  bank_.on_reply(2, sealed_report(0, {0, 0, 0, 0}));
  bank_.on_reply(3, sealed_report(0, {0, 0, 0, 0}));
  EXPECT_FALSE(bank_.round_open());
  EXPECT_TRUE(bank_.last_violations().empty());
  EXPECT_EQ(bank_.seq(), 1u);
  EXPECT_EQ(bank_.metrics().snapshot_rounds, 1u);
}

TEST_F(BankTest, SettlementMovesRealMoneyAlongNetFlow) {
  bank_.start_snapshot();
  bank_.on_reply(0, sealed_report(0, {0, 5, 0, 0}));
  bank_.on_reply(1, sealed_report(0, {-5, 0, 0, 0}));
  bank_.on_reply(2, sealed_report(0, {0, 0, 0, 0}));
  bank_.on_reply(3, sealed_report(0, {0, 0, 0, 0}));
  // isp0's users paid isp1's users 5 e-pennies; real money follows.
  EXPECT_EQ(bank_.account(0),
            params_.initial_isp_bank_account - Money::from_epennies(5));
  EXPECT_EQ(bank_.account(1),
            params_.initial_isp_bank_account + Money::from_epennies(5));
  EXPECT_EQ(bank_.metrics().settlement_transfers, 1u);
}

TEST_F(BankTest, InconsistentPairFlaggedAndNotSettled) {
  bank_.start_snapshot();
  // isp0 claims +5 toward isp1, but isp1 claims -3: discrepancy 2.
  bank_.on_reply(0, sealed_report(0, {0, 5, 0, 0}));
  bank_.on_reply(1, sealed_report(0, {-3, 0, 0, 0}));
  bank_.on_reply(2, sealed_report(0, {0, 0, 0, 0}));
  bank_.on_reply(3, sealed_report(0, {0, 0, 0, 0}));
  ASSERT_EQ(bank_.last_violations().size(), 1u);
  EXPECT_EQ(bank_.last_violations()[0].isp_i, 0u);
  EXPECT_EQ(bank_.last_violations()[0].isp_j, 1u);
  EXPECT_EQ(bank_.last_violations()[0].discrepancy, 2);
  // No settlement across the disputed pair.
  EXPECT_EQ(bank_.account(0), params_.initial_isp_bank_account);
  EXPECT_EQ(bank_.account(1), params_.initial_isp_bank_account);
}

TEST_F(BankTest, DuplicateReportWithinRoundIgnored) {
  bank_.start_snapshot();
  bank_.on_reply(0, sealed_report(0, {0, 1, 0, 0}));
  bank_.on_reply(0, sealed_report(0, {0, 9, 0, 0}));  // replay/duplicate
  EXPECT_EQ(bank_.metrics().stale_reports, 1u);
  bank_.on_reply(1, sealed_report(0, {-1, 0, 0, 0}));
  bank_.on_reply(2, sealed_report(0, {0, 0, 0, 0}));
  bank_.on_reply(3, sealed_report(0, {0, 0, 0, 0}));
  EXPECT_TRUE(bank_.last_violations().empty());  // first report won
}

TEST_F(BankTest, WrongSeqReportIgnored) {
  bank_.start_snapshot();
  bank_.on_reply(0, sealed_report(9, {0, 0, 0, 0}));
  EXPECT_EQ(bank_.metrics().stale_reports, 1u);
  EXPECT_TRUE(bank_.round_open());
}

TEST_F(BankTest, ReportOutsideRoundIgnored) {
  bank_.on_reply(0, sealed_report(0, {0, 0, 0, 0}));
  EXPECT_EQ(bank_.metrics().stale_reports, 1u);
}

TEST_F(BankTest, WrongSizeCreditVectorRejected) {
  bank_.start_snapshot();
  bank_.on_reply(0, sealed_report(0, {0, 0}));
  EXPECT_EQ(bank_.metrics().bad_envelopes, 1u);
}

TEST_F(BankTest, SecondRoundUsesNextSeq) {
  bank_.start_snapshot();
  for (std::size_t g = 0; g < 4; ++g)
    bank_.on_reply(g, sealed_report(0, {0, 0, 0, 0}));
  EXPECT_EQ(bank_.seq(), 1u);
  const auto reqs = bank_.start_snapshot();
  ASSERT_EQ(reqs.size(), 4u);
  // The new requests carry seq 1: an ISP at seq 1 accepts them.
  const auto plain = unseal(keys_.pub, reqs[0].second);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(SnapshotRequest::deserialize(*plain)->seq, 1u);
}

TEST_F(BankTest, ThreeWayCyclicFlowConsistentAndSettled) {
  bank_.start_snapshot();
  // 0 -> 1 -> 2 -> 0, 7 each.
  bank_.on_reply(0, sealed_report(0, {0, 7, -7, 0}));
  bank_.on_reply(1, sealed_report(0, {-7, 0, 7, 0}));
  bank_.on_reply(2, sealed_report(0, {7, -7, 0, 0}));
  bank_.on_reply(3, sealed_report(0, {0, 0, 0, 0}));
  EXPECT_TRUE(bank_.last_violations().empty());
  // Cyclic flow nets to zero per ISP.
  for (std::size_t g = 0; g < 3; ++g)
    EXPECT_EQ(bank_.account(g), params_.initial_isp_bank_account) << g;
  EXPECT_EQ(bank_.metrics().settlement_transfers, 3u);
}

}  // namespace
}  // namespace zmail::core
