// Harness glue for the google-benchmark micro benches: keeps the normal
// console output but also captures every run into the Bench JSON, so
// BENCH_micro_*.json carries the same machine-readable trajectory as the
// experiment benches.
#pragma once

#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace zmail::bench {

class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(Bench& bench) : bench_(bench) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    json::Value& list = bench_.metrics()["benchmarks"];
    for (const Run& r : runs) {
      json::Value e = json::Value::object();
      e["name"] = r.benchmark_name();
      e["iterations"] = static_cast<std::uint64_t>(r.iterations);
      e["real_time_ns"] = r.GetAdjustedRealTime();
      e["cpu_time_ns"] = r.GetAdjustedCPUTime();
      for (const auto& [name, counter] : r.counters)
        e[name] = static_cast<double>(counter);
      list.push_back(std::move(e));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  Bench& bench_;
};

// Runs the registered benchmarks with JSON capture and finishes the bench.
// benchmark::Initialize consumes the --benchmark_* flags; the Bench
// constructor already ignored them and took the harness flags.
inline int run_micro(Bench& bench, int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  JsonCapturingReporter reporter(bench);
  const std::size_t n = benchmark::RunSpecifiedBenchmarks(&reporter);
  bench.metrics()["benchmarks_run"] = static_cast<std::uint64_t>(n);
  return bench.finish();
}

}  // namespace zmail::bench
