# Empty dependencies file for baselines_misc_test.
# This may be replaced when dependencies are built.
