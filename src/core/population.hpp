// Columnar per-user state (struct-of-arrays).
//
// Each ISP used to hold a std::vector<UserAccount> of ~100-byte records;
// the per-message hot path touches only two or three fields of two users,
// so at realistic populations (10^6..10^7 accounts) every send was a cache
// miss into a fat row, end-of-day reset walked every record, and snapshots
// re-serialized twelve fields per user.  Population stores each field as
// its own dense column indexed by UserId slot:
//
//   persistent columns   account[] balance[] limit[] warnings[]
//                        quarantined[] lifetime_sent[]
//                        lifetime_received_paid[] lifetime_bought[]
//                        lifetime_sold[]
//   day arena            sent[] blocked_today[]   (one allocation; the
//                        end-of-day reset is a single memset)
//   sparse side table    policy_override          (std::map keyed by slot:
//                        rare, and map order keeps serialization
//                        deterministic)
//
// Rows are exposed through UserRef/ConstUserRef proxies whose members are
// references into the columns, so `isp.user(u).balance -= 1` reads exactly
// as it did with UserAccount.  The boolean-ish columns are std::uint8_t,
// not bool: proxies need addressable storage (vector<bool> has none) and
// raw column snapshots must be able to memcpy bytes back in without
// manufacturing invalid `bool` object representations.
//
// Columns are trivially-copyable arrays on purpose: the "ZSNP" v2 snapshot
// writes each one as a single raw section (column_data()/column_bytes())
// and restore bulk-copies them straight out of an mmap'd file
// (load_column()).
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/user_id.hpp"
#include "util/assert.hpp"
#include "util/money.hpp"

namespace zmail::core {

// Mutable view of one user's row; members alias the population's columns.
// Valid while the Population is alive and not reset.
struct UserRef {
  Money& account;            // real-money balance with the ISP
  EPenny& balance;           // e-penny balance
  std::int64_t& sent;        // paid emails sent today (day arena)
  std::int64_t& limit;       // max paid emails per day (zombie guard)
  std::uint8_t& blocked_today;  // 0/1: hit the limit today (day arena)
  std::int64_t& warnings;    // "check for viruses" warnings sent
  std::uint8_t& quarantined;  // 0/1: suspended after repeated warnings
  std::int64_t& lifetime_sent;
  std::int64_t& lifetime_received_paid;
  EPenny& lifetime_epennies_bought;
  EPenny& lifetime_epennies_sold;
};

struct ConstUserRef {
  constexpr ConstUserRef(const Money& account_, const EPenny& balance_,
                         const std::int64_t& sent_, const std::int64_t& limit_,
                         const std::uint8_t& blocked_today_,
                         const std::int64_t& warnings_,
                         const std::uint8_t& quarantined_,
                         const std::int64_t& lifetime_sent_,
                         const std::int64_t& lifetime_received_paid_,
                         const EPenny& lifetime_epennies_bought_,
                         const EPenny& lifetime_epennies_sold_)
      : account(account_), balance(balance_), sent(sent_), limit(limit_),
        blocked_today(blocked_today_), warnings(warnings_),
        quarantined(quarantined_), lifetime_sent(lifetime_sent_),
        lifetime_received_paid(lifetime_received_paid_),
        lifetime_epennies_bought(lifetime_epennies_bought_),
        lifetime_epennies_sold(lifetime_epennies_sold_) {}
  // A mutable row view narrows to a const one implicitly, so visitors
  // written against ConstUserRef also accept rows from a mutable
  // Population.
  constexpr ConstUserRef(const UserRef& u)
      : ConstUserRef(u.account, u.balance, u.sent, u.limit, u.blocked_today,
                     u.warnings, u.quarantined, u.lifetime_sent,
                     u.lifetime_received_paid, u.lifetime_epennies_bought,
                     u.lifetime_epennies_sold) {}

  const Money& account;
  const EPenny& balance;
  const std::int64_t& sent;
  const std::int64_t& limit;
  const std::uint8_t& blocked_today;
  const std::int64_t& warnings;
  const std::uint8_t& quarantined;
  const std::int64_t& lifetime_sent;
  const std::int64_t& lifetime_received_paid;
  const EPenny& lifetime_epennies_bought;
  const EPenny& lifetime_epennies_sold;
};

class Population {
 public:
  // Column identifiers, in the canonical (snapshot section) order.
  enum class Column : std::uint8_t {
    kAccount = 0,
    kBalance,
    kSent,
    kLimit,
    kBlockedToday,
    kWarnings,
    kQuarantined,
    kLifetimeSent,
    kLifetimeReceivedPaid,
    kLifetimeEpenniesBought,
    kLifetimeEpenniesSold,
  };
  static constexpr std::size_t kColumnCount = 11;

  static constexpr std::size_t column_width(Column c) noexcept {
    return (c == Column::kBlockedToday || c == Column::kQuarantined)
               ? sizeof(std::uint8_t)
               : sizeof(std::int64_t);
  }
  static const char* column_name(Column c) noexcept;

  Population() = default;
  Population(const Population&) = delete;
  Population& operator=(const Population&) = delete;
  Population(Population&&) noexcept = default;
  Population& operator=(Population&&) noexcept = default;

  // Re-initializes to `n` users with the given starting row (everything
  // else zero) and an empty policy side table.
  void reset(std::size_t n, Money account, EPenny balance, std::int64_t limit);

  std::size_t size() const noexcept { return n_; }

  UserRef at(UserId u) {
    ZMAIL_ASSERT(u.slot() < n_);
    const std::size_t i = u.slot();
    return UserRef{account_[i],       balance_[i],      sent_[i],
                   limit_[i],         blocked_[i],      warnings_[i],
                   quarantined_[i],   lifetime_sent_[i],
                   lifetime_received_paid_[i], lifetime_bought_[i],
                   lifetime_sold_[i]};
  }
  ConstUserRef at(UserId u) const {
    ZMAIL_ASSERT(u.slot() < n_);
    const std::size_t i = u.slot();
    return ConstUserRef{account_[i],       balance_[i],      sent_[i],
                        limit_[i],         blocked_[i],      warnings_[i],
                        quarantined_[i],   lifetime_sent_[i],
                        lifetime_received_paid_[i], lifetime_bought_[i],
                        lifetime_sold_[i]};
  }

  // End-of-day reset: zeroes the whole day arena (sent + blocked_today) in
  // one memset instead of walking a million rows.
  void reset_day() noexcept {
    if (day_arena_bytes_ != 0)
      std::memset(day_arena_.get(), 0, day_arena_bytes_);
  }

  // --- Sparse per-user policy override (Section 5) ------------------------
  std::optional<NonCompliantPolicy> policy_override(UserId u) const {
    const auto it = policy_.find(u.slot());
    return it == policy_.end() ? std::nullopt
                               : std::optional<NonCompliantPolicy>(it->second);
  }
  // The override when set, `fallback` (the ISP-wide default) otherwise —
  // the hot-path form: one map lookup, no optional.
  NonCompliantPolicy policy_or(UserId u, NonCompliantPolicy fallback) const {
    if (policy_.empty()) return fallback;
    const auto it = policy_.find(u.slot());
    return it == policy_.end() ? fallback : it->second;
  }
  void set_policy_override(UserId u, std::optional<NonCompliantPolicy> p) {
    ZMAIL_ASSERT(u.slot() < n_);
    if (p)
      policy_[u.slot()] = *p;
    else
      policy_.erase(u.slot());
  }
  // Slot-ordered (std::map) — serialization iterates this directly.
  const std::map<std::uint32_t, NonCompliantPolicy>& policy_overrides()
      const noexcept {
    return policy_;
  }

  // --- Visitation ----------------------------------------------------------
  // Visits every allocated user in slot order as (UserId, ConstUserRef).
  // "Active" = allocated: populations are dense today; the name reserves
  // room for tombstoned slots without another audit-layer migration.
  template <typename Fn>
  void for_each_active(Fn&& fn) const {
    for (std::size_t i = 0; i < n_; ++i) fn(UserId(i), at(UserId(i)));
  }
  template <typename Fn>
  void for_each_active(Fn&& fn) {
    for (std::size_t i = 0; i < n_; ++i) fn(UserId(i), at(UserId(i)));
  }

  // --- Typed column spans (read-only) --------------------------------------
  std::span<const Money> accounts() const noexcept { return {account_.data(), n_}; }
  std::span<const EPenny> balances() const noexcept { return {balance_.data(), n_}; }
  std::span<const std::int64_t> sent_today() const noexcept { return {sent_, n_}; }
  std::span<const std::int64_t> limits() const noexcept { return {limit_.data(), n_}; }
  std::span<const std::uint8_t> blocked_today() const noexcept { return {blocked_, n_}; }
  std::span<const std::int64_t> warnings() const noexcept { return {warnings_.data(), n_}; }
  std::span<const std::uint8_t> quarantined() const noexcept { return {quarantined_.data(), n_}; }

  // Generic typed accessor: T must match the column's element type
  // (Money for kAccount, std::uint8_t for the flag columns, std::int64_t
  // for everything else).  Asserts on mismatch.
  template <typename T>
  std::span<const T> column_span(Column c) const;

  // --- Raw column bytes (snapshot layer) ------------------------------------
  // Columns are stored little-endian in "ZSNP" v2 sections; on the (LE)
  // targets this builds for, that is the in-memory representation, so
  // serialize is one big copy out and restore one big copy in.
  const std::uint8_t* column_data(Column c) const noexcept;
  std::size_t column_bytes(Column c) const noexcept {
    return n_ * column_width(c);
  }
  // Bulk restore of one column; `len` must equal column_bytes(c).
  bool load_column(Column c, const std::uint8_t* data, std::size_t len);

 private:
  std::uint8_t* mutable_column_data(Column c) noexcept {
    return const_cast<std::uint8_t*>(column_data(c));
  }

  std::size_t n_ = 0;
  std::vector<Money> account_;
  std::vector<EPenny> balance_;
  std::vector<std::int64_t> limit_;
  std::vector<std::int64_t> warnings_;
  std::vector<std::uint8_t> quarantined_;
  std::vector<std::int64_t> lifetime_sent_;
  std::vector<std::int64_t> lifetime_received_paid_;
  std::vector<EPenny> lifetime_bought_;
  std::vector<EPenny> lifetime_sold_;
  // Day arena: sent[n] (i64, 8-aligned at offset 0) then blocked_today[n]
  // (u8).  reset_day() clears the whole block at once.
  std::unique_ptr<std::uint8_t[]> day_arena_;
  std::size_t day_arena_bytes_ = 0;
  std::int64_t* sent_ = nullptr;
  std::uint8_t* blocked_ = nullptr;
  std::map<std::uint32_t, NonCompliantPolicy> policy_;
};

template <typename T>
std::span<const T> Population::column_span(Column c) const {
  static_assert(std::is_same_v<T, Money> || std::is_same_v<T, EPenny> ||
                    std::is_same_v<T, std::uint8_t>,
                "columns hold Money, std::int64_t, or std::uint8_t");
  ZMAIL_ASSERT(column_width(c) == sizeof(T));
  if constexpr (std::is_same_v<T, Money>) {
    ZMAIL_ASSERT(c == Column::kAccount);
    return accounts();
  } else if constexpr (std::is_same_v<T, std::uint8_t>) {
    return c == Column::kBlockedToday ? blocked_today() : quarantined();
  } else {
    ZMAIL_ASSERT(c != Column::kAccount);
    return {reinterpret_cast<const EPenny*>(column_data(c)), n_};
  }
}

}  // namespace zmail::core
