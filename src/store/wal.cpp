#include "store/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "store/crc32c.hpp"
#include "trace/trace.hpp"

namespace zmail::store {

namespace {

constexpr std::uint8_t kMagic[4] = {'Z', 'W', 'A', 'L'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 20;  // magic + version + base_lsn + crc
constexpr std::size_t kRecordOverhead = 8;   // body_len + body_crc
constexpr std::size_t kBodyFixed = 9;        // lsn + type
// A record body larger than this cannot come from this simulation; treating
// it as corruption keeps a flipped length byte from triggering a huge read.
constexpr std::uint32_t kMaxBody = 1u << 30;

std::uint32_t read_u32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

std::uint64_t read_u64(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint64_t>(read_u32(p)) << 32) | read_u32(p + 4);
}

bool set_error(std::string* error, const std::string& msg) {
  if (error) *error = msg;
  return false;
}

}  // namespace

StoreStatus read_file(const std::string& path, crypto::Bytes& out) {
  out.clear();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return errno == ENOENT ? StoreStatus::kNotFound : StoreStatus::kIoError;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return StoreStatus::kIoError;
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return StoreStatus::kOk;
}

WalScanResult wal_scan(const crypto::Bytes& file,
                       const std::function<void(const WalRecord&)>& fn) {
  WalScanResult r;
  if (file.size() < kHeaderSize) {
    r.status = file.empty() ? StoreStatus::kNotFound : StoreStatus::kTruncated;
    return r;
  }
  if (std::memcmp(file.data(), kMagic, 4) != 0) {
    r.status = StoreStatus::kBadMagic;
    return r;
  }
  if (read_u32(file.data() + 16) != crc32c(file.data(), 16)) {
    r.status = StoreStatus::kCorrupt;
    return r;
  }
  if (read_u32(file.data() + 4) != kVersion) {
    r.status = StoreStatus::kUnknownVersion;
    return r;
  }
  r.base_lsn = read_u64(file.data() + 8);
  r.last_lsn = r.base_lsn - 1;
  r.valid_bytes = kHeaderSize;

  std::size_t pos = kHeaderSize;
  Lsn expect = r.base_lsn;
  for (;;) {
    const std::size_t left = file.size() - pos;
    if (left == 0) return r;  // clean EOF
    if (left < kRecordOverhead) {
      r.status = StoreStatus::kTruncated;
      return r;
    }
    const std::uint32_t body_len = read_u32(file.data() + pos);
    const std::uint32_t want_crc = read_u32(file.data() + pos + 4);
    if (body_len < kBodyFixed || body_len > kMaxBody) {
      r.status = StoreStatus::kCorrupt;
      return r;
    }
    if (left - kRecordOverhead < body_len) {
      r.status = StoreStatus::kTruncated;
      return r;
    }
    const std::uint8_t* body = file.data() + pos + kRecordOverhead;
    if (crc32c(body, body_len) != want_crc) {
      r.status = StoreStatus::kCorrupt;
      return r;
    }
    const Lsn lsn = read_u64(body);
    if (lsn != expect) {
      r.status = StoreStatus::kCorrupt;
      return r;
    }
    if (fn) {
      WalRecord rec;
      rec.lsn = lsn;
      rec.type = body[8];
      rec.payload = body + kBodyFixed;
      rec.payload_len = body_len - kBodyFixed;
      fn(rec);
    }
    ++expect;
    ++r.records;
    r.last_lsn = lsn;
    pos += kRecordOverhead + body_len;
    r.valid_bytes = pos;
  }
}

WalWriter::~WalWriter() { close(); }

void WalWriter::close() {
  if (fd_ >= 0) {
    sync();
    ::close(fd_);
    fd_ = -1;
  }
}

bool WalWriter::write_header(Lsn base_lsn, std::string* error) {
  crypto::Bytes h;
  h.reserve(kHeaderSize);
  h.insert(h.end(), kMagic, kMagic + 4);
  crypto::put_u32(h, kVersion);
  crypto::put_u64(h, base_lsn);
  crypto::put_u32(h, crc32c(h.data(), h.size()));
  if (::lseek(fd_, 0, SEEK_SET) != 0)
    return set_error(error, "wal: lseek: " + std::string(std::strerror(errno)));
  if (::ftruncate(fd_, 0) != 0)
    return set_error(error, "wal: ftruncate: " + std::string(std::strerror(errno)));
  const ssize_t n = ::write(fd_, h.data(), h.size());
  if (n != static_cast<ssize_t>(h.size()))
    return set_error(error, "wal: write header: " + std::string(std::strerror(errno)));
  if (fsync_data_ && ::fsync(fd_) != 0)
    return set_error(error, "wal: fsync: " + std::string(std::strerror(errno)));
  return true;
}

bool WalWriter::open(const std::string& path, std::uint32_t group_commit_records,
                     bool fsync_data, std::string* error) {
  close();
  path_ = path;
  group_ = group_commit_records == 0 ? 1 : group_commit_records;
  fsync_data_ = fsync_data;
  pending_.clear();
  pending_records_ = 0;

  crypto::Bytes existing;
  const StoreStatus rs = read_file(path, existing);
  if (rs == StoreStatus::kIoError)
    return set_error(error, "wal: read " + path + ": " + std::strerror(errno));

  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0)
    return set_error(error, "wal: open " + path + ": " + std::strerror(errno));

  if (rs == StoreStatus::kNotFound || existing.empty()) {
    next_lsn_ = 1;
    durable_lsn_ = 0;
    return write_header(1, error);
  }

  const WalScanResult scan = wal_scan(existing);
  switch (scan.status) {
    case StoreStatus::kOk:
    case StoreStatus::kTruncated:
    case StoreStatus::kCorrupt:
      break;  // usable up to valid_bytes (possibly zero records)
    default:
      ::close(fd_);
      fd_ = -1;
      return set_error(error, std::string("wal: unusable log header: ") +
                                  store_status_name(scan.status));
  }
  if (scan.valid_bytes < kHeaderSize) {
    // Header itself was damaged or short: start the log over.
    next_lsn_ = 1;
    durable_lsn_ = 0;
    return write_header(1, error);
  }
  // Trim any torn tail so future appends extend a fully valid log.
  if (scan.valid_bytes < existing.size() &&
      ::ftruncate(fd_, static_cast<off_t>(scan.valid_bytes)) != 0)
    return set_error(error, "wal: trim: " + std::string(std::strerror(errno)));
  if (::lseek(fd_, 0, SEEK_END) < 0)
    return set_error(error, "wal: lseek: " + std::string(std::strerror(errno)));
  next_lsn_ = scan.last_lsn + 1;
  durable_lsn_ = scan.last_lsn;
  return true;
}

Lsn WalWriter::append_record(std::uint8_t type, const crypto::Bytes& payload) {
  const Lsn lsn = next_lsn_++;
  crypto::Bytes body;
  body.reserve(kBodyFixed + payload.size());
  crypto::put_u64(body, lsn);
  crypto::put_u8(body, type);
  body.insert(body.end(), payload.begin(), payload.end());
  crypto::put_u32(pending_, static_cast<std::uint32_t>(body.size()));
  crypto::put_u32(pending_, crc32c(body.data(), body.size()));
  pending_.insert(pending_.end(), body.begin(), body.end());
  ++pending_records_;
  ++stats_.records_appended;
  stats_.bytes_appended += kRecordOverhead + body.size();
  if (pending_records_ >= group_) sync();
  return lsn;
}

void WalWriter::sync() {
  if (fd_ < 0 || pending_.empty()) return;
  ZMAIL_PROF_SCOPE("store.wal_sync");
  std::size_t off = 0;
  while (off < pending_.size()) {
    const ssize_t n = ::write(fd_, pending_.data() + off, pending_.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // sim store: nothing actionable mid-run; recovery re-scans
    }
    off += static_cast<std::size_t>(n);
  }
  pending_.clear();
  pending_records_ = 0;
  ++stats_.syncs;
  if (fsync_data_) {
    ::fsync(fd_);
    ++stats_.fsyncs;
  }
  durable_lsn_ = next_lsn_ - 1;
}

bool WalWriter::truncate_behind_checkpoint(std::string* error) {
  if (fd_ < 0) return set_error(error, "wal: not open");
  // Records buffered but not yet synced are also covered by the checkpoint.
  pending_.clear();
  pending_records_ = 0;
  if (!write_header(next_lsn_, error)) return false;
  durable_lsn_ = next_lsn_ - 1;
  return true;
}

void WalWriter::simulate_crash() {
  pending_.clear();
  pending_records_ = 0;
  next_lsn_ = durable_lsn_ + 1;
}

}  // namespace zmail::store
