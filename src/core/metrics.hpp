// Counters shared by the ISP and bank state machines.
//
// Everything the experiments measure is a counter here — the protocol code
// has no printf-style instrumentation, only counting.
#pragma once

#include <cstdint>

#include "util/money.hpp"

namespace zmail::core {

struct IspMetrics {
  // Mail flow.
  std::uint64_t emails_sent_local = 0;
  std::uint64_t emails_sent_compliant = 0;     // paid, to other compliant ISPs
  std::uint64_t emails_sent_noncompliant = 0;  // free, to non-compliant ISPs
  std::uint64_t emails_received_compliant = 0;
  std::uint64_t emails_received_noncompliant = 0;
  std::uint64_t emails_delivered = 0;
  std::uint64_t emails_segregated = 0;
  std::uint64_t emails_discarded = 0;
  std::uint64_t emails_filtered_out = 0;

  // Refusals at send time.
  std::uint64_t refused_no_balance = 0;
  std::uint64_t refused_daily_limit = 0;

  // Quiesce behaviour (Section 4.4).
  std::uint64_t emails_buffered_during_quiesce = 0;
  std::uint64_t snapshots_answered = 0;

  // Zombie guard (Section 5).
  std::uint64_t zombie_warnings_sent = 0;

  // Mailing-list acknowledgments (Section 5).
  std::uint64_t acks_generated = 0;
  std::uint64_t acks_received = 0;

  // Bank trade.
  std::uint64_t bank_buys_attempted = 0;
  std::uint64_t bank_buys_accepted = 0;
  std::uint64_t bank_sells = 0;

  // Replay / tamper rejections.
  std::uint64_t bad_nonce_replies = 0;
  std::uint64_t bad_envelopes = 0;
  std::uint64_t stale_requests = 0;
};

struct BankMetrics {
  std::uint64_t buys_received = 0;
  std::uint64_t buys_accepted = 0;
  std::uint64_t buys_rejected = 0;
  std::uint64_t sells_received = 0;
  std::uint64_t snapshot_rounds = 0;
  std::uint64_t credit_reports_received = 0;
  std::uint64_t inconsistent_pairs_found = 0;
  std::uint64_t bad_envelopes = 0;
  std::uint64_t stale_reports = 0;

  // E-penny supply accounting (for the conservation invariant).
  EPenny epennies_minted = 0;
  EPenny epennies_burned = 0;

  // Bulk-settlement ledger activity (for E5 vs per-message schemes).
  std::uint64_t settlement_transfers = 0;
  std::uint64_t settlement_bytes = 0;
};

}  // namespace zmail::core
