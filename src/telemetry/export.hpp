// Exporters and merge/derive logic for recorded telemetry.
//
// Formats:
//   - JSON: the obs v3 "timeseries" / "timeseries_engine" sections
//     (canonically sorted keys; deterministic section bit-identical across
//     shard/thread counts).
//   - CSV (long format): one row per point —
//       section,scope,series,kind,t_us,value,count,sum,min,max,p50,p99
//     the format zmail_top renders and spreadsheets ingest.
//   - Prometheus text exposition: current value per series, rewritten at
//     sampling cadence (the scrape surface for the future socket mode).
//
// Merging: a sharded world holds one registry per shard; every
// deterministic series has exactly one owner, so the merged view is the
// sorted union plus export-time derived aggregates (integer-exact
// point-wise sums walked in canonical key order).
#pragma once

#include <string>
#include <vector>

#include "telemetry/registry.hpp"
#include "telemetry/series.hpp"
#include "util/json.hpp"

namespace zmail::telemetry {

// Inputs for the derived aggregate series appended by merge.
struct DeriveSpec {
  // Initial e-penny endowment of the whole world (for the conservation-gap
  // series); < 0 skips the gap series.
  double endowment_epennies = -1.0;
};

// Union of every registry's series, canonically sorted by key, with
// derived aggregates appended:
//   core.total.delivered / core.total.blocked / core.total.refused —
//     point-wise sums of the per-ISP rates;
//   econ.total.epennies_held — point-wise sum of per-ISP holdings;
//   econ.total.conservation_gap — supply + endowment - holdings (>= 0:
//     e-pennies in flight; a growing floor is a leak);
//   econ.market.stamp_price_micros — mean of the per-ISP price gauges;
//   sim.shard_imbalance_ratio (engine) — busiest/idlest shard event rate.
// Derived sums only combine series with identical timestamp grids (always
// true for same-cadence registries); mismatches are skipped, not guessed.
std::vector<Series> merge_series(
    const std::vector<const TelemetryRegistry*>& registries,
    const DeriveSpec& spec = {});

// Convenience over already-collected series (zmail_top's CSV path).
std::vector<Series> merge_collected(std::vector<Series> series,
                                    const DeriveSpec& spec = {});

// {"<scope>.<name>": {"kind": ..., "points": [[t,value],...] |
//  [[t,count,sum,min,max,p50,p99],...]}} for every series matching
// `engine`.  Keys sorted canonically.
json::Value timeseries_json(const std::vector<Series>& series, bool engine);

std::string csv_string(const std::vector<Series>& series);
bool write_csv(const std::string& path, const std::vector<Series>& series,
               std::string* error = nullptr);
// Parses a CSV written by write_csv (zmail_top's offline input).
bool load_csv(const std::string& path, std::vector<Series>* out,
              std::string* error = nullptr);

std::string prometheus_text(const std::vector<Series>& series);
bool write_prometheus(const std::string& path,
                      const std::vector<Series>& series,
                      std::string* error = nullptr);

}  // namespace zmail::telemetry
