// ISP overhead cost model (paper Section 1.2, claim 3).
//
// "The Zmail protocol significantly reduces spam and therefore reduces the
//  overhead costs of ISPs by saving their disk space, bandwidth, and
//  computational cost for running spam filters."
//
// Per-message resource consumption times unit prices, split by message
// class, so benches can compare a 60%-spam SMTP world (Brightmail, April
// 2004) against a Zmail world where the spam share collapses.
#pragma once

#include <cstdint>

#include "util/money.hpp"

namespace zmail::econ {

using zmail::Money;

struct ResourcePrices {
  // Dollars per GB transferred / stored per month / CPU-hour, 2004-flavored.
  double dollars_per_gb_bandwidth = 0.50;
  double dollars_per_gb_month_storage = 2.00;
  double dollars_per_cpu_hour = 0.40;
};

struct MessageProfile {
  double avg_size_kb = 12.0;          // average message size
  double storage_months = 0.5;        // average retention
  double filter_cpu_ms = 4.0;         // content-filter CPU per message
  bool filtered = true;               // whether a filter runs at all
};

struct IspLoad {
  std::uint64_t legit_messages = 0;
  std::uint64_t spam_messages = 0;
};

struct IspCostBreakdown {
  Money bandwidth;
  Money storage;
  Money filter_cpu;
  Money total;
  Money attributable_to_spam;  // marginal cost of the spam share
};

// Cost of carrying `load`, with `profile` applied to every message.
// Spam that is filtered out early still consumes bandwidth and filter CPU,
// but only `spam_stored_fraction` of it incurs storage.
IspCostBreakdown isp_cost(const IspLoad& load, const MessageProfile& profile,
                          const ResourcePrices& prices,
                          double spam_stored_fraction = 1.0) noexcept;

}  // namespace zmail::econ
