#include "sim/sweep.hpp"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <utility>

#include "util/rng.hpp"

namespace zmail::sweep {
namespace {

TEST(DeriveSeed, DeterministicAndDistinct) {
  EXPECT_EQ(derive_seed(42, 0, 0), derive_seed(42, 0, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 42ull}) {
    for (std::uint64_t point = 0; point < 8; ++point) {
      for (std::uint64_t rep = 0; rep < 8; ++rep) {
        seen.insert(derive_seed(base, point, rep));
      }
    }
  }
  // 3 * 8 * 8 distinct triples must map to distinct seeds.
  EXPECT_EQ(seen.size(), 192u);
}

TEST(DeriveSeed, AdjacentInputsDiverge) {
  // Low-entropy neighbouring triples must not give neighbouring seeds.
  const std::uint64_t a = derive_seed(42, 0, 0);
  const std::uint64_t b = derive_seed(42, 0, 1);
  const std::uint64_t c = derive_seed(43, 0, 0);
  EXPECT_GT(a > b ? a - b : b - a, 1u << 20);
  EXPECT_GT(a > c ? a - c : c - a, 1u << 20);
}

TEST(MetricBag, MergeUnionsByName) {
  MetricBag a, b;
  a.stat("x").add(1.0);
  a.count("n", 2.0);
  b.stat("x").add(3.0);
  b.stat("only_b").add(7.0);
  b.count("n", 1.0);
  b.count("only_b_counter", 5.0);
  a.merge(b);
  EXPECT_EQ(a.find_stat("x")->count(), 2u);
  EXPECT_DOUBLE_EQ(a.find_stat("x")->sum(), 4.0);
  EXPECT_EQ(a.find_stat("only_b")->count(), 1u);
  EXPECT_DOUBLE_EQ(a.counter("n"), 3.0);
  EXPECT_DOUBLE_EQ(a.counter("only_b_counter"), 5.0);
  EXPECT_DOUBLE_EQ(a.counter("absent"), 0.0);
}

TEST(MetricBag, HistogramsMergeByShape) {
  MetricBag a, b;
  a.hist("lat", 0.0, 10.0, 10).add(1.0);
  b.hist("lat", 0.0, 10.0, 10).add(9.0);
  a.merge(b);
  EXPECT_EQ(a.hists().at("lat").total(), 2u);
}

// A replica function whose result depends only on (point, seed): a short
// deterministic PRNG walk.
MetricBag walk_replica(const Point& pt, std::uint64_t seed) {
  Rng rng(seed);
  MetricBag bag;
  const int n = static_cast<int>(pt.param("steps", 50));
  for (int i = 0; i < n; ++i) bag.stat("value").add(rng.normal(0.0, 1.0));
  bag.count("steps", n);
  bag.hist("walk", -5.0, 5.0, 20).add(rng.normal(0.0, 1.0));
  return bag;
}

TEST(SweepRun, OneThreadAndFourThreadsBitIdentical) {
  const std::vector<Point> grid = {
      {"a", {{"steps", 40}}},
      {"b", {{"steps", 90}}},
  };
  SweepOptions serial;
  serial.base_seed = 1234;
  serial.replicas = 6;
  serial.threads = 1;
  SweepOptions parallel = serial;
  parallel.threads = 4;

  const auto fn = [](const Point& pt, std::uint64_t seed, std::size_t) {
    return walk_replica(pt, seed);
  };
  const SweepResult r1 = run(grid, serial, fn);
  const SweepResult r4 = run(grid, parallel, fn);

  ASSERT_EQ(r1.points.size(), 2u);
  ASSERT_EQ(r4.points.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    const MetricBag& m1 = r1.points[i].merged;
    const MetricBag& m4 = r4.points[i].merged;
    // Exact equality, not tolerance: the harness merges slots in replica
    // order behind a barrier, so thread count must not matter at all.
    const OnlineStats* s1 = m1.find_stat("value");
    const OnlineStats* s4 = m4.find_stat("value");
    ASSERT_NE(s1, nullptr);
    ASSERT_NE(s4, nullptr);
    EXPECT_EQ(s1->count(), s4->count());
    EXPECT_EQ(s1->mean(), s4->mean());
    EXPECT_EQ(s1->variance(), s4->variance());
    EXPECT_EQ(s1->min(), s4->min());
    EXPECT_EQ(s1->max(), s4->max());
    EXPECT_EQ(m1.counters(), m4.counters());
    EXPECT_EQ(m1.hists().at("walk").buckets(), m4.hists().at("walk").buckets());
  }
}

TEST(SweepRun, RepeatRunsAreIdentical) {
  SweepOptions opt;
  opt.base_seed = 7;
  opt.replicas = 3;
  opt.threads = 2;
  const auto fn = [](const Point& pt, std::uint64_t seed, std::size_t) {
    return walk_replica(pt, seed);
  };
  const Point pt{"p", {{"steps", 64}}};
  const SweepResult a = run(pt, opt, fn);
  const SweepResult b = run(pt, opt, fn);
  EXPECT_EQ(a.points[0].merged.find_stat("value")->mean(),
            b.points[0].merged.find_stat("value")->mean());
}

TEST(SweepRun, ReplicaSeedsFollowDerivation) {
  SweepOptions opt;
  opt.base_seed = 99;
  opt.replicas = 4;
  opt.threads = 2;
  std::mutex mu;
  std::map<std::pair<std::size_t, std::size_t>, std::uint64_t> got;
  const std::vector<Point> grid = {{"p0", {}}, {"p1", {}}};
  run(grid, opt,
      [&](const Point& pt, std::uint64_t seed, std::size_t replica) {
        const std::size_t point_index = pt.label == "p0" ? 0 : 1;
        std::lock_guard<std::mutex> lock(mu);
        got[{point_index, replica}] = seed;
        return MetricBag{};
      });
  ASSERT_EQ(got.size(), 8u);
  for (const auto& [key, seed] : got)
    EXPECT_EQ(seed, derive_seed(99, key.first, key.second));
}

TEST(SweepRun, ResultMetadataAndJson) {
  SweepOptions opt;
  opt.base_seed = 5;
  opt.replicas = 2;
  opt.threads = 2;
  const SweepResult r =
      run(Point{"only", {{"steps", 10}}}, opt,
          [](const Point& pt, std::uint64_t seed, std::size_t) {
            MetricBag bag = walk_replica(pt, seed);
            bag.count("events", 10);
            return bag;
          });
  EXPECT_EQ(r.replicas, 2u);
  EXPECT_EQ(r.threads, 2u);
  EXPECT_EQ(r.base_seed, 5u);
  EXPECT_DOUBLE_EQ(r.total_counter("events"), 20.0);
  EXPECT_EQ(&r.at_label("only"), &r.points[0]);

  const json::Value j = r.to_json();
  std::string err;
  const auto parsed = json::parse(j.dump(2), &err);
  ASSERT_TRUE(parsed.has_value()) << err;
  EXPECT_EQ(parsed->find("replicas")->as_uint64(), 2u);
}

}  // namespace
}  // namespace zmail::sweep
