file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_zero_sum_users.dir/bench_e2_zero_sum_users.cpp.o"
  "CMakeFiles/bench_e2_zero_sum_users.dir/bench_e2_zero_sum_users.cpp.o.d"
  "bench_e2_zero_sum_users"
  "bench_e2_zero_sum_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_zero_sum_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
