#include "ap/scheduler.hpp"

#include <gtest/gtest.h>

#include "ap/trace_format.hpp"
#include "core/ap_spec.hpp"
#include "crypto/bytes.hpp"

namespace zmail::ap {
namespace {

// A process that sends `count` ping messages and counts pongs.
class Pinger : public Process {
 public:
  explicit Pinger(int count) : remaining_(count) {
    add_action(
        "ping", [this] { return remaining_ > 0 && peer_ != kNoProcess; },
        [this] {
          --remaining_;
          send(peer_, "ping");
        });
    add_receive("pong", [this](const Message&) { ++pongs_; });
  }
  void set_peer(ProcessId p) { peer_ = p; }
  int pongs() const { return pongs_; }
  int remaining() const { return remaining_; }

 private:
  ProcessId peer_ = kNoProcess;
  int remaining_;
  int pongs_ = 0;
};

class Ponger : public Process {
 public:
  Ponger() {
    add_receive("ping", [this](const Message& m) {
      ++pings_;
      send(m.from, "pong");
    });
  }
  int pings() const { return pings_; }

 private:
  int pings_ = 0;
};

TEST(ApScheduler, PingPongRunsToQuiescence) {
  Scheduler sched;
  Pinger pinger(5);
  Ponger ponger;
  const ProcessId p1 = sched.add_process(pinger, "pinger");
  const ProcessId p2 = sched.add_process(ponger, "ponger");
  (void)p1;
  pinger.set_peer(p2);
  sched.run();
  EXPECT_EQ(pinger.remaining(), 0);
  EXPECT_EQ(ponger.pings(), 5);
  EXPECT_EQ(pinger.pongs(), 5);
  EXPECT_TRUE(sched.all_channels_empty());
  EXPECT_EQ(sched.messages_sent(), 10u);
}

TEST(ApScheduler, QuiescentSchedulerStepsReturnFalse) {
  Scheduler sched;
  Ponger ponger;  // only receive actions; nothing to receive
  sched.add_process(ponger, "p");
  EXPECT_FALSE(sched.step());
  EXPECT_EQ(sched.run(), 0u);
}

TEST(ApScheduler, MaxStepsBoundsExecution) {
  Scheduler sched;
  Pinger pinger(1'000'000);
  Ponger ponger;
  sched.add_process(pinger, "pinger");
  const ProcessId p2 = sched.add_process(ponger, "ponger");
  pinger.set_peer(p2);
  EXPECT_EQ(sched.run(100), 100u);
}

// FIFO: a sender emits numbered messages; the receiver checks order.
class Sequencer : public Process {
 public:
  explicit Sequencer(ProcessId* peer) : peer_(peer) {
    add_action(
        "emit", [this] { return next_ < 50; },
        [this] {
          crypto::Bytes b;
          crypto::put_u32(b, next_++);
          send(*peer_, "num", std::move(b));
        });
  }

 private:
  ProcessId* peer_;
  std::uint32_t next_ = 0;
};

class OrderChecker : public Process {
 public:
  OrderChecker() {
    add_receive("num", [this](const Message& m) {
      crypto::ByteReader r(m.payload);
      const std::uint32_t v = r.get_u32();
      in_order_ = in_order_ && (v == expected_);
      ++expected_;
    });
  }
  bool in_order() const { return in_order_; }
  std::uint32_t received() const { return expected_; }

 private:
  bool in_order_ = true;
  std::uint32_t expected_ = 0;
};

TEST(ApScheduler, ChannelsAreFifo) {
  for (auto policy : {Scheduler::Policy::kRoundRobin,
                      Scheduler::Policy::kRandom}) {
    Scheduler sched(policy, 99);
    ProcessId receiver_id = kNoProcess;
    Sequencer seq(&receiver_id);
    OrderChecker checker;
    sched.add_process(seq, "seq");
    receiver_id = sched.add_process(checker, "checker");
    sched.run();
    EXPECT_TRUE(checker.in_order());
    EXPECT_EQ(checker.received(), 50u);
  }
}

// Weak fairness: two always-enabled actions must both run.
class TwoCounters : public Process {
 public:
  TwoCounters() {
    add_action(
        "a", [this] { return steps_ < 100; },
        [this] {
          ++a_;
          ++steps_;
        });
    add_action(
        "b", [this] { return steps_ < 100; },
        [this] {
          ++b_;
          ++steps_;
        });
  }
  int a() const { return a_; }
  int b() const { return b_; }

 private:
  int a_ = 0, b_ = 0, steps_ = 0;
};

TEST(ApScheduler, RoundRobinIsWeaklyFair) {
  Scheduler sched;
  TwoCounters p;
  sched.add_process(p, "p");
  sched.run();
  EXPECT_EQ(p.a(), 50);
  EXPECT_EQ(p.b(), 50);
}

TEST(ApScheduler, RandomPolicyIsFairEnough) {
  Scheduler sched(Scheduler::Policy::kRandom, 7);
  TwoCounters p;
  sched.add_process(p, "p");
  sched.run();
  EXPECT_GT(p.a(), 20);
  EXPECT_GT(p.b(), 20);
}

TEST(ApScheduler, RandomPolicyDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    Scheduler sched(Scheduler::Policy::kRandom, seed);
    TwoCounters p;
    sched.add_process(p, "p");
    sched.run();
    return p.a();
  };
  EXPECT_EQ(run_once(5), run_once(5));
}

// Timeout guard over global state.
class Quiescer : public Process {
 public:
  Quiescer() {
    add_timeout(
        "when-quiet",
        [this](const GlobalView& g) {
          return !fired_ && g.all_channels_empty();
        },
        [this] { fired_ = true; });
  }
  bool fired() const { return fired_; }

 private:
  bool fired_ = false;
};

TEST(ApScheduler, TimeoutGuardSeesGlobalState) {
  Scheduler sched;
  Pinger pinger(3);
  Ponger ponger;
  Quiescer q;
  sched.add_process(pinger, "pinger");
  const ProcessId p2 = sched.add_process(ponger, "ponger");
  sched.add_process(q, "quiescer");
  pinger.set_peer(p2);
  sched.run();
  EXPECT_TRUE(q.fired());
  EXPECT_TRUE(sched.all_channels_empty());
}

TEST(ApScheduler, InboundOutboundEmptyQueries) {
  Scheduler sched;
  Pinger pinger(1);
  Ponger ponger;
  const ProcessId p1 = sched.add_process(pinger, "pinger");
  const ProcessId p2 = sched.add_process(ponger, "ponger");
  pinger.set_peer(p2);
  sched.step();  // pinger sends one ping
  EXPECT_FALSE(sched.inbound_empty(p2));
  EXPECT_FALSE(sched.outbound_empty(p1));
  EXPECT_TRUE(sched.inbound_empty(p1));
  EXPECT_EQ(sched.total_messages_in_flight(), 1u);
  sched.run();
  EXPECT_TRUE(sched.inbound_empty(p2));
}

TEST(ApScheduler, TraceRecordsActions) {
  Scheduler sched;
  sched.set_trace_enabled(true);
  Pinger pinger(2);
  Ponger ponger;
  sched.add_process(pinger, "pinger");
  const ProcessId p2 = sched.add_process(ponger, "ponger");
  pinger.set_peer(p2);
  sched.run();
  ASSERT_FALSE(sched.trace().empty());
  EXPECT_EQ(sched.trace().front().action, "ping");
  bool saw_receive = false;
  for (const auto& e : sched.trace())
    if (e.action == "rcv ping") {
      saw_receive = true;
      EXPECT_EQ(e.msg_type, "ping");
    }
  EXPECT_TRUE(saw_receive);
}

TEST(ApScheduler, TraceFormatting) {
  Scheduler sched;
  sched.set_trace_enabled(true);
  Pinger pinger(2);
  Ponger ponger;
  sched.add_process(pinger, "pinger");
  const ProcessId p2 = sched.add_process(ponger, "ponger");
  pinger.set_peer(p2);
  sched.run();

  const std::string full = format_trace(sched);
  EXPECT_NE(full.find("pinger"), std::string::npos);
  EXPECT_NE(full.find("rcv ping"), std::string::npos);
  EXPECT_NE(full.find("<- pinger"), std::string::npos);

  // Truncation elides early steps.
  const std::string tail = format_trace(sched, 2);
  EXPECT_NE(tail.find("elided"), std::string::npos);
  EXPECT_EQ(std::count(tail.begin(), tail.end(), '\n'), 3);

  const std::string counts = format_action_counts(sched);
  EXPECT_NE(counts.find("ping"), std::string::npos);
  EXPECT_NE(counts.find("2"), std::string::npos);
}

TEST(ApScheduler, MessageReplayViaChannelInjection) {
  // The adversarial hook used by replay tests: copy a message back in.
  Scheduler sched;
  Pinger pinger(1);
  Ponger ponger;
  const ProcessId p1 = sched.add_process(pinger, "pinger");
  const ProcessId p2 = sched.add_process(ponger, "ponger");
  pinger.set_peer(p2);
  sched.step();  // ping in flight
  Channel& ch = sched.channel(p1, p2);
  ASSERT_FALSE(ch.empty());
  const Message dup = ch.front();
  ch.push(dup);  // adversary duplicates the datagram
  sched.run();
  EXPECT_EQ(ponger.pings(), 2);  // the runtime delivers both; the *protocol*
                                 // layer must reject the replay
}

TEST(ApScheduler, LostBuyReplyTimeoutRetriesAndRecovers) {
  // Section 3 gives processes timeout actions precisely so a lost message
  // cannot deadlock the protocol.  Script the loss against the executable
  // Zmail spec: an ISP below minavail buys from the bank, the adversary
  // pops the buyreply out of the channel, and the spec must (a) fire the
  // buy-retry timeout, (b) resend the same nonce so the bank absorbs the
  // duplicate instead of minting twice, and (c) complete the exchange.
  core::ZmailParams p;
  p.n_isps = 2;
  p.users_per_isp = 1;
  p.minavail = 50;
  p.maxavail = 200;
  p.initial_avail = 10;  // below minavail: the buy guard is enabled at once
  core::ApZmailWorld world(p, Scheduler::Policy::kRoundRobin, 77);
  Scheduler& sched = world.scheduler();
  sched.set_trace_enabled(true);
  const auto initial = world.total_epennies();

  // Run until isp0's buyreply is in flight, then lose it.
  Channel& reply_ch = sched.channel(world.bank_pid(), world.isp_pid(0));
  std::uint64_t safety = 0;
  while (reply_ch.empty() && sched.step()) ASSERT_LT(++safety, 10'000u);
  ASSERT_FALSE(reply_ch.empty());
  ASSERT_EQ(reply_ch.front().type, core::kMsgBuyReply.name());
  (void)reply_ch.pop();  // the adversary drops the reply in transit

  const core::ApIspProcess& isp0 = world.isp(0);
  EXPECT_FALSE(isp0.canbuy);  // the exchange is stuck without recovery

  world.run();

  // The timeout action fired and the retry carried the original nonce: the
  // bank recognized the duplicate and replayed its reply instead of
  // re-applying the trade.
  EXPECT_GE(isp0.buy_retries, 1u);
  EXPECT_GE(world.bank().duplicate_buys, 1u);
  EXPECT_TRUE(isp0.canbuy);
  EXPECT_GE(isp0.avail, p.minavail);
  EXPECT_TRUE(sched.all_channels_empty());
  // Exactly-once accounting: a double mint would break the supply identity.
  EXPECT_EQ(world.total_epennies(),
            initial + world.epennies_minted() - world.epennies_burned());

  // The trace shows the Section 3 shape: timeout fires, then the (replayed)
  // reply is received.
  std::size_t retry_step = 0, reply_step = 0;
  for (const auto& e : sched.trace()) {
    if (e.process != world.isp_pid(0)) continue;
    if (e.action == "buy-retry" && retry_step == 0) retry_step = e.step;
    if (e.action == std::string("rcv ").append(core::kMsgBuyReply.name()) &&
        e.step > retry_step && retry_step != 0 && reply_step == 0)
      reply_step = e.step;
  }
  EXPECT_GT(retry_step, 0u);
  EXPECT_GT(reply_step, retry_step);
}

}  // namespace
}  // namespace zmail::ap
