// Composed filtering pipeline (paper Section 2.2):
// "an email that passes a whitelist check could be delivered to its
//  intended receiver directly and an email that does not pass a whitelist
//  checking could be sent to a content based spam filter for further
//  examination."
//
// Order: whitelist (admit) -> blacklist (reject) -> content filter.
#pragma once

#include "baselines/bayes.hpp"
#include "baselines/blacklist.hpp"

namespace zmail::baselines {

enum class FilterVerdict : std::uint8_t {
  kDeliverWhitelisted,
  kRejectBlacklisted,
  kRejectContent,
  kDeliver,
};

const char* filter_verdict_name(FilterVerdict v) noexcept;

class FilterPipeline {
 public:
  FilterPipeline() = default;

  Whitelist& whitelist() noexcept { return whitelist_; }
  Blacklist& blacklist() noexcept { return blacklist_; }
  NaiveBayesFilter& content() noexcept { return content_; }

  FilterVerdict classify(const net::EmailMessage& msg) const;
  bool rejects(const net::EmailMessage& msg) const {
    const FilterVerdict v = classify(msg);
    return v == FilterVerdict::kRejectBlacklisted ||
           v == FilterVerdict::kRejectContent;
  }

 private:
  Whitelist whitelist_;
  Blacklist blacklist_;
  NaiveBayesFilter content_;
};

}  // namespace zmail::baselines
