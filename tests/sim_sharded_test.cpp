// Sharded engine end to end: the merged observable state of a partitioned
// world must be bit-identical at any shard or thread count (fault-free and
// under an adversarial FaultPlan), the single-shard facade must be
// byte-equivalent to the plain whole-world system, cross-shard ARQ
// retransmit and refund chains must validate, an ISP living on a non-zero
// shard must crash and recover from its durable store, and the barrier
// audits must stay green throughout.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/obs.hpp"
#include "core/sharded_system.hpp"
#include "core/system.hpp"
#include "net/address.hpp"
#include "net/faults.hpp"
#include "trace/analyze.hpp"
#include "trace/trace.hpp"
#include "util/json.hpp"

namespace zmail::core {
namespace {

ZmailParams world_params() {
  ZmailParams p;
  p.n_isps = 8;
  p.users_per_isp = 3;
  p.initial_user_balance = 200;
  p.default_daily_limit = 1'000;
  p.initial_avail = 300;
  p.minavail = 100;
  p.maxavail = 600;
  p.record_inboxes = false;
  return p;
}

// One fixed verb stream, replayed identically against any world (plain
// ZmailSystem or ShardedSystem at any shard count).  The draws depend only
// on the seed, never on world state, so every run issues the same verbs.
template <typename World>
void drive_mixed_traffic(World& w, std::uint64_t seed, int rounds) {
  Rng rng(seed);
  const std::size_t n = w.params().n_isps;
  const std::size_t u = w.params().users_per_isp;
  for (int i = 0; i < rounds; ++i) {
    const std::size_t src = rng.next_below(n);
    const std::size_t dst = (src + 1 + rng.next_below(n - 1)) % n;
    w.send_email(net::make_user_address(src, rng.next_below(u)),
                 net::make_user_address(dst, rng.next_below(u)), "t",
                 "b" + std::to_string(i));
    if (i % 7 == 3)
      w.buy_epennies(net::make_user_address(src, 0),
                     static_cast<EPenny>(1 + rng.next_below(5)));
    if (i % 11 == 6)
      w.sell_epennies(net::make_user_address(dst, 0),
                      static_cast<EPenny>(1 + rng.next_below(3)));
    w.run_for(sim::kMinute);
  }
  w.run_for(sim::kHour);
}

// The kV1 snapshot carries only merged, partition-independent values (the
// kV2 "engine" section reports windows/messages, which legitimately vary
// with the partition), so it is the right artifact for bit-identity.
std::string run_and_snapshot(std::size_t shards, std::size_t threads,
                             std::uint64_t seed) {
  ShardOptions o;
  o.shards = shards;
  o.threads = threads;
  ShardedSystem w(world_params(), seed, o);
  drive_mixed_traffic(w, seed + 1, 40);
  w.end_of_day();
  w.run_for(sim::kHour);
  EXPECT_EQ(w.horizon_clamps(), 0u) << "lookahead bound violated somewhere";
  EXPECT_TRUE(w.barrier_audit().ok())
      << (w.barrier_audit().messages.empty()
              ? ""
              : w.barrier_audit().messages.front());
  EXPECT_TRUE(w.conservation_holds());
  return obs::snapshot(w, obs::Schema::kV1).dump();
}

TEST(ShardedDeterminismTest, MergedSnapshotBitIdenticalAcrossShardCounts) {
  const std::string s2 = run_and_snapshot(2, 0, 505);
  const std::string s4 = run_and_snapshot(4, 0, 505);
  const std::string s8 = run_and_snapshot(8, 0, 505);
  EXPECT_EQ(s2, s4);
  EXPECT_EQ(s4, s8);
}

TEST(ShardedDeterminismTest, MergedSnapshotIndependentOfThreadCount) {
  const std::string t1 = run_and_snapshot(4, 1, 606);
  const std::string t2 = run_and_snapshot(4, 2, 606);
  const std::string t4 = run_and_snapshot(4, 4, 606);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t2, t4);
}

TEST(ShardedDeterminismTest, SingleShardMatchesWholeSystemByteForByte) {
  ZmailSystem plain(world_params(), 707);
  drive_mixed_traffic(plain, 708, 40);

  ShardOptions o;  // shards == 1: facade holds one whole-world system
  ShardedSystem facade(world_params(), 707, o);
  EXPECT_FALSE(facade.sharded());
  EXPECT_EQ(facade.engine_stats(), nullptr);
  drive_mixed_traffic(facade, 708, 40);

  EXPECT_EQ(obs::snapshot(plain, obs::Schema::kV2).dump(),
            obs::snapshot(facade, obs::Schema::kV2).dump());
}

TEST(ShardedDeterminismTest, BitIdenticalUnderFaultPlan) {
  net::FaultPlan plan;
  plan.rates.drop = 0.10;
  plan.rates.duplicate = 0.05;
  plan.rates.delay_spike = 0.05;

  const auto run = [&](std::size_t shards) {
    ZmailParams p = world_params();
    p.retry.enabled = true;
    p.reliable_email_transport = true;
    ShardOptions o;
    o.shards = shards;
    ShardedSystem w(p, 909, o);
    w.attach_faults(plan, 910);
    drive_mixed_traffic(w, 911, 40);
    // Bounded drain: the retry poller never lets the queue empty, so a
    // "run until quiet" would walk its entire 365-day horizon.
    w.run_for(4 * sim::kHour);
    EXPECT_EQ(w.pending_transfers(), 0u);
    // Delay spikes only ever push arrivals later than the latency floor, so
    // the conservative lookahead bound still holds under faults.
    EXPECT_EQ(w.horizon_clamps(), 0u);
    EXPECT_TRUE(w.barrier_audit().ok())
        << (w.barrier_audit().messages.empty()
                ? ""
                : w.barrier_audit().messages.front());
    EXPECT_TRUE(w.conservation_holds());
    EXPECT_GT(w.total_isp_metrics().emails_retransmitted, 0u);
    return obs::snapshot(w, obs::Schema::kV1).dump();
  };

  const std::string s2 = run(2);
  const std::string s4 = run(4);
  const std::string s8 = run(8);
  EXPECT_EQ(s2, s4);
  EXPECT_EQ(s4, s8);
}

class ShardedTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::set_enabled(false);
    trace::clear();
    trace::set_enabled(true);
  }
  void TearDown() override {
    trace::set_enabled(false);
    trace::clear();
  }
};

TEST_F(ShardedTraceTest, CrossShardRetransmitChainValidates) {
  ZmailParams p = world_params();
  p.n_isps = 2;  // ISP 0 on shard 0, ISP 1 on shard 1: every email crosses
  p.reliable_email_transport = true;
  ShardOptions o;
  o.shards = 2;
  o.threads = 1;  // trace recorder sees one worker thread
  ShardedSystem w(p, 21, o);

  net::FaultPlan plan;
  plan.rates.drop = 0.30;
  w.attach_faults(plan, 22);

  for (int i = 0; i < 25; ++i) {
    w.send_email(net::make_user_address(0, i % 3),
                 net::make_user_address(1, (i + 1) % 3), "lossy",
                 "m" + std::to_string(i));
    w.run_for(30 * sim::kSecond);
  }
  w.run_for(2 * sim::kHour);

  const IspMetrics m = w.total_isp_metrics();
  EXPECT_EQ(m.emails_sent_compliant, 25u);
  EXPECT_EQ(m.emails_received_compliant, 25u);
  EXPECT_GT(m.emails_retransmitted, 0u);
  EXPECT_EQ(w.pending_transfers(), 0u);
  EXPECT_TRUE(w.conservation_holds());

  const trace::ValidationResult v = trace::validate(trace::collect());
  EXPECT_TRUE(v.ok) << (v.problems.empty() ? "" : v.problems.front());
  EXPECT_GT(v.chains_total, 0u);
}

TEST_F(ShardedTraceTest, CrossShardRefundChainValidates) {
  ZmailParams p = world_params();
  p.n_isps = 2;
  p.reliable_email_transport = true;
  p.email_max_retransmits = 2;  // abandon quickly -> refund path
  ShardOptions o;
  o.shards = 2;
  o.threads = 1;
  ShardedSystem w(p, 31, o);

  net::FaultPlan plan;
  plan.rates.drop = 1.0;  // total loss: retransmit to cap, abandon, refund
  w.attach_faults(plan, 32);

  ASSERT_EQ(w.send_email(net::make_user_address(0, 0),
                         net::make_user_address(1, 0), "doomed", "body"),
            SendResult::kSentPaid);
  w.run_for(sim::kHour);
  EXPECT_EQ(w.pending_transfers(), 0u);
  EXPECT_EQ(w.total_isp_metrics().emails_refunded, 1u);
  EXPECT_TRUE(w.conservation_holds());

  const auto events = trace::collect();
  bool refund_terminal = false;
  for (const auto& [id, c] : trace::build_chains(events))
    if (c.terminal == trace::Ev::kRefund) refund_terminal = true;
  EXPECT_TRUE(refund_terminal);
  const trace::ValidationResult v = trace::validate(events);
  EXPECT_TRUE(v.ok) << (v.problems.empty() ? "" : v.problems.front());
}

TEST(ShardedRecoveryTest, CrashAndRecoverIspOnNonZeroShard) {
  const std::string dir = "sim_sharded_test_store";
  std::filesystem::remove_all(dir);
  ZmailParams p = world_params();
  p.n_isps = 4;
  p.store.enabled = true;
  p.store.dir = dir;
  ShardOptions o;
  o.shards = 4;
  o.threads = 1;
  ShardedSystem w(p, 41, o);
  drive_mixed_traffic(w, 42, 15);

  // ISP 1 lives on shard 1: the crash wipes its in-memory state there and
  // the restart rebuilds it from that shard's snapshot + WAL tail.
  ASSERT_EQ(w.owner_shard(1), 1u);
  w.crash_host(1, 2 * sim::kMinute);
  w.run_for(10 * sim::kMinute);
  drive_mixed_traffic(w, 43, 10);
  w.run_for(2 * sim::kHour);

  EXPECT_EQ(w.state_recoveries(), 1u);
  EXPECT_EQ(w.pending_transfers(), 0u);
  EXPECT_TRUE(w.conservation_holds());
  EXPECT_TRUE(w.barrier_audit().ok())
      << (w.barrier_audit().messages.empty()
              ? ""
              : w.barrier_audit().messages.front());
  EXPECT_EQ(w.horizon_clamps(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(ShardedEngineTest, V2SnapshotExportsEngineSection) {
  ShardOptions o;
  o.shards = 4;
  ShardedSystem w(world_params(), 51, o);
  drive_mixed_traffic(w, 52, 10);

  const sim::ShardedStats* st = w.engine_stats();
  ASSERT_NE(st, nullptr);
  EXPECT_GT(st->windows, 0u);
  EXPECT_GT(st->cross_shard_msgs, 0u);
  EXPECT_EQ(st->mailbox_overflows, 0u);
  EXPECT_GT(w.barrier_audit().checks, 0u);

  const json::Value j = obs::snapshot(w, obs::Schema::kV2);
  const std::string s = j.dump();
  EXPECT_NE(s.find("\"engine\""), std::string::npos);
  EXPECT_NE(s.find("\"cross_shard_msgs\""), std::string::npos);
  EXPECT_NE(s.find("\"barrier_audit_failures\""), std::string::npos);
  EXPECT_NE(s.find("\"calendar_rebase_count\""), std::string::npos);
}

TEST(ShardedEngineTest, ComplianceFlipRoutesAcrossShards) {
  ZmailParams p = world_params();
  p.n_isps = 4;
  p.compliant = {true, true, false, true};  // ISP 2 starts legacy
  ShardOptions o;
  o.shards = 2;
  ShardedSystem w(p, 61, o);

  // Legacy mail is free; after the flip the same sender pays.
  w.send_email(net::make_user_address(2, 0), net::make_user_address(0, 0),
               "free", "b");
  w.run_for(sim::kMinute);
  EXPECT_FALSE(w.is_compliant(2));

  w.make_compliant(2);
  EXPECT_TRUE(w.is_compliant(2));
  // The flip publishes on every shard, not just the owner.
  for (std::size_t s = 0; s < w.shard_count(); ++s)
    EXPECT_TRUE(w.shard(s).params().is_compliant(2));

  drive_mixed_traffic(w, 62, 10);
  w.run_for(sim::kHour);
  EXPECT_TRUE(w.conservation_holds());
  EXPECT_TRUE(w.barrier_audit().ok());
}

}  // namespace
}  // namespace zmail::core
