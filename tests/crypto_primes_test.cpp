#include "crypto/primes.hpp"

#include <gtest/gtest.h>

namespace zmail::crypto {
namespace {

TEST(Mulmod, NoOverflowOnLargeOperands) {
  const std::uint64_t m = 0xFFFFFFFFFFFFFFC5ULL;  // large prime
  EXPECT_EQ(mulmod(m - 1, m - 1, m), 1u);  // (-1)^2 = 1 mod m
  EXPECT_EQ(mulmod(0, 12345, m), 0u);
  EXPECT_EQ(mulmod(1, 12345, m), 12345u);
}

TEST(Powmod, BasicIdentities) {
  EXPECT_EQ(powmod(2, 10, 1'000'000'007), 1024u);
  EXPECT_EQ(powmod(5, 0, 7), 1u);
  EXPECT_EQ(powmod(0, 5, 7), 0u);
  EXPECT_EQ(powmod(3, 1, 7), 3u);
  EXPECT_EQ(powmod(10, 2, 1), 0u);  // mod 1
}

TEST(Powmod, FermatLittleTheorem) {
  const std::uint64_t p = 1'000'000'007;
  for (std::uint64_t a : {2ULL, 3ULL, 999999999ULL})
    EXPECT_EQ(powmod(a, p - 1, p), 1u);
}

TEST(IsPrime, SmallValues) {
  EXPECT_FALSE(is_prime_u64(0));
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(3));
  EXPECT_FALSE(is_prime_u64(4));
  EXPECT_TRUE(is_prime_u64(5));
  EXPECT_FALSE(is_prime_u64(9));
  EXPECT_TRUE(is_prime_u64(97));
  EXPECT_FALSE(is_prime_u64(100));
}

TEST(IsPrime, CarmichaelNumbersRejected) {
  // Carmichael numbers fool Fermat tests but not Miller-Rabin.
  for (std::uint64_t c : {561ULL, 1105ULL, 1729ULL, 41041ULL, 825265ULL})
    EXPECT_FALSE(is_prime_u64(c)) << c;
}

TEST(IsPrime, LargeKnownPrimesAndComposites) {
  EXPECT_TRUE(is_prime_u64(1'000'000'007ULL));
  EXPECT_TRUE(is_prime_u64(1'000'000'009ULL));
  EXPECT_TRUE(is_prime_u64((1ULL << 61) - 1));  // Mersenne prime M61
  EXPECT_FALSE(is_prime_u64(1'000'000'007ULL * 3));
  EXPECT_FALSE(is_prime_u64((1ULL << 62) - 1));
}

TEST(RandomPrime, HasRequestedBitLength) {
  zmail::Rng rng(9);
  for (int bits : {8, 16, 31, 40, 62}) {
    const std::uint64_t p = random_prime(rng, bits);
    EXPECT_TRUE(is_prime_u64(p));
    EXPECT_GE(p, 1ULL << (bits - 1));
    EXPECT_LT(p, bits < 64 ? (1ULL << bits) : ~0ULL);
  }
}

TEST(Egcd, BezoutIdentityHolds) {
  std::int64_t x = 0, y = 0;
  const std::int64_t g = egcd(240, 46, x, y);
  EXPECT_EQ(g, 2);
  EXPECT_EQ(240 * x + 46 * y, 2);
}

TEST(Modinv, InverseMultipliesToOne) {
  for (std::uint64_t a : {3ULL, 7ULL, 65537ULL}) {
    const std::uint64_t m = 1'000'000'007ULL;
    const std::uint64_t inv = modinv(a, m);
    EXPECT_EQ(mulmod(a, inv, m), 1u);
  }
}

TEST(Gcd, Basics) {
  EXPECT_EQ(gcd_u64(12, 18), 6u);
  EXPECT_EQ(gcd_u64(17, 5), 1u);
  EXPECT_EQ(gcd_u64(0, 5), 5u);
  EXPECT_EQ(gcd_u64(5, 0), 5u);
}

}  // namespace
}  // namespace zmail::crypto
