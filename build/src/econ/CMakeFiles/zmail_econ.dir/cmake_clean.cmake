file(REMOVE_RECURSE
  "CMakeFiles/zmail_econ.dir/adoption.cpp.o"
  "CMakeFiles/zmail_econ.dir/adoption.cpp.o.d"
  "CMakeFiles/zmail_econ.dir/isp_cost.cpp.o"
  "CMakeFiles/zmail_econ.dir/isp_cost.cpp.o.d"
  "CMakeFiles/zmail_econ.dir/legal.cpp.o"
  "CMakeFiles/zmail_econ.dir/legal.cpp.o.d"
  "CMakeFiles/zmail_econ.dir/spammer.cpp.o"
  "CMakeFiles/zmail_econ.dir/spammer.cpp.o.d"
  "libzmail_econ.a"
  "libzmail_econ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zmail_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
