#include "core/messages.hpp"

#include <gtest/gtest.h>

namespace zmail::core {
namespace {

class MessagesTest : public ::testing::Test {
 protected:
  Rng rng_{77};
  crypto::KeyPair keys_ = crypto::generate_keypair(rng_);
  crypto::NonceGenerator nnc_{55};
};

TEST_F(MessagesTest, BuyRequestRoundTrip) {
  const BuyRequest m{1234, nnc_.next()};
  const auto back = BuyRequest::deserialize(m.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->buyvalue, 1234);
  EXPECT_EQ(back->nonce, m.nonce);
}

TEST_F(MessagesTest, BuyReplyRoundTripBothFlags) {
  for (bool accepted : {true, false}) {
    const BuyReply m{nnc_.next(), accepted};
    const auto back = BuyReply::deserialize(m.serialize());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->accepted, accepted);
    EXPECT_EQ(back->nonce, m.nonce);
  }
}

TEST_F(MessagesTest, SellRequestReplyRoundTrip) {
  const SellRequest s{999, nnc_.next()};
  const auto sb = SellRequest::deserialize(s.serialize());
  ASSERT_TRUE(sb.has_value());
  EXPECT_EQ(sb->sellvalue, 999);

  const SellReply r{s.nonce};
  const auto rb = SellReply::deserialize(r.serialize());
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(rb->nonce, s.nonce);
}

TEST_F(MessagesTest, SnapshotRequestRoundTrip) {
  const SnapshotRequest m{42};
  const auto back = SnapshotRequest::deserialize(m.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, 42u);
}

TEST_F(MessagesTest, CreditReportRoundTripIncludingNegatives) {
  const CreditReport m{7, {3, -5, 0, 1'000'000, -1'000'000}};
  const auto back = CreditReport::deserialize(m.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, 7u);
  EXPECT_EQ(back->credit, m.credit);
}

TEST_F(MessagesTest, CrossTypeDeserializationFails) {
  const BuyRequest buy{10, nnc_.next()};
  EXPECT_FALSE(SellRequest::deserialize(buy.serialize()).has_value());
  EXPECT_FALSE(BuyReply::deserialize(buy.serialize()).has_value());
  EXPECT_FALSE(SnapshotRequest::deserialize(buy.serialize()).has_value());
  EXPECT_FALSE(CreditReport::deserialize(buy.serialize()).has_value());
}

TEST_F(MessagesTest, TruncationDetected) {
  const CreditReport m{1, {1, 2, 3}};
  crypto::Bytes wire = m.serialize();
  wire.pop_back();
  EXPECT_FALSE(CreditReport::deserialize(wire).has_value());
}

TEST_F(MessagesTest, TrailingBytesDetected) {
  const SnapshotRequest m{1};
  crypto::Bytes wire = m.serialize();
  wire.push_back(0xFF);
  EXPECT_FALSE(SnapshotRequest::deserialize(wire).has_value());
}

// Tentpole invariant: every serialize() reserves serialized_size() bytes up
// front, so the declared size must be exactly the bytes produced.
TEST_F(MessagesTest, SerializedSizeMatchesSerializeForEveryMessage) {
  const BuyRequest buy{1234, nnc_.next()};
  EXPECT_EQ(buy.serialized_size(), buy.serialize().size());

  const BuyReply buyreply{nnc_.next(), true};
  EXPECT_EQ(buyreply.serialized_size(), buyreply.serialize().size());

  const SellRequest sell{999, nnc_.next()};
  EXPECT_EQ(sell.serialized_size(), sell.serialize().size());

  const SellReply sellreply{nnc_.next()};
  EXPECT_EQ(sellreply.serialized_size(), sellreply.serialize().size());

  const SnapshotRequest request{42};
  EXPECT_EQ(request.serialized_size(), request.serialize().size());

  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{64}}) {
    const CreditReport report{7, std::vector<EPenny>(n, -3)};
    EXPECT_EQ(report.serialized_size(), report.serialize().size());
  }

  const crypto::Envelope env =
      crypto::ncr(keys_.pub, buy.serialize(), rng_);
  EXPECT_EQ(env.serialized_size(), env.serialize().size());
}

// The scratch-buffer envelope path must be byte-identical to the allocating
// one given the same RNG state, and must interoperate in both directions.
TEST_F(MessagesTest, SealIntoMatchesSealAndRoundTrips) {
  const BuyRequest m{500, nnc_.next()};
  const crypto::Bytes plain = m.serialize();

  Rng rng_a{4242};
  Rng rng_b{4242};
  const crypto::Bytes wire_a = seal(keys_.pub, plain, rng_a);
  crypto::Envelope scratch;
  crypto::Bytes wire_b;
  seal_into(keys_.pub, plain, rng_b, scratch, wire_b);
  EXPECT_EQ(wire_a, wire_b);

  // Scratch unseal reads what plain seal wrote (and vice versa), reusing
  // its buffers across calls.
  crypto::Envelope unseal_scratch;
  crypto::Bytes out;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(unseal_into(keys_.priv, wire_a, unseal_scratch, out));
    EXPECT_EQ(out, plain);
  }
  const auto via_plain = unseal(keys_.priv, wire_b);
  ASSERT_TRUE(via_plain.has_value());
  EXPECT_EQ(*via_plain, plain);
}

TEST_F(MessagesTest, UnsealIntoRejectsTamperAndGarbage) {
  crypto::Envelope scratch;
  crypto::Bytes out;
  crypto::Bytes wire = seal(keys_.pub, SnapshotRequest{3}.serialize(), rng_);
  wire[wire.size() / 2] ^= 0x40;
  EXPECT_FALSE(unseal_into(keys_.priv, wire, scratch, out));
  EXPECT_FALSE(unseal_into(keys_.priv, {}, scratch, out));
  EXPECT_FALSE(unseal_into(keys_.priv, {1, 2, 3, 4}, scratch, out));
}

TEST_F(MessagesTest, SealUnsealRoundTrip) {
  const BuyRequest m{500, nnc_.next()};
  const crypto::Bytes wire = seal(keys_.pub, m.serialize(), rng_);
  const auto plain = unseal(keys_.priv, wire);
  ASSERT_TRUE(plain.has_value());
  const auto back = BuyRequest::deserialize(*plain);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->buyvalue, 500);
}

TEST_F(MessagesTest, UnsealRejectsTamperedWire) {
  const crypto::Bytes wire =
      seal(keys_.pub, SnapshotRequest{3}.serialize(), rng_);
  crypto::Bytes bad = wire;
  bad[bad.size() / 2] ^= 0x40;
  EXPECT_FALSE(unseal(keys_.priv, bad).has_value());
}

TEST_F(MessagesTest, UnsealRejectsGarbage) {
  EXPECT_FALSE(unseal(keys_.priv, {}).has_value());
  EXPECT_FALSE(unseal(keys_.priv, {1, 2, 3, 4}).has_value());
}

TEST_F(MessagesTest, SealedMessagesAreConfidential) {
  // The same plaintext seals to different wires (fresh session keys), and
  // the plaintext bytes do not appear in the ciphertext.
  const crypto::Bytes plain = BuyRequest{777, nnc_.next()}.serialize();
  const crypto::Bytes w1 = seal(keys_.pub, plain, rng_);
  const crypto::Bytes w2 = seal(keys_.pub, plain, rng_);
  EXPECT_NE(w1, w2);
}

}  // namespace
}  // namespace zmail::core
