#include "econ/legal.hpp"

#include <algorithm>

namespace zmail::econ {

LegalOutcome evaluate_legal(const LegalParams& p) noexcept {
  LegalOutcome out;

  // A covered spammer compares three annual payoffs:
  //   keep spamming at home:  campaigns * (profit - enforcement * fine)
  //   relocate offshore:      campaigns * profit - relocation (year one)
  //   quit:                   0
  const double yearly_profit =
      p.campaign_profit.dollars() * static_cast<double>(p.campaigns_per_year);
  const double stay_payoff =
      yearly_profit - p.enforcement_prob * p.fine.dollars() *
                          static_cast<double>(p.campaigns_per_year);
  const double move_payoff = yearly_profit - p.relocation_cost.dollars();

  double stops = 0.0, moves = 0.0;
  if (stay_payoff >= move_payoff && stay_payoff > 0.0) {
    // The law changes nothing: staying still pays.
    stops = 0.0;
    moves = 0.0;
  } else if (move_payoff > 0.0) {
    // Enforcement bites, but relocation is cheap: spammers move, spam
    // volume is unchanged (the paper: "a lot of spammers have already
    // done so").
    moves = 1.0;
  } else {
    // Only when both staying and moving are unprofitable does spam stop.
    stops = 1.0;
  }

  out.covered_compliance = stops;
  out.relocated = moves;
  out.spam_suppressed = p.covered_origin_share * stops;
  out.spam_change = -out.spam_suppressed;

  if (p.registry) {
    // The FTC scenario: offshore (non-compliant) spammers treat the
    // registry as a verified-live address list.
    const double uncovered = 1.0 - p.covered_origin_share * stops;
    out.spam_change += uncovered * p.registry_leak_boost;
  }
  out.spam_change = std::max(out.spam_change, -1.0);
  return out;
}

}  // namespace zmail::econ
