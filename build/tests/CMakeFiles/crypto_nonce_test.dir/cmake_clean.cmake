file(REMOVE_RECURSE
  "CMakeFiles/crypto_nonce_test.dir/crypto_nonce_test.cpp.o"
  "CMakeFiles/crypto_nonce_test.dir/crypto_nonce_test.cpp.o.d"
  "crypto_nonce_test"
  "crypto_nonce_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_nonce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
