#include "workload/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace zmail::workload {

TrafficGenerator::TrafficGenerator(core::ZmailSystem& system,
                                   const TrafficParams& params,
                                   CorpusGenerator& corpus, zmail::Rng rng)
    : system_(system), params_(params), corpus_(corpus), rng_(rng) {}

std::size_t TrafficGenerator::pick_contact_user() {
  const auto& p = system_.params();
  if (params_.zipf_popularity > 0.0) {
    // Low user indices are the celebrities.
    return static_cast<std::size_t>(
        rng_.zipf(p.users_per_isp, params_.zipf_popularity) - 1);
  }
  return rng_.next_below(p.users_per_isp);
}

void TrafficGenerator::build_contacts() {
  const auto& p = system_.params();
  contacts_.assign(p.n_isps, {});
  for (std::size_t i = 0; i < p.n_isps; ++i) {
    contacts_[i].assign(p.users_per_isp, {});
    for (std::size_t u = 0; u < p.users_per_isp; ++u) {
      auto& list = contacts_[i][u];
      for (std::size_t k = 0; k < params_.contacts_per_user; ++k) {
        UserRef c{};
        if (rng_.bernoulli(params_.local_recipient_prob)) {
          c.isp = i;
        } else {
          c.isp = rng_.next_below(p.n_isps);
        }
        c.user = pick_contact_user();
        if (c.isp == i && c.user == u) c.user = (c.user + 1) % p.users_per_isp;
        list.push_back(c);
      }
    }
  }
}

sim::Duration TrafficGenerator::sample_day_offset() {
  const auto uniform_offset = [this] {
    return static_cast<sim::Duration>(
        rng_.next_below(static_cast<std::uint64_t>(sim::kDay)));
  };
  if (!params_.diurnal) return uniform_offset();
  // Rejection sampling against 1 + A*cos(2*pi*(t - peak)/day), normalized
  // so the acceptance probability peaks at 1.
  const double amp =
      std::clamp(params_.diurnal_amplitude, 0.0, 1.0);
  for (;;) {
    const sim::Duration t = uniform_offset();
    const double hours = sim::to_seconds(t) / 3600.0;
    const double intensity =
        1.0 + amp * std::cos(2.0 * 3.14159265358979323846 *
                             (hours - params_.peak_hour) / 24.0);
    if (rng_.next_double() * (1.0 + amp) < intensity) return t;
  }
}

TrafficGenerator::UserRef TrafficGenerator::pick_recipient(
    const UserRef& sender) {
  const auto& list = contacts_.at(sender.isp).at(sender.user);
  ZMAIL_ASSERT_MSG(!list.empty(), "call build_contacts() first");
  return list[rng_.next_below(list.size())];
}

void TrafficGenerator::do_send(const UserRef& from, const UserRef& to) {
  net::EmailMessage msg = corpus_.make_message(
      net::make_user_address(from.isp, from.user),
      net::make_user_address(to.isp, to.user), net::MailClass::kLegitimate);
  system_.send_email(std::move(msg));
}

std::size_t TrafficGenerator::schedule_day() {
  const auto& p = system_.params();
  // Calibrate the lognormal so its mean equals mean_sends_per_user_day:
  // mean = exp(mu + sigma^2/2)  =>  mu = ln(mean) - sigma^2/2.
  const double sigma = params_.lognormal_sigma;
  const double mu =
      std::log(params_.mean_sends_per_user_day) - sigma * sigma / 2.0;

  std::size_t scheduled = 0;
  for (std::size_t i = 0; i < p.n_isps; ++i) {
    for (std::size_t u = 0; u < p.users_per_isp; ++u) {
      const auto sends =
          static_cast<std::size_t>(rng_.poisson(rng_.lognormal(mu, sigma)));
      for (std::size_t k = 0; k < sends; ++k) {
        const UserRef from{i, u};
        const UserRef to = pick_recipient(from);
        system_.simulator().schedule_after(
            sample_day_offset(), [this, from, to] { do_send(from, to); });
        ++scheduled;
      }
    }
  }
  return scheduled;
}

std::size_t TrafficGenerator::burst(std::size_t count) {
  const auto& p = system_.params();
  for (std::size_t k = 0; k < count; ++k) {
    const UserRef from{rng_.next_below(p.n_isps),
                       rng_.next_below(p.users_per_isp)};
    do_send(from, pick_recipient(from));
  }
  return count;
}

SpamCampaignResult run_spam_campaign(core::ZmailSystem& system,
                                     const SpamCampaignParams& params,
                                     CorpusGenerator& corpus,
                                     zmail::Rng& rng) {
  const auto& p = system.params();
  SpamCampaignResult result;
  const net::EmailAddress spammer =
      net::make_user_address(params.spammer_isp, params.spammer_user);

  for (std::size_t k = 0; k < params.messages; ++k) {
    ++result.attempted;
    const std::size_t to_isp = rng.next_below(p.n_isps);
    const std::size_t to_user = rng.next_below(p.users_per_isp);
    net::EmailMessage msg = corpus.make_message(
        spammer, net::make_user_address(to_isp, to_user),
        net::MailClass::kSpam);
    if (params.evade_strength > 0.0)
      msg.body = corpus.evade(msg.body, params.evade_strength);

    const auto fire = [&system, msg]() mutable {
      system.send_email(std::move(msg));
    };
    if (params.spread_over_day) {
      // Outcome counters are only exact in immediate mode; spread mode is
      // for timing-oriented experiments.
      system.simulator().schedule_after(
          static_cast<sim::Duration>(
              rng.next_below(static_cast<std::uint64_t>(sim::kDay))),
          fire);
      ++result.sent;
      continue;
    }
    switch (system.send_email(msg)) {
      case core::SendResult::kNoBalance:
        ++result.refused_balance;
        break;
      case core::SendResult::kDailyLimit:
        ++result.refused_limit;
        break;
      default:
        ++result.sent;
        break;
    }
  }
  return result;
}

}  // namespace zmail::workload
