// Lightweight always-on assertion macro.
//
// Protocol code in this library checks its invariants in every build type:
// the whole point of reproducing a protocol paper is that the invariants
// hold, so silently compiling the checks out in release defeats the purpose.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace zmail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "ZMAIL_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}

}  // namespace zmail

#define ZMAIL_ASSERT(expr)                                        \
  do {                                                            \
    if (!(expr)) ::zmail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define ZMAIL_ASSERT_MSG(expr, msg)                               \
  do {                                                            \
    if (!(expr)) ::zmail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
