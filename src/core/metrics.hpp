// Counters shared by the ISP and bank state machines.
//
// Everything the experiments measure is a counter here — the protocol code
// has no printf-style instrumentation, only counting.
#pragma once

#include <cstdint>

#include "util/money.hpp"

namespace zmail::core {

struct IspMetrics {
  // Mail flow.
  std::uint64_t emails_sent_local = 0;
  std::uint64_t emails_sent_compliant = 0;     // paid, to other compliant ISPs
  std::uint64_t emails_sent_noncompliant = 0;  // free, to non-compliant ISPs
  std::uint64_t emails_received_compliant = 0;
  std::uint64_t emails_received_noncompliant = 0;
  std::uint64_t emails_delivered = 0;
  std::uint64_t emails_segregated = 0;
  std::uint64_t emails_discarded = 0;
  std::uint64_t emails_filtered_out = 0;

  // Refusals at send time.
  std::uint64_t refused_no_balance = 0;
  std::uint64_t refused_daily_limit = 0;

  // Quiesce behaviour (Section 4.4).
  std::uint64_t emails_buffered_during_quiesce = 0;
  std::uint64_t snapshots_answered = 0;

  // Zombie guard (Section 5).
  std::uint64_t zombie_warnings_sent = 0;

  // Mailing-list acknowledgments (Section 5).
  std::uint64_t acks_generated = 0;
  std::uint64_t acks_received = 0;

  // Bank trade.
  std::uint64_t bank_buys_attempted = 0;
  std::uint64_t bank_buys_accepted = 0;
  std::uint64_t bank_sells = 0;

  // Replay / tamper rejections.
  std::uint64_t bad_nonce_replies = 0;
  std::uint64_t bad_envelopes = 0;
  std::uint64_t stale_requests = 0;

  // Fault recovery (retry/backoff, reliable transport, shedding).
  std::uint64_t bank_retries = 0;       // buy/sell wires re-sent on timeout
  std::uint64_t report_retries = 0;     // credit reports re-sent on timeout
  std::uint64_t emails_retransmitted = 0;
  std::uint64_t emails_refunded = 0;    // abandoned transfers, payment undone
  std::uint64_t emails_shed = 0;        // quiesce buffer overflow, refunded
  std::uint64_t duplicate_emails_dropped = 0;  // receiver-side ARQ dedupe

  // Field-wise sum, for fleet-wide aggregation (obs snapshots, sweeps).
  void merge(const IspMetrics& o) noexcept {
    emails_sent_local += o.emails_sent_local;
    emails_sent_compliant += o.emails_sent_compliant;
    emails_sent_noncompliant += o.emails_sent_noncompliant;
    emails_received_compliant += o.emails_received_compliant;
    emails_received_noncompliant += o.emails_received_noncompliant;
    emails_delivered += o.emails_delivered;
    emails_segregated += o.emails_segregated;
    emails_discarded += o.emails_discarded;
    emails_filtered_out += o.emails_filtered_out;
    refused_no_balance += o.refused_no_balance;
    refused_daily_limit += o.refused_daily_limit;
    emails_buffered_during_quiesce += o.emails_buffered_during_quiesce;
    snapshots_answered += o.snapshots_answered;
    zombie_warnings_sent += o.zombie_warnings_sent;
    acks_generated += o.acks_generated;
    acks_received += o.acks_received;
    bank_buys_attempted += o.bank_buys_attempted;
    bank_buys_accepted += o.bank_buys_accepted;
    bank_sells += o.bank_sells;
    bad_nonce_replies += o.bad_nonce_replies;
    bad_envelopes += o.bad_envelopes;
    stale_requests += o.stale_requests;
    bank_retries += o.bank_retries;
    report_retries += o.report_retries;
    emails_retransmitted += o.emails_retransmitted;
    emails_refunded += o.emails_refunded;
    emails_shed += o.emails_shed;
    duplicate_emails_dropped += o.duplicate_emails_dropped;
  }
};

struct BankMetrics {
  std::uint64_t buys_received = 0;
  std::uint64_t buys_accepted = 0;
  std::uint64_t buys_rejected = 0;
  std::uint64_t sells_received = 0;
  std::uint64_t snapshot_rounds = 0;
  std::uint64_t credit_reports_received = 0;
  std::uint64_t inconsistent_pairs_found = 0;
  std::uint64_t bad_envelopes = 0;
  std::uint64_t stale_reports = 0;

  // Idempotency shield: duplicated/retried trade requests absorbed without
  // re-applying (cached reply re-sent) and out-of-date ones dropped.
  std::uint64_t duplicate_buys = 0;
  std::uint64_t duplicate_sells = 0;
  std::uint64_t stale_trades = 0;
  std::uint64_t snapshot_rerequests = 0;  // re-sent requests to silent ISPs

  // E-penny supply accounting (for the conservation invariant).
  EPenny epennies_minted = 0;
  EPenny epennies_burned = 0;

  // Bulk-settlement ledger activity (for E5 vs per-message schemes).
  std::uint64_t settlement_transfers = 0;
  std::uint64_t settlement_bytes = 0;
};

}  // namespace zmail::core
