# Empty compiler generated dependencies file for zmail_workload.
# This may be replaced when dependencies are built.
