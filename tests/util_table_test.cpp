#include "util/table.hpp"

#include <gtest/gtest.h>

namespace zmail {
namespace {

TEST(Table, RendersHeaderAndSeparator) {
  Table t({"a", "bb"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("| bb "), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"x", "y"});
  t.add_row({"longvalue", "1"});
  t.add_row({"2", "another"});
  const std::string s = t.str();
  // Every line has the same length.
  std::size_t prev = std::string::npos;
  std::size_t start = 0;
  while (start < s.size()) {
    const std::size_t end = s.find('\n', start);
    const std::size_t len = end - start;
    if (prev != std::string::npos) EXPECT_EQ(len, prev);
    prev = len;
    start = end + 1;
  }
}

TEST(Table, CsvEscapesSpecialCharacters) {
  Table t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainCellsUnquoted) {
  Table t({"h"});
  t.add_row({"plain"});
  EXPECT_EQ(t.csv(), "h\nplain\n");
}

TEST(Table, NumFormatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::int64_t{-42}), "-42");
  EXPECT_EQ(Table::num(std::uint64_t{7}), "7");
  EXPECT_EQ(Table::pct(0.256, 1), "25.6%");
  EXPECT_EQ(Table::sci(12345.0, 2), "1.23e+04");
}

}  // namespace
}  // namespace zmail
