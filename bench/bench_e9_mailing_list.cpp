// E9 — Mailing-list acknowledgment economics (paper Section 5).
//
// Claim: the automatic acknowledgment "returns the e-penny back to the
// distributor", and "the email distributor can keep its subscriber
// database clean and up-to-date" by pruning addresses that stop
// acknowledging.
//
// Regenerates:
//   E9.a  list-size sweep: distributor net e-penny cost with vs without
//         acknowledgments
//   E9.b  dead-subscriber sweep: pruning converges to the live population
//   E9.c  the distributor's working-capital requirement (max float)
#include "bench_common.hpp"
#include "core/mailing_list.hpp"
#include "util/table.hpp"

using namespace zmail;

namespace {

core::ZmailParams list_world(bool acks) {
  core::ZmailParams p;
  p.n_isps = 4;
  p.users_per_isp = 400;
  p.initial_user_balance = 5'000;
  p.default_daily_limit = 10'000;
  p.auto_acknowledge_lists = acks;
  p.record_inboxes = false;
  return p;
}

void subscribe_n(core::MailingList& list, std::size_t n) {
  for (std::size_t k = 1; k <= n; ++k)
    list.subscribe(net::make_user_address(k % 4, (k / 4) % 400));
}

void e9a_size_sweep() {
  Table t({"subscribers", "net cost with acks", "net cost without acks"});
  bool ack_world_free = true;
  for (std::size_t size : {100u, 400u, 1'200u}) {
    std::int64_t with_acks = 0, without_acks = 0;
    for (bool acks : {true, false}) {
      core::ZmailSystem sys(list_world(acks), 91);
      core::MailingList list(sys, net::make_user_address(0, 0), "dev");
      subscribe_n(list, size);
      list.post("issue", "body");
      sys.run_for(3 * sim::kHour);
      list.reconcile_and_prune();
      (acks ? with_acks : without_acks) = list.net_epenny_cost();
    }
    t.add_row({Table::num(std::uint64_t{size}), Table::num(with_acks),
               Table::num(without_acks)});
    if (with_acks != 0) ack_world_free = false;
  }
  t.print("E9.a  distributor cost per post vs list size");
  bench::check(ack_world_free,
               "with acknowledgments the distributor's net cost is zero");
}

void e9b_pruning() {
  // Dead subscribers modelled as users of non-compliant ISPs (their side
  // never acknowledges).
  Table t({"dead fraction", "initial subscribers", "pruned after 2 posts",
           "posts to a clean database"});
  bool pruning_exact = true;
  for (double dead_frac : {0.0, 0.1, 0.3}) {
    core::ZmailParams p = list_world(true);
    p.compliant = {true, true, true, false};  // ISP 3 is the dead zone
    core::ZmailSystem sys(p, 92);
    core::MailingList list(sys, net::make_user_address(0, 0), "dev",
                           /*prune_after=*/2);
    const std::size_t total = 300;
    const auto dead =
        static_cast<std::size_t>(static_cast<double>(total) * dead_frac);
    for (std::size_t k = 0; k < total - dead; ++k)
      list.subscribe(net::make_user_address(k % 3, k % 400));
    for (std::size_t k = 0; k < dead; ++k)
      list.subscribe(net::make_user_address(3, k % 400));

    std::size_t pruned_total = 0;
    for (int post = 0; post < 2; ++post) {
      list.post("n", "b");
      sys.run_for(3 * sim::kHour);
      pruned_total += list.reconcile_and_prune();
    }
    t.add_row({Table::pct(dead_frac, 0), Table::num(std::uint64_t{total}),
               Table::num(std::uint64_t{pruned_total}), "2"});
    if (pruned_total != dead) pruning_exact = false;
  }
  t.print("E9.b  automatic subscriber-database cleaning");
  bench::check(pruning_exact,
               "exactly the non-acknowledging subscribers are pruned");
}

void e9c_working_capital() {
  // The distributor fronts size e-pennies until acks return: its minimum
  // balance during a post cycle is (start - size + acks_so_far).
  core::ZmailSystem sys(list_world(true), 93);
  core::MailingList list(sys, net::make_user_address(0, 0), "dev");
  subscribe_n(list, 500);
  const EPenny start = sys.isp(0).user(0).balance;
  list.post("big", "issue");
  // Immediately after the post, every remote copy's e-penny is outstanding
  // (local subscribers' acks settle synchronously); the float then returns
  // as acknowledgments arrive over the network.
  EPenny min_balance = sys.isp(0).user(0).balance;
  for (int step = 0; step < 600; ++step) {
    sys.run_for(sim::kMinute);
    min_balance = std::min(min_balance, sys.isp(0).user(0).balance);
  }
  list.reconcile_and_prune();

  Table t({"metric", "value"});
  t.add_row({"subscribers", "500"});
  t.add_row({"distributor balance before", Table::num(start)});
  t.add_row({"minimum balance during the cycle", Table::num(min_balance)});
  t.add_row({"balance after acks returned",
             Table::num(sys.isp(0).user(0).balance)});
  t.print("E9.c  distributor float: e-pennies outstanding until acks return");

  // 375 of the 500 subscribers are remote (their acks take network time);
  // the 125 local ones settle synchronously inside post().
  bench::check(min_balance <= start - 300,
               "the distributor fronts roughly one e-penny per remote "
               "subscriber until the acks return");
  bench::check(sys.isp(0).user(0).balance == start,
               "the float fully returns after acknowledgment");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("e9_mailing_list", argc, argv);
  std::printf("=== E9: mailing-list acknowledgments ===\n");
  e9a_size_sweep();
  e9b_pruning();
  e9c_working_capital();
  return harness.finish();
}
