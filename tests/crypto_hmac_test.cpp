#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

namespace zmail::crypto {
namespace {

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(digest_hex(hmac_sha256(key, std::string_view("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(Hmac, Rfc4231Case2) {
  const Bytes key = from_string("Jefe");
  EXPECT_EQ(digest_hex(hmac_sha256(
                key, std::string_view("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: 0xaa key, 0xdd data.
TEST(Hmac, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: key longer than the block size.
TEST(Hmac, LongKeyIsHashedFirst) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(
      digest_hex(hmac_sha256(
          key, std::string_view(
                   "Test Using Larger Than Block-Size Key - Hash Key First"))),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DifferentKeysDifferentMacs) {
  const Bytes k1 = from_string("key1"), k2 = from_string("key2");
  EXPECT_NE(hmac_sha256(k1, std::string_view("msg")),
            hmac_sha256(k2, std::string_view("msg")));
}

TEST(Hmac, DifferentMessagesDifferentMacs) {
  const Bytes k = from_string("key");
  EXPECT_NE(hmac_sha256(k, std::string_view("a")),
            hmac_sha256(k, std::string_view("b")));
}

TEST(DigestEqual, EqualAndUnequal) {
  const Digest a = sha256(std::string_view("x"));
  Digest b = a;
  EXPECT_TRUE(digest_equal(a, b));
  b[31] ^= 1;
  EXPECT_FALSE(digest_equal(a, b));
  b = a;
  b[0] ^= 0x80;
  EXPECT_FALSE(digest_equal(a, b));
}

}  // namespace
}  // namespace zmail::crypto
