// Protocol trace: executes the paper's Abstract-Protocol specification for
// a complete billing cycle — traffic, a bank snapshot with quiesce, credit
// reports, verification — and prints the annotated step-by-step timeline.
//
//   ./protocol_trace
#include <cstdio>

#include "ap/trace_format.hpp"
#include "core/ap_spec.hpp"

using namespace zmail;

int main() {
  core::ZmailParams params;
  params.n_isps = 2;
  params.users_per_isp = 2;
  params.initial_user_balance = 10;

  core::ApZmailWorld world(params, ap::Scheduler::Policy::kRoundRobin,
                           /*seed=*/2005);
  world.scheduler().set_trace_enabled(true);

  std::printf("Zmail Abstract-Protocol trace (Section 4 pseudocode)\n");
  std::printf("2 ISPs x 2 users; 6 sends each; then one snapshot round\n\n");

  world.isp(0).send_budget = 6;
  world.isp(1).send_budget = 6;
  world.run();

  std::printf("--- after traffic ---\n");
  std::printf("isp0.credit[1] = %+lld   isp1.credit[0] = %+lld\n",
              static_cast<long long>(world.isp(0).credit[1]),
              static_cast<long long>(world.isp(1).credit[0]));

  world.bank().snapshot_budget = 1;
  world.run();

  std::printf("\n--- executed actions (last 40 steps) ---\n%s",
              format_trace(world.scheduler(), 40).c_str());
  std::printf("\n--- action profile ---\n%s",
              format_action_counts(world.scheduler()).c_str());

  std::printf("\n--- after the snapshot ---\n");
  std::printf("rounds completed: %llu, violations: %zu\n",
              static_cast<unsigned long long>(world.bank().rounds_completed),
              world.bank().violations.size());
  std::printf("credit arrays reset: isp0.credit[1] = %lld, "
              "isp1.credit[0] = %lld\n",
              static_cast<long long>(world.isp(0).credit[1]),
              static_cast<long long>(world.isp(1).credit[0]));
  std::printf("e-pennies conserved: %lld (initial %lld)\n",
              static_cast<long long>(world.total_epennies()),
              static_cast<long long>(
                  2 * (params.initial_avail +
                       2 * params.initial_user_balance)));
  return 0;
}
