// Microbenchmarks for the anti-spam baselines: classifier training and
// scoring throughput, pipeline dispatch, SHRED processing.
#include <benchmark/benchmark.h>

#include "bench_micro_common.hpp"

#include "baselines/bayes.hpp"
#include "baselines/pipeline.hpp"
#include "baselines/shred.hpp"
#include "workload/corpus.hpp"

using namespace zmail;

namespace {

workload::CorpusGenerator make_corpus(std::uint64_t seed) {
  return workload::CorpusGenerator(workload::CorpusParams{}, Rng(seed));
}

void BM_BayesTrain(benchmark::State& state) {
  workload::CorpusGenerator corpus = make_corpus(1);
  std::vector<std::string> bodies;
  for (int i = 0; i < 64; ++i) bodies.push_back(corpus.spam_body());
  std::size_t i = 0;
  baselines::NaiveBayesFilter filter;
  for (auto _ : state) {
    filter.train(bodies[i % bodies.size()], i % 2 == 0);
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BayesTrain);

void BM_BayesScore(benchmark::State& state) {
  workload::CorpusGenerator corpus = make_corpus(2);
  baselines::NaiveBayesFilter filter;
  for (int i = 0; i < 400; ++i) {
    filter.train(corpus.spam_body(), true);
    filter.train(corpus.ham_body(), false);
  }
  std::vector<std::string> bodies;
  for (int i = 0; i < 64; ++i) bodies.push_back(corpus.spam_body());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.score(bodies[i++ % bodies.size()]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BayesScore);

void BM_Tokenize(benchmark::State& state) {
  workload::CorpusGenerator corpus = make_corpus(3);
  const std::string body = corpus.ham_body();
  for (auto _ : state)
    benchmark::DoNotOptimize(workload::tokenize(body));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(body.size()));
}
BENCHMARK(BM_Tokenize);

void BM_PipelineClassify(benchmark::State& state) {
  workload::CorpusGenerator corpus = make_corpus(4);
  baselines::FilterPipeline pipeline;
  pipeline.blacklist().add_domain("spamhaus.example");
  for (int i = 0; i < 200; ++i) {
    pipeline.content().train(corpus.spam_body(), true);
    pipeline.content().train(corpus.ham_body(), false);
  }
  const net::EmailMessage msg = corpus.make_message(
      {"s", "somewhere.example"}, {"r", "here.example"},
      net::MailClass::kSpam);
  for (auto _ : state) benchmark::DoNotOptimize(pipeline.classify(msg));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PipelineClassify);

void BM_ShredProcess(benchmark::State& state) {
  baselines::ShredScheme shred(baselines::ShredParams{}, Rng(5));
  bool spam = false;
  for (auto _ : state) {
    shred.process(spam);
    spam = !spam;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShredProcess);

}  // namespace

int main(int argc, char** argv) {
  zmail::bench::Bench harness("micro_baselines", argc, argv);
  return zmail::bench::run_micro(harness, argc, argv);
}
