// zmail::telemetry — time-series primitives: sampled points, fixed-capacity
// downsampling rings, and windowed log-bucket histograms.
//
// Everything here is a pure function of the sample stream: appending the
// same sequence of points to two rings yields bit-identical stored series,
// no matter when or on which thread the appends ran.  That property is what
// lets a sharded run's merged `timeseries` section diff clean against the
// single-threaded run — each series is sampled by exactly one owner (the
// shard that owns the ISP/bank it describes) at deterministic sim-time
// stamps, so the union of per-shard series is partition-independent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace zmail::telemetry {

// What a series measures; decides both the downsampling merge rule and the
// value a probe reads from each point.
enum class Kind : std::uint8_t {
  kGauge,      // instantaneous level; merge keeps the later value
  kRate,       // per-window delta of a monotone counter; merge sums
  kHistogram,  // per-window latency-class distribution; merge combines
};

const char* kind_name(Kind k) noexcept;

// One sampled observation.  Gauges and rates use only {t_us, value}; the
// histogram fields stay zero for them.  All values are integer-valued
// doubles at sampling time (counts, micros, window deltas), so sums taken
// at export time are exact and independent of grouping order.
struct Point {
  std::int64_t t_us = 0;  // sim-time stamp: the end of the sample window
  double value = 0.0;     // gauge level or rate window delta

  // Histogram-only summary of the window's observations.
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;

  bool operator==(const Point&) const = default;
};

// Merges two consecutive points into one covering both windows, by kind.
Point merge_points(Kind k, const Point& a, const Point& b) noexcept;

// Append-only ring with a hard capacity: when full it halves its resolution
// by merging adjacent point pairs, and from then on folds every 2^level
// incoming samples into one stored point.  Long runs keep a bounded,
// progressively coarser history instead of dropping the head — and the
// stored series stays a deterministic pure function of the append stream.
class DownsamplingRing {
 public:
  explicit DownsamplingRing(Kind kind, std::size_t capacity = 512);

  void append(const Point& p);

  const std::vector<Point>& points() const noexcept { return pts_; }
  Kind kind() const noexcept { return kind_; }
  std::size_t capacity() const noexcept { return capacity_; }
  // Each stored point currently covers 2^level() base sample windows.
  std::uint32_t level() const noexcept { return level_; }
  std::uint64_t appended() const noexcept { return appended_; }

 private:
  void compact();

  Kind kind_;
  std::size_t capacity_;
  std::vector<Point> pts_;
  std::uint32_t level_ = 0;
  std::uint64_t appended_ = 0;
  // Partial fold of the next stored point (meaningful when level_ > 0).
  std::uint32_t acc_filled_ = 0;
  Point acc_{};
};

// Power-of-two-bucket histogram for one sample window.  Hot paths call
// record() with integer microseconds; at the sampling tick the window is
// flushed into one Point {count, sum, min, max, p50, p99} and reset.
// Bucket b holds values in [2^b, 2^(b+1)); percentiles interpolate at the
// geometric midpoint (1.5 * 2^b), which is deterministic and within the
// 2x bucket resolution the latency-class series need.
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t micros) noexcept;
  bool empty() const noexcept { return count_ == 0; }
  std::uint64_t count() const noexcept { return count_; }

  // Summarizes the window into a point stamped `t_us` and resets.
  Point flush(std::int64_t t_us) noexcept;

 private:
  double percentile(double p) const noexcept;  // p in [0, 100]

  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

// One named series, with owned points — the unit the exporters, probes, and
// zmail_top all consume.  `engine == true` marks execution-dependent series
// (per-shard backlogs, wall-clock costs): they describe *how* the run
// executed, vary with the partition, and are excluded from the
// deterministic `timeseries` section (they export under `timeseries_engine`
// and the CSV `engine` section instead).
struct Series {
  std::string scope;  // "econ", "core", "sim", "store", "net", ...
  std::string name;   // "isp0.stamp_price_micros", "bank.epenny_supply", ...
  Kind kind = Kind::kGauge;
  bool engine = false;
  std::vector<Point> points;

  std::string key() const { return scope + "." + name; }
};

// The value a probe aggregates from one point of this series (histograms
// contribute their p99; gauges and rates their value).
double probe_value(Kind k, const Point& p) noexcept;

}  // namespace zmail::telemetry
