// Central-bank state machine (paper Section 4, process bank).
//
// The bank (1) exchanges e-pennies against the real-money accounts of
// compliant ISPs (Section 4.3), and (2) periodically gathers every
// compliant ISP's credit array and checks pairwise antisymmetry
// (Section 4.4), flagging misbehaving/colluding ISPs.
//
// The paper leaves inter-ISP settlement implicit ("an accounting
// relationship among compliant ISPs, which reconcile payments");
// we make it concrete: after a consistent snapshot, the bank performs a
// *bulk* transfer per ISP pair equal to the netted credit — one ledger
// operation per pair per billing period, which is the whole point of E5's
// comparison with per-message schemes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/audit.hpp"
#include "core/config.hpp"
#include "core/messages.hpp"
#include "core/metrics.hpp"
#include "crypto/rsa.hpp"

namespace zmail::core {

// A detected antisymmetry violation: credit_i[j] + credit_j[i] != 0.
struct CreditViolation {
  std::size_t isp_i = 0;
  std::size_t isp_j = 0;
  EPenny discrepancy = 0;  // credit_i[j] + credit_j[i]
};

class Bank {
 public:
  // `params` is held by reference and must outlive the Bank (see Isp).
  Bank(const ZmailParams& params, crypto::KeyPair keys,
       std::uint64_t rng_seed);

  const crypto::RsaKey& public_key() const noexcept { return keys_.pub; }

  // --- Section 4.3: e-penny trade ---------------------------------------
  // Returns the sealed reply wire bytes to send back to isp[g].
  crypto::Bytes on_buy(std::size_t g, const crypto::Bytes& wire);
  crypto::Bytes on_sell(std::size_t g, const crypto::Bytes& wire);

  // --- Section 4.4: snapshot / verification ------------------------------
  // `canrequest ->` action: emits one sealed request per compliant ISP.
  // Returns pairs of (isp index, wire bytes); empty when a round is open.
  std::vector<std::pair<std::size_t, crypto::Bytes>> start_snapshot();

  // `rcv reply` action.  When the last outstanding report arrives, runs the
  // pairwise verification and bulk settlement automatically.
  void on_reply(std::size_t g, const crypto::Bytes& wire);

  bool round_open() const noexcept { return !canrequest_; }
  std::uint64_t seq() const noexcept { return seq_; }

  // Violations found by the most recent completed verification round.
  const std::vector<CreditViolation>& last_violations() const noexcept {
    return last_violations_;
  }

  // Attaches an audit journal; all monetary and verification events are
  // recorded there (nullptr detaches).  The journal must outlive the bank.
  void attach_journal(AuditJournal* journal) noexcept { journal_ = journal; }

  // --- Introspection ------------------------------------------------------
  Money account(std::size_t g) const { return accounts_.at(g); }
  void set_account(std::size_t g, Money v) { accounts_.at(g) = v; }
  const BankMetrics& metrics() const noexcept { return metrics_; }
  // Net e-pennies currently minted into the ISP world.
  EPenny epennies_outstanding() const noexcept {
    return metrics_.epennies_minted - metrics_.epennies_burned;
  }

 private:
  void verify_round();
  void audit(AuditKind kind, std::size_t a, std::size_t b = 0,
             std::int64_t amount = 0) {
    if (journal_) journal_->record(AuditEvent{kind, seq_, a, b, amount});
  }

  AuditJournal* journal_ = nullptr;
  const ZmailParams& params_;
  crypto::KeyPair keys_;
  Rng rng_;

  std::vector<Money> accounts_;
  std::vector<std::vector<EPenny>> verify_;  // verify[i][g] = credit_g[i]
  std::vector<bool> reported_;
  std::uint64_t seq_ = 0;
  std::size_t total_ = 0;  // outstanding reports this round
  bool canrequest_ = true;

  std::vector<CreditViolation> last_violations_;
  BankMetrics metrics_;
  // Scratch envelope/plaintext reused across every seal/unseal (see
  // core::seal_into) so the bank's message handling stops reallocating.
  crypto::Envelope env_scratch_;
  crypto::Bytes plain_scratch_;
};

}  // namespace zmail::core
