// Shared telemetry registration for the per-ISP series, used by both
// ZmailSystem (whole/slice worlds) and FederatedZmailSystem so the two
// facades expose identical econ/core series names.
//
// The getter indirection matters: samplers must dereference the facade's
// slot at tick time (crash recovery replaces the Isp object under the same
// index), so callers pass a callable, not a pointer.
#pragma once

#include <functional>
#include <string>

#include "core/isp.hpp"
#include "store/checkpoint.hpp"
#include "telemetry/registry.hpp"
#include "util/money.hpp"

namespace zmail::core::detail {

inline void register_isp_telemetry(telemetry::TelemetryRegistry& t,
                                   const std::string& tag,
                                   std::function<const Isp&()> get) {
  // econ — the market view of this ISP.
  // Effective stamp price: till micros moved per net e-penny traded over
  // the window; carries the last observed price (the paper's $0.01 par
  // until the first trade) through windows with no net trade.
  t.add_gauge("econ", tag + ".stamp_price_micros",
              [get, last_price = double(Money::from_epennies(1).micros()),
               prev_till = std::int64_t{0}, prev_bought = double(0),
               prev_sold = double(0)]() mutable {
                const Isp& isp = get();
                double bought = 0, sold = 0;
                isp.users().for_each_active([&](UserId, ConstUserRef u) {
                  bought += static_cast<double>(u.lifetime_epennies_bought);
                  sold += static_cast<double>(u.lifetime_epennies_sold);
                });
                const std::int64_t till = isp.till().micros();
                const double net =
                    (bought - prev_bought) - (sold - prev_sold);
                if (net != 0.0)
                  last_price = static_cast<double>(till - prev_till) / net;
                prev_till = till;
                prev_bought = bought;
                prev_sold = sold;
                return last_price;
              });
  t.add_gauge("econ", tag + ".till_micros", [get] {
    return static_cast<double>(get().till().micros());
  });
  t.add_gauge("econ", tag + ".avail_epennies",
              [get] { return static_cast<double>(get().avail()); });
  // Everything resident at this ISP: user balances + avail pool +
  // quiesce-buffered stamps.  Σ over ISPs + in-flight wire = supply.
  t.add_gauge("econ", tag + ".epennies_held", [get] {
    return static_cast<double>(get().epennies_held() +
                               get().buffered_paid());
  });
  t.add_rate("econ", tag + ".user_epennies_bought", [get] {
    double bought = 0;
    get().users().for_each_active([&](UserId, ConstUserRef u) {
      bought += static_cast<double>(u.lifetime_epennies_bought);
    });
    return bought;
  });
  t.add_rate("econ", tag + ".refunds", [get] {
    return static_cast<double>(get().metrics().emails_refunded);
  });
  // core — mail flow and quiesce health.
  t.add_rate("core", tag + ".delivered", [get] {
    return static_cast<double>(get().metrics().emails_delivered);
  });
  t.add_rate("core", tag + ".blocked", [get] {
    const IspMetrics& m = get().metrics();
    return static_cast<double>(m.emails_segregated + m.emails_discarded +
                               m.emails_filtered_out);
  });
  t.add_rate("core", tag + ".refused", [get] {
    const IspMetrics& m = get().metrics();
    return static_cast<double>(m.refused_no_balance + m.refused_daily_limit);
  });
  t.add_rate("core", tag + ".retransmitted", [get] {
    return static_cast<double>(get().metrics().emails_retransmitted);
  });
  t.add_gauge("core", tag + ".quiesce_buffered", [get] {
    return static_cast<double>(get().buffered_count());
  });
}

// WAL backlog (records logged since the last truncating checkpoint; a
// party that stops checkpointing climbs steadily) + checkpoint rate.
inline void register_store_telemetry(telemetry::TelemetryRegistry& t,
                                     const std::string& tag,
                                     const store::Checkpointer* cp) {
  t.add_gauge("store", tag + ".wal_backlog_records", [cp] {
    return static_cast<double>(cp->wal().stats().records_appended -
                               cp->stats().wal_records_truncated);
  });
  t.add_rate("store", tag + ".checkpoints", [cp] {
    return static_cast<double>(cp->stats().checkpoints);
  });
}

}  // namespace zmail::core::detail
