// SHRED and Vanquish baselines (paper Section 2.3, "monetary value based
// approaches").
//
// In both schemes the *receiver* of an unwanted email triggers a payment
// from the sender to the **sender's ISP** (not to the receiver).  The paper
// lists four weaknesses, each of which this model makes measurable:
//   1. extra human effort: one explicit action per spam received;
//   2. weak motivation: the receiver is not the beneficiary, so only a
//      fraction of spam is ever reported (`report_prob`);
//   3. ISP-spammer collusion: a colluding ISP refunds its spammer;
//   4. per-message payment handling whose processing cost can exceed the
//      payment value (`handling_cost_per_payment`).
// Zmail's contrast (E5): payments are implicit and reconciled in bulk.
#pragma once

#include <cstdint>

#include "util/money.hpp"
#include "util/rng.hpp"

namespace zmail::baselines {

using zmail::Money;

struct ShredParams {
  Money payment = Money::from_cents(1);     // fine per reported message
  double report_prob = 0.3;                  // receiver bothers to click
  double human_seconds_per_report = 3.0;
  Money handling_cost_per_payment = Money::from_cents(2);  // ISP back office
  bool isp_colludes = false;                 // sender's ISP refunds spammer
};

struct ShredStats {
  std::uint64_t messages = 0;
  std::uint64_t spam_messages = 0;
  std::uint64_t reports = 0;            // receiver-triggered payments
  std::uint64_t ledger_operations = 0;  // one per individual payment
  Money spammer_paid;                   // what the spammer actually lost
  Money isp_revenue;                    // payments kept by the sender's ISP
  Money isp_handling_cost;              // cost of processing the payments
  double receiver_human_seconds = 0.0;
};

class ShredScheme {
 public:
  ShredScheme(const ShredParams& params, zmail::Rng rng)
      : params_(params), rng_(rng) {}

  // One message flows; if spam, the receiver may report it.
  void process(bool truth_spam);

  const ShredStats& stats() const noexcept { return stats_; }

  // Net deterrent per spam message: expected cost to the spammer.
  Money expected_spammer_cost_per_spam() const noexcept;

 private:
  ShredParams params_;
  zmail::Rng rng_;
  ShredStats stats_;
};

// Vanquish is modelled as SHRED with a bond ("money-back guarantee"):
// payments are pre-escrowed, so reporting is cheaper for the receiver but
// handling still happens per message.
struct VanquishParams {
  ShredParams base;
  double report_prob = 0.5;  // one-click refund claim: higher participation
};

ShredParams vanquish_as_shred(const VanquishParams& p) noexcept;

}  // namespace zmail::baselines
