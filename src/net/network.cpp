#include "net/network.hpp"

#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace zmail::net {

Network::Network(sim::Simulator& simulator, Rng rng, LatencyModel latency)
    : sim_(simulator), rng_(rng), latency_(latency) {
  // A zero-or-negative floor would give the sharded engine a zero-width
  // conservative window (cross-shard messages could arrive "now"), so an
  // instantaneous network is rejected at construction rather than silently
  // deadlocking or reordering a sharded run later.
  ZMAIL_ASSERT_MSG(latency_.min_latency() > 0,
                   "latency model must have a strictly positive minimum");
  ZMAIL_ASSERT(latency_.jitter_mean >= 0);
}

HostId Network::add_host(std::string name, HandlerFn handler) {
  ZMAIL_ASSERT(handler != nullptr);
  ZMAIL_ASSERT_MSG(keyed_stride_ == 0,
                   "register all hosts before enabling keyed latency");
  hosts_.push_back(Host{std::move(name), std::move(handler), {}});
  bytes_to_.push_back(0);
  return hosts_.size() - 1;
}

HostId Network::add_remote_host(std::string name) {
  ZMAIL_ASSERT_MSG(keyed_stride_ == 0,
                   "register all hosts before enabling keyed latency");
  hosts_.push_back(Host{std::move(name), nullptr, {}});
  bytes_to_.push_back(0);
  return hosts_.size() - 1;
}

void Network::enable_keyed_latency(std::uint64_t key_seed) {
  ZMAIL_ASSERT_MSG(!hosts_.empty(), "enable keyed latency after adding hosts");
  keyed_seed_ = key_seed;
  keyed_stride_ = hosts_.size();
  keyed_draws_.assign(keyed_stride_ * keyed_stride_, 0);
}

sim::Duration Network::sample_latency(HostId from, HostId to) {
  if (keyed_stride_ == 0) return latency_.sample(rng_);
  if (latency_.jitter_mean <= 0) return latency_.base;
  // Sample k of pair (from,to) is a pure function of (seed, from, to, k):
  // identical whichever shard or thread evaluates it, and independent of
  // how sends from other pairs interleave with this one.
  const std::uint64_t k = keyed_draws_[from * keyed_stride_ + to]++;
  Rng draw = pair_keyed_rng(keyed_seed_, from, to, k);
  return latency_.base +
         sim::from_seconds(
             draw.exponential(1.0 / sim::to_seconds(latency_.jitter_mean)));
}

void Network::bind_domain(const std::string& domain, HostId host) {
  ZMAIL_ASSERT(host < hosts_.size());
  mx_[domain] = host;
}

HostId Network::resolve(const std::string& domain) const {
  const auto it = mx_.find(domain);
  return it == mx_.end() ? kNoHost : it->second;
}

SendStatus Network::send(HostId from, HostId to, MsgType type,
                         crypto::Bytes&& payload) {
  if (from >= hosts_.size() || to >= hosts_.size()) {
    ++send_errors_;
    return SendStatus::kUnknownHost;
  }
  if (type == kMsgInvalid) {
    ++send_errors_;
    return SendStatus::kInvalidType;
  }
  const std::size_t size = payload.size() + type.name().size() + 16;
  ++datagrams_;
  bytes_ += size;
  bytes_to_[to] += size;

  if (faults_ == nullptr) {
    schedule_copy(from, to, type, std::move(payload), false, 0);
    return SendStatus::kOk;
  }

  const FaultInjector::Fate fate = faults_->on_send(sim_.now(), from, to, type);
  if (fate.drop) {
    trace::instant(trace::Ev::kNetDrop, trace::current(),
                   static_cast<std::uint16_t>(from),
                   static_cast<std::uint64_t>(to));
    return SendStatus::kFaultDropped;
  }
  if (fate.corrupt) faults_->corrupt_payload(payload);
  if (fate.truncate) faults_->truncate_payload(payload);
  for (std::uint32_t copy = 1; copy < fate.copies; ++copy) {
    crypto::Bytes dup = payload;  // extra copies pay a real allocation
    const std::size_t dup_size = dup.size() + type.name().size() + 16;
    ++datagrams_;
    bytes_ += dup_size;
    bytes_to_[to] += dup_size;
    schedule_copy(from, to, type, std::move(dup), fate.reorder,
                  fate.extra_delay);
  }
  schedule_copy(from, to, type, std::move(payload), fate.reorder,
                fate.extra_delay);
  return SendStatus::kOk;
}

std::uint32_t Network::claim_slot() {
  if (free_slots_.empty()) {
    pending_.emplace_back();
    return static_cast<std::uint32_t>(pending_.size() - 1);
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  return slot;
}

void Network::schedule_copy(HostId from, HostId to, MsgType type,
                            crypto::Bytes&& payload, bool skip_fifo,
                            sim::Duration extra_delay) {
  ZMAIL_ASSERT(extra_delay >= 0);  // fault spikes only ever push later
  sim::SimTime deliver_at = sim_.now() + sample_latency(from, to) + extra_delay;
  // Enforce per-(from,to) FIFO: never deliver before an earlier datagram.
  // A reorder fault skips both the clamp and the watermark update, so this
  // copy may overtake (or be overtaken by) its neighbours.
  auto& fifo = hosts_[to].last_from;
  if (from >= fifo.size()) fifo.resize(from + 1, 0);
  if (!skip_fifo) {
    if (deliver_at <= fifo[from]) deliver_at = fifo[from] + 1;
    fifo[from] = deliver_at;
  }

  if (hosts_[to].handler == nullptr) {
    // Destination lives on another shard.  The delivery time is fully
    // resolved here (keyed latency + FIFO clamp + fault delay, all of
    // which only push later than now + min_latency), so the remote side
    // can schedule it verbatim after the next lookahead barrier.
    ZMAIL_ASSERT_MSG(remote_route_ != nullptr,
                     "remote host registered but no remote route installed");
    Datagram d;
    d.type = type;
    d.payload = std::move(payload);
    d.from = from;
    d.to = to;
    d.trace = trace::current();
    if (d.trace != 0)
      trace::instant(trace::Ev::kNetSend, d.trace,
                     static_cast<std::uint16_t>(from),
                     static_cast<std::uint64_t>(to));
    remote_route_(std::move(d), deliver_at);
    return;
  }

  const std::uint32_t slot = claim_slot();
  Datagram& d = pending_[slot];
  d.type = type;
  d.payload = std::move(payload);
  d.from = from;
  d.to = to;
  // schedule_copy runs synchronously inside send(), so the sender's causal
  // context is still pinned; carry it to the delivery side.
  d.trace = trace::current();
  if (d.trace != 0)
    trace::instant(trace::Ev::kNetSend, d.trace,
                   static_cast<std::uint16_t>(from),
                   static_cast<std::uint64_t>(to));
  sim_.schedule_at(deliver_at, [this, slot] { deliver(slot); });
}

void Network::deliver_remote(Datagram&& d, sim::SimTime at) {
  ZMAIL_ASSERT_MSG(d.to < hosts_.size() && hosts_[d.to].handler != nullptr,
                   "remote datagram routed to a shard that does not own it");
  if (at < sim_.now()) {
    // Conservative-lookahead violation upstream.  Deterministic runs must
    // never take this branch (the window math plus the extra_delay >= 0
    // invariant forbid it); clamp so the run stays causal and count it so
    // tests can assert the clamp never fired.
    ++horizon_clamps_;
    at = sim_.now();
  }
  const std::uint32_t slot = claim_slot();
  pending_[slot] = std::move(d);
  sim_.schedule_at(at, [this, slot] { deliver(slot); });
}

void Network::deliver(std::uint32_t slot) {
  if (faults_ != nullptr) {
    const sim::SimTime up = faults_->down_until(sim_.now(), pending_[slot].to);
    if (up != 0) {
      if (faults_->plan().outage_preserves_inflight) {
        // The host buffers across the crash: retry delivery at restart.
        faults_->note_outage_deferral();
        sim_.schedule_at(up, [this, slot] { deliver(slot); });
        return;
      }
      faults_->note_outage_loss();
      trace::instant(trace::Ev::kNetDrop, pending_[slot].trace,
                     static_cast<std::uint16_t>(pending_[slot].to),
                     static_cast<std::uint64_t>(pending_[slot].from));
      pending_[slot].payload = crypto::Bytes{};
      free_slots_.push_back(slot);
      return;
    }
  }
  // Move the datagram out before invoking the handler: a reentrant send()
  // may grow pending_ and would invalidate a reference into it.
  Datagram d = std::move(pending_[slot]);
  free_slots_.push_back(slot);
  trace::Scope scope(d.trace);
  if (d.trace != 0)
    trace::instant(trace::Ev::kNetDeliver, d.trace,
                   static_cast<std::uint16_t>(d.to),
                   static_cast<std::uint64_t>(d.from));
  hosts_[d.to].handler(d);
}

}  // namespace zmail::net
