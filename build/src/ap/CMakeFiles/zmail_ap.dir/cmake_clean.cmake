file(REMOVE_RECURSE
  "CMakeFiles/zmail_ap.dir/process.cpp.o"
  "CMakeFiles/zmail_ap.dir/process.cpp.o.d"
  "CMakeFiles/zmail_ap.dir/scheduler.cpp.o"
  "CMakeFiles/zmail_ap.dir/scheduler.cpp.o.d"
  "CMakeFiles/zmail_ap.dir/trace_format.cpp.o"
  "CMakeFiles/zmail_ap.dir/trace_format.cpp.o.d"
  "libzmail_ap.a"
  "libzmail_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zmail_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
