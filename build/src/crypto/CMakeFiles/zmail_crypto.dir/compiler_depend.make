# Empty compiler generated dependencies file for zmail_crypto.
# This may be replaced when dependencies are built.
