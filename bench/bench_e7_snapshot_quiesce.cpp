// E7 — Snapshot quiesce (paper Section 4.4).
//
// Claim: "the 10 minutes timeout period is only experienced by ISPs, not
// email users.  An email user still can instruct their ISP to send emails
// during the timeout period, although these emails will be buffered and
// sent right after the timeout expires."
//
// Regenerates:
//   E7.a  end-to-end delivery latency sampled outside vs inside the
//         quiesce window (user mail is delayed at most by the remaining
//         window, never refused)
//   E7.b  the ISP view: messages buffered, then flushed in one burst
//   E7.c  snapshot frequency sweep: added average latency is negligible at
//         realistic (weekly/monthly) verification cadences
//   E7.e  the durable-store angle: what one checkpoint actually costs —
//         state serialize/deserialize time and the on-disk snapshot size
//   E7.f  snapshot cost vs population size, out to 10M users per ISP:
//         columnar ("ZSNP" v2) sections vs the legacy v1 row blob, plus
//         the mmap-restore path recovery actually uses
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>

#include "bench_common.hpp"
#include "core/system.hpp"
#include "store/checkpoint.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

using namespace zmail;

namespace {

core::ZmailParams params() {
  core::ZmailParams p;
  p.n_isps = 2;
  p.users_per_isp = 4;
  p.initial_user_balance = 100'000;
  p.default_daily_limit = 1'000'000;
  p.record_inboxes = false;
  return p;
}

// Sends one message and runs until it lands; returns the latency.
sim::Duration measure_one(core::ZmailSystem& sys, std::size_t seqno) {
  const auto from = net::make_user_address(0, seqno % 4);
  const auto to = net::make_user_address(1, (seqno + 1) % 4);
  const std::uint64_t delivered_before =
      sys.isp(1).metrics().emails_delivered;
  const sim::SimTime sent_at = sys.now();
  const core::SendResult r =
      sys.send_email(from, to, "probe", "p" + std::to_string(seqno));
  if (r != core::SendResult::kSentPaid && r != core::SendResult::kBuffered)
    return -1;
  while (sys.isp(1).metrics().emails_delivered == delivered_before) {
    if (sys.simulator().empty()) break;
    sys.simulator().step();
  }
  return sys.now() - sent_at;
}

void e7a_latency_profile() {
  core::ZmailSystem sys(params(), 71);

  Sample normal_lat, quiesce_lat;
  for (std::size_t i = 0; i < 50; ++i) {
    normal_lat.add(sim::to_seconds(measure_one(sys, i)));
    sys.run_for(sim::kMinute);
  }

  // Enter a snapshot; probe at various points inside the window.
  sys.start_snapshot();
  sys.run_for(sim::kMinute);  // requests land; quiesce running
  std::size_t buffered_probes = 0;
  for (int k = 0; k < 9; ++k) {
    if (sys.isp(0).in_quiesce()) ++buffered_probes;
    quiesce_lat.add(sim::to_seconds(measure_one(sys, 100 + k)));
    // measure_one runs the clock forward to delivery, which exits the
    // window; re-enter for the next probe by starting a new snapshot once
    // the previous round closed.
    sys.run_for(20 * sim::kMinute);
    sys.start_snapshot();
    sys.run_for(sim::kMinute);
  }

  Table t({"phase", "p50 latency", "p95 latency", "max latency"});
  t.add_row({"normal operation",
             Table::num(normal_lat.percentile(50), 3) + " s",
             Table::num(normal_lat.percentile(95), 3) + " s",
             Table::num(normal_lat.max(), 3) + " s"});
  t.add_row({"during quiesce",
             Table::num(quiesce_lat.percentile(50), 1) + " s",
             Table::num(quiesce_lat.percentile(95), 1) + " s",
             Table::num(quiesce_lat.max(), 1) + " s"});
  t.print("E7.a  user-visible delivery latency (10-minute quiesce)");

  bench::check(normal_lat.percentile(95) < 1.0,
               "normal delivery is sub-second in the simulation");
  bench::check(quiesce_lat.max() <= 10.0 * 60.0 + 5.0,
               "quiesce delays mail by at most the remaining window");
  bench::check(buffered_probes > 0, "probes really hit the quiesce window");
}

void e7b_buffer_flush() {
  core::ZmailSystem sys(params(), 72);
  sys.start_snapshot();
  sys.run_for(sim::kMinute);

  for (int i = 0; i < 20; ++i)
    sys.send_email(net::make_user_address(0, 0), net::make_user_address(1, 0),
                   "held", "h" + std::to_string(i));
  const std::uint64_t buffered =
      sys.isp(0).metrics().emails_buffered_during_quiesce;
  const std::uint64_t delivered_mid = sys.isp(1).metrics().emails_delivered;
  sys.run_for(15 * sim::kMinute);  // window expires; flush
  const std::uint64_t delivered_after = sys.isp(1).metrics().emails_delivered;

  Table t({"metric", "value"});
  t.add_row({"messages user submitted during quiesce", "20"});
  t.add_row({"buffered by the ISP", Table::num(buffered)});
  t.add_row({"delivered during the window", Table::num(delivered_mid)});
  t.add_row({"delivered after the window", Table::num(delivered_after)});
  t.print("E7.b  ISP-side buffering and post-window flush");

  bench::check(buffered == 20, "all user mail was accepted and buffered");
  bench::check(delivered_mid == 0 && delivered_after == 20,
               "held during the window, all delivered right after");
  bench::check(sys.conservation_holds(), "no e-penny lost in the buffer");
}

void e7c_cadence_sweep() {
  Table t({"snapshot cadence", "snapshots in 30 days",
           "expected added latency per message"});
  for (sim::Duration cadence : {sim::kDay, 7 * sim::kDay, 30 * sim::kDay}) {
    // A message is delayed only if it is submitted inside a window; the
    // expected penalty is (window/cadence) * window/2.
    const double window = 10.0 * 60.0;
    const double cadence_s = sim::to_seconds(cadence);
    const double expected = window / cadence_s * window / 2.0;
    t.add_row({Table::num(cadence_s / 86'400.0, 0) + " d",
               Table::num(30.0 * 86'400.0 / cadence_s, 0),
               Table::num(expected, 2) + " s"});
  }
  t.print("E7.c  added latency vs verification cadence (analytical)");
  bench::check(true, "weekly/monthly cadence adds <1s expected latency");
}

void e7d_month_of_traffic() {
  // A month of realistic traffic with daily verification: the built-in
  // latency sampler sees every inter-ISP message, so the tail directly
  // shows how much the quiesce windows cost real users.
  core::ZmailParams p;
  p.n_isps = 3;
  p.users_per_isp = 20;
  p.initial_user_balance = 2'000;
  p.default_daily_limit = 10'000;
  p.record_inboxes = false;
  core::ZmailSystem sys(p, 73);
  sys.enable_daily_resets();
  sys.enable_periodic_snapshots(sim::kDay);

  workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(74));
  workload::TrafficParams tp;
  tp.mean_sends_per_user_day = 10.0;
  tp.diurnal = true;
  workload::TrafficGenerator traffic(sys, tp, corpus, Rng(75));
  traffic.build_contacts();
  for (int day = 0; day < 30; ++day) {
    traffic.schedule_day();
    sys.run_for(sim::kDay);
  }
  sys.run_for(sim::kHour);

  const Sample& lat = sys.delivery_latency();
  Table t({"metric", "value"});
  t.add_row({"messages sampled", Table::num(std::uint64_t{lat.size()})});
  t.add_row({"p50", Table::num(lat.percentile(50), 3) + " s"});
  t.add_row({"p99", Table::num(lat.percentile(99), 3) + " s"});
  t.add_row({"p99.9", Table::num(lat.percentile(99.9), 1) + " s"});
  t.add_row({"max", Table::num(lat.max(), 1) + " s"});
  t.print("E7.d  30 days of diurnal traffic with DAILY snapshots");

  bench::check(lat.size() > 5'000,
               "a real month of inter-ISP mail was sampled");
  bench::check(lat.percentile(99) < 1.0,
               "99% of mail is unaffected even at daily verification");
  bench::check(lat.max() <= 10.0 * 60.0 + 1.0,
               "the worst case is bounded by one quiesce window");
}

void e7e_durable_snapshot_cost(bench::Bench& harness) {
  // With zmail::store enabled, every quiesce boundary is also a checkpoint:
  // the party's settlement state is serialized, written atomically, and the
  // WAL truncated behind it.  Price that work for each party.
  const std::string dir = "e7e_store";
  std::filesystem::remove_all(dir);
  core::ZmailParams p = params();
  p.store.enabled = true;
  p.store.dir = dir;
  core::ZmailSystem sys(p, 76);
  for (int i = 0; i < 60; ++i) {
    sys.send_email(net::make_user_address(i % 2, i % 4),
                   net::make_user_address((i + 1) % 2, (i + 2) % 4),
                   "fill", "f" + std::to_string(i));
    sys.run_for(sim::kMinute);
  }
  sys.start_snapshot();
  sys.run_for(sim::kHour);
  sys.checkpoint_all();

  Table t({"party", "state bytes", "serialize", "deserialize",
           "snapshot on disk"});
  json::Value rows = json::Value::array();
  const auto time_party = [&](const std::string& name, std::size_t host,
                              const std::function<crypto::Bytes()>& ser,
                              const std::function<bool(const crypto::Bytes&)>&
                                  deser) {
    auto t0 = std::chrono::steady_clock::now();
    const crypto::Bytes state = ser();
    const double ser_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    t0 = std::chrono::steady_clock::now();
    const bool ok = deser(state);
    const double deser_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const std::uint64_t disk = sys.host_store(host)->stats().last_snapshot_bytes;
    bench::check(ok, "e7e: " + name + " state round-trips through restore");
    t.add_row({name, Table::num(std::uint64_t{state.size()}),
               Table::num(ser_s * 1e6, 1) + " us",
               Table::num(deser_s * 1e6, 1) + " us",
               Table::num(disk) + " B"});
    json::Value row = json::Value::object();
    row["party"] = name;
    row["state_bytes"] = std::uint64_t{state.size()};
    row["serialize_seconds"] = ser_s;
    row["deserialize_seconds"] = deser_s;
    row["snapshot_disk_bytes"] = disk;
    rows.push_back(std::move(row));
    return disk;
  };

  std::uint64_t min_disk = ~0ull;
  for (std::size_t i = 0; i < p.n_isps; ++i) {
    const std::uint64_t disk = time_party(
        "isp" + std::to_string(i), i,
        [&, i] { return sys.isp(i).serialize_state(); },
        [&, i](const crypto::Bytes& b) { return sys.isp(i).restore_state(b); });
    min_disk = std::min(min_disk, disk);
  }
  const std::uint64_t bank_disk = time_party(
      "bank", sys.bank_index(), [&] { return sys.bank().serialize_state(); },
      [&](const crypto::Bytes& b) { return sys.bank().restore_state(b); });
  min_disk = std::min(min_disk, bank_disk);
  t.print("E7.e  per-checkpoint cost with the durable store enabled");
  harness.metrics()["e7e_snapshot_cost"] = std::move(rows);

  bench::check(min_disk > 0, "e7e: every party wrote a non-empty snapshot");
  std::filesystem::remove_all(dir);
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void e7f_population_scale(bench::Bench& harness) {
  // The scaling story behind the columnar refactor: serialize + restore one
  // ISP's user state at growing populations, comparing the v1 row blob
  // (field-by-field) against v2 columnar sections (one bulk copy per
  // column) and the mmap-restore path recovery uses.  Smoke stops at 100k;
  // ZMAIL_E7_POP_USERS=<n> pins a single population (the sanitizer CI step
  // uses 1M).
  std::vector<std::size_t> pops =
      harness.options().smoke
          ? std::vector<std::size_t>{10'000, 100'000}
          : std::vector<std::size_t>{10'000, 100'000, 1'000'000, 10'000'000};
  if (const char* env = std::getenv("ZMAIL_E7_POP_USERS")) {
    const std::size_t n = std::strtoull(env, nullptr, 10);
    if (n > 0) pops = {n};
  }

  Rng key_rng(501);
  const crypto::KeyPair keys = crypto::generate_keypair(key_rng);

  Table t({"users", "row ser", "row restore", "col ser", "col restore",
           "mmap restore", "speedup"});
  json::Value rows = json::Value::array();
  const std::string path = "e7f_population.zsnap";

  for (const std::size_t n : pops) {
    core::ZmailParams p;
    p.n_isps = 2;
    p.users_per_isp = n;
    p.initial_user_balance = 100;
    p.default_daily_limit = 1'000;
    p.record_inboxes = false;
    core::Isp isp(0, p, keys.pub, 99);
    // Scatter writes across the columns so the state is not one constant
    // run; the protocol layer is not under test here.
    for (std::size_t u = 0; u < n; u += 97) {
      const auto r = isp.user(u);
      r.balance += static_cast<EPenny>(u % 13);
      r.sent = static_cast<std::int64_t>(u % 7);
      r.lifetime_sent = static_cast<std::int64_t>(u % 29);
    }

    // Legacy v1 row blob: serialize + restore.
    auto t0 = std::chrono::steady_clock::now();
    const crypto::Bytes blob = isp.serialize_state();
    const double row_ser = seconds_since(t0);
    core::Isp rest(0, p, keys.pub, 7);
    t0 = std::chrono::steady_clock::now();
    bench::check(rest.restore_state(blob), "e7f: row restore succeeds");
    const double row_deser = seconds_since(t0);

    // Columnar v2 sections: serialize + restore from borrowed sections.
    std::vector<store::SnapshotSection> sections;
    t0 = std::chrono::steady_clock::now();
    isp.serialize_sections(sections);
    const double col_ser = seconds_since(t0);
    std::uint64_t col_bytes = 0;
    std::vector<core::Isp::RawSection> raw;
    raw.reserve(sections.size());
    for (const auto& s : sections) {
      raw.push_back(
          core::Isp::RawSection{s.id, s.payload.data(), s.payload.size()});
      col_bytes += s.payload.size();
    }
    t0 = std::chrono::steady_clock::now();
    bench::check(rest.restore_columnar(raw), "e7f: columnar restore succeeds");
    const double col_deser = seconds_since(t0);

    // The real recovery path: v2 snapshot file, mapped read-only, columns
    // bulk-copied out of the mapping (open cost included — that is where
    // the CRC sweep happens).
    store::SnapshotData snap;
    snap.meta.version = store::kSnapshotVersionColumnar;
    snap.meta.features = store::kFeatureColumnarUserState;
    snap.sections = std::move(sections);
    std::string err;
    bench::check(store::write_snapshot_file(path, snap, false, &err) ==
                     store::StoreStatus::kOk,
                 "e7f: snapshot file written");
    t0 = std::chrono::steady_clock::now();
    store::SnapshotFileView view;
    bench::check(view.open(path) == store::StoreStatus::kOk,
                 "e7f: snapshot file maps and validates");
    bench::check(rest.restore_snapshot(view), "e7f: mmap restore succeeds");
    const double mmap_restore = seconds_since(t0);
    view.close();
    bench::check(rest.serialize_state() == blob,
                 "e7f: all three restore paths reproduce the same state");

    const double speedup = (row_ser + row_deser) / (col_ser + col_deser);
    t.add_row({Table::num(std::uint64_t{n}),
               Table::num(row_ser * 1e3, 2) + " ms",
               Table::num(row_deser * 1e3, 2) + " ms",
               Table::num(col_ser * 1e3, 2) + " ms",
               Table::num(col_deser * 1e3, 2) + " ms",
               Table::num(mmap_restore * 1e3, 2) + " ms",
               Table::num(speedup, 1) + "x"});
    json::Value row = json::Value::object();
    row["users"] = std::uint64_t{n};
    row["row_bytes"] = std::uint64_t{blob.size()};
    row["columnar_bytes"] = col_bytes;
    row["row_serialize_seconds"] = row_ser;
    row["row_restore_seconds"] = row_deser;
    row["columnar_serialize_seconds"] = col_ser;
    row["columnar_restore_seconds"] = col_deser;
    row["mmap_restore_seconds"] = mmap_restore;
    row["columnar_speedup"] = speedup;
    rows.push_back(std::move(row));

    // The acceptance bar: at 1M users, columnar serialize+restore beats the
    // row rendition by at least 3x.
    if (n == 1'000'000)
      bench::check(speedup >= 3.0,
                   "e7f: columnar snapshot 3x+ faster than rows at 1M users");
  }
  std::filesystem::remove(path);
  t.print("E7.f  snapshot cost vs population (columnar vs legacy rows)");
  harness.metrics()["e7f_population_curve"] = std::move(rows);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("e7_snapshot_quiesce", argc, argv);
  std::printf("=== E7: snapshot quiesce ===\n");
  e7a_latency_profile();
  e7b_buffer_flush();
  e7c_cadence_sweep();
  // A simulated month of traffic is not smoke material (the sanitizer CI
  // step runs --smoke); the quiesce-latency claims it backs are also
  // exercised by e7a on a smaller scale.
  if (!harness.options().smoke) e7d_month_of_traffic();
  e7e_durable_snapshot_cost(harness);
  e7f_population_scale(harness);
  return harness.finish();
}
