#include "crypto/nonce.hpp"

#include <gtest/gtest.h>

#include <set>

namespace zmail::crypto {
namespace {

TEST(Nonce, NonrepetitionOverManyDraws) {
  // The paper's NNC property 2: nonrepetition.
  NonceGenerator gen(42);
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (int i = 0; i < 10'000; ++i) {
    const Nonce n = gen.next();
    EXPECT_TRUE(seen.insert({n.counter, n.prf}).second) << "repeat at " << i;
  }
  EXPECT_EQ(gen.issued(), 10'000u);
}

TEST(Nonce, CounterIsStrictlyMonotonic) {
  NonceGenerator gen(7);
  std::uint64_t prev = gen.next().counter;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t cur = gen.next().counter;
    EXPECT_EQ(cur, prev + 1);
    prev = cur;
  }
}

TEST(Nonce, PrfHalfLooksUnpredictable) {
  // The paper's NNC property 1: unpredictability.  Weak statistical check:
  // consecutive PRF values are not equal, not sequential, and have spread
  // bits.
  NonceGenerator gen(123);
  std::set<std::uint64_t> prfs;
  for (int i = 0; i < 1000; ++i) prfs.insert(gen.next().prf);
  EXPECT_EQ(prfs.size(), 1000u);  // no collisions in the PRF half either
}

TEST(Nonce, DifferentSecretsDifferentStreams) {
  NonceGenerator a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next().prf == b.next().prf) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Nonce, SameSecretSameStream) {
  NonceGenerator a(5), b(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Nonce, SerializationRoundTrips) {
  NonceGenerator gen(9);
  const Nonce n = gen.next();
  Bytes b;
  put_nonce(b, n);
  EXPECT_EQ(b.size(), 16u);
  ByteReader r(b);
  const Nonce back = get_nonce(r);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(back, n);
}

TEST(Nonce, ForgingRequiresPrfHalf) {
  // An attacker who knows the counter cannot guess the PRF half: verify
  // that equality requires both fields.
  NonceGenerator gen(77);
  const Nonce real = gen.next();
  Nonce forged = real;
  forged.prf ^= 0xDEADBEEF;
  EXPECT_FALSE(forged == real);
}

}  // namespace
}  // namespace zmail::crypto
