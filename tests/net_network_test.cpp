#include "net/network.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace zmail::net {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  Network net_{sim_, Rng(5), LatencyModel{10 * sim::kMillisecond,
                                          5 * sim::kMillisecond}};
};

TEST_F(NetworkTest, DeliversToRegisteredHandler) {
  std::vector<MsgType> got;
  const HostId a = net_.add_host("a", [](const Datagram&) {});
  const HostId b = net_.add_host(
      "b", [&got](const Datagram& d) { got.push_back(d.type); });
  net_.send(a, b, kMsgEmail, {1, 2, 3});
  sim_.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], kMsgEmail);
  EXPECT_EQ(got[0].name(), "email");
}

TEST_F(NetworkTest, DeliveryTakesAtLeastBaseLatency) {
  sim::SimTime delivered_at = -1;
  const HostId a = net_.add_host("a", [](const Datagram&) {});
  const HostId b = net_.add_host(
      "b", [&](const Datagram&) { delivered_at = sim_.now(); });
  net_.send(a, b, MsgType::intern("x"), {});
  sim_.run();
  EXPECT_GE(delivered_at, 10 * sim::kMillisecond);
}

TEST_F(NetworkTest, PerPairFifoUnderJitter) {
  std::vector<std::uint8_t> order;
  const HostId a = net_.add_host("a", [](const Datagram&) {});
  const HostId b = net_.add_host("b", [&order](const Datagram& d) {
    order.push_back(d.payload.at(0));
  });
  const MsgType m = MsgType::intern("m");
  for (std::uint8_t i = 0; i < 50; ++i) net_.send(a, b, m, {i});
  sim_.run();
  ASSERT_EQ(order.size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

// Satellite regression: a zero-jitter latency model used to divide by zero
// inside Rng::exponential.  It must instead deliver after exactly `base`,
// with per-pair FIFO falling back to the +1 tick clamp.
TEST(NetworkZeroJitterTest, ZeroJitterDeliversFifoAtBaseLatency) {
  sim::Simulator sim;
  Network net{sim, Rng(9), LatencyModel{10 * sim::kMillisecond, 0}};
  std::vector<std::uint8_t> order;
  std::vector<sim::SimTime> times;
  const HostId a = net.add_host("a", [](const Datagram&) {});
  const HostId b = net.add_host("b", [&](const Datagram& d) {
    order.push_back(d.payload.at(0));
    times.push_back(sim.now());
  });
  const MsgType m = MsgType::intern("m");
  for (std::uint8_t i = 0; i < 10; ++i) net.send(a, b, m, {i});
  sim.run();
  ASSERT_EQ(order.size(), 10u);
  for (std::uint8_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
  // All sends happened at t=0 with identical latency; FIFO spreads them one
  // tick apart starting at base.
  for (std::size_t i = 0; i < times.size(); ++i)
    EXPECT_EQ(times[i], 10 * sim::kMillisecond + static_cast<sim::SimTime>(i));
}

TEST_F(NetworkTest, CountsDatagramsAndBytes) {
  const HostId a = net_.add_host("a", [](const Datagram&) {});
  const HostId b = net_.add_host("b", [](const Datagram&) {});
  const MsgType t = MsgType::intern("t");
  net_.send(a, b, t, crypto::Bytes(100, 0));
  net_.send(b, a, t, crypto::Bytes(50, 0));
  EXPECT_EQ(net_.datagrams_sent(), 2u);
  EXPECT_GT(net_.bytes_sent(), 150u);
  EXPECT_GT(net_.bytes_sent_to(b), 100u);
  EXPECT_GT(net_.bytes_sent_to(a), 50u);
  EXPECT_LT(net_.bytes_sent_to(a), net_.bytes_sent_to(b));
}

// Satellite regression: querying a host that never received traffic (or an
// id that was never registered) must report 0 bytes, not throw.
TEST_F(NetworkTest, BytesSentToUnknownHostIsZero) {
  const HostId a = net_.add_host("a", [](const Datagram&) {});
  const HostId b = net_.add_host("b", [](const Datagram&) {});
  EXPECT_EQ(net_.bytes_sent_to(a), 0u);
  EXPECT_EQ(net_.bytes_sent_to(b), 0u);
  EXPECT_EQ(net_.bytes_sent_to(17), 0u);
  EXPECT_EQ(net_.bytes_sent_to(kNoHost), 0u);
  net_.send(a, b, MsgType::intern("t"), crypto::Bytes(10, 0));
  EXPECT_GT(net_.bytes_sent_to(b), 0u);
  EXPECT_EQ(net_.bytes_sent_to(a), 0u);
}

TEST_F(NetworkTest, SendToUnknownHostReturnsTypedError) {
  const HostId a = net_.add_host("a", [](const Datagram&) {});
  std::size_t delivered = 0;
  const HostId b =
      net_.add_host("b", [&](const Datagram&) { ++delivered; });
  (void)b;

  // An out-of-range destination (and source) is refused, counted, and never
  // scheduled — mirroring the bytes_sent_to 0-for-unknown convention.
  EXPECT_EQ(net_.send(a, HostId{99}, kMsgEmail, {1}),
            SendStatus::kUnknownHost);
  EXPECT_EQ(net_.send(HostId{99}, a, kMsgEmail, {1}),
            SendStatus::kUnknownHost);
  EXPECT_EQ(net_.send(a, kNoHost, kMsgEmail, {1}), SendStatus::kUnknownHost);
  EXPECT_EQ(net_.send_errors(), 3u);
  EXPECT_EQ(net_.datagrams_sent(), 0u);

  // An uninterned message type is likewise a typed refusal, not UB.
  EXPECT_EQ(net_.send(a, b, kMsgInvalid, {1}), SendStatus::kInvalidType);
  EXPECT_EQ(net_.send_errors(), 4u);

  // The healthy path is unaffected.
  EXPECT_EQ(net_.send(a, b, kMsgEmail, {1}), SendStatus::kOk);
  sim_.run();
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(net_.send_errors(), 4u);
}

TEST(MsgTypeTest, InternRoundTripsAndDeduplicates) {
  const MsgType a = MsgType::intern("net-test-alpha");
  const MsgType b = MsgType::intern("net-test-beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, MsgType::intern("net-test-alpha"));
  EXPECT_EQ(a.id(), MsgType::intern("net-test-alpha").id());
  EXPECT_EQ(a.name(), "net-test-alpha");
  EXPECT_EQ(b.name(), "net-test-beta");
  // The well-known protocol tags are pre-interned with stable names.
  EXPECT_EQ(kMsgEmail.name(), "email");
  EXPECT_EQ(MsgType::intern("email"), kMsgEmail);
  EXPECT_EQ(MsgType::intern("buyreply"), kMsgBuyReply);
  // Implicit view conversion for string-keyed call sites.
  const std::string_view view = kMsgBuy;
  EXPECT_EQ(view, "buy");
  EXPECT_FALSE(static_cast<bool>(kMsgInvalid));
  EXPECT_TRUE(static_cast<bool>(kMsgEmail));
}

TEST_F(NetworkTest, MxResolution) {
  const HostId a = net_.add_host("mail.a", [](const Datagram&) {});
  net_.bind_domain("a.example", a);
  EXPECT_EQ(net_.resolve("a.example"), a);
  EXPECT_EQ(net_.resolve("unknown.example"), kNoHost);
}

TEST_F(NetworkTest, HostNames) {
  const HostId a = net_.add_host("alpha", [](const Datagram&) {});
  EXPECT_EQ(net_.host_name(a), "alpha");
  EXPECT_EQ(net_.host_count(), 1u);
}

TEST_F(NetworkTest, SelfSendWorks) {
  int got = 0;
  HostId a_id = kNoHost;
  a_id = net_.add_host("a", [&](const Datagram& d) {
    ++got;
    EXPECT_EQ(d.from, a_id);
  });
  net_.send(a_id, a_id, MsgType::intern("loop"), {});
  sim_.run();
  EXPECT_EQ(got, 1);
}

// The zero-copy delivery path must tolerate handlers that send (and thus may
// grow the pending-slot pool) while a delivery is in flight.
TEST_F(NetworkTest, HandlerMaySendDuringDelivery) {
  int b_got = 0;
  int a_got = 0;
  HostId a = kNoHost;
  HostId b = kNoHost;
  const MsgType ping = MsgType::intern("ping");
  const MsgType pong = MsgType::intern("pong");
  a = net_.add_host("a", [&](const Datagram& d) {
    ++a_got;
    EXPECT_EQ(d.type, pong);
  });
  b = net_.add_host("b", [&](const Datagram& d) {
    ++b_got;
    // Burst of nested sends: forces pending_ to grow mid-delivery.
    for (int i = 0; i < 8; ++i)
      net_.send(b, a, pong, crypto::Bytes(64, static_cast<std::uint8_t>(i)));
  });
  net_.send(a, b, ping, crypto::Bytes(32, 1));
  sim_.run();
  EXPECT_EQ(b_got, 1);
  EXPECT_EQ(a_got, 8);
}

}  // namespace
}  // namespace zmail::net
