// zmail::trace — end-to-end causal tracing and hot-path profiling.
//
// Three cooperating pieces (see DESIGN.md "Tracing & profiling"):
//
//   1. Lifecycle spans.  A TraceId is minted when a message enters the
//      system (core::ZmailSystem::send_email) and follows it everywhere:
//      through net::EmailMessage (an optional serialized tail that only
//      exists for traced messages), through the Dapper-style implicit
//      context (trace::Scope) that net::Network stamps onto every datagram
//      and restores around every delivery handler, and through the ARQ /
//      bank-exchange / store machinery which each mint their own ids for
//      non-message work.  One email's full causal chain — submit, quiesce
//      buffering, retransmits, SMTP transfer, classification, delivery or
//      refund, even crash recovery in between — is reconstructible from
//      the event log by trace::analyze().
//
//   2. The flight recorder.  A fixed-capacity per-thread ring buffer of
//      POD TraceEvents stamped with sim-time *and* wall-time.  The hot
//      path takes no lock: each thread writes its own ring (registered
//      once, under a mutex, on first use) and ordering across threads
//      comes from a relaxed global sequence counter.  Old events are
//      overwritten, magic-trace style, so tracing can stay on for long
//      runs and the tail is always available.
//
//   3. Profiling hooks.  Named log2-bucketed nanosecond histograms fed by
//      ScopedTimer; the simulator's event dispatch, calendar-queue
//      rebase, crypto seal/unseal, and WAL sync report here.
//
// Zero-cost-off contract: everything is runtime-off by default — the only
// cost a disabled build pays is a relaxed atomic load and a predictable
// branch per call site (plus one u64 copy per datagram for the carried
// context).  Tracing draws no RNG and never influences control flow, so
// enabling it cannot change simulation results; disabling it leaves bench
// output bit-identical to a build without the module.  Compiling with
// -DZMAIL_TRACE_DISABLED turns every call site into an empty inline.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "util/json.hpp"

namespace zmail::trace {

// Per-message (or per-operation) causal identifier.  0 = untracked.
using TraceId = std::uint64_t;

constexpr std::uint16_t kNoHost = 0xFFFF;

// Event taxonomy.  Spans appear as kBegin/kEnd pairs sharing an id;
// instants carry kInstant.  Keep this in sync with ev_name().
enum class Ev : std::uint8_t {
  kNone = 0,
  // --- message lifecycle ---------------------------------------------------
  kMessage,        // root span: begin at submit, end at any terminal below
  kSubmit,         // instant: user_send outcome (arg0 = SendResult)
  kQuiesceBuffer,  // span: held in the Section 4.4 quiesce buffer
  kTransit,        // span: ARQ transfer, begin at first transmit, end at
                   //       ack (arg0 = 0) or abandonment (arg0 = 1)
  kTransmit,       // instant: one wire transmission (arg0 = attempt #)
  kNetSend,        // instant: datagram handed to the network (arg0 = dest)
  kNetDeliver,     // instant: datagram delivered (arg0 = source host)
  kNetDrop,        // instant: datagram swallowed by a fault / outage
  kSmtp,           // span: receiving SMTP dialogue (arg0 = bytes)
  kClassify,       // span: Isp::on_email receive/classify path
  kDeliver,        // instant terminal: reached an inbox (arg0 = junk flag)
  kDiscard,        // instant terminal: dropped by non-compliant policy
  kFilterDrop,     // instant terminal: spam filter rejected it
  kRefuse,         // instant terminal: refused at send (arg0 = SendResult)
  kShed,           // instant terminal: quiesce buffer overflow, refunded
  kDuplicateDrop,  // instant: receiver-side ARQ dedupe absorbed a copy
  kRefund,         // instant terminal: transfer abandoned, payment undone
  kAck,            // instant: ARQ ack reached the sender
  // --- bank / settlement ---------------------------------------------------
  kBankBuy,        // span: ISP->bank buy exchange (arg0 = e-pennies)
  kBankSell,       // span: ISP->bank sell exchange (arg0 = e-pennies)
  kCreditReport,   // instant: credit report emitted at quiesce timeout
  kSettle,         // instant: bank bulk-settlement (arg0 = transfers)
  kSnapshotRound,  // span: snapshot round open at the bank
  // --- durable store -------------------------------------------------------
  kCheckpoint,     // span: snapshot write + WAL truncation (arg0 = bytes)
  kRecovery,       // span: crash rebuild (arg0 = WAL records replayed)
  // --- log mirror ----------------------------------------------------------
  kLog,            // instant: mirrored util::log record (arg0 = level)
  kCount
};

const char* ev_name(Ev e) noexcept;

enum class Phase : std::uint8_t { kInstant = 0, kBegin = 1, kEnd = 2 };

// POD flight-recorder record.  48 bytes; written by value into the ring.
struct TraceEvent {
  std::uint64_t seq = 0;      // global order across threads
  std::int64_t sim_us = 0;    // simulated time at emission
  std::uint64_t wall_ns = 0;  // steady-clock wall time at emission
  TraceId id = 0;             // causal id (0 = host-scoped / untracked)
  std::uint64_t arg0 = 0;     // event-specific (see Ev comments)
  std::uint32_t arg1 = 0;     // event-specific secondary argument
  std::uint16_t host = kNoHost;  // emitting host index (bank = n_isps)
  std::uint8_t type = 0;         // Ev
  std::uint8_t phase = 0;        // Phase
};
static_assert(std::is_trivially_copyable_v<TraceEvent>, "ring does memcpy");
static_assert(sizeof(TraceEvent) == 48, "keep the record cache-friendly");

// A mirrored log record: the POD event plus the text the ring cannot hold.
struct LogRecord {
  TraceEvent ev;
  std::string tag;
  std::string text;
};

// --- Runtime control --------------------------------------------------------

#ifndef ZMAIL_TRACE_DISABLED

namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_profiling;
extern thread_local TraceId t_current;
extern thread_local bool t_suppressed;
extern thread_local std::int64_t t_sim_us;
void emit_slow(Ev type, Phase phase, TraceId id, std::uint16_t host,
               std::uint64_t arg0, std::uint32_t arg1) noexcept;
}  // namespace detail

// Master switch for the flight recorder.  Off by default.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

// Independent switch for the profiling histograms (benches may want the
// timers without the event firehose).  set_enabled(true) also turns it on.
inline bool profiling_enabled() noexcept {
  return detail::g_profiling.load(std::memory_order_relaxed);
}
void set_profiling_enabled(bool on);

// Ring capacity per thread, in events (rounded up to a power of two).
// Applies to rings created after the call; default 1 << 16.
void set_ring_capacity(std::size_t events);

// Drops all recorded events, log mirrors, and drop counters.  Not
// thread-safe against concurrent emission; call between runs.
void clear();

// Events overwritten after their ring wrapped (sum over rings).
std::uint64_t dropped();

// Snapshot of every ring, merged and sorted by seq.  Safe to call while
// recording is paused; collecting mid-emission may miss in-flight events.
std::vector<TraceEvent> collect();
// Snapshot of the mirrored log records (bounded; oldest dropped first).
std::vector<LogRecord> collect_logs();

// Mints a fresh nonzero TraceId — unless tracing is disabled or the
// current thread is replaying a WAL (then 0, so replayed work stays
// untracked and recovery cannot mint duplicate spans).
TraceId next_id() noexcept;

// --- Implicit causal context (Dapper-style) --------------------------------

inline TraceId current() noexcept { return detail::t_current; }

// Pins `id` as the current causal context for this scope.  Cheap enough to
// sit on the datagram delivery hot path: two thread-local word moves.
class Scope {
 public:
  explicit Scope(TraceId id) noexcept : prev_(detail::t_current) {
    detail::t_current = id;
  }
  ~Scope() { detail::t_current = prev_; }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  TraceId prev_;
};

// --- WAL-replay suppression -------------------------------------------------

// While alive, emit() is a no-op and next_id() returns 0 on this thread.
// Crash recovery wraps snapshot-restore + WAL replay in one of these so
// replayed commands do not re-mint the spans they emitted pre-crash.
inline bool suppressed() noexcept { return detail::t_suppressed; }

class ReplayGuard {
 public:
  ReplayGuard() noexcept : prev_(detail::t_suppressed) {
    detail::t_suppressed = true;
  }
  ~ReplayGuard() { detail::t_suppressed = prev_; }
  ReplayGuard(const ReplayGuard&) = delete;
  ReplayGuard& operator=(const ReplayGuard&) = delete;

 private:
  bool prev_;
};

// --- Sim-time stamping ------------------------------------------------------

// The simulator publishes its clock here (per thread, so concurrent sweep
// replicas do not fight) right before dispatching each event; harness entry
// points that run outside a dispatch publish explicitly.
inline void set_sim_now(std::int64_t now_us) noexcept {
  detail::t_sim_us = now_us;
}
inline std::int64_t sim_now() noexcept { return detail::t_sim_us; }

// --- Emission ---------------------------------------------------------------

inline void emit(Ev type, Phase phase, TraceId id, std::uint16_t host,
                 std::uint64_t arg0 = 0, std::uint32_t arg1 = 0) noexcept {
  if (!enabled() || detail::t_suppressed) return;
  detail::emit_slow(type, phase, id, host, arg0, arg1);
}

inline void begin(Ev type, TraceId id, std::uint16_t host,
                  std::uint64_t arg0 = 0, std::uint32_t arg1 = 0) noexcept {
  emit(type, Phase::kBegin, id, host, arg0, arg1);
}
inline void end(Ev type, TraceId id, std::uint16_t host,
                std::uint64_t arg0 = 0, std::uint32_t arg1 = 0) noexcept {
  emit(type, Phase::kEnd, id, host, arg0, arg1);
}
inline void instant(Ev type, TraceId id, std::uint16_t host,
                    std::uint64_t arg0 = 0, std::uint32_t arg1 = 0) noexcept {
  emit(type, Phase::kInstant, id, host, arg0, arg1);
}

// RAII span: begin now, end (with the final arg0) at scope exit.  The
// enabled check happens once, in the constructor, so a span opened while
// tracing is on closes even if tracing is flipped off mid-scope.
class SpanScope {
 public:
  SpanScope(Ev type, TraceId id, std::uint16_t host,
            std::uint64_t arg0 = 0) noexcept
      : type_(type), id_(id), host_(host) {
    live_ = enabled() && !detail::t_suppressed;
    if (live_) detail::emit_slow(type_, Phase::kBegin, id_, host_, arg0, 0);
  }
  ~SpanScope() {
    if (live_) detail::emit_slow(type_, Phase::kEnd, id_, host_, end_arg0_, 0);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  void set_end_arg0(std::uint64_t v) noexcept { end_arg0_ = v; }

 private:
  Ev type_;
  TraceId id_;
  std::uint16_t host_;
  std::uint64_t end_arg0_ = 0;
  bool live_ = false;
};

// --- Profiling histograms ---------------------------------------------------

// Lock-free log2-bucketed nanosecond histogram.  Relaxed atomics: counts
// from concurrent sweep replicas merge without coordination, and exact
// cross-thread ordering is irrelevant for a histogram.
class ProfileHistogram {
 public:
  static constexpr std::size_t kBuckets = 40;  // 2^0 .. 2^39 ns (~9 min)

  void record(std::uint64_t ns) noexcept;
  void reset() noexcept;

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
    std::uint64_t buckets[kBuckets] = {};
    double percentile_ns(double p) const noexcept;  // bucket upper bound
  };
  Snapshot snapshot() const noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> min_ns_{~0ULL};
  std::atomic<std::uint64_t> max_ns_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
};

// Interns `name` in the global profile registry (stable address for the
// process lifetime; call once per site via a local static reference).
ProfileHistogram& profile(const char* name);

// Snapshot of every registered histogram with count > 0, sorted by name:
// {"<name>": {count, total_ns, mean_ns, min_ns, max_ns, p50_ns, p99_ns}}.
json::Value profiles_to_json();
void reset_profiles();

// Scoped wall-clock timer; records into `h` when profiling is enabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(ProfileHistogram& h) noexcept {
    if (profiling_enabled()) {
      h_ = &h;
      t0_ = std::chrono::steady_clock::now();
    }
  }
  ~ScopedTimer() {
    if (h_ != nullptr)
      h_->record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0_)
              .count()));
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  ProfileHistogram* h_ = nullptr;
  std::chrono::steady_clock::time_point t0_;
};

// One-liner for hot-path call sites: interns once, times the scope.
#define ZMAIL_PROF_SCOPE(name)                                     \
  static ::zmail::trace::ProfileHistogram& zmail_prof_hist_ =      \
      ::zmail::trace::profile(name);                               \
  ::zmail::trace::ScopedTimer zmail_prof_timer_(zmail_prof_hist_)

// --- Log mirroring ----------------------------------------------------------

// Routes util::log records (at or above their component threshold) into
// the flight-recorder timeline so logs and spans interleave.  Off by
// default; idempotent.  Capacity bounds the retained mirror (oldest out).
void install_log_mirror(std::size_t capacity = 4096);
void remove_log_mirror();

#else  // ZMAIL_TRACE_DISABLED: every call site compiles to nothing.

inline bool enabled() noexcept { return false; }
inline void set_enabled(bool) {}
inline bool profiling_enabled() noexcept { return false; }
inline void set_profiling_enabled(bool) {}
inline void set_ring_capacity(std::size_t) {}
inline void clear() {}
inline std::uint64_t dropped() { return 0; }
inline std::vector<TraceEvent> collect() { return {}; }
inline std::vector<LogRecord> collect_logs() { return {}; }
inline TraceId next_id() noexcept { return 0; }
inline TraceId current() noexcept { return 0; }
class Scope {
 public:
  explicit Scope(TraceId) noexcept {}
};
inline bool suppressed() noexcept { return false; }
class ReplayGuard {};
inline void set_sim_now(std::int64_t) noexcept {}
inline std::int64_t sim_now() noexcept { return 0; }
inline void emit(Ev, Phase, TraceId, std::uint16_t, std::uint64_t = 0,
                 std::uint32_t = 0) noexcept {}
inline void begin(Ev, TraceId, std::uint16_t, std::uint64_t = 0,
                  std::uint32_t = 0) noexcept {}
inline void end(Ev, TraceId, std::uint16_t, std::uint64_t = 0,
                std::uint32_t = 0) noexcept {}
inline void instant(Ev, TraceId, std::uint16_t, std::uint64_t = 0,
                    std::uint32_t = 0) noexcept {}
class SpanScope {
 public:
  SpanScope(Ev, TraceId, std::uint16_t, std::uint64_t = 0) noexcept {}
  void set_end_arg0(std::uint64_t) noexcept {}
};
class ProfileHistogram {
 public:
  void record(std::uint64_t) noexcept {}
  void reset() noexcept {}
};
inline ProfileHistogram& profile(const char*) {
  static ProfileHistogram h;
  return h;
}
inline json::Value profiles_to_json() { return json::Value::object(); }
inline void reset_profiles() {}
class ScopedTimer {
 public:
  explicit ScopedTimer(ProfileHistogram&) noexcept {}
};
#define ZMAIL_PROF_SCOPE(name) \
  do {                         \
  } while (0)
inline void install_log_mirror(std::size_t = 4096) {}
inline void remove_log_mirror() {}

#endif  // ZMAIL_TRACE_DISABLED

}  // namespace zmail::trace
