# Empty dependencies file for core_mailing_list_test.
# This may be replaced when dependencies are built.
