#include "ap/trace_format.hpp"

#include <cinttypes>
#include <cstdio>
#include <map>

namespace zmail::ap {

std::string format_entry(const Scheduler& sched, const TraceEntry& entry) {
  char buf[160];
  if (entry.msg_from != kNoProcess) {
    std::snprintf(buf, sizeof buf, "%6" PRIu64 "  %-10s %-24s <- %s",
                  entry.step, sched.process(entry.process).name().c_str(),
                  entry.action.c_str(),
                  sched.process(entry.msg_from).name().c_str());
  } else {
    std::snprintf(buf, sizeof buf, "%6" PRIu64 "  %-10s %-24s", entry.step,
                  sched.process(entry.process).name().c_str(),
                  entry.action.c_str());
  }
  return buf;
}

std::string format_trace(const Scheduler& sched, std::size_t max_lines) {
  const auto& trace = sched.trace();
  std::size_t start = 0;
  std::string out;
  if (max_lines > 0 && trace.size() > max_lines) {
    start = trace.size() - max_lines;
    out += "  ... (" + std::to_string(start) + " earlier steps elided)\n";
  }
  for (std::size_t i = start; i < trace.size(); ++i) {
    out += format_entry(sched, trace[i]);
    out += '\n';
  }
  return out;
}

std::string format_action_counts(const Scheduler& sched) {
  // (process name, action name) -> count, ordered for stable output.
  std::map<std::pair<std::string, std::string>, std::uint64_t> counts;
  for (const auto& e : sched.trace())
    ++counts[{sched.process(e.process).name(), e.action}];
  std::string out;
  char buf[128];
  for (const auto& [key, count] : counts) {
    std::snprintf(buf, sizeof buf, "  %-10s %-24s %8llu\n",
                  key.first.c_str(), key.second.c_str(),
                  static_cast<unsigned long long>(count));
    out += buf;
  }
  return out;
}

}  // namespace zmail::ap
