# Empty dependencies file for incremental_deployment.
# This may be replaced when dependencies are built.
