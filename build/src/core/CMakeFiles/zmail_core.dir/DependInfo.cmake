
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ap_spec.cpp" "src/core/CMakeFiles/zmail_core.dir/ap_spec.cpp.o" "gcc" "src/core/CMakeFiles/zmail_core.dir/ap_spec.cpp.o.d"
  "/root/repo/src/core/audit.cpp" "src/core/CMakeFiles/zmail_core.dir/audit.cpp.o" "gcc" "src/core/CMakeFiles/zmail_core.dir/audit.cpp.o.d"
  "/root/repo/src/core/bank.cpp" "src/core/CMakeFiles/zmail_core.dir/bank.cpp.o" "gcc" "src/core/CMakeFiles/zmail_core.dir/bank.cpp.o.d"
  "/root/repo/src/core/federated_system.cpp" "src/core/CMakeFiles/zmail_core.dir/federated_system.cpp.o" "gcc" "src/core/CMakeFiles/zmail_core.dir/federated_system.cpp.o.d"
  "/root/repo/src/core/federation.cpp" "src/core/CMakeFiles/zmail_core.dir/federation.cpp.o" "gcc" "src/core/CMakeFiles/zmail_core.dir/federation.cpp.o.d"
  "/root/repo/src/core/isp.cpp" "src/core/CMakeFiles/zmail_core.dir/isp.cpp.o" "gcc" "src/core/CMakeFiles/zmail_core.dir/isp.cpp.o.d"
  "/root/repo/src/core/mailing_list.cpp" "src/core/CMakeFiles/zmail_core.dir/mailing_list.cpp.o" "gcc" "src/core/CMakeFiles/zmail_core.dir/mailing_list.cpp.o.d"
  "/root/repo/src/core/messages.cpp" "src/core/CMakeFiles/zmail_core.dir/messages.cpp.o" "gcc" "src/core/CMakeFiles/zmail_core.dir/messages.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/zmail_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/zmail_core.dir/scenario.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/core/CMakeFiles/zmail_core.dir/system.cpp.o" "gcc" "src/core/CMakeFiles/zmail_core.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/zmail_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zmail_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ap/CMakeFiles/zmail_ap.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zmail_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/zmail_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
