#include "store/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "store/crc32c.hpp"

namespace zmail::store {

namespace {

constexpr std::uint8_t kMagic[4] = {'Z', 'S', 'N', 'P'};
constexpr std::size_t kHeaderSize = 36;
constexpr std::size_t kSectionOverhead = 16;  // id + len + crc
constexpr std::uint64_t kMaxSection = 1ull << 32;

std::uint32_t read_u32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

std::uint64_t read_u64(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint64_t>(read_u32(p)) << 32) | read_u32(p + 4);
}

}  // namespace

crypto::Bytes encode_snapshot(const SnapshotData& snap) {
  crypto::Bytes out;
  out.reserve(kHeaderSize);
  out.insert(out.end(), kMagic, kMagic + 4);
  crypto::put_u32(out, snap.meta.version);
  crypto::put_u32(out, snap.meta.features);
  crypto::put_u64(out, snap.meta.next_lsn);
  crypto::put_u64(out, snap.meta.sim_time_us);
  crypto::put_u32(out, static_cast<std::uint32_t>(snap.sections.size()));
  crypto::put_u32(out, crc32c(out.data(), out.size()));
  for (const SnapshotSection& s : snap.sections) {
    crypto::put_u32(out, s.id);
    crypto::put_u64(out, s.payload.size());
    out.insert(out.end(), s.payload.begin(), s.payload.end());
    crypto::put_u32(out, crc32c(s.payload.data(), s.payload.size()));
  }
  return out;
}

StoreStatus decode_snapshot(const crypto::Bytes& file, SnapshotData& out) {
  out = SnapshotData{};
  out.sections.clear();
  if (file.size() < kHeaderSize)
    return file.empty() ? StoreStatus::kNotFound : StoreStatus::kTruncated;
  if (std::memcmp(file.data(), kMagic, 4) != 0) return StoreStatus::kBadMagic;
  if (read_u32(file.data() + 32) != crc32c(file.data(), 32))
    return StoreStatus::kCorrupt;
  out.meta.version = read_u32(file.data() + 4);
  if (out.meta.version != kSnapshotVersion) return StoreStatus::kUnknownVersion;
  out.meta.features = read_u32(file.data() + 8);
  if ((out.meta.features & ~kSupportedFeatures) != 0)
    return StoreStatus::kUnknownFeature;
  out.meta.next_lsn = read_u64(file.data() + 12);
  out.meta.sim_time_us = read_u64(file.data() + 20);
  const std::uint32_t count = read_u32(file.data() + 28);

  std::size_t pos = kHeaderSize;
  out.sections.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (file.size() - pos < kSectionOverhead) return StoreStatus::kTruncated;
    SnapshotSection s;
    s.id = read_u32(file.data() + pos);
    const std::uint64_t len = read_u64(file.data() + pos + 4);
    if (len > kMaxSection) return StoreStatus::kCorrupt;
    if (file.size() - pos - kSectionOverhead < len) return StoreStatus::kTruncated;
    const std::uint8_t* payload = file.data() + pos + 12;
    if (read_u32(payload + len) != crc32c(payload, len))
      return StoreStatus::kCorrupt;
    s.payload.assign(payload, payload + len);
    out.sections.push_back(std::move(s));
    pos += kSectionOverhead + len;
  }
  return StoreStatus::kOk;
}

StoreStatus write_snapshot_file(const std::string& path,
                                const SnapshotData& snap, bool fsync_data,
                                std::string* error) {
  const crypto::Bytes encoded = encode_snapshot(snap);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error) *error = "snapshot: open " + tmp + ": " + std::strerror(errno);
    return StoreStatus::kIoError;
  }
  std::size_t off = 0;
  while (off < encoded.size()) {
    const ssize_t n = ::write(fd, encoded.data() + off, encoded.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error) *error = "snapshot: write: " + std::string(std::strerror(errno));
      ::close(fd);
      ::unlink(tmp.c_str());
      return StoreStatus::kIoError;
    }
    off += static_cast<std::size_t>(n);
  }
  if (fsync_data) ::fsync(fd);
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = "snapshot: rename: " + std::string(std::strerror(errno));
    ::unlink(tmp.c_str());
    return StoreStatus::kIoError;
  }
  return StoreStatus::kOk;
}

StoreStatus read_snapshot_file(const std::string& path, SnapshotData& out) {
  crypto::Bytes file;
  const StoreStatus rs = read_file(path, file);
  if (rs != StoreStatus::kOk) return rs;
  return decode_snapshot(file, out);
}

}  // namespace zmail::store
