#include "core/scenario.hpp"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace zmail::core {

namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

// "key=value" -> value for matching key.
std::optional<std::string> kv(const std::vector<std::string>& args,
                              const std::string& key) {
  const std::string prefix = key + "=";
  for (const auto& a : args)
    if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
  return std::nullopt;
}

std::optional<std::int64_t> to_int(const std::string& s) {
  if (s.empty()) return std::nullopt;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(s, &pos);
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

std::optional<std::pair<std::size_t, std::size_t>> parse_user_ref(
    const std::string& token) {
  if (token.find('@') != std::string::npos) {
    const auto addr = net::parse_address(token);
    if (!addr) return std::nullopt;
    std::size_t isp = 0, user = 0;
    if (!net::decode_user_address(*addr, isp, user)) return std::nullopt;
    return std::make_pair(isp, user);
  }
  const std::size_t dot = token.find('.');
  if (dot == std::string::npos) return std::nullopt;
  const auto isp = to_int(token.substr(0, dot));
  const auto user = to_int(token.substr(dot + 1));
  if (!isp || !user || *isp < 0 || *user < 0) return std::nullopt;
  return std::make_pair(static_cast<std::size_t>(*isp),
                        static_cast<std::size_t>(*user));
}

std::optional<sim::Duration> parse_duration(const std::string& token) {
  if (token.size() < 2) return std::nullopt;
  const char suffix = token.back();
  const auto value = to_int(token.substr(0, token.size() - 1));
  if (!value || *value < 0) return std::nullopt;
  switch (suffix) {
    case 's': return *value * sim::kSecond;
    case 'm': return *value * sim::kMinute;
    case 'h': return *value * sim::kHour;
    case 'd': return *value * sim::kDay;
    default: return std::nullopt;
  }
}

std::optional<Scenario> Scenario::parse(const std::string& text,
                                        ScenarioError* error) {
  auto fail = [&](std::size_t line, const std::string& msg) {
    if (error) *error = ScenarioError{line, msg};
    return std::nullopt;
  };

  Scenario s;
  bool world_seen = false;
  std::istringstream in(text);
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::vector<std::string> toks = split_ws(raw);
    if (toks.empty()) continue;

    if (toks[0] == "world") {
      if (world_seen) return fail(lineno, "duplicate world line");
      world_seen = true;
      const std::vector<std::string> args(toks.begin() + 1, toks.end());
      if (const auto v = kv(args, "isps"); v && to_int(*v))
        s.params_.n_isps = static_cast<std::size_t>(*to_int(*v));
      if (const auto v = kv(args, "users"); v && to_int(*v))
        s.params_.users_per_isp = static_cast<std::size_t>(*to_int(*v));
      if (const auto v = kv(args, "balance"); v && to_int(*v))
        s.params_.initial_user_balance = *to_int(*v);
      if (const auto v = kv(args, "limit"); v && to_int(*v))
        s.params_.default_daily_limit = *to_int(*v);
      if (const auto v = kv(args, "seed"); v && to_int(*v))
        s.seed_ = static_cast<std::uint64_t>(*to_int(*v));
      // Hardened-transport switches: crash/outage scenarios lose in-flight
      // datagrams, so scripts using `crash` want both of these on.
      if (const auto v = kv(args, "retry"); v && to_int(*v))
        s.params_.retry.enabled = *to_int(*v) != 0;
      if (const auto v = kv(args, "reliable"); v && to_int(*v))
        s.params_.reliable_email_transport = *to_int(*v) != 0;
      if (const auto v = kv(args, "compliant")) {
        if (v->size() != s.params_.n_isps)
          return fail(lineno, "compliant mask length != isps");
        s.params_.compliant.clear();
        for (char c : *v) {
          if (c != '0' && c != '1')
            return fail(lineno, "compliant mask must be 0s and 1s");
          s.params_.compliant.push_back(c == '1');
        }
      }
      continue;
    }

    if (!world_seen) return fail(lineno, "script must start with `world`");
    static const std::vector<std::string> kVerbs = {
        "send", "spam", "buy",      "sell",   "run",   "day",
        "flip", "snapshot", "expect", "print", "policy", "crash"};
    bool known = false;
    for (const auto& v : kVerbs) known = known || v == toks[0];
    if (!known) return fail(lineno, "unknown command: " + toks[0]);

    Command cmd;
    cmd.line = lineno;
    cmd.verb = toks[0];
    cmd.args.assign(toks.begin() + 1, toks.end());
    s.commands_.push_back(std::move(cmd));
  }
  if (!world_seen) return fail(0, "empty script (no world line)");
  return s;
}

std::string ScenarioResult::output_text() const {
  std::string out;
  for (const auto& line : output) {
    out += line;
    out += '\n';
  }
  return out;
}

ScenarioRunner::ScenarioRunner(const Scenario& scenario, ShardOptions shards)
    : scenario_(scenario),
      world_(std::make_unique<ShardedSystem>(scenario.params_, scenario.seed_,
                                             shards)) {}

ScenarioResult ScenarioRunner::run() {
  ScenarioResult result;
  auto fail = [&](std::size_t line, const std::string& msg) {
    result.failures.push_back(ScenarioError{line, msg});
  };
  auto addr = [](std::size_t isp, std::size_t user) {
    return net::make_user_address(isp, user);
  };
  auto in_range = [&](const std::pair<std::size_t, std::size_t>& who) {
    return who.first < world_->params().n_isps &&
           who.second < world_->params().users_per_isp;
  };

  for (const auto& cmd : scenario_.commands_) {
    ++result.commands_executed;
    const auto& a = cmd.args;

    if (cmd.verb == "send") {
      if (a.size() < 2) {
        fail(cmd.line, "send needs <from> <to>");
        continue;
      }
      const auto from = parse_user_ref(a[0]);
      const auto to = parse_user_ref(a[1]);
      if (!from || !to || !in_range(*from) || !in_range(*to)) {
        fail(cmd.line, "send: bad or out-of-range user ref");
        continue;
      }
      std::string subject = "scenario";
      for (std::size_t i = 3; i < a.size(); ++i) subject += " " + a[i];
      if (a.size() > 2 && a[2] == "subject" && a.size() > 3)
        subject = a[3];
      world_->send_email(addr(from->first, from->second),
                          addr(to->first, to->second), subject, "body");
    } else if (cmd.verb == "spam") {
      const auto from = a.empty() ? std::nullopt : parse_user_ref(a[0]);
      const auto count = kv(a, "count");
      if (!from || !count || !in_range(*from)) {
        fail(cmd.line, "spam needs an in-range <from> and count=N");
        continue;
      }
      const auto n = to_int(*count);
      Rng rng(cmd.line * 7919 + 13);
      for (std::int64_t k = 0; n && k < *n; ++k) {
        const auto ti = rng.next_below(world_->params().n_isps);
        const auto tu = rng.next_below(world_->params().users_per_isp);
        world_->send_email(addr(from->first, from->second), addr(ti, tu),
                            "zxoffer", "zxbuy zxnow",
                            net::MailClass::kSpam);
      }
    } else if (cmd.verb == "buy" || cmd.verb == "sell") {
      if (a.size() != 2) {
        fail(cmd.line, cmd.verb + " needs <user> <n>");
        continue;
      }
      const auto who = parse_user_ref(a[0]);
      const auto n = to_int(a[1]);
      if (!who || !n || !in_range(*who)) {
        fail(cmd.line, cmd.verb + ": bad arguments");
        continue;
      }
      const auto address = addr(who->first, who->second);
      const bool ok = cmd.verb == "buy" ? world_->buy_epennies(address, *n)
                                        : world_->sell_epennies(address, *n);
      if (!ok) fail(cmd.line, cmd.verb + " refused");
    } else if (cmd.verb == "run") {
      const auto d = a.empty() ? std::nullopt : parse_duration(a[0]);
      if (!d) {
        fail(cmd.line, "run needs a duration like 10m");
        continue;
      }
      world_->run_for(*d);
    } else if (cmd.verb == "day") {
      for (std::size_t i = 0; i < world_->params().n_isps; ++i)
        if (world_->is_compliant(i)) world_->isp(i).end_of_day();
    } else if (cmd.verb == "flip") {
      const auto i = a.empty() ? std::nullopt : to_int(a[0]);
      if (!i || *i < 0 ||
          static_cast<std::size_t>(*i) >= world_->params().n_isps) {
        fail(cmd.line, "flip needs a valid isp index");
        continue;
      }
      world_->make_compliant(static_cast<std::size_t>(*i));
    } else if (cmd.verb == "snapshot") {
      world_->start_snapshot();
    } else if (cmd.verb == "crash") {
      // crash <isp-index|bank> <duration>: wipe the host's in-memory state
      // and recover it from snapshot + WAL replay after <duration>.  Only
      // meaningful with the durable store (there is nothing to recover from
      // otherwise), so it refuses on store-off worlds.
      if (!world_->params().store.enabled) {
        fail(cmd.line, "crash requires the durable store (--store-dir)");
        continue;
      }
      const auto d = a.size() == 2 ? parse_duration(a[1]) : std::nullopt;
      std::optional<std::size_t> host;
      if (a.size() == 2 && a[0] == "bank") {
        host = world_->bank_index();
      } else if (a.size() == 2) {
        const auto i = to_int(a[0]);
        if (i && *i >= 0 &&
            static_cast<std::size_t>(*i) < world_->params().n_isps &&
            world_->is_compliant(static_cast<std::size_t>(*i)))
          host = static_cast<std::size_t>(*i);
      }
      if (!host || !d) {
        fail(cmd.line, "crash needs <compliant-isp|bank> <duration>");
        continue;
      }
      world_->crash_host(*host, *d);
    } else if (cmd.verb == "policy") {
      // policy <isp> <accept|segregate|discard|filter>: how this ISP's
      // users treat mail from non-compliant senders (per-user overrides).
      const auto i = a.size() == 2 ? to_int(a[0]) : std::nullopt;
      std::optional<NonCompliantPolicy> policy;
      if (a.size() == 2) {
        if (a[1] == "accept") policy = NonCompliantPolicy::kAccept;
        else if (a[1] == "segregate") policy = NonCompliantPolicy::kSegregate;
        else if (a[1] == "discard") policy = NonCompliantPolicy::kDiscard;
        else if (a[1] == "filter") policy = NonCompliantPolicy::kFilter;
      }
      if (!i || *i < 0 ||
          static_cast<std::size_t>(*i) >= world_->params().n_isps ||
          !world_->is_compliant(static_cast<std::size_t>(*i)) || !policy) {
        fail(cmd.line, "policy needs a compliant isp and a policy name");
        continue;
      }
      Isp& isp = world_->isp(static_cast<std::size_t>(*i));
      for (std::size_t u = 0; u < world_->params().users_per_isp; ++u)
        isp.users().set_policy_override(UserId(u), *policy);
    } else if (cmd.verb == "expect") {
      if (a.empty()) {
        fail(cmd.line, "empty expect");
        continue;
      }
      if (a[0] == "balance" && a.size() == 3) {
        const auto who = parse_user_ref(a[1]);
        const auto want = to_int(a[2]);
        if (!who || !want || !in_range(*who) ||
            !world_->is_compliant(who->first)) {
          fail(cmd.line, "expect balance <user> <n>");
          continue;
        }
        const EPenny got =
            world_->isp(who->first).user(who->second).balance;
        if (got != *want) {
          fail(cmd.line, "expect balance " + a[1] + ": got " +
                             std::to_string(got) + ", want " + a[2]);
        }
      } else if (a[0] == "violations" && a.size() == 2) {
        const auto want = to_int(a[1]);
        const auto got = static_cast<std::int64_t>(
            world_->bank().last_violations().size());
        if (!want || got != *want)
          fail(cmd.line,
               "expect violations: got " + std::to_string(got));
      } else if (a[0] == "conservation") {
        if (!world_->conservation_holds())
          fail(cmd.line, "conservation violated");
      } else {
        fail(cmd.line, "unknown expectation: " + a[0]);
      }
    } else if (cmd.verb == "print") {
      if (!a.empty() && a[0] == "balances") {
        for (std::size_t i = 0; i < world_->params().n_isps; ++i) {
          if (!world_->is_compliant(i)) continue;
          for (std::size_t u = 0; u < world_->params().users_per_isp; ++u) {
            char line[96];
            std::snprintf(line, sizeof line, "%s balance=%lld",
                          net::make_user_address(i, u).str().c_str(),
                          static_cast<long long>(
                              world_->isp(i).user(u).balance));
            result.output.emplace_back(line);
          }
        }
      } else {
        char line[64];
        std::snprintf(line, sizeof line, "t=%s",
                      sim::format_time(world_->now()).c_str());
        result.output.emplace_back(line);
      }
    }
  }
  return result;
}

FederatedScenarioRunner::FederatedScenarioRunner(const Scenario& scenario,
                                                 std::size_t n_banks)
    : scenario_(scenario),
      world_(std::make_unique<FederatedZmailSystem>(scenario.params_, n_banks,
                                                    scenario.seed_)) {}

ScenarioResult FederatedScenarioRunner::run() {
  ScenarioResult result;
  auto fail = [&](std::size_t line, const std::string& msg) {
    result.failures.push_back(ScenarioError{line, msg});
  };
  auto addr = [](std::size_t isp, std::size_t user) {
    return net::make_user_address(isp, user);
  };
  auto in_range = [&](const std::pair<std::size_t, std::size_t>& who) {
    return who.first < world_->params().n_isps &&
           who.second < world_->params().users_per_isp;
  };

  for (const auto& cmd : scenario_.commands_) {
    ++result.commands_executed;
    const auto& a = cmd.args;

    if (cmd.verb == "send") {
      if (a.size() < 2) {
        fail(cmd.line, "send needs <from> <to>");
        continue;
      }
      const auto from = parse_user_ref(a[0]);
      const auto to = parse_user_ref(a[1]);
      if (!from || !to || !in_range(*from) || !in_range(*to)) {
        fail(cmd.line, "send: bad or out-of-range user ref");
        continue;
      }
      std::string subject = "scenario";
      if (a.size() > 2 && a[2] == "subject" && a.size() > 3) subject = a[3];
      world_->send_email(addr(from->first, from->second),
                         addr(to->first, to->second), subject, "body");
    } else if (cmd.verb == "buy" || cmd.verb == "sell") {
      if (a.size() != 2) {
        fail(cmd.line, cmd.verb + " needs <user> <n>");
        continue;
      }
      const auto who = parse_user_ref(a[0]);
      const auto n = to_int(a[1]);
      if (!who || !n || !in_range(*who)) {
        fail(cmd.line, cmd.verb + ": bad arguments");
        continue;
      }
      const auto address = addr(who->first, who->second);
      const TradeOutcome out = cmd.verb == "buy"
                                   ? world_->buy_epennies(address, *n)
                                   : world_->sell_epennies(address, *n);
      if (!out.ok()) fail(cmd.line, cmd.verb + " refused");
    } else if (cmd.verb == "run") {
      const auto d = a.empty() ? std::nullopt : parse_duration(a[0]);
      if (!d) {
        fail(cmd.line, "run needs a duration like 10m");
        continue;
      }
      world_->run_for(*d);
    } else if (cmd.verb == "day") {
      for (std::size_t i = 0; i < world_->params().n_isps; ++i)
        world_->isp(i).end_of_day();
    } else if (cmd.verb == "snapshot") {
      world_->start_snapshot();
    } else if (cmd.verb == "crash") {
      // crash bank<k> <duration>: only the banks are durable in a
      // federated world; ISPs keep in-memory state.
      if (!world_->params().store.enabled) {
        fail(cmd.line, "crash requires the durable store (--store-dir)");
        continue;
      }
      const auto d = a.size() == 2 ? parse_duration(a[1]) : std::nullopt;
      std::optional<std::size_t> bank;
      if (a.size() == 2 && a[0].rfind("bank", 0) == 0) {
        const std::string idx = a[0].substr(4);
        const auto b = idx.empty() ? std::optional<std::int64_t>(0)
                                   : to_int(idx);
        if (b && *b >= 0 &&
            static_cast<std::size_t>(*b) < world_->bank_count())
          bank = static_cast<std::size_t>(*b);
      }
      if (!bank || !d) {
        fail(cmd.line, "crash needs bank<k> <duration> in a federated world");
        continue;
      }
      world_->crash_host(world_->bank_host(*bank), *d);
    } else if (cmd.verb == "expect") {
      if (a.empty()) {
        fail(cmd.line, "empty expect");
        continue;
      }
      if (a[0] == "balance" && a.size() == 3) {
        const auto who = parse_user_ref(a[1]);
        const auto want = to_int(a[2]);
        if (!who || !want || !in_range(*who)) {
          fail(cmd.line, "expect balance <user> <n>");
          continue;
        }
        const EPenny got = world_->isp(who->first).user(who->second).balance;
        if (got != *want)
          fail(cmd.line, "expect balance " + a[1] + ": got " +
                             std::to_string(got) + ", want " + a[2]);
      } else if (a[0] == "violations" && a.size() == 2) {
        const auto want = to_int(a[1]);
        const auto got = static_cast<std::int64_t>(
            world_->federation().last_violations().size());
        if (!want || got != *want)
          fail(cmd.line, "expect violations: got " + std::to_string(got));
      } else if (a[0] == "conservation") {
        if (!world_->conservation_holds())
          fail(cmd.line, "conservation violated");
      } else {
        fail(cmd.line, "unknown expectation: " + a[0]);
      }
    } else if (cmd.verb == "print") {
      if (!a.empty() && a[0] == "balances") {
        for (std::size_t i = 0; i < world_->params().n_isps; ++i) {
          for (std::size_t u = 0; u < world_->params().users_per_isp; ++u) {
            char line[96];
            std::snprintf(line, sizeof line, "%s balance=%lld",
                          net::make_user_address(i, u).str().c_str(),
                          static_cast<long long>(
                              world_->isp(i).user(u).balance));
            result.output.emplace_back(line);
          }
        }
      } else {
        char line[64];
        std::snprintf(line, sizeof line, "t=%s",
                      sim::format_time(world_->now()).c_str());
        result.output.emplace_back(line);
      }
    } else {
      // spam / flip / policy model the mixed compliant/legacy deployment,
      // which the all-compliant federated facade does not have.
      fail(cmd.line,
           "verb not supported in a federated world: " + cmd.verb);
    }
  }
  return result;
}

}  // namespace zmail::core
