#include "sim/sharded.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace zmail::sim {

ShardedSimulator::ShardedSimulator(ShardedOptions opts, util::ThreadPool& pool)
    : opts_(opts), pool_(pool) {
  ZMAIL_ASSERT_MSG(opts_.shards > 0, "need at least one shard");
  ZMAIL_ASSERT_MSG(opts_.lookahead > 0,
                   "conservative lookahead must be strictly positive");
  sims_.assign(opts_.shards, nullptr);
  boxes_.reserve(opts_.shards * opts_.shards);
  for (std::size_t i = 0; i < opts_.shards * opts_.shards; ++i)
    boxes_.push_back(std::make_unique<SpscMailbox>());
}

void ShardedSimulator::attach(std::size_t s, Simulator* simulator) {
  ZMAIL_ASSERT(s < sims_.size());
  ZMAIL_ASSERT(simulator != nullptr);
  ZMAIL_ASSERT_MSG(simulator->now() == 0,
                   "shards must share a common time origin");
  sims_[s] = simulator;
}

void ShardedSimulator::post(std::size_t src, std::size_t dst, SimTime at,
                            InlineEvent fn) {
  ZMAIL_ASSERT(src < sims_.size() && dst < sims_.size());
  if (src == dst) {
    // Same shard: no barrier needed, schedule directly (this is the path a
    // misrouted "remote" host would take; keep it correct, not fast).
    sims_[src]->schedule_at(at, std::move(fn));
    return;
  }
  box(src, dst).push(at, static_cast<std::uint32_t>(src), std::move(fn));
}

std::uint64_t ShardedSimulator::drain_mailboxes(SimTime window_end) {
  const std::size_t n = sims_.size();
  std::uint64_t total = 0;
  for (std::size_t dst = 0; dst < n; ++dst) {
    drain_buf_.clear();
    for (std::size_t src = 0; src < n; ++src) {
      if (src == dst) continue;
      box(src, dst).drain(drain_buf_);
    }
    if (drain_buf_.empty()) continue;
    total += drain_buf_.size();
    if (opts_.deterministic) {
      // Canonical merge order: (at, src_shard, seq).  Per-mailbox messages
      // arrive already seq-ordered, so this sort pins only the cross-source
      // interleaving — the one thing the partition would otherwise decide.
      std::sort(drain_buf_.begin(), drain_buf_.end(),
                [](const ShardMsg& a, const ShardMsg& b) noexcept {
                  if (a.at != b.at) return a.at < b.at;
                  if (a.src_shard != b.src_shard)
                    return a.src_shard < b.src_shard;
                  return a.seq < b.seq;
                });
    }
    Simulator& sim = *sims_[dst];
    for (auto& m : drain_buf_) {
      SimTime at = m.at;
      if (at <= window_end) {
        // Lookahead violation upstream (a poster ignored the min-latency
        // bound).  Clamp just past the barrier so causality holds, and
        // count it — deterministic runs assert this stays zero.
        ++stats_.horizon_clamps;
        at = window_end + 1;
      }
      sim.schedule_at(at, std::move(m.fn));
    }
  }
  return total;
}

std::uint64_t ShardedSimulator::run(SimTime until) {
  const std::size_t n = sims_.size();
  for (auto* s : sims_)
    ZMAIL_ASSERT_MSG(s != nullptr, "every shard needs an attached Simulator");
  const Duration lookahead = opts_.lookahead;
  std::uint64_t executed = 0;
  std::vector<std::uint64_t> before(n, 0);

  // Messages posted outside a window (harness verbs like send_email run
  // between engine runs and route straight into the mailboxes) are not
  // visible to the shard queues yet, and the window scan below only looks
  // at those queues.  Drain first so pre-run traffic both schedules and is
  // counted in the earliest-event scan.  All shards are parked at one
  // barrier time here; an event at exactly that time is still schedulable
  // (the clocks sit at it, nothing beyond has run), so the clamp horizon is
  // one tick before it.
  SimTime parked = 0;
  for (auto* s : sims_) parked = std::max(parked, s->now());
  stats_.cross_shard_msgs += drain_mailboxes(parked - 1);

  for (;;) {
    // Earliest pending event across the world.  In deterministic mode the
    // window start is that time rounded down to a lookahead boundary — a
    // pure function of world state, so every shard/thread count computes
    // the same barrier schedule (idle gaps jump instead of ticking).
    SimTime earliest = INT64_MAX;
    for (auto* s : sims_) earliest = std::min(earliest, s->next_event_at());
    if (earliest == INT64_MAX || earliest > until) break;
    const SimTime ws =
        opts_.deterministic ? earliest - (earliest % lookahead) : earliest;
    const SimTime we = std::min(ws + lookahead - 1, until);
    ++stats_.windows;

    // Pump every shard through [ws, we] in parallel.  No shard can affect
    // another inside the window: anything it emits is timestamped at least
    // one lookahead later, past the barrier.
    pool_.parallel_for(n, [&](std::size_t i) {
      before[i] = sims_[i]->events_executed();
      sims_[i]->run(we);  // advances the clock to `we` even when idle
    });
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t d = sims_[i]->events_executed() - before[i];
      executed += d;
      stats_.max_window_events = std::max(stats_.max_window_events, d);
    }

    stats_.cross_shard_msgs += drain_mailboxes(we);
    // All shards are parked at `we` and the mailboxes are empty: a globally
    // consistent cut.  Invariant audits (zero-sum conservation across
    // shards) run here, mid-flight, not just at the end of the run.
    if (barrier_hook_) barrier_hook_(we);
  }

  // Bring idle shards up to the horizon so a finite run leaves one global
  // clock, matching Simulator::run's drained-early behaviour.
  if (until != INT64_MAX)
    for (auto* s : sims_)
      if (s->now() < until) s->run(until);

  std::uint64_t spills = 0;
  for (const auto& b : boxes_) spills += b->overflowed();
  stats_.mailbox_overflows = spills;
  stats_.events_executed += executed;
  return executed;
}

}  // namespace zmail::sim
