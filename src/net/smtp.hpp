// SMTP (RFC 821) command/reply state machine.
//
// The paper layers Zmail on unmodified SMTP, so the reproduction includes a
// real (if minimal) SMTP implementation: a server session that parses HELO /
// MAIL FROM / RCPT TO / DATA / RSET / NOOP / QUIT with correct reply codes
// and dot-stuffing, and a client that drives a complete transfer.  ISP hosts
// in the simulation exchange mail through these sessions, byte-for-byte.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/email.hpp"

namespace zmail::net {

// Three-digit SMTP reply plus text.
struct SmtpReply {
  int code = 0;
  std::string text;

  std::string line() const {
    return std::to_string(code) + " " + text + "\r\n";
  }
  bool positive() const noexcept { return code >= 200 && code < 400; }
};

// Server-side session.  Feed it command lines; it returns replies and emits
// completed messages through the callback.
class SmtpServerSession {
 public:
  using DeliverFn = std::function<void(const EmailMessage&)>;
  // Optional address validator for VRFY and RCPT (nullptr accepts all).
  using VerifyFn = std::function<bool(const EmailAddress&)>;

  explicit SmtpServerSession(std::string server_domain, DeliverFn deliver);

  // Installs a local-mailbox validator; RCPT TO for this server's own
  // domain is then checked (550 on unknown users) and VRFY answers from
  // it.
  void set_verifier(VerifyFn verify) { verify_ = std::move(verify); }

  // Maximum accepted message size in bytes (0 = unlimited); enforced
  // against the MAIL FROM SIZE= parameter and the accumulated DATA.
  void set_max_message_size(std::size_t bytes) { max_size_ = bytes; }

  // The 220 greeting the server sends on connect.
  SmtpReply greeting() const;

  // Processes one CRLF-terminated line (without the CRLF).  During DATA,
  // lines are message content until the lone "." terminator; the returned
  // reply is empty (code 0) for swallowed data lines.
  SmtpReply consume_line(const std::string& line);

  bool quit_received() const noexcept { return quit_; }
  std::uint64_t messages_accepted() const noexcept { return accepted_; }

 private:
  enum class State { kConnected, kGreeted, kMailFrom, kRcptTo, kData };

  SmtpReply handle_command(const std::string& line);
  void reset_transaction();

  std::string domain_;
  DeliverFn deliver_;
  VerifyFn verify_;
  std::size_t max_size_ = 0;
  std::size_t data_bytes_ = 0;
  State state_ = State::kConnected;
  bool quit_ = false;
  std::uint64_t accepted_ = 0;

  EmailAddress envelope_from_;
  std::vector<EmailAddress> envelope_to_;
  std::vector<std::string> data_lines_;
};

// Client-side: renders a message as the exact line sequence a client would
// send (HELO..QUIT), with dot-stuffing applied to the body.
std::vector<std::string> smtp_client_script(const EmailMessage& msg,
                                            const std::string& client_domain);

// Runs a full in-memory SMTP dialogue: plays the client script against the
// server session, checking reply codes.  Returns the transcript size in
// bytes (both directions) and whether the transfer was accepted.
struct SmtpTransferResult {
  bool accepted = false;
  std::size_t bytes_client_to_server = 0;
  std::size_t bytes_server_to_client = 0;
  int first_error_code = 0;
};

SmtpTransferResult smtp_transfer(const EmailMessage& msg,
                                 const std::string& client_domain,
                                 SmtpServerSession& server);

// Parses a completed RFC-822 text back into headers/body (used by tests).
EmailMessage parse_rfc822(const EmailAddress& envelope_from,
                          const std::vector<EmailAddress>& envelope_to,
                          const std::vector<std::string>& lines);

}  // namespace zmail::net
