#include "ap/scheduler.hpp"

#include "util/assert.hpp"

namespace zmail::ap {

Scheduler::Scheduler(Policy policy, std::uint64_t seed)
    : policy_(policy), rng_(seed) {}

ProcessId Scheduler::add_process(Process& p, std::string name) {
  ZMAIL_ASSERT_MSG(p.scheduler_ == nullptr,
                   "process already registered with a scheduler");
  const ProcessId id = processes_.size();
  p.scheduler_ = this;
  p.id_ = id;
  p.name_ = std::move(name);
  processes_.push_back(&p);
  for (std::size_t a = 0; a < p.actions_.size(); ++a)
    action_refs_.push_back(ActionRef{id, a});
  return id;
}

Channel& Scheduler::channel(ProcessId from, ProcessId to) {
  return channels_[{from, to}];
}

const Channel* Scheduler::find_channel(ProcessId from, ProcessId to) const {
  const auto it = channels_.find({from, to});
  return it == channels_.end() ? nullptr : &it->second;
}

void Scheduler::do_send(ProcessId from, ProcessId to, std::string type,
                        crypto::Bytes payload) {
  ZMAIL_ASSERT(to < processes_.size());
  Message m;
  m.type = std::move(type);
  m.payload = std::move(payload);
  m.from = from;
  m.to = to;
  channels_[{from, to}].push(std::move(m));
  ++messages_sent_;
}

bool Scheduler::all_channels_empty() const noexcept {
  for (const auto& [key, ch] : channels_)
    if (!ch.empty()) return false;
  return true;
}

bool Scheduler::inbound_empty(ProcessId to) const noexcept {
  for (const auto& [key, ch] : channels_)
    if (key.second == to && !ch.empty()) return false;
  return true;
}

bool Scheduler::outbound_empty(ProcessId from) const noexcept {
  for (const auto& [key, ch] : channels_)
    if (key.first == from && !ch.empty()) return false;
  return true;
}

std::size_t Scheduler::total_messages_in_flight() const noexcept {
  std::size_t n = 0;
  for (const auto& [key, ch] : channels_) n += ch.size();
  return n;
}

bool Scheduler::guard_enabled(const ActionRef& ref,
                              ProcessId* matched_sender) const {
  const Process& p = *processes_[ref.pid];
  const Process::Action& a = p.actions_[ref.action_index];
  switch (a.kind) {
    case Process::GuardKind::kLocal:
      return a.local_guard();
    case Process::GuardKind::kReceive:
      // Enabled iff the head of some channel into this process has the
      // registered message type.  Deterministic order (by sender id) keeps
      // round-robin runs reproducible; the random policy shuffles enabled
      // action choice anyway.
      for (const auto& [key, ch] : channels_) {
        if (key.second != ref.pid || ch.empty()) continue;
        if (ch.front().type == a.msg_type) {
          if (matched_sender) *matched_sender = key.first;
          return true;
        }
      }
      return false;
    case Process::GuardKind::kTimeout:
      return a.timeout_guard(GlobalView(*this));
  }
  return false;
}

void Scheduler::execute(const ActionRef& ref, ProcessId matched_sender) {
  Process& p = *processes_[ref.pid];
  Process::Action& a = p.actions_[ref.action_index];
  TraceEntry entry;
  entry.step = steps_;
  entry.process = ref.pid;
  entry.action = a.name;

  if (a.kind == Process::GuardKind::kReceive) {
    Channel& ch = channels_.at({matched_sender, ref.pid});
    const Message m = ch.pop();
    entry.msg_type = m.type;
    entry.msg_from = m.from;
    if (trace_enabled_) trace_.push_back(std::move(entry));
    ++steps_;
    a.receive_body(m);
  } else {
    if (trace_enabled_) trace_.push_back(std::move(entry));
    ++steps_;
    a.body();
  }
}

bool Scheduler::step() {
  const std::size_t n = action_refs_.size();
  if (n == 0) return false;

  if (policy_ == Policy::kRandom) {
    // Collect all enabled actions, then pick one uniformly.
    std::vector<std::pair<std::size_t, ProcessId>> enabled;
    for (std::size_t i = 0; i < n; ++i) {
      ProcessId sender = kNoProcess;
      if (guard_enabled(action_refs_[i], &sender))
        enabled.emplace_back(i, sender);
    }
    if (enabled.empty()) return false;
    const auto& [idx, sender] =
        enabled[rng_.next_below(enabled.size())];
    execute(action_refs_[idx], sender);
    return true;
  }

  // Round-robin: scan from the cursor for the next enabled action.
  for (std::size_t scanned = 0; scanned < n; ++scanned) {
    const std::size_t i = (cursor_ + scanned) % n;
    ProcessId sender = kNoProcess;
    if (guard_enabled(action_refs_[i], &sender)) {
      cursor_ = (i + 1) % n;
      execute(action_refs_[i], sender);
      return true;
    }
  }
  return false;
}

std::uint64_t Scheduler::run(std::uint64_t max_steps) {
  std::uint64_t taken = 0;
  while (taken < max_steps && step()) ++taken;
  return taken;
}

}  // namespace zmail::ap
