// Blacklist/Whitelist are header-only; this TU exists to give the library a
// home for future list-refresh logic and to anchor the archive member.
#include "baselines/blacklist.hpp"
