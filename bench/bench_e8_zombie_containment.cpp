// E8 — Zombie containment (paper Section 5).
//
// Claim: a per-user daily limit "blocks further outgoing mail (for that
// day), and the user is sent a warning message ... In addition to limiting
// the user's liability for the e-penny cost of virus-sent email, this
// provides a new mechanism for detecting, limiting, and disinfecting
// 'zombie' PCs once they become active."
//
// Regenerates:
//   E8.a  limit sweep: daily virus output, victim liability, and peak
//         infection vs the limit setting
//   E8.b  detection: every active zombie is warned the day it activates
//   E8.c  infectivity sweep at a fixed limit: containment survives more
//         aggressive viruses
#include "bench_common.hpp"
#include "core/system.hpp"
#include "util/table.hpp"
#include "workload/virus.hpp"

using namespace zmail;

namespace {

core::ZmailParams world(std::int64_t limit) {
  core::ZmailParams p;
  p.n_isps = 4;
  p.users_per_isp = 50;
  p.initial_user_balance = 100'000;  // liability is bounded by limit, not funds
  p.default_daily_limit = limit;
  p.record_inboxes = false;
  return p;
}

void e8a_limit_sweep() {
  Table t({"daily limit", "virus mail accepted (10 days)",
           "blocked at the limit", "peak infected",
           "victim liability (e-pennies)"});
  std::int64_t drained_tight = 0, drained_loose = 0;
  std::size_t peak_tight = 0, peak_loose = 0;
  for (std::int64_t limit : {10, 30, 100, 1'000, 100'000}) {
    core::ZmailSystem sys(world(limit), 81);
    workload::OutbreakParams op;
    op.initial_infected = 3;
    op.virus_sends_per_day = 400;
    op.infect_prob = 0.03;
    op.patch_prob_after_warning = 0.9;
    op.days = 10;
    workload::ZombieOutbreak outbreak(sys, op, Rng(81));
    const auto days = outbreak.run();
    std::uint64_t sent = 0, blocked = 0;
    for (const auto& d : days) {
      sent += d.virus_sent;
      blocked += d.virus_blocked;
    }
    t.add_row({Table::num(limit), Table::num(sent), Table::num(blocked),
               Table::num(std::uint64_t{outbreak.peak_infected()}),
               Table::num(days.back().epennies_drained)});
    if (limit == 30) {
      drained_tight = days.back().epennies_drained;
      peak_tight = outbreak.peak_infected();
    }
    if (limit == 100'000) {
      drained_loose = days.back().epennies_drained;
      peak_loose = outbreak.peak_infected();
    }
  }
  t.print("E8.a  outbreak outcomes vs the per-user daily limit");

  bench::check(drained_tight * 10 < drained_loose,
               "a tight limit cuts victim liability by >10x");
  bench::check(peak_tight <= peak_loose,
               "a tight limit also slows the infection itself");
}

void e8b_detection() {
  core::ZmailSystem sys(world(30), 82);
  workload::OutbreakParams op;
  op.initial_infected = 5;
  op.virus_sends_per_day = 400;  // every zombie trips the limit same-day
  op.infect_prob = 0.0;          // isolate detection from spread
  op.patch_prob_after_warning = 0.0;
  op.days = 1;
  workload::ZombieOutbreak outbreak(sys, op, Rng(82));
  const auto days = outbreak.run();

  Table t({"zombies active", "warnings issued day 0"});
  t.add_row({"5", Table::num(days[0].warnings)});
  t.print("E8.b  same-day zombie detection via limit warnings");
  bench::check(days[0].warnings == 5,
               "every active zombie is flagged the day it activates");
}

void e8c_infectivity_sweep() {
  Table t({"infection prob/message", "peak infected (limit=30)",
           "peak infected (no limit)"});
  bool contained = true;
  for (double prob : {0.01, 0.03, 0.08}) {
    auto run = [&](std::int64_t limit) {
      core::ZmailSystem sys(world(limit), 83);
      workload::OutbreakParams op;
      op.initial_infected = 3;
      op.virus_sends_per_day = 400;
      op.infect_prob = prob;
      op.patch_prob_after_warning = 0.9;
      op.days = 10;
      workload::ZombieOutbreak outbreak(sys, op, Rng(83));
      outbreak.run();
      return outbreak.peak_infected();
    };
    const std::size_t tight = run(30);
    const std::size_t loose = run(100'000);
    t.add_row({Table::num(prob, 2), Table::num(std::uint64_t{tight}),
               Table::num(std::uint64_t{loose})});
    if (tight > loose) contained = false;
  }
  t.print("E8.c  containment vs virus infectivity");
  bench::check(contained,
               "the limited world never does worse than the unlimited one");
}

void e8d_quarantine() {
  // Quarantine extension: repeat offenders are suspended outright, so a
  // user who never disinfects stops costing anything after two warnings.
  auto run = [](std::int64_t quarantine_after) {
    core::ZmailParams p = world(30);
    p.quarantine_after_warnings = quarantine_after;
    core::ZmailSystem sys(p, 84);
    workload::OutbreakParams op;
    op.initial_infected = 5;
    op.virus_sends_per_day = 400;
    op.infect_prob = 0.0;
    op.patch_prob_after_warning = 0.0;  // users ignore every warning
    op.days = 10;
    workload::ZombieOutbreak outbreak(sys, op, Rng(84));
    return outbreak.run().back().epennies_drained;
  };
  const std::int64_t warnings_only = run(0);
  const std::int64_t with_quarantine = run(2);

  Table t({"policy", "e-pennies drained by 5 persistent zombies, 10 days"});
  t.add_row({"daily warnings only", Table::num(warnings_only)});
  t.add_row({"quarantine after 2 warnings", Table::num(with_quarantine)});
  t.print("E8.d  quarantine caps the never-disinfected worst case");
  bench::check(with_quarantine <= warnings_only * 2 / 10 + 300,
               "quarantine bounds persistent zombies at ~2 days of limit");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("e8_zombie_containment", argc, argv);
  std::printf("=== E8: zombie containment ===\n");
  e8a_limit_sweep();
  e8b_detection();
  e8c_infectivity_sweep();
  e8d_quarantine();
  return harness.finish();
}
