// HealthProbe layer: declarative SLO/anomaly rules evaluated over recorded
// telemetry windows.
//
// A ProbeRule names one series (by "<scope>.<name>" key), an aggregator
// over a sliding window of its most recent points, a comparator against a
// threshold, and fire/clear hysteresis in consecutive evaluations.  Rules
// are evaluated retrospectively over the full recorded series at export
// time — a pure function of the (deterministic) series data, so the same
// probe fires and clears at the same sim-times on any shard or thread
// count.  Each transition is logged through the "probe" component (which
// the flight recorder mirrors into trace kLog events when tracing is on),
// and the summary ProbeReport is what auditors and CI assert on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/series.hpp"
#include "util/json.hpp"

namespace zmail::telemetry {

enum class Agg : std::uint8_t {
  kLast,         // newest point in the window
  kMean,         // arithmetic mean over the window
  kMax,
  kMin,
  kSum,
  kSlopePerSec,  // (last - first) / elapsed seconds across the window
};

enum class Cmp : std::uint8_t { kGt, kGe, kLt, kLe };

const char* agg_name(Agg a) noexcept;
const char* cmp_name(Cmp c) noexcept;

struct ProbeRule {
  std::string name;    // "wal_backlog_growth", "conservation_drift", ...
  std::string series;  // target key, e.g. "store.bank.wal_backlog_records"
  Agg agg = Agg::kLast;
  Cmp cmp = Cmp::kGt;
  double threshold = 0.0;
  std::size_t window = 5;     // points per evaluation (>= 1)
  std::size_t fire_for = 2;   // consecutive breaches before firing
  std::size_t clear_for = 2;  // consecutive OKs before clearing
};

struct ProbeTransition {
  std::int64_t t_us = 0;
  bool fired = false;  // true: OK -> FIRING, false: FIRING -> OK
  double value = 0.0;  // aggregate that crossed (or recrossed) the line
};

struct ProbeStatus {
  ProbeRule rule;
  bool evaluated = false;  // the target series existed and had points
  bool firing = false;     // state after the last point
  std::uint64_t evaluations = 0;
  std::uint64_t breaches = 0;
  double last_value = 0.0;
  std::vector<ProbeTransition> transitions;

  std::uint64_t times_fired() const noexcept {
    std::uint64_t n = 0;
    for (const auto& t : transitions) n += t.fired ? 1 : 0;
    return n;
  }
};

struct ProbeReport {
  std::vector<ProbeStatus> probes;

  // Healthy = none of the evaluated probes is currently firing.  Rules
  // whose series never materialized (a facade without that signal, e.g.
  // no latency histograms on federated worlds) count as "no data", not
  // failure — evaluated_count() exposes them for stricter auditors.
  bool ok() const noexcept {
    for (const auto& p : probes)
      if (p.firing) return false;
    return true;
  }
  std::size_t firing_count() const noexcept {
    std::size_t n = 0;
    for (const auto& p : probes) n += p.firing ? 1 : 0;
    return n;
  }
  std::size_t evaluated_count() const noexcept {
    std::size_t n = 0;
    for (const auto& p : probes) n += p.evaluated ? 1 : 0;
    return n;
  }
};

class ProbeEngine {
 public:
  void add_rule(ProbeRule rule) { rules_.push_back(std::move(rule)); }
  const std::vector<ProbeRule>& rules() const noexcept { return rules_; }

  // Evaluates every rule over the recorded series (see file comment).
  // `log_transitions` emits one "probe" log line per fire/clear — pass
  // false for re-evaluations that would duplicate the record.
  ProbeReport evaluate(const std::vector<Series>& series,
                       bool log_transitions = true) const;

 private:
  std::vector<ProbeRule> rules_;
};

// Evaluates one rule against one series (exposed for unit tests).
ProbeStatus evaluate_rule(const ProbeRule& rule, const Series& s);

// The stock rule set the scenario runner and zmail_top use: WAL backlog
// growth per durable party, conservation-gap drift, settlement/delivery
// latency p99, and (engine scope) shard event-backlog imbalance.  Rules
// whose series never registered simply report evaluated == false.
std::vector<ProbeRule> default_rules();

json::Value to_json(const ProbeReport& report);

}  // namespace zmail::telemetry
