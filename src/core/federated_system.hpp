// FederatedZmailSystem — the timed, end-to-end rendition of the Section 5
// collaborating-banks extension.
//
// Like ZmailSystem, but the central bank is replaced by a BankFederation
// whose k banks run on separate network hosts: each ISP talks (buy/sell/
// snapshot) only to its home bank over the latency-modelled network, and
// the banks' column exchange is accounted as real inter-host traffic.
// All ISPs are compliant in this facade — the mixed-deployment machinery
// lives in ZmailSystem; this one isolates the federation topology.
//
// Hardened mode (params.store.enabled || params.retry.enabled) upgrades the
// federation from the synchronous loopback inter-bank plane to sealed
// datagrams between bank hosts, gives every bank its own WAL + checkpoint
// pair (party "bank<b>" under params.store.dir), and arms the fault-
// recovery poll.  With a net::FaultPlan attached, any bank can be crashed
// mid-round and rebuilds from snapshot + WAL replay; unacked inter-bank
// wires retransmit with RetryPolicy backoff until the round closes.  The
// default (store and retry both off) schedules no extra events and stays
// bit-identical to the pre-hardening facade.
#pragma once

#include <memory>
#include <vector>

#include "core/federation.hpp"
#include "core/isp.hpp"
#include "core/system.hpp"
#include "net/faults.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "store/checkpoint.hpp"

namespace zmail::core {

// Protocol outcome of a facade-initiated bank trade.  Converts to bool so
// `if (sys.buy_epennies(...))` call sites keep compiling, while retry and
// refund paths can tell a malformed address from an economic refusal.
enum class TradeResult : std::uint8_t {
  kAccepted = 0,    // local books updated (bank settlement may still be
                    // in flight behind the avail pool)
  kBadAddress = 1,  // address didn't decode to a live compliant user
  kRefused = 2,     // insufficient account / avail pool (refunded: no
                    // money moved)
};

struct TradeOutcome {
  TradeResult result = TradeResult::kAccepted;
  bool ok() const noexcept { return result == TradeResult::kAccepted; }
  constexpr explicit operator bool() const noexcept {
    return result == TradeResult::kAccepted;
  }
};

class FederatedZmailSystem {
 public:
  FederatedZmailSystem(ZmailParams params, std::size_t n_banks,
                       std::uint64_t seed = 42);

  SendOutcome send_email(const net::EmailAddress& from,
                         const net::EmailAddress& to, std::string subject,
                         std::string body);

  TradeOutcome buy_epennies(const net::EmailAddress& user, EPenny n);
  TradeOutcome sell_epennies(const net::EmailAddress& user, EPenny n);
  void enable_bank_trading(sim::Duration poll = 5 * sim::kMinute);
  void start_snapshot();
  void enable_periodic_snapshots(sim::Duration period);
  // Telemetry: one registry for the whole federation — per-ISP econ/core
  // series (same names as ZmailSystem's), per-bank clearing positions and
  // WAL backlogs, federation-wide supply/round/violation series.  Read-only
  // sampling, off by default; see src/telemetry.
  void enable_telemetry(const telemetry::TelemetryConfig& cfg);
  telemetry::TelemetryRegistry* telemetry() noexcept {
    return telemetry_.get();
  }
  const telemetry::TelemetryRegistry* telemetry() const noexcept {
    return telemetry_.get();
  }
  void run_for(sim::Duration d);
  sim::SimTime now() const { return sim_.now(); }

  const ZmailParams& params() const noexcept { return params_; }
  std::size_t bank_count() const noexcept { return n_banks_; }
  Isp& isp(IspId i) { return *isps_.at(i.index()); }
  const Isp& isp(IspId i) const { return *isps_.at(i.index()); }
  BankFederation& federation() noexcept { return *fed_; }
  const BankFederation& federation() const noexcept { return *fed_; }
  net::Network& network() noexcept { return net_; }
  const net::Network& network() const noexcept { return net_; }
  sim::Simulator& simulator() noexcept { return sim_; }
  const sim::Simulator& simulator() const noexcept { return sim_; }

  // Network host id of bank b (banks live after the ISPs).
  net::HostId bank_host(std::size_t bank_index) const {
    return params_.n_isps + bank_index;
  }

  // Network bytes that arrived at bank hosts (ISP->bank protocol traffic).
  std::uint64_t bank_host_bytes() const;

  IspMetrics total_isp_metrics() const;

  EPenny total_epennies() const;
  Money total_real_money() const;
  bool conservation_holds() const;

  // --- Faults & the durable store -----------------------------------------
  // Attaches a fault plan to the network.  With the store enabled, every
  // planned HostOutage of a bank host becomes a real crash: at the
  // window's end the bank's in-memory shard is wiped and rebuilt from its
  // snapshot + WAL tail.
  void attach_faults(net::FaultInjector* injector);
  // Crashes bank host `host` for `down_for` (requires store.enabled): the
  // network isolates it, and at restart the bank rebuilds from disk.
  void crash_host(std::size_t host, sim::Duration down_for);
  void recover_host(std::size_t host);
  void checkpoint_host(std::size_t host);
  void checkpoint_all();
  store::Checkpointer* host_store(std::size_t host) noexcept {
    const std::size_t b = host - params_.n_isps;
    return host >= params_.n_isps && b < stores_.size() ? stores_[b].get()
                                                        : nullptr;
  }
  std::uint64_t state_recoveries() const noexcept { return state_recoveries_; }
  using StoreTotals = ZmailSystem::StoreTotals;
  StoreTotals store_totals() const;

 private:
  void on_isp_datagram(std::size_t isp_index, const net::Datagram& d);
  void on_bank_datagram(std::size_t bank_index, const net::Datagram& d);
  void pump_isp(std::size_t i);
  void open_store(std::size_t bank);
  void rebuild_from_store(std::size_t bank);
  void maybe_checkpoint(std::size_t bank);
  void poll_fault_recovery();
  bool bank_down(std::size_t bank) const;
  void send_requests(
      std::vector<std::pair<std::size_t, crypto::Bytes>> requests,
      sim::SimTime deadline);

  ZmailParams params_;
  std::size_t n_banks_;
  Rng rng_;
  std::uint64_t seed_;
  sim::Simulator sim_;
  net::Network net_;
  std::unique_ptr<BankFederation> fed_;
  std::vector<std::unique_ptr<Isp>> isps_;
  EPenny in_flight_paid_ = 0;
  std::unique_ptr<telemetry::TelemetryRegistry> telemetry_;

  bool hardened_ = false;
  std::vector<std::unique_ptr<store::Checkpointer>> stores_;  // per bank
  std::vector<std::uint64_t> checkpointed_seq_;               // per bank
  net::FaultInjector* faults_ = nullptr;
  std::unique_ptr<net::FaultInjector> crash_faults_;
  std::uint64_t state_recoveries_ = 0;
  sim::SimTime snapshot_deadline_ = 0;
};

}  // namespace zmail::core
