#include "core/mailing_list.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace zmail::core {

MailingList::MailingList(ZmailSystem& system, net::EmailAddress distributor,
                         std::string name, std::uint64_t prune_after,
                         ListMode mode)
    : system_(system),
      distributor_(std::move(distributor)),
      name_(std::move(name)),
      prune_after_(prune_after),
      mode_(mode) {
  ZMAIL_ASSERT(prune_after_ >= 1);
  ZMAIL_ASSERT_MSG(
      net::decode_user_address(distributor_, dist_isp_, dist_user_),
      "distributor must be a simulated user address");
  ZMAIL_ASSERT_MSG(system_.is_compliant(dist_isp_),
                   "distributor must live on a compliant ISP");

  // Watch the distributor's incoming acknowledgments.
  system_.isp(dist_isp_).set_ack_sink(
      [this](UserId user, const net::EmailMessage& ack) {
        if (user != UserId(dist_user_)) return;
        for (auto& sub : subscribers_) {
          if (sub.address == ack.from) {
            ++sub.acks_received;
            sub.consecutive_missed = 0;
            ++acks_credited_;
            return;
          }
        }
      });
}

void MailingList::subscribe(const net::EmailAddress& member) {
  for (auto& s : subscribers_) {
    if (s.address == member) {
      s.active = true;
      s.consecutive_missed = 0;
      return;
    }
  }
  subscribers_.push_back(SubscriberRecord{member, 0, 0, 0, true});
}

bool MailingList::unsubscribe(const net::EmailAddress& member) {
  for (auto& s : subscribers_) {
    if (s.address == member && s.active) {
      s.active = false;
      return true;
    }
  }
  return false;
}

std::size_t MailingList::post(const std::string& subject,
                              const std::string& body) {
  ++posts_;
  std::size_t sent = 0;
  for (auto& sub : subscribers_) {
    if (!sub.active) continue;
    net::EmailMessage msg =
        net::make_email(distributor_, sub.address, "[" + name_ + "] " + subject,
                        body, net::MailClass::kMailingList);
    msg.set_header("X-Zmail-Ack-To", distributor_.str());
    msg.set_header("List-Id", name_);
    const SendResult r = system_.send_email(std::move(msg));
    if (r == SendResult::kNoBalance || r == SendResult::kDailyLimit) continue;
    ++sub.posts_sent;
    ++sent;
    ++copies_sent_;
  }
  return sent;
}

std::size_t MailingList::reconcile_and_prune() {
  std::size_t pruned = 0;
  for (auto& sub : subscribers_) {
    if (!sub.active) continue;
    // A subscriber "missed" a post when posts_sent outpaces acks_received.
    const std::uint64_t missed =
        sub.posts_sent > sub.acks_received
            ? sub.posts_sent - sub.acks_received
            : 0;
    sub.consecutive_missed = missed;
    if (missed >= prune_after_) {
      sub.active = false;
      ++pruned;
    }
  }
  return pruned;
}

bool MailingList::is_subscribed(const net::EmailAddress& member) const {
  for (const auto& s : subscribers_)
    if (s.address == member && s.active) return true;
  return false;
}

bool MailingList::submit(const net::EmailAddress& from,
                         const std::string& subject, const std::string& body) {
  if (!is_subscribed(from)) return false;

  // The submission travels as a normal paid email to the distributor.
  net::EmailMessage msg = net::make_email(
      from, distributor_, "[" + name_ + "-submit] " + subject, body,
      net::MailClass::kMailingList);
  const SendResult r = system_.send_email(std::move(msg));
  if (r == SendResult::kNoBalance || r == SendResult::kDailyLimit)
    return false;

  if (mode_ == ListMode::kModerated) {
    pending_.push_back(PendingPost{next_post_id_++, from, subject, body});
    return true;
  }
  post(subject, body);
  return true;
}

bool MailingList::approve(std::uint64_t id) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->id == id) {
      const PendingPost p = *it;
      pending_.erase(it);
      post(p.subject, p.body);
      return true;
    }
  }
  return false;
}

bool MailingList::reject(std::uint64_t id) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->id == id) {
      pending_.erase(it);
      return true;
    }
  }
  return false;
}

std::size_t MailingList::active_subscribers() const {
  return static_cast<std::size_t>(
      std::count_if(subscribers_.begin(), subscribers_.end(),
                    [](const SubscriberRecord& s) { return s.active; }));
}

}  // namespace zmail::core
