file(REMOVE_RECURSE
  "CMakeFiles/core_messages_test.dir/core_messages_test.cpp.o"
  "CMakeFiles/core_messages_test.dir/core_messages_test.cpp.o.d"
  "core_messages_test"
  "core_messages_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_messages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
