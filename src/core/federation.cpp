#include "core/federation.hpp"

#include "util/assert.hpp"

namespace zmail::core {

BankFederation::BankFederation(const ZmailParams& params, std::size_t n_banks,
                               std::uint64_t seed)
    : params_(params), n_banks_(n_banks), rng_(seed ^ 0xFEDBULL) {
  ZMAIL_ASSERT(n_banks_ >= 1);
  keys_.reserve(n_banks_);
  for (std::size_t b = 0; b < n_banks_; ++b)
    keys_.push_back(crypto::generate_keypair(rng_));
  accounts_.assign(params_.n_isps, params_.initial_isp_bank_account);
  clearing_.assign(n_banks_, Money::zero());
  verify_.assign(params_.n_isps,
                 std::vector<EPenny>(params_.n_isps, 0));
  reported_.assign(params_.n_isps, false);
}

std::size_t BankFederation::home_bank(std::size_t isp) const {
  ZMAIL_ASSERT(isp < params_.n_isps);
  return isp % n_banks_;
}

const crypto::RsaKey& BankFederation::public_key_for(std::size_t isp) const {
  return keys_.at(home_bank(isp)).pub;
}

Money BankFederation::isp_account(std::size_t isp) const {
  return accounts_.at(isp);
}

void BankFederation::set_isp_account(std::size_t isp, Money v) {
  accounts_.at(isp) = v;
}

crypto::Bytes BankFederation::on_buy(std::size_t isp,
                                     const crypto::Bytes& wire) {
  const crypto::KeyPair& keys = keys_.at(home_bank(isp));
  const auto plain = unseal(keys.priv, wire);
  if (!plain) return {};
  const auto req = BuyRequest::deserialize(*plain);
  if (!req || req->buyvalue <= 0) return {};

  const Money cost = Money::from_epennies(req->buyvalue);
  BuyReply reply;
  reply.nonce = req->nonce;
  if (accounts_.at(isp) >= cost) {
    accounts_.at(isp) -= cost;
    metrics_.epennies_minted += req->buyvalue;
    reply.accepted = true;
  }
  return seal(keys.priv, reply.serialize(), rng_);
}

crypto::Bytes BankFederation::on_sell(std::size_t isp,
                                      const crypto::Bytes& wire) {
  const crypto::KeyPair& keys = keys_.at(home_bank(isp));
  const auto plain = unseal(keys.priv, wire);
  if (!plain) return {};
  const auto req = SellRequest::deserialize(*plain);
  if (!req || req->sellvalue <= 0) return {};
  accounts_.at(isp) += Money::from_epennies(req->sellvalue);
  metrics_.epennies_burned += req->sellvalue;
  return seal(keys.priv, SellReply{req->nonce}.serialize(), rng_);
}

std::vector<std::pair<std::size_t, crypto::Bytes>>
BankFederation::start_snapshot() {
  if (!canrequest_) return {};
  canrequest_ = false;
  outstanding_ = 0;
  reported_.assign(params_.n_isps, false);
  std::vector<std::pair<std::size_t, crypto::Bytes>> out;
  SnapshotRequest req{seq_};
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    if (!params_.is_compliant(i)) continue;
    ++outstanding_;
    ++metrics_.requests_sent;
    out.emplace_back(
        i, seal(keys_.at(home_bank(i)).priv, req.serialize(), rng_));
  }
  if (outstanding_ == 0) canrequest_ = true;
  return out;
}

void BankFederation::on_reply(std::size_t isp, const crypto::Bytes& wire) {
  if (!params_.is_compliant(isp)) return;
  const auto plain = unseal(keys_.at(home_bank(isp)).priv, wire);
  if (!plain) return;
  const auto report = CreditReport::deserialize(*plain);
  if (!report || report->credit.size() != params_.n_isps) return;
  if (canrequest_ || report->seq != seq_ || reported_.at(isp)) return;
  reported_.at(isp) = true;
  ++metrics_.reports_received;
  for (std::size_t i = 0; i < params_.n_isps; ++i)
    verify_[i][isp] = report->credit[i];
  ZMAIL_ASSERT(outstanding_ > 0);
  if (--outstanding_ == 0) verify_round();
}

void BankFederation::verify_round() {
  // Phase 1 — column exchange: each bank forwards the columns it gathered
  // to every other bank.  One message per (bank, bank) ordered pair, each
  // carrying that bank's members' columns.
  if (n_banks_ > 1) {
    std::vector<std::size_t> members(n_banks_, 0);
    for (std::size_t i = 0; i < params_.n_isps; ++i)
      if (params_.is_compliant(i)) ++members[home_bank(i)];
    for (std::size_t from = 0; from < n_banks_; ++from) {
      const std::uint64_t column_bytes =
          members[from] * (params_.n_isps * sizeof(EPenny) + 32);
      metrics_.interbank_messages += n_banks_ - 1;
      metrics_.interbank_bytes +=
          static_cast<std::uint64_t>(n_banks_ - 1) * column_bytes;
    }
  }

  // Phase 2 — partitioned verification and settlement: pair (i, j) is
  // checked by min(i, j)'s home bank.
  last_violations_.clear();
  // Net clearing movement per (payer bank, payee bank), netted per round.
  std::vector<std::vector<Money>> interbank(
      n_banks_, std::vector<Money>(n_banks_, Money::zero()));

  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    if (!params_.is_compliant(i)) continue;
    for (std::size_t j = i + 1; j < params_.n_isps; ++j) {
      if (!params_.is_compliant(j)) continue;
      const EPenny d = verify_[j][i] + verify_[i][j];
      if (d != 0) {
        last_violations_.push_back(CreditViolation{i, j, d});
        ++metrics_.violations_found;
        continue;
      }
      const EPenny net = verify_[j][i];  // flow i -> j
      if (net == 0) continue;
      const Money amount = Money::from_epennies(net > 0 ? net : -net);
      const std::size_t payer = net > 0 ? i : j;
      const std::size_t payee = net > 0 ? j : i;
      accounts_.at(payer) -= amount;
      accounts_.at(payee) += amount;
      const std::size_t payer_bank = home_bank(payer);
      const std::size_t payee_bank = home_bank(payee);
      if (payer_bank == payee_bank) {
        ++metrics_.settlements_intra_bank;
      } else {
        ++metrics_.settlements_cross_bank;
        interbank[payer_bank][payee_bank] += amount;
      }
    }
  }

  // Phase 3 — inter-bank clearing: the cross-bank settlements are netted
  // into at most one transfer per bank pair per round.
  for (std::size_t a = 0; a < n_banks_; ++a) {
    for (std::size_t b = a + 1; b < n_banks_; ++b) {
      const Money net = interbank[a][b] - interbank[b][a];
      if (net.is_zero()) continue;
      clearing_[a] -= net;
      clearing_[b] += net;
      ++metrics_.clearing_transfers;
    }
  }

  for (auto& row : verify_)
    for (auto& cell : row) cell = 0;
  seq_ += 1;
  canrequest_ = true;
  ++metrics_.rounds_completed;
}

}  // namespace zmail::core
