// Minimal from-scratch JSON (RFC 8259) value tree, writer, and validating
// parser — the serialization format of the obs/sweep layer.
//
// Design constraints:
//   - Integers are kept exact: 64-bit counters (IspMetrics et al.) must
//     round-trip without drifting through a double.
//   - Object keys preserve insertion order so emitted files diff cleanly
//     run-over-run.
//   - No external dependencies; the parser exists so tests and the CI smoke
//     step can validate what the writer (or a human) produced.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace zmail::json {

class Value {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kInt,     // std::int64_t
    kUint,    // std::uint64_t
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Value() noexcept : kind_(Kind::kNull) {}
  Value(bool b) noexcept : kind_(Kind::kBool), bool_(b) {}
  Value(int v) noexcept : kind_(Kind::kInt), int_(v) {}
  Value(long v) noexcept : kind_(Kind::kInt), int_(v) {}
  Value(long long v) noexcept : kind_(Kind::kInt), int_(v) {}
  Value(unsigned v) noexcept : kind_(Kind::kUint), uint_(v) {}
  Value(unsigned long v) noexcept : kind_(Kind::kUint), uint_(v) {}
  Value(unsigned long long v) noexcept : kind_(Kind::kUint), uint_(v) {}
  Value(double v) noexcept : kind_(Kind::kDouble), double_(v) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_number() const noexcept {
    return kind_ == Kind::kInt || kind_ == Kind::kUint ||
           kind_ == Kind::kDouble;
  }

  // Typed readers; each asserts the kind matches (as_double accepts any
  // numeric kind).
  bool as_bool() const;
  std::int64_t as_int64() const;
  std::uint64_t as_uint64() const;
  double as_double() const;
  const std::string& as_string() const;

  // --- Arrays ---------------------------------------------------------------
  // push_back on a null value turns it into an array first.
  void push_back(Value v);
  std::size_t size() const noexcept;  // array/object element count
  const Value& at(std::size_t i) const;

  // --- Objects --------------------------------------------------------------
  // operator[] on a null value turns it into an object first; the key is
  // created (as null) on first use.  Insertion order is preserved.
  Value& operator[](const std::string& key);
  // nullptr when absent.
  const Value* find(const std::string& key) const noexcept;
  const std::vector<std::pair<std::string, Value>>& items() const;

  // Serializes; indent <= 0 emits the compact single-line form.
  std::string dump(int indent = 2) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

// Parses a complete JSON document (trailing whitespace allowed, nothing
// else).  Returns nullopt and fills `error` with "offset N: message" on the
// first problem.  Numbers with a '.', exponent, or out-of-range magnitude
// parse as kDouble; otherwise kInt (negative) / kUint.
std::optional<Value> parse(const std::string& text,
                           std::string* error = nullptr);

// Convenience: dump(v) to a file; false (and `error`) on I/O failure.
bool write_file(const std::string& path, const Value& v,
                std::string* error = nullptr);

}  // namespace zmail::json
