// P1 — sharded engine scaling (one world, N shards, conservative windows).
//
// Drives the same fixed workload through core::ShardedSystem at 1, 2, 4,
// and 8 shards and reports wall time, events/second, window count, and
// cross-shard message volume.  Shards = 1 is the exact legacy
// single-threaded path, so its row is the baseline every other row is
// compared against.
//
// The *correctness* claims checked here are hardware-independent: the
// merged observable state is bit-identical at every shard count >= 2, no
// lookahead bound is ever violated (horizon_clamps == 0), and the
// barrier-point conservation audits stay green.  The *throughput* numbers
// are hardware-dependent by nature — a single-core runner shows the
// engine's window/mailbox overhead rather than any speedup — so speedup is
// reported, recorded in the JSON, and never asserted.
#include <thread>

#include "bench_common.hpp"
#include "core/obs.hpp"
#include "core/sharded_system.hpp"
#include "core/system.hpp"
#include "net/address.hpp"
#include "util/table.hpp"

using namespace zmail;

namespace {

struct RunResult {
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  std::uint64_t cross_shard_msgs = 0;
  std::uint64_t horizon_clamps = 0;
  bool audit_ok = true;
  std::string digest;  // kV1 snapshot dump: the bit-identity artifact
};

core::ZmailParams world_params(bool smoke) {
  core::ZmailParams p;
  p.n_isps = 16;
  p.users_per_isp = smoke ? 50 : 500;
  p.initial_user_balance = 10'000;
  p.default_daily_limit = 100'000;
  p.initial_avail = 20'000;
  p.minavail = 5'000;
  p.maxavail = 80'000;
  p.record_inboxes = false;
  return p;
}

// The verb stream is a pure function of the seed (no world-state feedback),
// so every shard count replays exactly the same workload.
RunResult run_world(std::size_t shards, bool smoke, std::uint64_t seed) {
  core::ShardOptions o;
  o.shards = shards;
  core::ShardedSystem w(world_params(smoke), seed, o);

  const std::size_t rounds = smoke ? 300 : 3'000;
  const std::size_t sends_per_round = 4;
  Rng rng(seed + 1);
  const std::size_t n = w.params().n_isps;
  const std::size_t u = w.params().users_per_isp;

  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < rounds; ++r) {
    for (std::size_t k = 0; k < sends_per_round; ++k) {
      const std::size_t src = rng.next_below(n);
      const std::size_t dst = (src + 1 + rng.next_below(n - 1)) % n;
      w.send_email(net::make_user_address(src, rng.next_below(u)),
                   net::make_user_address(dst, rng.next_below(u)), "p1",
                   "m" + std::to_string(r));
    }
    w.run_for(sim::kSecond);
  }
  w.run_for(sim::kHour);
  const auto end = std::chrono::steady_clock::now();

  RunResult res;
  res.wall_seconds = std::chrono::duration<double>(end - start).count();
  if (const sim::ShardedStats* st = w.engine_stats()) {
    res.events = st->events_executed;
    res.windows = st->windows;
    res.cross_shard_msgs = st->cross_shard_msgs;
  } else {
    res.events = w.shard(0).simulator().events_executed();
  }
  res.horizon_clamps = w.horizon_clamps();
  res.audit_ok = w.barrier_audit().ok();
  res.digest = obs::snapshot(w, obs::Schema::kV1).dump();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("p1_shard_scaling", argc, argv);
  const bool smoke = harness.options().smoke;
  const std::uint64_t seed = harness.options().seed;
  std::printf("=== P1: sharded engine scaling ===\n");

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("hardware threads: %u (speedup is hardware-dependent;"
              " correctness checks are not)\n", hw);

  const std::size_t shard_counts[] = {1, 2, 4, 8};
  std::vector<RunResult> results;
  for (std::size_t s : shard_counts) results.push_back(run_world(s, smoke, seed));
  const double base_wall = results.front().wall_seconds;

  Table t({"shards", "wall s", "events", "events/s", "windows",
           "x-shard msgs", "speedup"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    char wall[32], eps[32], speed[32];
    std::snprintf(wall, sizeof wall, "%.3f", r.wall_seconds);
    std::snprintf(eps, sizeof eps, "%.0f",
                  static_cast<double>(r.events) / r.wall_seconds);
    std::snprintf(speed, sizeof speed, "%.2fx", base_wall / r.wall_seconds);
    t.add_row({Table::num(shard_counts[i]), wall, Table::num(r.events),
               eps, Table::num(r.windows), Table::num(r.cross_shard_msgs),
               speed});
  }
  t.print("P1  one world, N shards, conservative lookahead windows");

  bench::check(results[1].digest == results[2].digest &&
                   results[2].digest == results[3].digest,
               "merged observable state bit-identical at 2, 4, and 8 shards");
  bool clamps_zero = true, audits_green = true, all_ran = true;
  for (const RunResult& r : results) {
    clamps_zero &= r.horizon_clamps == 0;
    audits_green &= r.audit_ok;
    all_ran &= r.events > 0;
  }
  bench::check(clamps_zero, "no lookahead-bound violations at any shard count");
  bench::check(audits_green, "barrier-point conservation audits stay green");
  bench::check(all_ran, "every configuration executed events");
  bench::check(results[3].cross_shard_msgs > results[1].cross_shard_msgs,
               "finer partitions move more traffic through the mailboxes");

  json::Value& m = harness.metrics();
  m = json::Value::object();
  m["hardware_threads"] = static_cast<std::uint64_t>(hw);
  json::Value rows = json::Value::array();
  for (std::size_t i = 0; i < results.size(); ++i) {
    json::Value row = json::Value::object();
    row["shards"] = static_cast<std::uint64_t>(shard_counts[i]);
    row["wall_seconds"] = results[i].wall_seconds;
    row["events"] = results[i].events;
    row["windows"] = results[i].windows;
    row["cross_shard_msgs"] = results[i].cross_shard_msgs;
    row["speedup_vs_1"] = base_wall / results[i].wall_seconds;
    rows.push_back(std::move(row));
  }
  m["runs"] = std::move(rows);
  return harness.finish();
}
