#include "econ/spammer.hpp"

#include <algorithm>
#include <cmath>

namespace zmail::econ {

SendingRegime smtp_regime() noexcept {
  // ~$100 per million messages: botnet/bulk-host rates circa the paper.
  return SendingRegime{"smtp", Money::from_micros(100), 1.0};
}

SendingRegime zmail_regime() noexcept {
  return SendingRegime{"zmail", Money::from_epennies(1), 1.0};
}

SendingRegime zmail_partial_regime(double compliant_share) noexcept {
  if (compliant_share < 0.0) compliant_share = 0.0;
  if (compliant_share > 1.0) compliant_share = 1.0;
  // Mail to the compliant share costs an e-penny; the rest rides free SMTP.
  const Money blended =
      Money::from_epennies(1) * compliant_share +
      Money::from_micros(100) * (1.0 - compliant_share);
  return SendingRegime{"zmail-partial", blended, 1.0};
}

SendingRegime zmail_priced_regime(Money price_per_message) noexcept {
  return SendingRegime{"zmail-priced", price_per_message, 1.0};
}

CampaignOutcome evaluate(const Campaign& c, const SendingRegime& r) noexcept {
  CampaignOutcome out;
  out.sending_cost =
      r.cost_per_message * static_cast<std::int64_t>(c.messages);
  const double delivered =
      static_cast<double>(c.messages) * r.delivery_rate;
  const double responses = delivered * c.response_rate;
  out.revenue = c.revenue_per_response * responses;
  out.profit = out.revenue - out.sending_cost - c.fixed_costs;
  const Money total_cost = out.sending_cost + c.fixed_costs;
  out.roi = total_cost.is_zero()
                ? 0.0
                : out.profit.dollars() / total_cost.dollars();
  return out;
}

double break_even_response_rate(const Campaign& c,
                                const SendingRegime& r) noexcept {
  const double delivered = static_cast<double>(c.messages) * r.delivery_rate;
  if (delivered <= 0.0 || c.revenue_per_response.is_zero()) return 0.0;
  const Money total_cost =
      r.cost_per_message * static_cast<std::int64_t>(c.messages) +
      c.fixed_costs;
  return total_cost.dollars() /
         (delivered * c.revenue_per_response.dollars());
}

double break_even_ratio(const Campaign& c) noexcept {
  const double smtp = break_even_response_rate(c, smtp_regime());
  const double zm = break_even_response_rate(c, zmail_regime());
  return smtp > 0.0 ? zm / smtp : 0.0;
}

std::uint64_t max_profitable_volume(const Campaign& c,
                                    const SendingRegime& r) noexcept {
  // Per-message margin: response_rate * revenue - cost.
  const double margin = r.delivery_rate * c.response_rate *
                            c.revenue_per_response.dollars() -
                        r.cost_per_message.dollars();
  if (margin <= 0.0) return 0;  // every message loses money
  // Margin is positive: volume is bounded only by the audience; report the
  // campaign's own size once fixed costs are recoverable.
  const double needed = c.fixed_costs.dollars() / margin;
  return static_cast<double>(c.messages) >= needed ? c.messages : 0;
}


double surviving_spam_share(const CampaignPopulation& pop,
                            Money price_per_message) noexcept {
  // A campaign survives iff response_rate * revenue > price, i.e.
  // ln(r) > ln(price / revenue).  With ln(r) ~ N(mu, sigma), the surviving
  // share is the Gaussian upper tail.
  if (price_per_message.micros() <= 0) return 1.0;
  const double threshold =
      std::log(price_per_message.dollars() / pop.revenue_per_response.dollars());
  const double z = (threshold - pop.log_response_mu) / pop.log_response_sigma;
  // Upper tail via the complementary error function.
  return 0.5 * std::erfc(z / std::sqrt(2.0));
}

Money price_for_spam_reduction(const CampaignPopulation& pop,
                               double target_share) noexcept {
  // Bisection over micro-dollar prices in [1 micro, $1].
  std::int64_t lo = 1, hi = Money::kMicrosPerDollar;
  if (surviving_spam_share(pop, Money::from_micros(hi)) > target_share)
    return Money::from_micros(hi);
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (surviving_spam_share(pop, Money::from_micros(mid)) <= target_share)
      hi = mid;
    else
      lo = mid + 1;
  }
  return Money::from_micros(lo);
}

}  // namespace zmail::econ

