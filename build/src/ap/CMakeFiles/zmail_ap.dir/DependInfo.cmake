
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ap/process.cpp" "src/ap/CMakeFiles/zmail_ap.dir/process.cpp.o" "gcc" "src/ap/CMakeFiles/zmail_ap.dir/process.cpp.o.d"
  "/root/repo/src/ap/scheduler.cpp" "src/ap/CMakeFiles/zmail_ap.dir/scheduler.cpp.o" "gcc" "src/ap/CMakeFiles/zmail_ap.dir/scheduler.cpp.o.d"
  "/root/repo/src/ap/trace_format.cpp" "src/ap/CMakeFiles/zmail_ap.dir/trace_format.cpp.o" "gcc" "src/ap/CMakeFiles/zmail_ap.dir/trace_format.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/zmail_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zmail_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
