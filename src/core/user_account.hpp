// Per-user state held by an ISP (the paper's account / balance / sent /
// limit arrays, folded into one record per user).
#pragma once

#include <cstdint>
#include <optional>

#include "core/config.hpp"
#include "util/money.hpp"

namespace zmail::core {

struct UserAccount {
  // Section 5: "a user in a compliant ISP may decide to segregate or
  // discard email from non-compliant ISPs, or require any email from a
  // non-compliant ISP to pass a spam filter."  When set, this overrides
  // the ISP-wide default for this user.
  std::optional<NonCompliantPolicy> policy_override;

  Money account;            // real-money balance with the ISP
  EPenny balance = 0;       // e-penny balance
  std::int64_t sent = 0;    // paid emails sent today
  std::int64_t limit = 0;   // max paid emails per day (zombie guard)

  // Zombie-guard bookkeeping (Section 5).
  bool blocked_today = false;   // hit the limit; outgoing mail blocked
  std::int64_t warnings = 0;    // "check for viruses" warnings sent
  bool quarantined = false;     // suspended after repeated warnings

  // Lifetime accounting, for the zero-sum experiment (E2).
  std::int64_t lifetime_sent = 0;
  std::int64_t lifetime_received_paid = 0;  // deliveries that paid an e-penny
  EPenny lifetime_epennies_bought = 0;
  EPenny lifetime_epennies_sold = 0;
};

}  // namespace zmail::core
