#include "util/money.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace zmail {

std::string Money::str() const {
  const bool neg = micros_ < 0;
  const std::int64_t abs = neg ? -micros_ : micros_;
  const std::int64_t whole = abs / kMicrosPerDollar;
  std::int64_t frac = abs % kMicrosPerDollar;
  char buf[64];
  if (frac == 0) {
    std::snprintf(buf, sizeof buf, "%s$%" PRId64, neg ? "-" : "", whole);
    return buf;
  }
  // Use as many decimals as needed (2, 4, or 6) to render exactly.
  int digits = 6;
  while (digits > 2 && frac % 10 == 0) {
    frac /= 10;
    --digits;
  }
  std::snprintf(buf, sizeof buf, "%s$%" PRId64 ".%0*" PRId64, neg ? "-" : "",
                whole, digits, frac);
  return buf;
}

}  // namespace zmail
