// Collaborating-banks extension (paper Section 5, "Bank Setup").
//
// "In fact, the role of the bank in the Zmail protocol can be implemented
//  as a set of distributed banks or a hierarchy of banks.  It is fairly
//  straightforward to extend the Zmail protocol to incorporate multiple
//  collaborating banks."
//
// Design (the paper leaves it open; we make the natural choice concrete):
//   - every compliant ISP has one *home bank* (round-robin assignment);
//     its real-money account and its buy/sell traffic live there;
//   - a federation snapshot round: each bank sends requests to its member
//     ISPs and gathers their credit reports;
//   - banks then exchange the gathered report columns all-to-all (counted
//     as inter-bank messages/bytes — the cost the E12 federation bench
//     measures);
//   - pair (i, j) is verified by the home bank of min(i, j); a consistent
//     pair settles.  Settlement between ISPs of different banks moves
//     money through inter-bank clearing accounts, netted per bank pair per
//     round (bulk, like everything else in Zmail).
//
// Crash tolerance (this file's second act): each member bank is now a
// self-contained state machine — its own RNG, report gathering, verify
// matrix, trade idempotency ledgers, clearing ledgers, and unacked
// outbound wires — so it can be serialized, WAL-logged, crashed, and
// rebuilt independently of its peers.  The inter-bank column exchange and
// the netted clearing transfers are real acknowledged messages carrying a
// round id; a per-peer ledger absorbs duplicated or stale deliveries, so
// retransmitting after loss (or replaying a WAL after a crash) never
// double-applies a settlement.
//
// Two transports:
//   - loopback (default, no sink installed): inter-bank wires self-deliver
//     synchronously inside the federation and the legacy synthetic
//     accounting is kept verbatim, so untimed callers (tests, ablations)
//     see byte-for-byte the monolithic behaviour;
//   - sink (FederatedZmailSystem installs one when hardening is on): wires
//     travel as sealed datagrams over the latency-modelled network, with
//     RetryPolicy-paced retransmission of unacked wires.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <tuple>
#include <vector>

#include "core/bank.hpp"  // CreditViolation
#include "core/config.hpp"
#include "core/messages.hpp"
#include "crypto/rsa.hpp"
#include "store/wal.hpp"

namespace zmail::core {

struct FederationMetrics {
  std::uint64_t rounds_completed = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t reports_received = 0;
  std::uint64_t interbank_messages = 0;
  std::uint64_t interbank_bytes = 0;
  std::uint64_t settlements_intra_bank = 0;
  std::uint64_t settlements_cross_bank = 0;
  std::uint64_t clearing_transfers = 0;  // netted bank-to-bank movements
  std::uint64_t violations_found = 0;
  EPenny epennies_minted = 0;
  EPenny epennies_burned = 0;
  // Robustness counters (all zero on the happy path).
  std::uint64_t clearing_messages = 0;   // ClearingTransfer wires sent
  std::uint64_t interbank_acks = 0;      // ack wires sent
  std::uint64_t interbank_retries = 0;   // unacked wires retransmitted
  std::uint64_t duplicate_trades = 0;    // buy/sell replays answered from cache
  std::uint64_t stale_trades = 0;        // buy/sell replays of older nonces
  std::uint64_t duplicate_interbank = 0; // column/clearing replays absorbed
  std::uint64_t stale_interbank = 0;     // inter-bank wires for closed rounds
  std::uint64_t bad_envelopes = 0;       // unseal/decode failures
  std::uint64_t snapshot_rerequests = 0; // re-requests to silent members
};

class BankFederation {
 public:
  // Wire kinds on the inter-bank plane.  Values are stable: they appear in
  // WAL records and on sealed wires.
  enum class FedMsg : std::uint8_t {
    kColumns = 1,      // a bank's gathered member credit columns
    kColumnsAck = 2,
    kClearing = 3,     // per-round foreign account deltas + netted position
    kClearingAck = 4,
  };

  // Logical WAL command log (one log per member bank).  Values are stable
  // on disk.
  enum class WalOp : std::uint8_t {
    kOnBuy = 1,
    kOnSell = 2,
    kStartRound = 3,
    kOnReply = 4,
    kOnInterbank = 5,
    kResendRequests = 6,
    kPollWires = 7,
  };

  BankFederation(const ZmailParams& params, std::size_t n_banks,
                 std::uint64_t seed);

  std::size_t bank_count() const noexcept { return n_banks_; }
  // Home-bank assignment (round-robin over compliant ISP indices).
  std::size_t home_bank(std::size_t isp) const;
  // Key the ISP seals its traffic with (its home bank's public key).
  const crypto::RsaKey& public_key_for(std::size_t isp) const;
  const crypto::KeyPair& bank_keys(std::size_t bank) const {
    return keys_.at(bank);
  }

  // --- Section 4.3 trade, routed to the home bank -------------------------
  crypto::Bytes on_buy(std::size_t isp, const crypto::Bytes& wire);
  crypto::Bytes on_sell(std::size_t isp, const crypto::Bytes& wire);

  // --- Federated snapshot round --------------------------------------------
  // Emits one sealed request per compliant ISP (from its home bank).
  std::vector<std::pair<std::size_t, crypto::Bytes>> start_snapshot();
  // Restarts (or starts) the round at one bank only — the recovery path
  // when a bank was down while its peers opened the round.
  std::vector<std::pair<std::size_t, crypto::Bytes>> start_snapshot_for(
      std::size_t bank);
  // Re-requests reports from `bank`'s silent members (round still open).
  std::vector<std::pair<std::size_t, crypto::Bytes>> resend_requests(
      std::size_t bank);
  void on_reply(std::size_t isp, const crypto::Bytes& wire);
  // Inter-bank plane: deliver a peer bank's sealed wire to `bank`.
  void on_interbank(std::size_t bank, std::size_t from_bank,
                    std::uint8_t kind, const crypto::Bytes& wire);
  // Retransmits `bank`'s unacked inter-bank wires whose backoff expired.
  void poll_interbank(std::size_t bank, std::int64_t now);

  bool round_open() const noexcept;              // any bank mid-round
  bool round_open(std::size_t bank) const;
  std::uint64_t seq() const noexcept;            // min over member banks
  std::uint64_t seq(std::size_t bank) const;
  // True when every bank closed its round and no inter-bank wire awaits an
  // ack — the globally consistent cut the auditor's pairwise checks need.
  bool idle() const;

  const std::vector<CreditViolation>& last_violations() const noexcept {
    return last_violations_;
  }

  // --- Accounts --------------------------------------------------------------
  Money isp_account(std::size_t isp) const;
  void set_isp_account(std::size_t isp, Money v);
  // Net clearing position of bank b toward the rest of the federation
  // (positive: the federation owes b).
  Money clearing_position(std::size_t bank) const;
  // Cumulative netted flow recorded at `bank` against `peer` (negative:
  // bank's members paid peer's members net).  Antisymmetric at idle cuts.
  Money clearing_pair(std::size_t bank, std::size_t peer) const;

  // Aggregated across member banks; rounds_completed is the minimum (a
  // round counts when *every* bank closed it), everything else sums.
  FederationMetrics metrics() const;
  const FederationMetrics& metrics(std::size_t bank) const;

  // --- Durability & the networked inter-bank plane -------------------------
  // When set, inter-bank wires are handed to the sink (the facade sends
  // them as datagrams); when null, they self-deliver synchronously.
  using InterbankSink = std::function<void(
      std::size_t from, std::size_t to, std::uint8_t kind, crypto::Bytes wire)>;
  void set_interbank_sink(InterbankSink sink) { sink_ = std::move(sink); }

  void attach_wal(std::size_t bank, store::WalSink* wal);
  store::WalSink* wal(std::size_t bank) const;
  crypto::Bytes serialize_state(std::size_t bank) const;
  bool restore_state(std::size_t bank, const crypto::Bytes& state);
  void apply_wal_record(std::size_t bank, std::uint8_t op,
                        const crypto::Bytes& payload);
  // Drops one bank's in-memory state (fresh-construct) ahead of recover().
  void reset_bank(std::size_t bank);

 private:
  struct PeerLedger {
    bool any_applied = false;
    std::uint64_t applied_hi = 0;  // highest round applied from this peer
  };
  struct TradeLedger {
    bool any_applied = false;
    std::uint64_t applied_hi = 0;  // highest applied nonce counter
    crypto::Nonce last_nonce;      // nonce of the cached reply
    crypto::Bytes last_reply;      // sealed wire, replayed on duplicate
  };
  struct PendingWire {
    bool active = false;
    std::uint8_t kind = 0;
    std::uint64_t round = 0;
    std::uint32_t attempts = 0;
    std::int64_t next_at = 0;  // 0 = not yet armed by a poll
    crypto::Bytes wire;
  };
  // One self-contained federation shard: everything a crash must not lose.
  struct MemberBank {
    Rng rng{0};
    std::uint64_t seq = 0;
    bool canrequest = true;
    std::vector<bool> reported;     // per ISP; only members meaningful
    std::size_t outstanding = 0;
    std::vector<std::vector<EPenny>> verify;  // full n×n matrix view
    std::vector<bool> colset_from;  // per bank; self ⇔ gather complete
    bool verified = false;          // owned pairs checked this round
    std::vector<Money> partial_net;   // per peer: my net flow me→peer
    std::vector<Money> peer_partial;  // per peer: peer's net peer→me
    std::vector<bool> transfer_from;  // per peer: clearing applied
    std::vector<bool> pair_netted;    // per peer: both partials combined
    Money clearing_pos = Money::zero();
    std::vector<Money> clearing_pair;   // cumulative per peer
    std::vector<PeerLedger> col_ledger;
    std::vector<PeerLedger> clr_ledger;
    std::vector<TradeLedger> buy_ledger;   // per ISP
    std::vector<TradeLedger> sell_ledger;  // per ISP
    std::vector<PendingWire> pending;      // [2p]=columns→p, [2p+1]=clearing→p
    std::vector<CreditViolation> violations;  // owned pairs, last verify
    FederationMetrics metrics;
    store::WalSink* wal = nullptr;  // not serialized; reattached on rebuild
  };

  void log_op(std::size_t bank, WalOp op, const crypto::Bytes& payload);
  void init_bank(std::size_t bank);
  void open_round(std::size_t bank);
  std::size_t compliant_members(std::size_t bank) const;
  void gather_complete(std::size_t bank);
  void maybe_verify(std::size_t bank);
  void verify_owned_pairs(std::size_t bank);
  void combine_pair(std::size_t bank, std::size_t peer);
  void try_close_round(std::size_t bank);
  void handle_columns(std::size_t bank, std::size_t from,
                      crypto::ByteReader& r, std::uint64_t round);
  void handle_clearing(std::size_t bank, std::size_t from,
                       crypto::ByteReader& r, std::uint64_t round);
  void handle_ack(std::size_t bank, std::size_t from, FedMsg acked,
                  std::uint64_t round);
  void emit(std::size_t from, std::size_t to, FedMsg kind, std::uint64_t round,
            const crypto::Bytes& plain, bool track);
  void send_ack(std::size_t from, std::size_t to, FedMsg acked,
                std::uint64_t round);
  void drain_loopback();
  void rebuild_violations();

  const ZmailParams& params_;
  std::size_t n_banks_;
  std::vector<crypto::KeyPair> keys_;
  Rng rng_;  // key generation only; per-bank streams do the sealing
  std::uint64_t seed_ = 0;

  std::vector<Money> accounts_;  // per ISP, held at its home bank
  std::vector<MemberBank> banks_;

  InterbankSink sink_;
  bool replaying_ = false;  // WAL replay: suppress wire emission
  bool draining_ = false;
  std::deque<std::tuple<std::size_t, std::size_t, std::uint8_t, crypto::Bytes>>
      loopback_;

  std::vector<CreditViolation> last_violations_;
};

}  // namespace zmail::core
