// Zombies and email viruses (paper Section 5): per-user daily limits bound
// a zombie's spending, block its outgoing blast for the day, and generate a
// warning that gets the machine disinfected.
//
//   ./zombie_outbreak
#include <cstdio>

#include "core/system.hpp"
#include "util/table.hpp"
#include "workload/virus.hpp"

using namespace zmail;

namespace {

std::vector<workload::OutbreakDay> run_world(std::int64_t daily_limit,
                                             std::uint64_t seed) {
  core::ZmailParams params;
  params.n_isps = 4;
  params.users_per_isp = 50;
  params.initial_user_balance = 5'000;
  params.default_daily_limit = daily_limit;
  params.record_inboxes = false;
  core::ZmailSystem sys(params, seed);

  workload::OutbreakParams op;
  op.initial_infected = 3;
  op.virus_sends_per_day = 400;
  op.infect_prob = 0.03;
  op.days = 10;
  workload::ZombieOutbreak outbreak(sys, op, Rng(seed));
  return outbreak.run();
}

}  // namespace

int main() {
  std::printf("zombie outbreak, 200 users, 3 initially infected PCs\n");

  const auto tight = run_world(/*daily_limit=*/30, 42);
  const auto loose = run_world(/*daily_limit=*/100'000, 42);

  Table table({"day", "infected (limit=30)", "virus sent", "blocked",
               "warnings", "infected (no real limit)", "virus sent ",
               "e-pennies drained"});
  for (std::size_t d = 0; d < tight.size(); ++d) {
    table.add_row({Table::num(std::uint64_t{d}),
                   Table::num(std::uint64_t{tight[d].infected}),
                   Table::num(tight[d].virus_sent),
                   Table::num(tight[d].virus_blocked),
                   Table::num(tight[d].warnings),
                   Table::num(std::uint64_t{loose[d].infected}),
                   Table::num(loose[d].virus_sent),
                   Table::num(loose[d].epennies_drained)});
  }
  table.print("daily limit = 30 vs effectively unlimited");

  std::printf(
      "\nwith the limit: victims' liability is capped at ~30 e-pennies/day\n"
      "and every zombie is flagged by a warning the day it activates;\n"
      "without it, zombies drain %lld e-pennies in %zu days.\n",
      static_cast<long long>(loose.back().epennies_drained), loose.size());
  return 0;
}
