// R2 — durability: the WAL + snapshot store under the cost microscope.
//
// The paper's bank "keeps accounts" but never says how those books survive
// a crash; src/store adds the standard systems answer (write-ahead logging
// with group commit + snapshot checkpointing) and this bench prices it and
// proves the recovery path.
//
// Regenerates:
//   R2.a  WAL append throughput across group-commit sizes, fsync on/off:
//         the batching curve that motivates group commit
//   R2.b  checkpoint latency: state serialize/deserialize time and the
//         on-disk snapshot size as the party state grows
//   R2.c  recovery time vs WAL length: replay cost grows with the log, and
//         a checkpoint truncates it back down
//   R2.d  crash-recovery chaos sweep: ISP and bank crash mid-scenario with
//         real state wipes; snapshot + WAL-tail replay restores the books
//         with zero invariant violations
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/invariants.hpp"
#include "core/system.hpp"
#include "net/address.hpp"
#include "net/faults.hpp"
#include "store/checkpoint.hpp"
#include "store/wal.hpp"
#include "util/table.hpp"

using namespace zmail;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// ---------------------------------------------------------------------------
// R2.a  WAL append throughput x group commit x fsync
// ---------------------------------------------------------------------------

void r2a_wal_throughput(bench::Bench& harness) {
  const bench::Options& opt = harness.options();
  const crypto::Bytes payload(64, 0xAB);

  Table t({"group commit", "fsync", "records", "wall", "krec/s", "MB/s",
           "fsyncs"});
  json::Value rows = json::Value::array();
  double krps_fsync_1 = 0.0, krps_fsync_512 = 0.0;
  for (const bool fsync_data : {false, true}) {
    for (const std::uint32_t group : {1u, 8u, 64u, 512u}) {
      // fsync-per-record is milliseconds per append on a real disk; keep
      // the synced runs short and let the buffered runs stretch out.
      const std::size_t records =
          fsync_data ? (opt.smoke ? 256 : 2'048) : (opt.smoke ? 20'000 : 100'000);
      const std::string path = "r2a_wal_bench.zwal";
      std::remove(path.c_str());
      store::WalWriter w;
      std::string err;
      if (!w.open(path, group, fsync_data, &err)) {
        bench::check(false, "r2a: WAL open failed: " + err);
        return;
      }
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < records; ++i) w.append_record(1, payload);
      w.sync();  // flush the final partial group so every run is durable
      const double wall = seconds_since(t0);
      const double krps = static_cast<double>(records) / wall / 1e3;
      const double mbps =
          static_cast<double>(w.stats().bytes_appended) / wall / 1e6;
      if (fsync_data && group == 1) krps_fsync_1 = krps;
      if (fsync_data && group == 512) krps_fsync_512 = krps;
      t.add_row({Table::num(std::uint64_t{group}), fsync_data ? "yes" : "no",
                 Table::num(std::uint64_t{records}),
                 Table::num(wall * 1e3, 1) + " ms", Table::num(krps, 1),
                 Table::num(mbps, 1),
                 Table::num(w.stats().fsyncs)});
      json::Value row = json::Value::object();
      row["group_commit"] = std::uint64_t{group};
      row["fsync"] = fsync_data;
      row["records"] = std::uint64_t{records};
      row["wall_seconds"] = wall;
      row["krecords_per_second"] = krps;
      row["mb_per_second"] = mbps;
      rows.push_back(std::move(row));
      w.close();
      std::remove(path.c_str());
    }
  }
  t.print("R2.a  WAL append throughput (64-byte payloads)");
  harness.metrics()["r2a_wal_throughput"] = std::move(rows);

  bench::check(krps_fsync_512 > krps_fsync_1,
               "group commit amortizes the fsync barrier (512 >> 1)");
}

// ---------------------------------------------------------------------------
// Shared scenario plumbing for the system-level sections.
// ---------------------------------------------------------------------------

core::ZmailParams store_params(const std::string& dir,
                               std::size_t users_per_isp) {
  core::ZmailParams p;
  p.n_isps = 3;
  p.users_per_isp = users_per_isp;
  p.initial_user_balance = 10'000;
  p.default_daily_limit = 100'000;
  p.record_inboxes = false;
  p.store.enabled = true;
  p.store.dir = dir;
  return p;
}

void drive_traffic(core::ZmailSystem& sys, std::uint64_t seed, int sends) {
  Rng rng(seed);
  const core::ZmailParams& p = sys.params();
  for (int i = 0; i < sends; ++i) {
    const std::size_t src = rng.next_below(p.n_isps);
    std::size_t dst = rng.next_below(p.n_isps - 1);
    if (dst >= src) ++dst;
    sys.send_email(net::make_user_address(src, rng.next_below(p.users_per_isp)),
                   net::make_user_address(dst, rng.next_below(p.users_per_isp)),
                   "r2", "m" + std::to_string(i));
    sys.run_for(sim::kMinute);
  }
}

// ---------------------------------------------------------------------------
// R2.b  checkpoint latency and snapshot size vs party state size
// ---------------------------------------------------------------------------

void r2b_checkpoint_latency(bench::Bench& harness) {
  const bench::Options& opt = harness.options();
  Table t({"users/ISP", "state bytes", "serialize", "deserialize",
           "checkpoint (write+truncate)", "snapshot on disk"});
  json::Value rows = json::Value::array();
  double small_bytes = 0.0, large_bytes = 0.0;
  const std::vector<std::size_t> sizes =
      opt.smoke ? std::vector<std::size_t>{5, 40}
                : std::vector<std::size_t>{5, 40, 160};
  for (const std::size_t users : sizes) {
    const std::string dir = "r2b_store";
    std::filesystem::remove_all(dir);
    core::ZmailSystem sys(store_params(dir, users), 201);
    sys.enable_bank_trading();
    drive_traffic(sys, 202, opt.smoke ? 40 : 120);
    sys.start_snapshot();
    sys.run_for(sim::kHour);

    auto t0 = std::chrono::steady_clock::now();
    const crypto::Bytes state = sys.isp(0).serialize_state();
    const double ser = seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    const bool restored = sys.isp(0).restore_state(state);
    const double deser = seconds_since(t0);

    t0 = std::chrono::steady_clock::now();
    sys.checkpoint_host(0);
    const double ckpt = seconds_since(t0);

    const store::Checkpointer* cp = sys.host_store(0);
    const std::uint64_t disk_bytes = cp->stats().last_snapshot_bytes;
    if (users == sizes.front()) small_bytes = static_cast<double>(disk_bytes);
    if (users == sizes.back()) large_bytes = static_cast<double>(disk_bytes);
    if (!restored) bench::check(false, "r2b: self-restore must succeed");

    t.add_row({Table::num(std::uint64_t{users}),
               Table::num(std::uint64_t{state.size()}),
               Table::num(ser * 1e6, 1) + " us",
               Table::num(deser * 1e6, 1) + " us",
               Table::num(ckpt * 1e6, 1) + " us",
               Table::num(disk_bytes) + " B"});
    json::Value row = json::Value::object();
    row["users_per_isp"] = std::uint64_t{users};
    row["state_bytes"] = std::uint64_t{state.size()};
    row["serialize_seconds"] = ser;
    row["deserialize_seconds"] = deser;
    row["checkpoint_seconds"] = ckpt;
    row["snapshot_disk_bytes"] = disk_bytes;
    rows.push_back(std::move(row));
    std::filesystem::remove_all(dir);
  }
  t.print("R2.b  checkpoint cost vs party state size (ISP 0)");
  harness.metrics()["r2b_checkpoint"] = std::move(rows);

  bench::check(large_bytes > small_bytes,
               "snapshot size grows with the user population");
}

// ---------------------------------------------------------------------------
// R2.c  recovery time vs WAL length
// ---------------------------------------------------------------------------

void r2c_recovery_scaling(bench::Bench& harness) {
  const bench::Options& opt = harness.options();
  Table t({"commands sent", "WAL records", "WAL bytes", "recovery",
           "after checkpoint"});
  json::Value rows = json::Value::array();
  std::vector<double> recovery_walls;
  const std::vector<int> volumes = opt.smoke ? std::vector<int>{30, 120}
                                             : std::vector<int>{50, 200, 800};
  for (const int sends : volumes) {
    const std::string dir = "r2c_store";
    std::filesystem::remove_all(dir);
    core::ZmailParams p = store_params(dir, 6);
    // No checkpoints: the WAL carries the party's entire history, so
    // recovery cost is pure replay and scales with the log.
    p.store.checkpoint_at_snapshot = false;
    core::ZmailSystem sys(p, 203);
    sys.enable_bank_trading();
    drive_traffic(sys, 204, sends);
    sys.run_for(sim::kHour);

    const store::WalWriter::Stats ws = sys.host_store(0)->wal().stats();
    auto t0 = std::chrono::steady_clock::now();
    sys.recover_host(0);
    const double recover_wall = seconds_since(t0);
    recovery_walls.push_back(recover_wall);

    // A checkpoint truncates the log; recovery becomes snapshot restore
    // plus an (empty) tail.
    sys.checkpoint_host(0);
    t0 = std::chrono::steady_clock::now();
    sys.recover_host(0);
    const double after_ckpt_wall = seconds_since(t0);

    t.add_row({Table::num(std::uint64_t(sends)),
               Table::num(ws.records_appended),
               Table::num(ws.bytes_appended),
               Table::num(recover_wall * 1e3, 2) + " ms",
               Table::num(after_ckpt_wall * 1e3, 2) + " ms"});
    json::Value row = json::Value::object();
    row["sends"] = std::uint64_t(sends);
    row["wal_records"] = ws.records_appended;
    row["wal_bytes"] = ws.bytes_appended;
    row["recovery_seconds"] = recover_wall;
    row["recovery_after_checkpoint_seconds"] = after_ckpt_wall;
    rows.push_back(std::move(row));
    std::filesystem::remove_all(dir);
  }
  t.print("R2.c  recovery time vs WAL length (full replay vs checkpointed)");
  harness.metrics()["r2c_recovery"] = std::move(rows);

  bench::check(recovery_walls.back() > recovery_walls.front(),
               "full-replay recovery time grows with the WAL");
}

// ---------------------------------------------------------------------------
// R2.d  crash-recovery chaos sweep
// ---------------------------------------------------------------------------

sweep::MetricBag run_crash_replica(std::uint64_t seed, int sends,
                                   const std::string& dir) {
  std::filesystem::remove_all(dir);
  core::ZmailParams p = store_params(dir, 6);
  p.retry.enabled = true;
  p.reliable_email_transport = true;
  core::ZmailSystem sys(p, seed);
  sys.enable_bank_trading();
  const sim::Duration span = static_cast<sim::Duration>(sends) * sim::kMinute;
  sys.enable_periodic_snapshots(span / 2);

  // Crash one ISP a quarter in, the bank at five-eighths.  With the store
  // enabled these wipe in-memory state for real; attach_faults schedules
  // the snapshot + WAL-replay recovery at each window's end.
  net::FaultPlan plan;
  plan.outages.push_back(net::HostOutage{1, span / 4, span / 4 + span / 8});
  plan.outages.push_back(
      net::HostOutage{sys.bank_index(), 5 * span / 8, 3 * span / 4});
  net::FaultInjector inj(plan, seed ^ 0x5DEECE66Dull);
  sys.attach_faults(&inj);

  core::InvariantAuditor auditor(sys);
  Rng traffic(seed + 17);
  const core::ZmailParams& pp = sys.params();
  for (int i = 0; i < sends; ++i) {
    const std::size_t src = traffic.next_below(pp.n_isps);
    std::size_t dst = traffic.next_below(pp.n_isps - 1);
    if (dst >= src) ++dst;
    sys.send_email(
        net::make_user_address(src, traffic.next_below(pp.users_per_isp)),
        net::make_user_address(dst, traffic.next_below(pp.users_per_isp)),
        "crash", "m" + std::to_string(i));
    sys.run_for(sim::kMinute);
  }
  sys.run_for(sim::kHour);
  for (int k = 0; k < 12 && sys.pending_transfers() > 0; ++k)
    sys.run_for(15 * sim::kMinute);
  sys.attach_faults(nullptr);

  auditor.check_now();
  if (!auditor.report().ok())
    for (const std::string& msg : auditor.report().messages)
      std::fprintf(stderr, "r2d seed=%llu: INVARIANT: %s\n",
                   static_cast<unsigned long long>(seed), msg.c_str());

  sweep::MetricBag bag;
  const core::IspMetrics m = sys.total_isp_metrics();
  bag.count("sent", static_cast<double>(m.emails_sent_compliant));
  bag.count("received", static_cast<double>(m.emails_received_compliant));
  bag.count("refunded", static_cast<double>(m.emails_refunded));
  bag.count("pending", static_cast<double>(sys.pending_transfers()));
  bag.count("violations", static_cast<double>(auditor.report().violations));
  bag.count("recoveries", static_cast<double>(sys.state_recoveries()));
  bag.count("outage_lost",
            static_cast<double>(inj.counters().outage_lost));
  std::filesystem::remove_all(dir);
  return bag;
}

void r2d_crash_sweep(bench::Bench& harness) {
  const bench::Options& opt = harness.options();
  const int sends = opt.smoke ? 60 : 120;
  sweep::SweepOptions so;
  so.base_seed = opt.seed;
  so.threads = opt.threads;
  so.replicas = std::max<std::size_t>(opt.replicas, opt.smoke ? 1 : 3);

  const sweep::SweepResult res = harness.run_sweep(
      "r2d_crashes", {sweep::Point{"isp1 crash, then bank crash", {}}}, so,
      [&](const sweep::Point&, std::uint64_t seed, std::size_t replica) {
        return run_crash_replica(
            seed, sends, "r2d_store_r" + std::to_string(replica));
      });

  const auto& b = res.points.front().merged;
  Table t({"paid sent", "delivered", "refunded", "state recoveries",
           "datagrams lost to outages", "violations", "pending"});
  t.add_row({Table::num(b.counter("sent"), 0),
             Table::num(b.counter("received"), 0),
             Table::num(b.counter("refunded"), 0),
             Table::num(b.counter("recoveries"), 0),
             Table::num(b.counter("outage_lost"), 0),
             Table::num(b.counter("violations"), 0),
             Table::num(b.counter("pending"), 0)});
  t.print("R2.d  crash + snapshot/WAL recovery (" +
          std::to_string(so.replicas) + " seed(s))");

  bench::check(b.counter("recoveries") ==
                   static_cast<double>(2 * so.replicas),
               "both crashes recovered through the durable store");
  bench::check(b.counter("violations") == 0,
               "zero invariant violations after recovery");
  bench::check(b.counter("received") + b.counter("refunded") ==
                   b.counter("sent"),
               "every paid email delivered or refunded across the crashes");
  bench::check(b.counter("pending") == 0, "nothing left in flight");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("r2_durability", argc, argv);
  std::printf("=== R2: durability (WAL + snapshot + recovery) ===\n");
  r2a_wal_throughput(harness);
  r2b_checkpoint_latency(harness);
  r2c_recovery_scaling(harness);
  r2d_crash_sweep(harness);
  return harness.finish();
}
