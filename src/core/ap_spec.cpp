#include "core/ap_spec.hpp"

#include "util/assert.hpp"

namespace zmail::core {

namespace {

// AP-world email payload: just (s, r) — the sending and receiving user.
crypto::Bytes encode_ap_email(std::size_t s, std::size_t r) {
  crypto::Bytes b;
  crypto::put_u32(b, static_cast<std::uint32_t>(s));
  crypto::put_u32(b, static_cast<std::uint32_t>(r));
  return b;
}

bool decode_ap_email(const crypto::Bytes& b, std::size_t& s, std::size_t& r) {
  crypto::ByteReader reader(b);
  s = reader.get_u32();
  r = reader.get_u32();
  return reader.ok() && reader.at_end();
}

}  // namespace

// ---------------------------------------------------------------------------
// ApIspProcess
// ---------------------------------------------------------------------------

ApIspProcess::ApIspProcess(ApZmailWorld& world, std::size_t index,
                           std::uint64_t seed)
    : world_(world),
      index_(index),
      rng_(seed ^ (index * 0x9E3779B97F4A7C15ULL)),
      nnc_(seed * 31 + index) {
  const ZmailParams& p = world_.params();
  avail = p.initial_avail;
  account.assign(p.users_per_isp,
                 p.initial_user_account.micros() / Money::kMicrosPerEPenny);
  balance.assign(p.users_per_isp, p.initial_user_balance);
  sent.assign(p.users_per_isp, 0);
  limit.assign(p.users_per_isp, p.default_daily_limit);
  credit.assign(p.n_isps, 0);

  const bool compliant = p.is_compliant(index_);

  // O cansend -> (Section 4.1, sending)
  add_action(
      "send", [this] { return cansend && send_budget > 0; },
      [this] { act_send(); });

  // O rcv email(s,r) from isp[g]
  add_receive(kMsgEmail, [this](const ap::Message& m) { act_rcv_email(m); });

  // O true -> {execute at the end of every day}
  add_action(
      "daily-reset", [this] { return day_pending; },
      [this] { act_daily_reset(); });

  if (compliant) {
    // O canbuy -> ... (guard hoists the paper's inner `avail < minavail`)
    add_action(
        "buy",
        [this, &p = world_.params()] {
          return canbuy && avail < p.minavail;
        },
        [this] { act_buy(); });
    add_receive(kMsgBuyReply,
                [this](const ap::Message& m) { act_rcv_buyreply(m); });

    // O cansell -> ... (paper-literal: avail not reserved here)
    add_action(
        "sell",
        [this, &p = world_.params()] {
          return cansell && avail > p.maxavail;
        },
        [this] { act_sell(); });
    add_receive(kMsgSellReply,
                [this](const ap::Message& m) { act_rcv_sellreply(m); });

    // O timeout expired -> resend buy / resend sell (Section 3 recovery).
    //
    // The paper's channels are reliable, but an adversarial harness (or the
    // faulty zmail::net substitution) can lose a reply; the exchange then
    // deadlocks with canbuy/cansell stuck false.  The AP-equivalent of the
    // production retry timer is a timeout guard: the exchange is
    // outstanding (nonce held) yet neither the request nor its reply is in
    // the channel — the message was lost, so resend the *same* sealed wire.
    // The bank's nonce cache makes the duplicate idempotent, so a retry
    // racing a slow (not lost) reply is harmless; under reliable channels
    // atomic receive-and-reply keeps one of the two messages in flight and
    // this guard is never true.
    const auto exchange_stalled = [this](const ap::GlobalView& g,
                                         const net::MsgType& req,
                                         const net::MsgType& reply) {
      const ap::Channel* out =
          g.scheduler().find_channel(id(), world_.bank_pid());
      if (out)
        for (const auto& m : out->contents())
          if (m.type == req.name()) return false;
      const ap::Channel* in =
          g.scheduler().find_channel(world_.bank_pid(), id());
      if (in)
        for (const auto& m : in->contents())
          if (m.type == reply.name()) return false;
      return true;
    };
    add_timeout(
        "buy-retry",
        [this, exchange_stalled](const ap::GlobalView& g) {
          return !canbuy && ns1_.has_value() &&
                 exchange_stalled(g, kMsgBuy, kMsgBuyReply);
        },
        [this] {
          ++buy_retries;
          send(world_.bank_pid(), kMsgBuy, crypto::Bytes(buy_wire_));
        });
    add_timeout(
        "sell-retry",
        [this, exchange_stalled](const ap::GlobalView& g) {
          return !cansell && ns2_.has_value() &&
                 exchange_stalled(g, kMsgSell, kMsgSellReply);
        },
        [this] {
          ++sell_retries;
          send(world_.bank_pid(), kMsgSell, crypto::Bytes(sell_wire_));
        });

    // User <-> ISP e-penny trade (Section 4.2), budgeted.
    add_action(
        "user-trade", [this] { return user_trade_budget > 0; },
        [this] {
          --user_trade_budget;
          const ZmailParams& par = world_.params();
          const auto t = static_cast<std::size_t>(
              rng_.next_below(par.users_per_isp));
          const EPenny x = rng_.uniform_int(1, 20);
          if (rng_.bernoulli(0.5)) {
            // user t wants to buy x e-pennies
            if (account[t] >= x && avail >= x) {
              account[t] -= x;
              balance[t] += x;
              avail -= x;
            }
          } else {
            // user t wants to sell x e-pennies
            if (balance[t] >= x) {
              account[t] += x;
              balance[t] -= x;
              avail += x;
            }
          }
        });

    // O rcv request(x) from bank (Section 4.4)
    add_receive(kMsgRequest,
                [this](const ap::Message& m) { act_rcv_request(m); });

    // O timeout expired -> send reply(credit)
    //
    // The paper realizes this with a 10-minute wall-clock wait, long enough
    // that (a) every compliant ISP has received the bank's request and
    // stopped sending, and (b) all in-flight mail has landed.  The untimed
    // AP equivalent is a timeout guard over global state (Section 3 allows
    // exactly this): every compliant peer is quiescing or has already
    // reported this round, and no email is still in flight toward us.
    add_timeout(
        "quiesce-timeout",
        [this](const ap::GlobalView& g) {
          if (!quiescing) return false;
          const ZmailParams& par = world_.params();
          for (std::size_t j = 0; j < par.n_isps; ++j) {
            if (j == index_ || !par.is_compliant(j)) continue;
            const ApIspProcess& other = world_.isp(j);
            const bool reported = other.seq == seq + 1;
            if (!other.quiescing && !reported) return false;
            const ap::Channel* ch =
                g.scheduler().find_channel(world_.isp_pid(j), id());
            if (ch) {
              for (const auto& m : ch->contents())
                if (m.type == kMsgEmail.name()) return false;
            }
          }
          return true;
        },
        [this] { act_timeout_expired(); });

    // Resume sending only when every compliant peer has also reported.
    // In the timed protocol this barrier is implicit: all ISPs receive the
    // request within seconds and hold the same 10-minute window, so nobody
    // resumes while a peer is still collecting.  Under arbitrary
    // interleavings an early resumer could slip a new-period email into a
    // peer's still-open period and fake an inconsistency, so the barrier
    // must be explicit here.
    add_timeout(
        "resume-send",
        [this](const ap::GlobalView&) {
          if (cansend || quiescing) return false;
          const ZmailParams& par = world_.params();
          for (std::size_t j = 0; j < par.n_isps; ++j) {
            if (j == index_ || !par.is_compliant(j)) continue;
            if (world_.isp(j).seq < seq) return false;
          }
          return true;
        },
        [this] { cansend = true; });
  }
}

void ApIspProcess::act_send() {
  --send_budget;
  const ZmailParams& p = world_.params();
  const auto s = static_cast<std::size_t>(rng_.next_below(p.users_per_isp));
  const auto j = static_cast<std::size_t>(rng_.next_below(p.n_isps));
  const auto r = static_cast<std::size_t>(rng_.next_below(p.users_per_isp));

  if (!p.is_compliant(index_)) {
    // Legacy ISP: plain mail, no accounting, always free.
    if (j == index_) {
      ++emails_delivered;
    } else {
      send(world_.isp_pid(j), kMsgEmail, encode_ap_email(s, r));
      ++emails_sent_out;
    }
    return;
  }

  if (j == index_) {
    // i = j branch: local delivery.
    if (balance[s] >= 1 && sent[s] < limit[s]) {
      balance[s] -= 1;
      balance[r] += 1;
      sent[s] += 1;
      ++emails_delivered;  // {deliver email(s,r) to user r}
    }
    return;
  }
  if (p.is_compliant(j)) {
    if (cheat_free_ride) {
      // Misbehaving ISP: mail goes out, no charge, no credit entry.
      send(world_.isp_pid(j), kMsgEmail, encode_ap_email(s, r));
      ++emails_sent_out;
      return;
    }
    if (balance[s] >= 1 && sent[s] < limit[s]) {
      balance[s] -= 1;
      credit[j] += 1;
      sent[s] += 1;
      send(world_.isp_pid(j), kMsgEmail, encode_ap_email(s, r));
      ++emails_sent_out;
    }
    return;
  }
  // ~compliant[j] -> send email(s, r) to isp[j] (free).
  send(world_.isp_pid(j), kMsgEmail, encode_ap_email(s, r));
  ++emails_sent_out;
}

void ApIspProcess::act_rcv_email(const ap::Message& m) {
  ++emails_received;
  std::size_t s = 0, r = 0;
  if (!decode_ap_email(m.payload, s, r)) return;
  const ZmailParams& p = world_.params();
  const std::size_t g = world_.isp_of_pid(m.from);
  if (!p.is_compliant(index_)) {
    ++emails_delivered;  // legacy ISPs accept everything
    return;
  }
  if (p.is_compliant(g)) {
    if (r < balance.size()) {
      balance[r] += 1;
      credit[g] -= 1;
    }
    ++emails_delivered;
  } else {
    ++emails_delivered;  // {deliver to r or discard it}: we deliver
  }
}

void ApIspProcess::act_daily_reset() {
  for (auto& x : sent) x = 0;
  day_pending = false;
}

void ApIspProcess::act_buy() {
  const ZmailParams& p = world_.params();
  canbuy = false;
  buyvalue = rng_.uniform_int(1, p.maxavail - avail);  // buyvalue := any
  ns1_ = nnc_.next();
  BuyRequest req{buyvalue, *ns1_};
  buy_wire_ = seal(world_.bank_keys().pub, req.serialize(), rng_);
  send(world_.bank_pid(), kMsgBuy, crypto::Bytes(buy_wire_));
}

void ApIspProcess::act_rcv_buyreply(const ap::Message& m) {
  const auto plain = unseal(world_.bank_keys().pub, m.payload);
  if (!plain) {
    ++bad_nonce_replies;
    return;
  }
  const auto reply = BuyReply::deserialize(*plain);
  if (!reply) {
    ++bad_nonce_replies;
    return;
  }
  if (ns1_ && reply->nonce == *ns1_) {
    canbuy = true;
    ns1_.reset();
    if (reply->accepted) avail += buyvalue;
  } else {
    ++bad_nonce_replies;  // ns1 != nr1 -> skip
  }
}

void ApIspProcess::act_sell() {
  const ZmailParams& p = world_.params();
  cansell = false;
  sellvalue = rng_.uniform_int(1, avail - p.maxavail);  // sellvalue := any
  ns2_ = nnc_.next();
  SellRequest req{sellvalue, *ns2_};
  sell_wire_ = seal(world_.bank_keys().pub, req.serialize(), rng_);
  send(world_.bank_pid(), kMsgSell, crypto::Bytes(sell_wire_));
  // NOTE: paper-literal behaviour — `avail` is NOT reduced here; the
  // decrement happens in act_rcv_sellreply, which admits a race with
  // concurrent user purchases (demonstrated in ap_spec_test.cpp).
}

void ApIspProcess::act_rcv_sellreply(const ap::Message& m) {
  const auto plain = unseal(world_.bank_keys().pub, m.payload);
  if (!plain) {
    ++bad_nonce_replies;
    return;
  }
  const auto reply = SellReply::deserialize(*plain);
  if (!reply) {
    ++bad_nonce_replies;
    return;
  }
  if (ns2_ && reply->nonce == *ns2_) {
    avail -= sellvalue;  // paper-literal: may underflow under the race
    cansell = true;
    ns2_.reset();
  } else {
    ++bad_nonce_replies;
  }
}

void ApIspProcess::act_rcv_request(const ap::Message& m) {
  const auto plain = unseal(world_.bank_keys().pub, m.payload);
  if (!plain) return;
  const auto req = SnapshotRequest::deserialize(*plain);
  if (!req) return;
  if (req->seq == seq) {
    cansend = false;
    quiescing = true;  // "timeout after 10 minutes"
  }
}

void ApIspProcess::act_timeout_expired() {
  CreditReport report{seq, credit};
  send(world_.bank_pid(), kMsgReply,
       seal(world_.bank_keys().pub, report.serialize(), rng_));
  for (auto& c : credit) c = 0;
  seq += 1;
  quiescing = false;
  // cansend stays false until the resume-send barrier (see constructor) —
  // unless the ablation disabled the barrier, in which case this is the
  // paper-literal `cansend := true`.
  if (!use_resume_barrier) cansend = true;
}

// ---------------------------------------------------------------------------
// ApBankProcess
// ---------------------------------------------------------------------------

ApBankProcess::ApBankProcess(ApZmailWorld& world, std::uint64_t seed)
    : world_(world), rng_(seed ^ 0xBA2CULL) {
  const ZmailParams& p = world_.params();
  account.assign(p.n_isps,
                 p.initial_isp_bank_account.micros() / Money::kMicrosPerEPenny);
  verify.assign(p.n_isps, std::vector<EPenny>(p.n_isps, 0));
  last_buy_nonce_.resize(p.n_isps);
  last_sell_nonce_.resize(p.n_isps);
  last_buy_reply_.resize(p.n_isps);
  last_sell_reply_.resize(p.n_isps);

  add_action(
      "request", [this] { return canrequest && snapshot_budget > 0; },
      [this] { act_request(); });
  add_receive(kMsgBuy, [this](const ap::Message& m) { act_rcv_buy(m); });
  add_receive(kMsgSell, [this](const ap::Message& m) { act_rcv_sell(m); });
  add_receive(kMsgReply, [this](const ap::Message& m) { act_rcv_reply(m); });
  add_action(
      "verify", [this] { return total == 0 && !canrequest; },
      [this] { act_verify(); });
}

void ApBankProcess::act_request() {
  --snapshot_budget;
  const ZmailParams& p = world_.params();
  total = 0;
  SnapshotRequest req{seq};
  for (std::size_t i = 0; i < p.n_isps; ++i) {
    if (!p.is_compliant(i)) continue;
    ++total;
    send(world_.isp_pid(i), kMsgRequest,
         seal(world_.bank_keys().priv, req.serialize(), rng_));
  }
  canrequest = false;
  if (total == 0) canrequest = true;
}

void ApBankProcess::act_rcv_buy(const ap::Message& m) {
  const std::size_t g = world_.isp_of_pid(m.from);
  const auto plain = unseal(world_.bank_keys().priv, m.payload);
  if (!plain) return;
  const auto req = BuyRequest::deserialize(*plain);
  if (!req || req->buyvalue <= 0) return;
  if (last_buy_nonce_[g] && *last_buy_nonce_[g] == req->nonce) {
    // A retried wire: the trade was already applied, so replay the cached
    // reply byte-for-byte instead of minting a second time.
    ++duplicate_buys;
    send(m.from, kMsgBuyReply, crypto::Bytes(last_buy_reply_[g]));
    return;
  }
  BuyReply reply;
  reply.nonce = req->nonce;
  if (account[g] >= req->buyvalue) {
    account[g] -= req->buyvalue;
    world_.note_minted(req->buyvalue);
    reply.accepted = true;
  } else {
    reply.accepted = false;
  }
  last_buy_nonce_[g] = req->nonce;
  last_buy_reply_[g] = seal(world_.bank_keys().priv, reply.serialize(), rng_);
  send(m.from, kMsgBuyReply, crypto::Bytes(last_buy_reply_[g]));
}

void ApBankProcess::act_rcv_sell(const ap::Message& m) {
  const std::size_t g = world_.isp_of_pid(m.from);
  const auto plain = unseal(world_.bank_keys().priv, m.payload);
  if (!plain) return;
  const auto req = SellRequest::deserialize(*plain);
  if (!req || req->sellvalue <= 0) return;
  if (last_sell_nonce_[g] && *last_sell_nonce_[g] == req->nonce) {
    ++duplicate_sells;
    send(m.from, kMsgSellReply, crypto::Bytes(last_sell_reply_[g]));
    return;
  }
  account[g] += req->sellvalue;
  world_.note_burned(req->sellvalue);
  SellReply reply{req->nonce};
  last_sell_nonce_[g] = req->nonce;
  last_sell_reply_[g] = seal(world_.bank_keys().priv, reply.serialize(), rng_);
  send(m.from, kMsgSellReply, crypto::Bytes(last_sell_reply_[g]));
}

void ApBankProcess::act_rcv_reply(const ap::Message& m) {
  const ZmailParams& p = world_.params();
  const std::size_t g = world_.isp_of_pid(m.from);
  if (!p.is_compliant(g)) return;
  const auto plain = unseal(world_.bank_keys().priv, m.payload);
  if (!plain) return;
  const auto report = CreditReport::deserialize(*plain);
  if (!report || report->credit.size() != p.n_isps) return;
  if (canrequest || report->seq != seq) return;  // stale
  for (std::size_t i = 0; i < p.n_isps; ++i)
    verify[i][g] = report->credit[i];
  if (total > 0) --total;
}

void ApBankProcess::act_verify() {
  const ZmailParams& p = world_.params();
  for (std::size_t i = 0; i < p.n_isps; ++i) {
    if (!p.is_compliant(i)) continue;
    for (std::size_t j = i + 1; j < p.n_isps; ++j) {
      if (!p.is_compliant(j)) continue;
      const EPenny d = verify[j][i] + verify[i][j];
      if (d != 0) violations.push_back(Violation{i, j, d});
    }
  }
  for (auto& row : verify)
    for (auto& cell : row) cell = 0;
  canrequest = true;
  seq += 1;
  ++rounds_completed;
}

// ---------------------------------------------------------------------------
// ApZmailWorld
// ---------------------------------------------------------------------------

ApZmailWorld::ApZmailWorld(const ZmailParams& params,
                           ap::Scheduler::Policy policy, std::uint64_t seed)
    : params_(params), sched_(policy, seed) {
  Rng key_rng(seed ^ 0x6B657973ULL);
  keys_ = crypto::generate_keypair(key_rng);
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    isps_.push_back(std::make_unique<ApIspProcess>(*this, i, seed + i));
    isp_pids_.push_back(
        sched_.add_process(*isps_.back(), "isp" + std::to_string(i)));
  }
  bank_ = std::make_unique<ApBankProcess>(*this, seed);
  bank_pid_ = sched_.add_process(*bank_, "bank");
}

std::size_t ApZmailWorld::isp_of_pid(ap::ProcessId pid) const {
  for (std::size_t i = 0; i < isp_pids_.size(); ++i)
    if (isp_pids_[i] == pid) return i;
  ZMAIL_ASSERT_MSG(false, "pid is not an ISP");
}

EPenny ApZmailWorld::total_epennies() const {
  EPenny total = 0;
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    if (!params_.is_compliant(i)) continue;
    const ApIspProcess& isp = *isps_[i];
    total += isp.avail;
    for (EPenny b : isp.balance) total += b;
  }
  // In-flight email between two compliant ISPs carries one e-penny.
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    if (!params_.is_compliant(i)) continue;
    for (std::size_t j = 0; j < params_.n_isps; ++j) {
      if (i == j || !params_.is_compliant(j)) continue;
      const ap::Channel* ch = sched_.find_channel(isp_pids_[i], isp_pids_[j]);
      if (!ch) continue;
      for (const ap::Message& m : ch->contents())
        if (m.type == kMsgEmail.name()) total += 1;
    }
  }
  return total;
}

}  // namespace zmail::core
