file(REMOVE_RECURSE
  "CMakeFiles/net_email_test.dir/net_email_test.cpp.o"
  "CMakeFiles/net_email_test.dir/net_email_test.cpp.o.d"
  "net_email_test"
  "net_email_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_email_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
