# Empty dependencies file for bench_e10_filter_false_positives.
# This may be replaced when dependencies are built.
