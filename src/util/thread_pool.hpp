// Work-stealing thread pool — the execution substrate of zmail::sweep.
//
// Each worker owns a deque: the owner pushes/pops at the back (LIFO, cache
// warm), idle workers steal from the front of a victim's deque (FIFO, oldest
// work first).  Submission round-robins across workers so a burst of replica
// tasks starts spread out instead of all landing on one queue.
//
// Tasks must not throw — an escaping exception would take the worker thread
// (and the process) down; wrap fallible work and report through the result.
// Determinism note: the pool makes no ordering promises.  Callers that need
// run-to-run identical results (sweep does) must write results into
// pre-assigned slots and reduce in a fixed order after wait_idle().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace zmail::util {

class ThreadPool {
 public:
  // threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  // Enqueues a task; runs on some worker thread.
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished running.
  void wait_idle();

  // Runs fn(i) for each i in [0, n) across the pool, then waits.  With a
  // single worker the loop runs inline on the caller's thread (no handoff
  // overhead), which is also the --threads 1 reference path for the
  // determinism acceptance check.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> deque;
  };

  void worker_loop(std::size_t self);
  bool try_pop(std::size_t self, std::function<void()>& out);
  bool try_steal(std::size_t self, std::function<void()>& out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> next_{0};      // round-robin submission cursor
  std::atomic<std::size_t> queued_{0};    // tasks enqueued, not yet started
  std::atomic<std::size_t> in_flight_{0}; // tasks enqueued or running

  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;  // workers sleep here when starved
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;  // wait_idle() sleeps here
};

}  // namespace zmail::util
