// RSA-style keypair and the paper's NCR/DCR operations (Section 4.3).
//
// The Zmail specification encrypts small protocol payloads both with the
// bank's public key B_b (confidentiality: `buy`/`sell` requests) and with the
// bank's private key R_b (authenticity: `buyreply`/`sellreply`/`request`).
// We model both directions with textbook RSA over a 62-bit modulus wrapped
// in a hybrid envelope: RSA transports a fresh session key, XTEA-CTR carries
// the payload, and HMAC-SHA256 authenticates the whole envelope.
//
// The modulus is deliberately small — this is a *protocol simulation*, not a
// production cryptosystem — but every operation (keygen, wrap, unwrap, sign,
// verify, tamper detection) is real, so the replay/tamper experiments in
// bench_e11 exercise genuine code paths.
#pragma once

#include <optional>

#include "crypto/bytes.hpp"
#include "crypto/sha256.hpp"
#include "util/rng.hpp"

namespace zmail::crypto {

// One half of a keypair: modulus plus one exponent.  NCR with one half is
// reversed by DCR with the complementary half.
struct RsaKey {
  std::uint64_t n = 0;
  std::uint64_t exp = 0;

  bool operator==(const RsaKey&) const = default;
};

struct KeyPair {
  RsaKey pub;   // (n, e)
  RsaKey priv;  // (n, d)
};

// Generate a keypair with two fresh `bits/2`-bit primes (default 62-bit n).
KeyPair generate_keypair(zmail::Rng& rng, int modulus_bits = 62);

// Raw textbook-RSA on a value < n.
std::uint64_t rsa_apply(const RsaKey& key, std::uint64_t m) noexcept;

// Hybrid envelope produced by NCR.
struct Envelope {
  std::uint64_t wrapped_key1 = 0;  // RSA-wrapped session key halves
  std::uint64_t wrapped_key2 = 0;
  std::uint64_t ctr_nonce = 0;
  Bytes ciphertext;
  Digest mac{};

  // Exact wire size, so serialization reserves once.
  std::size_t serialized_size() const noexcept;
  Bytes serialize() const;
  // Overwrites `out` (reusing its capacity) with the wire encoding.
  void serialize_into(Bytes& out) const;
  static std::optional<Envelope> deserialize(const Bytes& wire);
  // Scratch variant: parses into `env`, reusing its ciphertext buffer.
  static bool deserialize_into(const Bytes& wire, Envelope& env);
};

// NCR(k, d): encrypt data item d under key half k (paper notation).
Envelope ncr(const RsaKey& key, const Bytes& plaintext, zmail::Rng& rng);
// Scratch variant: writes into `env`, reusing its ciphertext buffer so
// per-message encryption stops reallocating.  Produces byte-identical
// envelopes to ncr() for the same RNG state.
void ncr_into(const RsaKey& key, const Bytes& plaintext, zmail::Rng& rng,
              Envelope& env);

// DCR(k', x): decrypt with the complementary key half; returns nullopt when
// the MAC fails or the envelope is malformed (tampering / wrong key).
std::optional<Bytes> dcr(const RsaKey& key, const Envelope& env);
// Scratch variant: decrypts into `plain_out` (reusing its capacity);
// returns false — leaving `plain_out` unspecified — on MAC failure or a
// malformed envelope.  `plain_out` must not alias `env.ciphertext`.
bool dcr_into(const RsaKey& key, const Envelope& env, Bytes& plain_out);

// Detached signature over a byte string: RSA on the folded SHA-256 digest.
std::uint64_t rsa_sign(const RsaKey& priv, const Bytes& message) noexcept;
bool rsa_verify(const RsaKey& pub, const Bytes& message,
                std::uint64_t signature) noexcept;

}  // namespace zmail::crypto
