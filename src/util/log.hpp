// Minimal leveled logger.
//
// Simulations are chatty only when asked: the default level is kWarn so that
// benches stay quiet, and tests can raise verbosity per-fixture.
#pragma once

#include <cstdarg>
#include <string>

namespace zmail {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

// printf-style logging with a subsystem tag, e.g. LOGF(kInfo, "bank", ...).
void logf(LogLevel level, const char* tag, const char* fmt, ...)
    __attribute__((format(printf, 3, 4)));

}  // namespace zmail

#define ZMAIL_LOG(level, tag, ...)                                   \
  do {                                                               \
    if (static_cast<int>(level) >=                                   \
        static_cast<int>(::zmail::log_level()))                      \
      ::zmail::logf((level), (tag), __VA_ARGS__);                    \
  } while (0)
