file(REMOVE_RECURSE
  "libzmail_ap.a"
)
