# Empty dependencies file for full_simulation.
# This may be replaced when dependencies are built.
