file(REMOVE_RECURSE
  "CMakeFiles/crypto_xtea_test.dir/crypto_xtea_test.cpp.o"
  "CMakeFiles/crypto_xtea_test.dir/crypto_xtea_test.cpp.o.d"
  "crypto_xtea_test"
  "crypto_xtea_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_xtea_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
