#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <map>
#include <mutex>

namespace zmail {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Component overrides are rare and read-mostly; a mutex-guarded map keeps
// them simple.  The common no-override case is answered by a relaxed flag
// without touching the lock.
std::atomic<bool> g_have_overrides{false};
std::mutex g_override_mutex;
std::map<std::string, LogLevel>& overrides() {
  static std::map<std::string, LogLevel> m;
  return m;
}

std::mutex g_sink_mutex;
LogSink& sink() {
  static LogSink s;
  return s;
}
std::atomic<bool> g_have_sink{false};

const char* level_name(LogLevel l) noexcept {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void set_component_log_level(const std::string& tag, LogLevel level) {
  std::lock_guard<std::mutex> lock(g_override_mutex);
  overrides()[tag] = level;
  g_have_overrides.store(true, std::memory_order_relaxed);
}

void clear_component_log_levels() {
  std::lock_guard<std::mutex> lock(g_override_mutex);
  overrides().clear();
  g_have_overrides.store(false, std::memory_order_relaxed);
}

bool log_enabled(LogLevel level, const char* tag) noexcept {
  LogLevel threshold = g_level.load(std::memory_order_relaxed);
  if (g_have_overrides.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(g_override_mutex);
    const auto& m = overrides();
    const auto it = m.find(tag);
    if (it != m.end()) threshold = it->second;
  }
  return static_cast<int>(level) >= static_cast<int>(threshold);
}

void set_log_sink(LogSink s) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  sink() = std::move(s);
  g_have_sink.store(static_cast<bool>(sink()), std::memory_order_relaxed);
}

void logf(LogLevel level, const char* tag, const char* fmt, ...) {
  if (!log_enabled(level, tag)) return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  std::fprintf(stderr, "[%s] %-8s %s\n", level_name(level), tag, buf);
  if (g_have_sink.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(g_sink_mutex);
    if (sink()) sink()(level, tag, buf);
  }
}

}  // namespace zmail
