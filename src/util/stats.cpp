#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace zmail {

void OnlineStats::add(double x) noexcept {
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& o) noexcept {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double d = o.mean_ - mean_;
  const auto n = static_cast<double>(n_ + o.n_);
  m2_ += o.m2_ + d * d * static_cast<double>(n_) *
                     static_cast<double>(o.n_) / n;
  mean_ += d * static_cast<double>(o.n_) / n;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  ZMAIL_ASSERT(hi > lo && buckets > 0);
}

void Histogram::add(double x) noexcept {
  std::size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;
  }
  ++counts_[i];
  ++total_;
}

void Histogram::merge(const Histogram& o) noexcept {
  ZMAIL_ASSERT_MSG(same_shape(o), "histogram merge requires identical shape");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += o.counts_[i];
  total_ += o.total_;
}

double Histogram::percentile(double p) const noexcept {
  if (total_ == 0) return lo_;
  p = std::clamp(p, 0.0, 100.0);
  const double target = static_cast<double>(total_) * p / 100.0;
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) {
      // Linear interpolation within the bucket.
      const double prev = cum - static_cast<double>(counts_[i]);
      const double frac =
          counts_[i] ? (target - prev) / static_cast<double>(counts_[i]) : 0.0;
      return bucket_lo(i) + frac * width_;
    }
  }
  return hi_;
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}
double Histogram::bucket_hi(std::size_t i) const noexcept {
  return bucket_lo(i) + width_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    std::snprintf(line, sizeof line, "%10.3f..%-10.3f |", bucket_lo(i),
                  bucket_hi(i));
    out += line;
    out.append(bar, '#');
    std::snprintf(line, sizeof line, " %llu\n",
                  static_cast<unsigned long long>(counts_[i]));
    out += line;
  }
  return out;
}

double Sample::percentile(double p) const {
  ZMAIL_ASSERT(!xs_.empty());
  std::vector<double> s = xs_;
  std::sort(s.begin(), s.end());
  const double rank = p / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, s.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return s[lo] + frac * (s[hi] - s[lo]);
}

double Sample::mean() const {
  return xs_.empty() ? 0.0 : sum() / static_cast<double>(xs_.size());
}

double Sample::sum() const {
  double t = 0.0;
  for (double x : xs_) t += x;
  return t;
}

double Sample::min() const {
  ZMAIL_ASSERT(!xs_.empty());
  return *std::min_element(xs_.begin(), xs_.end());
}

double Sample::max() const {
  ZMAIL_ASSERT(!xs_.empty());
  return *std::max_element(xs_.begin(), xs_.end());
}

}  // namespace zmail
