#include "baselines/pipeline.hpp"

namespace zmail::baselines {

const char* filter_verdict_name(FilterVerdict v) noexcept {
  switch (v) {
    case FilterVerdict::kDeliverWhitelisted: return "deliver-whitelisted";
    case FilterVerdict::kRejectBlacklisted: return "reject-blacklisted";
    case FilterVerdict::kRejectContent: return "reject-content";
    case FilterVerdict::kDeliver: return "deliver";
  }
  return "?";
}

FilterVerdict FilterPipeline::classify(const net::EmailMessage& msg) const {
  if (whitelist_.allowed(msg.from))
    return FilterVerdict::kDeliverWhitelisted;
  if (blacklist_.blocked(msg.from))
    return FilterVerdict::kRejectBlacklisted;
  if (content_.is_spam(msg)) return FilterVerdict::kRejectContent;
  return FilterVerdict::kDeliver;
}

}  // namespace zmail::baselines
