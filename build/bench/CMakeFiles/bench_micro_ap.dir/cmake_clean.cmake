file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ap.dir/bench_micro_ap.cpp.o"
  "CMakeFiles/bench_micro_ap.dir/bench_micro_ap.cpp.o.d"
  "bench_micro_ap"
  "bench_micro_ap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
