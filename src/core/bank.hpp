// Central-bank state machine (paper Section 4, process bank).
//
// The bank (1) exchanges e-pennies against the real-money accounts of
// compliant ISPs (Section 4.3), and (2) periodically gathers every
// compliant ISP's credit array and checks pairwise antisymmetry
// (Section 4.4), flagging misbehaving/colluding ISPs.
//
// The paper leaves inter-ISP settlement implicit ("an accounting
// relationship among compliant ISPs, which reconcile payments");
// we make it concrete: after a consistent snapshot, the bank performs a
// *bulk* transfer per ISP pair equal to the netted credit — one ledger
// operation per pair per billing period, which is the whole point of E5's
// comparison with per-message schemes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/audit.hpp"
#include "core/config.hpp"
#include "core/messages.hpp"
#include "core/metrics.hpp"
#include "crypto/nonce.hpp"
#include "crypto/rsa.hpp"

namespace zmail::store {
class WalSink;
}  // namespace zmail::store

namespace zmail::core {

// A detected antisymmetry violation: credit_i[j] + credit_j[i] != 0.
struct CreditViolation {
  std::size_t isp_i = 0;
  std::size_t isp_j = 0;
  EPenny discrepancy = 0;  // credit_i[j] + credit_j[i]
};

class Bank {
 public:
  // `params` is held by reference and must outlive the Bank (see Isp).
  Bank(const ZmailParams& params, crypto::KeyPair keys,
       std::uint64_t rng_seed);

  const crypto::RsaKey& public_key() const noexcept { return keys_.pub; }

  // --- Section 4.3: e-penny trade ---------------------------------------
  // Returns the sealed reply wire bytes to send back to isp[g] (empty when
  // the request is rejected or dropped).  Both handlers are idempotent
  // under duplication: a request whose nonce was already applied re-sends
  // the cached reply without minting/burning again, and a delayed duplicate
  // of an older exchange is dropped — so transport-level duplicates and
  // ISP retries can never double-credit (NCR/DCR replay safety).
  crypto::Bytes on_buy(std::size_t g, const crypto::Bytes& wire);
  crypto::Bytes on_sell(std::size_t g, const crypto::Bytes& wire);

  // --- Section 4.4: snapshot / verification ------------------------------
  // `canrequest ->` action: emits one sealed request per compliant ISP.
  // Returns pairs of (isp index, wire bytes); empty when a round is open.
  std::vector<std::pair<std::size_t, crypto::Bytes>> start_snapshot();

  // `rcv reply` action.  When the last outstanding report arrives, runs the
  // pairwise verification and bulk settlement automatically.  Idempotent:
  // a duplicated or replayed report is counted stale and ignored.
  void on_reply(std::size_t g, const crypto::Bytes& wire);

  // Re-seals the open round's request for every compliant ISP that has not
  // reported yet (empty when no round is open).  The snapshot-recovery
  // path: a lost request would otherwise leave the round open forever.
  // ISPs that already reported bumped their seq, so a re-request cannot
  // re-quiesce them (it would look stale).
  std::vector<std::pair<std::size_t, crypto::Bytes>> resend_requests();

  bool round_open() const noexcept { return !canrequest_; }
  std::uint64_t seq() const noexcept { return seq_; }

  // Violations found by the most recent completed verification round.
  const std::vector<CreditViolation>& last_violations() const noexcept {
    return last_violations_;
  }

  // ISP pairs whose *cumulative* inconsistency has been nonzero for two or
  // more consecutive rounds.  Single-round skew (an ISP that quiesced late
  // because its snapshot request had to be re-sent) self-cancels in the
  // next round; a free-riding pair drifts monotonically and stays counted.
  std::uint64_t persistent_drift_pairs() const noexcept {
    return persistent_drift_pairs_;
  }

  // Attaches an audit journal; all monetary and verification events are
  // recorded there (nullptr detaches).  The journal must outlive the bank.
  void attach_journal(AuditJournal* journal) noexcept { journal_ = journal; }
  AuditJournal* journal() const noexcept { return journal_; }

  // --- Durability (src/store) ---------------------------------------------
  // Mirror of the Isp durability contract (see isp.hpp): with a sink
  // attached every mutating handler logs its inputs, and replay re-invokes
  // the handler with the sink *and the audit journal* detached — the
  // journal recorded those events the first time around — discarding
  // returned reply wires (they were sent pre-crash; ISP retries recover a
  // lost one via the idempotency ledger's cached replies).  The RSA keypair
  // is construction input, not serialized state.
  enum class WalOp : std::uint8_t {
    kOnBuy = 1,
    kOnSell,
    kOnReply,
    kStartSnapshot,
    kResendRequests,
  };
  void attach_wal(store::WalSink* wal) noexcept { wal_ = wal; }
  store::WalSink* wal() const noexcept { return wal_; }
  crypto::Bytes serialize_state() const;
  bool restore_state(const crypto::Bytes& state);
  void apply_wal_record(std::uint8_t op, const crypto::Bytes& payload);

  // --- Introspection ------------------------------------------------------
  Money account(std::size_t g) const { return accounts_.at(g); }
  void set_account(std::size_t g, Money v) { accounts_.at(g) = v; }
  const BankMetrics& metrics() const noexcept { return metrics_; }
  // Net e-pennies currently minted into the ISP world.
  EPenny epennies_outstanding() const noexcept {
    return metrics_.epennies_minted - metrics_.epennies_burned;
  }

 private:
  // Idempotency record for one ISP's most recent applied trade.  ISP nonces
  // carry a strictly increasing counter (crypto::NonceGenerator), and each
  // ISP has at most one buy and one sell outstanding, so "counter <= the
  // highest applied" identifies every duplicate; the latest one also gets
  // its cached reply replayed so a lost reply is recoverable by retry.
  struct TradeLedger {
    bool any_applied = false;
    std::uint64_t applied_hi = 0;        // highest applied nonce counter
    crypto::Nonce last_nonce;            // nonce of the cached reply
    crypto::Bytes last_reply;            // sealed wire, replayed on duplicate
  };

  void verify_round();
  void audit(AuditKind kind, std::size_t a, std::size_t b = 0,
             std::int64_t amount = 0) {
    if (journal_) journal_->record(AuditEvent{kind, seq_, a, b, amount});
  }
  // WAL logging helper (no-op when no sink is attached; bank_persist.cpp).
  void log_op(WalOp op, const crypto::Bytes& payload);

  AuditJournal* journal_ = nullptr;
  store::WalSink* wal_ = nullptr;
  const ZmailParams& params_;
  crypto::KeyPair keys_;
  Rng rng_;

  std::vector<Money> accounts_;
  std::vector<TradeLedger> buy_ledger_;   // per-ISP buy idempotency
  std::vector<TradeLedger> sell_ledger_;  // per-ISP sell idempotency
  std::vector<std::vector<EPenny>> verify_;  // verify[i][g] = credit_g[i]
  // Cumulative per-pair inconsistency across rounds (upper triangle,
  // drift_[i][j] for i < j) and how many consecutive rounds it has been
  // nonzero.  A recovered snapshot (one ISP quiesced late after a lost
  // request) skews a pair by +/-d across two adjacent rounds, which nets to
  // zero here; genuine misbehaviour accumulates and keeps the streak alive.
  std::vector<std::vector<EPenny>> drift_;
  std::vector<std::vector<std::uint32_t>> drift_streak_;
  std::uint64_t persistent_drift_pairs_ = 0;
  std::vector<bool> reported_;
  std::uint64_t seq_ = 0;
  std::size_t total_ = 0;  // outstanding reports this round
  bool canrequest_ = true;

  std::vector<CreditViolation> last_violations_;
  BankMetrics metrics_;
  // Scratch envelope/plaintext reused across every seal/unseal (see
  // core::seal_into) so the bank's message handling stops reallocating.
  crypto::Envelope env_scratch_;
  crypto::Bytes plain_scratch_;
};

}  // namespace zmail::core
