file(REMOVE_RECURSE
  "CMakeFiles/zmail_baselines.dir/bayes.cpp.o"
  "CMakeFiles/zmail_baselines.dir/bayes.cpp.o.d"
  "CMakeFiles/zmail_baselines.dir/blacklist.cpp.o"
  "CMakeFiles/zmail_baselines.dir/blacklist.cpp.o.d"
  "CMakeFiles/zmail_baselines.dir/challenge.cpp.o"
  "CMakeFiles/zmail_baselines.dir/challenge.cpp.o.d"
  "CMakeFiles/zmail_baselines.dir/pipeline.cpp.o"
  "CMakeFiles/zmail_baselines.dir/pipeline.cpp.o.d"
  "CMakeFiles/zmail_baselines.dir/pow_mail.cpp.o"
  "CMakeFiles/zmail_baselines.dir/pow_mail.cpp.o.d"
  "CMakeFiles/zmail_baselines.dir/shred.cpp.o"
  "CMakeFiles/zmail_baselines.dir/shred.cpp.o.d"
  "libzmail_baselines.a"
  "libzmail_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zmail_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
