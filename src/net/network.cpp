#include "net/network.hpp"

#include "trace/trace.hpp"
#include "util/assert.hpp"

namespace zmail::net {

Network::Network(sim::Simulator& simulator, Rng rng, LatencyModel latency)
    : sim_(simulator), rng_(rng), latency_(latency) {}

HostId Network::add_host(std::string name, HandlerFn handler) {
  ZMAIL_ASSERT(handler != nullptr);
  hosts_.push_back(Host{std::move(name), std::move(handler), {}});
  bytes_to_.push_back(0);
  return hosts_.size() - 1;
}

void Network::bind_domain(const std::string& domain, HostId host) {
  ZMAIL_ASSERT(host < hosts_.size());
  mx_[domain] = host;
}

HostId Network::resolve(const std::string& domain) const {
  const auto it = mx_.find(domain);
  return it == mx_.end() ? kNoHost : it->second;
}

SendStatus Network::send(HostId from, HostId to, MsgType type,
                         crypto::Bytes&& payload) {
  if (from >= hosts_.size() || to >= hosts_.size()) {
    ++send_errors_;
    return SendStatus::kUnknownHost;
  }
  if (type == kMsgInvalid) {
    ++send_errors_;
    return SendStatus::kInvalidType;
  }
  const std::size_t size = payload.size() + type.name().size() + 16;
  ++datagrams_;
  bytes_ += size;
  bytes_to_[to] += size;

  if (faults_ == nullptr) {
    schedule_copy(from, to, type, std::move(payload), false, 0);
    return SendStatus::kOk;
  }

  const FaultInjector::Fate fate = faults_->on_send(sim_.now(), from, to, type);
  if (fate.drop) {
    trace::instant(trace::Ev::kNetDrop, trace::current(),
                   static_cast<std::uint16_t>(from),
                   static_cast<std::uint64_t>(to));
    return SendStatus::kFaultDropped;
  }
  if (fate.corrupt) faults_->corrupt_payload(payload);
  if (fate.truncate) faults_->truncate_payload(payload);
  for (std::uint32_t copy = 1; copy < fate.copies; ++copy) {
    crypto::Bytes dup = payload;  // extra copies pay a real allocation
    const std::size_t dup_size = dup.size() + type.name().size() + 16;
    ++datagrams_;
    bytes_ += dup_size;
    bytes_to_[to] += dup_size;
    schedule_copy(from, to, type, std::move(dup), fate.reorder,
                  fate.extra_delay);
  }
  schedule_copy(from, to, type, std::move(payload), fate.reorder,
                fate.extra_delay);
  return SendStatus::kOk;
}

void Network::schedule_copy(HostId from, HostId to, MsgType type,
                            crypto::Bytes&& payload, bool skip_fifo,
                            sim::Duration extra_delay) {
  sim::SimTime deliver_at = sim_.now() + latency_.sample(rng_) + extra_delay;
  // Enforce per-(from,to) FIFO: never deliver before an earlier datagram.
  // A reorder fault skips both the clamp and the watermark update, so this
  // copy may overtake (or be overtaken by) its neighbours.
  auto& fifo = hosts_[to].last_from;
  if (from >= fifo.size()) fifo.resize(from + 1, 0);
  if (!skip_fifo) {
    if (deliver_at <= fifo[from]) deliver_at = fifo[from] + 1;
    fifo[from] = deliver_at;
  }

  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(pending_.size());
    pending_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Datagram& d = pending_[slot];
  d.type = type;
  d.payload = std::move(payload);
  d.from = from;
  d.to = to;
  // schedule_copy runs synchronously inside send(), so the sender's causal
  // context is still pinned; carry it to the delivery side.
  d.trace = trace::current();
  if (d.trace != 0)
    trace::instant(trace::Ev::kNetSend, d.trace,
                   static_cast<std::uint16_t>(from),
                   static_cast<std::uint64_t>(to));
  sim_.schedule_at(deliver_at, [this, slot] { deliver(slot); });
}

void Network::deliver(std::uint32_t slot) {
  if (faults_ != nullptr) {
    const sim::SimTime up = faults_->down_until(sim_.now(), pending_[slot].to);
    if (up != 0) {
      if (faults_->plan().outage_preserves_inflight) {
        // The host buffers across the crash: retry delivery at restart.
        faults_->note_outage_deferral();
        sim_.schedule_at(up, [this, slot] { deliver(slot); });
        return;
      }
      faults_->note_outage_loss();
      trace::instant(trace::Ev::kNetDrop, pending_[slot].trace,
                     static_cast<std::uint16_t>(pending_[slot].to),
                     static_cast<std::uint64_t>(pending_[slot].from));
      pending_[slot].payload = crypto::Bytes{};
      free_slots_.push_back(slot);
      return;
    }
  }
  // Move the datagram out before invoking the handler: a reentrant send()
  // may grow pending_ and would invalidate a reference into it.
  Datagram d = std::move(pending_[slot]);
  free_slots_.push_back(slot);
  trace::Scope scope(d.trace);
  if (d.trace != 0)
    trace::instant(trace::Ev::kNetDeliver, d.trace,
                   static_cast<std::uint16_t>(d.to),
                   static_cast<std::uint64_t>(d.from));
  hosts_[d.to].handler(d);
}

}  // namespace zmail::net
