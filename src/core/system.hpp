// ZmailSystem — the timed, end-to-end rendition of the protocol and the
// library's main public facade.
//
// It wires together:
//   - one core::Isp per compliant ISP and a lightweight legacy host per
//     non-compliant ISP (plain SMTP, no accounting),
//   - the core::Bank,
//   - a latency-modelled Network over the discrete-event Simulator,
//   - real SMTP dialogues for every inter-ISP message (the byte counts feed
//     the ISP-overhead experiment),
//   - periodic machinery: daily `sent` resets, bank-trade polling, and the
//     Section 4.4 snapshot with its 10-minute quiesce.
//
// Typical use (see examples/quickstart.cpp):
//   ZmailSystem sys(params, seed);
//   sys.enable_daily_resets();
//   sys.send_email(addr_a, addr_b, "hi", "body");
//   sys.run_for(sim::kHour);
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/bank.hpp"
#include "core/config.hpp"
#include "core/isp.hpp"
#include "net/network.hpp"
#include "net/smtp.hpp"
#include "sim/simulator.hpp"
#include "telemetry/registry.hpp"
#include "util/stats.hpp"

namespace zmail::core {

// Observed state of a non-compliant (legacy, plain-SMTP) ISP.
struct LegacyHostStats {
  std::uint64_t emails_sent = 0;
  std::uint64_t emails_received = 0;
  std::uint64_t emails_received_spam = 0;  // by ground truth
};

// Unified result of every facade send: the protocol outcome enum plus
// per-recipient accepted/refused counts, so single- and multi-recipient
// sends report through one type.  Converts implicitly to SendResult, which
// keeps `switch (sys.send_email(...))` and `r == SendResult::kNoBalance`
// call sites compiling unchanged.
struct SendOutcome {
  // For a single-recipient send, the protocol outcome.  For a fan-out,
  // the first refusal if any recipient was refused, otherwise the first
  // recipient's outcome.
  SendResult result = SendResult::kDeliveredLocally;
  std::size_t sent = 0;     // paid, free, buffered, or delivered locally
  std::size_t refused = 0;  // no balance / daily limit

  bool all_sent() const noexcept { return refused == 0; }
  constexpr operator SendResult() const noexcept { return result; }

  // Classification used by both send paths; mirrors the historical
  // MultiSendResult semantics (quarantine blocks the sender before any
  // recipient is considered, so it is not a per-recipient refusal — the
  // enum still reports it).
  static constexpr bool counts_as_refused(SendResult r) noexcept {
    return r == SendResult::kNoBalance || r == SendResult::kDailyLimit;
  }
  static constexpr SendOutcome from(SendResult r) noexcept {
    return counts_as_refused(r) ? SendOutcome{r, 0, 1} : SendOutcome{r, 1, 0};
  }
};

// One shard's view of a partitioned world (see core::ShardedSystem and
// sim::ShardedSimulator).  A sliced ZmailSystem registers EVERY global host
// id — so host-index arithmetic, wire formats, and bank bookkeeping are
// unchanged — but owns state (Isp/Population, Bank, stores, handlers) only
// for the hosts this shard is responsible for; the rest become remote
// routes.  Ownership rule: ISP i lives on shard i % shards, the bank on
// shard 0.
struct ShardSlice {
  std::size_t shard = 0;
  std::size_t shards = 1;
  // Seed for pair-keyed latency and fault draws (partition-independent
  // randomness; see util/rng.hpp pair_keyed_rng).
  std::uint64_t keyed_seed = 0;

  static std::size_t owner_of_isp(std::size_t isp, std::size_t shards) {
    return isp % shards;
  }
  static std::size_t owner_of_bank(std::size_t /*shards*/) { return 0; }
};

class ZmailSystem {
 public:
  explicit ZmailSystem(ZmailParams params, std::uint64_t seed = 42);
  // Slice-mode construction: this instance is shard `slice.shard` of a
  // `slice.shards`-way partition.  Use ShardedSystem instead of calling
  // this directly; the facade wires the remote routes and hooks.
  ZmailSystem(ZmailParams params, std::uint64_t seed, const ShardSlice& slice);

  // --- Mail ----------------------------------------------------------------
  // Sends from any user (compliant or legacy) to any user.  For compliant
  // senders this runs the full Section 4.1 action; for legacy senders the
  // mail is free.  Returns the protocol outcome.
  SendOutcome send_email(const net::EmailAddress& from,
                         const net::EmailAddress& to, std::string subject,
                         std::string body,
                         net::MailClass truth = net::MailClass::kLegitimate);
  SendOutcome send_email(net::EmailMessage msg);

  // Multi-recipient send: one e-penny per recipient (RFC-821 RCPT fan-out
  // with Zmail's per-receiver payment semantics).  Returns the per-recipient
  // counts.
  SendOutcome send_email_multi(const net::EmailMessage& msg);

  // Deprecated alias from before the SendOutcome unification; the fields
  // (`sent`, `refused`) carried over unchanged.
  using MultiSendResult = SendOutcome;

  // --- User e-penny trades (Section 4.2) -----------------------------------
  bool buy_epennies(const net::EmailAddress& user, EPenny n);
  bool sell_epennies(const net::EmailAddress& user, EPenny n);

  // --- Deployment dynamics (Section 5) --------------------------------------
  // Flips a legacy ISP to compliant at runtime: the bank updates the
  // published compliant array (visible to all parties immediately — the
  // paper's broadcast) and the ISP starts running Zmail with fresh state.
  // Must be called while no mail is in flight (e.g. between simulated
  // days); billing-period boundaries are where real deployments would do
  // this, and it keeps the first snapshot after the flip consistent.
  void make_compliant(IspId isp);
  // Slice-mode halves of make_compliant, driven by ShardedSystem: the owner
  // shard constructs the ISP (joining the bank's billing period via
  // `bank_seq`, read on the bank shard); every other shard just flips its
  // params copy so compliance checks agree world-wide.
  void make_compliant_owned(IspId isp, std::uint64_t bank_seq);
  void adopt_compliance(IspId isp);

  // --- Periodic machinery ---------------------------------------------------
  void enable_daily_resets();
  void enable_bank_trading(sim::Duration poll = 5 * sim::kMinute);
  void enable_periodic_snapshots(sim::Duration period);
  // One snapshot round now (requests go out over the network).
  void start_snapshot();

  // --- Telemetry (src/telemetry; off by default, like tracing) --------------
  // Registers one time-series sampler per owned entity signal (econ, core,
  // store scopes plus engine-only sim/net series) and schedules a read-only
  // sampling tick every cfg.sample_period of simulated time.  The tick draws
  // no randomness and mutates nothing, so enabling telemetry never changes
  // what the world does.  Call once, before the run.
  void enable_telemetry(const telemetry::TelemetryConfig& cfg);
  telemetry::TelemetryRegistry* telemetry() noexcept {
    return telemetry_.get();
  }
  const telemetry::TelemetryRegistry* telemetry() const noexcept {
    return telemetry_.get();
  }

  // --- Fault tolerance ------------------------------------------------------
  // Attaches a deterministic fault injector to the network (nullptr
  // detaches).  Not owned; must outlive the system or be detached.  For the
  // zero-sum invariants to survive lossy plans, enable
  // params.reliable_email_transport and params.retry first.  With the
  // durable store on (params.store.enabled), every HostOutage in the plan
  // becomes a real crash: at the window's end the party's in-memory state
  // is wiped and rebuilt from its latest snapshot plus WAL-tail replay.
  void attach_faults(net::FaultInjector* injector);
  // Reliable-transport transfers still awaiting their ack (0 when idle or
  // when reliable_email_transport is off).
  std::size_t pending_transfers() const noexcept { return transfers_.size(); }

  // --- Durable store (params.store; see src/store) --------------------------
  // Crashes `host` (an ISP index or bank_host()) for `down_for`: the
  // network isolates it for the window, and at restart its state is
  // rebuilt from disk.  Requires params.store.enabled.  Attaches an
  // internal outage-only fault injector when none is attached yet.
  void crash_host(std::size_t host, sim::Duration down_for);
  // Wipes and rebuilds one party from snapshot + WAL replay, right now.
  // Normally invoked by the crash machinery; public for tests/benches.
  void recover_host(std::size_t host);
  // Forces a checkpoint (snapshot + WAL truncation) of one party / all
  // parties.  No-ops for hosts without a store.
  void checkpoint_host(std::size_t host);
  void checkpoint_all();
  // The party's Checkpointer, or nullptr when the store is off (or the
  // host is legacy).  Bank lives at bank_index().
  store::Checkpointer* host_store(std::size_t host) noexcept {
    return host < stores_.size() ? stores_[host].get() : nullptr;
  }
  std::size_t bank_index() const noexcept { return bank_host(); }
  // Crash recoveries performed via the durable store.
  std::uint64_t state_recoveries() const noexcept { return state_recoveries_; }

  // Field-wise sum of every open store's checkpoint + WAL counters (all
  // zeros when the durable store is off).  Feeds the obs v2 snapshot.
  struct StoreTotals {
    std::uint64_t checkpoints = 0;
    std::uint64_t snapshot_bytes = 0;  // Σ last_snapshot_bytes over stores
    std::uint64_t wal_records_truncated = 0;
    std::uint64_t wal_records_appended = 0;
    std::uint64_t wal_bytes_appended = 0;
    std::uint64_t wal_syncs = 0;
    std::uint64_t wal_fsyncs = 0;
  };
  StoreTotals store_totals() const;

  // --- Time ----------------------------------------------------------------
  void run_for(sim::Duration d);
  void run_until_quiet(sim::Duration max = 365 * sim::kDay);
  sim::SimTime now() const { return sim_.now(); }
  sim::Simulator& simulator() noexcept { return sim_; }
  const sim::Simulator& simulator() const noexcept { return sim_; }

  // --- Shard slice (see ShardSlice above; all no-ops on whole worlds) ------
  bool sliced() const noexcept { return slice_.has_value(); }
  const ShardSlice* slice() const noexcept {
    return slice_ ? &*slice_ : nullptr;
  }
  // Does this instance own (hold the state and handler of) global host id
  // `host`?  Whole worlds own everything.
  bool owns_host(std::size_t host) const noexcept {
    if (!slice_) return true;
    if (host == bank_host())
      return slice_->shard == ShardSlice::owner_of_bank(slice_->shards);
    return slice_->shard == ShardSlice::owner_of_isp(host, slice_->shards);
  }
  bool owns_bank() const noexcept { return bank_ != nullptr; }
  // Quiesce timeouts for snapshot rounds must fire on the shard owning the
  // ISP, but the round (and its common absolute deadline) starts on the
  // bank shard; the facade installs this hook to carry (isp, deadline)
  // across that gap via the engine mailbox.
  using RemoteQuiesceFn = std::function<void(std::size_t isp, sim::SimTime at)>;
  void set_remote_quiesce_hook(RemoteQuiesceFn fn) {
    remote_quiesce_ = std::move(fn);
  }
  // Owner-side landing point for the hook: runs the same check the local
  // schedule would have.
  void quiesce_timeout(std::size_t isp_index);

  // --- Introspection ---------------------------------------------------------
  const ZmailParams& params() const noexcept { return params_; }
  bool is_compliant(IspId i) const { return params_.is_compliant(i.index()); }
  Isp& isp(IspId i);
  const Isp& isp(IspId i) const;
  // Typed row view of one user at one compliant ISP — shorthand for
  // isp(i).user(u); both ids convert implicitly from indices.
  UserRef user(IspId i, UserId u) { return isp(i).user(u); }
  ConstUserRef user(IspId i, UserId u) const { return isp(i).user(u); }
  Bank& bank() noexcept { return *bank_; }
  const Bank& bank() const noexcept { return *bank_; }
  net::Network& network() noexcept { return net_; }
  const net::Network& network() const noexcept { return net_; }
  const LegacyHostStats& legacy_stats(IspId i) const;
  Rng& rng() noexcept { return rng_; }

  // Per-compliant-ISP SMTP bytes processed (inbound), for E3.
  std::uint64_t smtp_bytes_received(IspId isp) const {
    return smtp_bytes_in_.at(isp.index());
  }

  // --- Metrics snapshot (obs layer; see src/core/obs.hpp) -------------------
  // Field-wise sum of every compliant ISP's counters.
  IspMetrics total_isp_metrics() const;
  // Aggregate of the legacy (non-compliant) hosts.
  LegacyHostStats total_legacy_stats() const;

  // End-to-end delivery latency of every inter-ISP email, in seconds
  // (submission at the sender's ISP to delivery at the recipient's ISP;
  // includes quiesce buffering).  Populated automatically.
  const Sample& delivery_latency() const noexcept { return latency_; }

  // Spam filter used by NonCompliantPolicy::kFilter (installed on every
  // compliant ISP).
  void set_spam_filter(std::function<bool(const net::EmailMessage&)> f);

  // --- Conservation invariants (checked by tests after run_until_quiet) ----
  // All e-pennies everywhere: user balances + avail pools + buffered sends +
  // e-pennies travelling inside in-flight paid emails.
  EPenny total_epennies() const;
  EPenny epennies_in_flight() const noexcept { return in_flight_paid_; }
  // Σ ISP bank accounts + Σ user real-money accounts + Σ ISP tills.  On a
  // slice: only this shard's share (bank accounts count on the bank shard,
  // tills and user accounts on their owner) — sum across shards for the
  // global figure.
  Money total_real_money() const;
  // Initial e-penny endowment of the compliant ISPs this instance owns
  // (all of them on a whole world).
  EPenny initial_endowment_owned() const;
  // True when supply equals holdings: minted - burned == total_epennies().
  // Per-shard escrow drift makes this meaningless on a slice mid-run; use
  // ShardedSystem::conservation_holds for the global check.
  bool conservation_holds() const;

 private:
  ZmailSystem(ZmailParams params, std::uint64_t seed,
              std::optional<ShardSlice> slice);

  struct LegacyHost {
    LegacyHostStats stats;
  };

  // One paid email riding the reliable (ack + retransmit) transport.
  struct PendingTransfer {
    std::size_t from_isp = 0;
    std::size_t to_isp = 0;
    UserId sender_user = kInvalidUser;
    std::uint64_t epoch = 0;       // sender's snapshot seq at first transmit
    std::uint32_t attempts = 0;    // transmissions so far
    crypto::Bytes payload;         // clean email bytes kept for retransmit
    std::uint64_t trace_id = 0;    // causal id of the email riding inside
  };

  void on_datagram(std::size_t host, const net::Datagram& d);
  void deliver_via_smtp(std::size_t to_isp, std::size_t from_isp,
                        const crypto::Bytes& payload);
  void pump_isp(std::size_t i);
  void pump_all();
  std::size_t bank_host() const noexcept { return params_.n_isps; }

  // Durable store plumbing (all no-ops when params_.store.enabled is off).
  void open_store(std::size_t host);
  void rebuild_from_store(std::size_t host);
  void maybe_checkpoint(std::size_t host);

  // Reliable email transport (ARQ): framing, retransmit timer, dedupe.
  void start_transfer(std::size_t from_isp, std::size_t to_isp,
                      crypto::Bytes&& email, UserId sender_user);
  void transmit_transfer(std::uint64_t id);
  void on_retransmit_timer(std::uint64_t id);
  void abandon_transfer(std::uint64_t id);
  void handle_reliable_email(std::size_t host, const net::Datagram& d);
  void handle_email_ack(const net::Datagram& d);
  // Retry/backoff recovery poll (armed when params.retry.enabled).
  void poll_fault_recovery();
  // Arm the common-deadline quiesce timeout for one snapshot request —
  // locally when this shard owns the ISP, via the remote hook otherwise.
  void schedule_quiesce_timeout(std::size_t isp_index, sim::SimTime deadline);

  ZmailParams params_;
  Rng rng_;
  crypto::KeyPair bank_keys_;
  std::uint64_t seed_;
  sim::Simulator sim_;
  net::Network net_;
  std::optional<ShardSlice> slice_;
  RemoteQuiesceFn remote_quiesce_;

  std::vector<std::unique_ptr<Isp>> isps_;       // null for legacy slots
  std::vector<LegacyHost> legacy_;               // indexed like isps_
  std::unique_ptr<Bank> bank_;

  std::vector<std::uint64_t> smtp_bytes_in_;
  Sample latency_;
  // Telemetry (null when off — the off path constructs and schedules
  // nothing).  telem_latency_[i]: histogram channel for deliveries INTO
  // ISP i, kNoChannel for unowned/legacy slots.
  std::unique_ptr<telemetry::TelemetryRegistry> telemetry_;
  std::vector<std::size_t> telem_latency_;
  EPenny in_flight_paid_ = 0;
  bool snapshots_enabled_ = false;

  // Durable store state (all empty/null when params_.store.enabled is off,
  // so disabled runs construct nothing and schedule nothing extra).
  std::vector<std::unique_ptr<store::Checkpointer>> stores_;  // bank last
  std::vector<std::uint64_t> isp_ctor_seed_;  // per-slot construction seeds
  std::function<bool(const net::EmailMessage&)> spam_filter_;  // reinstalled
  net::FaultInjector* faults_ = nullptr;  // whatever attach_faults() saw last
  std::unique_ptr<net::FaultInjector> crash_faults_;  // crash_host() fallback
  std::uint64_t state_recoveries_ = 0;
  std::uint64_t bank_ckpt_seq_ = 0;  // bank round already checkpointed

  // Reliable-transport state (empty/idle unless reliable_email_transport).
  std::unordered_map<std::uint64_t, PendingTransfer> transfers_;
  std::unordered_set<std::uint64_t> seen_transfers_;  // receiver dedupe
  std::uint64_t next_transfer_id_ = 1;
  // Snapshot recovery: deadline of the most recent round's requests; the
  // recovery poll re-requests silent ISPs once it passes.
  sim::SimTime snapshot_deadline_ = 0;
};

}  // namespace zmail::core
