// Cross-system invariant auditor: the zero-sum safety net.
//
// The paper's correctness argument is that no sequence of sends, trades,
// snapshots, or *faults* can create or destroy value.  The auditor turns
// that argument into executable checks over a live ZmailSystem:
//
//   1. e-penny conservation — every e-penny everywhere (user balances,
//      avail pools, quiesce buffers, in-flight escrow) equals the initial
//      endowment plus the bank's net mint.  Any double-mint from a replayed
//      NCR, double-burn from a duplicated DCR, or double-credit from a
//      duplicated email breaks this equation.
//   2. real-money conservation — dollars only move between accounts
//      (user <-> till <-> bank) or into the bank's vault as backing for
//      outstanding e-pennies; accounts + backing is constant.
//   3. limit safety — no user exceeds the daily limit or goes negative;
//      pools and escrows never go negative.
//   4. nonce non-reuse — the bank never applies the same trade nonce twice;
//      absorbed duplicates are reported (replays_absorbed) and any
//      re-application would surface in (1).
//   5. credit consistency (optional) — no ISP pair sits in *persistent*
//      credit drift (cumulative pairwise inconsistency nonzero for two or
//      more consecutive rounds).  Single-round skew is legitimate under
//      faults — a re-sent snapshot request makes one ISP quiesce late, so a
//      peer's new-epoch mail lands in its old-epoch array and the pair reads
//      -d then +d across adjacent rounds.  Disable via
//      expect_consistent(false) when a bench injects misbehaviour on purpose.
//
// Run it continuously in tests (`run_continuously`) or behind `--audit` in
// benches; failures are collected, not thrown, so a sweep can report the
// violation count (which must be zero).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/federated_system.hpp"
#include "core/system.hpp"

namespace zmail::core {

struct InvariantReport {
  std::uint64_t checks = 0;       // check_now() passes completed
  std::uint64_t violations = 0;   // individual failed assertions
  std::uint64_t replays_absorbed = 0;  // duplicate trades/emails deduped
  std::vector<std::string> messages;   // first few failures, for humans

  bool ok() const noexcept { return violations == 0; }
};

class InvariantAuditor {
 public:
  // Captures the real-money baseline now; the system must outlive the
  // auditor.
  explicit InvariantAuditor(ZmailSystem& sys);

  // A bench that injects ISP misbehaviour *expects* flagged pairs.
  void expect_consistent(bool v) noexcept { expect_consistent_ = v; }

  // Runs every invariant once, recording failures in the report.
  void check_now();

  // Schedules check_now on the system's simulator every `period`.
  void run_continuously(sim::Duration period);

  const InvariantReport& report() const noexcept { return report_; }

  // Aborts (ZMAIL_ASSERT) on the first recorded violation; for tests.
  void assert_ok() const;

 private:
  void fail(std::string msg);

  ZmailSystem* sys_;
  Money initial_real_money_;
  bool expect_consistent_ = true;
  InvariantReport report_;
};

// Federation-wide zero-sum auditor: the same safety net over a
// FederatedZmailSystem.  Beyond the single-bank invariants (e-penny
// conservation against the summed mint of all member banks, real-money
// conservation against the federation's vault backing) it checks the
// properties only a federation can violate:
//
//   - clearing accounts net to zero — at every globally idle cut (all
//     rounds closed, no inter-bank wire awaiting an ack) the pairwise
//     clearing entries are antisymmetric (pair(a,b) + pair(b,a) == 0) and
//     the net positions sum to zero across banks;
//   - no round double-applies — after any crash/WAL-replay the banks'
//     round seqs agree at idle cuts, and duplicate inter-bank deliveries
//     were absorbed by the ledgers (tallied, not re-applied; a
//     re-application would break antisymmetry or conservation above).
//
// Mid-round cuts legitimately hold asymmetric partial state (one side of
// a pair combined, the other still waiting on a clearing wire), so the
// pairwise checks are gated on federation().idle(); the conservation
// checks run unconditionally.
class FederationAuditor {
 public:
  explicit FederationAuditor(FederatedZmailSystem& sys);

  void check_now();
  void run_continuously(sim::Duration period);
  const InvariantReport& report() const noexcept { return report_; }
  void assert_ok() const;

 private:
  void fail(std::string msg);

  FederatedZmailSystem* sys_;
  Money initial_real_money_;
  InvariantReport report_;
};

}  // namespace zmail::core
