// Simulated host-to-host network with latency, bound to the event simulator.
//
// Hosts (ISP mail servers, the bank) register a handler for typed datagrams;
// `send` schedules delivery after a sampled latency.  Delivery is reliable
// and per-pair FIFO (matching the AP channel abstraction); the byte counters
// feed the ISP-overhead experiment (E3).
//
// Hot-path layout (see DESIGN.md "Hot path"): a datagram's payload is moved
// into a pooled pending slot, the scheduled delivery closure captures only
// {network, slot} (fits InlineEvent's inline buffer), and delivery moves the
// datagram back out for the handler — the payload bytes are never copied
// between send() and the handler.  Per-pair FIFO clamps live in flat
// vectors indexed by host id; only MX names pay for hashing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "crypto/bytes.hpp"
#include "net/faults.hpp"
#include "net/msg_type.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace zmail::net {

constexpr HostId kNoHost = static_cast<HostId>(-1);

// Typed result of Network::send.  Unknown hosts and untyped datagrams are
// reported (and counted) instead of aborting, mirroring the bytes_sent_to
// 0-for-unknown convention; kFaultDropped means an attached FaultInjector
// swallowed the datagram at send time (partition, outage, or drop fault).
enum class SendStatus : std::uint8_t {
  kOk = 0,
  kUnknownHost,
  kInvalidType,
  kFaultDropped,
};

struct Datagram {
  MsgType type;
  crypto::Bytes payload;
  HostId from = kNoHost;
  HostId to = kNoHost;
  // Causal context captured at send time (zmail::trace); restored around
  // the delivery handler so receive-side work joins the sender's chain.
  std::uint64_t trace = 0;
};

// Latency model: base plus exponential jitter.
struct LatencyModel {
  sim::Duration base = 20 * sim::kMillisecond;
  sim::Duration jitter_mean = 10 * sim::kMillisecond;

  sim::Duration sample(Rng& rng) const {
    if (jitter_mean <= 0) return base;  // jitter-free links draw no RNG
    return base + sim::from_seconds(
                      rng.exponential(1.0 / sim::to_seconds(jitter_mean)));
  }

  // Smallest latency any sample can produce.  Jitter is additive and
  // non-negative, so this is exactly `base`.  The sharded engine derives
  // its conservative lookahead window from this bound: a message sent
  // inside window [w, w+L) arrives no earlier than w+L, so draining
  // mailboxes at window edges can never deliver into a shard's past.
  sim::Duration min_latency() const noexcept { return base; }
};

class Network {
 public:
  using HandlerFn = std::function<void(const Datagram&)>;

  Network(sim::Simulator& simulator, Rng rng,
          LatencyModel latency = LatencyModel{});

  // Registers a host; the handler runs at delivery time.
  HostId add_host(std::string name, HandlerFn handler);

  // Registers a host that lives on another shard.  It occupies a normal id
  // slot (so host-id arithmetic is partition-independent) but has no local
  // handler; sends toward it are handed to the remote route with a fully
  // resolved delivery time (latency sampled and per-pair FIFO clamped at
  // the source — the source shard is the only sender from `from`, so the
  // watermark is complete there).
  HostId add_remote_host(std::string name);
  bool is_remote(HostId h) const {
    return h < hosts_.size() && hosts_[h].handler == nullptr;
  }

  // Where sends to remote hosts go: (datagram, absolute delivery time).
  // The sharded engine pushes these into the (src,dst)-shard mailbox.
  using RemoteRouteFn = std::function<void(Datagram&&, sim::SimTime)>;
  void set_remote_route(RemoteRouteFn fn) { remote_route_ = std::move(fn); }

  // Destination side of a cross-shard hop: inject a datagram that was
  // routed from another shard.  Runs the normal delivery path (outage
  // check, trace events, handler).  `at` below the local clock means the
  // conservative lookahead bound was violated upstream; the delivery is
  // clamped to `now` and counted so tests can assert the count stays 0.
  void deliver_remote(Datagram&& d, sim::SimTime at);
  std::uint64_t horizon_clamps() const noexcept { return horizon_clamps_; }

  // Pair-keyed latency: sample k for host pair (from,to) becomes a pure
  // function of (key_seed, from, to, k) instead of a draw from the shared
  // stream.  Event interleaving then cannot perturb latency values, which
  // makes a sharded run's timings independent of shard count and thread
  // count.  Must be called after all hosts are registered and before any
  // traffic.  Single-shard legacy runs never enable this, so their RNG
  // sequence is untouched.
  void enable_keyed_latency(std::uint64_t key_seed);
  bool keyed_latency() const noexcept { return keyed_stride_ != 0; }

  const LatencyModel& latency() const noexcept { return latency_; }

  // Latency-delayed, per-pair FIFO delivery (reliable unless a fault
  // injector is attached).  The payload is consumed: it moves through the
  // pending slot to the handler unexposed to any copy.  Unknown host ids
  // return kUnknownHost and bump send_errors() instead of aborting.
  SendStatus send(HostId from, HostId to, MsgType type,
                  crypto::Bytes&& payload);

  // Attaches (or detaches, with nullptr) a fault injector.  Not owned; must
  // outlive the network or be detached first.  With no injector the send
  // and deliver paths draw the same RNG sequence and schedule the same
  // events as a build without the fault layer.
  void attach_faults(FaultInjector* injector) noexcept { faults_ = injector; }
  FaultInjector* faults() const noexcept { return faults_; }

  // MX-style name resolution (domain -> host).
  void bind_domain(const std::string& domain, HostId host);
  HostId resolve(const std::string& domain) const;

  std::size_t host_count() const noexcept { return hosts_.size(); }
  const std::string& host_name(HostId h) const { return hosts_.at(h).name; }

  std::uint64_t datagrams_sent() const noexcept { return datagrams_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_; }
  // Bytes delivered toward `h`; 0 for hosts that never received traffic
  // (including ids never registered).
  std::uint64_t bytes_sent_to(HostId h) const noexcept {
    return h < bytes_to_.size() ? bytes_to_[h] : 0;
  }
  // Sends rejected for an unknown host or invalid type.
  std::uint64_t send_errors() const noexcept { return send_errors_; }

 private:
  struct Host {
    std::string name;
    HandlerFn handler;
    // Last scheduled delivery per sender host id, to preserve FIFO under
    // jitter.  Grown on demand; 0 means "nothing scheduled yet".
    std::vector<sim::SimTime> last_from;
  };

  void deliver(std::uint32_t slot);
  // Schedules one physical copy (latency sample + FIFO clamp + slot).
  void schedule_copy(HostId from, HostId to, MsgType type,
                     crypto::Bytes&& payload, bool skip_fifo,
                     sim::Duration extra_delay);
  std::uint32_t claim_slot();
  sim::Duration sample_latency(HostId from, HostId to);

  sim::Simulator& sim_;
  Rng rng_;
  LatencyModel latency_;
  FaultInjector* faults_ = nullptr;
  std::vector<Host> hosts_;
  std::unordered_map<std::string, HostId> mx_;
  RemoteRouteFn remote_route_;
  std::uint64_t datagrams_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t send_errors_ = 0;
  std::uint64_t horizon_clamps_ = 0;
  std::vector<std::uint64_t> bytes_to_;
  // Keyed-latency state: stride 0 means disabled (legacy shared stream).
  std::uint64_t keyed_seed_ = 0;
  std::size_t keyed_stride_ = 0;
  std::vector<std::uint64_t> keyed_draws_;  // per (from,to) sample counter
  // In-flight datagram pool: slots are recycled so steady-state traffic
  // stops allocating; payload buffers are moved in and out, never copied.
  std::vector<Datagram> pending_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace zmail::net
