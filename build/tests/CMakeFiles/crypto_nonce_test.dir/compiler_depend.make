# Empty compiler generated dependencies file for crypto_nonce_test.
# This may be replaced when dependencies are built.
