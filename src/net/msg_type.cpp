#include "net/msg_type.hpp"

#include <atomic>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/assert.hpp"

namespace zmail::net {

namespace {

// Interning is rare (registration-time) and mutex-protected; name lookups
// are per-send and lock-free: a published entry is immutable, so readers
// only need an acquire load of the count.
constexpr std::size_t kMaxTypes = 1024;

struct InternTable {
  std::string_view names[kMaxTypes];
  std::atomic<std::uint32_t> count{0};

  std::mutex mu;                                       // guards the rest
  std::unordered_map<std::string_view, std::uint16_t> index;
  std::deque<std::string> storage;  // reference-stable name backing

  InternTable() {
    // Seed order defines the constexpr ids in msg_type.hpp.
    for (const char* n :
         {"", "email", "buy", "buyreply", "sell", "sellreply", "request",
          "reply"}) {
      const auto id = static_cast<std::uint16_t>(count.load());
      storage.emplace_back(n);
      names[id] = storage.back();
      index.emplace(names[id], id);
      count.store(id + 1, std::memory_order_release);
    }
  }
};

InternTable& table() {
  static InternTable t;
  return t;
}

}  // namespace

MsgType MsgType::intern(std::string_view name) {
  ZMAIL_ASSERT_MSG(!name.empty(), "datagram type needs a name");
  InternTable& t = table();
  std::lock_guard<std::mutex> lock(t.mu);
  const auto it = t.index.find(name);
  if (it != t.index.end()) return MsgType{it->second};
  const std::uint32_t id = t.count.load(std::memory_order_relaxed);
  ZMAIL_ASSERT_MSG(id < kMaxTypes, "msg-type table full");
  t.storage.emplace_back(name);
  t.names[id] = t.storage.back();
  t.index.emplace(t.names[id], static_cast<std::uint16_t>(id));
  t.count.store(id + 1, std::memory_order_release);
  return MsgType{static_cast<std::uint16_t>(id)};
}

std::string_view MsgType::name() const noexcept {
  InternTable& t = table();
  const std::uint32_t n = t.count.load(std::memory_order_acquire);
  return id_ < n ? t.names[id_] : std::string_view("<unknown-msg-type>");
}

}  // namespace zmail::net
