// Shared harness for the experiment benches.
//
// Every bench prints its tables through util::Table and finishes with a
// CHECK line per "shape" assertion — the qualitative claim from the paper
// that the regenerated numbers must reproduce (who wins, roughly by how
// much, where the crossover sits).  A failed check exits non-zero so the
// bench sweep doubles as a regression suite for EXPERIMENTS.md.
//
// Since the sweep/obs layer landed, every bench also routes through a
// Bench instance that
//   - parses the common flags:
//       --threads N    worker threads for sweep sections        (default 1)
//       --replicas N   replicas per sweep point                 (default 1)
//       --seed S       base seed for sweep::derive_seed         (default 42)
//       --smoke        cut volumes for CI smoke runs
//       --audit        run the cross-system InvariantAuditor inside replicas
//       --json PATH    output path                (default BENCH_<name>.json)
//       --no-json      skip the JSON file
//       --trace PATH   enable the flight recorder; export to PATH at finish
//                      (.json → Chrome/Perfetto trace, else compact binary)
//       --telemetry    benches that support it run an instrumented overlay
//                      world and embed its time-series in the JSON (off by
//                      default so JSON output stays byte-stable)
//   - runs parameter grids on the parallel sweep harness (run_sweep), and
//   - emits BENCH_<name>.json (wall time, checks, merged sweep statistics)
//     alongside the stdout tables.
//
// The free check()/finish() helpers route to the active Bench, so the
// experiment functions themselves did not have to change shape.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/sweep.hpp"
#include "trace/analyze.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"
#include "util/json.hpp"

namespace zmail::bench {

struct Options {
  std::size_t threads = 1;
  std::size_t replicas = 1;
  std::uint64_t seed = 42;
  bool smoke = false;
  bool audit = false;  // run the InvariantAuditor continuously inside replicas
  bool telemetry = false;  // run the bench's telemetry-overlay section
  bool write_json = true;
  std::string json_path;     // empty: BENCH_<name>.json in the working dir
  std::string compare_path;  // previous BENCH_<name>.json to diff against
  std::string trace_path;    // empty: flight recorder stays off
};

// Reads a previously written BENCH_<name>.json and returns its wall_seconds,
// or a negative value when the file is missing/invalid.  Shared by the
// --compare flag and tools/bench_compare.
inline double load_baseline_wall_seconds(const std::string& path,
                                         std::string* bench_name = nullptr) {
  std::ifstream in(path);
  if (!in) return -1.0;
  std::stringstream buf;
  buf << in.rdbuf();
  const auto v = json::parse(buf.str());
  if (!v) return -1.0;
  const json::Value* wall = v->find("wall_seconds");
  if (!wall || !wall->is_number()) return -1.0;
  if (bench_name) {
    if (const json::Value* n = v->find("bench")) *bench_name = n->as_string();
  }
  return wall->as_double();
}

class Bench;
inline Bench* g_current = nullptr;
inline int g_failures = 0;  // still counted when no Bench is active

class Bench {
 public:
  explicit Bench(std::string name, int argc = 0, char** argv = nullptr)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {
    parse_args(argc, argv);
    if (!options_.trace_path.empty()) trace::set_enabled(true);
    json_ = json::Value::object();
    json_["schema"] = "zmail-bench-v1";
    json_["bench"] = name_;
    json_["seed"] = options_.seed;
    json_["threads"] = static_cast<std::uint64_t>(options_.threads);
    json_["replicas"] = static_cast<std::uint64_t>(options_.replicas);
    json_["smoke"] = options_.smoke;
    json_["checks"] = json::Value::array();
    g_current = this;
  }

  ~Bench() {
    if (g_current == this) g_current = nullptr;
  }

  Bench(const Bench&) = delete;
  Bench& operator=(const Bench&) = delete;

  const Options& options() const noexcept { return options_; }
  const std::string& name() const noexcept { return name_; }

  void check(bool ok, const std::string& claim) {
    std::printf("CHECK %-4s %s\n", ok ? "ok" : "FAIL", claim.c_str());
    if (!ok) ++failures_;
    json::Value e = json::Value::object();
    e["claim"] = claim;
    e["ok"] = ok;
    json_["checks"].push_back(std::move(e));
  }

  // Free-form additions to the JSON "metrics" object (headline numbers the
  // tables print, environment notes, ...).
  json::Value& metrics() { return json_["metrics"]; }

  // Extra top-level JSON section (e.g. the --telemetry overlay).  Only call
  // when actually writing something: merely naming a key creates it.
  json::Value& section(const std::string& key) { return json_[key]; }

  // Runs a parameter grid through the parallel sweep harness with this
  // bench's --threads/--replicas/--seed and records the merged result under
  // "sweeps"."<section>" in the JSON file.
  sweep::SweepResult run_sweep(const std::string& section,
                               const std::vector<sweep::Point>& grid,
                               const sweep::ReplicaFn& fn) {
    sweep::SweepOptions so;
    so.base_seed = options_.seed;
    so.replicas = options_.replicas;
    so.threads = options_.threads;
    return record_sweep(section, sweep::run(grid, so, fn));
  }

  // Same, but with explicit sweep options (the e12 speedup section runs one
  // sweep at 1 thread and one at --threads to compare).
  sweep::SweepResult run_sweep(const std::string& section,
                               const std::vector<sweep::Point>& grid,
                               const sweep::SweepOptions& so,
                               const sweep::ReplicaFn& fn) {
    return record_sweep(section, sweep::run(grid, so, fn));
  }

  // Prints the failure summary, writes BENCH_<name>.json, returns the
  // process exit code.
  int finish() {
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    json_["wall_seconds"] = wall;
    json_["failures"] = failures_;
    if (!options_.trace_path.empty()) {
      std::string terr;
      if (trace::export_current(options_.trace_path, &terr))
        std::printf("wrote trace %s (%zu events)\n",
                    options_.trace_path.c_str(), trace::collect().size());
      else
        std::fprintf(stderr, "trace export failed: %s\n", terr.c_str());
      json_["trace_breakdown"] =
          trace::breakdown_to_json(trace::breakdown(trace::collect()));
      json_["profiles"] = trace::profiles_to_json();
    }
    if (!options_.compare_path.empty()) report_compare(wall);
    if (options_.write_json) {
      const std::string path = options_.json_path.empty()
                                   ? "BENCH_" + name_ + ".json"
                                   : options_.json_path;
      std::string err;
      if (json::write_file(path, json_, &err))
        std::printf("wrote %s\n", path.c_str());
      else
        std::fprintf(stderr, "JSON export failed: %s\n", err.c_str());
    }
    if (failures_ > 0) {
      std::fprintf(stderr, "%d shape check(s) failed\n", failures_);
      return 1;
    }
    return 0;
  }

 private:
  // Report-only wall-clock diff against a previous run's JSON: perf drift
  // is surfaced, never turned into a failing exit code (timings on shared
  // CI runners are too noisy to gate on).
  void report_compare(double wall) {
    std::string base_name;
    const double base =
        load_baseline_wall_seconds(options_.compare_path, &base_name);
    if (base <= 0.0) {
      std::fprintf(stderr, "bench-compare: cannot read wall_seconds from %s\n",
                   options_.compare_path.c_str());
      return;
    }
    if (!base_name.empty() && base_name != name_)
      std::printf("bench-compare: warning: baseline is for bench '%s'\n",
                  base_name.c_str());
    const double speedup = wall > 0.0 ? base / wall : 0.0;
    std::printf(
        "bench-compare: baseline %.6fs -> current %.6fs  (%.2fx %s)\n", base,
        wall, speedup >= 1.0 ? speedup : 1.0 / speedup,
        speedup >= 1.0 ? "speedup" : "regression");
    json::Value cmp = json::Value::object();
    cmp["baseline_path"] = options_.compare_path;
    cmp["baseline_wall_seconds"] = base;
    cmp["speedup"] = speedup;
    json_["compare"] = std::move(cmp);
  }

  sweep::SweepResult record_sweep(const std::string& section,
                                  sweep::SweepResult result) {
    json_["sweeps"][section] = result.to_json();
    return result;
  }

  void parse_args(int argc, char** argv) {
    const auto need_value = [&](int& i, const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
      const char* a = argv[i];
      if (std::strcmp(a, "--threads") == 0) {
        options_.threads = static_cast<std::size_t>(
            std::strtoull(need_value(i, a), nullptr, 10));
      } else if (std::strcmp(a, "--replicas") == 0) {
        options_.replicas = static_cast<std::size_t>(
            std::strtoull(need_value(i, a), nullptr, 10));
        if (options_.replicas == 0) options_.replicas = 1;
      } else if (std::strcmp(a, "--seed") == 0) {
        options_.seed = std::strtoull(need_value(i, a), nullptr, 10);
      } else if (std::strcmp(a, "--smoke") == 0) {
        options_.smoke = true;
      } else if (std::strcmp(a, "--audit") == 0) {
        options_.audit = true;
      } else if (std::strcmp(a, "--telemetry") == 0) {
        options_.telemetry = true;
      } else if (std::strcmp(a, "--json") == 0) {
        options_.json_path = need_value(i, a);
      } else if (std::strcmp(a, "--no-json") == 0) {
        options_.write_json = false;
      } else if (std::strcmp(a, "--compare") == 0) {
        options_.compare_path = need_value(i, a);
      } else if (std::strcmp(a, "--trace") == 0) {
        options_.trace_path = need_value(i, a);
      } else if (std::strncmp(a, "--benchmark_", 12) == 0) {
        // google-benchmark flags pass through to the micro benches.
      } else {
        std::fprintf(stderr,
                     "unknown flag %s\nusage: %s [--threads N] [--replicas N]"
                     " [--seed S] [--smoke] [--audit] [--telemetry]"
                     " [--json PATH] [--no-json] [--compare BASELINE.json]"
                     " [--trace PATH]\n",
                     a, argc > 0 ? argv[0] : "bench");
        std::exit(2);
      }
    }
  }

  std::string name_;
  Options options_;
  std::chrono::steady_clock::time_point start_;
  json::Value json_;
  int failures_ = 0;
};

// Back-compat free functions: route to the active Bench.
inline void check(bool ok, const std::string& claim) {
  if (g_current) {
    g_current->check(ok, claim);
    return;
  }
  std::printf("CHECK %-4s %s\n", ok ? "ok" : "FAIL", claim.c_str());
  if (!ok) ++g_failures;
}

inline int finish() {
  if (g_current) return g_current->finish();
  if (g_failures > 0) {
    std::fprintf(stderr, "%d shape check(s) failed\n", g_failures);
    return 1;
  }
  return 0;
}

}  // namespace zmail::bench
