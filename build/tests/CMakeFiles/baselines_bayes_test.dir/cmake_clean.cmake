file(REMOVE_RECURSE
  "CMakeFiles/baselines_bayes_test.dir/baselines_bayes_test.cpp.o"
  "CMakeFiles/baselines_bayes_test.dir/baselines_bayes_test.cpp.o.d"
  "baselines_bayes_test"
  "baselines_bayes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_bayes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
