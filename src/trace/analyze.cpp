#include "trace/analyze.hpp"

#include <algorithm>
#include <cstdio>

namespace zmail::trace {

namespace {

bool is_terminal(Ev e) noexcept {
  switch (e) {
    case Ev::kDeliver:
    case Ev::kDiscard:
    case Ev::kFilterDrop:
    case Ev::kRefuse:
    case Ev::kShed:
    case Ev::kRefund:
      return true;
    default:
      return false;
  }
}

std::string span_label(const Span& s) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s span id=0x%llx host=%u @%lldus",
                ev_name(s.type), static_cast<unsigned long long>(s.id),
                static_cast<unsigned>(s.begin_host),
                static_cast<long long>(s.begin_us));
  return buf;
}

}  // namespace

std::vector<Span> build_spans(const std::vector<TraceEvent>& events) {
  std::vector<Span> spans;
  // Open-span stacks keyed by (id or host, type).  The uint64 key packs the
  // discriminator in the top bit: traced spans key on id, host-scoped spans
  // (id == 0) key on host so concurrent checkpoints on different hosts
  // cannot cross-match.
  std::map<std::pair<std::uint64_t, std::uint8_t>, std::vector<std::size_t>>
      open;
  const auto key = [](const TraceEvent& ev) {
    const std::uint64_t k =
        ev.id != 0 ? ev.id
                   : (std::uint64_t{1} << 63) | static_cast<std::uint64_t>(
                                                    ev.host);
    return std::make_pair(k, ev.type);
  };
  for (const auto& ev : events) {
    const auto phase = static_cast<Phase>(ev.phase);
    if (phase == Phase::kBegin) {
      Span s;
      s.id = ev.id;
      s.type = static_cast<Ev>(ev.type);
      s.begin_host = ev.host;
      s.begin_us = ev.sim_us;
      s.begin_arg0 = ev.arg0;
      s.begin_wall_ns = ev.wall_ns;
      s.begin_seq = ev.seq;
      open[key(ev)].push_back(spans.size());
      spans.push_back(s);
    } else if (phase == Phase::kEnd) {
      auto it = open.find(key(ev));
      if (it == open.end() || it->second.empty()) continue;  // orphan end
      Span& s = spans[it->second.back()];
      it->second.pop_back();
      s.end_host = ev.host;
      s.end_us = ev.sim_us;
      s.end_arg0 = ev.arg0;
      s.end_wall_ns = ev.wall_ns;
      s.closed = true;
    }
  }
  return spans;
}

std::map<TraceId, Chain> build_chains(const std::vector<TraceEvent>& events) {
  std::map<TraceId, Chain> chains;
  for (const auto& ev : events) {
    if (ev.id == 0) continue;
    Chain& c = chains[ev.id];
    c.id = ev.id;
    c.events.push_back(ev);
    const auto type = static_cast<Ev>(ev.type);
    const auto phase = static_cast<Phase>(ev.phase);
    if (type == Ev::kMessage && phase == Phase::kBegin) c.has_root = true;
    if (type == Ev::kMessage && phase == Phase::kEnd) c.root_closed = true;
    if (type == Ev::kTransmit) ++c.transmits;
    if (is_terminal(type)) c.terminal = type;
  }
  for (auto& [id, c] : chains) {
    (void)id;
    std::sort(c.events.begin(), c.events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                return a.seq < b.seq;
              });
    if (!c.root_closed && c.terminal == Ev::kNone && !c.events.empty())
      c.lost = static_cast<Ev>(c.events.back().type) == Ev::kNetDrop;
  }
  return chains;
}

ValidationResult validate(const std::vector<TraceEvent>& events) {
  ValidationResult r;
  const std::vector<Span> spans = build_spans(events);
  const std::map<TraceId, Chain> chains = build_chains(events);
  r.spans_total = spans.size();
  r.chains_total = chains.size();

  // Recovery begins, for the crash-forgives rule: an open span is excused
  // when its host later rebuilt from the store (the in-flight exchange it
  // tracked died with the pre-crash state).
  struct Rec {
    std::uint16_t host;
    std::int64_t at_us;
  };
  std::vector<Rec> recoveries;
  for (const auto& ev : events)
    if (static_cast<Ev>(ev.type) == Ev::kRecovery &&
        static_cast<Phase>(ev.phase) == Phase::kBegin)
      recoveries.push_back({ev.host, ev.sim_us});
  const auto crash_forgiven = [&](const Span& s) {
    for (const auto& rec : recoveries)
      if (rec.host == s.begin_host && rec.at_us >= s.begin_us) return true;
    return false;
  };

  for (const auto& s : spans) {
    if (s.closed) {
      ++r.spans_closed;
      if (s.end_us < s.begin_us) {
        r.ok = false;
        r.problems.push_back(span_label(s) + ": end precedes begin");
      }
      continue;
    }
    const auto chain_it = chains.find(s.id);
    const bool lost =
        s.id != 0 && chain_it != chains.end() && chain_it->second.lost;
    if (crash_forgiven(s) || lost) {
      ++r.spans_forgiven;
      continue;
    }
    r.ok = false;
    r.problems.push_back(span_label(s) + ": never closed");
  }

  // Child ⊆ parent, and single-mint per id.
  for (const auto& [id, c] : chains) {
    if (c.terminal != Ev::kNone) ++r.chains_terminal;
    std::size_t root_begins = 0;
    std::int64_t root_begin_us = 0, root_end_us = 0;
    bool have_interval = false;
    for (const auto& ev : c.events) {
      if (static_cast<Ev>(ev.type) != Ev::kMessage) continue;
      if (static_cast<Phase>(ev.phase) == Phase::kBegin) {
        ++root_begins;
        root_begin_us = ev.sim_us;
      } else if (static_cast<Phase>(ev.phase) == Phase::kEnd) {
        root_end_us = ev.sim_us;
        have_interval = true;
      }
    }
    if (c.has_root && root_begins != 1) {
      r.ok = false;
      char buf[96];
      std::snprintf(buf, sizeof(buf),
                    "id=0x%llx: %zu root begins (crash replay re-minted?)",
                    static_cast<unsigned long long>(id), root_begins);
      r.problems.push_back(buf);
    }
    if (!have_interval || root_begins != 1) continue;
    // Transport-layer tail traffic (the receiver's ack datagram and its
    // retransmits) legitimately lands after kDeliver closes the root, so
    // only payload-level events are held to the upper bound.
    const auto trailing_ok = [](Ev t) {
      switch (t) {
        case Ev::kNetSend:
        case Ev::kNetDeliver:
        case Ev::kNetDrop:
        case Ev::kTransmit:
        case Ev::kTransit:
        case Ev::kAck:
        case Ev::kDuplicateDrop:
          return true;
        default:
          return false;
      }
    };
    for (const auto& ev : c.events) {
      if (ev.sim_us < root_begin_us ||
          (ev.sim_us > root_end_us &&
           !trailing_ok(static_cast<Ev>(ev.type)))) {
        r.ok = false;
        char buf[128];
        std::snprintf(
            buf, sizeof(buf),
            "id=0x%llx: %s @%lldus outside root interval [%lld, %lld]us",
            static_cast<unsigned long long>(id),
            ev_name(static_cast<Ev>(ev.type)),
            static_cast<long long>(ev.sim_us),
            static_cast<long long>(root_begin_us),
            static_cast<long long>(root_end_us));
        r.problems.push_back(buf);
        break;  // one report per chain is enough
      }
    }
  }
  return r;
}

std::map<std::string, StageStats> breakdown(
    const std::vector<TraceEvent>& events) {
  std::map<std::string, StageStats> out;
  const auto stage_of = [](Ev e) -> const char* {
    switch (e) {
      case Ev::kMessage: return "message";
      case Ev::kBankBuy: return "stamp_buy";
      case Ev::kBankSell: return "stamp_sell";
      case Ev::kTransit: return "transit";
      case Ev::kSmtp: return "smtp";
      case Ev::kClassify: return "classify";
      case Ev::kQuiesceBuffer: return "quiesce_buffer";
      case Ev::kSnapshotRound: return "settle";
      case Ev::kCheckpoint: return "checkpoint";
      case Ev::kRecovery: return "recovery";
      default: return nullptr;
    }
  };
  for (const auto& s : build_spans(events)) {
    if (!s.closed) continue;
    const char* name = stage_of(s.type);
    if (name == nullptr) continue;
    StageStats& st = out[name];
    const std::int64_t d = s.duration_us();
    if (st.count == 0 || d < st.min_us) st.min_us = d;
    if (st.count == 0 || d > st.max_us) st.max_us = d;
    const std::uint64_t w = s.wall_duration_ns();
    if (st.count == 0 || w < st.wall_min_ns) st.wall_min_ns = w;
    if (st.count == 0 || w > st.wall_max_ns) st.wall_max_ns = w;
    ++st.count;
    st.total_us += d;
    st.wall_total_ns += w;
  }
  return out;
}

json::Value breakdown_to_json(const std::map<std::string, StageStats>& b) {
  json::Value out = json::Value::object();
  for (const auto& [name, st] : b) {
    json::Value s = json::Value::object();
    s["count"] = st.count;
    s["total_us"] = st.total_us;
    s["mean_us"] = st.mean_us();
    s["min_us"] = st.min_us;
    s["max_us"] = st.max_us;
    out[name] = std::move(s);
  }
  return out;
}

}  // namespace zmail::trace
