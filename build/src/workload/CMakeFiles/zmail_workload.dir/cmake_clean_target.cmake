file(REMOVE_RECURSE
  "libzmail_workload.a"
)
