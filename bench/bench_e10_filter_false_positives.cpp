// E10 — Filter failure modes vs Zmail (paper Section 2.2).
//
// Claims: "spam filters are vulnerable to false positive errors.
// Newsletters and paid subscriptions have a high probability of being
// classified as spam ... spammers can foil spam filters [by] deliberate
// misspelling ... Using Zmail, spammers' efforts to evade definitions of
// spam become irrelevant."
//
// Regenerates:
//   E10.a  trained naive-Bayes confusion rates on ham / newsletters / spam
//   E10.b  evasion sweep: false negatives vs misspelling strength — and the
//          flat Zmail line (cost per message is evasion-independent)
//   E10.c  the dollar cost of false positives (the paper's Jupiter Research
//          framing) vs Zmail's zero-FP-by-construction
#include "baselines/bayes.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"
#include "workload/corpus.hpp"

using namespace zmail;

namespace {

baselines::NaiveBayesFilter train_filter(std::uint64_t seed) {
  workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(seed));
  baselines::NaiveBayesFilter filter;
  for (int i = 0; i < 600; ++i) {
    filter.train(corpus.ham_body(), false);
    filter.train(corpus.spam_body(), true);
  }
  return filter;
}

void e10a_confusion() {
  const baselines::NaiveBayesFilter filter = train_filter(101);
  workload::CorpusGenerator fresh(workload::CorpusParams{}, Rng(102));

  baselines::FilterEvaluation ham_eval, news_eval, spam_eval;
  for (int i = 0; i < 500; ++i) {
    ham_eval.add(false, filter.is_spam(fresh.ham_body()));
    news_eval.add(false, filter.is_spam(fresh.newsletter_body()));
    spam_eval.add(true, filter.is_spam(fresh.spam_body()));
  }

  Table t({"mail class", "flagged as spam", "error type"});
  t.add_row({"plain ham", Table::pct(ham_eval.false_positive_rate()),
             "false positive"});
  t.add_row({"newsletters (solicited bulk)",
             Table::pct(news_eval.false_positive_rate()), "false positive"});
  t.add_row({"spam", Table::pct(1.0 - spam_eval.recall()),
             "false negative"});
  t.print("E10.a  naive-Bayes confusion by mail class (500 each)");

  bench::check(news_eval.false_positive_rate() >
                   ham_eval.false_positive_rate() + 0.01,
               "newsletters suffer far more false positives than plain ham");
  bench::check(spam_eval.recall() > 0.9,
               "the filter is genuinely competent on unobfuscated spam");
}

void e10b_evasion_sweep() {
  const baselines::NaiveBayesFilter filter = train_filter(103);
  workload::CorpusGenerator fresh(workload::CorpusParams{}, Rng(104));

  Table t({"misspelling strength", "filter false negatives",
           "Zmail cost per spam"});
  double fn_at_0 = 0, fn_at_max = 0;
  for (double strength : {0.0, 0.3, 0.6, 0.9}) {
    baselines::FilterEvaluation eval;
    for (int i = 0; i < 400; ++i)
      eval.add(true, filter.is_spam(fresh.evade(fresh.spam_body(), strength)));
    t.add_row({Table::num(strength, 1),
               Table::pct(eval.false_negative_rate()), "$0.01 (unchanged)"});
    if (strength == 0.0) fn_at_0 = eval.false_negative_rate();
    if (strength == 0.9) fn_at_max = eval.false_negative_rate();
  }
  t.print("E10.b  evasion beats filters; Zmail's price is unevadable");

  bench::check(fn_at_max > fn_at_0 + 0.3,
               "misspelling evasion defeats the trained filter");
}

void e10c_dollar_cost() {
  // The paper cites Jupiter Research: wrongly blocked legitimate email cost
  // $230M in 2003 (17% FP) heading to $419M in 2008 (~10% FP).  Price our
  // measured FP rates with the same $/message implied by those figures.
  const baselines::NaiveBayesFilter filter = train_filter(105);
  workload::CorpusGenerator fresh(workload::CorpusParams{}, Rng(106));
  baselines::FilterEvaluation eval;
  for (int i = 0; i < 300; ++i) {
    eval.add(false, filter.is_spam(fresh.ham_body()));
    eval.add(false, filter.is_spam(fresh.newsletter_body()));
  }

  // Jupiter's 2003 point: 17% of legitimate *bulk* mail blocked = $230M.
  const double dollars_per_blocked = 230e6 / (0.17 * 1e10);  // $/message
  const double legit_bulk_per_year = 1e10;
  const double our_fp = eval.false_positive_rate();
  const double filter_cost = our_fp * legit_bulk_per_year *
                             dollars_per_blocked;

  Table t({"approach", "legitimate mail lost", "annual cost"});
  t.add_row({"content filtering", Table::pct(our_fp),
             "$" + Table::num(filter_cost / 1e6, 1) + "M"});
  t.add_row({"Zmail", "0.00% (no filtering needed)", "$0.0M"});
  t.print("E10.c  the false-positive bill (Jupiter-style accounting)");

  bench::check(our_fp > 0.0, "filtering loses some legitimate mail");
  bench::check(true, "Zmail loses none by construction");
}

void e10d_corpus_difficulty() {
  // The default synthetic corpus separates cleanly (a best-case filter);
  // this sweep hardens the corpus by blending more everyday vocabulary
  // into spam, approaching real-world confusability.
  Table t({"spam/ham vocabulary mix", "spam recall", "newsletter FP"});
  double recall_easy = 0, recall_hard = 0;
  for (double mix : {0.35, 0.55, 0.7}) {
    workload::CorpusParams cp;
    cp.spam_ham_mix = mix;
    cp.newsletter_spam_mix = 0.25;
    workload::CorpusGenerator corpus(cp, Rng(108));
    baselines::NaiveBayesFilter filter;
    for (int i = 0; i < 600; ++i) {
      filter.train(corpus.spam_body(), true);
      filter.train(corpus.ham_body(), false);
    }
    workload::CorpusGenerator fresh(cp, Rng(109));
    baselines::FilterEvaluation spam_eval, news_eval;
    for (int i = 0; i < 400; ++i) {
      spam_eval.add(true, filter.is_spam(fresh.spam_body()));
      news_eval.add(false, filter.is_spam(fresh.newsletter_body()));
    }
    t.add_row({Table::num(mix, 2), Table::pct(spam_eval.recall()),
               Table::pct(news_eval.false_positive_rate())});
    if (mix == 0.35) recall_easy = spam_eval.recall();
    if (mix == 0.7) recall_hard = spam_eval.recall();
  }
  t.print("E10.d  filter quality vs corpus difficulty");
  bench::check(recall_hard <= recall_easy,
               "harder (more realistic) corpora only weaken the filter — "
               "Zmail's economics are corpus-independent");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("e10_filter_false_positives", argc, argv);
  std::printf("=== E10: filter false positives and evasion ===\n");
  e10a_confusion();
  e10b_evasion_sweep();
  e10c_dollar_cost();
  e10d_corpus_difficulty();
  return harness.finish();
}
