#include "workload/virus.hpp"

#include "util/assert.hpp"

namespace zmail::workload {

ZombieOutbreak::ZombieOutbreak(core::ZmailSystem& system,
                               const OutbreakParams& params, zmail::Rng rng)
    : system_(system), params_(params), rng_(rng) {
  const auto& p = system_.params();
  infected_.assign(p.n_isps, std::vector<bool>(p.users_per_isp, false));
  std::size_t seeded = 0;
  while (seeded < params_.initial_infected) {
    const std::size_t i = rng_.next_below(p.n_isps);
    const std::size_t u = rng_.next_below(p.users_per_isp);
    if (!p.is_compliant(i) || infected_[i][u]) continue;
    infect(i, u);
    ++seeded;
  }
}

bool ZombieOutbreak::infected(std::size_t isp, std::size_t user) const {
  return infected_.at(isp).at(user);
}

void ZombieOutbreak::infect(std::size_t isp, std::size_t user) {
  if (infected_[isp][user]) return;
  infected_[isp][user] = true;
  ++infected_count_;
  peak_infected_ = std::max(peak_infected_, infected_count_);
}

void ZombieOutbreak::disinfect(std::size_t isp, std::size_t user) {
  if (!infected_[isp][user]) return;
  infected_[isp][user] = false;
  --infected_count_;
}

std::vector<OutbreakDay> ZombieOutbreak::run() {
  const auto& p = system_.params();
  std::vector<OutbreakDay> days;
  std::int64_t drained_total = 0;

  for (std::size_t day = 0; day < params_.days; ++day) {
    OutbreakDay row;
    row.day = day;

    std::uint64_t warnings_before = 0;
    for (std::size_t i = 0; i < p.n_isps; ++i)
      if (p.is_compliant(i))
        warnings_before += system_.isp(i).metrics().zombie_warnings_sent;

    // Each zombie fires its daily burst at random recipients.
    std::vector<std::pair<std::size_t, std::size_t>> newly_infected;
    for (std::size_t i = 0; i < p.n_isps; ++i) {
      if (!p.is_compliant(i)) continue;
      for (std::size_t u = 0; u < p.users_per_isp; ++u) {
        if (!infected_[i][u]) continue;
        for (std::size_t k = 0; k < params_.virus_sends_per_day; ++k) {
          const std::size_t ti = rng_.next_below(p.n_isps);
          const std::size_t tu = rng_.next_below(p.users_per_isp);
          net::EmailMessage msg = net::make_email(
              net::make_user_address(i, u), net::make_user_address(ti, tu),
              "wphotos attached", "wopen wthe wattachment zxnow",
              net::MailClass::kVirus);
          const core::SendResult r = system_.send_email(std::move(msg));
          if (r == core::SendResult::kDailyLimit ||
              r == core::SendResult::kQuarantined ||
              r == core::SendResult::kNoBalance) {
            ++row.virus_blocked;
            if (r != core::SendResult::kNoBalance) break;  // blocked today
            continue;
          }
          ++row.virus_sent;
          drained_total += 1;  // one e-penny per accepted paid message
          if (p.is_compliant(ti) && rng_.bernoulli(params_.infect_prob))
            newly_infected.emplace_back(ti, tu);
        }
      }
    }

    // Let the day's mail flow, then apply end-of-day effects.
    system_.run_for(sim::kDay);
    for (std::size_t i = 0; i < p.n_isps; ++i)
      if (p.is_compliant(i)) system_.isp(i).end_of_day();

    // Warned users disinfect with high probability (the paper's "new
    // mechanism for detecting, limiting, and disinfecting zombie PCs").
    std::uint64_t warnings_after = 0;
    for (std::size_t i = 0; i < p.n_isps; ++i)
      if (p.is_compliant(i))
        warnings_after += system_.isp(i).metrics().zombie_warnings_sent;
    row.warnings = warnings_after - warnings_before;

    for (std::size_t i = 0; i < p.n_isps; ++i) {
      if (!p.is_compliant(i)) continue;
      for (std::size_t u = 0; u < p.users_per_isp; ++u) {
        if (infected_[i][u] && system_.isp(i).user(u).warnings > 0 &&
            rng_.bernoulli(params_.patch_prob_after_warning))
          disinfect(i, u);
      }
    }
    for (auto& [ti, tu] : newly_infected) infect(ti, tu);

    row.infected = infected_count_;
    row.epennies_drained = drained_total;
    days.push_back(row);
  }
  return days;
}

}  // namespace zmail::workload
