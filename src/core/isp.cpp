#include "core/isp.hpp"

#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace zmail::core {

namespace {
// Header that requests an automatic e-penny acknowledgment (Section 5,
// mailing lists).  Value is the distributor address the ack returns to.
constexpr const char* kAckHeader = "X-Zmail-Ack-To";
// Marks a message as an automatically processed acknowledgment.
constexpr const char* kAckFlagHeader = "X-Zmail-Acknowledgment";
}  // namespace

const char* send_result_name(SendResult r) noexcept {
  switch (r) {
    case SendResult::kDeliveredLocally: return "delivered-locally";
    case SendResult::kSentPaid: return "sent-paid";
    case SendResult::kSentFree: return "sent-free";
    case SendResult::kBuffered: return "buffered";
    case SendResult::kNoBalance: return "no-balance";
    case SendResult::kDailyLimit: return "daily-limit";
    case SendResult::kQuarantined: return "quarantined";
    case SendResult::kShed: return "shed";
  }
  return "?";
}

Isp::Isp(std::size_t index, const ZmailParams& params,
         crypto::RsaKey bank_pub, std::uint64_t secret_seed)
    : index_(index),
      params_(params),
      bank_pub_(bank_pub),
      rng_(secret_seed ^ (0x1517ULL * (index + 1))),
      nonce_gen_(secret_seed * 0x9E3779B97F4A7C15ULL + index) {
  ZMAIL_ASSERT(index < params_.n_isps);
  users_.reset(params_.users_per_isp, params_.initial_user_account,
               params_.initial_user_balance, params_.default_daily_limit);
  inboxes_.resize(params_.users_per_isp);
  avail_ = params_.initial_avail;
  credit_.assign(params_.n_isps, 0);
}

EPenny Isp::epennies_held() const noexcept {
  EPenny total = avail_;
  for (const EPenny b : users_.balances()) total += b;
  return total;
}

bool Isp::commit_paid_send(UserId s) {
  const UserRef u = users_.at(s);
  // Paper guard: balance[s] >= 1 AND sent[s] < limit[s].
  if (u.balance < 1) {
    ++metrics_.refused_no_balance;
    return false;
  }
  if (u.sent >= u.limit) {
    ++metrics_.refused_daily_limit;
    if (!u.blocked_today) {
      u.blocked_today = true;
      send_zombie_warning(s);
    }
    return false;
  }
  u.balance -= 1;
  u.sent += 1;
  u.lifetime_sent += 1;
  return true;
}

SendResult Isp::user_send(UserId s, std::size_t dest_isp, UserId r,
                          net::EmailMessage msg) {
  ZMAIL_ASSERT(s.slot() < users_.size());
  ZMAIL_ASSERT(dest_isp < params_.n_isps);
  if (wal_) {
    crypto::Bytes p;
    crypto::put_u64(p, user_to_wire(s));
    crypto::put_u64(p, dest_isp);
    crypto::put_u64(p, user_to_wire(r));
    crypto::put_bytes(p, msg.serialize());
    log_op(WalOp::kUserSend, p);
  }

  if (users_.at(s).quarantined) return SendResult::kQuarantined;

  if (dest_isp == index_) {
    // Local delivery: the e-penny moves from sender to receiver without
    // touching any channel or the credit array.
    const UserRef sender = users_.at(s);
    if (sender.balance < 1) {
      ++metrics_.refused_no_balance;
      return SendResult::kNoBalance;
    }
    if (sender.sent >= sender.limit) {
      ++metrics_.refused_daily_limit;
      if (!sender.blocked_today) {
        sender.blocked_today = true;
        send_zombie_warning(s);
      }
      return SendResult::kDailyLimit;
    }
    sender.balance -= 1;
    sender.sent += 1;
    sender.lifetime_sent += 1;
    ZMAIL_ASSERT(r.slot() < users_.size());
    const UserRef rcpt = users_.at(r);
    rcpt.balance += 1;
    rcpt.lifetime_received_paid += 1;
    ++metrics_.emails_sent_local;
    deliver_locally(r, msg, /*paid=*/1, /*junk=*/false);
    maybe_generate_ack(r, msg);
    return SendResult::kDeliveredLocally;
  }

  if (!params_.is_compliant(dest_isp)) {
    // "~compliant[j] -> send email(s, r) to isp[j]": free, unpaid.
    if (!cansend_) {
      if (buffer_full()) {
        ++metrics_.emails_shed;
        return SendResult::kShed;
      }
      ++metrics_.emails_sent_noncompliant;
      if (msg.trace_id != 0)
        trace::begin(trace::Ev::kQuiesceBuffer, msg.trace_id,
                     static_cast<std::uint16_t>(index_));
      buffer_.push_back(
          BufferedSend{dest_isp, std::move(msg), false, kInvalidUser});
      ++metrics_.emails_buffered_during_quiesce;
      return SendResult::kBuffered;
    }
    ++metrics_.emails_sent_noncompliant;
    outbox_.push_back(Outbound{Outbound::Dest::kIsp, dest_isp, kMsgEmail,
                               msg.serialize(), kInvalidUser, msg.trace_id});
    return SendResult::kSentFree;
  }

  if (misbehavior_ == Misbehavior::kFreeRide) {
    // Colluding ISP: ship the mail without charging the sender and without
    // the credit entry.  Detected by the bank's verification (Section 4.4).
    ++metrics_.emails_sent_compliant;
    outbox_.push_back(Outbound{Outbound::Dest::kIsp, dest_isp, kMsgEmail,
                               msg.serialize(), kInvalidUser, msg.trace_id});
    return SendResult::kSentPaid;
  }

  // Paid remote send.
  if (!commit_paid_send(s)) {
    return users_.at(s).balance < 1 ? SendResult::kNoBalance
                                    : SendResult::kDailyLimit;
  }
  if (!cansend_) {
    if (buffer_full()) {
      // Graceful degradation: the quiesce buffer is saturated, so the send
      // is shed and the just-committed payment undone in full.
      const UserRef u = users_.at(s);
      u.balance += 1;
      u.sent -= 1;
      u.lifetime_sent -= 1;
      ++metrics_.emails_shed;
      return SendResult::kShed;
    }
    // Section 4.4: "these emails will be buffered and sent right after the
    // timeout expires".  Payment is committed now; the credit entry is
    // recorded at actual transmission so the snapshot stays consistent.
    if (msg.trace_id != 0)
      trace::begin(trace::Ev::kQuiesceBuffer, msg.trace_id,
                   static_cast<std::uint16_t>(index_));
    buffer_.push_back(BufferedSend{dest_isp, std::move(msg), true, s});
    buffered_paid_ += 1;
    ++metrics_.emails_buffered_during_quiesce;
    return SendResult::kBuffered;
  }
  transport_paid_email(dest_isp, msg, s);
  return SendResult::kSentPaid;
}

void Isp::transport_paid_email(std::size_t dest_isp,
                               const net::EmailMessage& msg,
                               UserId sender_user) {
  credit_.at(dest_isp) += 1;
  ++metrics_.emails_sent_compliant;
  outbox_.push_back(Outbound{Outbound::Dest::kIsp, dest_isp, kMsgEmail,
                             msg.serialize(), sender_user, msg.trace_id});
}

void Isp::refund_lost_email(UserId sender_user, std::size_t dest_isp,
                            bool same_epoch) {
  if (wal_) {
    crypto::Bytes p;
    crypto::put_u64(p, user_to_wire(sender_user));
    crypto::put_u64(p, dest_isp);
    crypto::put_u8(p, same_epoch ? 1 : 0);
    log_op(WalOp::kRefundLost, p);
  }
  if (sender_user.valid() && sender_user.slot() < users_.size()) {
    const UserRef u = users_.at(sender_user);
    u.balance += 1;
    if (u.sent > 0) u.sent -= 1;
    if (u.lifetime_sent > 0) u.lifetime_sent -= 1;
  }
  if (same_epoch) credit_.at(dest_isp) -= 1;
  ++metrics_.emails_refunded;
}

void Isp::deliver_locally(UserId r, const net::EmailMessage& msg,
                          EPenny paid, bool junk) {
  ZMAIL_ASSERT(r.slot() < users_.size());
  // Acknowledgments are "processed automatically, rather than being
  // delivered to the receiver's inbox for human attention" (Section 5).
  if (msg.header(kAckFlagHeader)) {
    ++metrics_.acks_received;
    if (msg.trace_id != 0) {
      // Terminal for the acknowledgment's own chain (arg1 = 2 marks
      // auto-processed, never spooled to an inbox).
      trace::instant(trace::Ev::kDeliver, msg.trace_id,
                     static_cast<std::uint16_t>(index_),
                     static_cast<std::uint64_t>(paid), 2);
      trace::end(trace::Ev::kMessage, msg.trace_id,
                 static_cast<std::uint16_t>(index_));
    }
    if (ack_sink_) ack_sink_(r, msg);
    return;
  }
  ++metrics_.emails_delivered;
  if (junk) ++metrics_.emails_segregated;
  if (msg.trace_id != 0) {
    trace::instant(trace::Ev::kDeliver, msg.trace_id,
                   static_cast<std::uint16_t>(index_),
                   static_cast<std::uint64_t>(paid), junk ? 1 : 0);
    trace::end(trace::Ev::kMessage, msg.trace_id,
               static_cast<std::uint16_t>(index_));
  }
  if (params_.record_inboxes)
    inboxes_.at(r.slot()).push_back(Delivery{msg, junk, paid});
}

void Isp::maybe_generate_ack(UserId recipient,
                             const net::EmailMessage& msg) {
  if (!params_.auto_acknowledge_lists) return;
  const auto ack_to = msg.header(kAckHeader);
  if (!ack_to) return;
  const auto dist = net::parse_address(*ack_to);
  if (!dist) return;
  std::size_t dist_isp = 0, dist_user = 0;
  if (!net::decode_user_address(*dist, dist_isp, dist_user)) return;
  if (dist_isp >= params_.n_isps) return;

  // The receiving ISP generates the acknowledgment on the user's behalf;
  // it costs the e-penny the list message just delivered, returning it to
  // the distributor.  ISP-generated acks do not count against the user's
  // daily limit (they are bounded by mail *received*, not sent).
  const UserRef u = users_.at(recipient);
  if (u.balance < 1) return;  // cannot happen right after a paid delivery

  net::EmailMessage ack = net::make_email(
      net::make_user_address(index_, recipient.slot()), *dist, "Ack",
      msg.header("Message-ID").value_or(""), net::MailClass::kAcknowledgment);
  ack.set_header(kAckFlagHeader, "1");
  // The acknowledgment is a new message with its own lifecycle span; the
  // triggering message's id rides in arg0 as the causal parent link (the
  // parent's root span ends at delivery, which happens before this runs,
  // so the ack cannot live inside the parent interval).
  ack.trace_id = trace::next_id();
  if (ack.trace_id != 0)
    trace::begin(trace::Ev::kMessage, ack.trace_id,
                 static_cast<std::uint16_t>(index_), msg.trace_id);

  u.balance -= 1;
  ++metrics_.acks_generated;

  if (dist_isp == index_) {
    const UserRef d = users_.at(dist_user);
    d.balance += 1;
    d.lifetime_received_paid += 1;
    deliver_locally(dist_user, ack, 1, false);
    return;
  }
  if (!cansend_) {
    if (buffer_full()) {
      // Shed the acknowledgment rather than overflow: undo its payment.
      u.balance += 1;
      --metrics_.acks_generated;
      ++metrics_.emails_shed;
      if (ack.trace_id != 0) {
        trace::instant(trace::Ev::kShed, ack.trace_id,
                       static_cast<std::uint16_t>(index_));
        trace::end(trace::Ev::kMessage, ack.trace_id,
                   static_cast<std::uint16_t>(index_));
      }
      return;
    }
    if (ack.trace_id != 0)
      trace::begin(trace::Ev::kQuiesceBuffer, ack.trace_id,
                   static_cast<std::uint16_t>(index_));
    buffer_.push_back(BufferedSend{dist_isp, std::move(ack), true, recipient});
    buffered_paid_ += 1;
    ++metrics_.emails_buffered_during_quiesce;
    return;
  }
  credit_.at(dist_isp) += 1;
  const std::uint64_t ack_trace = ack.trace_id;
  outbox_.push_back(Outbound{Outbound::Dest::kIsp, dist_isp, kMsgEmail,
                             ack.serialize(), recipient, ack_trace});
}

void Isp::send_zombie_warning(UserId s) {
  // "the user is sent a warning message to check for viruses" (Section 5).
  // Generated by the ISP itself, free, delivered locally.
  net::EmailMessage warn = net::make_email(
      net::EmailAddress{"postmaster", net::isp_domain(index_)},
      net::make_user_address(index_, s.slot()), "Daily sending limit reached",
      "Your account hit its daily outgoing-mail limit. If you did not send "
      "this volume of mail, your machine may be infected; please run a "
      "virus scan.",
      net::MailClass::kLegitimate);
  ++metrics_.zombie_warnings_sent;
  const UserRef u = users_.at(s);
  u.warnings += 1;
  deliver_locally(s, warn, 0, false);
  // Repeat offenders are suspended outright: the account stays blocked
  // across days until the ISP releases it (after disinfection).
  if (params_.quarantine_after_warnings > 0 &&
      u.warnings >= params_.quarantine_after_warnings)
    u.quarantined = true;
}

void Isp::on_email(std::size_t from_isp, const crypto::Bytes& payload) {
  if (wal_) {
    crypto::Bytes p;
    crypto::put_u64(p, from_isp);
    crypto::put_bytes(p, payload);
    log_op(WalOp::kOnEmail, p);
  }
  auto msg = net::EmailMessage::deserialize(payload);
  if (!msg) {
    ++metrics_.bad_envelopes;
    return;
  }
  // Resolve the recipient among our users.
  std::size_t rcpt_isp = 0, rcpt_user = 0;
  if (msg->to.empty() ||
      !net::decode_user_address(msg->to.front(), rcpt_isp, rcpt_user) ||
      rcpt_isp != index_ || rcpt_user >= users_.size()) {
    ++metrics_.bad_envelopes;
    return;
  }

  // Receive/classify span: covers payment accounting, policy, and the
  // delivery (or drop) decision for this message.
  std::optional<trace::SpanScope> classify;
  if (msg->trace_id != 0)
    classify.emplace(trace::Ev::kClassify, msg->trace_id,
                     static_cast<std::uint16_t>(index_));

  if (params_.is_compliant(from_isp)) {
    // "compliant[g] -> balance[r] := balance[r] + 1; credit[g] -= 1".
    const UserRef rcpt = users_.at(rcpt_user);
    rcpt.balance += 1;
    rcpt.lifetime_received_paid += 1;
    credit_.at(from_isp) -= 1;
    ++metrics_.emails_received_compliant;
    deliver_locally(rcpt_user, *msg, 1, false);
    maybe_generate_ack(rcpt_user, *msg);
    return;
  }

  // Mail from a non-compliant ISP: no payment; apply the Section 5 policy
  // (the recipient's own choice when set, the ISP default otherwise).
  ++metrics_.emails_received_noncompliant;
  const NonCompliantPolicy policy =
      users_.policy_or(rcpt_user, params_.noncompliant_policy);
  switch (policy) {
    case NonCompliantPolicy::kAccept:
      deliver_locally(rcpt_user, *msg, 0, false);
      break;
    case NonCompliantPolicy::kSegregate:
      deliver_locally(rcpt_user, *msg, 0, true);
      break;
    case NonCompliantPolicy::kDiscard:
      ++metrics_.emails_discarded;
      if (msg->trace_id != 0) {
        trace::instant(trace::Ev::kDiscard, msg->trace_id,
                       static_cast<std::uint16_t>(index_));
        trace::end(trace::Ev::kMessage, msg->trace_id,
                   static_cast<std::uint16_t>(index_));
      }
      break;
    case NonCompliantPolicy::kFilter:
      // "require any email from a non-compliant ISP to pass a spam filter".
      // Fail-open when no filter is installed.
      if (filter_ && filter_(*msg)) {
        ++metrics_.emails_filtered_out;
        if (msg->trace_id != 0) {
          trace::instant(trace::Ev::kFilterDrop, msg->trace_id,
                         static_cast<std::uint16_t>(index_));
          trace::end(trace::Ev::kMessage, msg->trace_id,
                     static_cast<std::uint16_t>(index_));
        }
      } else {
        deliver_locally(rcpt_user, *msg, 0, false);
      }
      break;
  }
}

bool Isp::user_buy(UserId t, EPenny x) {
  ZMAIL_ASSERT(t.slot() < users_.size());
  if (wal_) {
    crypto::Bytes p;
    crypto::put_u64(p, user_to_wire(t));
    crypto::put_i64(p, x);
    log_op(WalOp::kUserBuy, p);
  }
  if (x <= 0) return false;
  const UserRef u = users_.at(t);
  const Money cost = Money::from_epennies(x);
  // Paper guard: account[t] >= x AND avail >= x.
  if (u.account < cost || avail_ < x) return false;
  u.account -= cost;
  till_ += cost;
  u.balance += x;
  u.lifetime_epennies_bought += x;
  avail_ -= x;
  return true;
}

bool Isp::user_sell(UserId t, EPenny x) {
  ZMAIL_ASSERT(t.slot() < users_.size());
  if (wal_) {
    crypto::Bytes p;
    crypto::put_u64(p, user_to_wire(t));
    crypto::put_i64(p, x);
    log_op(WalOp::kUserSell, p);
  }
  if (x <= 0) return false;
  const UserRef u = users_.at(t);
  if (u.balance < x) return false;
  const Money value = Money::from_epennies(x);
  u.balance -= x;
  u.account += value;
  till_ -= value;
  u.lifetime_epennies_sold += x;
  avail_ += x;
  return true;
}

sim::Duration Isp::jittered_backoff(std::uint32_t attempt) {
  sim::Duration b = params_.retry.backoff_for(attempt);
  const double j = params_.retry.jitter;
  if (j > 0.0)
    b = static_cast<sim::Duration>(static_cast<double>(b) *
                                   rng_.uniform(1.0 - j, 1.0 + j));
  return b > 0 ? b : 1;
}

void Isp::arm_retry(PendingWire& p, net::MsgType type,
                    const crypto::Bytes& wire, sim::SimTime now) {
  if (!params_.retry.enabled) return;
  p.active = true;
  p.type = type;
  p.wire = wire;  // the sealed bytes; retries replay them nonce and all
  p.attempts = 1;
  p.next_at = now + jittered_backoff(1);
}

void Isp::retry_wire(PendingWire& p, sim::SimTime now, std::uint64_t& counter) {
  if (!p.active || now < p.next_at) return;
  const RetryPolicy& rp = params_.retry;
  if (rp.max_attempts != 0 && p.attempts >= rp.max_attempts) {
    // Give up; the guard resets (if ever) via the normal reply path.
    p.active = false;
    p.wire = crypto::Bytes{};
    return;
  }
  outbox_.push_back(
      Outbound{Outbound::Dest::kBank, 0, p.type, p.wire, kInvalidUser,
               p.trace_id});
  ++counter;
  ++p.attempts;
  p.next_at = now + jittered_backoff(p.attempts);
}

void Isp::poll_retries(sim::SimTime now) {
  if (!params_.retry.enabled) return;
  // Same chatty-poll treatment as maybe_trade_with_bank: log only when a
  // pending wire is actually due (retry_wire mutates in exactly that case).
  if (wal_) {
    const auto due = [now](const PendingWire& p) {
      return p.active && now >= p.next_at;
    };
    if (due(pending_buy_) || due(pending_sell_) || due(pending_report_)) {
      crypto::Bytes p;
      crypto::put_i64(p, now);
      log_op(WalOp::kPollRetries, p);
    }
  }
  retry_wire(pending_buy_, now, metrics_.bank_retries);
  retry_wire(pending_sell_, now, metrics_.bank_retries);
  retry_wire(pending_report_, now, metrics_.report_retries);
}

void Isp::maybe_trade_with_bank(sim::SimTime now) {
  // Logged only when a guard will fire: this poll runs every simulated
  // second per ISP and almost always no-ops, which would otherwise dominate
  // the WAL.  The predicate mirrors the guards below exactly, so replaying
  // the logged polls re-fires the same trades.
  if (wal_ && ((canbuy_ && avail_ < params_.minavail) ||
               (cansell_ && avail_ > params_.maxavail))) {
    crypto::Bytes p;
    crypto::put_i64(p, now);
    log_op(WalOp::kTradePoll, p);
  }
  if (canbuy_ && avail_ < params_.minavail) {
    canbuy_ = false;
    buyvalue_ = params_.maxavail - avail_;  // refill to the upper bound
    ns1_ = nonce_gen_.next();
    BuyRequest req{buyvalue_, *ns1_};
    ++metrics_.bank_buys_attempted;
    buy_trace_ = trace::next_id();
    if (buy_trace_ != 0)
      trace::begin(trace::Ev::kBankBuy, buy_trace_,
                   static_cast<std::uint16_t>(index_),
                   static_cast<std::uint64_t>(buyvalue_));
    Outbound o{Outbound::Dest::kBank, 0, kMsgBuy, {}};
    o.trace_id = buy_trace_;
    seal_into(bank_pub_, req.serialize(), rng_, env_scratch_, o.payload);
    arm_retry(pending_buy_, kMsgBuy, o.payload, now);
    pending_buy_.trace_id = buy_trace_;
    outbox_.push_back(std::move(o));
  }
  if (cansell_ && avail_ > params_.maxavail) {
    cansell_ = false;
    sellvalue_ = avail_ - params_.maxavail;
    // Divergence from the paper's pseudocode, on purpose: the paper leaves
    // `avail` untouched until the sellreply arrives, so concurrent user
    // purchases could drive it below `sellvalue` and the later decrement
    // would mint a negative pool.  We reserve the amount at initiation.
    // (The AP rendition in ap_spec.cpp keeps the paper's literal behaviour
    // so the latent race is demonstrable; see EXPERIMENTS.md.)
    avail_ -= sellvalue_;
    ns2_ = nonce_gen_.next();
    SellRequest req{sellvalue_, *ns2_};
    ++metrics_.bank_sells;
    sell_trace_ = trace::next_id();
    if (sell_trace_ != 0)
      trace::begin(trace::Ev::kBankSell, sell_trace_,
                   static_cast<std::uint16_t>(index_),
                   static_cast<std::uint64_t>(sellvalue_));
    Outbound o{Outbound::Dest::kBank, 0, kMsgSell, {}};
    o.trace_id = sell_trace_;
    seal_into(bank_pub_, req.serialize(), rng_, env_scratch_, o.payload);
    arm_retry(pending_sell_, kMsgSell, o.payload, now);
    pending_sell_.trace_id = sell_trace_;
    outbox_.push_back(std::move(o));
  }
}

void Isp::on_buyreply(const crypto::Bytes& wire) {
  log_op(WalOp::kBuyReply, wire);
  if (!unseal_into(bank_pub_, wire, env_scratch_, plain_scratch_)) {
    ++metrics_.bad_envelopes;
    return;
  }
  const auto reply = BuyReply::deserialize(plain_scratch_);
  if (!reply) {
    ++metrics_.bad_envelopes;
    return;
  }
  // Paper: "if ns1 = nr1 -> ..." — replayed or stale replies are ignored.
  if (!ns1_ || !(reply->nonce == *ns1_)) {
    ++metrics_.bad_nonce_replies;
    return;
  }
  ns1_.reset();
  canbuy_ = true;
  pending_buy_.active = false;
  pending_buy_.wire = crypto::Bytes{};
  if (buy_trace_ != 0) {
    trace::end(trace::Ev::kBankBuy, buy_trace_,
               static_cast<std::uint16_t>(index_), reply->accepted ? 1 : 0);
    buy_trace_ = 0;
  }
  if (reply->accepted) {
    avail_ += buyvalue_;
    ++metrics_.bank_buys_accepted;
  }
  buyvalue_ = 0;
}

void Isp::on_sellreply(const crypto::Bytes& wire) {
  log_op(WalOp::kSellReply, wire);
  if (!unseal_into(bank_pub_, wire, env_scratch_, plain_scratch_)) {
    ++metrics_.bad_envelopes;
    return;
  }
  const auto reply = SellReply::deserialize(plain_scratch_);
  if (!reply) {
    ++metrics_.bad_envelopes;
    return;
  }
  if (!ns2_ || !(reply->nonce == *ns2_)) {
    ++metrics_.bad_nonce_replies;
    return;
  }
  ns2_.reset();
  cansell_ = true;
  pending_sell_.active = false;
  pending_sell_.wire = crypto::Bytes{};
  if (sell_trace_ != 0) {
    trace::end(trace::Ev::kBankSell, sell_trace_,
               static_cast<std::uint16_t>(index_), 1);
    sell_trace_ = 0;
  }
  sellvalue_ = 0;  // already deducted at initiation (see maybe_trade_with_bank)
}

void Isp::on_request(const crypto::Bytes& wire) {
  log_op(WalOp::kSnapshotRequest, wire);
  if (!unseal_into(bank_pub_, wire, env_scratch_, plain_scratch_)) {
    ++metrics_.bad_envelopes;
    return;
  }
  const auto req = SnapshotRequest::deserialize(plain_scratch_);
  if (!req) {
    ++metrics_.bad_envelopes;
    return;
  }
  // Paper: "if seq = seq' -> cansend := false; timeout after 10 minutes".
  if (req->seq != seq_) {
    ++metrics_.stale_requests;
    return;
  }
  // The bank only opens round seq_ after completing round seq_ - 1, so a
  // current-seq request doubles as the ack for our previous credit report:
  // stop retrying it.
  pending_report_.active = false;
  pending_report_.wire = crypto::Bytes{};
  cansend_ = false;
  quiescing_ = true;
}

void Isp::on_quiesce_timeout(sim::SimTime now) {
  if (!quiescing_) return;
  if (wal_) {
    crypto::Bytes p;
    crypto::put_i64(p, now);
    log_op(WalOp::kQuiesceTimeout, p);
  }
  quiescing_ = false;

  // send reply(NCR(B_b, credit)) to bank
  CreditReport report{seq_, credit_};
  Outbound o{Outbound::Dest::kBank, 0, kMsgReply, {}};
  o.trace_id = trace::next_id();
  if (o.trace_id != 0)
    trace::instant(trace::Ev::kCreditReport, o.trace_id,
                   static_cast<std::uint16_t>(index_), seq_);
  seal_into(bank_pub_, report.serialize(), rng_, env_scratch_, o.payload);
  arm_retry(pending_report_, kMsgReply, o.payload, now);
  pending_report_.trace_id = o.trace_id;
  outbox_.push_back(std::move(o));
  ++metrics_.snapshots_answered;

  // credit := 0; cansend := true; seq := seq + 1
  credit_.assign(params_.n_isps, 0);
  cansend_ = true;
  seq_ += 1;

  // Flush mail buffered during the quiesce window.
  while (!buffer_.empty()) {
    BufferedSend b = std::move(buffer_.front());
    buffer_.pop_front();
    if (b.msg.trace_id != 0)
      trace::end(trace::Ev::kQuiesceBuffer, b.msg.trace_id,
                 static_cast<std::uint16_t>(index_));
    if (b.paid) {
      // Payment was committed at buffer time; the credit entry and the
      // transmission happen now.
      buffered_paid_ -= 1;
      transport_paid_email(b.dest_isp, b.msg, b.sender_user);
    } else {
      outbox_.push_back(Outbound{Outbound::Dest::kIsp, b.dest_isp, kMsgEmail,
                                 b.msg.serialize(), kInvalidUser,
                                 b.msg.trace_id});
    }
  }
}

void Isp::release_user(UserId u) {
  if (wal_) {
    crypto::Bytes p;
    crypto::put_u64(p, user_to_wire(u));
    log_op(WalOp::kReleaseUser, p);
  }
  const UserRef acc = users_.at(u);
  acc.quarantined = false;
  acc.warnings = 0;
  acc.blocked_today = false;
}

void Isp::end_of_day() {
  log_op(WalOp::kEndOfDay);
  // "At the end of every day, array sent is reset to 0."  The sent and
  // blocked_today columns share the population's day arena, so this is one
  // memset, not a walk over every user.
  users_.reset_day();
}

std::vector<Outbound> Isp::take_outbox() {
  std::vector<Outbound> out;
  out.swap(outbox_);
  return out;
}

}  // namespace zmail::core
