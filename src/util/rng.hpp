// Deterministic pseudo-random number generation for simulations.
//
// All stochastic components of the library draw from Rng so that every
// experiment is reproducible from a single 64-bit seed.  The core generator
// is xoshiro256** (Blackman & Vigna), seeded through SplitMix64 so that
// low-entropy seeds (0, 1, 2, ...) still yield well-mixed states.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace zmail {

// SplitMix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

class Rng;

// Counter-based stream derivation: a generator that is a pure function of
// (seed, a, b, k).  Used for pair-keyed draws — e.g. "latency sample k of
// host pair (a,b)" — so the value drawn does not depend on how draws for
// other pairs interleave with this one.  That independence is what lets a
// sharded simulation reproduce a partitioned world bit-identically at any
// shard or thread count.
Rng pair_keyed_rng(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                   std::uint64_t k) noexcept;

// xoshiro256** generator.  Copyable (cheap 32-byte state) so simulations can
// fork independent streams with `split()`.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC0FFEE) noexcept;

  // Raw 64 uniformly random bits.
  std::uint64_t next_u64() noexcept;

  // Uniform integer in [0, bound) using Lemire rejection; bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  double next_double() noexcept;

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  // Standard normal via Box-Muller (cached second deviate).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept;

  // Lognormal with parameters of the underlying normal.
  double lognormal(double mu, double sigma) noexcept;

  // Poisson-distributed count with the given mean (Knuth for small means,
  // normal approximation above 64).
  std::uint64_t poisson(double mean) noexcept;

  // Exponential with the given rate lambda (> 0).
  double exponential(double lambda) noexcept;

  // Geometric: number of failures before first success, p in (0,1].
  std::uint64_t geometric(double p) noexcept;

  // Zipf-distributed rank in [1, n] with exponent s (rejection sampling).
  std::uint64_t zipf(std::uint64_t n, double s) noexcept;

  // Pick an index according to a vector of non-negative weights.
  std::size_t weighted_choice(const std::vector<double>& weights) noexcept;

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // An independent stream; deterministic function of the current state.
  Rng split() noexcept;

  // Full generator state, for durable checkpointing: replaying a logged
  // command must consume the same deviates the original call drew, so the
  // cached Box-Muller half is part of the state, not an optimization.
  struct State {
    std::array<std::uint64_t, 4> s{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };
  State save_state() const noexcept {
    return State{state_, cached_normal_, has_cached_normal_};
  }
  void restore_state(const State& st) noexcept {
    state_ = st.s;
    cached_normal_ = st.cached_normal;
    has_cached_normal_ = st.has_cached_normal;
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace zmail
