# Empty dependencies file for core_ap_spec_test.
# This may be replaced when dependencies are built.
