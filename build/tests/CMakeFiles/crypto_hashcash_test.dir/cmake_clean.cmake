file(REMOVE_RECURSE
  "CMakeFiles/crypto_hashcash_test.dir/crypto_hashcash_test.cpp.o"
  "CMakeFiles/crypto_hashcash_test.dir/crypto_hashcash_test.cpp.o.d"
  "crypto_hashcash_test"
  "crypto_hashcash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_hashcash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
