// Scenario runner: executes a Zmail scenario script (see
// src/core/scenario.hpp for the language) from a file or stdin.
//
//   ./scenario_runner path/to/script.zs
//   echo "world isps=2 users=2" | ./scenario_runner -
//
//   ./scenario_runner script.zs --replicas 8 --threads 4 --json out.json
//   ./scenario_runner crashy.zs --store-dir /tmp/zs --checkpoint-interval 1h
//
// With no script argument, runs a built-in demo script.  With --replicas N
// the script runs N times on the sweep harness (seed varied per replica via
// sweep::derive_seed) and the merged counters land in the JSON report; the
// script's own expectations are checked in every replica.
//
// --store-dir DIR switches the durable store on (replica k persists under
// DIR/r<k>), which also unlocks the script's `crash` verb: a crashed host's
// in-memory state is wiped and rebuilt from its snapshot + WAL tail.
// --checkpoint-interval adds time-based checkpoints on top of the default
// quiesce-boundary ones.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <mutex>
#include <sstream>

#include "core/invariants.hpp"
#include "core/obs.hpp"
#include "core/scenario.hpp"
#include "sim/sweep.hpp"
#include "telemetry/export.hpp"
#include "telemetry/probes.hpp"
#include "trace/analyze.hpp"
#include "trace/export.hpp"
#include "trace/trace.hpp"

using namespace zmail;

namespace {

const char* kDemoScript = R"(# Zmail demo: two compliant ISPs, one legacy.
world isps=3 users=4 balance=25 limit=50 compliant=110 seed=2005

# Normal correspondence.
send 0.0 1.1 subject Hello
send 1.1 0.0 subject Re:Hello
run 10m

# A legacy-world spam blast; compliant receivers are not paid for it,
# but it is free to send -- the unprotected corner of the deployment.
spam 2.0 count=12
run 1h

# A user tops up and the day rolls over.
buy 0.2 15
day
run 5m

# First billing period: verification + settlement.
snapshot
run 30m
expect violations 0
expect conservation

# The legacy ISP adopts Zmail; its spammer now pays like everyone else.
flip 2
spam 2.0 count=12
run 1h
expect conservation
print balances
)";

struct Args {
  std::string script;  // empty = demo, "-" = stdin
  std::size_t replicas = 1;
  std::size_t threads = 1;
  std::size_t shards = 1;  // >1 = partition the world on the sharded engine
  std::size_t banks = 0;   // >0 = run against a FederatedZmailSystem
  bool audit = false;      // federated runs: continuous FederationAuditor
  std::uint64_t seed = 0;
  bool seed_given = false;
  std::string json_path;
  std::string store_dir;  // non-empty enables the durable store
  sim::Duration checkpoint_interval = 0;
  std::string trace_path;  // non-empty enables the flight recorder
  // Telemetry (any non-empty output path enables the sampling engine).
  std::string telemetry_csv;   // long-format CSV of every recorded series
  std::string telemetry_prom;  // Prometheus exposition, rewritten per tick
  std::string telemetry_json;  // obs v3 snapshot (timeseries + probes)
  sim::Duration telemetry_period = sim::kMinute;

  bool telemetry_on() const {
    return !telemetry_csv.empty() || !telemetry_prom.empty() ||
           !telemetry_json.empty();
  }
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [script.zs|-] [--replicas N] [--threads N]"
               " [--seed S] [--json PATH]\n"
               "       [--shards N] [--banks N] [--audit] [--store-dir DIR]"
               " [--checkpoint-interval DUR] [--trace PATH]\n"
               "  --banks N                 run the script against a\n"
               "                            FederatedZmailSystem with N\n"
               "                            member banks (all-compliant\n"
               "                            world; `crash bank<k> DUR`\n"
               "                            crashes member bank k)\n"
               "  --audit                   federated runs only: run the\n"
               "                            FederationAuditor continuously\n"
               "                            and fail on any violation\n"
               "  --shards N                partition the world into N shards\n"
               "                            driven in parallel by the\n"
               "                            conservative sharded engine; the\n"
               "                            merged results are bit-identical\n"
               "                            at any N >= 2 (N = 1 is the exact\n"
               "                            legacy single-threaded path)\n"
               "  --store-dir DIR           enable the durable store (WAL +\n"
               "                            snapshots) under DIR; replica k\n"
               "                            writes to DIR/r<k>.  Unlocks the\n"
               "                            script's `crash` verb.\n"
               "  --checkpoint-interval DUR also checkpoint every DUR of\n"
               "                            simulated time (30m, 2h, ...),\n"
               "                            not just at quiesce boundaries\n"
               "  --trace PATH              record per-message lifecycle spans\n"
               "                            and export them to PATH (.json =\n"
               "                            Chrome/Perfetto trace-event format,\n"
               "                            else compact binary).  Single\n"
               "                            replica only.\n"
               "  --telemetry PATH.csv      sample time series during the run\n"
               "                            and write them as long-format CSV\n"
               "                            (zmail_top renders it).  Single\n"
               "                            replica only.\n"
               "  --telemetry-json PATH     write an obs v3 snapshot with the\n"
               "                            timeseries + probe sections\n"
               "  --telemetry-prom PATH     rewrite PATH with the Prometheus\n"
               "                            text exposition at each sampling\n"
               "                            tick (unsharded worlds only)\n"
               "  --telemetry-period DUR    sampling cadence in sim time\n"
               "                            (default 1m)\n",
               argv0);
  return 2;
}

telemetry::TelemetryConfig telemetry_config(const Args& args) {
  telemetry::TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.sample_period = args.telemetry_period;
  cfg.prom_path = args.telemetry_prom;
  return cfg;
}

// Post-run telemetry export (single replica): merged series to CSV, the
// default probe rules evaluated retrospectively (fires/clears logged via
// the "probe" tag) with a console summary, and optionally the obs v3
// snapshot built by `v3_snapshot`.  Returns 0 or the process exit code.
int export_telemetry(
    const Args& args,
    const std::vector<const telemetry::TelemetryRegistry*>& regs,
    double endowment_epennies,
    const std::function<json::Value()>& v3_snapshot) {
  telemetry::DeriveSpec spec;
  spec.endowment_epennies = endowment_epennies;
  const std::vector<telemetry::Series> merged =
      telemetry::merge_series(regs, spec);
  std::size_t points = 0;
  for (const auto& s : merged) points += s.points.size();

  telemetry::ProbeEngine probes;
  for (telemetry::ProbeRule& r : telemetry::default_rules())
    probes.add_rule(std::move(r));
  const telemetry::ProbeReport report = probes.evaluate(merged);
  std::size_t transitions = 0;
  for (const auto& p : report.probes) transitions += p.transitions.size();
  std::printf(
      "telemetry: %zu series, %zu points; probes: %zu evaluated, %zu "
      "firing, %zu transition(s)\n",
      merged.size(), points, report.evaluated_count(), report.firing_count(),
      transitions);

  if (!args.telemetry_csv.empty()) {
    std::string err;
    if (!telemetry::write_csv(args.telemetry_csv, merged, &err)) {
      std::fprintf(stderr, "telemetry CSV export failed: %s\n", err.c_str());
      return 2;
    }
    std::printf("wrote %s\n", args.telemetry_csv.c_str());
  }
  if (!args.telemetry_json.empty()) {
    std::string err;
    if (!json::write_file(args.telemetry_json, v3_snapshot(), &err)) {
      std::fprintf(stderr, "telemetry JSON export failed: %s\n", err.c_str());
      return 2;
    }
    std::printf("wrote %s\n", args.telemetry_json.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(a, "--replicas") == 0) {
      const char* v = value();
      if (!v) return usage(argv[0]);
      args.replicas = std::max<std::size_t>(1, std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(a, "--threads") == 0) {
      const char* v = value();
      if (!v) return usage(argv[0]);
      args.threads = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(a, "--shards") == 0) {
      const char* v = value();
      if (!v) return usage(argv[0]);
      args.shards = std::max<std::size_t>(1, std::strtoull(v, nullptr, 10));
    } else if (std::strcmp(a, "--banks") == 0) {
      const char* v = value();
      if (!v) return usage(argv[0]);
      args.banks = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(a, "--audit") == 0) {
      args.audit = true;
    } else if (std::strcmp(a, "--seed") == 0) {
      const char* v = value();
      if (!v) return usage(argv[0]);
      args.seed = std::strtoull(v, nullptr, 10);
      args.seed_given = true;
    } else if (std::strcmp(a, "--json") == 0) {
      const char* v = value();
      if (!v) return usage(argv[0]);
      args.json_path = v;
    } else if (std::strcmp(a, "--store-dir") == 0) {
      const char* v = value();
      if (!v || !*v) return usage(argv[0]);
      args.store_dir = v;
    } else if (std::strcmp(a, "--checkpoint-interval") == 0) {
      const char* v = value();
      const auto d = v ? core::parse_duration(v) : std::nullopt;
      if (!d) return usage(argv[0]);
      args.checkpoint_interval = *d;
    } else if (std::strcmp(a, "--trace") == 0) {
      const char* v = value();
      if (!v || !*v) return usage(argv[0]);
      args.trace_path = v;
    } else if (std::strcmp(a, "--telemetry") == 0) {
      const char* v = value();
      if (!v || !*v) return usage(argv[0]);
      args.telemetry_csv = v;
    } else if (std::strcmp(a, "--telemetry-json") == 0) {
      const char* v = value();
      if (!v || !*v) return usage(argv[0]);
      args.telemetry_json = v;
    } else if (std::strcmp(a, "--telemetry-prom") == 0) {
      const char* v = value();
      if (!v || !*v) return usage(argv[0]);
      args.telemetry_prom = v;
    } else if (std::strcmp(a, "--telemetry-period") == 0) {
      const char* v = value();
      const auto d = v ? core::parse_duration(v) : std::nullopt;
      if (!d || *d <= 0) return usage(argv[0]);
      args.telemetry_period = *d;
    } else if (a[0] == '-' && std::strcmp(a, "-") != 0) {
      return usage(argv[0]);
    } else if (args.script.empty()) {
      args.script = a;
    } else {
      return usage(argv[0]);
    }
  }

  std::string text;
  if (args.script.empty()) {
    std::printf("(no script given; running the built-in demo)\n\n%s\n---\n",
                kDemoScript);
    text = kDemoScript;
  } else if (args.script == "-") {
    std::stringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  } else {
    std::ifstream f(args.script);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", args.script.c_str());
      return 2;
    }
    std::stringstream ss;
    ss << f.rdbuf();
    text = ss.str();
  }

  if (!args.trace_path.empty()) {
    if (args.replicas > 1) {
      // One recorder, one causal stream: replicas would interleave their
      // spans into a single unreadable trace.
      std::fprintf(stderr, "--trace requires --replicas 1\n");
      return 2;
    }
    trace::set_enabled(true);
  }

  core::ScenarioError err;
  const auto scenario = core::Scenario::parse(text, &err);
  if (!scenario) {
    std::fprintf(stderr, "parse error at line %zu: %s\n", err.line,
                 err.message.c_str());
    return 2;
  }

  if (args.banks > 0 && args.shards > 1) {
    std::fprintf(stderr, "--banks and --shards are mutually exclusive\n");
    return 2;
  }
  if (args.telemetry_on() && args.replicas > 1) {
    // One world, one set of series: replicas would overwrite each other's
    // output files.
    std::fprintf(stderr, "--telemetry requires --replicas 1\n");
    return 2;
  }
  if (args.audit && args.banks == 0) {
    std::fprintf(stderr, "--audit requires --banks\n");
    return 2;
  }
  if (args.banks > 0 && !scenario->params().compliant.empty()) {
    std::fprintf(stderr,
                 "--banks needs an all-compliant world (drop the script's"
                 " compliant= mask)\n");
    return 2;
  }

  // Replica runs go through the sweep harness; the default invocation is a
  // 1-replica sweep with the script's own seed, which reproduces the
  // historical behaviour exactly.
  const std::uint64_t base_seed =
      args.seed_given ? args.seed : scenario->seed();
  const bool vary_seed = args.seed_given || args.replicas > 1;

  std::vector<std::string> first_output;
  std::vector<core::ScenarioError> first_failures;
  std::mutex first_mutex;
  int telemetry_rc = 0;  // only written with --telemetry (replicas == 1)

  sweep::SweepOptions so;
  so.base_seed = base_seed;
  so.replicas = args.replicas;
  so.threads = args.threads;
  const sweep::SweepResult result = sweep::run(
      sweep::Point{"scenario", {}}, so,
      [&](const sweep::Point&, std::uint64_t seed, std::size_t replica) {
        core::Scenario copy = *scenario;
        if (vary_seed) copy.set_seed(seed);
        if (!args.store_dir.empty()) {
          // Per-replica subdirectories: replicas run concurrently and must
          // not share WAL/snapshot files.
          store::StoreConfig& st = copy.mutable_params().store;
          st.enabled = true;
          st.dir = args.store_dir + "/r" + std::to_string(replica);
          st.checkpoint_interval_us = args.checkpoint_interval;
        }
        sweep::MetricBag bag;
        core::ScenarioResult r;
        if (args.banks > 0) {
          core::FederatedScenarioRunner runner(copy, args.banks);
          core::FederationAuditor auditor(runner.world());
          if (args.audit) auditor.run_continuously(10 * sim::kMinute);
          if (args.telemetry_on())
            runner.world().enable_telemetry(telemetry_config(args));
          r = runner.run();
          auditor.check_now();
          if (args.audit && !auditor.report().ok())
            for (const auto& msg : auditor.report().messages)
              r.failures.push_back(core::ScenarioError{0, "audit: " + msg});
          const core::FederationMetrics fm =
              runner.world().federation().metrics();
          bag.count("fed_rounds", static_cast<double>(fm.rounds_completed));
          bag.count("fed_interbank_messages",
                    static_cast<double>(fm.interbank_messages));
          bag.count("fed_clearing_transfers",
                    static_cast<double>(fm.clearing_transfers));
          bag.count("fed_violations",
                    static_cast<double>(fm.violations_found));
          bag.count("audit_violations",
                    static_cast<double>(auditor.report().violations));
          bag.count("state_recoveries",
                    static_cast<double>(runner.world().state_recoveries()));
          const core::IspMetrics m = runner.world().total_isp_metrics();
          bag.count("emails_delivered",
                    static_cast<double>(m.emails_delivered));
          if (args.telemetry_on()) {
            const core::ZmailParams& wp = runner.world().params();
            const double endowment =
                static_cast<double>(wp.n_isps) *
                (static_cast<double>(wp.initial_avail) +
                 static_cast<double>(wp.users_per_isp) *
                     static_cast<double>(wp.initial_user_balance));
            obs::MetricsRegistry reg;
            reg.set_schema(obs::Schema::kV3);
            reg.add_system("scenario", runner.world());
            telemetry_rc = export_telemetry(
                args, {runner.world().telemetry()}, endowment,
                [&reg] { return reg.snapshot(); });
          }
        } else {
          core::ShardOptions shard_opts;
          shard_opts.shards = args.shards;
          core::ScenarioRunner runner(copy, shard_opts);
          if (args.telemetry_on())
            runner.world().enable_telemetry(telemetry_config(args));
          r = runner.run();
          const core::IspMetrics m = runner.world().total_isp_metrics();
          bag.count("emails_delivered", static_cast<double>(m.emails_delivered));
          bag.count("refused_no_balance",
                    static_cast<double>(m.refused_no_balance));
          bag.count("refused_daily_limit",
                    static_cast<double>(m.refused_daily_limit));
          if (args.telemetry_on()) {
            obs::MetricsRegistry reg;
            reg.set_schema(obs::Schema::kV3);
            reg.add_system("scenario", runner.world());
            telemetry_rc = export_telemetry(
                args, runner.world().telemetry_registries(),
                static_cast<double>(runner.world().initial_endowment()),
                [&reg] { return reg.snapshot(); });
          }
        }
        bag.count("commands_executed", static_cast<double>(r.commands_executed));
        bag.count("failures", static_cast<double>(r.failures.size()));
        bag.count("replicas_ok", r.ok() ? 1.0 : 0.0);
        if (replica == 0) {
          std::lock_guard<std::mutex> lock(first_mutex);
          first_output = r.output;
          first_failures = r.failures;
        }
        return bag;
      });

  for (const auto& line : first_output) std::printf("%s\n", line.c_str());
  const sweep::MetricBag& merged = result.points.front().merged;
  const auto failures = static_cast<std::uint64_t>(merged.counter("failures"));
  std::printf("executed %llu commands across %zu replica(s), %llu failure(s)\n",
              static_cast<unsigned long long>(
                  merged.counter("commands_executed")),
              args.replicas, static_cast<unsigned long long>(failures));
  for (const auto& f : first_failures)
    std::fprintf(stderr, "  line %zu: %s\n", f.line, f.message.c_str());

  if (!args.trace_path.empty()) {
    const auto events = trace::collect();
    std::string terr;
    if (!trace::export_auto(args.trace_path, events, trace::collect_logs(),
                            &terr)) {
      std::fprintf(stderr, "trace export failed: %s\n", terr.c_str());
      return 2;
    }
    const trace::ValidationResult v = trace::validate(events);
    std::printf("wrote trace %s (%zu events, %zu spans, %zu chains%s)\n",
                args.trace_path.c_str(), events.size(), v.spans_total,
                v.chains_total, v.ok ? "" : ", INVALID");
    for (const auto& p : v.problems)
      std::fprintf(stderr, "  trace: %s\n", p.c_str());
  }

  if (!args.json_path.empty()) {
    json::Value j = json::Value::object();
    j["schema"] = "zmail-scenario-v1";
    j["script"] = args.script.empty() ? std::string("<demo>") : args.script;
    j["commands_in_script"] =
        static_cast<std::uint64_t>(scenario->command_count());
    j["sweep"] = result.to_json();
    std::string werr;
    if (!json::write_file(args.json_path, j, &werr)) {
      std::fprintf(stderr, "JSON export failed: %s\n", werr.c_str());
      return 2;
    }
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  if (telemetry_rc != 0) return telemetry_rc;
  return failures == 0 ? 0 : 1;
}
