#include "net/address.hpp"

#include <gtest/gtest.h>

namespace zmail::net {
namespace {

TEST(Address, ParsesSimpleAddress) {
  const auto a = parse_address("alice@example.com");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->local, "alice");
  EXPECT_EQ(a->domain, "example.com");
  EXPECT_EQ(a->str(), "alice@example.com");
}

TEST(Address, AcceptsCommonLocalPartCharacters) {
  for (const char* s : {"a.b@x.y", "a-b@x.y", "a_b@x.y", "a+tag@x.y",
                        "u17@isp3.example", "A1@B2.c3"}) {
    EXPECT_TRUE(parse_address(s).has_value()) << s;
  }
}

class BadAddressTest : public ::testing::TestWithParam<const char*> {};

TEST_P(BadAddressTest, Rejected) {
  EXPECT_FALSE(parse_address(GetParam()).has_value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, BadAddressTest,
    ::testing::Values("", "@", "a@", "@b", "ab", "a@b@c", "a b@c.d",
                      "a@b c", "<a@b>", "a@.b", "a@b.", ".a@b", "a..b@c",
                      "a@b..c", "a!b@c"));

TEST(Address, ParsePathRequiresAngleBrackets) {
  EXPECT_TRUE(parse_path("<bob@host.dom>").has_value());
  EXPECT_FALSE(parse_path("bob@host.dom").has_value());
  EXPECT_FALSE(parse_path("<bob@host.dom").has_value());
  EXPECT_FALSE(parse_path("bob@host.dom>").has_value());
  EXPECT_FALSE(parse_path("<>").has_value());
}

TEST(Address, Ordering) {
  const EmailAddress a{"a", "x.y"}, b{"b", "x.y"};
  EXPECT_LT(a, b);
  EXPECT_EQ(a, (EmailAddress{"a", "x.y"}));
}

TEST(Address, SimulatedAddressRoundTrip) {
  for (std::size_t isp : {0u, 3u, 17u}) {
    for (std::size_t user : {0u, 5u, 999u}) {
      const EmailAddress a = make_user_address(isp, user);
      std::size_t i = 0, u = 0;
      ASSERT_TRUE(decode_user_address(a, i, u)) << a.str();
      EXPECT_EQ(i, isp);
      EXPECT_EQ(u, user);
    }
  }
}

TEST(Address, DecodeRejectsForeignShapes) {
  std::size_t i = 0, u = 0;
  EXPECT_FALSE(decode_user_address({"alice", "example.com"}, i, u));
  EXPECT_FALSE(decode_user_address({"u1", "example.com"}, i, u));
  EXPECT_FALSE(decode_user_address({"alice", "isp1.example"}, i, u));
  EXPECT_FALSE(decode_user_address({"u", "isp1.example"}, i, u));
}

TEST(Address, IspDomainShape) {
  EXPECT_EQ(isp_domain(0), "isp0.example");
  EXPECT_EQ(isp_domain(42), "isp42.example");
}

}  // namespace
}  // namespace zmail::net
