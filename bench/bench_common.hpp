// Shared helpers for the experiment benches.
//
// Every bench prints its tables through util::Table and finishes with a
// CHECK line per "shape" assertion — the qualitative claim from the paper
// that the regenerated numbers must reproduce (who wins, roughly by how
// much, where the crossover sits).  A failed check exits non-zero so the
// bench sweep doubles as a regression suite for EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace zmail::bench {

inline int g_failures = 0;

inline void check(bool ok, const std::string& claim) {
  std::printf("CHECK %-4s %s\n", ok ? "ok" : "FAIL", claim.c_str());
  if (!ok) ++g_failures;
}

inline int finish() {
  if (g_failures > 0) {
    std::fprintf(stderr, "%d shape check(s) failed\n", g_failures);
    return 1;
  }
  return 0;
}

}  // namespace zmail::bench
