# Empty dependencies file for core_bank_test.
# This may be replaced when dependencies are built.
