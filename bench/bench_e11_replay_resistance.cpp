// E11 — Replay and tamper resistance (paper Section 4.3/4.4).
//
// Claim: "we add nonces to prevent message replay attacks" (buy/sell) and
// "each request message from the bank has a sequence number, which is used
// to prevent message replay attacks."
//
// Regenerates:
//   E11.a  replay storm against the ISP's buy/sell replies: zero state
//          drift at any replay factor
//   E11.b  replay of snapshot requests and credit reports
//   E11.c  random tampering of sealed envelopes: rejection rate
//   E11.d  transport-level duplication: the network (not a hand-rolled
//          harness) duplicates datagrams of every type; nonce, sequence,
//          and ARQ dedupe shields must absorb all of it end-to-end
#include "bench_common.hpp"
#include "core/bank.hpp"
#include "core/invariants.hpp"
#include "core/isp.hpp"
#include "core/system.hpp"
#include "net/faults.hpp"
#include "util/table.hpp"

using namespace zmail;

namespace {

core::ZmailParams small() {
  core::ZmailParams p;
  p.n_isps = 2;
  p.users_per_isp = 2;
  p.minavail = 50;
  p.maxavail = 200;
  p.initial_avail = 100;
  return p;
}

void e11a_trade_replay() {
  Table t({"replays of each reply", "avail drift", "rejected replays"});
  bool no_drift = true;
  for (int replays : {1, 10, 100}) {
    Rng rng(111);
    const crypto::KeyPair keys = crypto::generate_keypair(rng);
    core::ZmailParams p = small();
    core::Isp isp(0, p, keys.pub, 7);
    core::Bank bank(p, keys, 8);

    // One legitimate buy...
    isp.set_avail(10);
    isp.maybe_trade_with_bank();
    crypto::Bytes buyreply;
    for (const auto& o : isp.take_outbox())
      buyreply = bank.on_buy(0, o.payload);
    isp.on_buyreply(buyreply);
    // ...and one legitimate sell.
    isp.set_avail(300);
    isp.maybe_trade_with_bank();
    crypto::Bytes sellreply;
    for (const auto& o : isp.take_outbox())
      sellreply = bank.on_sell(0, o.payload);
    isp.on_sellreply(sellreply);

    const EPenny settled = isp.avail();
    for (int k = 0; k < replays; ++k) {
      isp.on_buyreply(buyreply);
      isp.on_sellreply(sellreply);
    }
    const EPenny drift = isp.avail() - settled;
    if (drift != 0) no_drift = false;
    t.add_row({Table::num(std::int64_t{replays}), Table::num(drift),
               Table::num(isp.metrics().bad_nonce_replies)});
  }
  t.print("E11.a  replayed buy/sell replies (nonce check)");
  bench::check(no_drift, "replayed trade replies never change state");
}

void e11b_snapshot_replay() {
  Rng rng(112);
  const crypto::KeyPair keys = crypto::generate_keypair(rng);
  core::ZmailParams p = small();
  core::Isp isp(0, p, keys.pub, 9);
  core::Bank bank(p, keys, 10);

  // Round 0, legitimately.
  auto requests = bank.start_snapshot();
  crypto::Bytes request0;
  for (auto& [idx, wire] : requests)
    if (idx == 0) request0 = wire;
  isp.on_request(request0);
  isp.on_quiesce_timeout();
  crypto::Bytes report0;
  for (const auto& o : isp.take_outbox())
    if (o.type == core::kMsgReply) report0 = o.payload;
  bank.on_reply(0, report0);
  // Complete the round with isp1's (empty) report.
  core::Isp isp1(1, p, keys.pub, 11);
  for (auto& [idx, wire] : requests)
    if (idx == 1) isp1.on_request(wire);
  isp1.on_quiesce_timeout();
  for (const auto& o : isp1.take_outbox())
    if (o.type == core::kMsgReply) bank.on_reply(1, o.payload);

  const std::uint64_t seq_after = isp.seq();
  const std::uint64_t rounds_after = bank.metrics().snapshot_rounds;

  // Replay storm.
  for (int k = 0; k < 50; ++k) {
    isp.on_request(request0);   // stale seq
    bank.on_reply(0, report0);  // closed round
  }

  Table t({"metric", "after round", "after 50 replays"});
  t.add_row({"isp seq", Table::num(seq_after), Table::num(isp.seq())});
  t.add_row({"bank rounds", Table::num(rounds_after),
             Table::num(bank.metrics().snapshot_rounds)});
  t.add_row({"isp stale requests ignored", "0",
             Table::num(isp.metrics().stale_requests)});
  t.add_row({"bank stale reports ignored", "0",
             Table::num(bank.metrics().stale_reports)});
  t.print("E11.b  replayed snapshot requests and credit reports");

  bench::check(isp.seq() == seq_after && !isp.in_quiesce(),
               "replayed requests never re-quiesce the ISP");
  bench::check(bank.metrics().snapshot_rounds == rounds_after,
               "replayed reports never advance or corrupt a round");
}

void e11c_tampering() {
  Rng rng(113);
  const crypto::KeyPair keys = crypto::generate_keypair(rng);
  Rng seal_rng(114);
  Rng flip_rng(115);

  const int trials = 2'000;
  int rejected = 0;
  for (int i = 0; i < trials; ++i) {
    const core::SnapshotRequest req{static_cast<std::uint64_t>(i)};
    crypto::Bytes wire = core::seal(keys.priv, req.serialize(), seal_rng);
    // Flip one random bit.
    const std::size_t byte = flip_rng.next_below(wire.size());
    wire[byte] ^= static_cast<std::uint8_t>(1u << flip_rng.next_below(8));
    const auto plain = core::unseal(keys.pub, wire);
    if (!plain || !core::SnapshotRequest::deserialize(*plain) ||
        core::SnapshotRequest::deserialize(*plain)->seq !=
            static_cast<std::uint64_t>(i))
      ++rejected;
  }

  Table t({"tampered envelopes", "rejected or detected", "rate"});
  t.add_row({Table::num(std::int64_t{trials}),
             Table::num(std::int64_t{rejected}),
             Table::pct(static_cast<double>(rejected) / trials, 3)});
  t.print("E11.c  single-bit tampering of sealed envelopes");
  bench::check(rejected == trials,
               "every tampered envelope is rejected (HMAC over ciphertext)");
}

void e11d_transport_duplication() {
  // The replays above are hand-rolled; here the *network itself* duplicates
  // ~45% of all datagrams — emails (ARQ frames and acks), buy/sell wires,
  // snapshot requests, credit reports — over a full timed run with bank
  // trading and a snapshot round in the middle.
  core::ZmailParams p = small();
  p.n_isps = 3;
  p.users_per_isp = 3;
  p.initial_user_balance = 500;
  p.default_daily_limit = 1'000;
  p.retry.enabled = true;
  p.reliable_email_transport = true;  // receiver dedupe for duplicated mail
  core::ZmailSystem sys(p, 116);
  sys.enable_bank_trading(sim::kMinute);

  net::FaultPlan plan;
  plan.rates.duplicate = 0.45;
  net::FaultInjector inj(plan, 117);
  sys.attach_faults(&inj);

  core::InvariantAuditor auditor(sys);
  auditor.run_continuously(5 * sim::kMinute);

  Rng rng(118);
  const int sends = 240;
  for (int i = 0; i < sends; ++i) {
    const auto src = static_cast<std::size_t>(rng.next_below(p.n_isps));
    const auto hop = 1 + rng.next_below(p.n_isps - 1);
    const auto dst = (src + static_cast<std::size_t>(hop)) % p.n_isps;
    sys.send_email(
        net::make_user_address(src, rng.next_below(p.users_per_isp)),
        net::make_user_address(dst, rng.next_below(p.users_per_isp)), "dup",
        "m" + std::to_string(i));
    // Keep the ISP pools churning so duplicated buy/sell wires hit the bank.
    if (i % 16 == 3)
      sys.buy_epennies(net::make_user_address(src, 0), 40);
    if (i % 16 == 11)
      sys.sell_epennies(net::make_user_address(src, 0), 20);
    if (i == sends / 2) sys.start_snapshot();  // duplicated requests/reports
    sys.run_for(sim::kMinute);
  }
  sys.start_snapshot();
  sys.run_for(sim::kHour);
  sys.attach_faults(nullptr);
  sys.run_for(sim::kHour);  // drain with a clean network

  const core::IspMetrics m = sys.total_isp_metrics();
  const core::BankMetrics& bm = sys.bank().metrics();
  const std::uint64_t absorbed = bm.duplicate_buys + bm.duplicate_sells +
                                 bm.stale_trades + bm.stale_reports +
                                 m.stale_requests + m.duplicate_emails_dropped;
  auditor.check_now();

  Table t({"metric", "value"});
  t.add_row({"datagrams duplicated in flight",
             Table::num(inj.counters().duplicated)});
  t.add_row({"emails sent / received / refunded",
             Table::num(m.emails_sent_compliant) + " / " +
                 Table::num(m.emails_received_compliant) + " / " +
                 Table::num(m.emails_refunded)});
  t.add_row({"duplicate emails dropped (ARQ dedupe)",
             Table::num(m.duplicate_emails_dropped)});
  t.add_row({"duplicate buy/sell wires absorbed",
             Table::num(bm.duplicate_buys + bm.duplicate_sells)});
  t.add_row({"stale requests/reports ignored",
             Table::num(m.stale_requests + bm.stale_reports)});
  t.add_row({"invariant violations", Table::num(auditor.report().violations)});
  t.print("E11.d  transport-level duplication (fault-injected)");

  bench::check(inj.counters().duplicated > 0 && absorbed > 0,
               "the network really duplicated traffic and shields absorbed it");
  bench::check(m.emails_received_compliant + m.emails_refunded ==
                   m.emails_sent_compliant,
               "every paid email delivered (or refunded) exactly once");
  bench::check(sys.pending_transfers() == 0 && sys.conservation_holds(),
               "no e-penny minted, destroyed, or stranded by duplication");
  bench::check(auditor.report().ok(),
               "continuous audit saw zero invariant violations");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("e11_replay_resistance", argc, argv);
  std::printf("=== E11: replay and tamper resistance ===\n");
  e11a_trade_replay();
  e11b_snapshot_replay();
  e11c_tampering();
  e11d_transport_duplication();
  return harness.finish();
}
