// Durability half of the Isp state machine: full-state (de)serialization
// for snapshots, WAL command logging helpers, and command replay.  Kept out
// of isp.cpp so the protocol logic stays readable; the two files share the
// private state via the class.
//
// Replay correctness rests on determinism: serialize_state() captures every
// input a mutating method reads — including the RNG stream (seal_into and
// backoff jitter draw from it) and the nonce counter — so re-invoking the
// logged commands in order reproduces the pre-crash state bit for bit.
//
// Two snapshot renditions coexist:
//   v1 (serialize_state/restore_state) — one big-endian blob, per-user
//     rows serialized field by field.  Byte layout frozen: it is what WAL-
//     era snapshots on disk contain, what the round-trip tests pin, and
//     the row-serialization baseline the E7 bench compares against.
//   v2 (serialize_sections/restore_columnar) — a scalar section carrying
//     everything but the per-user rows, plus one raw little-endian section
//     per Population column.  Checkpoints write this; recovery maps the
//     snapshot file read-only and bulk-copies the columns back in.
#include <bit>

#include "core/isp.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"

namespace zmail::core {

namespace {

constexpr std::uint8_t kStateVersion = 1;          // v1 row blob
constexpr std::uint8_t kColumnarStateVersion = 2;  // v2 scalar section

void put_money(crypto::Bytes& b, Money m) { crypto::put_i64(b, m.micros()); }
Money get_money(crypto::ByteReader& r) {
  return Money::from_micros(r.get_i64());
}

void put_bool(crypto::Bytes& b, bool v) { crypto::put_u8(b, v ? 1 : 0); }
bool get_bool(crypto::ByteReader& r) { return r.get_u8() != 0; }

void put_rng(crypto::Bytes& b, const Rng& rng) {
  const Rng::State st = rng.save_state();
  for (std::uint64_t w : st.s) crypto::put_u64(b, w);
  crypto::put_u64(b, std::bit_cast<std::uint64_t>(st.cached_normal));
  put_bool(b, st.has_cached_normal);
}

void get_rng(crypto::ByteReader& r, Rng& rng) {
  Rng::State st;
  for (auto& w : st.s) w = r.get_u64();
  st.cached_normal = std::bit_cast<double>(r.get_u64());
  st.has_cached_normal = get_bool(r);
  rng.restore_state(st);
}

}  // namespace

void Isp::log_op(WalOp op) {
  if (wal_) wal_->append(static_cast<std::uint8_t>(op), crypto::Bytes{});
}

void Isp::log_op(WalOp op, const crypto::Bytes& payload) {
  if (wal_) wal_->append(static_cast<std::uint8_t>(op), payload);
}

void Isp::log_misbehavior(Misbehavior m) {
  if (!wal_) return;
  crypto::Bytes p;
  crypto::put_u8(p, static_cast<std::uint8_t>(m));
  log_op(WalOp::kSetMisbehavior, p);
}

// Everything after the per-user state, shared verbatim by both snapshot
// renditions (the byte layout here is part of the frozen v1 format).
void Isp::serialize_scalar_tail(crypto::Bytes& b) const {
  crypto::put_i64(b, avail_);
  put_money(b, till_);
  crypto::put_u32(b, static_cast<std::uint32_t>(credit_.size()));
  for (EPenny c : credit_) crypto::put_i64(b, c);

  put_bool(b, cansend_);
  put_bool(b, canbuy_);
  put_bool(b, cansell_);
  put_bool(b, quiescing_);
  crypto::put_i64(b, buyvalue_);
  crypto::put_i64(b, sellvalue_);
  crypto::put_u64(b, seq_);
  put_bool(b, ns1_.has_value());
  if (ns1_) crypto::put_nonce(b, *ns1_);
  put_bool(b, ns2_.has_value());
  if (ns2_) crypto::put_nonce(b, *ns2_);

  crypto::put_u32(b, static_cast<std::uint32_t>(buffer_.size()));
  for (const BufferedSend& s : buffer_) {
    crypto::put_u64(b, s.dest_isp);
    crypto::put_bytes(b, s.msg.serialize());
    put_bool(b, s.paid);
    crypto::put_u64(b, user_to_wire(s.sender_user));
  }
  crypto::put_i64(b, buffered_paid_);

  for (const PendingWire* p : {&pending_buy_, &pending_sell_, &pending_report_}) {
    put_bool(b, p->active);
    crypto::put_string(b, p->type.name());
    crypto::put_bytes(b, p->wire);
    crypto::put_u32(b, p->attempts);
    crypto::put_i64(b, p->next_at);
  }

  // The outbox is drained within the same event that fills it, so it is
  // empty at every crash point the simulation can model; serialized anyway
  // so standalone round trips are exact.
  crypto::put_u32(b, static_cast<std::uint32_t>(outbox_.size()));
  for (const Outbound& o : outbox_) {
    crypto::put_u8(b, static_cast<std::uint8_t>(o.dest));
    crypto::put_u64(b, o.isp_index);
    crypto::put_string(b, o.type.name());
    crypto::put_bytes(b, o.payload);
    crypto::put_u64(b, user_to_wire(o.sender_user));
  }

  crypto::put_u8(b, static_cast<std::uint8_t>(misbehavior_));

  const IspMetrics& m = metrics_;
  for (std::uint64_t v :
       {m.emails_sent_local, m.emails_sent_compliant,
        m.emails_sent_noncompliant, m.emails_received_compliant,
        m.emails_received_noncompliant, m.emails_delivered,
        m.emails_segregated, m.emails_discarded, m.emails_filtered_out,
        m.refused_no_balance, m.refused_daily_limit,
        m.emails_buffered_during_quiesce, m.snapshots_answered,
        m.zombie_warnings_sent, m.acks_generated, m.acks_received,
        m.bank_buys_attempted, m.bank_buys_accepted, m.bank_sells,
        m.bad_nonce_replies, m.bad_envelopes, m.stale_requests,
        m.bank_retries, m.report_retries, m.emails_retransmitted,
        m.emails_refunded, m.emails_shed, m.duplicate_emails_dropped})
    crypto::put_u64(b, v);

  put_rng(b, rng_);
  crypto::put_u64(b, nonce_gen_.issued());
}

bool Isp::restore_scalar_tail(crypto::ByteReader& r) {
  avail_ = r.get_i64();
  till_ = get_money(r);
  const std::uint32_t n_credit = r.get_u32();
  if (!r.ok() || n_credit > (1u << 24)) return false;
  credit_.assign(n_credit, 0);
  for (auto& c : credit_) c = r.get_i64();

  cansend_ = get_bool(r);
  canbuy_ = get_bool(r);
  cansell_ = get_bool(r);
  quiescing_ = get_bool(r);
  buyvalue_ = r.get_i64();
  sellvalue_ = r.get_i64();
  seq_ = r.get_u64();
  ns1_.reset();
  if (get_bool(r)) ns1_ = crypto::get_nonce(r);
  ns2_.reset();
  if (get_bool(r)) ns2_ = crypto::get_nonce(r);

  const std::uint32_t n_buf = r.get_u32();
  if (!r.ok() || n_buf > (1u << 24)) return false;
  buffer_.clear();
  for (std::uint32_t i = 0; i < n_buf; ++i) {
    BufferedSend s{};
    s.dest_isp = r.get_u64();
    const auto msg = net::EmailMessage::deserialize(r.get_bytes());
    if (!msg) return false;
    s.msg = *msg;
    s.paid = get_bool(r);
    s.sender_user = user_from_wire(r.get_u64());
    buffer_.push_back(std::move(s));
  }
  buffered_paid_ = r.get_i64();

  for (PendingWire* p : {&pending_buy_, &pending_sell_, &pending_report_}) {
    p->active = get_bool(r);
    // A never-used slot round-trips the default MsgType (empty name, not
    // internable).
    const std::string type_name = r.get_string();
    p->type = type_name.empty() ? net::MsgType{} : net::MsgType::intern(type_name);
    p->wire = r.get_bytes();
    p->attempts = r.get_u32();
    p->next_at = r.get_i64();
  }

  const std::uint32_t n_out = r.get_u32();
  if (!r.ok() || n_out > (1u << 24)) return false;
  outbox_.clear();
  for (std::uint32_t i = 0; i < n_out; ++i) {
    Outbound o{};
    o.dest = static_cast<Outbound::Dest>(r.get_u8());
    o.isp_index = r.get_u64();
    const std::string type_name = r.get_string();
    o.type = type_name.empty() ? net::MsgType{} : net::MsgType::intern(type_name);
    o.payload = r.get_bytes();
    o.sender_user = user_from_wire(r.get_u64());
    outbox_.push_back(std::move(o));
  }

  misbehavior_ = static_cast<Misbehavior>(r.get_u8());

  IspMetrics& m = metrics_;
  for (std::uint64_t* v :
       {&m.emails_sent_local, &m.emails_sent_compliant,
        &m.emails_sent_noncompliant, &m.emails_received_compliant,
        &m.emails_received_noncompliant, &m.emails_delivered,
        &m.emails_segregated, &m.emails_discarded, &m.emails_filtered_out,
        &m.refused_no_balance, &m.refused_daily_limit,
        &m.emails_buffered_during_quiesce, &m.snapshots_answered,
        &m.zombie_warnings_sent, &m.acks_generated, &m.acks_received,
        &m.bank_buys_attempted, &m.bank_buys_accepted, &m.bank_sells,
        &m.bad_nonce_replies, &m.bad_envelopes, &m.stale_requests,
        &m.bank_retries, &m.report_retries, &m.emails_retransmitted,
        &m.emails_refunded, &m.emails_shed, &m.duplicate_emails_dropped})
    *v = r.get_u64();

  get_rng(r, rng_);
  nonce_gen_.restore_issued(r.get_u64());
  return r.ok();
}

crypto::Bytes Isp::serialize_state() const {
  crypto::Bytes b;
  crypto::put_u8(b, kStateVersion);

  crypto::put_u32(b, static_cast<std::uint32_t>(users_.size()));
  for (std::size_t i = 0; i < users_.size(); ++i) {
    const UserId id(i);
    const auto pol = users_.policy_override(id);
    crypto::put_u8(b, pol ? static_cast<std::uint8_t>(*pol) + 1 : 0);
    const ConstUserRef u = users_.at(id);
    put_money(b, u.account);
    crypto::put_i64(b, u.balance);
    crypto::put_i64(b, u.sent);
    crypto::put_i64(b, u.limit);
    put_bool(b, u.blocked_today != 0);
    crypto::put_i64(b, u.warnings);
    put_bool(b, u.quarantined != 0);
    crypto::put_i64(b, u.lifetime_sent);
    crypto::put_i64(b, u.lifetime_received_paid);
    crypto::put_i64(b, u.lifetime_epennies_bought);
    crypto::put_i64(b, u.lifetime_epennies_sold);
  }

  serialize_scalar_tail(b);
  return b;
}

bool Isp::restore_state(const crypto::Bytes& state) {
  crypto::ByteReader r(state);
  if (r.get_u8() != kStateVersion) return false;

  const std::uint32_t n_users = r.get_u32();
  if (!r.ok() || n_users > (1u << 24)) return false;
  users_.reset(n_users, Money::zero(), 0, 0);
  for (std::uint32_t i = 0; i < n_users; ++i) {
    const UserId id(i);
    const std::uint8_t pol = r.get_u8();
    if (pol != 0)
      users_.set_policy_override(id,
                                 static_cast<NonCompliantPolicy>(pol - 1));
    const UserRef u = users_.at(id);
    u.account = get_money(r);
    u.balance = r.get_i64();
    u.sent = r.get_i64();
    u.limit = r.get_i64();
    u.blocked_today = get_bool(r) ? 1 : 0;
    u.warnings = r.get_i64();
    u.quarantined = get_bool(r) ? 1 : 0;
    u.lifetime_sent = r.get_i64();
    u.lifetime_received_paid = r.get_i64();
    u.lifetime_epennies_bought = r.get_i64();
    u.lifetime_epennies_sold = r.get_i64();
  }
  // The mail spool is not settlement state; recovery starts it empty.
  inboxes_.assign(n_users, std::vector<Delivery>{});

  if (!restore_scalar_tail(r)) return false;
  return r.ok() && r.at_end();
}

void Isp::serialize_sections(std::vector<store::SnapshotSection>& out) const {
  out.clear();
  out.reserve(1 + Population::kColumnCount);

  // Scalar section: user count + sparse policy table + the shared tail.
  crypto::Bytes b;
  crypto::put_u8(b, kColumnarStateVersion);
  crypto::put_u32(b, static_cast<std::uint32_t>(users_.size()));
  const auto& pol = users_.policy_overrides();
  crypto::put_u32(b, static_cast<std::uint32_t>(pol.size()));
  for (const auto& [slot, p] : pol) {
    crypto::put_u32(b, slot);
    crypto::put_u8(b, static_cast<std::uint8_t>(p));
  }
  serialize_scalar_tail(b);
  out.push_back(store::SnapshotSection{store::kIspScalarsSection,
                                       std::move(b)});

  // One raw section per column: a single sequential copy each, checksummed
  // by the container's per-section CRC.
  for (std::size_t c = 0; c < Population::kColumnCount; ++c) {
    const auto col = static_cast<Population::Column>(c);
    store::SnapshotSection s;
    s.id = store::kUserColumnBase + static_cast<std::uint32_t>(c);
    const std::uint8_t* d = users_.column_data(col);
    s.payload.assign(d, d + users_.column_bytes(col));
    out.push_back(std::move(s));
  }
}

bool Isp::restore_columnar(const std::vector<RawSection>& sections) {
  const RawSection* scalars = nullptr;
  const RawSection* cols[Population::kColumnCount] = {};
  for (const RawSection& s : sections) {
    if (s.id == store::kIspScalarsSection) {
      scalars = &s;
    } else if (s.id >= store::kUserColumnBase &&
               s.id < store::kUserColumnBase + Population::kColumnCount) {
      cols[s.id - store::kUserColumnBase] = &s;
    }
    // Other ids are recognized-but-unneeded side tables by contract;
    // required capabilities are gated by the header's feature bits.
  }
  if (!scalars) return false;

  const crypto::Bytes blob(scalars->data, scalars->data + scalars->size);
  crypto::ByteReader r(blob);
  if (r.get_u8() != kColumnarStateVersion) return false;
  const std::uint32_t n_users = r.get_u32();
  if (!r.ok() || n_users > (1u << 24)) return false;
  users_.reset(n_users, Money::zero(), 0, 0);
  const std::uint32_t n_pol = r.get_u32();
  if (!r.ok() || n_pol > n_users) return false;
  for (std::uint32_t i = 0; i < n_pol; ++i) {
    const std::uint32_t slot = r.get_u32();
    const std::uint8_t p = r.get_u8();
    if (!r.ok() || slot >= n_users) return false;
    users_.set_policy_override(UserId(slot),
                               static_cast<NonCompliantPolicy>(p));
  }
  inboxes_.assign(n_users, std::vector<Delivery>{});
  if (!restore_scalar_tail(r)) return false;
  if (!r.ok() || !r.at_end()) return false;

  for (std::size_t c = 0; c < Population::kColumnCount; ++c) {
    const auto col = static_cast<Population::Column>(c);
    if (!cols[c]) return false;
    if (!users_.load_column(col, cols[c]->data, cols[c]->size)) return false;
  }
  return true;
}

bool Isp::restore_snapshot(const store::SnapshotFileView& view) {
  if (view.meta().version < store::kSnapshotVersionColumnar) {
    // v1 compatibility: a pre-columnar snapshot still restores — copy the
    // single state blob out of the mapping and run the row decoder.
    const auto* s = view.find(store::kStateSection);
    if (!s) return false;
    return restore_state(crypto::Bytes(s->data, s->data + s->size));
  }
  std::vector<RawSection> secs;
  secs.reserve(view.sections().size());
  for (const auto& s : view.sections())
    secs.push_back(RawSection{s.id, s.data, static_cast<std::size_t>(s.size)});
  return restore_columnar(secs);
}

bool Isp::restore_snapshot(const store::SnapshotData& snap) {
  if (snap.meta.version < store::kSnapshotVersionColumnar) {
    for (const store::SnapshotSection& s : snap.sections)
      if (s.id == store::kStateSection) return restore_state(s.payload);
    return false;
  }
  std::vector<RawSection> secs;
  secs.reserve(snap.sections.size());
  for (const store::SnapshotSection& s : snap.sections)
    secs.push_back(RawSection{s.id, s.payload.data(), s.payload.size()});
  return restore_columnar(secs);
}

void Isp::apply_wal_record(std::uint8_t op, const crypto::Bytes& payload) {
  // Detach the sink so replayed commands do not re-log, and discard any
  // output they produce — it was already transported before the crash.
  store::WalSink* saved = wal_;
  wal_ = nullptr;
  crypto::ByteReader r(payload);
  switch (static_cast<WalOp>(op)) {
    case WalOp::kUserSend: {
      const UserId s = user_from_wire(r.get_u64());
      const std::size_t dest = r.get_u64();
      const UserId rcpt = user_from_wire(r.get_u64());
      const auto msg = net::EmailMessage::deserialize(r.get_bytes());
      if (r.ok() && msg) user_send(s, dest, rcpt, *msg);
      break;
    }
    case WalOp::kOnEmail: {
      const std::size_t from = r.get_u64();
      const crypto::Bytes wire = r.get_bytes();
      if (r.ok()) on_email(from, wire);
      break;
    }
    case WalOp::kUserBuy: {
      const UserId t = user_from_wire(r.get_u64());
      const EPenny x = r.get_i64();
      if (r.ok()) user_buy(t, x);
      break;
    }
    case WalOp::kUserSell: {
      const UserId t = user_from_wire(r.get_u64());
      const EPenny x = r.get_i64();
      if (r.ok()) user_sell(t, x);
      break;
    }
    case WalOp::kTradePoll:
      maybe_trade_with_bank(r.get_i64());
      break;
    case WalOp::kBuyReply:
      on_buyreply(payload);
      break;
    case WalOp::kSellReply:
      on_sellreply(payload);
      break;
    case WalOp::kSnapshotRequest:
      on_request(payload);
      break;
    case WalOp::kQuiesceTimeout:
      on_quiesce_timeout(r.get_i64());
      break;
    case WalOp::kPollRetries:
      poll_retries(r.get_i64());
      break;
    case WalOp::kRefundLost: {
      const UserId s = user_from_wire(r.get_u64());
      const std::size_t dest = r.get_u64();
      const bool same_epoch = get_bool(r);
      if (r.ok()) refund_lost_email(s, dest, same_epoch);
      break;
    }
    case WalOp::kEndOfDay:
      end_of_day();
      break;
    case WalOp::kReleaseUser:
      release_user(user_from_wire(r.get_u64()));
      break;
    case WalOp::kNoteRetransmit:
      note_retransmit();
      break;
    case WalOp::kNoteDupEmail:
      note_duplicate_email();
      break;
    case WalOp::kSetMisbehavior:
      set_misbehavior(static_cast<Misbehavior>(r.get_u8()));
      break;
  }
  outbox_.clear();
  wal_ = saved;
}

}  // namespace zmail::core
