// E6 — Incremental deployment (paper Section 5).
//
// Claim: "it can be deployed incrementally, starting with two compliant
// ISPs ... The good experience of the users of compliant ISPs will attract
// more people to switch ... which in turn causes more people to use
// compliant ISPs and more ISPs to become compliant."
//
// Regenerates:
//   E6.a  the adoption S-curve from 2 compliant ISPs
//   E6.b  sensitivity sweep: policy strictness (residual spam) and
//         switching friction
//   E6.c  the micro mechanism, measured end-to-end: spam that reaches a
//         compliant vs a non-compliant inbox in a mixed deployment
#include "bench_common.hpp"
#include "core/system.hpp"
#include "econ/adoption.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

using namespace zmail;

namespace {

void e6a_s_curve() {
  econ::AdoptionParams p;
  p.n_isps = 50;
  p.initial_compliant = 2;
  p.steps = 150;
  Rng rng(61);
  const auto trace = econ::simulate_adoption(p, rng);

  Table t({"step", "compliant ISPs", "user share", "spam/day compliant",
           "spam/day non-compliant"});
  for (std::size_t s = 0; s < trace.size(); s += 15) {
    const auto& row = trace[s];
    t.add_row({Table::num(std::uint64_t{row.step}),
               Table::num(std::uint64_t{row.compliant_isps}),
               Table::pct(row.compliant_user_share, 1),
               Table::num(row.avg_spam_compliant, 2),
               Table::num(row.avg_spam_noncompliant, 2)});
  }
  t.print("E6.a  adoption from the 2-ISP bootstrap");

  const std::size_t t50 = econ::steps_to_share(trace, 0.5);
  const std::size_t t90 = econ::steps_to_share(trace, 0.9);
  std::printf("50%% at step %zu, 90%% at step %zu\n", t50, t90);
  bench::check(trace.back().compliant_user_share > 0.9,
               "adoption reaches >90% of users (positive feedback)");
  bench::check(t90 < p.steps, "saturation happens within the horizon");

  // Acceleration: the max one-step gain is in the interior of the curve.
  double max_gain = 0;
  double share_at_max = 0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    const double g =
        trace[i].compliant_user_share - trace[i - 1].compliant_user_share;
    if (g > max_gain) {
      max_gain = g;
      share_at_max = trace[i - 1].compliant_user_share;
    }
  }
  bench::check(share_at_max > 0.05 && share_at_max < 0.95,
               "growth peaks mid-curve: an S-curve, not a fizzle");
}

void e6b_sensitivity() {
  Table t({"residual spam at compliant ISPs", "switch friction",
           "steps to 50%", "steps to 90%", "final share"});
  bool strict_policy_faster = true;
  std::size_t t90_strict = 0, t90_lax = 0;
  for (double residual : {0.02, 0.05, 0.20}) {
    for (double rate : {0.01, 0.02, 0.05}) {
      econ::AdoptionParams p;
      p.residual_spam_fraction = residual;
      p.switch_rate = rate;
      p.steps = 400;
      Rng rng(62);
      const auto trace = econ::simulate_adoption(p, rng);
      t.add_row({Table::pct(residual, 0), Table::num(rate, 2),
                 Table::num(std::uint64_t{econ::steps_to_share(trace, 0.5)}),
                 Table::num(std::uint64_t{econ::steps_to_share(trace, 0.9)}),
                 Table::pct(trace.back().compliant_user_share, 1)});
      if (residual == 0.02 && rate == 0.02)
        t90_strict = econ::steps_to_share(trace, 0.9);
      if (residual == 0.20 && rate == 0.02)
        t90_lax = econ::steps_to_share(trace, 0.9);
    }
  }
  t.print("E6.b  sensitivity: policy strictness and switching friction");
  strict_policy_faster = t90_strict <= t90_lax;
  bench::check(strict_policy_faster,
               "stricter handling of non-compliant mail speeds adoption");
}

void e6c_micro_mechanism() {
  core::ZmailParams p;
  p.n_isps = 4;
  p.users_per_isp = 25;
  p.compliant = {true, true, false, false};
  p.noncompliant_policy = core::NonCompliantPolicy::kDiscard;
  p.record_inboxes = false;
  core::ZmailSystem sys(p, 63);
  workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(64));
  workload::SpamCampaignParams cp;
  cp.spammer_isp = 2;  // spammer lives in the free world
  cp.messages = 1'000;
  Rng rng(65);
  workload::run_spam_campaign(sys, cp, corpus, rng);
  sys.run_for(2 * sim::kHour);

  const std::uint64_t spam_into_compliant =
      sys.isp(0).metrics().emails_received_noncompliant +
      sys.isp(1).metrics().emails_received_noncompliant;
  const std::uint64_t discarded = sys.isp(0).metrics().emails_discarded +
                                  sys.isp(1).metrics().emails_discarded;
  const std::uint64_t legacy_spam = sys.legacy_stats(2).emails_received_spam +
                                    sys.legacy_stats(3).emails_received_spam;

  Table t({"destination", "spam arriving", "spam reaching the inbox"});
  t.add_row({"compliant ISPs (discard policy)",
             Table::num(spam_into_compliant),
             Table::num(spam_into_compliant - discarded)});
  t.add_row({"non-compliant ISPs", Table::num(legacy_spam),
             Table::num(legacy_spam)});
  t.print("E6.c  measured inbox spam, mixed deployment");

  bench::check(spam_into_compliant == discarded,
               "compliant users' inboxes stay clean under the discard policy");
  bench::check(legacy_spam > 0,
               "non-compliant users keep eating spam — the switching motive");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("e6_incremental_deployment", argc, argv);
  std::printf("=== E6: incremental deployment ===\n");
  e6a_s_curve();
  e6b_sensitivity();
  e6c_micro_mechanism();
  return harness.finish();
}
