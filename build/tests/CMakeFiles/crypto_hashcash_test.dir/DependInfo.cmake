
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/crypto_hashcash_test.cpp" "tests/CMakeFiles/crypto_hashcash_test.dir/crypto_hashcash_test.cpp.o" "gcc" "tests/CMakeFiles/crypto_hashcash_test.dir/crypto_hashcash_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zmail_core.dir/DependInfo.cmake"
  "/root/repo/build/src/econ/CMakeFiles/zmail_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/zmail_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/zmail_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/zmail_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ap/CMakeFiles/zmail_ap.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zmail_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/zmail_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/zmail_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
