#include "econ/isp_cost.hpp"

namespace zmail::econ {

IspCostBreakdown isp_cost(const IspLoad& load, const MessageProfile& profile,
                          const ResourcePrices& prices,
                          double spam_stored_fraction) noexcept {
  const double total_msgs =
      static_cast<double>(load.legit_messages + load.spam_messages);
  const double spam_msgs = static_cast<double>(load.spam_messages);
  const double legit_msgs = static_cast<double>(load.legit_messages);

  const double gb_per_msg = profile.avg_size_kb / (1024.0 * 1024.0);

  const double bandwidth_dollars =
      total_msgs * gb_per_msg * prices.dollars_per_gb_bandwidth;

  const double stored_msgs = legit_msgs + spam_msgs * spam_stored_fraction;
  const double storage_dollars = stored_msgs * gb_per_msg *
                                 profile.storage_months *
                                 prices.dollars_per_gb_month_storage;

  const double cpu_hours =
      profile.filtered ? total_msgs * profile.filter_cpu_ms / 3.6e6 : 0.0;
  const double cpu_dollars = cpu_hours * prices.dollars_per_cpu_hour;

  IspCostBreakdown out;
  out.bandwidth = Money::from_dollars(bandwidth_dollars);
  out.storage = Money::from_dollars(storage_dollars);
  out.filter_cpu = Money::from_dollars(cpu_dollars);
  out.total = out.bandwidth + out.storage + out.filter_cpu;

  // Marginal spam cost: rerun with the spam removed and subtract.
  const double bw_no_spam =
      legit_msgs * gb_per_msg * prices.dollars_per_gb_bandwidth;
  const double st_no_spam = legit_msgs * gb_per_msg * profile.storage_months *
                            prices.dollars_per_gb_month_storage;
  const double cpu_no_spam =
      profile.filtered
          ? legit_msgs * profile.filter_cpu_ms / 3.6e6 *
                prices.dollars_per_cpu_hour
          : 0.0;
  out.attributable_to_spam =
      out.total - Money::from_dollars(bw_no_spam + st_no_spam + cpu_no_spam);
  return out;
}

}  // namespace zmail::econ
