// Interned datagram type ids.
//
// Datagram types used to travel as heap-allocated std::string, so every
// send copied a string and every dispatch compared bytes.  A MsgType is a
// 16-bit index into a process-wide intern table: comparisons are integer
// compares and sends copy two bytes.  The Zmail protocol's own tags are
// pre-interned below with fixed ids (re-exported by core/messages.hpp as
// the kMsg* constants); anything else — tests, future protocol extensions —
// goes through intern() at registration time, never on the per-message path.
#pragma once

#include <cstdint>
#include <string_view>

namespace zmail::net {

class MsgType {
 public:
  // Id 0 is reserved as "invalid"; ids 1..7 are the pre-interned protocol
  // tags below.  Construct new types with intern(), not this constructor.
  constexpr explicit MsgType(std::uint16_t id) noexcept : id_(id) {}
  constexpr MsgType() noexcept = default;

  // Returns the id for `name`, interning it on first sight (thread-safe,
  // idempotent).  Intended for registration-time code, not the send path.
  static MsgType intern(std::string_view name);

  std::string_view name() const noexcept;
  constexpr std::uint16_t id() const noexcept { return id_; }
  constexpr explicit operator bool() const noexcept { return id_ != 0; }

  // Lets a MsgType flow into string-keyed layers (the AP runtime's message
  // tuples, log lines) without call-site conversions.
  operator std::string_view() const noexcept {  // NOLINT
    return name();
  }

  friend constexpr bool operator==(MsgType, MsgType) noexcept = default;

 private:
  std::uint16_t id_ = 0;
};

// The paper's protocol tags (Section 4), pre-interned so the constants are
// usable in constant expressions.  Order must match the table seed in
// msg_type.cpp.
inline constexpr MsgType kMsgInvalid{0};
inline constexpr MsgType kMsgEmail{1};
inline constexpr MsgType kMsgBuy{2};
inline constexpr MsgType kMsgBuyReply{3};
inline constexpr MsgType kMsgSell{4};
inline constexpr MsgType kMsgSellReply{5};
inline constexpr MsgType kMsgRequest{6};
inline constexpr MsgType kMsgReply{7};

}  // namespace zmail::net
