#include "core/system.hpp"

#include "core/telemetry_wiring.hpp"
#include "trace/trace.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace zmail::core {

namespace {
// Quiesce window of Section 4.4 ("say 10 minutes").
constexpr sim::Duration kQuiesceWindow = 10 * sim::kMinute;

// Reliable email transport: initial retransmit timeout (doubles per
// attempt, capped).  Deterministic — no jitter draws — because the
// receiver-side dedupe makes redundant copies harmless.
constexpr sim::Duration kEmailRtoBase = 500 * sim::kMillisecond;
constexpr sim::Duration kEmailRtoCap = 60 * sim::kSecond;

sim::Duration email_rto(std::uint32_t attempts) {
  sim::Duration rto = kEmailRtoBase;
  for (std::uint32_t i = 1; i < attempts && rto < kEmailRtoCap; ++i) rto *= 2;
  return rto < kEmailRtoCap ? rto : kEmailRtoCap;
}

// Id-framed reliable-email datagram types (interned once).
net::MsgType msg_email_rel() {
  static const net::MsgType t = net::MsgType::intern("email-rel");
  return t;
}
net::MsgType msg_email_ack() {
  static const net::MsgType t = net::MsgType::intern("email-ack");
  return t;
}

// Transfer ids and acks travel over a corruptible network, and a bit-flip
// that redirects an ack (or a frame) to a *different* live transfer id
// would silently complete the wrong transfer.  Both id words are therefore
// sent twice, the second xored with a constant: a flip in either word
// breaks the pair and the frame is dropped for the retransmit to replace.
constexpr std::uint64_t kIdGuard = 0xA5A5'5A5A'C3C3'3C3CULL;

// FNV-1a over the email bytes: any payload corruption fails the frame, so
// a corrupted copy is never acknowledged (the sender's clean retransmit
// eventually gets through).
std::uint64_t frame_checksum(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}
}  // namespace

ZmailSystem::ZmailSystem(ZmailParams params, std::uint64_t seed)
    : ZmailSystem(std::move(params), seed, std::optional<ShardSlice>{}) {}

ZmailSystem::ZmailSystem(ZmailParams params, std::uint64_t seed,
                         const ShardSlice& slice)
    : ZmailSystem(std::move(params), seed, std::optional<ShardSlice>{slice}) {}

ZmailSystem::ZmailSystem(ZmailParams params, std::uint64_t seed,
                         std::optional<ShardSlice> slice)
    : params_(std::move(params)),
      rng_(seed),
      seed_(seed),
      sim_(),
      net_(sim_, Rng(seed ^ 0x4E455455ULL), net::LatencyModel{}),
      slice_(std::move(slice)) {
  const auto problems = params_.validate();
  ZMAIL_ASSERT_MSG(problems.empty(),
                   problems.empty() ? "" : problems.front().c_str());
  if (slice_) ZMAIL_ASSERT(slice_->shards > 0 && slice_->shard < slice_->shards);

  // Every shard draws the bank keys from the same stream so the key
  // material (and thus every sealed wire) is identical world-wide; only the
  // bank-owning shard instantiates the Bank itself.
  bank_keys_ = crypto::generate_keypair(rng_);
  if (owns_host(bank_host()))
    bank_ = std::make_unique<Bank>(params_, bank_keys_, seed ^ 0xB0B0ULL);

  legacy_.resize(params_.n_isps);
  smtp_bytes_in_.assign(params_.n_isps, 0);
  isps_.resize(params_.n_isps);
  isp_ctor_seed_.assign(params_.n_isps, 0);
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    // Partition-independent per-ISP seed: a function of (seed, i) only, so
    // ISP i starts identically whichever shard constructs it.
    isp_ctor_seed_[i] = seed * 0x5851F42D4C957F2DULL + i;
    net::HostId h;
    if (owns_host(i)) {
      if (params_.is_compliant(i))
        isps_[i] = std::make_unique<Isp>(i, params_, bank_keys_.pub,
                                         isp_ctor_seed_[i]);
      h = net_.add_host(net::isp_domain(i), [this, i](const net::Datagram& d) {
        on_datagram(i, d);
      });
    } else {
      h = net_.add_remote_host(net::isp_domain(i));
    }
    ZMAIL_ASSERT(h == i);
    net_.bind_domain(net::isp_domain(i), h);
  }
  const net::HostId bh =
      owns_host(bank_host())
          ? net_.add_host("bank.example",
                          [this](const net::Datagram& d) {
                            on_datagram(bank_host(), d);
                          })
          : net_.add_remote_host("bank.example");
  ZMAIL_ASSERT(bh == bank_host());

  if (slice_) {
    // Keyed draws make every latency sample and fault fate a pure function
    // of (seed, from, to, k) — the property that lets any shard count
    // replay the same world.  Whole (non-sliced) worlds keep the legacy
    // shared stream, preserving their byte-stable output.
    net_.enable_keyed_latency(seed ^ 0x5ABDED5ABDED5ABDULL);
    // Disjoint ARQ id space per shard: receiver-side dedupe is keyed by
    // transfer id alone, and two shards must never mint the same id.
    next_transfer_id_ = (static_cast<std::uint64_t>(slice_->shard) << 48) + 1;
  }

  if (params_.store.enabled) {
    std::string err;
    ZMAIL_ASSERT_MSG(store::ensure_dir(params_.store.dir, &err), err.c_str());
    stores_.resize(params_.n_isps + 1);
    for (std::size_t i = 0; i < params_.n_isps; ++i)
      if (isps_[i]) open_store(i);
    if (bank_) open_store(bank_host());
    if (params_.store.checkpoint_interval_us > 0) {
      sim_.schedule_every(
          static_cast<sim::Duration>(params_.store.checkpoint_interval_us),
          [this] {
            checkpoint_all();
            return true;
          });
    }
  }

  if (params_.retry.enabled) {
    // Fault-recovery poll: drives ISP buy/sell/report backoff timers and
    // the bank's snapshot re-requests.  Only armed when retries are on, so
    // default runs schedule no extra events and stay bit-identical.
    sim::Duration poll = params_.retry.base / 2;
    if (poll < 100 * sim::kMillisecond) poll = 100 * sim::kMillisecond;
    sim_.schedule_every(poll, [this] {
      poll_fault_recovery();
      return true;
    });
  }
}

Isp& ZmailSystem::isp(IspId i) {
  ZMAIL_ASSERT_MSG(isps_.at(i.index()) != nullptr,
                   "ISP is non-compliant (legacy)");
  return *isps_[i.index()];
}

const Isp& ZmailSystem::isp(IspId i) const {
  ZMAIL_ASSERT_MSG(isps_.at(i.index()) != nullptr,
                   "ISP is non-compliant (legacy)");
  return *isps_[i.index()];
}

const LegacyHostStats& ZmailSystem::legacy_stats(IspId i) const {
  return legacy_.at(i.index()).stats;
}

IspMetrics ZmailSystem::total_isp_metrics() const {
  IspMetrics total;
  for (const auto& isp : isps_)
    if (isp) total.merge(isp->metrics());
  return total;
}

LegacyHostStats ZmailSystem::total_legacy_stats() const {
  LegacyHostStats total;
  for (std::size_t i = 0; i < legacy_.size(); ++i) {
    if (params_.is_compliant(i)) continue;
    total.emails_sent += legacy_[i].stats.emails_sent;
    total.emails_received += legacy_[i].stats.emails_received;
    total.emails_received_spam += legacy_[i].stats.emails_received_spam;
  }
  return total;
}

void ZmailSystem::set_spam_filter(
    std::function<bool(const net::EmailMessage&)> f) {
  // Kept so crash recovery can reinstall it on a rebuilt ISP: process-local
  // callbacks are not durable state, the harness owns them.
  spam_filter_ = std::move(f);
  for (auto& isp : isps_)
    if (isp) isp->set_filter(spam_filter_);
}

SendOutcome ZmailSystem::send_email(const net::EmailAddress& from,
                                    const net::EmailAddress& to,
                                    std::string subject, std::string body,
                                    net::MailClass truth) {
  return send_email(
      net::make_email(from, to, std::move(subject), std::move(body), truth));
}

SendOutcome ZmailSystem::send_email(net::EmailMessage msg) {
  // Submission timestamp for the latency sample (survives quiesce
  // buffering; an ordinary header, so it rides plain SMTP).
  msg.set_header("X-Zmail-Sent-At", std::to_string(sim_.now()));
  std::size_t from_isp = 0, from_user = 0, to_isp = 0, to_user = 0;
  ZMAIL_ASSERT_MSG(!msg.to.empty(), "message needs a recipient");
  ZMAIL_ASSERT_MSG(
      net::decode_user_address(msg.from, from_isp, from_user) &&
          net::decode_user_address(msg.to.front(), to_isp, to_user),
      "addresses must be simulated user addresses (u<k>@isp<i>.example)");
  ZMAIL_ASSERT(from_isp < params_.n_isps && to_isp < params_.n_isps);

  // Root lifecycle span: minted here at submission, ended at a terminal
  // (deliver / discard / refuse / refund), possibly on another host.  The
  // id rides the email's optional serialized tail, so the wire bytes are
  // unchanged whenever tracing is off (next_id() returns 0).
  if (trace::enabled()) trace::set_sim_now(sim_.now());
  if (msg.trace_id == 0) msg.trace_id = trace::next_id();
  const std::uint64_t tid = msg.trace_id;
  if (tid != 0)
    trace::begin(trace::Ev::kMessage, tid, static_cast<std::uint16_t>(from_isp),
                 static_cast<std::uint64_t>(to_isp));
  trace::Scope tscope(tid);

  if (params_.is_compliant(from_isp)) {
    const SendResult r =
        isps_[from_isp]->user_send(from_user, to_isp, to_user, std::move(msg));
    if (tid != 0) {
      const auto h = static_cast<std::uint16_t>(from_isp);
      trace::instant(trace::Ev::kSubmit, tid, h,
                     static_cast<std::uint64_t>(r));
      if (SendOutcome::counts_as_refused(r) || r == SendResult::kQuarantined) {
        trace::instant(trace::Ev::kRefuse, tid, h,
                       static_cast<std::uint64_t>(r));
        trace::end(trace::Ev::kMessage, tid, h);
      } else if (r == SendResult::kShed) {
        trace::instant(trace::Ev::kShed, tid, h);
        trace::end(trace::Ev::kMessage, tid, h);
      }
    }
    pump_isp(from_isp);
    return SendOutcome::from(r);
  }

  // Legacy sender: plain SMTP, free, no accounting.
  ++legacy_[from_isp].stats.emails_sent;
  if (to_isp == from_isp) {
    ++legacy_[from_isp].stats.emails_received;
    if (msg.truth == net::MailClass::kSpam)
      ++legacy_[from_isp].stats.emails_received_spam;
    if (tid != 0) {
      const auto h = static_cast<std::uint16_t>(from_isp);
      trace::instant(trace::Ev::kDeliver, tid, h, 0,
                     msg.truth == net::MailClass::kSpam ? 1u : 0u);
      trace::end(trace::Ev::kMessage, tid, h);
    }
    return SendOutcome::from(SendResult::kDeliveredLocally);
  }
  if (tid != 0)
    trace::instant(trace::Ev::kSubmit, tid,
                   static_cast<std::uint16_t>(from_isp),
                   static_cast<std::uint64_t>(SendResult::kSentFree));
  net_.send(from_isp, to_isp, kMsgEmail, msg.serialize());
  return SendOutcome::from(SendResult::kSentFree);
}

SendOutcome ZmailSystem::send_email_multi(const net::EmailMessage& msg) {
  SendOutcome out;
  bool first = true;
  for (const net::EmailAddress& rcpt : msg.to) {
    net::EmailMessage copy = msg;
    copy.to = {rcpt};
    const SendResult r = send_email(std::move(copy));
    if (SendOutcome::counts_as_refused(r)) {
      if (out.refused == 0) out.result = r;  // first refusal wins
      ++out.refused;
    } else {
      if (first) out.result = r;
      ++out.sent;
    }
    first = false;
  }
  return out;
}

void ZmailSystem::make_compliant(IspId isp) {
  ZMAIL_ASSERT_MSG(!sliced(),
                   "use ShardedSystem::make_compliant on a sliced world");
  const std::size_t isp_index = isp.index();
  ZMAIL_ASSERT(isp_index < params_.n_isps);
  if (params_.is_compliant(isp_index)) return;
  ZMAIL_ASSERT_MSG(in_flight_paid_ == 0,
                   "flip compliance only while no paid mail is in flight");
  make_compliant_owned(isp, bank_->seq());
}

void ZmailSystem::adopt_compliance(IspId isp) {
  // The bank flips compliant[j] and broadcasts; in a whole world the shared
  // params object makes the new array visible to every party at once, and
  // in a sliced world the facade calls this on every shard so each copy of
  // the array agrees.
  if (params_.compliant.empty())
    params_.compliant.assign(params_.n_isps, true);
  params_.compliant[isp.index()] = true;
}

void ZmailSystem::make_compliant_owned(IspId isp, std::uint64_t bank_seq) {
  const std::size_t isp_index = isp.index();
  ZMAIL_ASSERT(isp_index < params_.n_isps && owns_host(isp_index));
  adopt_compliance(isp);
  isp_ctor_seed_[isp_index] =
      seed_ * 0x5851F42D4C957F2DULL + isp_index + 0x9E37ULL;
  isps_[isp_index] = std::make_unique<Isp>(isp_index, params_, bank_keys_.pub,
                                           isp_ctor_seed_[isp_index]);
  if (spam_filter_) isps_[isp_index]->set_filter(spam_filter_);
  if (params_.store.enabled) open_store(isp_index);
  // Join the bank's current billing period.
  isps_[isp_index]->set_seq(bank_seq);
  // set_seq is a harness-side fixup, not a logged command; baseline the
  // flipped ISP with an immediate checkpoint so recovery starts from a
  // snapshot that already carries the adopted seq.
  if (params_.store.enabled) checkpoint_host(isp_index);
}

bool ZmailSystem::buy_epennies(const net::EmailAddress& user, EPenny n) {
  std::size_t i = 0, u = 0;
  if (!net::decode_user_address(user, i, u) || !params_.is_compliant(i))
    return false;
  if (trace::enabled()) trace::set_sim_now(sim_.now());
  const bool ok = isps_[i]->user_buy(u, n);
  pump_isp(i);
  return ok;
}

bool ZmailSystem::sell_epennies(const net::EmailAddress& user, EPenny n) {
  std::size_t i = 0, u = 0;
  if (!net::decode_user_address(user, i, u) || !params_.is_compliant(i))
    return false;
  if (trace::enabled()) trace::set_sim_now(sim_.now());
  const bool ok = isps_[i]->user_sell(u, n);
  pump_isp(i);
  return ok;
}

void ZmailSystem::enable_daily_resets() {
  sim_.schedule_every(sim::kDay, [this] {
    for (auto& isp : isps_)
      if (isp) isp->end_of_day();
    return true;
  });
}

void ZmailSystem::enable_bank_trading(sim::Duration poll) {
  sim_.schedule_every(poll, [this] {
    for (std::size_t i = 0; i < isps_.size(); ++i) {
      if (!isps_[i]) continue;
      isps_[i]->maybe_trade_with_bank(sim_.now());
      pump_isp(i);
    }
    return true;
  });
}

void ZmailSystem::poll_fault_recovery() {
  for (std::size_t i = 0; i < isps_.size(); ++i) {
    if (!isps_[i]) continue;
    isps_[i]->poll_retries(sim_.now());
    pump_isp(i);
  }
  // Bank-side snapshot recovery: a round still open after its deadline has
  // lost requests or reports in transit.  Re-request every silent ISP and
  // push the deadline out a full window, so re-requests back off instead
  // of flooding.  (ISPs that reported already advanced their seq and see a
  // re-request as stale; ISPs mid-quiesce just re-confirm.)  Only the
  // bank-owning shard runs this half.
  if (!bank_ || !bank_->round_open() || sim_.now() < snapshot_deadline_)
    return;
  auto requests = bank_->resend_requests();
  if (requests.empty()) return;
  const sim::SimTime deadline = sim_.now() + kQuiesceWindow;
  snapshot_deadline_ = deadline;
  for (auto& [isp_index, wire] : requests) {
    net_.send(bank_host(), isp_index, kMsgRequest, std::move(wire));
    schedule_quiesce_timeout(isp_index, deadline);
  }
}

void ZmailSystem::quiesce_timeout(std::size_t i) {
  if (isps_[i] && isps_[i]->in_quiesce()) {
    isps_[i]->on_quiesce_timeout(sim_.now());
    pump_isp(i);
    maybe_checkpoint(i);
  }
}

void ZmailSystem::schedule_quiesce_timeout(std::size_t isp_index,
                                           sim::SimTime deadline) {
  if (owns_host(isp_index)) {
    sim_.schedule_at(deadline, [this, i = isp_index] { quiesce_timeout(i); });
  } else if (remote_quiesce_) {
    // The ISP lives on another shard: the facade carries (isp, deadline)
    // across via the engine mailbox so the timeout fires on its owner.
    remote_quiesce_(isp_index, deadline);
  }
}

void ZmailSystem::enable_periodic_snapshots(sim::Duration period) {
  snapshots_enabled_ = true;
  sim_.schedule_every(period, [this] {
    start_snapshot();
    return true;
  });
}

void ZmailSystem::enable_telemetry(const telemetry::TelemetryConfig& cfg) {
  ZMAIL_ASSERT_MSG(!telemetry_, "telemetry already enabled");
  telemetry_ = std::make_unique<telemetry::TelemetryRegistry>(cfg);
  telemetry::TelemetryRegistry& t = *telemetry_;
  telem_latency_.assign(params_.n_isps,
                        telemetry::TelemetryRegistry::kNoChannel);

  // Samplers read through isps_[i] / bank_ at tick time, never a cached
  // pointer: crash recovery replaces the object under the same slot.
  // During an outage window they read the party's last pre-crash state,
  // which is itself sim-deterministic.
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    if (!owns_host(i)) continue;
    const std::string tag = "isp" + std::to_string(i);
    if (!isps_[i]) {
      // Legacy (non-compliant) host: only the ground-truth spam feed.
      t.add_rate("core", tag + ".legacy_spam_received", [this, i] {
        return static_cast<double>(legacy_[i].stats.emails_received_spam);
      });
      continue;
    }
    detail::register_isp_telemetry(
        t, tag, [this, i]() -> const Isp& { return *isps_[i]; });
    telem_latency_[i] = t.add_histogram("core", tag + ".delivery_latency_us");
    if (store::Checkpointer* cp = host_store(i))
      detail::register_store_telemetry(t, tag, cp);
  }

  if (bank_) {
    t.add_gauge("econ", "bank.epenny_supply", [this] {
      return static_cast<double>(bank_->epennies_outstanding());
    });
    t.add_rate("econ", "bank.minted", [this] {
      return static_cast<double>(bank_->metrics().epennies_minted);
    });
    t.add_rate("econ", "bank.burned", [this] {
      return static_cast<double>(bank_->metrics().epennies_burned);
    });
    t.add_rate("econ", "bank.settlements", [this] {
      return static_cast<double>(bank_->metrics().settlement_transfers);
    });
    t.add_gauge("econ", "bank.drift_pairs", [this] {
      return static_cast<double>(bank_->persistent_drift_pairs());
    });
    t.add_rate("core", "bank.credit_reports", [this] {
      return static_cast<double>(bank_->metrics().credit_reports_received);
    });
    if (store::Checkpointer* cp = host_store(bank_host()))
      detail::register_store_telemetry(t, "bank", cp);
  }

  // engine — partition-dependent signals (backlogs, engine totals); these
  // describe this process, not the simulated world, so they live outside
  // the deterministic section.
  const std::string sh =
      "shard" + std::to_string(slice_ ? slice_->shard : 0);
  t.add_engine_gauge("sim", sh + ".event_backlog", [this] {
    return static_cast<double>(sim_.pending());
  });
  t.add_engine_rate("sim", sh + ".events", [this] {
    return static_cast<double>(sim_.events_executed());
  });
  t.add_engine_rate("sim", sh + ".calendar_rebases", [this] {
    return static_cast<double>(sim_.calendar_rebases());
  });
  t.add_engine_rate("net", sh + ".datagrams", [this] {
    return static_cast<double>(net_.datagrams_sent());
  });
  t.add_engine_rate("net", sh + ".bytes", [this] {
    return static_cast<double>(net_.bytes_sent());
  });
  t.add_engine_rate("net", sh + ".horizon_clamps", [this] {
    return static_cast<double>(net_.horizon_clamps());
  });
  t.add_engine_gauge("net", sh + ".in_flight_transfers", [this] {
    return static_cast<double>(transfers_.size());
  });

  sim_.schedule_every(telemetry_->config().sample_period, [this] {
    telemetry_->sample(sim_.now());
    return true;
  });
}

void ZmailSystem::start_snapshot() {
  // All ISPs share one absolute report deadline.  If each ISP instead timed
  // its own 10 minutes from request *arrival*, the earliest-served ISP
  // would resume sending one network-latency before the latest-served ISP
  // reports, and its first new-period email could contaminate that peer's
  // still-open period (the timed twin of the AP resume barrier; the fuzz
  // suite caught exactly this).  A common deadline — "everyone reports at
  // 00:10" — removes the skew.
  ZMAIL_ASSERT_MSG(bank_ != nullptr,
                   "snapshots start on the bank-owning shard");
  auto requests = bank_->start_snapshot();
  if (requests.empty()) return;
  if (trace::enabled()) {
    trace::set_sim_now(sim_.now());
    // Host-scoped (id 0) span over the whole round: request fan-out through
    // the last report; closed when on_datagram sees the round close.
    trace::begin(trace::Ev::kSnapshotRound, 0,
                 static_cast<std::uint16_t>(bank_host()), bank_->seq());
  }
  const sim::SimTime deadline = sim_.now() + kQuiesceWindow;
  snapshot_deadline_ = deadline;
  for (auto& [isp_index, wire] : requests) {
    net_.send(bank_host(), isp_index, kMsgRequest, std::move(wire));
    schedule_quiesce_timeout(isp_index, deadline);
  }
}

void ZmailSystem::attach_faults(net::FaultInjector* injector) {
  faults_ = injector;
  net_.attach_faults(injector);
  if (!injector || stores_.empty()) return;
  // With the durable store on, each planned outage is a real crash: the
  // party restarts with wiped memory and recovers from snapshot + WAL.
  for (const net::HostOutage& o : injector->plan().outages) {
    if (o.host >= stores_.size() || !stores_[o.host]) continue;
    sim_.schedule_at(o.until, [this, h = o.host] { recover_host(h); });
  }
}

void ZmailSystem::open_store(std::size_t host) {
  auto cp = std::make_unique<store::Checkpointer>();
  std::string err;
  const std::string party = host == bank_host()
                                ? std::string("bank")
                                : "isp" + std::to_string(host);
  ZMAIL_ASSERT_MSG(cp->open(params_.store, party, &err), err.c_str());
  stores_[host] = std::move(cp);
  // Recover-at-open makes reopening an existing store directory resume the
  // persisted state; on a fresh directory both files are absent and this
  // is a no-op (neither callback fires).  Not counted as a crash recovery.
  rebuild_from_store(host);
}

void ZmailSystem::maybe_checkpoint(std::size_t host) {
  if (stores_.empty() || !params_.store.checkpoint_at_snapshot) return;
  checkpoint_host(host);
}

void ZmailSystem::checkpoint_host(std::size_t host) {
  if (host >= stores_.size() || !stores_[host]) return;
  if (trace::enabled()) trace::set_sim_now(sim_.now());
  trace::SpanScope ckpt_span(trace::Ev::kCheckpoint, 0,
                             static_cast<std::uint16_t>(host));
  std::string err;
  const auto sim_us = static_cast<std::uint64_t>(sim_.now());
  if (host == bank_host()) {
    ZMAIL_ASSERT_MSG(
        stores_[host]->checkpoint(bank_->serialize_state(), sim_us, &err),
        err.c_str());
  } else {
    // ISPs checkpoint in the v2 columnar layout: a scalar section plus one
    // raw section per Population column, each a single sequential write.
    std::vector<store::SnapshotSection> sections;
    isps_[host]->serialize_sections(sections);
    ZMAIL_ASSERT_MSG(
        stores_[host]->checkpoint_sections(std::move(sections), sim_us, &err),
        err.c_str());
  }
  ckpt_span.set_end_arg0(stores_[host]->stats().last_snapshot_bytes);
}

void ZmailSystem::checkpoint_all() {
  for (std::size_t h = 0; h < stores_.size(); ++h)
    if (stores_[h]) checkpoint_host(h);
}

void ZmailSystem::crash_host(std::size_t host, sim::Duration down_for) {
  ZMAIL_ASSERT_MSG(!stores_.empty(), "crash_host requires params.store.enabled");
  ZMAIL_ASSERT(host < stores_.size() && stores_[host] != nullptr);
  if (!faults_) {
    // An outage-only injector: empty rates draw no RNG per datagram, so
    // attaching it perturbs nothing but the crashed host's traffic.
    crash_faults_ = std::make_unique<net::FaultInjector>(net::FaultPlan{},
                                                         seed_ ^ 0xC4A5ULL);
    faults_ = crash_faults_.get();
    net_.attach_faults(faults_);
  }
  faults_->add_outage({host, sim_.now(), sim_.now() + down_for});
  sim_.schedule_at(sim_.now() + down_for,
                   [this, host] { recover_host(host); });
}

void ZmailSystem::recover_host(std::size_t host) {
  ZMAIL_ASSERT(host < stores_.size() && stores_[host] != nullptr);
  // Process death first: whatever the WAL buffered but never synced is
  // gone (empty under the default group_commit_records = 1).
  stores_[host]->simulate_crash();
  rebuild_from_store(host);
  ++state_recoveries_;
  if (faults_) faults_->note_state_recovery();
}

void ZmailSystem::rebuild_from_store(std::size_t host) {
  store::Checkpointer* cp = stores_[host].get();
  store::RecoveryStats rs;
  std::string err;
  bool ok = false;
  if (trace::enabled()) trace::set_sim_now(sim_.now());
  // Span first, guard second: the guard's destructor runs before the
  // span's, so the kRecovery end still emits.  While the guard lives, WAL
  // replay can neither mint ids nor emit — a replayed send must not
  // re-open spans the original execution already recorded.
  trace::SpanScope recovery_span(trace::Ev::kRecovery, 0,
                                 static_cast<std::uint16_t>(host));
  trace::ReplayGuard replay_guard;
  if (host == bank_host()) {
    AuditJournal* journal = bank_->journal();
    bank_ = std::make_unique<Bank>(params_, bank_keys_, seed_ ^ 0xB0B0ULL);
    Bank* b = bank_.get();
    ok = cp->recover(
        [b](const crypto::Bytes& s) { ZMAIL_ASSERT(b->restore_state(s)); },
        [b](std::uint8_t t, const crypto::Bytes& p) { b->apply_wal_record(t, p); },
        &rs, &err);
    bank_->attach_wal(&cp->wal());
    if (journal) bank_->attach_journal(journal);
  } else {
    isps_[host] = std::make_unique<Isp>(host, params_, bank_keys_.pub,
                                        isp_ctor_seed_[host]);
    Isp* isp = isps_[host].get();
    // recover_view maps the snapshot read-only; restore_snapshot handles
    // both v2 (bulk column copies from the mapping) and legacy v1 files.
    ok = cp->recover_view(
        [isp](const store::SnapshotFileView& v) {
          return isp->restore_snapshot(v);
        },
        [isp](std::uint8_t t, const crypto::Bytes& p) {
          isp->apply_wal_record(t, p);
        },
        &rs, &err);
    isp->attach_wal(&cp->wal());
    if (spam_filter_) isp->set_filter(spam_filter_);
  }
  ZMAIL_ASSERT_MSG(ok, err.c_str());
  recovery_span.set_end_arg0(rs.wal_records_replayed);
}

void ZmailSystem::run_for(sim::Duration d) { sim_.run(sim_.now() + d); }

void ZmailSystem::run_until_quiet(sim::Duration max) {
  sim_.run(sim_.now() + max);
}

void ZmailSystem::pump_isp(std::size_t i) {
  ZMAIL_ASSERT(isps_[i] != nullptr);
  for (Outbound& o : isps_[i]->take_outbox()) {
    // Restore the causal context the ISP captured when it queued this
    // outbound, so the datagram (and any ARQ transfer) inherits it even
    // when the send happens long after submission (quiesce flush, retry).
    trace::Scope tscope(o.trace_id);
    if (o.dest == Outbound::Dest::kBank) {
      net_.send(i, bank_host(), std::move(o.type), std::move(o.payload));
      continue;
    }
    if (o.type == kMsgEmail && params_.is_compliant(o.isp_index)) {
      in_flight_paid_ += 1;  // the e-penny rides inside the message
      if (params_.reliable_email_transport) {
        start_transfer(i, o.isp_index, std::move(o.payload), o.sender_user);
        continue;
      }
    }
    net_.send(i, o.isp_index, std::move(o.type), std::move(o.payload));
  }
}

void ZmailSystem::start_transfer(std::size_t from_isp, std::size_t to_isp,
                                 crypto::Bytes&& email, UserId sender_user) {
  const std::uint64_t id = next_transfer_id_++;
  PendingTransfer t;
  t.from_isp = from_isp;
  t.to_isp = to_isp;
  t.sender_user = sender_user;
  t.epoch = isps_[from_isp]->seq();
  t.payload = std::move(email);
  t.trace_id = trace::current();
  if (t.trace_id != 0)
    trace::begin(trace::Ev::kTransit, t.trace_id,
                 static_cast<std::uint16_t>(from_isp),
                 static_cast<std::uint64_t>(to_isp));
  transfers_.emplace(id, std::move(t));
  transmit_transfer(id);
}

void ZmailSystem::transmit_transfer(std::uint64_t id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  PendingTransfer& t = it->second;
  ++t.attempts;
  if (t.attempts > 1) isps_[t.from_isp]->note_retransmit();
  trace::Scope tscope(t.trace_id);
  if (t.trace_id != 0)
    trace::instant(trace::Ev::kTransmit, t.trace_id,
                   static_cast<std::uint16_t>(t.from_isp), t.attempts);
  // Frame: [id][id ^ guard][checksum(email)][email bytes].
  crypto::Bytes wire;
  wire.reserve(24 + t.payload.size());
  crypto::put_u64(wire, id);
  crypto::put_u64(wire, id ^ kIdGuard);
  crypto::put_u64(wire, frame_checksum(t.payload.data(), t.payload.size()));
  wire.insert(wire.end(), t.payload.begin(), t.payload.end());
  net_.send(t.from_isp, t.to_isp, msg_email_rel(), std::move(wire));
  sim_.schedule_at(sim_.now() + email_rto(t.attempts),
                   [this, id] { on_retransmit_timer(id); });
}

void ZmailSystem::on_retransmit_timer(std::uint64_t id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;  // acked; timer is a no-op
  if (params_.email_max_retransmits != 0 &&
      it->second.attempts > params_.email_max_retransmits) {
    abandon_transfer(id);
    return;
  }
  transmit_transfer(id);
}

void ZmailSystem::abandon_transfer(std::uint64_t id) {
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;
  const PendingTransfer& t = it->second;
  // The e-penny comes out of escrow and back to the payer.  A free-ride
  // (misbehaving) send carries no payment, so there is nothing to refund.
  in_flight_paid_ -= 1;
  Isp& sender = *isps_[t.from_isp];
  if (t.sender_user.valid())
    sender.refund_lost_email(t.sender_user, t.to_isp,
                             t.epoch == sender.seq());
  if (t.trace_id != 0) {
    const auto h = static_cast<std::uint16_t>(t.from_isp);
    trace::end(trace::Ev::kTransit, t.trace_id, h, 1);  // 1 = abandoned
    if (t.sender_user.valid())
      trace::instant(trace::Ev::kRefund, t.trace_id, h, t.attempts);
    trace::end(trace::Ev::kMessage, t.trace_id, h);  // lost: terminal here
  }
  transfers_.erase(it);
}

void ZmailSystem::handle_reliable_email(std::size_t host,
                                        const net::Datagram& d) {
  crypto::ByteReader r(d.payload);
  const std::uint64_t id = r.get_u64();
  const std::uint64_t guard = r.get_u64();
  const std::uint64_t sum = r.get_u64();
  if (!r.ok() || (id ^ kIdGuard) != guard) return;  // mangled id: no ack
  if (seen_transfers_.count(id) != 0) {
    // Already delivered; the previous ack must have been lost.  Re-ack.
    if (isps_[host]) isps_[host]->note_duplicate_email();
    if (trace::current() != 0)
      trace::instant(trace::Ev::kDuplicateDrop, trace::current(),
                     static_cast<std::uint16_t>(host), id);
    crypto::Bytes ack;
    crypto::put_u64(ack, id);
    crypto::put_u64(ack, id ^ kIdGuard);
    net_.send(host, d.from, msg_email_ack(), std::move(ack));
    return;
  }
  const crypto::Bytes email(d.payload.begin() + 24, d.payload.end());
  if (frame_checksum(email.data(), email.size()) != sum)
    return;  // corrupted in transit: drop silently, retransmit replaces it
  seen_transfers_.insert(id);
  crypto::Bytes ack;
  crypto::put_u64(ack, id);
  crypto::put_u64(ack, id ^ kIdGuard);
  net_.send(host, d.from, msg_email_ack(), std::move(ack));
  if (d.from < params_.n_isps && params_.is_compliant(d.from) &&
      params_.is_compliant(host))
    in_flight_paid_ -= 1;
  deliver_via_smtp(host, d.from, email);
}

void ZmailSystem::handle_email_ack(const net::Datagram& d) {
  crypto::ByteReader r(d.payload);
  const std::uint64_t id = r.get_u64();
  const std::uint64_t guard = r.get_u64();
  if (!r.ok() || (id ^ kIdGuard) != guard) return;  // mangled ack: ignore
  auto it = transfers_.find(id);
  if (it == transfers_.end()) return;  // duplicate ack
  if (d.from != it->second.to_isp) return;  // not from the receiver
  const PendingTransfer& t = it->second;
  if (t.trace_id != 0) {
    const auto h = static_cast<std::uint16_t>(t.from_isp);
    trace::instant(trace::Ev::kAck, t.trace_id, h, t.attempts);
    trace::end(trace::Ev::kTransit, t.trace_id, h, 0);  // 0 = acked
  }
  transfers_.erase(it);
}

void ZmailSystem::pump_all() {
  for (std::size_t i = 0; i < isps_.size(); ++i)
    if (isps_[i]) pump_isp(i);
}

void ZmailSystem::deliver_via_smtp(std::size_t to_isp, std::size_t from_isp,
                                   const crypto::Bytes& payload) {
  // Reconstruct the message and play a real SMTP dialogue into the
  // destination host, so every inter-ISP email exercises RFC-821 framing
  // and the byte counters reflect true protocol overhead.
  auto msg = net::EmailMessage::deserialize(payload);
  if (!msg) return;

  trace::Scope tscope(msg->trace_id);
  std::optional<trace::SpanScope> smtp_span;
  if (msg->trace_id != 0)
    smtp_span.emplace(trace::Ev::kSmtp, msg->trace_id,
                      static_cast<std::uint16_t>(to_isp));

  std::optional<net::EmailMessage> received;
  net::SmtpServerSession session(
      net::isp_domain(to_isp),
      [&received](const net::EmailMessage& m) { received = m; });
  const net::SmtpTransferResult xfer =
      net::smtp_transfer(*msg, net::isp_domain(from_isp), session);
  smtp_bytes_in_.at(to_isp) +=
      xfer.bytes_client_to_server + xfer.bytes_server_to_client;
  if (smtp_span)
    smtp_span->set_end_arg0(xfer.bytes_client_to_server +
                            xfer.bytes_server_to_client);
  if (!xfer.accepted || !received) return;

  // SMTP does not carry the simulation's ground-truth label — or the trace
  // id, which lives in the serialized tail the dialogue re-parses away;
  // restore both.
  received->truth = msg->truth;
  received->trace_id = msg->trace_id;

  if (const auto stamp = received->header("X-Zmail-Sent-At")) {
    try {
      const auto sent_at = static_cast<sim::SimTime>(std::stoll(*stamp));
      if (sent_at >= 0 && sent_at <= sim_.now()) {
        latency_.add(sim::to_seconds(sim_.now() - sent_at));
        if (telemetry_ && to_isp < telem_latency_.size())
          telemetry_->observe(telem_latency_[to_isp],
                              static_cast<std::uint64_t>(sim_.now() - sent_at));
      }
    } catch (...) {
      // Foreign or corrupted stamp: not a latency sample.
    }
  }

  if (isps_[to_isp]) {
    isps_[to_isp]->on_email(from_isp, received->serialize());
    pump_isp(to_isp);  // acknowledgments may have been generated
  } else {
    ++legacy_[to_isp].stats.emails_received;
    if (received->truth == net::MailClass::kSpam)
      ++legacy_[to_isp].stats.emails_received_spam;
    if (received->trace_id != 0) {
      const auto h = static_cast<std::uint16_t>(to_isp);
      trace::instant(trace::Ev::kDeliver, received->trace_id, h, 0,
                     received->truth == net::MailClass::kSpam ? 1u : 0u);
      trace::end(trace::Ev::kMessage, received->trace_id, h);
    }
  }
}

void ZmailSystem::on_datagram(std::size_t host, const net::Datagram& d) {
  if (host == bank_host()) {
    const std::size_t g = d.from;
    if (d.type == kMsgBuy) {
      crypto::Bytes reply = bank_->on_buy(g, d.payload);
      if (!reply.empty())
        net_.send(bank_host(), g, kMsgBuyReply, std::move(reply));
    } else if (d.type == kMsgSell) {
      crypto::Bytes reply = bank_->on_sell(g, d.payload);
      if (!reply.empty())
        net_.send(bank_host(), g, kMsgSellReply, std::move(reply));
    } else if (d.type == kMsgReply) {
      const bool was_open = bank_->round_open();
      bank_->on_reply(g, d.payload);
      if (was_open && !bank_->round_open() && trace::enabled()) {
        const auto bh = static_cast<std::uint16_t>(bank_host());
        trace::instant(trace::Ev::kSettle, 0, bh, bank_->seq());
        trace::end(trace::Ev::kSnapshotRound, 0, bh, bank_->seq());
      }
      // A round that just closed (seq advanced, no round open) is the
      // bank's snapshot-quiesce boundary: checkpoint once per round.
      if (!stores_.empty() && params_.store.checkpoint_at_snapshot &&
          !bank_->round_open() && bank_->seq() != bank_ckpt_seq_) {
        checkpoint_host(bank_host());
        bank_ckpt_seq_ = bank_->seq();
      }
    }
    return;
  }

  // ISP host.
  if (params_.reliable_email_transport) {
    if (d.type == msg_email_rel()) {
      handle_reliable_email(host, d);
      return;
    }
    if (d.type == msg_email_ack()) {
      handle_email_ack(d);
      return;
    }
  }
  if (d.type == kMsgEmail) {
    if (d.from < params_.n_isps && params_.is_compliant(d.from) &&
        params_.is_compliant(host))
      in_flight_paid_ -= 1;
    deliver_via_smtp(host, d.from, d.payload);
    return;
  }
  if (!isps_[host]) return;  // legacy hosts ignore protocol traffic
  Isp& isp = *isps_[host];
  if (d.type == kMsgBuyReply) {
    isp.on_buyreply(d.payload);
  } else if (d.type == kMsgSellReply) {
    isp.on_sellreply(d.payload);
  } else if (d.type == kMsgRequest) {
    // The matching quiesce-timeout event was scheduled (at the round's
    // common deadline) when the snapshot started.
    isp.on_request(d.payload);
  }
  pump_isp(host);
}

ZmailSystem::StoreTotals ZmailSystem::store_totals() const {
  StoreTotals t;
  for (const auto& cp : stores_) {
    if (!cp) continue;
    const store::Checkpointer::Stats& cs = cp->stats();
    t.checkpoints += cs.checkpoints;
    t.snapshot_bytes += cs.last_snapshot_bytes;
    t.wal_records_truncated += cs.wal_records_truncated;
    const store::WalWriter::Stats& ws = cp->wal().stats();
    t.wal_records_appended += ws.records_appended;
    t.wal_bytes_appended += ws.bytes_appended;
    t.wal_syncs += ws.syncs;
    t.wal_fsyncs += ws.fsyncs;
  }
  return t;
}

EPenny ZmailSystem::total_epennies() const {
  EPenny total = in_flight_paid_;
  for (const auto& isp : isps_)
    if (isp) total += isp->epennies_held() + isp->buffered_paid();
  return total;
}

Money ZmailSystem::total_real_money() const {
  Money total = Money::zero();
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    if (bank_) total += bank_->account(i);
    if (!isps_[i]) continue;
    total += isps_[i]->till();
    for (const Money a : isps_[i]->users().accounts()) total += a;
  }
  return total;
}

EPenny ZmailSystem::initial_endowment_owned() const {
  EPenny initial = 0;
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    if (!params_.is_compliant(i) || !isps_[i]) continue;
    initial += params_.initial_avail +
               static_cast<EPenny>(params_.users_per_isp) *
                   params_.initial_user_balance;
  }
  return initial;
}

bool ZmailSystem::conservation_holds() const {
  // Initial endowment + net minted must equal current holdings.
  return total_epennies() ==
         initial_endowment_owned() +
             (bank_ ? bank_->epennies_outstanding() : 0);
}

}  // namespace zmail::core
