// Federation durability end to end: a rebuilt member bank must be
// byte-identical to the one that "died", a torn or bit-flipped tail on a
// bank's WAL must trim cleanly to the last valid record, replayed
// inter-bank wires must be absorbed by the idempotency ledgers, and a
// mid-round bank crash must end in a settled round with clean audits.
#include <gtest/gtest.h>

#include <deque>
#include <filesystem>
#include <string>
#include <vector>

#include "core/federated_system.hpp"
#include "core/federation.hpp"
#include "core/invariants.hpp"
#include "core/isp.hpp"
#include "net/address.hpp"
#include "store/wal.hpp"

namespace zmail::core {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = "fed_persist_test_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

ZmailParams fed_store_params(const std::string& dir) {
  ZmailParams p;
  p.n_isps = 8;
  p.users_per_isp = 3;
  p.initial_user_balance = 200;
  p.default_daily_limit = 1'000;
  p.initial_avail = 300;
  p.minavail = 100;
  p.maxavail = 600;
  p.record_inboxes = false;
  p.retry.enabled = true;  // the inter-bank plane rides real datagrams
  p.store.enabled = true;
  p.store.dir = dir;
  return p;
}

void drive_traffic(FederatedZmailSystem& sys, std::uint64_t seed, int rounds) {
  Rng rng(seed);
  const auto& p = sys.params();
  for (int i = 0; i < rounds; ++i) {
    const std::size_t src = rng.next_below(p.n_isps);
    const std::size_t dst = (src + 1 + rng.next_below(p.n_isps - 1)) % p.n_isps;
    sys.send_email(net::make_user_address(src, rng.next_below(p.users_per_isp)),
                   net::make_user_address(dst, rng.next_below(p.users_per_isp)),
                   "t", "b" + std::to_string(i));
    sys.run_for(sim::kMinute);
  }
}

TEST(FederationPersistTest, RecoveredBankIsByteExactAtAQuietPoint) {
  const std::string dir = fresh_dir("exact");
  FederatedZmailSystem sys(fed_store_params(dir), 4, 91);
  sys.enable_bank_trading();
  drive_traffic(sys, 92, 30);
  sys.start_snapshot();
  drive_traffic(sys, 93, 20);
  sys.run_for(2 * sim::kHour);  // settle: round closed, wires acked
  ASSERT_FALSE(sys.federation().round_open());
  ASSERT_TRUE(sys.federation().idle());

  std::vector<crypto::Bytes> before;
  for (std::size_t b = 0; b < 4; ++b)
    before.push_back(sys.federation().serialize_state(b));
  ASSERT_FALSE(before[0].empty());

  for (std::size_t b = 0; b < 4; ++b) sys.recover_host(sys.bank_host(b));
  EXPECT_EQ(sys.state_recoveries(), 4u);

  // The rebuilt shards (fresh construction -> snapshot restore -> WAL
  // replay) must match the pre-crash state byte for byte, RNG and all.
  for (std::size_t b = 0; b < 4; ++b)
    EXPECT_EQ(sys.federation().serialize_state(b), before[b]) << "bank " << b;

  // And the recovered federation keeps settling: more traffic, clean audit.
  FederationAuditor auditor(sys);
  drive_traffic(sys, 94, 10);
  sys.start_snapshot();
  sys.run_for(2 * sim::kHour);
  auditor.check_now();
  EXPECT_TRUE(auditor.report().ok())
      << (auditor.report().messages.empty()
              ? ""
              : auditor.report().messages.front());
  std::filesystem::remove_all(dir);
}

// Truncate the bank WAL at every byte offset of the final record, and
// separately flip a bit at every byte offset of the final record.  Every
// mangled image must scan to exactly the preceding records — a torn tail
// is data loss, never an open error and never a phantom record — and the
// store must reopen on top of it.
TEST(FederationPersistTest, TornFederationWalTailStopsAtLastValidRecord) {
  const std::string dir = fresh_dir("torn");
  {
    ZmailParams p = fed_store_params(dir);
    p.initial_avail = 120;  // a few user buys push every pool below minavail
    FederatedZmailSystem sys(p, 2, 77);
    sys.enable_bank_trading();
    // Trades only, no snapshot: no checkpoint runs, so the buy records
    // stay in the log for the fuzz below.  ISPs 1/3/5/7 are homed on
    // bank1; deplete each pool so each ISP buys from it once.
    for (std::size_t isp : {1u, 3u, 5u, 7u}) {
      for (int k = 0; k < 3; ++k)
        ASSERT_TRUE(
            sys.buy_epennies(net::make_user_address(isp, k % 3), 10).ok());
      sys.run_for(6 * sim::kMinute);  // let the trading poll fire
    }
    drive_traffic(sys, 78, 10);
  }  // process "exits"

  const std::string path = dir + "/bank1.zwal";
  crypto::Bytes intact;
  ASSERT_EQ(store::read_file(path, intact), store::StoreStatus::kOk);
  const store::WalScanResult full = store::wal_scan(intact);
  ASSERT_EQ(full.status, store::StoreStatus::kOk);
  ASSERT_GT(full.records, 1u);
  ASSERT_EQ(full.valid_bytes, intact.size());

  // Start of the final record: everything before it survives a scan of
  // the image missing its last byte.
  crypto::Bytes headless(intact.begin(), intact.end() - 1);
  const std::size_t final_start = store::wal_scan(headless).valid_bytes;
  ASSERT_LT(final_start, intact.size());

  const auto check_mangled = [&](const crypto::Bytes& mangled,
                                 const char* what, std::size_t off) {
    const store::WalScanResult r = store::wal_scan(mangled);
    EXPECT_EQ(r.records, full.records - 1) << what << " at offset " << off;
    EXPECT_EQ(r.last_lsn, full.last_lsn - 1) << what << " at offset " << off;
    EXPECT_EQ(r.valid_bytes, final_start) << what << " at offset " << off;
  };
  for (std::size_t cut = final_start; cut < intact.size(); ++cut)
    check_mangled(
        crypto::Bytes(intact.begin(),
                      intact.begin() + static_cast<std::ptrdiff_t>(cut)),
        "truncate", cut);
  for (std::size_t off = final_start; off < intact.size(); ++off) {
    crypto::Bytes mangled = intact;
    mangled[off] ^= 0x10;
    check_mangled(mangled, "corrupt", off);
  }

  // The recovery path proper: a store whose WAL lost its tail reopens and
  // restores the durable prefix (recover-at-open, not a crash recovery).
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(intact.data(), 1, final_start, f), final_start);
    std::fclose(f);
  }
  FederatedZmailSystem reopened(fed_store_params(dir), 2, 77);
  EXPECT_EQ(reopened.state_recoveries(), 0u);
  EXPECT_FALSE(reopened.federation().serialize_state(1).empty());
  std::filesystem::remove_all(dir);
}

TEST(FederationPersistTest, DuplicateAndStaleInterbankWiresAbsorbed) {
  ZmailParams p;
  p.n_isps = 6;
  p.users_per_isp = 2;
  BankFederation fed(p, 3, 11);

  struct Wire {
    std::size_t from, to;
    std::uint8_t kind;
    crypto::Bytes wire;
  };
  std::deque<Wire> queue;
  fed.set_interbank_sink(
      [&](std::size_t from, std::size_t to, std::uint8_t kind,
          crypto::Bytes wire) {
        queue.push_back(Wire{from, to, kind, std::move(wire)});
      });

  std::vector<Isp> isps;
  isps.reserve(p.n_isps);
  for (std::size_t i = 0; i < p.n_isps; ++i)
    isps.emplace_back(i, p, fed.public_key_for(i), 200 + i);
  const auto mail_between = [&](std::size_t a, std::size_t b, int k) {
    for (int m = 0; m < k; ++m)
      isps[a].user_send(0, b, 0,
                        net::make_email(net::make_user_address(a, 0),
                                        net::make_user_address(b, 0), "s",
                                        "b"));
    for (const Outbound& o : isps[a].take_outbox())
      isps[b].on_email(a, o.payload);
  };
  mail_between(0, 4, 5);
  mail_between(4, 2, 3);
  mail_between(2, 0, 1);
  mail_between(1, 3, 7);

  for (auto& [idx, wire] : fed.start_snapshot()) {
    isps[idx].on_request(wire);
    isps[idx].on_quiesce_timeout();
    for (const Outbound& o : isps[idx].take_outbox())
      if (o.type == kMsgReply) fed.on_reply(idx, o.payload);
  }
  // Deliver the inter-bank plane (columns, clearing, acks) to quiescence,
  // remembering every wire for the replay below.
  std::vector<Wire> seen;
  while (!queue.empty()) {
    Wire d = std::move(queue.front());
    queue.pop_front();
    fed.on_interbank(d.to, d.from, d.kind, d.wire);
    seen.push_back(std::move(d));
  }
  ASSERT_FALSE(fed.round_open());
  ASSERT_TRUE(fed.idle());
  ASSERT_FALSE(seen.empty());

  const FederationMetrics base = fed.metrics();
  std::vector<Money> positions;
  for (std::size_t b = 0; b < 3; ++b)
    positions.push_back(fed.clearing_position(b));

  // A confused (or malicious) peer replays the entire round's traffic.
  for (const Wire& d : seen) fed.on_interbank(d.to, d.from, d.kind, d.wire);
  while (!queue.empty()) {  // re-acks provoked by the replay: also absorbed
    Wire d = std::move(queue.front());
    queue.pop_front();
    fed.on_interbank(d.to, d.from, d.kind, d.wire);
  }

  const FederationMetrics after = fed.metrics();
  EXPECT_EQ(after.rounds_completed, base.rounds_completed);
  EXPECT_EQ(after.clearing_transfers, base.clearing_transfers);
  EXPECT_EQ(after.settlements_cross_bank, base.settlements_cross_bank);
  EXPECT_GT(after.duplicate_interbank + after.stale_interbank, 0u);
  Money net = Money::zero();
  for (std::size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(fed.clearing_position(b), positions[b]) << "bank " << b;
    net += fed.clearing_position(b);
  }
  EXPECT_TRUE(net.is_zero());
  EXPECT_TRUE(fed.idle());
}

TEST(FederationPersistTest, MidRoundBankCrashRecoversAndSettles) {
  const std::string dir = fresh_dir("crash");
  FederatedZmailSystem sys(fed_store_params(dir), 4, 314);
  sys.enable_bank_trading();
  FederationAuditor auditor(sys);
  auditor.run_continuously(10 * sim::kMinute);

  drive_traffic(sys, 315, 20);
  sys.start_snapshot();
  // The round is open, bank1's sealed requests are in flight, and the
  // reports racing back die with the host: recovery must replay the WAL
  // (kStartRound included), re-seal, and close the round.
  sys.crash_host(sys.bank_host(1), 20 * sim::kMinute);
  drive_traffic(sys, 316, 10);
  sys.run_for(3 * sim::kHour);

  EXPECT_EQ(sys.state_recoveries(), 1u);
  EXPECT_FALSE(sys.federation().round_open());
  EXPECT_EQ(sys.federation().metrics().rounds_completed, 1u);
  EXPECT_TRUE(sys.federation().idle());
  auditor.check_now();
  EXPECT_TRUE(auditor.report().ok())
      << (auditor.report().messages.empty()
              ? ""
              : auditor.report().messages.front());
  EXPECT_TRUE(sys.conservation_holds());
  std::filesystem::remove_all(dir);
}

TEST(FederationPersistTest, HardenedFaultFreeRunsAreDeterministic) {
  const std::string da = fresh_dir("det_a");
  const std::string db = fresh_dir("det_b");
  FederatedZmailSystem a(fed_store_params(da), 4, 55);
  FederatedZmailSystem b(fed_store_params(db), 4, 55);
  for (FederatedZmailSystem* s : {&a, &b}) {
    s->enable_bank_trading();
    drive_traffic(*s, 56, 20);
    s->start_snapshot();
    s->run_for(2 * sim::kHour);
  }
  for (std::size_t bk = 0; bk < 4; ++bk)
    EXPECT_EQ(a.federation().serialize_state(bk),
              b.federation().serialize_state(bk))
        << "bank " << bk;
  EXPECT_EQ(a.federation().metrics().interbank_messages,
            b.federation().metrics().interbank_messages);
  EXPECT_EQ(a.total_epennies(), b.total_epennies());
  std::filesystem::remove_all(da);
  std::filesystem::remove_all(db);
}

}  // namespace
}  // namespace zmail::core
