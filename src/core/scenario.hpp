// Scenario DSL: a line-oriented script language over ZmailSystem.
//
// Lets examples, tests, and bug reports describe a reproducible Zmail run
// as text instead of C++:
//
//     world isps=3 users=4 balance=50 compliant=110
//     send 0.0 1.2 subject Hello there
//     spam 2.0 count=20
//     buy 0.1 25
//     run 2h
//     snapshot
//     crash 1 20m        # durable store only: kill isp1, recover after 20m
//     run 30m
//     day
//     flip 2
//     expect balance 1.2 51
//     expect violations 0
//     expect conservation
//     print balances
//
// Users are written `isp.user` (e.g. `1.2`) or as full simulated addresses
// (`u2@isp1.example`).  Durations take s/m/h/d suffixes.  `expect` lines
// turn the script into a checked regression; `ScenarioResult::ok()` is
// false if any expectation failed.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/federated_system.hpp"
#include "core/sharded_system.hpp"
#include "core/system.hpp"

namespace zmail::core {

struct ScenarioError {
  std::size_t line = 0;
  std::string message;
};

// A parsed script: opaque command list plus the world parameters.
class Scenario {
 public:
  // Parses the script text; returns nullopt and fills `error` on the first
  // syntax problem.
  static std::optional<Scenario> parse(const std::string& text,
                                       ScenarioError* error = nullptr);

  const ZmailParams& params() const noexcept { return params_; }
  // Harnesses overlay configuration the script language does not cover
  // (e.g. scenario_runner --store-dir enables the durable store) before
  // handing the scenario to a ScenarioRunner.
  ZmailParams& mutable_params() noexcept { return params_; }
  std::size_t command_count() const noexcept { return commands_.size(); }

  // The world seed (from the script's `seed=` key, default 1).  Writable so
  // harnesses can run replica variations of one script (the scenario_runner
  // --replicas sweep derives one seed per replica).
  std::uint64_t seed() const noexcept { return seed_; }
  void set_seed(std::uint64_t s) noexcept { seed_ = s; }

 private:
  friend class ScenarioRunner;
  friend class FederatedScenarioRunner;

  struct Command {
    std::size_t line = 0;
    std::string verb;
    std::vector<std::string> args;
  };

  ZmailParams params_;
  std::uint64_t seed_ = 1;
  std::vector<Command> commands_;
};

struct ScenarioResult {
  std::vector<std::string> output;       // lines from `print` commands
  std::vector<ScenarioError> failures;   // failed `expect`s / runtime errors
  std::uint64_t commands_executed = 0;

  bool ok() const noexcept { return failures.empty(); }
  std::string output_text() const;
};

// Executes a parsed scenario against a fresh world.  By default the world
// is a single whole ZmailSystem (byte-identical to the pre-sharding
// runner); pass ShardOptions{.shards = N} to run the same script against an
// N-way partitioned world on the sharded engine.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(const Scenario& scenario, ShardOptions shards = {});

  ScenarioResult run();

  // The world outlives run() so tests can inspect final state.
  ShardedSystem& world() noexcept { return *world_; }
  // Legacy accessor: the whole world when unsharded, shard 0 otherwise.
  ZmailSystem& system() noexcept { return world_->shard(0); }

 private:
  const Scenario& scenario_;
  std::unique_ptr<ShardedSystem> world_;
};

// Executes a parsed scenario against a FederatedZmailSystem with `n_banks`
// member banks (scenario_runner --banks N).  The federated world is
// all-compliant, so the mixed-deployment verbs (`spam`, `flip`, `policy`)
// fail cleanly; `crash bank<k> <dur>` crashes member bank k (durable store
// required), and `expect violations` reads the federation's last verify.
class FederatedScenarioRunner {
 public:
  FederatedScenarioRunner(const Scenario& scenario, std::size_t n_banks);

  ScenarioResult run();

  FederatedZmailSystem& world() noexcept { return *world_; }

 private:
  const Scenario& scenario_;
  std::unique_ptr<FederatedZmailSystem> world_;
};

// --- Parsing helpers exposed for reuse and direct testing -----------------

// "1.2" or "u2@isp1.example" -> (isp, user).
std::optional<std::pair<std::size_t, std::size_t>> parse_user_ref(
    const std::string& token);

// "90s" / "15m" / "2h" / "1d" -> simulated duration.
std::optional<sim::Duration> parse_duration(const std::string& token);

}  // namespace zmail::core
