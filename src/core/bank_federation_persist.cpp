// Durability half of the federated bank state machine (see bank_persist.cpp
// for the single-bank pattern).  Each member bank serializes independently:
// its member account slice, round-in-progress state, idempotency ledgers,
// unacked inter-bank wires, and its RNG stream — everything a crash must
// not lose and a WAL replay must rebuild deterministically.  The handlers
// are idempotent against duplicated inter-bank wires, which makes them
// doubly safe to replay.
#include <bit>

#include "core/federation.hpp"
#include "store/wal.hpp"

namespace zmail::core {

namespace {

constexpr std::uint8_t kStateVersion = 1;

void put_bool(crypto::Bytes& b, bool v) { crypto::put_u8(b, v ? 1 : 0); }
bool get_bool(crypto::ByteReader& r) { return r.get_u8() != 0; }

void put_rng(crypto::Bytes& b, const Rng& rng) {
  const Rng::State st = rng.save_state();
  for (std::uint64_t w : st.s) crypto::put_u64(b, w);
  crypto::put_u64(b, std::bit_cast<std::uint64_t>(st.cached_normal));
  put_bool(b, st.has_cached_normal);
}

void get_rng(crypto::ByteReader& r, Rng& rng) {
  Rng::State st;
  for (auto& w : st.s) w = r.get_u64();
  st.cached_normal = std::bit_cast<double>(r.get_u64());
  st.has_cached_normal = get_bool(r);
  rng.restore_state(st);
}

void put_matrix_i64(crypto::Bytes& b,
                    const std::vector<std::vector<EPenny>>& m) {
  crypto::put_u32(b, static_cast<std::uint32_t>(m.size()));
  for (const auto& row : m) {
    crypto::put_u32(b, static_cast<std::uint32_t>(row.size()));
    for (EPenny v : row) crypto::put_i64(b, v);
  }
}

bool get_matrix_i64(crypto::ByteReader& r,
                    std::vector<std::vector<EPenny>>& m) {
  const std::uint32_t rows = r.get_u32();
  if (!r.ok() || rows > (1u << 16)) return false;
  m.assign(rows, {});
  for (auto& row : m) {
    const std::uint32_t cols = r.get_u32();
    if (!r.ok() || cols > (1u << 16)) return false;
    row.assign(cols, 0);
    for (auto& v : row) v = r.get_i64();
  }
  return r.ok();
}

}  // namespace

crypto::Bytes BankFederation::serialize_state(std::size_t bank) const {
  const MemberBank& mb = banks_.at(bank);
  crypto::Bytes b;
  crypto::put_u8(b, kStateVersion);
  crypto::put_u64(b, params_.n_isps);
  crypto::put_u64(b, n_banks_);
  crypto::put_u64(b, bank);

  // Member account slice (ISP ascending; the peers own the other slots).
  std::uint32_t members = 0;
  for (std::size_t i = 0; i < params_.n_isps; ++i)
    if (home_bank(i) == bank) ++members;
  crypto::put_u32(b, members);
  for (std::size_t i = 0; i < params_.n_isps; ++i)
    if (home_bank(i) == bank) crypto::put_i64(b, accounts_[i].micros());

  crypto::put_u64(b, mb.seq);
  put_bool(b, mb.canrequest);
  crypto::put_u32(b, static_cast<std::uint32_t>(mb.reported.size()));
  for (bool v : mb.reported) put_bool(b, v);
  crypto::put_u64(b, mb.outstanding);
  put_matrix_i64(b, mb.verify);

  crypto::put_u32(b, static_cast<std::uint32_t>(n_banks_));
  for (std::size_t p = 0; p < n_banks_; ++p) {
    put_bool(b, mb.colset_from[p]);
    put_bool(b, mb.transfer_from[p]);
    put_bool(b, mb.pair_netted[p]);
    crypto::put_i64(b, mb.partial_net[p].micros());
    crypto::put_i64(b, mb.peer_partial[p].micros());
    crypto::put_i64(b, mb.clearing_pair[p].micros());
  }
  put_bool(b, mb.verified);
  crypto::put_i64(b, mb.clearing_pos.micros());

  for (const auto* ledger : {&mb.col_ledger, &mb.clr_ledger}) {
    crypto::put_u32(b, static_cast<std::uint32_t>(ledger->size()));
    for (const PeerLedger& l : *ledger) {
      put_bool(b, l.any_applied);
      crypto::put_u64(b, l.applied_hi);
    }
  }
  for (const auto* ledger : {&mb.buy_ledger, &mb.sell_ledger}) {
    crypto::put_u32(b, static_cast<std::uint32_t>(ledger->size()));
    for (const TradeLedger& l : *ledger) {
      put_bool(b, l.any_applied);
      crypto::put_u64(b, l.applied_hi);
      crypto::put_nonce(b, l.last_nonce);
      crypto::put_bytes(b, l.last_reply);
    }
  }

  crypto::put_u32(b, static_cast<std::uint32_t>(mb.pending.size()));
  for (const PendingWire& pw : mb.pending) {
    put_bool(b, pw.active);
    crypto::put_u8(b, pw.kind);
    crypto::put_u64(b, pw.round);
    crypto::put_u32(b, pw.attempts);
    crypto::put_i64(b, pw.next_at);
    crypto::put_bytes(b, pw.wire);
  }

  crypto::put_u32(b, static_cast<std::uint32_t>(mb.violations.size()));
  for (const CreditViolation& v : mb.violations) {
    crypto::put_u64(b, v.isp_i);
    crypto::put_u64(b, v.isp_j);
    crypto::put_i64(b, v.discrepancy);
  }

  const FederationMetrics& m = mb.metrics;
  for (std::uint64_t v :
       {m.rounds_completed, m.requests_sent, m.reports_received,
        m.interbank_messages, m.interbank_bytes, m.settlements_intra_bank,
        m.settlements_cross_bank, m.clearing_transfers, m.violations_found,
        m.clearing_messages, m.interbank_acks, m.interbank_retries,
        m.duplicate_trades, m.stale_trades, m.duplicate_interbank,
        m.stale_interbank, m.bad_envelopes, m.snapshot_rerequests})
    crypto::put_u64(b, v);
  crypto::put_i64(b, m.epennies_minted);
  crypto::put_i64(b, m.epennies_burned);

  put_rng(b, mb.rng);
  return b;
}

bool BankFederation::restore_state(std::size_t bank,
                                   const crypto::Bytes& state) {
  MemberBank& mb = banks_.at(bank);
  crypto::ByteReader r(state);
  if (r.get_u8() != kStateVersion) return false;
  if (r.get_u64() != params_.n_isps || r.get_u64() != n_banks_ ||
      r.get_u64() != bank || !r.ok())
    return false;

  const std::uint32_t members = r.get_u32();
  if (!r.ok() || members > params_.n_isps) return false;
  std::uint32_t seen = 0;
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    if (home_bank(i) != bank) continue;
    if (++seen > members) return false;
    accounts_.at(i) = Money::from_micros(r.get_i64());
  }
  if (seen != members) return false;

  mb.seq = r.get_u64();
  mb.canrequest = get_bool(r);
  const std::uint32_t n_rep = r.get_u32();
  if (!r.ok() || n_rep != params_.n_isps) return false;
  mb.reported.assign(n_rep, false);
  for (std::uint32_t i = 0; i < n_rep; ++i) mb.reported[i] = get_bool(r);
  mb.outstanding = r.get_u64();
  if (!get_matrix_i64(r, mb.verify)) return false;
  if (mb.verify.size() != params_.n_isps) return false;

  const std::uint32_t n_peers = r.get_u32();
  if (!r.ok() || n_peers != n_banks_) return false;
  mb.colset_from.assign(n_banks_, false);
  mb.transfer_from.assign(n_banks_, false);
  mb.pair_netted.assign(n_banks_, false);
  mb.partial_net.assign(n_banks_, Money::zero());
  mb.peer_partial.assign(n_banks_, Money::zero());
  mb.clearing_pair.assign(n_banks_, Money::zero());
  for (std::size_t p = 0; p < n_banks_; ++p) {
    mb.colset_from[p] = get_bool(r);
    mb.transfer_from[p] = get_bool(r);
    mb.pair_netted[p] = get_bool(r);
    mb.partial_net[p] = Money::from_micros(r.get_i64());
    mb.peer_partial[p] = Money::from_micros(r.get_i64());
    mb.clearing_pair[p] = Money::from_micros(r.get_i64());
  }
  mb.verified = get_bool(r);
  mb.clearing_pos = Money::from_micros(r.get_i64());

  for (auto* ledger : {&mb.col_ledger, &mb.clr_ledger}) {
    const std::uint32_t n = r.get_u32();
    if (!r.ok() || n != n_banks_) return false;
    ledger->assign(n, PeerLedger{});
    for (PeerLedger& l : *ledger) {
      l.any_applied = get_bool(r);
      l.applied_hi = r.get_u64();
    }
  }
  for (auto* ledger : {&mb.buy_ledger, &mb.sell_ledger}) {
    const std::uint32_t n = r.get_u32();
    if (!r.ok() || n != params_.n_isps) return false;
    ledger->assign(n, TradeLedger{});
    for (TradeLedger& l : *ledger) {
      l.any_applied = get_bool(r);
      l.applied_hi = r.get_u64();
      l.last_nonce = crypto::get_nonce(r);
      l.last_reply = r.get_bytes();
    }
  }

  const std::uint32_t n_pend = r.get_u32();
  if (!r.ok() || n_pend != 2 * n_banks_) return false;
  mb.pending.assign(n_pend, PendingWire{});
  for (PendingWire& pw : mb.pending) {
    pw.active = get_bool(r);
    pw.kind = r.get_u8();
    pw.round = r.get_u64();
    pw.attempts = r.get_u32();
    pw.next_at = r.get_i64();
    pw.wire = r.get_bytes();
  }

  const std::uint32_t n_vio = r.get_u32();
  if (!r.ok() || n_vio > (1u << 20)) return false;
  mb.violations.assign(n_vio, CreditViolation{});
  for (auto& v : mb.violations) {
    v.isp_i = r.get_u64();
    v.isp_j = r.get_u64();
    v.discrepancy = r.get_i64();
  }

  FederationMetrics& m = mb.metrics;
  for (std::uint64_t* v :
       {&m.rounds_completed, &m.requests_sent, &m.reports_received,
        &m.interbank_messages, &m.interbank_bytes, &m.settlements_intra_bank,
        &m.settlements_cross_bank, &m.clearing_transfers, &m.violations_found,
        &m.clearing_messages, &m.interbank_acks, &m.interbank_retries,
        &m.duplicate_trades, &m.stale_trades, &m.duplicate_interbank,
        &m.stale_interbank, &m.bad_envelopes, &m.snapshot_rerequests})
    *v = r.get_u64();
  m.epennies_minted = r.get_i64();
  m.epennies_burned = r.get_i64();

  get_rng(r, mb.rng);
  if (!(r.ok() && r.at_end())) return false;
  rebuild_violations();
  return true;
}

void BankFederation::apply_wal_record(std::size_t bank, std::uint8_t op,
                                      const crypto::Bytes& payload) {
  // Detach the WAL sink (no re-logging) and suppress wire emission: the
  // original execution already delivered those wires.  Everything else —
  // RNG draws, pending-wire bookkeeping, metrics — re-executes verbatim,
  // which is what keeps the restored stream aligned with the peers.
  MemberBank& mb = banks_.at(bank);
  store::WalSink* saved_wal = mb.wal;
  const bool saved_replaying = replaying_;
  mb.wal = nullptr;
  replaying_ = true;
  crypto::ByteReader r(payload);
  switch (static_cast<WalOp>(op)) {
    case WalOp::kOnBuy: {
      const std::size_t g = r.get_u64();
      const crypto::Bytes wire = r.get_bytes();
      if (r.ok() && g < params_.n_isps && home_bank(g) == bank)
        on_buy(g, wire);
      break;
    }
    case WalOp::kOnSell: {
      const std::size_t g = r.get_u64();
      const crypto::Bytes wire = r.get_bytes();
      if (r.ok() && g < params_.n_isps && home_bank(g) == bank)
        on_sell(g, wire);
      break;
    }
    case WalOp::kStartRound:
      start_snapshot_for(bank);
      break;
    case WalOp::kOnReply: {
      const std::size_t g = r.get_u64();
      const crypto::Bytes wire = r.get_bytes();
      if (r.ok() && g < params_.n_isps && home_bank(g) == bank)
        on_reply(g, wire);
      break;
    }
    case WalOp::kOnInterbank: {
      const std::size_t from = r.get_u64();
      const std::uint8_t kind = r.get_u8();
      const crypto::Bytes wire = r.get_bytes();
      if (r.ok() && from < n_banks_) on_interbank(bank, from, kind, wire);
      break;
    }
    case WalOp::kResendRequests:
      resend_requests(bank);
      break;
    case WalOp::kPollWires: {
      const std::int64_t now = r.get_i64();
      if (r.ok()) poll_interbank(bank, now);
      break;
    }
  }
  mb.wal = saved_wal;
  replaying_ = saved_replaying;
}

}  // namespace zmail::core
