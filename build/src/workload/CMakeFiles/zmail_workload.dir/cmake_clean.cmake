file(REMOVE_RECURSE
  "CMakeFiles/zmail_workload.dir/corpus.cpp.o"
  "CMakeFiles/zmail_workload.dir/corpus.cpp.o.d"
  "CMakeFiles/zmail_workload.dir/traffic.cpp.o"
  "CMakeFiles/zmail_workload.dir/traffic.cpp.o.d"
  "CMakeFiles/zmail_workload.dir/virus.cpp.o"
  "CMakeFiles/zmail_workload.dir/virus.cpp.o.d"
  "libzmail_workload.a"
  "libzmail_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zmail_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
