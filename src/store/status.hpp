// Typed error codes shared by the durable-store layers (WAL, snapshot,
// checkpointer).  Recovery code switches on these — "the snapshot is from a
// future format version" and "the snapshot is damaged" demand different
// operator responses, so they must not collapse into one bool.
#pragma once

#include <cstdint>

namespace zmail::store {

enum class StoreStatus : std::uint8_t {
  kOk = 0,
  kIoError,          // open/read/write/fsync failed (see errno at call site)
  kBadMagic,         // file does not start with the expected magic
  kUnknownVersion,   // format version newer than this build understands
  kUnknownFeature,   // required feature flag this build does not implement
  kCorrupt,          // CRC mismatch or self-inconsistent framing
  kTruncated,        // file ends mid-structure (torn final write)
  kNotFound,         // no snapshot/WAL file present
};

inline const char* store_status_name(StoreStatus s) noexcept {
  switch (s) {
    case StoreStatus::kOk: return "ok";
    case StoreStatus::kIoError: return "io-error";
    case StoreStatus::kBadMagic: return "bad-magic";
    case StoreStatus::kUnknownVersion: return "unknown-version";
    case StoreStatus::kUnknownFeature: return "unknown-feature";
    case StoreStatus::kCorrupt: return "corrupt";
    case StoreStatus::kTruncated: return "truncated";
    case StoreStatus::kNotFound: return "not-found";
  }
  return "?";
}

}  // namespace zmail::store
