// Full simulation: two weeks in the life of a mixed Zmail deployment.
//
// Everything at once: normal diurnal correspondence, a mailing list with
// acknowledgments, a legacy-world spam operation, a zombie infection, daily
// snapshots with bulk settlement, a mid-run compliance flip, and the audit
// journal summarizing the bank's view at the end.
//
//   ./full_simulation
#include <cstdio>

#include "core/audit.hpp"
#include "core/mailing_list.hpp"
#include "core/system.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

using namespace zmail;

int main() {
  core::ZmailParams params;
  params.n_isps = 4;
  params.users_per_isp = 30;
  params.initial_user_balance = 300;
  params.default_daily_limit = 60;
  params.compliant = {true, true, true, false};  // isp3 is legacy
  params.noncompliant_policy = core::NonCompliantPolicy::kSegregate;
  params.record_inboxes = false;

  core::ZmailSystem sys(params, 1414);
  core::AuditJournal journal;
  sys.bank().attach_journal(&journal);
  sys.enable_daily_resets();
  sys.enable_bank_trading(30 * sim::kMinute);
  sys.enable_periodic_snapshots(sim::kDay);

  workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(14));
  workload::TrafficParams tp;
  tp.mean_sends_per_user_day = 6.0;
  tp.diurnal = true;
  workload::TrafficGenerator traffic(sys, tp, corpus, Rng(15));
  traffic.build_contacts();

  core::MailingList list(sys, net::make_user_address(0, 0), "weekly");
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t u = 0; u < 10; ++u)
      if (!(i == 0 && u == 0)) list.subscribe(net::make_user_address(i, u));

  Table days({"day", "delivered", "spam segregated", "acks", "violations",
              "conserved"});
  for (int day = 0; day < 14; ++day) {
    traffic.schedule_day();
    if (day % 7 == 0) list.post("issue", "the weekly news");
    if (day < 7) {  // the legacy spammer is active the first week
      workload::SpamCampaignParams cp;
      cp.spammer_isp = 3;
      cp.messages = 150;
      Rng rng(16 + day);
      workload::run_spam_campaign(sys, cp, corpus, rng);
    }
    sys.run_for(sim::kDay);
    if (day == 9) {
      // The legacy ISP, bleeding users, adopts Zmail mid-experiment.
      sys.run_for(sim::kHour);
      if (sys.epennies_in_flight() == 0) sys.make_compliant(3);
    }

    std::uint64_t delivered = 0, segregated = 0, acks = 0;
    for (std::size_t i = 0; i < params.n_isps; ++i) {
      if (!sys.is_compliant(i)) continue;
      delivered += sys.isp(i).metrics().emails_delivered;
      segregated += sys.isp(i).metrics().emails_segregated;
      acks += sys.isp(i).metrics().acks_received;
    }
    days.add_row({Table::num(std::int64_t{day}), Table::num(delivered),
                  Table::num(segregated), Table::num(acks),
                  Table::num(std::uint64_t{sys.bank().last_violations().size()}),
                  sys.conservation_holds() ? "yes" : "NO"});
  }
  days.print("two weeks, cumulative counters per day");

  list.reconcile_and_prune();
  std::printf("\nmailing list net cost: %lld e-pennies (acks returned "
              "everything)\n",
              static_cast<long long>(list.net_epenny_cost()));

  Table audit({"bank event", "count"});
  for (core::AuditKind k :
       {core::AuditKind::kMint, core::AuditKind::kBurn,
        core::AuditKind::kRoundCompleted, core::AuditKind::kSettlement,
        core::AuditKind::kViolationFlagged}) {
    audit.add_row({core::audit_kind_name(k), Table::num(journal.count(k))});
  }
  audit.print("audit journal summary (14 daily billing rounds)");

  const Sample& lat = sys.delivery_latency();
  std::printf("\ndelivery latency over %zu inter-ISP messages: p50 %.3fs, "
              "p99 %.3fs, max %.1fs\n",
              lat.size(), lat.percentile(50), lat.percentile(99), lat.max());
  std::printf("conservation holds at the end: %s\n",
              sys.conservation_holds() ? "yes" : "NO");
  return 0;
}
