// Failure injection and randomized fuzzing of the protocol surfaces.
//
// Two layers:
//   1. wire fuzz — every handler that accepts bytes from the network is
//      fed random garbage, truncations, and bit-flipped real messages; it
//      must never crash and never change monetary state;
//   2. operation fuzz — long random sequences of API operations (sends,
//      trades, snapshots, day rollovers, compliance flips, quiesces) with
//      the global invariants checked throughout.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace zmail::core {
namespace {

net::EmailAddress user(std::size_t i, std::size_t u) {
  return net::make_user_address(i, u);
}

// --- Layer 1: wire fuzz -------------------------------------------------------

class WireFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzzTest, GarbageNeverCrashesOrMovesMoney) {
  Rng rng(GetParam());
  ZmailParams p;
  p.n_isps = 2;
  p.users_per_isp = 2;
  Rng key_rng(GetParam() ^ 0xFF);
  const crypto::KeyPair keys = crypto::generate_keypair(key_rng);
  Isp isp(0, p, keys.pub, 5);
  Bank bank(p, keys, 6);

  const EPenny isp_held = isp.epennies_held();
  const Money bank_account = bank.account(0);

  for (int i = 0; i < 300; ++i) {
    crypto::Bytes junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    switch (rng.next_below(6)) {
      case 0: isp.on_email(1, junk); break;
      case 1: isp.on_buyreply(junk); break;
      case 2: isp.on_sellreply(junk); break;
      case 3: isp.on_request(junk); break;
      case 4: (void)bank.on_buy(0, junk); break;
      case 5: bank.on_reply(0, junk); break;
    }
  }
  EXPECT_EQ(isp.epennies_held(), isp_held);
  EXPECT_EQ(bank.account(0), bank_account);
  EXPECT_FALSE(isp.in_quiesce());
  EXPECT_GT(isp.metrics().bad_envelopes, 0u);
}

TEST_P(WireFuzzTest, BitFlippedRealMessagesRejected) {
  Rng rng(GetParam() + 1'000);
  ZmailParams p;
  p.n_isps = 2;
  p.users_per_isp = 2;
  p.minavail = 50;
  p.maxavail = 200;
  Rng key_rng(GetParam() ^ 0xAA);
  const crypto::KeyPair keys = crypto::generate_keypair(key_rng);
  Isp isp(0, p, keys.pub, 7);
  Bank bank(p, keys, 8);

  // Produce one real buy, capture its reply, then flip bits in copies.
  isp.set_avail(10);
  isp.maybe_trade_with_bank();
  crypto::Bytes reply;
  for (const Outbound& o : isp.take_outbox()) reply = bank.on_buy(0, o.payload);
  ASSERT_FALSE(reply.empty());

  for (int i = 0; i < 200; ++i) {
    crypto::Bytes mutated = reply;
    const std::size_t byte = rng.next_below(mutated.size());
    mutated[byte] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    isp.on_buyreply(mutated);
    EXPECT_EQ(isp.avail(), 10) << "tampered reply changed state";
  }
  // The pristine reply still works exactly once afterwards.
  isp.on_buyreply(reply);
  EXPECT_EQ(isp.avail(), 200);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 6));

// --- Layer 2: operation fuzz ---------------------------------------------------

class OpFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OpFuzzTest, InvariantsSurviveRandomOperationSequences) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  ZmailParams p;
  p.n_isps = 4;
  p.users_per_isp = 5;
  p.initial_user_balance = 60;
  p.default_daily_limit = 40;
  p.minavail = 200;
  p.maxavail = 2'000;
  p.initial_avail = 1'000;
  p.compliant = {true, true, true, false};
  ZmailSystem sys(p, seed);
  Money money_total = sys.total_real_money();

  auto random_user = [&](bool compliant_only) {
    for (;;) {
      const std::size_t i = rng.next_below(p.n_isps);
      if (compliant_only && !sys.is_compliant(i)) continue;
      return user(i, rng.next_below(p.users_per_isp));
    }
  };

  for (int op = 0; op < 400; ++op) {
    switch (rng.next_below(10)) {
      case 0:
      case 1:
      case 2:  // plain send (any sender)
        sys.send_email(random_user(false), random_user(false), "f", "b",
                       rng.bernoulli(0.2) ? net::MailClass::kSpam
                                          : net::MailClass::kLegitimate);
        break;
      case 3: {  // multi-recipient send
        net::EmailMessage msg = net::make_email(random_user(false),
                                                random_user(false), "m", "b");
        msg.to.push_back(random_user(false));
        msg.to.push_back(random_user(false));
        sys.send_email_multi(msg);
        break;
      }
      case 4:
        sys.buy_epennies(random_user(true), rng.uniform_int(1, 30));
        break;
      case 5:
        sys.sell_epennies(random_user(true), rng.uniform_int(1, 30));
        break;
      case 6:  // short idle
        sys.run_for(static_cast<sim::Duration>(
            rng.next_below(static_cast<std::uint64_t>(sim::kMinute))));
        break;
      case 7:  // snapshot (possibly overlapping quiesce windows)
        sys.start_snapshot();
        sys.run_for(rng.bernoulli(0.5) ? 15 * sim::kMinute : sim::kMinute);
        break;
      case 8:  // day rollover
        for (std::size_t i = 0; i < p.n_isps; ++i)
          if (sys.is_compliant(i)) sys.isp(i).end_of_day();
        break;
      case 9:  // drain fully, then occasionally flip the legacy ISP
        sys.run_for(30 * sim::kMinute);
        if (!sys.is_compliant(3) && sys.epennies_in_flight() == 0 &&
            rng.bernoulli(0.3)) {
          sys.make_compliant(3);
          // The flip brings ISP 3's users' real-money accounts (and its
          // till) into the measured economy.
          money_total = sys.total_real_money();
        }
        break;
    }

    // Cheap invariants on every step.
    for (std::size_t i = 0; i < p.n_isps; ++i) {
      if (!sys.is_compliant(i)) continue;
      ASSERT_GE(sys.isp(i).avail(), 0) << "seed " << seed << " op " << op;
      for (std::size_t u = 0; u < p.users_per_isp; ++u)
        ASSERT_GE(sys.isp(i).user(u).balance, 0)
            << "seed " << seed << " op " << op;
    }
  }

  // Full drain, then the global invariants.
  sys.run_for(2 * sim::kHour);
  EXPECT_EQ(sys.epennies_in_flight(), 0) << "seed " << seed;
  EXPECT_TRUE(sys.conservation_holds()) << "seed " << seed;
  EXPECT_EQ(sys.total_real_money(), money_total) << "seed " << seed;
  EXPECT_EQ(sys.bank().metrics().inconsistent_pairs_found, 0u)
      << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpFuzzTest,
                         ::testing::Range<std::uint64_t>(10, 26));

}  // namespace
}  // namespace zmail::core
