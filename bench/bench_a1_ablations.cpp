// A1 — Ablations of the design choices DESIGN.md calls out.
//
//   A1.a  the paper-literal sell path vs reserve-at-initiation: how often
//         the avail pool underflows under adversarial user purchases
//   A1.b  the quiesce resume barrier on/off: spurious-violation rate under
//         randomized scheduling in an HONEST world
//   A1.c  the legal baseline (Section 2.1): anti-spam laws and the
//         do-not-email registry vs Zmail's market mechanism
//   A1.d  bank federation (Section 5): inter-bank overhead vs bank count
#include "bench_common.hpp"
#include "core/ap_spec.hpp"
#include "core/federation.hpp"
#include "core/isp.hpp"
#include "econ/legal.hpp"
#include "util/table.hpp"

using namespace zmail;

namespace {

void a1a_sell_race() {
  // Paper-literal AP model: while a sell is in flight, an adversarial user
  // drains the pool; count seeds where avail underflows.  The production
  // Isp reserves at initiation, making the same scenario impossible by
  // construction (checked directly).
  int underflows = 0;
  const int seeds = 20;
  for (int seed = 0; seed < seeds; ++seed) {
    core::ZmailParams p;
    p.n_isps = 1;
    p.users_per_isp = 1;
    p.initial_avail = 120;
    p.maxavail = 100;
    p.minavail = 0;
    core::ApZmailWorld world(p, ap::Scheduler::Policy::kRandom,
                             static_cast<std::uint64_t>(seed) + 7'000);
    core::ApIspProcess& isp = world.isp(0);
    isp.account[0] = 1'000'000;
    bool underflow = false;
    for (int step = 0; step < 5'000; ++step) {
      if (!isp.cansell && isp.avail > 0) {
        isp.balance[0] += isp.avail;  // user buys out the pool mid-flight
        isp.account[0] -= isp.avail;
        isp.avail = 0;
      }
      if (!world.scheduler().step()) break;
      if (isp.avail < 0) {
        underflow = true;
        break;
      }
    }
    if (underflow) ++underflows;
  }

  // Production Isp under the same attack: reservation happens atomically
  // inside maybe_trade_with_bank, so the drained pool is simply smaller.
  Rng rng(71);
  const crypto::KeyPair keys = crypto::generate_keypair(rng);
  core::ZmailParams p;
  p.n_isps = 1;
  p.users_per_isp = 1;
  p.maxavail = 100;
  p.minavail = 0;
  core::Isp isp(0, p, keys.pub, 7);
  isp.set_avail(120);
  isp.maybe_trade_with_bank();  // reserves the 20 surplus immediately
  const bool production_safe = isp.avail() >= 0 && isp.avail() == 100;

  Table t({"variant", "underflow runs / 20", "pool can go negative?"});
  t.add_row({"paper-literal sell", Table::num(std::int64_t{underflows}),
             "yes"});
  t.add_row({"reserve at initiation", "0", "no (by construction)"});
  t.print("A1.a  the sell race (Section 4.3 pseudocode)");
  bench::check(underflows > 0,
               "the paper-literal sell path underflows under adversarial "
               "user purchases");
  bench::check(production_safe, "reservation closes the race");
}

void a1b_resume_barrier() {
  auto violation_runs = [](bool barrier) {
    int runs_with_violations = 0;
    for (std::uint64_t seed = 8'000; seed < 8'020; ++seed) {
      core::ZmailParams p;
      p.n_isps = 4;
      p.users_per_isp = 3;
      p.initial_user_balance = 50;
      p.default_daily_limit = 1'000;
      core::ApZmailWorld world(p, ap::Scheduler::Policy::kRandom, seed);
      for (std::size_t i = 0; i < 4; ++i) {
        world.isp(i).send_budget = 60;
        world.isp(i).use_resume_barrier = barrier;
      }
      world.bank().snapshot_budget = 3;
      world.run();
      if (!world.bank().violations.empty()) ++runs_with_violations;
    }
    return runs_with_violations;
  };

  const int with_barrier = violation_runs(true);
  const int without_barrier = violation_runs(false);

  Table t({"resume barrier", "honest runs flagging violations / 20"});
  t.add_row({"on (this implementation)", Table::num(std::int64_t{with_barrier})});
  t.add_row({"off (timed-windows assumption)",
             Table::num(std::int64_t{without_barrier})});
  t.print("A1.b  spurious violations without the resume barrier");
  bench::check(with_barrier == 0,
               "with the barrier, honest worlds never get flagged");
  bench::check(without_barrier > 0,
               "without it, scheduling alone fakes misbehavior");
}

void a1c_legal_baseline() {
  Table t({"regime", "spam change", "what happened"});

  econ::LegalParams weak;  // CAN-SPAM-style, realistic enforcement
  const econ::LegalOutcome weak_out = econ::evaluate_legal(weak);
  t.add_row({"national law, 5% enforcement",
             Table::pct(weak_out.spam_change), "staying still pays"});

  econ::LegalParams strong = weak;
  strong.enforcement_prob = 0.5;
  const econ::LegalOutcome strong_out = econ::evaluate_legal(strong);
  t.add_row({"national law, 50% enforcement",
             Table::pct(strong_out.spam_change),
             "spammers relocate offshore"});

  econ::LegalParams registry = weak;
  registry.registry = true;
  const econ::LegalOutcome registry_out = econ::evaluate_legal(registry);
  t.add_row({"do-not-email registry", Table::pct(registry_out.spam_change),
             "harvested as a live-address list"});

  t.add_row({"Zmail (E1)", "-90% to -99%",
             "economics bind everywhere; no jurisdiction"});
  t.print("A1.c  legal approaches vs the market mechanism (Section 2.1)");

  bench::check(weak_out.spam_change == 0.0 && strong_out.spam_change == 0.0,
               "laws alone do not reduce spam (evade or relocate)");
  bench::check(registry_out.spam_change > 0.0,
               "the registry can increase spam (the FTC conclusion)");
}

void a1d_federation() {
  Table t({"banks", "inter-bank msgs/round", "inter-bank bytes",
           "clearing transfers", "violations"});
  std::uint64_t msgs_at_2 = 0, msgs_at_8 = 0;
  for (std::size_t n_banks : {1u, 2u, 4u, 8u}) {
    core::ZmailParams p;
    p.n_isps = 16;
    p.users_per_isp = 2;
    core::BankFederation fed(p, n_banks, 900 + n_banks);
    std::vector<core::Isp> isps;
    for (std::size_t i = 0; i < p.n_isps; ++i)
      isps.emplace_back(i, p, fed.public_key_for(i), 1'000 + i);
    // A ring of cross-ISP mail.
    for (std::size_t i = 0; i < p.n_isps; ++i) {
      const std::size_t j = (i + 1) % p.n_isps;
      isps[i].user_send(0, j, 0,
                        net::make_email(net::make_user_address(i, 0),
                                        net::make_user_address(j, 0), "s",
                                        "b"));
      for (const core::Outbound& o : isps[i].take_outbox())
        isps[j].on_email(i, o.payload);
    }
    for (auto& [idx, wire] : fed.start_snapshot()) {
      isps[idx].on_request(wire);
      isps[idx].on_quiesce_timeout();
      for (const core::Outbound& o : isps[idx].take_outbox())
        if (o.type == core::kMsgReply) fed.on_reply(idx, o.payload);
    }
    t.add_row({Table::num(std::uint64_t{n_banks}),
               Table::num(fed.metrics().interbank_messages),
               Table::num(fed.metrics().interbank_bytes),
               Table::num(fed.metrics().clearing_transfers),
               Table::num(fed.metrics().violations_found)});
    if (n_banks == 2) msgs_at_2 = fed.metrics().interbank_messages;
    if (n_banks == 8) msgs_at_8 = fed.metrics().interbank_messages;
  }
  t.print("A1.d  federated banks: coordination overhead (16 ISPs, 1 round)");
  bench::check(msgs_at_2 == 2 && msgs_at_8 == 56,
               "inter-bank traffic is k(k-1) messages per round");
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("a1_ablations", argc, argv);
  std::printf("=== A1: ablations ===\n");
  a1a_sell_race();
  a1b_resume_barrier();
  a1c_legal_baseline();
  a1d_federation();
  return harness.finish();
}
