file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_baseline_matrix.dir/bench_a2_baseline_matrix.cpp.o"
  "CMakeFiles/bench_a2_baseline_matrix.dir/bench_a2_baseline_matrix.cpp.o.d"
  "bench_a2_baseline_matrix"
  "bench_a2_baseline_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_baseline_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
