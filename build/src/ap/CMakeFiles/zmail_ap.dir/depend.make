# Empty dependencies file for zmail_ap.
# This may be replaced when dependencies are built.
