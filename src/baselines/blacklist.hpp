// Header-based filters: blacklists and whitelists (paper Section 2.2).
//
// Blacklists block by originating domain (standing in for the MAPS RBL /
// SpamCop IP lists); whitelists admit known correspondents.  The evasion
// the paper describes — spammers forging domains and hopping hosts — is
// modelled by the workload choosing fresh sender identities.
#pragma once

#include <set>
#include <string>

#include "net/email.hpp"

namespace zmail::baselines {

class Blacklist {
 public:
  void add_domain(const std::string& domain) { domains_.insert(domain); }
  void remove_domain(const std::string& domain) { domains_.erase(domain); }
  bool blocked(const net::EmailAddress& sender) const {
    return domains_.count(sender.domain) > 0;
  }
  std::size_t size() const noexcept { return domains_.size(); }

 private:
  std::set<std::string> domains_;
};

class Whitelist {
 public:
  void add(const net::EmailAddress& addr) { addrs_.insert(addr.str()); }
  void remove(const net::EmailAddress& addr) { addrs_.erase(addr.str()); }
  bool allowed(const net::EmailAddress& sender) const {
    return addrs_.count(sender.str()) > 0;
  }
  std::size_t size() const noexcept { return addrs_.size(); }

 private:
  std::set<std::string> addrs_;
};

}  // namespace zmail::baselines
