#include "core/federation.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace zmail::core {

namespace {

// Wire header shared by every inter-bank payload (inside the seal):
//   u8 kind | u64 from_bank | u64 round
void put_header(crypto::Bytes& b, BankFederation::FedMsg kind,
                std::size_t from, std::uint64_t round) {
  crypto::put_u8(b, static_cast<std::uint8_t>(kind));
  crypto::put_u64(b, from);
  crypto::put_u64(b, round);
}

}  // namespace

BankFederation::BankFederation(const ZmailParams& params, std::size_t n_banks,
                               std::uint64_t seed)
    : params_(params), n_banks_(n_banks), rng_(seed ^ 0xFEDBULL) {
  ZMAIL_ASSERT(n_banks_ >= 1);
  keys_.reserve(n_banks_);
  for (std::size_t b = 0; b < n_banks_; ++b)
    keys_.push_back(crypto::generate_keypair(rng_));
  accounts_.assign(params_.n_isps, params_.initial_isp_bank_account);
  seed_ = seed;
  banks_.resize(n_banks_);
  for (std::size_t b = 0; b < n_banks_; ++b) init_bank(b);
}

void BankFederation::init_bank(std::size_t bank) {
  MemberBank& mb = banks_.at(bank);
  mb = MemberBank{};
  // Each shard gets its own splitmix-derived stream so sealing draws stay
  // deterministic per bank regardless of peer activity (and serialize).
  mb.rng = Rng(seed_ * 0x9E3779B97F4A7C15ULL + 0xB4A9ULL + bank);
  mb.reported.assign(params_.n_isps, false);
  mb.verify.assign(params_.n_isps, std::vector<EPenny>(params_.n_isps, 0));
  mb.colset_from.assign(n_banks_, false);
  mb.partial_net.assign(n_banks_, Money::zero());
  mb.peer_partial.assign(n_banks_, Money::zero());
  mb.transfer_from.assign(n_banks_, false);
  mb.pair_netted.assign(n_banks_, false);
  mb.clearing_pair.assign(n_banks_, Money::zero());
  mb.col_ledger.assign(n_banks_, PeerLedger{});
  mb.clr_ledger.assign(n_banks_, PeerLedger{});
  mb.buy_ledger.assign(params_.n_isps, TradeLedger{});
  mb.sell_ledger.assign(params_.n_isps, TradeLedger{});
  mb.pending.assign(2 * n_banks_, PendingWire{});
}

void BankFederation::reset_bank(std::size_t bank) {
  // Fresh-construct semantics ahead of recover(): wiped shard state and
  // member accounts back at their endowment, exactly what replaying the
  // command log from LSN 0 (or a snapshot) expects to build on.
  init_bank(bank);
  for (std::size_t i = 0; i < params_.n_isps; ++i)
    if (home_bank(i) == bank)
      accounts_.at(i) = params_.initial_isp_bank_account;
}

std::size_t BankFederation::home_bank(std::size_t isp) const {
  ZMAIL_ASSERT(isp < params_.n_isps);
  return isp % n_banks_;
}

const crypto::RsaKey& BankFederation::public_key_for(std::size_t isp) const {
  return keys_.at(home_bank(isp)).pub;
}

std::size_t BankFederation::compliant_members(std::size_t bank) const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < params_.n_isps; ++i)
    if (home_bank(i) == bank && params_.is_compliant(i)) ++n;
  return n;
}

Money BankFederation::isp_account(std::size_t isp) const {
  return accounts_.at(isp);
}

void BankFederation::set_isp_account(std::size_t isp, Money v) {
  accounts_.at(isp) = v;
}

Money BankFederation::clearing_position(std::size_t bank) const {
  return banks_.at(bank).clearing_pos;
}

Money BankFederation::clearing_pair(std::size_t bank, std::size_t peer) const {
  return banks_.at(bank).clearing_pair.at(peer);
}

bool BankFederation::round_open() const noexcept {
  for (const MemberBank& mb : banks_)
    if (!mb.canrequest) return true;
  return false;
}

bool BankFederation::round_open(std::size_t bank) const {
  return !banks_.at(bank).canrequest;
}

std::uint64_t BankFederation::seq() const noexcept {
  std::uint64_t s = banks_.front().seq;
  for (const MemberBank& mb : banks_) s = std::min(s, mb.seq);
  return s;
}

std::uint64_t BankFederation::seq(std::size_t bank) const {
  return banks_.at(bank).seq;
}

bool BankFederation::idle() const {
  for (const MemberBank& mb : banks_) {
    if (!mb.canrequest) return false;
    for (const PendingWire& pw : mb.pending)
      if (pw.active) return false;
  }
  return true;
}

FederationMetrics BankFederation::metrics() const {
  FederationMetrics t;
  t.rounds_completed = banks_.front().metrics.rounds_completed;
  for (const MemberBank& mb : banks_) {
    const FederationMetrics& m = mb.metrics;
    t.rounds_completed = std::min(t.rounds_completed, m.rounds_completed);
    t.requests_sent += m.requests_sent;
    t.reports_received += m.reports_received;
    t.interbank_messages += m.interbank_messages;
    t.interbank_bytes += m.interbank_bytes;
    t.settlements_intra_bank += m.settlements_intra_bank;
    t.settlements_cross_bank += m.settlements_cross_bank;
    t.clearing_transfers += m.clearing_transfers;
    t.violations_found += m.violations_found;
    t.epennies_minted += m.epennies_minted;
    t.epennies_burned += m.epennies_burned;
    t.clearing_messages += m.clearing_messages;
    t.interbank_acks += m.interbank_acks;
    t.interbank_retries += m.interbank_retries;
    t.duplicate_trades += m.duplicate_trades;
    t.stale_trades += m.stale_trades;
    t.duplicate_interbank += m.duplicate_interbank;
    t.stale_interbank += m.stale_interbank;
    t.bad_envelopes += m.bad_envelopes;
    t.snapshot_rerequests += m.snapshot_rerequests;
  }
  return t;
}

const FederationMetrics& BankFederation::metrics(std::size_t bank) const {
  return banks_.at(bank).metrics;
}

void BankFederation::attach_wal(std::size_t bank, store::WalSink* wal) {
  banks_.at(bank).wal = wal;
}

store::WalSink* BankFederation::wal(std::size_t bank) const {
  return banks_.at(bank).wal;
}

void BankFederation::log_op(std::size_t bank, WalOp op,
                            const crypto::Bytes& payload) {
  MemberBank& mb = banks_.at(bank);
  if (mb.wal) mb.wal->append(static_cast<std::uint8_t>(op), payload);
}

// --- Section 4.3 trade (idempotent, mirrors Bank::on_buy/on_sell) ----------

crypto::Bytes BankFederation::on_buy(std::size_t isp,
                                     const crypto::Bytes& wire) {
  const std::size_t b = home_bank(isp);
  MemberBank& mb = banks_.at(b);
  if (mb.wal) {
    crypto::Bytes p;
    crypto::put_u64(p, isp);
    crypto::put_bytes(p, wire);
    log_op(b, WalOp::kOnBuy, p);
  }
  const crypto::KeyPair& keys = keys_.at(b);
  const auto plain = unseal(keys.priv, wire);
  if (!plain) {
    ++mb.metrics.bad_envelopes;
    return {};
  }
  const auto req = BuyRequest::deserialize(*plain);
  if (!req || req->buyvalue <= 0) {
    ++mb.metrics.bad_envelopes;
    return {};
  }

  // Idempotency shield: never mint twice for one nonce.
  TradeLedger& led = mb.buy_ledger.at(isp);
  if (led.any_applied && req->nonce.counter <= led.applied_hi) {
    if (req->nonce == led.last_nonce) {
      ++mb.metrics.duplicate_trades;
      return led.last_reply;  // re-send the cached reply, no re-mint
    }
    ++mb.metrics.stale_trades;
    return {};
  }

  const Money cost = Money::from_epennies(req->buyvalue);
  BuyReply reply;
  reply.nonce = req->nonce;
  if (accounts_.at(isp) >= cost) {
    accounts_.at(isp) -= cost;
    mb.metrics.epennies_minted += req->buyvalue;
    reply.accepted = true;
  }
  crypto::Bytes out = seal(keys.priv, reply.serialize(), mb.rng);
  led.any_applied = true;
  led.applied_hi = req->nonce.counter;
  led.last_nonce = req->nonce;
  led.last_reply = out;
  return out;
}

crypto::Bytes BankFederation::on_sell(std::size_t isp,
                                      const crypto::Bytes& wire) {
  const std::size_t b = home_bank(isp);
  MemberBank& mb = banks_.at(b);
  if (mb.wal) {
    crypto::Bytes p;
    crypto::put_u64(p, isp);
    crypto::put_bytes(p, wire);
    log_op(b, WalOp::kOnSell, p);
  }
  const crypto::KeyPair& keys = keys_.at(b);
  const auto plain = unseal(keys.priv, wire);
  if (!plain) {
    ++mb.metrics.bad_envelopes;
    return {};
  }
  const auto req = SellRequest::deserialize(*plain);
  if (!req || req->sellvalue <= 0) {
    ++mb.metrics.bad_envelopes;
    return {};
  }
  TradeLedger& led = mb.sell_ledger.at(isp);
  if (led.any_applied && req->nonce.counter <= led.applied_hi) {
    if (req->nonce == led.last_nonce) {
      ++mb.metrics.duplicate_trades;
      return led.last_reply;
    }
    ++mb.metrics.stale_trades;
    return {};
  }
  accounts_.at(isp) += Money::from_epennies(req->sellvalue);
  mb.metrics.epennies_burned += req->sellvalue;
  crypto::Bytes out = seal(keys.priv, SellReply{req->nonce}.serialize(), mb.rng);
  led.any_applied = true;
  led.applied_hi = req->nonce.counter;
  led.last_nonce = req->nonce;
  led.last_reply = out;
  return out;
}

// --- Snapshot round ---------------------------------------------------------

void BankFederation::open_round(std::size_t bank) {
  MemberBank& mb = banks_.at(bank);
  ZMAIL_ASSERT(mb.canrequest);
  log_op(bank, WalOp::kStartRound, crypto::Bytes{});
  mb.canrequest = false;
  mb.outstanding = 0;
  mb.reported.assign(params_.n_isps, false);
  for (auto& row : mb.verify)
    for (auto& cell : row) cell = 0;
  mb.colset_from.assign(n_banks_, false);
  mb.verified = false;
  mb.partial_net.assign(n_banks_, Money::zero());
  mb.peer_partial.assign(n_banks_, Money::zero());
  mb.transfer_from.assign(n_banks_, false);
  mb.pair_netted.assign(n_banks_, false);
}

std::vector<std::pair<std::size_t, crypto::Bytes>>
BankFederation::start_snapshot() {
  if (round_open()) return {};
  std::size_t total = 0;
  for (std::size_t i = 0; i < params_.n_isps; ++i)
    if (params_.is_compliant(i)) ++total;
  if (total == 0) return {};

  for (std::size_t b = 0; b < n_banks_; ++b) open_round(b);
  // Requests go out in global ISP order (the legacy facade send order);
  // each bank's sealing draws form the same per-bank subsequence the WAL
  // replay of its kStartRound record regenerates.
  std::vector<std::pair<std::size_t, crypto::Bytes>> out;
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    if (!params_.is_compliant(i)) continue;
    MemberBank& mb = banks_.at(home_bank(i));
    ++mb.outstanding;
    ++mb.metrics.requests_sent;
    SnapshotRequest req{mb.seq};
    out.emplace_back(
        i, seal(keys_.at(home_bank(i)).priv, req.serialize(), mb.rng));
  }
  for (std::size_t b = 0; b < n_banks_; ++b)
    if (banks_[b].outstanding == 0) gather_complete(b);
  return out;
}

std::vector<std::pair<std::size_t, crypto::Bytes>>
BankFederation::start_snapshot_for(std::size_t bank) {
  MemberBank& mb = banks_.at(bank);
  if (!mb.canrequest) return {};
  open_round(bank);
  std::vector<std::pair<std::size_t, crypto::Bytes>> out;
  SnapshotRequest req{mb.seq};
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    if (home_bank(i) != bank || !params_.is_compliant(i)) continue;
    ++mb.outstanding;
    ++mb.metrics.requests_sent;
    out.emplace_back(i, seal(keys_.at(bank).priv, req.serialize(), mb.rng));
  }
  if (mb.outstanding == 0) gather_complete(bank);
  return out;
}

std::vector<std::pair<std::size_t, crypto::Bytes>>
BankFederation::resend_requests(std::size_t bank) {
  MemberBank& mb = banks_.at(bank);
  if (mb.canrequest) return {};
  log_op(bank, WalOp::kResendRequests, crypto::Bytes{});
  std::vector<std::pair<std::size_t, crypto::Bytes>> out;
  SnapshotRequest req{mb.seq};
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    if (home_bank(i) != bank || !params_.is_compliant(i)) continue;
    if (mb.reported.at(i)) continue;
    ++mb.metrics.snapshot_rerequests;
    out.emplace_back(i, seal(keys_.at(bank).priv, req.serialize(), mb.rng));
  }
  return out;
}

void BankFederation::on_reply(std::size_t isp, const crypto::Bytes& wire) {
  if (!params_.is_compliant(isp)) return;
  const std::size_t b = home_bank(isp);
  MemberBank& mb = banks_.at(b);
  if (mb.wal) {
    crypto::Bytes p;
    crypto::put_u64(p, isp);
    crypto::put_bytes(p, wire);
    log_op(b, WalOp::kOnReply, p);
  }
  const auto plain = unseal(keys_.at(b).priv, wire);
  if (!plain) {
    ++mb.metrics.bad_envelopes;
    return;
  }
  const auto report = CreditReport::deserialize(*plain);
  if (!report || report->credit.size() != params_.n_isps) return;
  if (mb.canrequest || report->seq != mb.seq || mb.reported.at(isp)) return;
  mb.reported.at(isp) = true;
  ++mb.metrics.reports_received;
  for (std::size_t i = 0; i < params_.n_isps; ++i)
    mb.verify[i][isp] = report->credit[i];
  ZMAIL_ASSERT(mb.outstanding > 0);
  if (--mb.outstanding == 0) gather_complete(b);
}

void BankFederation::gather_complete(std::size_t bank) {
  MemberBank& mb = banks_.at(bank);
  mb.colset_from.at(bank) = true;
  // Broadcast the gathered member columns to every peer (the inter-bank
  // traffic E12 measures), as acknowledged, retryable wires.
  for (std::size_t p = 0; p < n_banks_; ++p) {
    if (p == bank) continue;
    crypto::Bytes plain;
    put_header(plain, FedMsg::kColumns, bank, mb.seq);
    std::uint32_t members = 0;
    for (std::size_t g = 0; g < params_.n_isps; ++g)
      if (home_bank(g) == bank && params_.is_compliant(g)) ++members;
    crypto::put_u32(plain, members);
    for (std::size_t g = 0; g < params_.n_isps; ++g) {
      if (home_bank(g) != bank || !params_.is_compliant(g)) continue;
      crypto::put_u64(plain, g);
      crypto::put_u32(plain, static_cast<std::uint32_t>(params_.n_isps));
      for (std::size_t i = 0; i < params_.n_isps; ++i)
        crypto::put_i64(plain, mb.verify[i][g]);
    }
    emit(bank, p, FedMsg::kColumns, mb.seq, plain, /*track=*/true);
  }
  maybe_verify(bank);
}

void BankFederation::maybe_verify(std::size_t bank) {
  MemberBank& mb = banks_.at(bank);
  if (mb.canrequest || mb.verified) return;
  for (std::size_t p = 0; p < n_banks_; ++p)
    if (!mb.colset_from[p]) return;
  verify_owned_pairs(bank);
}

void BankFederation::verify_owned_pairs(std::size_t bank) {
  MemberBank& mb = banks_.at(bank);
  mb.violations.clear();
  // Foreign account deltas this bank's verified pairs produce, grouped by
  // the member's home bank (shipped inside the clearing transfer).
  std::vector<std::vector<std::pair<std::uint64_t, std::int64_t>>> items(
      n_banks_);

  // Pair (i, j) is owned by home(min(i, j)) == home(i).
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    if (home_bank(i) != bank || !params_.is_compliant(i)) continue;
    for (std::size_t j = i + 1; j < params_.n_isps; ++j) {
      if (!params_.is_compliant(j)) continue;
      const EPenny d = mb.verify[j][i] + mb.verify[i][j];
      if (d != 0) {
        mb.violations.push_back(CreditViolation{i, j, d});
        ++mb.metrics.violations_found;
        continue;  // disputed pair stays unsettled
      }
      const EPenny net = mb.verify[j][i];  // flow i -> j
      if (net == 0) continue;
      const Money amount = Money::from_epennies(net > 0 ? net : -net);
      const std::size_t payer = net > 0 ? i : j;
      const std::size_t payee = net > 0 ? j : i;
      const std::size_t payer_bank = home_bank(payer);
      const std::size_t payee_bank = home_bank(payee);
      if (payer_bank == payee_bank) {
        // Both members of this bank: settle in place.
        accounts_.at(payer) -= amount;
        accounts_.at(payee) += amount;
        ++mb.metrics.settlements_intra_bank;
        continue;
      }
      ++mb.metrics.settlements_cross_bank;
      if (payer_bank == bank) {
        accounts_.at(payer) -= amount;
        items[payee_bank].emplace_back(payee, amount.micros());
        mb.partial_net[payee_bank] += amount;
      } else {
        accounts_.at(payee) += amount;
        items[payer_bank].emplace_back(payer, -amount.micros());
        mb.partial_net[payer_bank] -= amount;
      }
    }
  }
  mb.verified = true;
  rebuild_violations();

  // Ship one clearing transfer per peer per round — even an empty one is
  // the peer's signal that this bank's side of the round is final.
  for (std::size_t p = 0; p < n_banks_; ++p) {
    if (p == bank) continue;
    crypto::Bytes plain;
    put_header(plain, FedMsg::kClearing, bank, mb.seq);
    crypto::put_i64(plain, mb.partial_net[p].micros());
    crypto::put_u32(plain, static_cast<std::uint32_t>(items[p].size()));
    for (const auto& [g, micros] : items[p]) {
      crypto::put_u64(plain, g);
      crypto::put_i64(plain, micros);
    }
    emit(bank, p, FedMsg::kClearing, mb.seq, plain, /*track=*/true);
  }
  for (std::size_t p = 0; p < n_banks_; ++p) {
    if (p == bank) continue;
    if (mb.transfer_from[p] && !mb.pair_netted[p]) combine_pair(bank, p);
  }
  try_close_round(bank);
}

void BankFederation::combine_pair(std::size_t bank, std::size_t peer) {
  MemberBank& mb = banks_.at(bank);
  // Net flow bank -> peer across every pair between the two banks: my
  // verified pairs contribute partial_net, the peer's contribute (negated)
  // the partial it shipped with its transfer.
  const Money total = mb.partial_net[peer] - mb.peer_partial[peer];
  if (!total.is_zero()) {
    mb.clearing_pos -= total;
    mb.clearing_pair[peer] -= total;
    // Count the netted movement once per unordered bank pair.
    if (bank < peer) ++mb.metrics.clearing_transfers;
  }
  mb.pair_netted[peer] = true;
}

void BankFederation::try_close_round(std::size_t bank) {
  MemberBank& mb = banks_.at(bank);
  if (mb.canrequest || !mb.verified) return;
  for (std::size_t p = 0; p < n_banks_; ++p) {
    if (p == bank) continue;
    if (!mb.transfer_from[p] || !mb.pair_netted[p]) return;
  }
  for (auto& row : mb.verify)
    for (auto& cell : row) cell = 0;
  mb.seq += 1;
  mb.canrequest = true;
  ++mb.metrics.rounds_completed;
}

// --- Inter-bank plane -------------------------------------------------------

void BankFederation::emit(std::size_t from, std::size_t to, FedMsg kind,
                          std::uint64_t round, const crypto::Bytes& plain,
                          bool track) {
  MemberBank& mb = banks_.at(from);
  crypto::Bytes wire = seal(keys_.at(to).pub, plain, mb.rng);
  switch (kind) {
    case FedMsg::kColumns:
      ++mb.metrics.interbank_messages;
      // Loopback keeps the legacy synthetic accounting (the E12/A1.d
      // observable); the networked plane counts real sealed wire bytes.
      mb.metrics.interbank_bytes +=
          sink_ ? wire.size()
                : compliant_members(from) *
                      (params_.n_isps * sizeof(EPenny) + 32);
      break;
    case FedMsg::kClearing:
      ++mb.metrics.clearing_messages;
      break;
    case FedMsg::kColumnsAck:
    case FedMsg::kClearingAck:
      ++mb.metrics.interbank_acks;
      break;
  }
  if (track) {
    PendingWire& pw =
        mb.pending.at(2 * to + (kind == FedMsg::kClearing ? 1 : 0));
    pw.active = true;
    pw.kind = static_cast<std::uint8_t>(kind);
    pw.round = round;
    pw.attempts = 1;
    pw.next_at = 0;
    pw.wire = wire;
  }
  if (replaying_) return;  // replayed output already left pre-crash
  if (sink_) {
    sink_(from, to, static_cast<std::uint8_t>(kind), std::move(wire));
  } else {
    loopback_.emplace_back(from, to, static_cast<std::uint8_t>(kind),
                           std::move(wire));
    drain_loopback();
  }
}

void BankFederation::drain_loopback() {
  if (draining_) return;
  draining_ = true;
  while (!loopback_.empty()) {
    auto [from, to, kind, wire] = std::move(loopback_.front());
    loopback_.pop_front();
    on_interbank(to, from, kind, wire);
  }
  draining_ = false;
}

void BankFederation::send_ack(std::size_t from, std::size_t to, FedMsg acked,
                              std::uint64_t round) {
  crypto::Bytes plain;
  const FedMsg kind = acked == FedMsg::kColumns ? FedMsg::kColumnsAck
                                                : FedMsg::kClearingAck;
  put_header(plain, kind, from, round);
  emit(from, to, kind, round, plain, /*track=*/false);
}

void BankFederation::on_interbank(std::size_t bank, std::size_t from_bank,
                                  std::uint8_t kind,
                                  const crypto::Bytes& wire) {
  MemberBank& mb = banks_.at(bank);
  if (mb.wal) {
    crypto::Bytes p;
    crypto::put_u64(p, from_bank);
    crypto::put_u8(p, kind);
    crypto::put_bytes(p, wire);
    log_op(bank, WalOp::kOnInterbank, p);
  }
  const auto plain = unseal(keys_.at(bank).priv, wire);
  if (!plain) {
    ++mb.metrics.bad_envelopes;
    return;
  }
  crypto::ByteReader r(*plain);
  const std::uint8_t inner = r.get_u8();
  const std::uint64_t from = r.get_u64();
  const std::uint64_t round = r.get_u64();
  if (!r.ok() || inner != kind || from != from_bank || from >= n_banks_ ||
      from == bank) {
    ++mb.metrics.bad_envelopes;
    return;
  }
  switch (static_cast<FedMsg>(kind)) {
    case FedMsg::kColumns:
      handle_columns(bank, from, r, round);
      break;
    case FedMsg::kClearing:
      handle_clearing(bank, from, r, round);
      break;
    case FedMsg::kColumnsAck:
      handle_ack(bank, from, FedMsg::kColumns, round);
      break;
    case FedMsg::kClearingAck:
      handle_ack(bank, from, FedMsg::kClearing, round);
      break;
    default:
      ++mb.metrics.bad_envelopes;
      break;
  }
}

void BankFederation::handle_columns(std::size_t bank, std::size_t from,
                                    crypto::ByteReader& r,
                                    std::uint64_t round) {
  MemberBank& mb = banks_.at(bank);
  PeerLedger& led = mb.col_ledger.at(from);
  if (led.any_applied && round <= led.applied_hi) {
    // Duplicate delivery (retransmit or replay): re-ack, never re-apply.
    ++mb.metrics.duplicate_interbank;
    send_ack(bank, from, FedMsg::kColumns, round);
    return;
  }
  if (mb.canrequest || round != mb.seq) {
    if (round < mb.seq) {
      // A closed round: the peer missed our ack — stop its retransmits.
      ++mb.metrics.stale_interbank;
      send_ack(bank, from, FedMsg::kColumns, round);
    }
    // A future round (we crashed past the start): stay silent; the peer
    // retries until our round is re-opened by the recovery poll.
    return;
  }
  const std::uint32_t members = r.get_u32();
  if (!r.ok() || members > params_.n_isps) {
    ++mb.metrics.bad_envelopes;
    return;
  }
  for (std::uint32_t m = 0; m < members; ++m) {
    const std::uint64_t g = r.get_u64();
    const std::uint32_t len = r.get_u32();
    if (!r.ok() || g >= params_.n_isps || home_bank(g) != from ||
        len != params_.n_isps) {
      ++mb.metrics.bad_envelopes;
      return;
    }
    for (std::size_t i = 0; i < params_.n_isps; ++i)
      mb.verify[i][g] = r.get_i64();
  }
  if (!r.ok()) {
    ++mb.metrics.bad_envelopes;
    return;
  }
  mb.colset_from.at(from) = true;
  led.any_applied = true;
  led.applied_hi = round;
  send_ack(bank, from, FedMsg::kColumns, round);
  maybe_verify(bank);
  try_close_round(bank);
}

void BankFederation::handle_clearing(std::size_t bank, std::size_t from,
                                     crypto::ByteReader& r,
                                     std::uint64_t round) {
  MemberBank& mb = banks_.at(bank);
  PeerLedger& led = mb.clr_ledger.at(from);
  if (led.any_applied && round <= led.applied_hi) {
    ++mb.metrics.duplicate_interbank;
    send_ack(bank, from, FedMsg::kClearing, round);
    return;
  }
  if (mb.canrequest || round != mb.seq) {
    if (round < mb.seq) {
      ++mb.metrics.stale_interbank;
      send_ack(bank, from, FedMsg::kClearing, round);
    }
    return;
  }
  const std::int64_t peer_net = r.get_i64();
  const std::uint32_t n_items = r.get_u32();
  if (!r.ok() || n_items > params_.n_isps * params_.n_isps) {
    ++mb.metrics.bad_envelopes;
    return;
  }
  // Two-phase apply: validate the whole wire before touching accounts, so
  // a malformed transfer can't half-apply.
  std::vector<std::pair<std::uint64_t, std::int64_t>> items;
  items.reserve(n_items);
  for (std::uint32_t k = 0; k < n_items; ++k) {
    const std::uint64_t g = r.get_u64();
    const std::int64_t micros = r.get_i64();
    if (!r.ok() || g >= params_.n_isps || home_bank(g) != bank) {
      ++mb.metrics.bad_envelopes;
      return;
    }
    items.emplace_back(g, micros);
  }
  if (!r.ok()) {
    ++mb.metrics.bad_envelopes;
    return;
  }
  for (const auto& [g, micros] : items)
    accounts_.at(g) += Money::from_micros(micros);
  mb.peer_partial.at(from) = Money::from_micros(peer_net);
  mb.transfer_from.at(from) = true;
  led.any_applied = true;
  led.applied_hi = round;
  send_ack(bank, from, FedMsg::kClearing, round);
  if (mb.verified && !mb.pair_netted[from]) combine_pair(bank, from);
  try_close_round(bank);
}

void BankFederation::handle_ack(std::size_t bank, std::size_t from,
                                FedMsg acked, std::uint64_t round) {
  MemberBank& mb = banks_.at(bank);
  PendingWire& pw =
      mb.pending.at(2 * from + (acked == FedMsg::kClearing ? 1 : 0));
  if (pw.active && pw.round == round &&
      pw.kind == static_cast<std::uint8_t>(acked))
    pw = PendingWire{};
}

void BankFederation::poll_interbank(std::size_t bank, std::int64_t now) {
  MemberBank& mb = banks_.at(bank);
  bool any = false;
  for (const PendingWire& pw : mb.pending)
    if (pw.active) {
      any = true;
      break;
    }
  if (!any) return;
  if (mb.wal) {
    crypto::Bytes p;
    crypto::put_i64(p, now);
    log_op(bank, WalOp::kPollWires, p);
  }
  for (std::size_t slot = 0; slot < mb.pending.size(); ++slot) {
    PendingWire& pw = mb.pending[slot];
    if (!pw.active) continue;
    if (pw.next_at == 0) {
      // First poll after the send (or after a crash restored the wire):
      // arm the backoff clock instead of flooding immediately.
      pw.next_at = now + params_.retry.backoff_for(pw.attempts);
      continue;
    }
    if (now < pw.next_at) continue;
    ++pw.attempts;
    ++mb.metrics.interbank_retries;
    pw.next_at = now + params_.retry.backoff_for(pw.attempts);
    if (replaying_) continue;
    const std::size_t to = slot / 2;
    if (sink_) {
      sink_(bank, to, pw.kind, pw.wire);
    } else {
      loopback_.emplace_back(bank, to, pw.kind, pw.wire);
      drain_loopback();
    }
  }
}

void BankFederation::rebuild_violations() {
  last_violations_.clear();
  for (const MemberBank& mb : banks_)
    last_violations_.insert(last_violations_.end(), mb.violations.begin(),
                            mb.violations.end());
  std::sort(last_violations_.begin(), last_violations_.end(),
            [](const CreditViolation& a, const CreditViolation& b) {
              return a.isp_i != b.isp_i ? a.isp_i < b.isp_i
                                        : a.isp_j < b.isp_j;
            });
}

}  // namespace zmail::core
