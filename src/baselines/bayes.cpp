#include "baselines/bayes.hpp"

#include <cmath>

#include "workload/corpus.hpp"

namespace zmail::baselines {

void NaiveBayesFilter::train(const std::string& text, bool is_spam) {
  const auto tokens = workload::tokenize(text);
  for (const auto& t : tokens) {
    Counts& c = vocab_[t];
    if (is_spam) {
      ++c.spam;
      ++spam_tokens_;
    } else {
      ++c.ham;
      ++ham_tokens_;
    }
  }
  if (is_spam)
    ++spam_docs_;
  else
    ++ham_docs_;
}

void NaiveBayesFilter::train_message(const net::EmailMessage& msg,
                                     bool is_spam) {
  train(msg.subject() + " " + msg.body, is_spam);
}

double NaiveBayesFilter::score(const std::string& text) const {
  if (spam_docs_ == 0 || ham_docs_ == 0) return 0.0;  // untrained: neutral
  const double v = static_cast<double>(vocab_.size()) + 1.0;
  double log_odds =
      std::log(static_cast<double>(spam_docs_)) -
      std::log(static_cast<double>(ham_docs_));
  for (const auto& t : workload::tokenize(text)) {
    const auto it = vocab_.find(t);
    const double spam_count = it != vocab_.end() ? it->second.spam : 0.0;
    const double ham_count = it != vocab_.end() ? it->second.ham : 0.0;
    // Laplace-smoothed per-class token likelihoods.
    log_odds +=
        std::log((spam_count + 1.0) /
                 (static_cast<double>(spam_tokens_) + v)) -
        std::log((ham_count + 1.0) / (static_cast<double>(ham_tokens_) + v));
  }
  return log_odds;
}

bool NaiveBayesFilter::is_spam(const net::EmailMessage& msg) const {
  return is_spam(msg.subject() + " " + msg.body);
}

void FilterEvaluation::add(bool truth_spam, bool flagged_spam) noexcept {
  if (truth_spam && flagged_spam) ++true_positive;
  else if (!truth_spam && flagged_spam) ++false_positive;
  else if (!truth_spam && !flagged_spam) ++true_negative;
  else ++false_negative;
}

double FilterEvaluation::false_positive_rate() const noexcept {
  const std::uint64_t ham = false_positive + true_negative;
  return ham ? static_cast<double>(false_positive) /
                   static_cast<double>(ham)
             : 0.0;
}

double FilterEvaluation::false_negative_rate() const noexcept {
  const std::uint64_t spam = true_positive + false_negative;
  return spam ? static_cast<double>(false_negative) /
                    static_cast<double>(spam)
              : 0.0;
}

double FilterEvaluation::precision() const noexcept {
  const std::uint64_t flagged = true_positive + false_positive;
  return flagged ? static_cast<double>(true_positive) /
                       static_cast<double>(flagged)
                 : 0.0;
}

double FilterEvaluation::recall() const noexcept {
  const std::uint64_t spam = true_positive + false_negative;
  return spam ? static_cast<double>(true_positive) /
                    static_cast<double>(spam)
              : 0.0;
}

}  // namespace zmail::baselines
