#include "core/bank.hpp"

#include "util/assert.hpp"

namespace zmail::core {

Bank::Bank(const ZmailParams& params, crypto::KeyPair keys,
           std::uint64_t rng_seed)
    : params_(params), keys_(keys), rng_(rng_seed ^ 0xBA4BULL) {
  accounts_.assign(params_.n_isps, params_.initial_isp_bank_account);
  buy_ledger_.assign(params_.n_isps, TradeLedger{});
  sell_ledger_.assign(params_.n_isps, TradeLedger{});
  verify_.assign(params_.n_isps, std::vector<EPenny>(params_.n_isps, 0));
  drift_.assign(params_.n_isps, std::vector<EPenny>(params_.n_isps, 0));
  drift_streak_.assign(params_.n_isps,
                       std::vector<std::uint32_t>(params_.n_isps, 0));
  reported_.assign(params_.n_isps, false);
}

crypto::Bytes Bank::on_buy(std::size_t g, const crypto::Bytes& wire) {
  if (wal_) {
    crypto::Bytes p;
    crypto::put_u64(p, g);
    crypto::put_bytes(p, wire);
    log_op(WalOp::kOnBuy, p);
  }
  ++metrics_.buys_received;
  if (!unseal_into(keys_.priv, wire, env_scratch_, plain_scratch_)) {
    ++metrics_.bad_envelopes;
    return {};
  }
  const auto req = BuyRequest::deserialize(plain_scratch_);
  if (!req || req->buyvalue <= 0) {
    ++metrics_.bad_envelopes;
    return {};
  }

  // Idempotency shield: never mint twice for one nonce.
  TradeLedger& led = buy_ledger_.at(g);
  if (led.any_applied && req->nonce.counter <= led.applied_hi) {
    if (req->nonce == led.last_nonce) {
      ++metrics_.duplicate_buys;
      return led.last_reply;  // re-send the cached reply, no re-apply
    }
    ++metrics_.stale_trades;  // delayed duplicate of an older exchange
    return {};
  }

  const Money cost = Money::from_epennies(req->buyvalue);
  BuyReply reply;
  reply.nonce = req->nonce;
  if (accounts_.at(g) >= cost) {
    accounts_.at(g) -= cost;
    metrics_.epennies_minted += req->buyvalue;
    reply.accepted = true;
    ++metrics_.buys_accepted;
    audit(AuditKind::kMint, g, 0, req->buyvalue);
  } else {
    reply.accepted = false;
    ++metrics_.buys_rejected;
    audit(AuditKind::kMintRejected, g, 0, req->buyvalue);
  }
  crypto::Bytes out;
  seal_into(keys_.priv, reply.serialize(), rng_, env_scratch_, out);
  led.any_applied = true;
  led.applied_hi = req->nonce.counter;
  led.last_nonce = req->nonce;
  led.last_reply = out;
  return out;
}

crypto::Bytes Bank::on_sell(std::size_t g, const crypto::Bytes& wire) {
  if (wal_) {
    crypto::Bytes p;
    crypto::put_u64(p, g);
    crypto::put_bytes(p, wire);
    log_op(WalOp::kOnSell, p);
  }
  ++metrics_.sells_received;
  if (!unseal_into(keys_.priv, wire, env_scratch_, plain_scratch_)) {
    ++metrics_.bad_envelopes;
    return {};
  }
  const auto req = SellRequest::deserialize(plain_scratch_);
  if (!req || req->sellvalue <= 0) {
    ++metrics_.bad_envelopes;
    return {};
  }
  // Idempotency shield: never burn (or pay out) twice for one nonce.
  TradeLedger& led = sell_ledger_.at(g);
  if (led.any_applied && req->nonce.counter <= led.applied_hi) {
    if (req->nonce == led.last_nonce) {
      ++metrics_.duplicate_sells;
      return led.last_reply;
    }
    ++metrics_.stale_trades;
    return {};
  }
  accounts_.at(g) += Money::from_epennies(req->sellvalue);
  metrics_.epennies_burned += req->sellvalue;
  audit(AuditKind::kBurn, g, 0, req->sellvalue);
  SellReply reply{req->nonce};
  crypto::Bytes out;
  seal_into(keys_.priv, reply.serialize(), rng_, env_scratch_, out);
  led.any_applied = true;
  led.applied_hi = req->nonce.counter;
  led.last_nonce = req->nonce;
  led.last_reply = out;
  return out;
}

std::vector<std::pair<std::size_t, crypto::Bytes>> Bank::start_snapshot() {
  if (!canrequest_) return {};
  log_op(WalOp::kStartSnapshot, crypto::Bytes{});
  canrequest_ = false;
  total_ = 0;
  reported_.assign(params_.n_isps, false);
  std::vector<std::pair<std::size_t, crypto::Bytes>> out;
  SnapshotRequest req{seq_};
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    if (!params_.is_compliant(i)) continue;
    ++total_;
    crypto::Bytes wire;
    seal_into(keys_.priv, req.serialize(), rng_, env_scratch_, wire);
    out.emplace_back(i, std::move(wire));
  }
  if (total_ == 0) canrequest_ = true;  // nothing to gather
  audit(AuditKind::kRoundStarted, 0, 0, static_cast<std::int64_t>(total_));
  return out;
}

std::vector<std::pair<std::size_t, crypto::Bytes>> Bank::resend_requests() {
  if (canrequest_) return {};
  log_op(WalOp::kResendRequests, crypto::Bytes{});
  std::vector<std::pair<std::size_t, crypto::Bytes>> out;
  SnapshotRequest req{seq_};
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    if (!params_.is_compliant(i) || reported_.at(i)) continue;
    crypto::Bytes wire;
    seal_into(keys_.priv, req.serialize(), rng_, env_scratch_, wire);
    out.emplace_back(i, std::move(wire));
    ++metrics_.snapshot_rerequests;
  }
  return out;
}

void Bank::on_reply(std::size_t g, const crypto::Bytes& wire) {
  if (!params_.is_compliant(g)) return;  // paper: "~compliant[g] -> skip"
  if (wal_) {
    crypto::Bytes p;
    crypto::put_u64(p, g);
    crypto::put_bytes(p, wire);
    log_op(WalOp::kOnReply, p);
  }
  if (!unseal_into(keys_.priv, wire, env_scratch_, plain_scratch_)) {
    ++metrics_.bad_envelopes;
    return;
  }
  const auto report = CreditReport::deserialize(plain_scratch_);
  if (!report || report->credit.size() != params_.n_isps) {
    ++metrics_.bad_envelopes;
    return;
  }
  if (canrequest_ || report->seq != seq_ || reported_.at(g)) {
    ++metrics_.stale_reports;  // replayed or out-of-round report
    audit(AuditKind::kStaleReport, g);
    return;
  }
  reported_.at(g) = true;
  ++metrics_.credit_reports_received;
  audit(AuditKind::kReportReceived, g);
  for (std::size_t i = 0; i < params_.n_isps; ++i)
    verify_[i][g] = report->credit[i];
  ZMAIL_ASSERT(total_ > 0);
  if (--total_ == 0) verify_round();
}

void Bank::verify_round() {
  last_violations_.clear();
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    if (!params_.is_compliant(i)) continue;
    for (std::size_t j = i + 1; j < params_.n_isps; ++j) {
      if (!params_.is_compliant(j)) continue;
      // verify[j][i] = credit_i[j]  (ISP i's view of its flow toward j)
      // verify[i][j] = credit_j[i]  (ISP j's view of its flow toward i)
      const EPenny d = verify_[j][i] + verify_[i][j];
      drift_[i][j] += d;
      if (drift_[i][j] != 0)
        ++drift_streak_[i][j];
      else
        drift_streak_[i][j] = 0;
      if (drift_streak_[i][j] == 2) ++persistent_drift_pairs_;
      if (d != 0) {
        last_violations_.push_back(CreditViolation{i, j, d});
        ++metrics_.inconsistent_pairs_found;
        audit(AuditKind::kViolationFlagged, i, j, d);
        continue;  // no settlement across a disputed pair
      }
      // Bulk settlement: net flow i -> j is credit_i[j]; a positive value
      // means i's users paid j's users, so real money moves i -> j.
      const EPenny net = verify_[j][i];
      if (net != 0) {
        const Money amount = Money::from_epennies(net > 0 ? net : -net);
        const std::size_t payer = net > 0 ? i : j;
        const std::size_t payee = net > 0 ? j : i;
        accounts_.at(payer) -= amount;
        accounts_.at(payee) += amount;
        ++metrics_.settlement_transfers;
        metrics_.settlement_bytes += 2 * sizeof(EPenny);
        audit(AuditKind::kSettlement, payer, payee, net > 0 ? net : -net);
      }
    }
  }
  for (auto& row : verify_)
    for (auto& cell : row) cell = 0;
  audit(AuditKind::kRoundCompleted, 0);
  seq_ += 1;
  canrequest_ = true;
  ++metrics_.snapshot_rounds;
}

}  // namespace zmail::core
