#include "core/mailing_list.hpp"

#include <gtest/gtest.h>

namespace zmail::core {
namespace {

ZmailParams list_params() {
  ZmailParams p;
  p.n_isps = 3;
  p.users_per_isp = 10;
  p.initial_user_balance = 100;
  p.default_daily_limit = 1'000;
  return p;
}

net::EmailAddress user(std::size_t i, std::size_t u) {
  return net::make_user_address(i, u);
}

class MailingListTest : public ::testing::Test {
 protected:
  MailingListTest() : sys_(list_params(), 21), list_(sys_, user(0, 0), "dev") {
    // Subscribers across all three ISPs, skipping the distributor.
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t u = 0; u < 5; ++u)
        if (!(i == 0 && u == 0)) list_.subscribe(user(i, u));
  }

  ZmailSystem sys_;
  MailingList list_;
};

TEST_F(MailingListTest, PostReachesEveryActiveSubscriber) {
  const std::size_t sent = list_.post("release", "v1.0 is out");
  EXPECT_EQ(sent, 14u);
  sys_.run_for(sim::kHour);
  ASSERT_EQ(sys_.isp(1).inbox(0).size(), 1u);
  EXPECT_EQ(sys_.isp(1).inbox(0)[0].msg.subject(), "[dev] release");
}

TEST_F(MailingListTest, AcknowledgmentsReturnEveryEPenny) {
  const EPenny before = sys_.isp(0).user(0).balance;
  list_.post("n1", "b");
  sys_.run_for(sim::kHour);
  list_.reconcile_and_prune();
  // Every subscriber's ISP acknowledged: distributor net cost is zero.
  EXPECT_EQ(list_.net_epenny_cost(), 0);
  EXPECT_EQ(sys_.isp(0).user(0).balance, before);
  EXPECT_TRUE(sys_.conservation_holds());
}

TEST_F(MailingListTest, WithoutAcksDistributorPaysFullFreight) {
  ZmailParams p = list_params();
  p.auto_acknowledge_lists = false;
  ZmailSystem sys(p, 22);
  MailingList list(sys, user(0, 0), "dev");
  for (std::size_t u = 1; u < 6; ++u) list.subscribe(user(1, u));
  const EPenny before = sys.isp(0).user(0).balance;
  list.post("n", "b");
  sys.run_for(sim::kHour);
  EXPECT_EQ(sys.isp(0).user(0).balance, before - 5);
  EXPECT_EQ(list.net_epenny_cost(), 5);
}

TEST_F(MailingListTest, DeadSubscribersArePruned) {
  // ISP 2 stops acknowledging (its users' mailboxes are dead).
  ZmailParams p = list_params();
  ZmailSystem sys(p, 23);
  MailingList list(sys, user(0, 0), "dev", /*prune_after=*/2);
  for (std::size_t u = 1; u < 4; ++u) list.subscribe(user(1, u));
  for (std::size_t u = 0; u < 3; ++u) list.subscribe(user(2, u));
  // Disable acks only on ISP 2 by swapping its params... simplest: make
  // ISP 2 non-compliant so its deliveries never generate acks.
  // (Non-compliant receivers don't run Zmail at all.)
  ZmailParams p2 = list_params();
  p2.compliant = {true, true, false};
  ZmailSystem sys2(p2, 24);
  MailingList list2(sys2, user(0, 0), "dev", 2);
  for (std::size_t u = 1; u < 4; ++u) list2.subscribe(user(1, u));
  for (std::size_t u = 0; u < 3; ++u) list2.subscribe(user(2, u));

  EXPECT_EQ(list2.active_subscribers(), 6u);
  for (int post = 0; post < 2; ++post) {
    list2.post("n", "b");
    sys2.run_for(sim::kHour);
  }
  const std::size_t pruned = list2.reconcile_and_prune();
  EXPECT_EQ(pruned, 3u);  // the three silent ISP-2 subscribers
  EXPECT_EQ(list2.active_subscribers(), 3u);
  // Next post only goes to live subscribers.
  EXPECT_EQ(list2.post("n2", "b"), 3u);
}

TEST_F(MailingListTest, UnsubscribeStopsDelivery) {
  EXPECT_TRUE(list_.unsubscribe(user(1, 1)));
  EXPECT_FALSE(list_.unsubscribe(user(1, 1)));  // already inactive
  const std::size_t sent = list_.post("n", "b");
  EXPECT_EQ(sent, 13u);
  sys_.run_for(sim::kHour);
  EXPECT_TRUE(sys_.isp(1).inbox(1).empty());
}

TEST_F(MailingListTest, ResubscribeReactivates) {
  list_.unsubscribe(user(1, 1));
  list_.subscribe(user(1, 1));
  EXPECT_EQ(list_.active_subscribers(), 14u);
}

TEST_F(MailingListTest, PostsAreCounted) {
  list_.post("a", "1");
  list_.post("b", "2");
  EXPECT_EQ(list_.posts(), 2u);
}

// --- Moderation (paper: moderated vs unmoderated distributors) -------------

TEST_F(MailingListTest, UnmoderatedSubmissionDistributesImmediately) {
  EXPECT_TRUE(list_.submit(user(1, 1), "from the floor", "hello all"));
  EXPECT_TRUE(list_.pending().empty());
  EXPECT_EQ(list_.posts(), 1u);
  sys_.run_for(sim::kHour);
  // The submission email itself reached the distributor's inbox.
  bool saw_submission = false;
  for (const auto& d : sys_.isp(0).inbox(0))
    if (d.msg.subject() == "[dev-submit] from the floor") saw_submission = true;
  EXPECT_TRUE(saw_submission);
}

TEST_F(MailingListTest, NonSubscriberCannotSubmit) {
  EXPECT_FALSE(list_.submit(user(2, 9), "intruder", "spam"));
  EXPECT_EQ(list_.posts(), 0u);
}

class ModeratedListTest : public ::testing::Test {
 protected:
  ModeratedListTest()
      : sys_(list_params(), 31),
        list_(sys_, user(0, 0), "dev", 3, ListMode::kModerated) {
    for (std::size_t u = 1; u < 6; ++u) list_.subscribe(user(1, u));
  }
  ZmailSystem sys_;
  MailingList list_;
};

TEST_F(ModeratedListTest, SubmissionQueuesForApproval) {
  EXPECT_TRUE(list_.submit(user(1, 1), "pending", "body"));
  ASSERT_EQ(list_.pending().size(), 1u);
  EXPECT_EQ(list_.pending()[0].subject, "pending");
  EXPECT_EQ(list_.posts(), 0u);  // not distributed yet
}

TEST_F(ModeratedListTest, ApprovalDistributes) {
  list_.submit(user(1, 1), "ok", "body");
  const std::uint64_t id = list_.pending()[0].id;
  EXPECT_TRUE(list_.approve(id));
  EXPECT_TRUE(list_.pending().empty());
  EXPECT_EQ(list_.posts(), 1u);
  sys_.run_for(sim::kHour);
  EXPECT_FALSE(sys_.isp(1).inbox(2).empty());
}

TEST_F(ModeratedListTest, RejectionDropsPostButKeepsTheEPenny) {
  const EPenny submitter_before = sys_.isp(1).user(1).balance;
  const EPenny moderator_before = sys_.isp(0).user(0).balance;
  list_.submit(user(1, 1), "junk", "junk body");
  sys_.run_for(sim::kHour);
  const std::uint64_t id = list_.pending()[0].id;
  EXPECT_TRUE(list_.reject(id));
  EXPECT_EQ(list_.posts(), 0u);
  // The spam submission cost its author an e-penny, paid to the moderator:
  // abusive submissions fund moderation instead of spamming the list.
  EXPECT_EQ(sys_.isp(1).user(1).balance, submitter_before - 1);
  EXPECT_EQ(sys_.isp(0).user(0).balance, moderator_before + 1);
}

TEST_F(ModeratedListTest, UnknownIdsRejected) {
  EXPECT_FALSE(list_.approve(42));
  EXPECT_FALSE(list_.reject(42));
}

TEST_F(ModeratedListTest, MultiplePendingHandledInAnyOrder) {
  list_.submit(user(1, 1), "a", "1");
  list_.submit(user(1, 2), "b", "2");
  list_.submit(user(1, 3), "c", "3");
  ASSERT_EQ(list_.pending().size(), 3u);
  const std::uint64_t b_id = list_.pending()[1].id;
  EXPECT_TRUE(list_.reject(b_id));
  EXPECT_EQ(list_.pending().size(), 2u);
  EXPECT_TRUE(list_.approve(list_.pending()[1].id));  // "c"
  EXPECT_TRUE(list_.approve(list_.pending()[0].id));  // "a"
  EXPECT_EQ(list_.posts(), 2u);
}

TEST_F(MailingListTest, AckTracksPerSubscriberCounts) {
  list_.post("n", "b");
  sys_.run_for(sim::kHour);
  list_.reconcile_and_prune();
  for (const auto& sub : list_.subscribers()) {
    EXPECT_EQ(sub.posts_sent, 1u) << sub.address.str();
    EXPECT_EQ(sub.acks_received, 1u) << sub.address.str();
    EXPECT_TRUE(sub.active);
  }
}

}  // namespace
}  // namespace zmail::core
