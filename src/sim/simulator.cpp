#include "sim/simulator.hpp"

#include <cinttypes>
#include <cstdio>

#include "trace/trace.hpp"

namespace zmail::sim {

std::string format_time(SimTime t) {
  const std::int64_t days = t / kDay;
  t %= kDay;
  const std::int64_t hours = t / kHour;
  t %= kHour;
  const std::int64_t minutes = t / kMinute;
  t %= kMinute;
  const std::int64_t seconds = t / kSecond;
  const std::int64_t millis = (t % kSecond) / kMillisecond;
  char buf[64];
  std::snprintf(buf, sizeof buf,
                "%" PRId64 "d %02" PRId64 ":%02" PRId64 ":%02" PRId64
                ".%03" PRId64,
                days, hours, minutes, seconds, millis);
  return buf;
}

// --- CalendarQueue ---------------------------------------------------------

void Simulator::CalendarQueue::insert_wheel(SimTime at, std::uint64_t seq,
                                            EventFn&& fn) {
  const std::size_t idx = bucket_index(at);
  auto& b = buckets_[idx];
  if (idx == cursor_ && sorted_) {
    // Insert into the bucket currently being drained: splice the key into
    // the undrained tail of the order array (indices only, events don't
    // move).
    const OrderKey key{at, seq, static_cast<std::uint32_t>(b.size())};
    const auto it = std::lower_bound(
        order_.begin() + static_cast<std::ptrdiff_t>(pos_), order_.end(), key,
        [](const OrderKey& a, const OrderKey& c) noexcept {
          return a.at != c.at ? a.at < c.at : a.seq < c.seq;
        });
    order_.insert(it, key);
  } else if (idx < cursor_) {
    // An insert can land before the cursor when a peek advanced it past
    // empty buckets without executing anything (e.g. step() bounded by
    // `until`).  Any drain order held for the old cursor bucket is rebuilt
    // when the cursor returns there.
    cursor_ = idx;
    sorted_ = false;
  }
  b.emplace_back(at, seq, std::move(fn));
  ++wheel_count_;
}

void Simulator::CalendarQueue::push(SimTime at, std::uint64_t seq,
                                    EventFn&& fn) {
  ++size_;
  if (!in_wheel(at)) {
    if (at >= base_) {  // beyond the wheel
      if (wheel_count_ == 0 && overflow_.empty()) {
        // Idle queue: re-anchor the wheel directly instead of bouncing the
        // event through the overflow heap (the common shape of sparse
        // recurring tasks).
        base_ = at - (at % kWidth);
        cursor_ = 0;
        sorted_ = false;
      } else {
        overflow_.emplace_back(at, seq, std::move(fn));
        std::push_heap(overflow_.begin(), overflow_.end(), Later{});
        return;
      }
    } else {
      rebase(at);  // rare: the wheel jumped ahead over an idle gap
    }
  }
  insert_wheel(at, seq, std::move(fn));
}

void Simulator::CalendarQueue::sort_bucket() {
  const auto& b = buckets_[cursor_];
  order_.clear();
  for (std::uint32_t i = 0; i < b.size(); ++i)
    if (b[i].fn) order_.push_back(OrderKey{b[i].at, b[i].seq, i});
  std::sort(order_.begin(), order_.end(),
            [](const OrderKey& a, const OrderKey& c) noexcept {
              return a.at != c.at ? a.at < c.at : a.seq < c.seq;
            });
  pos_ = 0;
  sorted_ = true;
}

void Simulator::CalendarQueue::rebase(SimTime t) {
  ZMAIL_PROF_SCOPE("sim.calendar_rebase");
  ++rebases_;
  // A rebase must never move the anchor backwards past live entries: every
  // event still pending sits at or beyond the rebase target (the caller
  // passes either the earliest overflow timestamp or a fresh push earlier
  // than the current base).  If this fires, some schedule produced a
  // timestamp before an already-drained instant — the silent-reordering bug
  // the monotonicity assert in step() exists to catch.
  ZMAIL_ASSERT_MSG(overflow_.empty() || overflow_.front().at >= t ||
                       t <= base_,
                   "calendar rebase would skip pending overflow events");
  // Dump the wheel's live entries into the overflow heap, re-anchor,
  // migrate eligibles.  A drained wheel (the steady state of sparse,
  // coarser-than-the-span schedules, e.g. daily resets) skips the bucket
  // scan and the re-heapify entirely — the overflow heap is already valid.
  if (wheel_count_ > 0) {
    // Live entries only ever sit at or beyond the cursor; earlier buckets
    // were cleared as they drained.
    for (std::size_t i = cursor_; i < kBuckets; ++i) {
      auto& b = buckets_[i];
      for (auto& e : b)
        if (e.fn) overflow_.push_back(std::move(e));
      b.clear();
    }
    std::make_heap(overflow_.begin(), overflow_.end(), Later{});
    wheel_count_ = 0;
  }
  cursor_ = 0;
  sorted_ = false;
  base_ = t - (t % kWidth);
  while (!overflow_.empty() && in_wheel(overflow_.front().at)) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    Entry e = std::move(overflow_.back());
    overflow_.pop_back();
    insert_wheel(e.at, e.seq, std::move(e.fn));
  }
}

const Simulator::Entry* Simulator::CalendarQueue::peek() {
  for (;;) {
    if (sorted_) {
      if (pos_ < order_.size())
        return &buckets_[cursor_][order_[pos_].idx];
      // Bucket drained (or it held only husks): release it and move on.
      buckets_[cursor_].clear();
      sorted_ = false;
      ++cursor_;
      continue;
    }
    if (wheel_count_ > 0) {
      ZMAIL_ASSERT(cursor_ < kBuckets);
      if (buckets_[cursor_].empty()) {
        ++cursor_;
        continue;
      }
      sort_bucket();
      continue;
    }
    // Wheel exhausted; everything pending sits in the overflow heap.
    if (overflow_.empty()) return nullptr;
    rebase(overflow_.front().at);
  }
}

Simulator::Entry Simulator::CalendarQueue::pop() {
  const Entry* top = peek();
  ZMAIL_ASSERT(top != nullptr);
  // peek() leaves the cursor on a sorted bucket with order_[pos_] = top.
  Entry e = std::move(buckets_[cursor_][order_[pos_].idx]);
  ++pos_;
  --wheel_count_;
  --size_;
  return e;
}

// --- Simulator -------------------------------------------------------------

void Simulator::schedule_at(SimTime at, EventFn fn) {
  ZMAIL_ASSERT_MSG(at >= now_, "cannot schedule into the past");
  ZMAIL_ASSERT_MSG(static_cast<bool>(fn), "cannot schedule an empty event");
  queue_.push(at, next_seq_++, std::move(fn));
}

void Simulator::schedule_after(Duration delay, EventFn fn) {
  ZMAIL_ASSERT(delay >= 0);
  schedule_at(now_ + delay, std::move(fn));
}

void Simulator::schedule_every(Duration period, std::function<bool()> fn,
                               std::optional<SimTime> first) {
  ZMAIL_ASSERT_MSG(period > 0, "recurring task needs a positive period");
  const SimTime start = first.value_or(now_ + period);
  ZMAIL_ASSERT(start >= now_);
  auto task = std::make_shared<RecurringTask>(RecurringTask{period, std::move(fn)});
  schedule_at(start, [this, task] { run_recurring(task); });
}

void Simulator::run_recurring(const std::shared_ptr<RecurringTask>& task) {
  if (task->fn()) schedule_after(task->period, [this, task] { run_recurring(task); });
}

bool Simulator::step(SimTime until) {
  const Entry* top = queue_.peek();
  if (top == nullptr || top->at > until) return false;
  Entry e = queue_.pop();
  // Monotonicity: the calendar queue must hand events back in global
  // (at, seq) order.  A violation here means a rebase or bucket-cursor bug
  // reordered the timeline — fail loudly instead of corrupting causality.
  ZMAIL_ASSERT_MSG(e.at >= now_, "calendar queue returned a past event");
  now_ = e.at;
  ++executed_;
  // Publish the clock for trace-event stamping before dispatch; guarded so
  // the disabled hot path pays only the enabled() load.
  if (trace::enabled()) trace::set_sim_now(now_);
  // Dispatch is the tightest loop in the repo (~10ns/event in the cascade
  // bench), so even the timer's static-init guard is kept off the
  // profiling-disabled path.
  if (trace::profiling_enabled()) {
    ZMAIL_PROF_SCOPE("sim.dispatch");
    e.fn();
  } else {
    e.fn();
  }
  return true;
}

std::uint64_t Simulator::run(SimTime until) {
  std::uint64_t n = 0;
  while (step(until)) ++n;
  // When a finite horizon was requested, the clock advances to it even if
  // the queue drained early; an open-ended run leaves the clock at the last
  // event.
  if (until != INT64_MAX && now_ < until) now_ = until;
  return n;
}

}  // namespace zmail::sim
