// Snapshot format: the v1 and v2 byte layouts are pinned by golden files,
// unknown versions/features are rejected with typed errors (feature bits
// version-gated), and the file writer is atomic (temp + rename).
#include "store/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace zmail::store {
namespace {

SnapshotData golden_snapshot() {
  SnapshotData s;
  s.meta.version = kSnapshotVersion;
  s.meta.features = 0;
  s.meta.next_lsn = 0x0102030405060708ull;
  s.meta.sim_time_us = 1234567890;
  SnapshotSection sec;
  sec.id = kStateSection;
  sec.payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42};
  s.sections.push_back(sec);
  return s;
}

// A v2 columnar snapshot: one scalar section plus one raw column section
// (payload little-endian, unlike the big-endian container framing).
SnapshotData golden_columnar_snapshot() {
  SnapshotData s;
  s.meta.version = kSnapshotVersionColumnar;
  s.meta.features = kFeatureColumnarUserState;
  s.meta.next_lsn = 0x0102030405060708ull;
  s.meta.sim_time_us = 1234567890;
  SnapshotSection scalars;
  scalars.id = kIspScalarsSection;
  scalars.payload = {0xAA, 0xBB, 0xCC};
  s.sections.push_back(scalars);
  SnapshotSection column;
  column.id = kUserColumnBase;  // column 0 (account)
  column.payload = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  s.sections.push_back(column);
  return s;
}

std::string to_hex(const crypto::Bytes& b) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(2 * b.size());
  for (std::uint8_t v : b) {
    out.push_back(digits[v >> 4]);
    out.push_back(digits[v & 0xF]);
  }
  return out;
}

// The v1 on-disk layout, byte for byte.  If this test breaks, the format
// changed: bump kSnapshotVersion and teach decode_snapshot the old layout
// instead of editing the golden string.
TEST(SnapshotGoldenTest, V1ByteLayoutIsPinned) {
  const crypto::Bytes encoded = encode_snapshot(golden_snapshot());
  EXPECT_EQ(to_hex(encoded),
            // magic  version  features next_lsn
            "5a534e50"
            "00000001"
            "00000000"
            "0102030405060708"
            // sim_time_us      sections header-crc
            "00000000499602d2"
            "00000001"
            "cebfcd9c"
            // section: id      len              payload    payload-crc
            "00000001"
            "0000000000000006"
            "deadbeef0042"
            "fb6bb3d0");
}

TEST(SnapshotCodecTest, EncodeDecodeRoundTrip) {
  const SnapshotData in = golden_snapshot();
  SnapshotData out;
  ASSERT_EQ(decode_snapshot(encode_snapshot(in), out), StoreStatus::kOk);
  EXPECT_EQ(out.meta.version, in.meta.version);
  EXPECT_EQ(out.meta.features, in.meta.features);
  EXPECT_EQ(out.meta.next_lsn, in.meta.next_lsn);
  EXPECT_EQ(out.meta.sim_time_us, in.meta.sim_time_us);
  ASSERT_EQ(out.sections.size(), 1u);
  EXPECT_EQ(out.sections[0].id, kStateSection);
  EXPECT_EQ(out.sections[0].payload, in.sections[0].payload);
}

// The v2 columnar layout, also pinned: same container grammar, new
// version/features words and section ids.  Bump to v3 rather than edit.
TEST(SnapshotGoldenTest, V2ColumnarByteLayoutIsPinned) {
  const crypto::Bytes encoded = encode_snapshot(golden_columnar_snapshot());
  EXPECT_EQ(to_hex(encoded),
            // magic  version  features next_lsn
            "5a534e50"
            "00000002"
            "00000001"
            "0102030405060708"
            // sim_time_us      sections header-crc
            "00000000499602d2"
            "00000002"
            "a2b81f22"
            // scalar section: id len    payload  crc
            "00000002"
            "0000000000000003"
            "aabbcc"
            "e18929aa"
            // column section: id len    payload (LE i64)  crc
            "00000010"
            "0000000000000008"
            "0102030405060708"
            "46891f81");
}

TEST(SnapshotCodecTest, ColumnarRoundTrip) {
  const SnapshotData in = golden_columnar_snapshot();
  SnapshotData out;
  ASSERT_EQ(decode_snapshot(encode_snapshot(in), out), StoreStatus::kOk);
  EXPECT_EQ(out.meta.version, kSnapshotVersionColumnar);
  EXPECT_EQ(out.meta.features, kFeatureColumnarUserState);
  ASSERT_EQ(out.sections.size(), 2u);
  EXPECT_EQ(out.sections[0].id, kIspScalarsSection);
  EXPECT_EQ(out.sections[1].id, kUserColumnBase);
  EXPECT_EQ(out.sections[1].payload, in.sections[1].payload);
}

TEST(SnapshotCodecTest, UnknownVersionIsATypedError) {
  SnapshotData s = golden_snapshot();
  s.meta.version = kMaxSnapshotVersion + 1;  // a future format
  SnapshotData out;
  EXPECT_EQ(decode_snapshot(encode_snapshot(s), out),
            StoreStatus::kUnknownVersion);

  s.meta.version = 0;  // below the floor is just as unknown
  EXPECT_EQ(decode_snapshot(encode_snapshot(s), out),
            StoreStatus::kUnknownVersion);
}

TEST(SnapshotCodecTest, UnknownFeatureBitIsATypedError) {
  SnapshotData s = golden_snapshot();
  s.meta.features = 0x80000000u;  // a feature flag this build predates
  SnapshotData out;
  EXPECT_EQ(decode_snapshot(encode_snapshot(s), out),
            StoreStatus::kUnknownFeature);

  SnapshotData v2 = golden_columnar_snapshot();
  v2.meta.features |= 0x80000000u;
  EXPECT_EQ(decode_snapshot(encode_snapshot(v2), out),
            StoreStatus::kUnknownFeature);
}

// Feature acceptance is gated by version: the columnar bit only exists
// from v2 on, so a v1 file claiming it is refused even though this build
// understands the feature.
TEST(SnapshotCodecTest, FeatureBitsAreVersionGated) {
  SnapshotData s = golden_snapshot();
  s.meta.features = kFeatureColumnarUserState;  // bit on a v1 header
  SnapshotData out;
  EXPECT_EQ(decode_snapshot(encode_snapshot(s), out),
            StoreStatus::kUnknownFeature);
}

TEST(SnapshotCodecTest, DamageIsDetected) {
  const crypto::Bytes intact = encode_snapshot(golden_snapshot());
  SnapshotData out;

  crypto::Bytes bad_magic = intact;
  bad_magic[1] ^= 0xFF;
  EXPECT_EQ(decode_snapshot(bad_magic, out), StoreStatus::kBadMagic);

  crypto::Bytes bad_header = intact;
  bad_header[13] ^= 0x01;  // inside next_lsn: header crc must catch it
  EXPECT_EQ(decode_snapshot(bad_header, out), StoreStatus::kCorrupt);

  crypto::Bytes bad_payload = intact;
  bad_payload[intact.size() - 5] ^= 0x01;  // last payload byte
  EXPECT_EQ(decode_snapshot(bad_payload, out), StoreStatus::kCorrupt);

  crypto::Bytes short_file(intact.begin(), intact.begin() + 40);
  EXPECT_EQ(decode_snapshot(short_file, out), StoreStatus::kTruncated);

  EXPECT_EQ(decode_snapshot(crypto::Bytes{}, out), StoreStatus::kNotFound);
}

TEST(SnapshotFileTest, WriteReadRoundTripAndMissingFile) {
  const std::string path = "store_snapshot_test_file.zsnap";
  std::remove(path.c_str());

  SnapshotData missing;
  EXPECT_EQ(read_snapshot_file(path, missing), StoreStatus::kNotFound);

  std::string err;
  ASSERT_EQ(write_snapshot_file(path, golden_snapshot(), true, &err),
            StoreStatus::kOk)
      << err;
  SnapshotData out;
  ASSERT_EQ(read_snapshot_file(path, out), StoreStatus::kOk);
  EXPECT_EQ(out.meta.next_lsn, golden_snapshot().meta.next_lsn);

  // A rewrite replaces the file atomically — no .tmp litter on success.
  SnapshotData second = golden_snapshot();
  second.meta.sim_time_us = 777;
  ASSERT_EQ(write_snapshot_file(path, second, true, &err), StoreStatus::kOk);
  ASSERT_EQ(read_snapshot_file(path, out), StoreStatus::kOk);
  EXPECT_EQ(out.meta.sim_time_us, 777u);
  FILE* tmp = std::fopen((path + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp) std::fclose(tmp);
  std::remove(path.c_str());
}

TEST(SnapshotFileViewTest, MapsSectionsAndValidatesOnOpen) {
  const std::string path = "store_snapshot_view_test.zsnap";
  std::remove(path.c_str());

  SnapshotFileView missing;
  EXPECT_EQ(missing.open(path), StoreStatus::kNotFound);

  const SnapshotData snap = golden_columnar_snapshot();
  std::string err;
  ASSERT_EQ(write_snapshot_file(path, snap, true, &err), StoreStatus::kOk)
      << err;

  SnapshotFileView view;
  ASSERT_EQ(view.open(path), StoreStatus::kOk);
  EXPECT_EQ(view.meta().version, kSnapshotVersionColumnar);
  EXPECT_EQ(view.meta().next_lsn, snap.meta.next_lsn);
  ASSERT_EQ(view.sections().size(), 2u);
  const auto* col = view.find(kUserColumnBase);
  ASSERT_NE(col, nullptr);
  ASSERT_EQ(col->size, snap.sections[1].payload.size());
  EXPECT_EQ(crypto::Bytes(col->data, col->data + col->size),
            snap.sections[1].payload);
  EXPECT_EQ(view.find(kUserColumnBase + 7), nullptr);
  view.close();

  // Flip one payload byte on disk: open() must catch it via the section
  // CRC, not hand out a corrupt mapping.
  crypto::Bytes raw;
  ASSERT_EQ(read_file(path, raw), StoreStatus::kOk);
  raw[raw.size() - 5] ^= 0x01;
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(raw.data(), 1, raw.size(), f), raw.size());
  std::fclose(f);
  EXPECT_EQ(view.open(path), StoreStatus::kCorrupt);
  EXPECT_TRUE(view.sections().empty());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace zmail::store
