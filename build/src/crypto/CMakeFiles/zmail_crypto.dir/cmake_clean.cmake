file(REMOVE_RECURSE
  "CMakeFiles/zmail_crypto.dir/bytes.cpp.o"
  "CMakeFiles/zmail_crypto.dir/bytes.cpp.o.d"
  "CMakeFiles/zmail_crypto.dir/hashcash.cpp.o"
  "CMakeFiles/zmail_crypto.dir/hashcash.cpp.o.d"
  "CMakeFiles/zmail_crypto.dir/hmac.cpp.o"
  "CMakeFiles/zmail_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/zmail_crypto.dir/nonce.cpp.o"
  "CMakeFiles/zmail_crypto.dir/nonce.cpp.o.d"
  "CMakeFiles/zmail_crypto.dir/primes.cpp.o"
  "CMakeFiles/zmail_crypto.dir/primes.cpp.o.d"
  "CMakeFiles/zmail_crypto.dir/rsa.cpp.o"
  "CMakeFiles/zmail_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/zmail_crypto.dir/sha256.cpp.o"
  "CMakeFiles/zmail_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/zmail_crypto.dir/xtea.cpp.o"
  "CMakeFiles/zmail_crypto.dir/xtea.cpp.o.d"
  "libzmail_crypto.a"
  "libzmail_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zmail_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
