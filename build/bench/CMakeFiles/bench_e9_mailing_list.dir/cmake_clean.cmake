file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_mailing_list.dir/bench_e9_mailing_list.cpp.o"
  "CMakeFiles/bench_e9_mailing_list.dir/bench_e9_mailing_list.cpp.o.d"
  "bench_e9_mailing_list"
  "bench_e9_mailing_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_mailing_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
