file(REMOVE_RECURSE
  "libzmail_net.a"
)
