// Email message model: SMTP envelope plus RFC-822-ish headers and body.
//
// Zmail rides on ordinary mail (Section 1.3: "Zmail can be implemented on
// top of the existing SMTP email protocol.  Zmail requires no change to
// SMTP."), so the message model carries optional Zmail annotations as plain
// `X-Zmail-*` headers — non-compliant software simply ignores them.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/bytes.hpp"
#include "net/address.hpp"

namespace zmail::net {

// Email categories used by workload generators and filter baselines.  The
// category is ground truth for measuring filter errors; it never influences
// protocol behaviour (the paper: "Zmail requires no definition of what is
// and is not spam").
enum class MailClass : std::uint8_t {
  kLegitimate = 0,
  kSpam,
  kNewsletter,   // solicited bulk (the classic false-positive victim)
  kMailingList,
  kAcknowledgment,  // Zmail mailing-list e-penny return (Section 5)
  kVirus,
};

std::string_view mail_class_name(MailClass c) noexcept;

struct EmailMessage {
  EmailAddress from;               // envelope sender (MAIL FROM)
  std::vector<EmailAddress> to;    // envelope recipients (RCPT TO)
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // Simulation ground truth; carried out-of-band, not on the wire.
  MailClass truth = MailClass::kLegitimate;

  // Causal trace id (zmail::trace), minted at send_email when tracing is
  // on; 0 otherwise.  Serialized as an optional tail that exists only when
  // nonzero, so untraced runs produce byte-identical wires.
  std::uint64_t trace_id = 0;

  // Header access (first match; header names compare case-insensitively).
  std::optional<std::string> header(std::string_view name) const;
  void set_header(std::string_view name, std::string_view value);

  std::string subject() const { return header("Subject").value_or(""); }

  // Approximate on-the-wire size in bytes (envelope + headers + body).
  std::size_t wire_size() const noexcept;

  // RFC-822-style text: headers, blank line, dot-stuffed body NOT applied
  // (dot-stuffing happens in the SMTP layer).
  std::string to_rfc822() const;

  // Binary serialization for channel payloads.
  crypto::Bytes serialize() const;
  static std::optional<EmailMessage> deserialize(const crypto::Bytes& wire);
};

// Builds a plain message with standard headers filled in.
EmailMessage make_email(const EmailAddress& from, const EmailAddress& to,
                        std::string subject, std::string body,
                        MailClass truth = MailClass::kLegitimate);

}  // namespace zmail::net
