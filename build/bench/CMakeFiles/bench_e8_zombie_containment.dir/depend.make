# Empty dependencies file for bench_e8_zombie_containment.
# This may be replaced when dependencies are built.
