# Empty dependencies file for zmail_econ.
# This may be replaced when dependencies are built.
