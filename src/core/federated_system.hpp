// FederatedZmailSystem — the timed, end-to-end rendition of the Section 5
// collaborating-banks extension.
//
// Like ZmailSystem, but the central bank is replaced by a BankFederation
// whose k banks run on separate network hosts: each ISP talks (buy/sell/
// snapshot) only to its home bank over the latency-modelled network, and
// the banks' column exchange is accounted as real inter-host traffic.
// All ISPs are compliant in this facade — the mixed-deployment machinery
// lives in ZmailSystem; this one isolates the federation topology.
#pragma once

#include <memory>
#include <vector>

#include "core/federation.hpp"
#include "core/isp.hpp"
#include "core/system.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace zmail::core {

class FederatedZmailSystem {
 public:
  FederatedZmailSystem(ZmailParams params, std::size_t n_banks,
                       std::uint64_t seed = 42);

  SendOutcome send_email(const net::EmailAddress& from,
                         const net::EmailAddress& to, std::string subject,
                         std::string body);

  bool buy_epennies(const net::EmailAddress& user, EPenny n);
  void enable_bank_trading(sim::Duration poll = 5 * sim::kMinute);
  void start_snapshot();
  void run_for(sim::Duration d);
  sim::SimTime now() const { return sim_.now(); }

  const ZmailParams& params() const noexcept { return params_; }
  Isp& isp(IspId i) { return *isps_.at(i.index()); }
  const Isp& isp(IspId i) const { return *isps_.at(i.index()); }
  BankFederation& federation() noexcept { return *fed_; }
  const BankFederation& federation() const noexcept { return *fed_; }
  net::Network& network() noexcept { return net_; }
  sim::Simulator& simulator() noexcept { return sim_; }

  // Network bytes that arrived at bank hosts (ISP->bank protocol traffic).
  std::uint64_t bank_host_bytes() const;

  EPenny total_epennies() const;
  bool conservation_holds() const;

 private:
  void on_isp_datagram(std::size_t isp_index, const net::Datagram& d);
  void on_bank_datagram(std::size_t bank_index, const net::Datagram& d);
  void pump_isp(std::size_t i);
  net::HostId bank_host(std::size_t bank_index) const {
    return params_.n_isps + bank_index;
  }

  ZmailParams params_;
  std::size_t n_banks_;
  Rng rng_;
  sim::Simulator sim_;
  net::Network net_;
  std::unique_ptr<BankFederation> fed_;
  std::vector<std::unique_ptr<Isp>> isps_;
  EPenny in_flight_paid_ = 0;
};

}  // namespace zmail::core
