// Microbenchmarks for the crypto substrate: SHA-256, HMAC, XTEA-CTR,
// RSA keygen/apply, NCR/DCR envelopes, NNC nonces, hashcash.
#include <benchmark/benchmark.h>

#include "bench_micro_common.hpp"

#include "crypto/hashcash.hpp"
#include "crypto/hmac.hpp"
#include "crypto/nonce.hpp"
#include "crypto/rsa.hpp"
#include "crypto/xtea.hpp"
#include "util/rng.hpp"

using namespace zmail;

namespace {

crypto::Bytes make_data(std::size_t n) {
  Rng rng(1);
  crypto::Bytes b(n);
  for (auto& x : b) x = static_cast<std::uint8_t>(rng.next_u64());
  return b;
}

void BM_Sha256(benchmark::State& state) {
  const crypto::Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) benchmark::DoNotOptimize(crypto::sha256(data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const crypto::Bytes key = make_data(32);
  const crypto::Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::hmac_sha256(key, data));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_XteaCtr(benchmark::State& state) {
  const crypto::XteaKey key =
      crypto::xtea_key_from_bytes(crypto::from_string("bench"));
  const crypto::Bytes data = make_data(static_cast<std::size_t>(state.range(0)));
  std::uint64_t nonce = 0;
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::xtea_ctr(data, key, ++nonce));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_XteaCtr)->Arg(64)->Arg(1024)->Arg(16384);

void BM_RsaKeygen(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::generate_keypair(rng));
}
BENCHMARK(BM_RsaKeygen);

void BM_RsaApply(benchmark::State& state) {
  Rng rng(8);
  const crypto::KeyPair keys = crypto::generate_keypair(rng);
  std::uint64_t m = 12345;
  for (auto _ : state) {
    m = crypto::rsa_apply(keys.pub, m % keys.pub.n);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_RsaApply);

void BM_EnvelopeSeal(benchmark::State& state) {
  Rng rng(9);
  const crypto::KeyPair keys = crypto::generate_keypair(rng);
  const crypto::Bytes plain = make_data(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::ncr(keys.pub, plain, rng));
}
BENCHMARK(BM_EnvelopeSeal)->Arg(32)->Arg(1024);

void BM_EnvelopeUnseal(benchmark::State& state) {
  Rng rng(10);
  const crypto::KeyPair keys = crypto::generate_keypair(rng);
  const crypto::Envelope env =
      crypto::ncr(keys.pub, make_data(static_cast<std::size_t>(state.range(0))), rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::dcr(keys.priv, env));
}
BENCHMARK(BM_EnvelopeUnseal)->Arg(32)->Arg(1024);

void BM_NonceNext(benchmark::State& state) {
  crypto::NonceGenerator gen(42);
  for (auto _ : state) benchmark::DoNotOptimize(gen.next());
}
BENCHMARK(BM_NonceNext);

void BM_HashcashSolve(benchmark::State& state) {
  std::uint64_t start = 0;
  for (auto _ : state) {
    const crypto::PowStamp stamp = crypto::pow_solve(
        "victim@isp.example", static_cast<int>(state.range(0)), start);
    start = stamp.counter + 1;
    benchmark::DoNotOptimize(stamp);
  }
}
BENCHMARK(BM_HashcashSolve)->Arg(8)->Arg(12)->Arg(16);

void BM_HashcashVerify(benchmark::State& state) {
  const crypto::PowStamp stamp = crypto::pow_solve("victim@isp.example", 12);
  for (auto _ : state)
    benchmark::DoNotOptimize(crypto::pow_verify(stamp));
}
BENCHMARK(BM_HashcashVerify);

}  // namespace

int main(int argc, char** argv) {
  zmail::bench::Bench harness("micro_crypto", argc, argv);
  return zmail::bench::run_micro(harness, argc, argv);
}
