file(REMOVE_RECURSE
  "libzmail_baselines.a"
)
