#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

namespace zmail::crypto {
namespace {

TEST(Sha256, EmptyStringVector) {
  EXPECT_EQ(digest_hex(sha256(std::string_view(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, AbcVector) {
  EXPECT_EQ(digest_hex(sha256(std::string_view("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockVector) {
  EXPECT_EQ(
      digest_hex(sha256(std::string_view(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalEqualsOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(std::string_view(msg).substr(0, split));
    h.update(std::string_view(msg).substr(split));
    EXPECT_EQ(h.finish(), sha256(std::string_view(msg)));
  }
}

TEST(Sha256, ExactBlockBoundaryLengths) {
  // 55/56/63/64/65 bytes straddle the padding edge cases.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 128u}) {
    const std::string a(len, 'x');
    Sha256 h;
    for (char c : a) {
      const auto byte = static_cast<std::uint8_t>(c);
      h.update(&byte, 1);
    }
    EXPECT_EQ(h.finish(), sha256(std::string_view(a))) << "len=" << len;
  }
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(sha256(std::string_view("a")), sha256(std::string_view("b")));
  EXPECT_NE(sha256(std::string_view("")), sha256(std::string_view("\0", 1)));
}

TEST(LeadingZeroBits, CountsCorrectly) {
  Digest d{};
  d.fill(0);
  EXPECT_EQ(leading_zero_bits(d), 256);
  d[0] = 0x80;
  EXPECT_EQ(leading_zero_bits(d), 0);
  d[0] = 0x01;
  EXPECT_EQ(leading_zero_bits(d), 7);
  d[0] = 0x00;
  d[1] = 0x10;
  EXPECT_EQ(leading_zero_bits(d), 11);
}

TEST(DigestHex, RoundTripsThroughBytes) {
  const Digest d = sha256(std::string_view("roundtrip"));
  const std::string hex = digest_hex(d);
  EXPECT_EQ(hex.size(), 64u);
  const Bytes back = from_hex(hex);
  ASSERT_EQ(back.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) EXPECT_EQ(back[i], d[i]);
}

}  // namespace
}  // namespace zmail::crypto
