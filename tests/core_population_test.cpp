// Columnar user-state core: UserId semantics, Population column/arena
// behavior, and the two ISP snapshot renditions agreeing with each other
// (v1 row blob <-> v2 columnar sections, including the v1 read-compat
// path used for pre-columnar snapshots on disk).
#include "core/population.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "core/bank.hpp"
#include "core/isp.hpp"
#include "store/snapshot.hpp"

namespace zmail::core {
namespace {

// --- UserId ----------------------------------------------------------------

TEST(UserIdTest, ImplicitFromIndexExplicitBackOut) {
  const UserId u = 7;  // implicit, like IspId
  EXPECT_EQ(u.slot(), 7u);
  EXPECT_TRUE(u.valid());
  EXPECT_EQ(u, UserId(7));
  EXPECT_NE(u, UserId(8));
  EXPECT_LT(UserId(3), UserId(4));
}

TEST(UserIdTest, InvalidSentinelMatchesLegacyNoUser) {
  EXPECT_FALSE(kInvalidUser.valid());
  // The historical kNoUser was size_t(-1); it must truncate to the same
  // sentinel so old call sites keep meaning "no user".
  EXPECT_EQ(UserId(static_cast<std::size_t>(-1)), kInvalidUser);
}

TEST(UserIdTest, WireEncodingRoundTripsAndPreservesLegacyBytes) {
  EXPECT_EQ(user_to_wire(UserId(42)), 42u);
  EXPECT_EQ(user_to_wire(kInvalidUser), ~std::uint64_t{0});
  EXPECT_EQ(user_from_wire(42), UserId(42));
  EXPECT_EQ(user_from_wire(~std::uint64_t{0}), kInvalidUser);
  // Anything at or past the sentinel slot reads back as "no user".
  EXPECT_EQ(user_from_wire(0xFFFFFFFFull), kInvalidUser);
}

// --- Population ------------------------------------------------------------

TEST(PopulationTest, ResetInitializesEveryColumn) {
  Population p;
  p.reset(3, Money::from_dollars(5.0), 10, 4);
  ASSERT_EQ(p.size(), 3u);
  p.for_each_active([](UserId, ConstUserRef u) {
    EXPECT_EQ(u.account, Money::from_dollars(5.0));
    EXPECT_EQ(u.balance, 10);
    EXPECT_EQ(u.limit, 4);
    EXPECT_EQ(u.sent, 0);
    EXPECT_EQ(u.blocked_today, 0);
    EXPECT_EQ(u.warnings, 0);
    EXPECT_EQ(u.quarantined, 0);
    EXPECT_EQ(u.lifetime_sent, 0);
  });
}

TEST(PopulationTest, ProxyWritesLandInColumns) {
  Population p;
  p.reset(4, Money::zero(), 10, 5);
  p.at(2).balance -= 3;
  p.at(2).sent += 1;
  p.at(2).blocked_today = true;
  EXPECT_EQ(p.balances()[2], 7);
  EXPECT_EQ(p.sent_today()[2], 1);
  EXPECT_EQ(p.blocked_today()[2], 1);
  EXPECT_EQ(p.balances()[1], 10);  // neighbors untouched
}

TEST(PopulationTest, ResetDayClearsOnlyTheDayArena) {
  Population p;
  p.reset(5, Money::zero(), 10, 5);
  p.at(1).sent = 4;
  p.at(1).blocked_today = true;
  p.at(1).warnings = 2;  // persistent: survives the day boundary
  p.at(1).balance = 6;
  p.reset_day();
  EXPECT_EQ(p.at(UserId(1)).sent, 0);
  EXPECT_EQ(p.at(UserId(1)).blocked_today, 0);
  EXPECT_EQ(p.at(UserId(1)).warnings, 2);
  EXPECT_EQ(p.at(UserId(1)).balance, 6);
}

TEST(PopulationTest, PolicySideTableIsSparseAndOrdered) {
  Population p;
  p.reset(8, Money::zero(), 10, 5);
  EXPECT_EQ(p.policy_override(UserId(3)), std::nullopt);
  EXPECT_EQ(p.policy_or(UserId(3), NonCompliantPolicy::kAccept),
            NonCompliantPolicy::kAccept);
  p.set_policy_override(5, NonCompliantPolicy::kDiscard);
  p.set_policy_override(2, NonCompliantPolicy::kSegregate);
  EXPECT_EQ(p.policy_or(UserId(5), NonCompliantPolicy::kAccept),
            NonCompliantPolicy::kDiscard);
  ASSERT_EQ(p.policy_overrides().size(), 2u);
  EXPECT_EQ(p.policy_overrides().begin()->first, 2u);  // slot-ordered
  p.set_policy_override(5, std::nullopt);
  EXPECT_EQ(p.policy_override(UserId(5)), std::nullopt);
  // reset() drops the table.
  p.reset(8, Money::zero(), 10, 5);
  EXPECT_TRUE(p.policy_overrides().empty());
}

TEST(PopulationTest, ColumnSpansAndRawBytes) {
  Population p;
  p.reset(4, Money::from_epennies(2), 9, 5);
  EXPECT_EQ(p.column_span<EPenny>(Population::Column::kBalance)[0], 9);
  EXPECT_EQ(p.column_span<Money>(Population::Column::kAccount)[3],
            Money::from_epennies(2));
  EXPECT_EQ(p.column_span<std::uint8_t>(Population::Column::kQuarantined)[0],
            0);
  EXPECT_EQ(p.column_bytes(Population::Column::kBalance), 4 * 8u);
  EXPECT_EQ(p.column_bytes(Population::Column::kBlockedToday), 4u);

  // Raw round trip of one column through load_column.
  p.at(1).balance = 123;
  Population q;
  q.reset(4, Money::zero(), 0, 0);
  ASSERT_TRUE(q.load_column(Population::Column::kBalance,
                            p.column_data(Population::Column::kBalance),
                            p.column_bytes(Population::Column::kBalance)));
  EXPECT_EQ(q.balances()[1], 123);
  // Wrong length refused.
  EXPECT_FALSE(q.load_column(Population::Column::kBalance,
                             p.column_data(Population::Column::kBalance), 7));
}

// --- ISP snapshot renditions ------------------------------------------------

ZmailParams small_params() {
  ZmailParams p;
  p.n_isps = 3;
  p.users_per_isp = 4;
  p.default_daily_limit = 5;
  p.initial_user_balance = 10;
  p.initial_avail = 100;
  p.minavail = 50;
  p.maxavail = 200;
  return p;
}

net::EmailMessage mail(std::size_t fi, std::size_t fu, std::size_t ti,
                       std::size_t tu) {
  return net::make_email(net::make_user_address(fi, fu),
                         net::make_user_address(ti, tu), "s", "b");
}

class PopulationSnapshotTest : public ::testing::Test {
 protected:
  PopulationSnapshotTest() : keys_(crypto::generate_keypair(key_rng_)) {}

  // Drives the ISP through enough traffic to dirty every kind of state:
  // balances, sent/limit, lifetime counters, a policy override, credit.
  void dirty(Isp& isp) {
    isp.user_send(0, 0, 1, mail(0, 0, 0, 1));  // local paid send
    isp.user_send(1, 1, 2, mail(0, 1, 1, 2));  // remote paid send
    isp.user_buy(2, 3);
    isp.users().set_policy_override(3, NonCompliantPolicy::kDiscard);
    isp.user(3).warnings = 2;
    (void)isp.take_outbox();
  }

  Rng key_rng_{101};
  crypto::KeyPair keys_;
  ZmailParams params_ = small_params();
};

TEST_F(PopulationSnapshotTest, ColumnarSectionsRoundTripExactly) {
  Isp a(0, params_, keys_.pub, 42);
  dirty(a);

  std::vector<store::SnapshotSection> sections;
  a.serialize_sections(sections);
  ASSERT_EQ(sections.size(), 1 + Population::kColumnCount);

  std::vector<Isp::RawSection> raw;
  for (const auto& s : sections)
    raw.push_back(Isp::RawSection{s.id, s.payload.data(), s.payload.size()});

  Isp b(0, params_, keys_.pub, 7);  // different seed: fully overwritten
  ASSERT_TRUE(b.restore_columnar(raw));
  // The v1 blob is a complete, canonical rendition of ISP state; byte
  // equality proves the columnar round trip restored everything.
  EXPECT_EQ(b.serialize_state(), a.serialize_state());
  EXPECT_EQ(b.users().policy_override(UserId(3)),
            NonCompliantPolicy::kDiscard);
}

TEST_F(PopulationSnapshotTest, MissingColumnSectionIsRejected) {
  Isp a(0, params_, keys_.pub, 42);
  dirty(a);
  std::vector<store::SnapshotSection> sections;
  a.serialize_sections(sections);
  sections.pop_back();  // drop the last column
  std::vector<Isp::RawSection> raw;
  for (const auto& s : sections)
    raw.push_back(Isp::RawSection{s.id, s.payload.data(), s.payload.size()});
  Isp b(0, params_, keys_.pub, 7);
  EXPECT_FALSE(b.restore_columnar(raw));
}

TEST_F(PopulationSnapshotTest, V1SnapshotsStillRestore) {
  Isp a(0, params_, keys_.pub, 42);
  dirty(a);

  // A pre-columnar snapshot: v1 container, single state-blob section.
  store::SnapshotData snap;
  snap.sections.push_back(
      store::SnapshotSection{store::kStateSection, a.serialize_state()});

  Isp b(0, params_, keys_.pub, 7);
  ASSERT_TRUE(b.restore_snapshot(snap));
  EXPECT_EQ(b.serialize_state(), a.serialize_state());
}

TEST_F(PopulationSnapshotTest, V2SnapshotRestoresViaMmapView) {
  Isp a(0, params_, keys_.pub, 42);
  dirty(a);

  store::SnapshotData snap;
  snap.meta.version = store::kSnapshotVersionColumnar;
  snap.meta.features = store::kFeatureColumnarUserState;
  a.serialize_sections(snap.sections);
  const std::string path = "core_population_test.zsnap";
  std::string err;
  ASSERT_EQ(store::write_snapshot_file(path, snap, true, &err),
            store::StoreStatus::kOk)
      << err;

  store::SnapshotFileView view;
  ASSERT_EQ(view.open(path), store::StoreStatus::kOk);
  Isp b(0, params_, keys_.pub, 7);
  ASSERT_TRUE(b.restore_snapshot(view));
  EXPECT_EQ(b.serialize_state(), a.serialize_state());
  view.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace zmail::core
