// Virtual time for the discrete-event simulator.
//
// Time is measured in integral microseconds so that scheduling is exact and
// deterministic; helpers construct the durations the paper mentions
// (10-minute snapshot quiesce, daily `sent` resets, monthly billing).
#pragma once

#include <cstdint>
#include <string>

namespace zmail::sim {

// Microseconds since simulation start.
using SimTime = std::int64_t;
using Duration = std::int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1'000 * kMicrosecond;
constexpr Duration kSecond = 1'000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;
constexpr Duration kDay = 24 * kHour;

constexpr double to_seconds(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr Duration from_seconds(double s) noexcept {
  return static_cast<Duration>(s * static_cast<double>(kSecond));
}

// "3d 04:05:06.123" style rendering for example programs.
std::string format_time(SimTime t);

}  // namespace zmail::sim
