file(REMOVE_RECURSE
  "CMakeFiles/core_scenario_test.dir/core_scenario_test.cpp.o"
  "CMakeFiles/core_scenario_test.dir/core_scenario_test.cpp.o.d"
  "core_scenario_test"
  "core_scenario_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_scenario_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
