// Typed wire messages of the Zmail protocol (Section 4).
//
// Bank-bound and bank-originated messages travel inside NCR envelopes; email
// travels as plain SMTP.  Each struct has a flat big-endian serialization so
// the same bytes flow through both the AP channels and the timed network.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/bytes.hpp"
#include "crypto/nonce.hpp"
#include "crypto/rsa.hpp"
#include "net/msg_type.hpp"
#include "util/money.hpp"
#include "util/rng.hpp"

namespace zmail::core {

// Message type tags used on channels / the datagram network: pre-interned
// ids (see net/msg_type.hpp), so per-message dispatch is an integer compare.
using net::kMsgEmail;
using net::kMsgBuy;
using net::kMsgBuyReply;
using net::kMsgSell;
using net::kMsgSellReply;
using net::kMsgRequest;
using net::kMsgReply;

// --- Plaintext payloads (encrypted before transmission) ---

// buy(NCR(B_b, buyvalue | ns1))
struct BuyRequest {
  EPenny buyvalue = 0;
  crypto::Nonce nonce;

  // Exact wire size, so serialize() reserves once.
  std::size_t serialized_size() const noexcept;
  crypto::Bytes serialize() const;
  static std::optional<BuyRequest> deserialize(const crypto::Bytes& b);
};

// buyreply(NCR(R_b, nr | accepted))
struct BuyReply {
  crypto::Nonce nonce;
  bool accepted = false;

  // Exact wire size, so serialize() reserves once.
  std::size_t serialized_size() const noexcept;
  crypto::Bytes serialize() const;
  static std::optional<BuyReply> deserialize(const crypto::Bytes& b);
};

// sell(NCR(B_b, sellvalue | ns2))
struct SellRequest {
  EPenny sellvalue = 0;
  crypto::Nonce nonce;

  // Exact wire size, so serialize() reserves once.
  std::size_t serialized_size() const noexcept;
  crypto::Bytes serialize() const;
  static std::optional<SellRequest> deserialize(const crypto::Bytes& b);
};

// sellreply(NCR(R_b, nr))
struct SellReply {
  crypto::Nonce nonce;

  // Exact wire size, so serialize() reserves once.
  std::size_t serialized_size() const noexcept;
  crypto::Bytes serialize() const;
  static std::optional<SellReply> deserialize(const crypto::Bytes& b);
};

// request(NCR(R_b, seq))
struct SnapshotRequest {
  std::uint64_t seq = 0;

  // Exact wire size, so serialize() reserves once.
  std::size_t serialized_size() const noexcept;
  crypto::Bytes serialize() const;
  static std::optional<SnapshotRequest> deserialize(const crypto::Bytes& b);
};

// reply(NCR(B_b, credit)) — the ISP's whole credit array.
struct CreditReport {
  std::uint64_t seq = 0;
  std::vector<EPenny> credit;

  // Exact wire size, so serialize() reserves once.
  std::size_t serialized_size() const noexcept;
  crypto::Bytes serialize() const;
  static std::optional<CreditReport> deserialize(const crypto::Bytes& b);
};

// --- Envelope helpers ---

// Encrypts a payload under `key` and returns the wire bytes.
crypto::Bytes seal(const crypto::RsaKey& key, const crypto::Bytes& plaintext,
                   Rng& rng);

// Decrypts wire bytes with the complementary key half; nullopt on any
// malformation or MAC failure.
std::optional<crypto::Bytes> unseal(const crypto::RsaKey& key,
                                    const crypto::Bytes& wire);

// Scratch-buffer variants for steady-state senders/receivers (the ISP and
// bank hold one Envelope + one Bytes per party): the envelope's ciphertext
// buffer and the output buffer are reused across messages, so per-message
// encryption stops reallocating.  seal_into produces byte-identical wire
// output to seal() for the same RNG state.
void seal_into(const crypto::RsaKey& key, const crypto::Bytes& plaintext,
               Rng& rng, crypto::Envelope& scratch, crypto::Bytes& wire);
bool unseal_into(const crypto::RsaKey& key, const crypto::Bytes& wire,
                 crypto::Envelope& scratch, crypto::Bytes& plain_out);

}  // namespace zmail::core
