// Incremental deployment (paper Section 5): Zmail bootstraps with two
// compliant ISPs; compliant users see almost no spam, word spreads, users
// migrate, ISPs flip, and adoption follows an S-curve driven by positive
// feedback.
//
//   ./incremental_deployment
#include <cstdio>

#include "core/system.hpp"
#include "econ/adoption.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

using namespace zmail;

int main() {
  // --- Macro view: adoption dynamics over 50 ISPs ---------------------------
  econ::AdoptionParams ap;
  ap.n_isps = 50;
  ap.initial_compliant = 2;  // the paper's bootstrap
  ap.steps = 120;
  Rng rng(2005);
  const auto trace = econ::simulate_adoption(ap, rng);

  Table curve({"step", "compliant ISPs", "compliant user share",
               "spam/day (compliant)", "spam/day (non-compliant)"});
  for (std::size_t s = 0; s < trace.size(); s += 10) {
    const auto& row = trace[s];
    curve.add_row({Table::num(std::uint64_t{row.step}),
                   Table::num(std::uint64_t{row.compliant_isps}),
                   Table::pct(row.compliant_user_share),
                   Table::num(row.avg_spam_compliant, 2),
                   Table::num(row.avg_spam_noncompliant, 2)});
  }
  curve.print("adoption from 2 compliant ISPs (one step ~ one week)");
  std::printf("\n50%% of users compliant by step %zu; 90%% by step %zu\n",
              econ::steps_to_share(trace, 0.5),
              econ::steps_to_share(trace, 0.9));

  // --- Micro view: a mixed 4-ISP world, end to end --------------------------
  core::ZmailParams params;
  params.n_isps = 4;
  params.users_per_isp = 20;
  params.compliant = {true, true, false, false};
  params.noncompliant_policy = core::NonCompliantPolicy::kSegregate;
  params.record_inboxes = false;
  core::ZmailSystem sys(params, 3);

  workload::CorpusGenerator corpus(workload::CorpusParams{}, Rng(4));
  // A legacy-world spammer blasts everyone; normal users chat politely.
  workload::TrafficGenerator traffic(sys, workload::TrafficParams{}, corpus,
                                     Rng(5));
  traffic.build_contacts();
  traffic.burst(400);
  workload::SpamCampaignParams cp;
  cp.spammer_isp = 2;  // non-compliant home
  cp.messages = 600;
  Rng crng(6);
  workload::run_spam_campaign(sys, cp, corpus, crng);
  sys.run_for(2 * sim::kHour);

  Table mixed({"ISP", "kind", "mail delivered", "spam segregated",
               "spam delivered to inbox"});
  for (std::size_t i = 0; i < 4; ++i) {
    if (sys.is_compliant(i)) {
      const auto& m = sys.isp(i).metrics();
      mixed.add_row({net::isp_domain(i), "compliant",
                     Table::num(std::uint64_t{m.emails_delivered}),
                     Table::num(std::uint64_t{m.emails_segregated}), "0"});
    } else {
      const auto& s = sys.legacy_stats(i);
      mixed.add_row({net::isp_domain(i), "legacy",
                     Table::num(std::uint64_t{s.emails_received}), "-",
                     Table::num(std::uint64_t{s.emails_received_spam})});
    }
  }
  mixed.print("mixed world: spam lands in legacy inboxes, compliant users "
              "see it segregated");
  std::printf("\nCompliant users' better experience is the adoption engine "
              "the paper describes.\n");
  return 0;
}
