#include "crypto/xtea.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace zmail::crypto {
namespace {

TEST(Xtea, BlockRoundTrip) {
  const XteaKey key{0x01234567, 0x89ABCDEF, 0xFEDCBA98, 0x76543210};
  for (std::uint64_t block :
       {0ULL, 1ULL, 0xDEADBEEFCAFEBABEULL, ~0ULL}) {
    EXPECT_EQ(xtea_decrypt_block(xtea_encrypt_block(block, key), key), block);
  }
}

TEST(Xtea, EncryptionActuallyChangesBlock) {
  const XteaKey key{1, 2, 3, 4};
  EXPECT_NE(xtea_encrypt_block(0, key), 0u);
  EXPECT_NE(xtea_encrypt_block(42, key), 42u);
}

TEST(Xtea, DifferentKeysDifferentCiphertext) {
  const XteaKey k1{1, 2, 3, 4}, k2{1, 2, 3, 5};
  EXPECT_NE(xtea_encrypt_block(777, k1), xtea_encrypt_block(777, k2));
}

TEST(XteaCtr, RoundTripVariousLengths) {
  const XteaKey key = xtea_key_from_bytes(from_string("secret"));
  zmail::Rng rng(3);
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 64u, 1000u}) {
    Bytes plain(len);
    for (auto& b : plain) b = static_cast<std::uint8_t>(rng.next_u64());
    const Bytes ct = xtea_ctr(plain, key, 12345);
    EXPECT_EQ(ct.size(), plain.size());
    EXPECT_EQ(xtea_ctr(ct, key, 12345), plain) << "len=" << len;
  }
}

TEST(XteaCtr, DifferentNoncesDifferentStreams) {
  const XteaKey key = xtea_key_from_bytes(from_string("k"));
  const Bytes plain(64, 0x00);
  EXPECT_NE(xtea_ctr(plain, key, 1), xtea_ctr(plain, key, 2));
}

TEST(XteaCtr, NonTrivialCiphertext) {
  const XteaKey key = xtea_key_from_bytes(from_string("k"));
  const Bytes plain(32, 0xAA);
  const Bytes ct = xtea_ctr(plain, key, 9);
  EXPECT_NE(ct, plain);
  // Keystream bytes should not all be equal.
  bool varied = false;
  for (std::size_t i = 1; i < ct.size(); ++i)
    if (ct[i] != ct[0]) varied = true;
  EXPECT_TRUE(varied);
}

TEST(XteaKeyDerivation, DeterministicAndSpread) {
  const XteaKey a = xtea_key_from_bytes(from_string("material"));
  const XteaKey b = xtea_key_from_bytes(from_string("material"));
  const XteaKey c = xtea_key_from_bytes(from_string("material2"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace zmail::crypto
