file(REMOVE_RECURSE
  "libzmail_util.a"
)
