// Collaborating-banks extension (paper Section 5, "Bank Setup").
//
// "In fact, the role of the bank in the Zmail protocol can be implemented
//  as a set of distributed banks or a hierarchy of banks.  It is fairly
//  straightforward to extend the Zmail protocol to incorporate multiple
//  collaborating banks."
//
// Design (the paper leaves it open; we make the natural choice concrete):
//   - every compliant ISP has one *home bank* (round-robin assignment);
//     its real-money account and its buy/sell traffic live there;
//   - a federation snapshot round: each bank sends requests to its member
//     ISPs and gathers their credit reports;
//   - banks then exchange the gathered report columns all-to-all (counted
//     as inter-bank messages/bytes — the cost the E12 federation bench
//     measures);
//   - pair (i, j) is verified by the home bank of min(i, j); a consistent
//     pair settles.  Settlement between ISPs of different banks moves
//     money through inter-bank clearing accounts, netted per bank pair per
//     round (bulk, like everything else in Zmail).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/bank.hpp"  // CreditViolation
#include "core/config.hpp"
#include "core/messages.hpp"
#include "crypto/rsa.hpp"

namespace zmail::core {

struct FederationMetrics {
  std::uint64_t rounds_completed = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t reports_received = 0;
  std::uint64_t interbank_messages = 0;
  std::uint64_t interbank_bytes = 0;
  std::uint64_t settlements_intra_bank = 0;
  std::uint64_t settlements_cross_bank = 0;
  std::uint64_t clearing_transfers = 0;  // netted bank-to-bank movements
  std::uint64_t violations_found = 0;
  EPenny epennies_minted = 0;
  EPenny epennies_burned = 0;
};

class BankFederation {
 public:
  BankFederation(const ZmailParams& params, std::size_t n_banks,
                 std::uint64_t seed);

  std::size_t bank_count() const noexcept { return n_banks_; }
  // Home-bank assignment (round-robin over compliant ISP indices).
  std::size_t home_bank(std::size_t isp) const;
  // Key the ISP seals its traffic with (its home bank's public key).
  const crypto::RsaKey& public_key_for(std::size_t isp) const;
  const crypto::KeyPair& bank_keys(std::size_t bank) const {
    return keys_.at(bank);
  }

  // --- Section 4.3 trade, routed to the home bank -------------------------
  crypto::Bytes on_buy(std::size_t isp, const crypto::Bytes& wire);
  crypto::Bytes on_sell(std::size_t isp, const crypto::Bytes& wire);

  // --- Federated snapshot round --------------------------------------------
  // Emits one sealed request per compliant ISP (from its home bank).
  std::vector<std::pair<std::size_t, crypto::Bytes>> start_snapshot();
  void on_reply(std::size_t isp, const crypto::Bytes& wire);
  bool round_open() const noexcept { return !canrequest_; }
  std::uint64_t seq() const noexcept { return seq_; }

  const std::vector<CreditViolation>& last_violations() const noexcept {
    return last_violations_;
  }

  // --- Accounts --------------------------------------------------------------
  Money isp_account(std::size_t isp) const;
  void set_isp_account(std::size_t isp, Money v);
  // Net clearing position of bank b toward the rest of the federation
  // (positive: the federation owes b).
  Money clearing_position(std::size_t bank) const {
    return clearing_.at(bank);
  }

  const FederationMetrics& metrics() const noexcept { return metrics_; }

 private:
  void verify_round();

  const ZmailParams& params_;
  std::size_t n_banks_;
  std::vector<crypto::KeyPair> keys_;
  Rng rng_;

  std::vector<Money> accounts_;       // per ISP, held at its home bank
  std::vector<Money> clearing_;       // per bank, netted federation position
  std::vector<std::vector<EPenny>> verify_;
  std::vector<bool> reported_;
  std::uint64_t seq_ = 0;
  std::size_t outstanding_ = 0;
  bool canrequest_ = true;

  std::vector<CreditViolation> last_violations_;
  FederationMetrics metrics_;
};

}  // namespace zmail::core
