// bench_compare: diff two BENCH_<name>.json files produced by the bench
// harness (bench/bench_common.hpp).
//
//   bench_compare BASELINE.json CURRENT.json
//
// Prints the wall-clock speedup (or regression) of CURRENT relative to
// BASELINE plus the shape-check failure counts of both runs.  The exit code
// only reflects *usability* of the inputs (2 = unreadable/invalid JSON) —
// perf drift itself never fails the process, so CI can run this as a
// report-only step on noisy shared runners.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "util/json.hpp"

namespace {

struct BenchRun {
  std::string bench;
  double wall_seconds = -1.0;
  std::int64_t failures = -1;
};

bool load_run(const char* path, BenchRun& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path);
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string err;
  const auto v = zmail::json::parse(buf.str(), &err);
  if (!v) {
    std::fprintf(stderr, "bench_compare: %s: %s\n", path, err.c_str());
    return false;
  }
  if (const auto* b = v->find("bench")) out.bench = b->as_string();
  const auto* wall = v->find("wall_seconds");
  if (!wall || !wall->is_number()) {
    std::fprintf(stderr, "bench_compare: %s has no wall_seconds\n", path);
    return false;
  }
  out.wall_seconds = wall->as_double();
  if (const auto* f = v->find("failures"); f && f->is_number())
    out.failures = f->as_int64();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s BASELINE.json CURRENT.json\n",
                 argc > 0 ? argv[0] : "bench_compare");
    return 2;
  }
  BenchRun base, cur;
  if (!load_run(argv[1], base) || !load_run(argv[2], cur)) return 2;

  if (!base.bench.empty() && !cur.bench.empty() && base.bench != cur.bench)
    std::printf("warning: comparing different benches ('%s' vs '%s')\n",
                base.bench.c_str(), cur.bench.c_str());

  const double speedup =
      cur.wall_seconds > 0.0 ? base.wall_seconds / cur.wall_seconds : 0.0;
  std::printf("bench     %s\n", cur.bench.empty() ? "?" : cur.bench.c_str());
  std::printf("baseline  %.6fs  (%s)\n", base.wall_seconds, argv[1]);
  std::printf("current   %.6fs  (%s)\n", cur.wall_seconds, argv[2]);
  if (speedup >= 1.0)
    std::printf("result    %.2fx speedup\n", speedup);
  else if (speedup > 0.0)
    std::printf("result    %.2fx regression\n", 1.0 / speedup);
  if (base.failures >= 0 || cur.failures >= 0)
    std::printf("failures  baseline=%lld current=%lld\n",
                static_cast<long long>(base.failures),
                static_cast<long long>(cur.failures));
  return 0;
}
