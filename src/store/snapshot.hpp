// Versioned binary snapshot format.
//
// A snapshot is a full serialization of one party's settlement state at a
// quiesce boundary, paired with the WAL position it covers: recovery loads
// the snapshot, then replays WAL records with lsn >= meta.next_lsn.  (The
// checkpointer truncates the WAL behind each snapshot, so in practice the
// whole surviving log replays.)
//
// On-disk grammar (all integers big-endian, matching the wire format):
//
//   snapshot := header section*
//   header   := "ZSNP" version:u32 features:u32 next_lsn:u64
//               sim_time_us:u64 section_count:u32 crc:u32
//               (36 bytes; crc is CRC32C over the first 32)
//   section  := id:u32 len:u64 payload:u8[len] crc:u32
//               (crc is CRC32C over payload)
//
// Versioning contract: `version` bumps on any incompatible layout change
// and readers reject unknown versions with StoreStatus::kUnknownVersion.
// `features` is a bitmask of *required* capabilities — a reader that does
// not recognize a set bit must refuse the file (kUnknownFeature) rather
// than silently ignore data it cannot interpret.  Feature bits are gated
// per version: v1 defines none, v2 defines kFeatureColumnarUserState.
// Both byte layouts are pinned by golden-file tests
// (tests/store_snapshot_test.cpp); changing one means adding v3, not
// editing it.
//
// v2 ("ZSNP" columnar) shares the container grammar with v1; only the
// section population differs.  An ISP checkpoint is one kIspScalarsSection
// (counts, pending protocol state, metrics, RNG) followed by eleven
// kUserColumnBase+i sections, each the raw little-endian bytes of one
// Population column.  SnapshotFileView maps such a file read-only and
// validates every CRC once at open, so restore is a handful of bulk
// copies straight out of the page cache instead of field-by-field
// deserialization.
//
// Writes are atomic: encode to `<path>.tmp`, fsync, rename over `path`, so
// a crash mid-checkpoint leaves the previous snapshot intact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/bytes.hpp"
#include "store/status.hpp"
#include "store/wal.hpp"

namespace zmail::store {

constexpr std::uint32_t kSnapshotVersion = 1;
// v2: columnar user-state sections (whole Population columns as raw
// little-endian payloads).  The bank still writes v1.
constexpr std::uint32_t kSnapshotVersionColumnar = 2;
constexpr std::uint32_t kMaxSnapshotVersion = kSnapshotVersionColumnar;

// Feature bits.  Introduced in v2; a v1 file with any bit set is invalid.
constexpr std::uint32_t kFeatureColumnarUserState = 1u << 0;
// Feature bits this build understands, by version.
constexpr std::uint32_t kSupportedFeatures = kFeatureColumnarUserState;
constexpr std::uint32_t supported_features_for(std::uint32_t version) {
  return version >= kSnapshotVersionColumnar ? kSupportedFeatures : 0;
}

// Section ids.  The id space leaves room for side tables (metrics,
// indexes) without a version bump — readers skip
// recognized-but-unneeded sections.
constexpr std::uint32_t kStateSection = 1;  // v1: the whole row blob
// v2 ISP sections: scalar tail + one section per Population column at
// kUserColumnBase + static_cast<u32>(Population::Column).
constexpr std::uint32_t kIspScalarsSection = 2;
constexpr std::uint32_t kUserColumnBase = 0x10;

struct SnapshotSection {
  std::uint32_t id = 0;
  crypto::Bytes payload;
};

struct SnapshotMeta {
  std::uint32_t version = kSnapshotVersion;
  std::uint32_t features = 0;
  Lsn next_lsn = 1;               // first WAL record NOT covered by this state
  std::uint64_t sim_time_us = 0;  // simulation clock at checkpoint
};

struct SnapshotData {
  SnapshotMeta meta;
  std::vector<SnapshotSection> sections;
};

// Pure (de)serialization — the fuzz and golden tests work on buffers.
crypto::Bytes encode_snapshot(const SnapshotData& snap);
StoreStatus decode_snapshot(const crypto::Bytes& file, SnapshotData& out);

// Atomic file write (temp + rename) / whole-file read.
StoreStatus write_snapshot_file(const std::string& path,
                                const SnapshotData& snap, bool fsync_data,
                                std::string* error = nullptr);
StoreStatus read_snapshot_file(const std::string& path, SnapshotData& out);

// Read-only mmap view of a snapshot file.  open() maps the file and
// validates the header and every section CRC once; sections() then point
// straight into the mapping, so consumers (Isp::restore_snapshot) can bulk
// copy column payloads without an intermediate deserialized SnapshotData.
// The view owns the mapping; section pointers are valid until close() or
// destruction.
class SnapshotFileView {
 public:
  struct SectionView {
    std::uint32_t id = 0;
    const std::uint8_t* data = nullptr;
    std::uint64_t size = 0;
  };

  SnapshotFileView() = default;
  ~SnapshotFileView() { close(); }
  SnapshotFileView(const SnapshotFileView&) = delete;
  SnapshotFileView& operator=(const SnapshotFileView&) = delete;

  StoreStatus open(const std::string& path);
  void close();

  const SnapshotMeta& meta() const noexcept { return meta_; }
  std::size_t file_size() const noexcept { return map_size_; }
  const std::vector<SectionView>& sections() const noexcept {
    return sections_;
  }
  // First section with this id, or nullptr.
  const SectionView* find(std::uint32_t id) const noexcept;

 private:
  SnapshotMeta meta_;
  std::vector<SectionView> sections_;
  const std::uint8_t* map_ = nullptr;
  std::size_t map_size_ = 0;
};

}  // namespace zmail::store
