#include "util/rng.hpp"

#include <cmath>

namespace zmail {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Rng pair_keyed_rng(std::uint64_t seed, std::uint64_t a, std::uint64_t b,
                   std::uint64_t k) noexcept {
  std::uint64_t st = seed ^ (0x9E3779B97F4A7C15ULL * (a + 1));
  std::uint64_t h = splitmix64(st);
  st ^= 0xBF58476D1CE4E5B9ULL * (b + 1);
  h ^= splitmix64(st);
  st ^= 0x94D049BB133111EBULL * (k + 1);
  h ^= splitmix64(st);
  return Rng(h);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  ZMAIL_ASSERT(bound > 0);
  // Lemire's multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  ZMAIL_ASSERT(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    // Knuth's algorithm: multiply uniforms until below e^-mean.
    const double l = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= next_double();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation with continuity correction for large means.
  const double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
}

double Rng::exponential(double lambda) noexcept {
  ZMAIL_ASSERT(lambda > 0.0);
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

std::uint64_t Rng::geometric(double p) noexcept {
  ZMAIL_ASSERT(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  double u = 0.0;
  do {
    u = next_double();
  } while (u <= 0.0);
  return static_cast<std::uint64_t>(std::log(u) / std::log(1.0 - p));
}

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  ZMAIL_ASSERT(n >= 1);
  // Rejection-inversion sampling (Hormann & Derflinger style, simplified).
  // For the modest n used in workloads this is fast and exact enough.
  const double t = (std::pow(static_cast<double>(n), 1.0 - s) - s) / (1.0 - s);
  for (;;) {
    const double u = next_double() * t;
    const double x =
        (u <= 1.0) ? u : std::pow(u * (1.0 - s) + s, 1.0 / (1.0 - s));
    auto k = static_cast<std::uint64_t>(x);
    if (k < 1) k = 1;
    if (k > n) k = n;
    const double ratio = std::pow(static_cast<double>(k), -s) /
                         std::pow(x < 1.0 ? 1.0 : x, -s);
    if (next_double() <= ratio) return k;
  }
}

std::size_t Rng::weighted_choice(const std::vector<double>& weights) noexcept {
  ZMAIL_ASSERT(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    ZMAIL_ASSERT(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) return next_below(weights.size());
  double x = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() noexcept {
  return Rng(next_u64() ^ 0x9E3779B97F4A7C15ULL);
}

}  // namespace zmail
