// XTEA block cipher (Needham & Wheeler) plus a CTR-mode stream.
//
// XTEA is small enough to implement exactly and fast enough for simulated
// mail volumes; CTR mode turns it into the symmetric layer of the hybrid
// NCR/DCR envelope.
#pragma once

#include <array>
#include <cstdint>

#include "crypto/bytes.hpp"

namespace zmail::crypto {

using XteaKey = std::array<std::uint32_t, 4>;

// One 64-bit block, 64 rounds (the standard 32 cycles).
std::uint64_t xtea_encrypt_block(std::uint64_t block,
                                 const XteaKey& key) noexcept;
std::uint64_t xtea_decrypt_block(std::uint64_t block,
                                 const XteaKey& key) noexcept;

// CTR mode: encryption and decryption are the same operation.
Bytes xtea_ctr(const Bytes& data, const XteaKey& key,
               std::uint64_t nonce) noexcept;

// Scratch-buffer variant: overwrites `out` (reusing its capacity), so
// steady-state envelope traffic stops reallocating.  `out` must not alias
// `data`.
void xtea_ctr_into(const Bytes& data, const XteaKey& key, std::uint64_t nonce,
                   Bytes& out) noexcept;

// Derive an XTEA key from arbitrary key material (first 16 bytes of SHA-256).
XteaKey xtea_key_from_bytes(const Bytes& material) noexcept;

}  // namespace zmail::crypto
