# Empty compiler generated dependencies file for bench_e9_mailing_list.
# This may be replaced when dependencies are built.
