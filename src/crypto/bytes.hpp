// Byte-buffer helpers shared across the crypto and protocol layers.
//
// Protocol messages are serialized into Bytes before encryption (the paper's
// NCR/DCR operate on opaque data items), so a tiny big-endian reader/writer
// pair is all the wire format needs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace zmail::crypto {

using Bytes = std::vector<std::uint8_t>;

// Big-endian primitive writers.
void put_u8(Bytes& b, std::uint8_t v);
void put_u32(Bytes& b, std::uint32_t v);
void put_u64(Bytes& b, std::uint64_t v);
void put_i64(Bytes& b, std::int64_t v);
// Length-prefixed (u32) byte string.
void put_bytes(Bytes& b, const Bytes& v);
void put_string(Bytes& b, std::string_view v);

// Sequential reader over a Bytes buffer.  Reads past the end abort (protocol
// messages in the simulation are never truncated unless a test does it on
// purpose, and those tests use `ok()`).
class ByteReader {
 public:
  explicit ByteReader(const Bytes& b) noexcept : data_(&b) {}

  bool ok() const noexcept { return !failed_; }
  bool at_end() const noexcept { return pos_ == data_->size(); }

  std::uint8_t get_u8() noexcept;
  std::uint32_t get_u32() noexcept;
  std::uint64_t get_u64() noexcept;
  std::int64_t get_i64() noexcept;
  Bytes get_bytes() noexcept;
  // Reads a length-prefixed byte string into `out`, reusing its capacity.
  void get_bytes_into(Bytes& out) noexcept;
  std::string get_string() noexcept;

 private:
  bool have(std::size_t n) noexcept;
  const Bytes* data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

std::string to_hex(const Bytes& b);
Bytes from_hex(std::string_view hex);
Bytes from_string(std::string_view s);

}  // namespace zmail::crypto
