// Microbenchmarks for the Abstract Protocol runtime: action dispatch and
// channel throughput under both scheduling policies.
#include <benchmark/benchmark.h>

#include "bench_micro_common.hpp"

#include "ap/scheduler.hpp"

using namespace zmail;

namespace {

class Producer : public ap::Process {
 public:
  explicit Producer(ap::ProcessId* peer) : peer_(peer) {
    add_action(
        "emit", [this] { return budget_ > 0; },
        [this] {
          --budget_;
          send(*peer_, "work");
        });
  }
  void refill(std::int64_t n) { budget_ = n; }

 private:
  ap::ProcessId* peer_;
  std::int64_t budget_ = 0;
};

class Consumer : public ap::Process {
 public:
  Consumer() {
    add_receive("work", [this](const ap::Message&) { ++consumed_; });
  }
  std::uint64_t consumed() const { return consumed_; }

 private:
  std::uint64_t consumed_ = 0;
};

void BM_ApPingPong(benchmark::State& state) {
  const auto policy = state.range(0) == 0 ? ap::Scheduler::Policy::kRoundRobin
                                          : ap::Scheduler::Policy::kRandom;
  ap::Scheduler sched(policy, 5);
  ap::ProcessId consumer_id = ap::kNoProcess;
  Producer producer(&consumer_id);
  Consumer consumer;
  sched.add_process(producer, "producer");
  consumer_id = sched.add_process(consumer, "consumer");

  for (auto _ : state) {
    producer.refill(1'000);
    sched.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2'000);  // 1000 sends + 1000 receives
}
BENCHMARK(BM_ApPingPong)->Arg(0)->Arg(1);

void BM_ApManyProcesses(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  ap::Scheduler sched;
  std::vector<std::unique_ptr<Producer>> producers;
  std::vector<std::unique_ptr<Consumer>> consumers;
  std::vector<ap::ProcessId> consumer_ids(n, ap::kNoProcess);
  for (std::size_t i = 0; i < n; ++i) {
    producers.push_back(std::make_unique<Producer>(&consumer_ids[i]));
    sched.add_process(*producers.back(), "p" + std::to_string(i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    consumers.push_back(std::make_unique<Consumer>());
    consumer_ids[i] =
        sched.add_process(*consumers.back(), "c" + std::to_string(i));
  }
  for (auto _ : state) {
    for (auto& p : producers) p->refill(100);
    sched.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 200);
}
BENCHMARK(BM_ApManyProcesses)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  zmail::bench::Bench harness("micro_ap", argc, argv);
  return zmail::bench::run_micro(harness, argc, argv);
}
