// Runtime deployment dynamics: legacy ISPs flipping compliant mid-run
// (paper Section 4's compliant-array broadcast + Section 5's incremental
// deployment), and multi-recipient send semantics.
#include <gtest/gtest.h>

#include "core/system.hpp"

namespace zmail::core {
namespace {

net::EmailAddress user(std::size_t i, std::size_t u) {
  return net::make_user_address(i, u);
}

ZmailParams mixed_params() {
  ZmailParams p;
  p.n_isps = 3;
  p.users_per_isp = 4;
  p.compliant = {true, true, false};
  p.initial_user_balance = 50;
  return p;
}

TEST(MakeCompliant, LegacyIspStartsRunningZmail) {
  ZmailSystem sys(mixed_params(), 1);
  // Before: mail from ISP 2 is free.
  EXPECT_EQ(sys.send_email(user(2, 0), user(0, 0), "s", "b"),
            SendResult::kSentFree);
  sys.run_for(sim::kMinute);

  sys.make_compliant(2);
  EXPECT_TRUE(sys.is_compliant(2));
  // After: the same sender pays like everyone else.
  EXPECT_EQ(sys.send_email(user(2, 0), user(0, 0), "s", "b"),
            SendResult::kSentPaid);
  sys.run_for(sim::kMinute);
  EXPECT_EQ(sys.isp(2).user(0).balance,
            mixed_params().initial_user_balance - 1);
  EXPECT_EQ(sys.isp(2).credit()[0], 1);
  EXPECT_EQ(sys.isp(0).credit()[2], -1);
}

TEST(MakeCompliant, ExistingIspsSeeTheBroadcastImmediately) {
  ZmailSystem sys(mixed_params(), 2);
  sys.make_compliant(2);
  // A compliant ISP now charges for mail toward ISP 2.
  EXPECT_EQ(sys.send_email(user(0, 0), user(2, 0), "s", "b"),
            SendResult::kSentPaid);
  sys.run_for(sim::kMinute);
  EXPECT_EQ(sys.isp(2).user(0).balance,
            mixed_params().initial_user_balance + 1);
}

TEST(MakeCompliant, IdempotentOnAlreadyCompliant) {
  ZmailSystem sys(mixed_params(), 3);
  sys.make_compliant(0);
  EXPECT_TRUE(sys.is_compliant(0));
  sys.make_compliant(2);
  sys.make_compliant(2);
  EXPECT_TRUE(sys.is_compliant(2));
}

TEST(MakeCompliant, JoinerParticipatesInNextSnapshotCleanly) {
  ZmailSystem sys(mixed_params(), 4);
  // Run a first snapshot with the original pair.
  sys.send_email(user(0, 0), user(1, 0), "s", "b");
  sys.run_for(sim::kHour);
  sys.start_snapshot();
  sys.run_for(30 * sim::kMinute);
  EXPECT_EQ(sys.bank().seq(), 1u);

  sys.make_compliant(2);
  EXPECT_EQ(sys.isp(2).seq(), 1u);  // joined the current billing period
  sys.send_email(user(2, 0), user(1, 0), "s", "b");
  sys.send_email(user(0, 1), user(2, 1), "s", "b");
  sys.run_for(sim::kHour);
  sys.start_snapshot();
  sys.run_for(30 * sim::kMinute);
  EXPECT_EQ(sys.bank().seq(), 2u);
  EXPECT_TRUE(sys.bank().last_violations().empty());
  EXPECT_TRUE(sys.conservation_holds());
}

TEST(MakeCompliant, AllCompliantWorldFromEmptyArray) {
  ZmailParams p;
  p.n_isps = 2;
  p.users_per_isp = 2;
  // Empty compliant array means "all compliant": flipping is a no-op.
  ZmailSystem sys(p, 5);
  sys.make_compliant(1);
  EXPECT_TRUE(sys.is_compliant(0));
  EXPECT_TRUE(sys.is_compliant(1));
}

TEST(MultiRecipient, ChargesOneEPennyPerRecipient) {
  ZmailParams p;
  p.n_isps = 3;
  p.users_per_isp = 4;
  p.initial_user_balance = 50;
  ZmailSystem sys(p, 6);

  net::EmailMessage msg = net::make_email(user(0, 0), user(1, 0), "all", "b");
  msg.to.push_back(user(1, 1));
  msg.to.push_back(user(2, 2));
  msg.to.push_back(user(0, 3));  // local recipient

  const auto r = sys.send_email_multi(msg);
  EXPECT_EQ(r.sent, 4u);
  EXPECT_EQ(r.refused, 0u);
  EXPECT_EQ(sys.isp(0).user(0).balance, 50 - 4);
  sys.run_for(sim::kMinute);
  EXPECT_EQ(sys.isp(1).user(0).balance, 51);
  EXPECT_EQ(sys.isp(1).user(1).balance, 51);
  EXPECT_EQ(sys.isp(2).user(2).balance, 51);
  EXPECT_EQ(sys.isp(0).user(3).balance, 51);
  EXPECT_TRUE(sys.conservation_holds());
}

TEST(MultiRecipient, PartialRefusalWhenBalanceRunsOut) {
  ZmailParams p;
  p.n_isps = 2;
  p.users_per_isp = 5;
  p.initial_user_balance = 2;
  ZmailSystem sys(p, 7);

  net::EmailMessage msg = net::make_email(user(0, 0), user(1, 0), "all", "b");
  msg.to.push_back(user(1, 1));
  msg.to.push_back(user(1, 2));
  const auto r = sys.send_email_multi(msg);
  EXPECT_EQ(r.sent, 2u);
  EXPECT_EQ(r.refused, 1u);
  EXPECT_EQ(sys.isp(0).user(0).balance, 0);
}

TEST(MultiRecipient, DailyLimitAppliesPerRecipient) {
  ZmailParams p;
  p.n_isps = 2;
  p.users_per_isp = 5;
  p.initial_user_balance = 100;
  p.default_daily_limit = 2;
  ZmailSystem sys(p, 8);

  net::EmailMessage msg = net::make_email(user(0, 0), user(1, 0), "all", "b");
  msg.to.push_back(user(1, 1));
  msg.to.push_back(user(1, 2));
  msg.to.push_back(user(1, 3));
  const auto r = sys.send_email_multi(msg);
  EXPECT_EQ(r.sent, 2u);
  EXPECT_EQ(r.refused, 2u);
}

}  // namespace
}  // namespace zmail::core
