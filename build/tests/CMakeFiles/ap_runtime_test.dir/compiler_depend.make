# Empty compiler generated dependencies file for ap_runtime_test.
# This may be replaced when dependencies are built.
