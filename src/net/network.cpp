#include "net/network.hpp"

#include "util/assert.hpp"

namespace zmail::net {

Network::Network(sim::Simulator& simulator, Rng rng, LatencyModel latency)
    : sim_(simulator), rng_(rng), latency_(latency) {}

HostId Network::add_host(std::string name, HandlerFn handler) {
  ZMAIL_ASSERT(handler != nullptr);
  hosts_.push_back(Host{std::move(name), std::move(handler), {}});
  bytes_to_.push_back(0);
  return hosts_.size() - 1;
}

void Network::bind_domain(const std::string& domain, HostId host) {
  ZMAIL_ASSERT(host < hosts_.size());
  mx_[domain] = host;
}

HostId Network::resolve(const std::string& domain) const {
  const auto it = mx_.find(domain);
  return it == mx_.end() ? kNoHost : it->second;
}

void Network::send(HostId from, HostId to, MsgType type,
                   crypto::Bytes&& payload) {
  ZMAIL_ASSERT(from < hosts_.size() && to < hosts_.size());
  ZMAIL_ASSERT_MSG(type != kMsgInvalid, "datagram needs a type");
  const std::size_t size = payload.size() + type.name().size() + 16;
  ++datagrams_;
  bytes_ += size;
  bytes_to_[to] += size;

  sim::SimTime deliver_at = sim_.now() + latency_.sample(rng_);
  // Enforce per-(from,to) FIFO: never deliver before an earlier datagram.
  auto& fifo = hosts_[to].last_from;
  if (from >= fifo.size()) fifo.resize(from + 1, 0);
  if (deliver_at <= fifo[from]) deliver_at = fifo[from] + 1;
  fifo[from] = deliver_at;

  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(pending_.size());
    pending_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Datagram& d = pending_[slot];
  d.type = type;
  d.payload = std::move(payload);
  d.from = from;
  d.to = to;
  sim_.schedule_at(deliver_at, [this, slot] { deliver(slot); });
}

void Network::deliver(std::uint32_t slot) {
  // Move the datagram out before invoking the handler: a reentrant send()
  // may grow pending_ and would invalidate a reference into it.
  Datagram d = std::move(pending_[slot]);
  free_slots_.push_back(slot);
  hosts_[d.to].handler(d);
}

}  // namespace zmail::net
