file(REMOVE_RECURSE
  "CMakeFiles/spam_campaign.dir/spam_campaign.cpp.o"
  "CMakeFiles/spam_campaign.dir/spam_campaign.cpp.o.d"
  "spam_campaign"
  "spam_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
