#include "core/system.hpp"

#include <gtest/gtest.h>

#include <type_traits>

namespace zmail::core {
namespace {

ZmailParams two_isps() {
  ZmailParams p;
  p.n_isps = 2;
  p.users_per_isp = 3;
  p.initial_user_balance = 20;
  return p;
}

net::EmailAddress user(std::size_t i, std::size_t u) {
  return net::make_user_address(i, u);
}

TEST(System, CrossIspMailMovesOneEPenny) {
  ZmailSystem sys(two_isps(), 1);
  EXPECT_EQ(sys.send_email(user(0, 0), user(1, 1), "hi", "there"),
            SendResult::kSentPaid);
  sys.run_for(sim::kMinute);
  EXPECT_EQ(sys.isp(0).user(0).balance, 19);
  EXPECT_EQ(sys.isp(1).user(1).balance, 21);
  EXPECT_EQ(sys.isp(0).credit()[1], 1);
  EXPECT_EQ(sys.isp(1).credit()[0], -1);
  ASSERT_EQ(sys.isp(1).inbox(1).size(), 1u);
  EXPECT_EQ(sys.isp(1).inbox(1)[0].msg.subject(), "hi");
}

TEST(System, MailTravelsThroughRealSmtp) {
  ZmailSystem sys(two_isps(), 2);
  sys.send_email(user(0, 0), user(1, 0), "subject line", "body\n.dots\nok");
  sys.run_for(sim::kMinute);
  EXPECT_GT(sys.smtp_bytes_received(1), 100u);
  ASSERT_EQ(sys.isp(1).inbox(0).size(), 1u);
  EXPECT_EQ(sys.isp(1).inbox(0)[0].msg.body, "body\n.dots\nok");
}

TEST(System, ConservationHoldsAfterTraffic) {
  ZmailSystem sys(two_isps(), 3);
  for (int i = 0; i < 20; ++i) {
    sys.send_email(user(i % 2, i % 3), user((i + 1) % 2, (i + 1) % 3), "s",
                   "b");
  }
  sys.run_for(sim::kHour);
  EXPECT_EQ(sys.epennies_in_flight(), 0);
  EXPECT_TRUE(sys.conservation_holds());
}

TEST(System, InFlightEPenniesCountedMidFlight) {
  ZmailSystem sys(two_isps(), 4);
  const EPenny before = sys.total_epennies();
  sys.send_email(user(0, 0), user(1, 0), "s", "b");
  // Not yet delivered: the e-penny is in flight but still counted.
  EXPECT_EQ(sys.epennies_in_flight(), 1);
  EXPECT_EQ(sys.total_epennies(), before);
  sys.run_for(sim::kMinute);
  EXPECT_EQ(sys.epennies_in_flight(), 0);
  EXPECT_EQ(sys.total_epennies(), before);
}

TEST(System, UserTradesViaFacade) {
  ZmailSystem sys(two_isps(), 5);
  EXPECT_TRUE(sys.buy_epennies(user(0, 0), 10));
  EXPECT_EQ(sys.isp(0).user(0).balance, 30);
  EXPECT_TRUE(sys.sell_epennies(user(0, 0), 5));
  EXPECT_EQ(sys.isp(0).user(0).balance, 25);
  EXPECT_FALSE(sys.buy_epennies({"nobody", "unknown.example"}, 1));
  EXPECT_TRUE(sys.conservation_holds());
}

TEST(System, RealMoneyIsConservedByUserTrades) {
  ZmailSystem sys(two_isps(), 6);
  const Money before = sys.total_real_money();
  sys.buy_epennies(user(0, 0), 10);
  sys.sell_epennies(user(1, 2), 3);
  EXPECT_EQ(sys.total_real_money(), before);
}

TEST(System, SnapshotRoundCompletesOverNetwork) {
  ZmailSystem sys(two_isps(), 7);
  sys.send_email(user(0, 0), user(1, 0), "s", "b");
  sys.run_for(sim::kMinute);
  sys.start_snapshot();
  // Requests travel, ISPs quiesce 10 minutes, replies return.
  sys.run_for(30 * sim::kMinute);
  EXPECT_FALSE(sys.bank().round_open());
  EXPECT_TRUE(sys.bank().last_violations().empty());
  EXPECT_EQ(sys.bank().seq(), 1u);
  EXPECT_EQ(sys.isp(0).seq(), 1u);
  EXPECT_EQ(sys.isp(1).seq(), 1u);
  // Settlement: ISP 0 paid ISP 1 one e-penny's worth.
  EXPECT_EQ(sys.bank().account(0),
            sys.params().initial_isp_bank_account - Money::from_epennies(1));
}

TEST(System, MailSentDuringQuiesceArrivesAfter) {
  ZmailSystem sys(two_isps(), 8);
  sys.start_snapshot();
  sys.run_for(sim::kMinute);  // requests delivered; ISPs quiescing
  ASSERT_TRUE(sys.isp(0).in_quiesce());
  EXPECT_EQ(sys.send_email(user(0, 0), user(1, 0), "during", "quiesce"),
            SendResult::kBuffered);
  EXPECT_TRUE(sys.isp(1).inbox(0).empty());
  sys.run_for(15 * sim::kMinute);  // quiesce expires, mail flushes
  ASSERT_EQ(sys.isp(1).inbox(0).size(), 1u);
  EXPECT_EQ(sys.isp(1).inbox(0)[0].msg.subject(), "during");
  EXPECT_TRUE(sys.conservation_holds());
}

TEST(System, MisbehavingIspDetectedBySnapshot) {
  ZmailSystem sys(two_isps(), 9);
  sys.isp(0).set_misbehavior(Isp::Misbehavior::kFreeRide);
  for (int i = 0; i < 5; ++i)
    sys.send_email(user(0, 0), user(1, 0), "free", "ride");
  sys.run_for(sim::kHour);
  sys.start_snapshot();
  sys.run_for(30 * sim::kMinute);
  ASSERT_EQ(sys.bank().last_violations().size(), 1u);
  EXPECT_EQ(sys.bank().last_violations()[0].discrepancy, -5);
}

TEST(System, LegacySenderDeliversFreeMail) {
  ZmailParams p = two_isps();
  p.n_isps = 3;
  p.compliant = {true, true, false};
  ZmailSystem sys(p, 10);
  EXPECT_EQ(sys.send_email(user(2, 0), user(0, 1), "free", "smtp"),
            SendResult::kSentFree);
  sys.run_for(sim::kMinute);
  EXPECT_EQ(sys.legacy_stats(2).emails_sent, 1u);
  ASSERT_EQ(sys.isp(0).inbox(1).size(), 1u);
  EXPECT_EQ(sys.isp(0).inbox(1)[0].paid, 0);
  EXPECT_EQ(sys.isp(0).user(1).balance, p.initial_user_balance);
}

TEST(System, CompliantToLegacyIsFree) {
  ZmailParams p = two_isps();
  p.n_isps = 3;
  p.compliant = {true, true, false};
  ZmailSystem sys(p, 11);
  EXPECT_EQ(sys.send_email(user(0, 0), user(2, 1), "to", "legacy"),
            SendResult::kSentFree);
  sys.run_for(sim::kMinute);
  EXPECT_EQ(sys.isp(0).user(0).balance, p.initial_user_balance);
  EXPECT_EQ(sys.legacy_stats(2).emails_received, 1u);
}

TEST(System, FilterPolicyScreensLegacySpam) {
  ZmailParams p = two_isps();
  p.n_isps = 3;
  p.compliant = {true, true, false};
  p.noncompliant_policy = NonCompliantPolicy::kFilter;
  ZmailSystem sys(p, 12);
  sys.set_spam_filter([](const net::EmailMessage& m) {
    return m.truth == net::MailClass::kSpam;
  });
  sys.send_email(user(2, 0), user(0, 0), "buy now", "spam",
                 net::MailClass::kSpam);
  sys.send_email(user(2, 0), user(0, 0), "hello", "ham");
  sys.run_for(sim::kMinute);
  EXPECT_EQ(sys.isp(0).metrics().emails_filtered_out, 1u);
  EXPECT_EQ(sys.isp(0).inbox(0).size(), 1u);
}

TEST(System, BankTradingRefillsDepletedPool) {
  ZmailParams p = two_isps();
  p.initial_avail = 60;
  p.minavail = 50;
  p.maxavail = 200;
  ZmailSystem sys(p, 13);
  sys.enable_bank_trading(sim::kMinute);
  // Drain the pool below minavail with user purchases.
  sys.buy_epennies(user(0, 0), 15);
  EXPECT_EQ(sys.isp(0).avail(), 45);
  sys.run_for(10 * sim::kMinute);
  EXPECT_EQ(sys.isp(0).avail(), 200);
  EXPECT_TRUE(sys.conservation_holds());
  EXPECT_GT(sys.bank().epennies_outstanding(), 0);
}

TEST(System, DailyResetsRestoreSendingCapacity) {
  ZmailParams p = two_isps();
  p.default_daily_limit = 2;
  ZmailSystem sys(p, 14);
  sys.enable_daily_resets();
  EXPECT_EQ(sys.send_email(user(0, 0), user(1, 0), "1", "b"),
            SendResult::kSentPaid);
  EXPECT_EQ(sys.send_email(user(0, 0), user(1, 0), "2", "b"),
            SendResult::kSentPaid);
  EXPECT_EQ(sys.send_email(user(0, 0), user(1, 0), "3", "b"),
            SendResult::kDailyLimit);
  sys.run_for(25 * sim::kHour);  // crosses the daily boundary
  EXPECT_EQ(sys.send_email(user(0, 0), user(1, 0), "4", "b"),
            SendResult::kSentPaid);
}

TEST(System, PeriodicSnapshotsAdvanceSeq) {
  ZmailSystem sys(two_isps(), 15);
  sys.enable_periodic_snapshots(2 * sim::kHour);
  sys.send_email(user(0, 0), user(1, 0), "s", "b");
  sys.run_for(7 * sim::kHour);
  EXPECT_GE(sys.bank().metrics().snapshot_rounds, 3u);
  EXPECT_EQ(sys.bank().seq(), sys.isp(0).seq());
}

TEST(System, DeliveryLatencyIsSampled) {
  ZmailSystem sys(two_isps(), 17);
  for (int i = 0; i < 10; ++i)
    sys.send_email(user(0, 0), user(1, 0), "s", "b");
  sys.run_for(sim::kMinute);
  ASSERT_EQ(sys.delivery_latency().size(), 10u);
  EXPECT_GT(sys.delivery_latency().min(), 0.0);
  EXPECT_LT(sys.delivery_latency().max(), 1.0);  // well under a second
}

TEST(System, QuiesceBufferingShowsUpInLatency) {
  ZmailSystem sys(two_isps(), 18);
  sys.start_snapshot();
  sys.run_for(sim::kMinute);
  ASSERT_TRUE(sys.isp(0).in_quiesce());
  sys.send_email(user(0, 0), user(1, 0), "held", "b");
  sys.run_for(20 * sim::kMinute);
  ASSERT_EQ(sys.delivery_latency().size(), 1u);
  // ~9 minutes of buffer time.
  EXPECT_GT(sys.delivery_latency().max(), 8.0 * 60.0);
  EXPECT_LT(sys.delivery_latency().max(), 10.0 * 60.0);
}

TEST(SendOutcome, CarriesResultAndPerRecipientCounts) {
  ZmailSystem sys(two_isps(), 21);
  const SendOutcome ok = sys.send_email(user(0, 0), user(1, 1), "s", "b");
  EXPECT_EQ(ok.result, SendResult::kSentPaid);
  EXPECT_EQ(ok.sent, 1u);
  EXPECT_EQ(ok.refused, 0u);
  EXPECT_TRUE(ok.all_sent());
  // Implicit conversion keeps pre-redesign call sites working.
  const SendResult legacy = ok;
  EXPECT_EQ(legacy, SendResult::kSentPaid);
  switch (ok) {
    case SendResult::kSentPaid:
      break;
    default:
      FAIL() << "switch over SendOutcome must use the embedded result";
  }
}

TEST(SendOutcome, MultiRecipientCountsRefusals) {
  ZmailParams p = two_isps();
  p.initial_user_balance = 2;  // enough for two stamps only
  ZmailSystem sys(p, 22);
  net::EmailMessage msg = net::make_email(user(0, 0), user(1, 0), "s", "b");
  msg.to.push_back(user(1, 1));
  msg.to.push_back(user(1, 2));
  const SendOutcome r = sys.send_email_multi(msg);
  EXPECT_EQ(r.sent, 2u);
  EXPECT_EQ(r.refused, 1u);
  EXPECT_FALSE(r.all_sent());
  EXPECT_EQ(r.result, SendResult::kNoBalance);  // first refusal wins
  // MultiSendResult remains as an alias for incremental migration.
  static_assert(std::is_same_v<ZmailSystem::MultiSendResult, SendOutcome>);
}

TEST(IspId, ImplicitFromIndexAndComparable) {
  const IspId a = 2;  // implicit: indices keep working at call sites
  const IspId b(2);
  const IspId c = 3;
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a.index(), 2u);

  ZmailSystem sys(two_isps(), 23);
  sys.send_email(user(0, 0), user(1, 1), "s", "b");
  sys.run_for(sim::kMinute);
  const IspId receiver = 1;
  EXPECT_TRUE(sys.is_compliant(receiver));
  EXPECT_EQ(sys.isp(receiver).user(1).balance, 21);
  EXPECT_GT(sys.smtp_bytes_received(receiver), 0u);
}

TEST(System, AccessingLegacyIspAsCompliantAborts) {
  ZmailParams p = two_isps();
  p.n_isps = 3;
  p.compliant = {true, true, false};
  ZmailSystem sys(p, 16);
  EXPECT_DEATH((void)sys.isp(2), "non-compliant");
}

}  // namespace
}  // namespace zmail::core
