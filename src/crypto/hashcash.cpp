#include "crypto/hashcash.hpp"

#include "util/assert.hpp"

namespace zmail::crypto {

namespace {
Digest stamp_digest(const std::string& resource, std::uint64_t counter) {
  Bytes msg;
  put_string(msg, resource);
  put_u64(msg, counter);
  return sha256(msg);
}
}  // namespace

PowStamp pow_solve(const std::string& resource, int difficulty_bits,
                   std::uint64_t start_counter, std::uint64_t* attempts_out) {
  ZMAIL_ASSERT(difficulty_bits >= 0 && difficulty_bits <= 64);
  std::uint64_t counter = start_counter;
  std::uint64_t attempts = 0;
  for (;;) {
    ++attempts;
    if (leading_zero_bits(stamp_digest(resource, counter)) >=
        difficulty_bits) {
      if (attempts_out) *attempts_out = attempts;
      return PowStamp{resource, counter, difficulty_bits};
    }
    ++counter;
  }
}

bool pow_verify(const PowStamp& stamp) {
  return leading_zero_bits(stamp_digest(stamp.resource, stamp.counter)) >=
         stamp.difficulty_bits;
}

}  // namespace zmail::crypto
