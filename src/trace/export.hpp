// Flight-recorder exporters and loaders.
//
// Two on-disk formats, chosen by extension in export_auto():
//   - *.json  — Chrome trace-event format ("traceEvents" array), loadable in
//     Perfetto / chrome://tracing.  Spans with a nonzero TraceId become
//     async "b"/"e" events keyed by the id so one message's chain lines up
//     on a single track; host-scoped spans (id 0) become per-pid "B"/"E";
//     instants become "i".  Every record embeds the raw POD fields in
//     args so the file round-trips losslessly back through load().
//   - anything else — compact binary ("ZTRC" v1): fixed-width big-endian
//     records plus a trailing log-mirror section.  ~6x smaller and the
//     format tools/trace_report prefers.
//
// Timestamps in the chrome export are *sim-time* microseconds (the
// deterministic clock the invariants are stated in); wall_ns rides along in
// args for wall-clock analysis.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace zmail::trace {

bool export_chrome(const std::string& path,
                   const std::vector<TraceEvent>& events,
                   const std::vector<LogRecord>& logs,
                   std::string* error = nullptr);

bool export_binary(const std::string& path,
                   const std::vector<TraceEvent>& events,
                   const std::vector<LogRecord>& logs,
                   std::string* error = nullptr);

// .json → chrome, otherwise binary.
bool export_auto(const std::string& path,
                 const std::vector<TraceEvent>& events,
                 const std::vector<LogRecord>& logs,
                 std::string* error = nullptr);

// Convenience: collect() + collect_logs() + export_auto.
bool export_current(const std::string& path, std::string* error = nullptr);

// Loads either format back (sniffs the "ZTRC" magic, else parses JSON).
// Events are returned sorted by seq.
bool load(const std::string& path, std::vector<TraceEvent>* events,
          std::vector<LogRecord>* logs, std::string* error = nullptr);

}  // namespace zmail::trace
