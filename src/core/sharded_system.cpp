#include "core/sharded_system.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/log.hpp"

namespace zmail::core {

namespace {
constexpr std::size_t kMaxAuditMessages = 8;
}  // namespace

ShardedSystem::ShardedSystem(ZmailParams params, std::uint64_t seed,
                             ShardOptions opts)
    : opts_(opts) {
  ZMAIL_ASSERT_MSG(opts_.shards > 0, "need at least one shard");

  if (opts_.shards == 1) {
    // Whole world, no engine: the legacy single-threaded path, byte-stable
    // against pre-sharding builds (shared RNG stream, unkeyed latency).
    shards_.push_back(std::make_unique<ZmailSystem>(std::move(params), seed));
    return;
  }

  shards_.reserve(opts_.shards);
  for (std::size_t s = 0; s < opts_.shards; ++s) {
    ShardSlice slice;
    slice.shard = s;
    slice.shards = opts_.shards;
    slice.keyed_seed = seed;
    shards_.push_back(std::make_unique<ZmailSystem>(params, seed, slice));
  }

  // The conservative window length: nothing crosses shards faster than the
  // network's latency floor (jitter, FIFO clamps, and fault delay spikes
  // only push deliveries later).
  sim::Duration lookahead = opts_.lookahead;
  if (lookahead == 0)
    lookahead = shards_[0]->network().latency().min_latency();
  ZMAIL_ASSERT_MSG(
      lookahead <= shards_[0]->network().latency().min_latency(),
      "lookahead must not exceed the network's minimum latency");

  pool_ = std::make_unique<util::ThreadPool>(
      opts_.threads != 0 ? opts_.threads : opts_.shards);
  sim::ShardedOptions eo;
  eo.shards = opts_.shards;
  eo.lookahead = lookahead;
  eo.deterministic = opts_.deterministic;
  engine_ = std::make_unique<sim::ShardedSimulator>(eo, *pool_);

  for (std::size_t s = 0; s < opts_.shards; ++s) wire_shard(s);
  engine_->set_barrier_hook([this](sim::SimTime at) { audit_barrier(at); });
  initial_real_money_ =
      total_real_money() + Money::from_epennies(bank().epennies_outstanding());
}

ShardedSystem::~ShardedSystem() = default;

void ShardedSystem::wire_shard(std::size_t s) {
  ZmailSystem* sys = shards_[s].get();
  engine_->attach(s, &sys->simulator());
  // Cross-shard datagrams: the source network resolved the delivery time
  // (keyed latency + FIFO + fault delay); the engine carries the datagram
  // over the barrier and the owner's network injects it on schedule.
  sys->network().set_remote_route(
      [this, s](net::Datagram&& d, sim::SimTime at) {
        const std::size_t dst = owner_shard(d.to);
        ZmailSystem* owner = shards_[dst].get();
        engine_->post(s, dst, at,
                      [owner, d = std::move(d), at]() mutable {
                        owner->network().deliver_remote(std::move(d), at);
                      });
      });
  // Snapshot quiesce timeouts arm on the bank shard with one common
  // absolute deadline but must fire on the ISP's owner.
  sys->set_remote_quiesce_hook([this, s](std::size_t isp, sim::SimTime at) {
    const std::size_t dst = owner_shard(isp);
    ZmailSystem* owner = shards_[dst].get();
    engine_->post(s, dst, at, [owner, isp] { owner->quiesce_timeout(isp); });
  });
}

std::size_t ShardedSystem::owner_shard(std::size_t host) const noexcept {
  if (!sharded()) return 0;
  if (host == bank_index()) return ShardSlice::owner_of_bank(shards_.size());
  return ShardSlice::owner_of_isp(host, shards_.size());
}

// --- Verbs ------------------------------------------------------------------

SendOutcome ShardedSystem::send_email(const net::EmailAddress& from,
                                      const net::EmailAddress& to,
                                      std::string subject, std::string body,
                                      net::MailClass truth) {
  std::size_t from_isp = 0, from_user = 0;
  ZMAIL_ASSERT_MSG(net::decode_user_address(from, from_isp, from_user),
                   "sender must be a simulated user address");
  return shards_[owner_shard(from_isp)]->send_email(
      from, to, std::move(subject), std::move(body), truth);
}

bool ShardedSystem::buy_epennies(const net::EmailAddress& user, EPenny n) {
  std::size_t i = 0, u = 0;
  if (!net::decode_user_address(user, i, u)) return false;
  return shards_[owner_shard(i)]->buy_epennies(user, n);
}

bool ShardedSystem::sell_epennies(const net::EmailAddress& user, EPenny n) {
  std::size_t i = 0, u = 0;
  if (!net::decode_user_address(user, i, u)) return false;
  return shards_[owner_shard(i)]->sell_epennies(user, n);
}

void ShardedSystem::end_of_day() {
  for (std::size_t i = 0; i < params().n_isps; ++i)
    if (is_compliant(i)) shards_[owner_shard(i)]->isp(i).end_of_day();
}

void ShardedSystem::make_compliant(IspId isp) {
  if (!sharded()) {
    shards_[0]->make_compliant(isp);
    return;
  }
  const std::size_t i = isp.index();
  ZMAIL_ASSERT(i < params().n_isps);
  if (is_compliant(i)) return;
  ZMAIL_ASSERT_MSG(epennies_in_flight() == 0 && pending_transfers() == 0,
                   "flip compliance only while no paid mail is in flight");
  // The bank (shard 0) publishes the flip; the owner joins the current
  // billing period; every shard's published-compliant copy must agree
  // before any further traffic touches ISP i.
  const std::uint64_t bank_seq = bank().seq();
  const std::size_t owner = owner_shard(i);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (s == owner)
      shards_[s]->make_compliant_owned(isp, bank_seq);
    else
      shards_[s]->adopt_compliance(isp);
  }
  // The flip brings a fresh set of user wallets (and their endowment) into
  // the measured world at a quiet point; rebase the real-money baseline so
  // the barrier audits keep comparing against a current total.
  initial_real_money_ =
      total_real_money() + Money::from_epennies(bank().epennies_outstanding());
}

void ShardedSystem::start_snapshot() {
  shards_[owner_shard(bank_index())]->start_snapshot();
}

void ShardedSystem::crash_host(std::size_t host, sim::Duration down_for) {
  shards_[owner_shard(host)]->crash_host(host, down_for);
}

// --- Periodic machinery ------------------------------------------------------

void ShardedSystem::enable_daily_resets() {
  // Every shard schedules the same tick; each resets only its owned ISPs.
  for (auto& s : shards_) s->enable_daily_resets();
}

void ShardedSystem::enable_bank_trading(sim::Duration poll) {
  for (auto& s : shards_) s->enable_bank_trading(poll);
}

void ShardedSystem::enable_periodic_snapshots(sim::Duration period) {
  // Rounds start where the bank lives; requests fan out over the network.
  shards_[owner_shard(bank_index())]->enable_periodic_snapshots(period);
}

void ShardedSystem::enable_telemetry(const telemetry::TelemetryConfig& cfg) {
  telemetry::TelemetryConfig per_shard = cfg;
  if (sharded() && !per_shard.prom_path.empty()) {
    ZMAIL_LOG(LogLevel::kWarn, "telemetry",
              "prometheus exposition is single-registry only; ignoring "
              "prom_path on a %zu-shard world",
              shards_.size());
    per_shard.prom_path.clear();
  }
  for (auto& s : shards_) s->enable_telemetry(per_shard);
}

std::vector<const telemetry::TelemetryRegistry*>
ShardedSystem::telemetry_registries() const {
  std::vector<const telemetry::TelemetryRegistry*> out;
  for (const auto& s : shards_)
    if (const telemetry::TelemetryRegistry* r = s->telemetry())
      out.push_back(r);
  return out;
}

void ShardedSystem::attach_faults(const net::FaultPlan& plan,
                                  std::uint64_t fault_seed) {
  ZMAIL_ASSERT_MSG(injectors_.empty(), "faults already attached");
  for (auto& s : shards_) {
    auto inj = std::make_unique<net::FaultInjector>(plan, fault_seed);
    // Keyed per-pair fate draws: shard k's decision for (from,to,k) equals
    // any other partition's decision for the same triple, so the injected
    // fault pattern is a property of the world, not of the sharding.
    if (sharded()) inj->enable_keyed(params().n_isps + 1);
    s->attach_faults(inj.get());
    injectors_.push_back(std::move(inj));
  }
}

// --- Time --------------------------------------------------------------------

void ShardedSystem::run_for(sim::Duration d) {
  if (!sharded()) {
    shards_[0]->run_for(d);
    return;
  }
  engine_->run(now() + d);
}

void ShardedSystem::run_until_quiet(sim::Duration max) {
  if (!sharded()) {
    shards_[0]->run_until_quiet(max);
    return;
  }
  engine_->run(now() + max);
}

sim::SimTime ShardedSystem::now() const noexcept { return shards_[0]->now(); }

// --- Introspection -----------------------------------------------------------

Isp& ShardedSystem::isp(IspId i) {
  return shards_[owner_shard(i.index())]->isp(i);
}

const Isp& ShardedSystem::isp(IspId i) const {
  return shards_[owner_shard(i.index())]->isp(i);
}

// --- Merged observability ----------------------------------------------------

IspMetrics ShardedSystem::total_isp_metrics() const {
  IspMetrics total;
  // Owner order (ISP index order via per-shard scans would interleave);
  // counters are sums so any order gives the same value, but walking ISP
  // index order keeps this trivially partition-independent.
  for (std::size_t i = 0; i < params().n_isps; ++i)
    if (is_compliant(i)) total.merge(isp(i).metrics());
  return total;
}

LegacyHostStats ShardedSystem::total_legacy_stats() const {
  LegacyHostStats total;
  for (const auto& s : shards_) {
    const LegacyHostStats t = s->total_legacy_stats();
    total.emails_sent += t.emails_sent;
    total.emails_received += t.emails_received;
    total.emails_received_spam += t.emails_received_spam;
  }
  return total;
}

Sample ShardedSystem::merged_delivery_latency() const {
  if (!sharded()) return shards_[0]->delivery_latency();
  std::vector<double> all;
  for (const auto& s : shards_) {
    const auto& xs = s->delivery_latency().values();
    all.insert(all.end(), xs.begin(), xs.end());
  }
  // Ascending order pins the float-summation order of mean()/sum(): which
  // shard observed which email stops mattering.
  std::sort(all.begin(), all.end());
  Sample out;
  for (double x : all) out.add(x);
  return out;
}

std::uint64_t ShardedSystem::datagrams_sent() const {
  std::uint64_t total = 0;
  // Each datagram is counted once, at its source network's send(); the
  // destination's deliver_remote() does not re-count.
  for (const auto& s : shards_) total += s->network().datagrams_sent();
  return total;
}

std::uint64_t ShardedSystem::bytes_sent() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->network().bytes_sent();
  return total;
}

std::uint64_t ShardedSystem::smtp_bytes_received(std::size_t i) const {
  return shards_[owner_shard(i)]->smtp_bytes_received(i);
}

std::size_t ShardedSystem::pending_transfers() const noexcept {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s->pending_transfers();
  return total;
}

std::uint64_t ShardedSystem::state_recoveries() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->state_recoveries();
  return total;
}

std::uint64_t ShardedSystem::calendar_rebases() const noexcept {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->simulator().calendar_rebases();
  return total;
}

ZmailSystem::StoreTotals ShardedSystem::store_totals() const {
  ZmailSystem::StoreTotals total;
  for (const auto& s : shards_) {
    const ZmailSystem::StoreTotals t = s->store_totals();
    total.checkpoints += t.checkpoints;
    total.snapshot_bytes += t.snapshot_bytes;
    total.wal_records_truncated += t.wal_records_truncated;
    total.wal_records_appended += t.wal_records_appended;
    total.wal_bytes_appended += t.wal_bytes_appended;
    total.wal_syncs += t.wal_syncs;
    total.wal_fsyncs += t.wal_fsyncs;
  }
  return total;
}

std::uint64_t ShardedSystem::horizon_clamps() const noexcept {
  std::uint64_t total = engine_ ? engine_->stats().horizon_clamps : 0;
  for (const auto& s : shards_) total += s->network().horizon_clamps();
  return total;
}

// --- Global zero-sum invariants ----------------------------------------------

EPenny ShardedSystem::total_epennies() const {
  EPenny total = 0;
  for (const auto& s : shards_) total += s->total_epennies();
  return total;
}

EPenny ShardedSystem::epennies_in_flight() const noexcept {
  EPenny total = 0;
  for (const auto& s : shards_) total += s->epennies_in_flight();
  return total;
}

Money ShardedSystem::total_real_money() const {
  Money total = Money::zero();
  for (const auto& s : shards_) total += s->total_real_money();
  return total;
}

bool ShardedSystem::conservation_holds() const {
  if (!sharded()) return shards_[0]->conservation_holds();
  // Per-shard escrow (in_flight_paid_) drifts: the source shard debits when
  // a paid email leaves, the destination credits when it lands, so only the
  // global sum balances.  Endowments count where the ISP lives; the net
  // mint counts on the bank shard.
  EPenny initial = 0;
  for (const auto& s : shards_) initial += s->initial_endowment_owned();
  return total_epennies() == initial + bank().epennies_outstanding();
}

EPenny ShardedSystem::initial_endowment() const {
  EPenny initial = 0;
  for (const auto& s : shards_) initial += s->initial_endowment_owned();
  return initial;
}

void ShardedSystem::audit_barrier(sim::SimTime at) {
  ++audit_.checks;
  auto fail = [&](const char* what) {
    ++audit_.failures;
    if (audit_.messages.size() < kMaxAuditMessages)
      audit_.messages.push_back(std::string(what) + " at barrier t=" +
                                std::to_string(at));
  };
  // The barrier is a globally consistent cut (all shards parked at the
  // window edge, mailboxes empty) — but not necessarily a *quiet* one: a
  // buy may sit between the bank's mint and the ISP's avail credit, so
  // holdings can legitimately run BELOW endowment + net mint by exactly the
  // trade value in flight.  What can never happen at any cut is value
  // creation: holdings above endowment + mint means a double-mint,
  // double-credit, or replayed refund got through.  The strict equality is
  // still enforced at quiet points via conservation_holds().
  EPenny initial = 0;
  for (const auto& s : shards_) initial += s->initial_endowment_owned();
  if (total_epennies() > initial + bank().epennies_outstanding())
    fail("e-pennies created from nothing");
  if (initial_real_money_ <
      total_real_money() +
          Money::from_epennies(bank().epennies_outstanding()))
    fail("real money created from nothing");
}

}  // namespace zmail::core
