#include "util/money.hpp"

#include <gtest/gtest.h>

namespace zmail {
namespace {

TEST(Money, DefaultIsZero) {
  Money m;
  EXPECT_TRUE(m.is_zero());
  EXPECT_EQ(m.micros(), 0);
}

TEST(Money, DollarConversionRoundTrips) {
  const Money m = Money::from_dollars(12.34);
  EXPECT_DOUBLE_EQ(m.dollars(), 12.34);
  EXPECT_EQ(m.micros(), 12'340'000);
}

TEST(Money, NegativeDollarsRoundCorrectly) {
  const Money m = Money::from_dollars(-0.005);
  EXPECT_EQ(m.micros(), -5'000);
}

TEST(Money, CentsConversion) {
  EXPECT_EQ(Money::from_cents(1).micros(), 10'000);
  EXPECT_EQ(Money::from_cents(250).dollars(), 2.50);
}

TEST(Money, EPennyIsOneCent) {
  // The paper's simplification: one e-penny costs $0.01.
  EXPECT_EQ(Money::from_epennies(1), Money::from_cents(1));
  EXPECT_EQ(Money::from_epennies(100), Money::from_dollars(1.0));
}

TEST(Money, WholeEpenniesFloors) {
  EXPECT_EQ(Money::from_dollars(0.0199).whole_epennies(), 1);
  EXPECT_EQ(Money::from_dollars(0.02).whole_epennies(), 2);
  EXPECT_EQ(Money::from_dollars(0.0).whole_epennies(), 0);
}

TEST(Money, Arithmetic) {
  const Money a = Money::from_cents(150);
  const Money b = Money::from_cents(50);
  EXPECT_EQ((a + b).dollars(), 2.0);
  EXPECT_EQ((a - b).dollars(), 1.0);
  EXPECT_EQ((-b).micros(), -500'000);
  EXPECT_EQ((a * std::int64_t{3}).dollars(), 4.5);
  EXPECT_EQ((std::int64_t{3} * a).dollars(), 4.5);
}

TEST(Money, ScalarDoubleMultiplyRounds) {
  const Money a = Money::from_cents(10);
  EXPECT_EQ((a * 0.5).micros(), 50'000);
  EXPECT_EQ((a * 0.333).micros(), 33'300);
}

TEST(Money, CompoundAssignment) {
  Money m = Money::from_cents(10);
  m += Money::from_cents(5);
  EXPECT_EQ(m, Money::from_cents(15));
  m -= Money::from_cents(20);
  EXPECT_EQ(m, Money::from_cents(-5));
  EXPECT_TRUE(m.is_negative());
}

TEST(Money, Ordering) {
  EXPECT_LT(Money::from_cents(1), Money::from_cents(2));
  EXPECT_GT(Money::from_dollars(1.0), Money::from_cents(99));
  EXPECT_LE(Money::zero(), Money::zero());
  EXPECT_GE(Money::from_cents(-1), Money::from_cents(-2));
}

TEST(Money, FormattingWholeDollars) {
  EXPECT_EQ(Money::from_dollars(5.0).str(), "$5");
  EXPECT_EQ(Money::zero().str(), "$0");
}

TEST(Money, FormattingCents) {
  EXPECT_EQ(Money::from_cents(123).str(), "$1.23");
  EXPECT_EQ(Money::from_cents(-123).str(), "-$1.23");
}

TEST(Money, FormattingMicros) {
  EXPECT_EQ(Money::from_micros(100).str(), "$0.0001");
  EXPECT_EQ(Money::from_micros(1'230'000).str(), "$1.23");
}

TEST(Money, ConservationUnderTransfers) {
  // Random transfer loop conserves the total exactly (fixed point).
  Money a = Money::from_dollars(10.0), b = Money::from_dollars(5.0);
  const Money total = a + b;
  for (int i = 1; i <= 1000; ++i) {
    const Money t = Money::from_micros(i * 7);
    a -= t;
    b += t;
  }
  EXPECT_EQ(a + b, total);
}

}  // namespace
}  // namespace zmail
