file(REMOVE_RECURSE
  "CMakeFiles/net_smtp_test.dir/net_smtp_test.cpp.o"
  "CMakeFiles/net_smtp_test.dir/net_smtp_test.cpp.o.d"
  "net_smtp_test"
  "net_smtp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_smtp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
