// Durability half of the Bank state machine (see isp_persist.cpp for the
// pattern).  The bank's handlers are already idempotent against duplicated
// requests, which makes them doubly safe to replay; determinism again rests
// on the serialized RNG stream (reply sealing draws from it).
#include <bit>

#include "core/bank.hpp"
#include "store/wal.hpp"

namespace zmail::core {

namespace {

constexpr std::uint8_t kStateVersion = 1;

void put_bool(crypto::Bytes& b, bool v) { crypto::put_u8(b, v ? 1 : 0); }
bool get_bool(crypto::ByteReader& r) { return r.get_u8() != 0; }

void put_rng(crypto::Bytes& b, const Rng& rng) {
  const Rng::State st = rng.save_state();
  for (std::uint64_t w : st.s) crypto::put_u64(b, w);
  crypto::put_u64(b, std::bit_cast<std::uint64_t>(st.cached_normal));
  put_bool(b, st.has_cached_normal);
}

void get_rng(crypto::ByteReader& r, Rng& rng) {
  Rng::State st;
  for (auto& w : st.s) w = r.get_u64();
  st.cached_normal = std::bit_cast<double>(r.get_u64());
  st.has_cached_normal = get_bool(r);
  rng.restore_state(st);
}

void put_matrix_i64(crypto::Bytes& b,
                    const std::vector<std::vector<EPenny>>& m) {
  crypto::put_u32(b, static_cast<std::uint32_t>(m.size()));
  for (const auto& row : m) {
    crypto::put_u32(b, static_cast<std::uint32_t>(row.size()));
    for (EPenny v : row) crypto::put_i64(b, v);
  }
}

bool get_matrix_i64(crypto::ByteReader& r,
                    std::vector<std::vector<EPenny>>& m) {
  const std::uint32_t rows = r.get_u32();
  if (!r.ok() || rows > (1u << 16)) return false;
  m.assign(rows, {});
  for (auto& row : m) {
    const std::uint32_t cols = r.get_u32();
    if (!r.ok() || cols > (1u << 16)) return false;
    row.assign(cols, 0);
    for (auto& v : row) v = r.get_i64();
  }
  return r.ok();
}

}  // namespace

void Bank::log_op(WalOp op, const crypto::Bytes& payload) {
  if (wal_) wal_->append(static_cast<std::uint8_t>(op), payload);
}

crypto::Bytes Bank::serialize_state() const {
  crypto::Bytes b;
  crypto::put_u8(b, kStateVersion);

  crypto::put_u32(b, static_cast<std::uint32_t>(accounts_.size()));
  for (Money a : accounts_) crypto::put_i64(b, a.micros());

  for (const auto* ledger : {&buy_ledger_, &sell_ledger_}) {
    crypto::put_u32(b, static_cast<std::uint32_t>(ledger->size()));
    for (const TradeLedger& l : *ledger) {
      put_bool(b, l.any_applied);
      crypto::put_u64(b, l.applied_hi);
      crypto::put_nonce(b, l.last_nonce);
      crypto::put_bytes(b, l.last_reply);
    }
  }

  put_matrix_i64(b, verify_);
  put_matrix_i64(b, drift_);
  crypto::put_u32(b, static_cast<std::uint32_t>(drift_streak_.size()));
  for (const auto& row : drift_streak_) {
    crypto::put_u32(b, static_cast<std::uint32_t>(row.size()));
    for (std::uint32_t v : row) crypto::put_u32(b, v);
  }
  crypto::put_u64(b, persistent_drift_pairs_);

  crypto::put_u32(b, static_cast<std::uint32_t>(reported_.size()));
  for (bool v : reported_) put_bool(b, v);
  crypto::put_u64(b, seq_);
  crypto::put_u64(b, total_);
  put_bool(b, canrequest_);

  crypto::put_u32(b, static_cast<std::uint32_t>(last_violations_.size()));
  for (const CreditViolation& v : last_violations_) {
    crypto::put_u64(b, v.isp_i);
    crypto::put_u64(b, v.isp_j);
    crypto::put_i64(b, v.discrepancy);
  }

  const BankMetrics& m = metrics_;
  for (std::uint64_t v :
       {m.buys_received, m.buys_accepted, m.buys_rejected, m.sells_received,
        m.snapshot_rounds, m.credit_reports_received,
        m.inconsistent_pairs_found, m.bad_envelopes, m.stale_reports,
        m.duplicate_buys, m.duplicate_sells, m.stale_trades,
        m.snapshot_rerequests, m.settlement_transfers, m.settlement_bytes})
    crypto::put_u64(b, v);
  crypto::put_i64(b, m.epennies_minted);
  crypto::put_i64(b, m.epennies_burned);

  put_rng(b, rng_);
  return b;
}

bool Bank::restore_state(const crypto::Bytes& state) {
  crypto::ByteReader r(state);
  if (r.get_u8() != kStateVersion) return false;

  const std::uint32_t n_acc = r.get_u32();
  if (!r.ok() || n_acc > (1u << 16)) return false;
  accounts_.assign(n_acc, Money{});
  for (auto& a : accounts_) a = Money::from_micros(r.get_i64());

  for (auto* ledger : {&buy_ledger_, &sell_ledger_}) {
    const std::uint32_t n = r.get_u32();
    if (!r.ok() || n > (1u << 16)) return false;
    ledger->assign(n, TradeLedger{});
    for (TradeLedger& l : *ledger) {
      l.any_applied = get_bool(r);
      l.applied_hi = r.get_u64();
      l.last_nonce = crypto::get_nonce(r);
      l.last_reply = r.get_bytes();
    }
  }

  if (!get_matrix_i64(r, verify_)) return false;
  if (!get_matrix_i64(r, drift_)) return false;
  const std::uint32_t streak_rows = r.get_u32();
  if (!r.ok() || streak_rows > (1u << 16)) return false;
  drift_streak_.assign(streak_rows, {});
  for (auto& row : drift_streak_) {
    const std::uint32_t cols = r.get_u32();
    if (!r.ok() || cols > (1u << 16)) return false;
    row.assign(cols, 0);
    for (auto& v : row) v = r.get_u32();
  }
  persistent_drift_pairs_ = r.get_u64();

  const std::uint32_t n_rep = r.get_u32();
  if (!r.ok() || n_rep > (1u << 16)) return false;
  reported_.assign(n_rep, false);
  for (std::uint32_t i = 0; i < n_rep; ++i) reported_[i] = get_bool(r);
  seq_ = r.get_u64();
  total_ = r.get_u64();
  canrequest_ = get_bool(r);

  const std::uint32_t n_vio = r.get_u32();
  if (!r.ok() || n_vio > (1u << 20)) return false;
  last_violations_.assign(n_vio, CreditViolation{});
  for (auto& v : last_violations_) {
    v.isp_i = r.get_u64();
    v.isp_j = r.get_u64();
    v.discrepancy = r.get_i64();
  }

  BankMetrics& m = metrics_;
  for (std::uint64_t* v :
       {&m.buys_received, &m.buys_accepted, &m.buys_rejected,
        &m.sells_received, &m.snapshot_rounds, &m.credit_reports_received,
        &m.inconsistent_pairs_found, &m.bad_envelopes, &m.stale_reports,
        &m.duplicate_buys, &m.duplicate_sells, &m.stale_trades,
        &m.snapshot_rerequests, &m.settlement_transfers, &m.settlement_bytes})
    *v = r.get_u64();
  m.epennies_minted = r.get_i64();
  m.epennies_burned = r.get_i64();

  get_rng(r, rng_);
  return r.ok() && r.at_end();
}

void Bank::apply_wal_record(std::uint8_t op, const crypto::Bytes& payload) {
  // Detach both the WAL sink (no re-logging) and the audit journal (those
  // events were recorded pre-crash; replay must not duplicate them).
  store::WalSink* saved_wal = wal_;
  AuditJournal* saved_journal = journal_;
  wal_ = nullptr;
  journal_ = nullptr;
  crypto::ByteReader r(payload);
  switch (static_cast<WalOp>(op)) {
    case WalOp::kOnBuy: {
      const std::size_t g = r.get_u64();
      const crypto::Bytes wire = r.get_bytes();
      if (r.ok()) on_buy(g, wire);
      break;
    }
    case WalOp::kOnSell: {
      const std::size_t g = r.get_u64();
      const crypto::Bytes wire = r.get_bytes();
      if (r.ok()) on_sell(g, wire);
      break;
    }
    case WalOp::kOnReply: {
      const std::size_t g = r.get_u64();
      const crypto::Bytes wire = r.get_bytes();
      if (r.ok()) on_reply(g, wire);
      break;
    }
    case WalOp::kStartSnapshot:
      start_snapshot();
      break;
    case WalOp::kResendRequests:
      resend_requests();
      break;
  }
  wal_ = saved_wal;
  journal_ = saved_journal;
}

}  // namespace zmail::core
