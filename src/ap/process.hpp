// Abstract Protocol process: a set of guarded actions over local state.
//
// Section 3 of the paper defines three guard forms:
//   (1) a boolean expression over the process's own constants/variables,
//   (2) a receive guard  "rcv <message> from q",
//   (3) a timeout guard over the *global* state (all processes + channels).
// Subclasses register one Action per pseudocode action; the Scheduler picks
// enabled actions under weak fairness.
#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "ap/message.hpp"

namespace zmail::ap {

class Scheduler;
class GlobalView;

class Process {
 public:
  Process() = default;
  virtual ~Process() = default;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcessId id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }

 protected:
  // Form (1): local boolean guard.
  void add_action(std::string name, std::function<bool()> guard,
                  std::function<void()> body);

  // Form (2): receive guard; enabled when the head of some incoming channel
  // is a message of `msg_type`.  The handler receives that message.
  // Takes a view so interned net::MsgType tags convert implicitly.
  void add_receive(std::string_view msg_type,
                   std::function<void(const Message&)> handler);

  // Form (3): timeout guard over global state.
  void add_timeout(std::string name,
                   std::function<bool(const GlobalView&)> guard,
                   std::function<void()> body);

  // "send <message> to q" — appends to the channel from this process to q.
  void send(ProcessId to, std::string_view type, crypto::Bytes payload = {});

  Scheduler& scheduler() const;

 private:
  friend class Scheduler;

  enum class GuardKind { kLocal, kReceive, kTimeout };

  struct Action {
    std::string name;
    GuardKind kind;
    std::function<bool()> local_guard;                    // kLocal
    std::string msg_type;                                 // kReceive
    std::function<void(const Message&)> receive_body;     // kReceive
    std::function<bool(const GlobalView&)> timeout_guard; // kTimeout
    std::function<void()> body;                           // kLocal/kTimeout
  };

  Scheduler* scheduler_ = nullptr;
  ProcessId id_ = kNoProcess;
  std::string name_;
  std::vector<Action> actions_;
};

}  // namespace zmail::ap
