file(REMOVE_RECURSE
  "CMakeFiles/zmail_core.dir/ap_spec.cpp.o"
  "CMakeFiles/zmail_core.dir/ap_spec.cpp.o.d"
  "CMakeFiles/zmail_core.dir/audit.cpp.o"
  "CMakeFiles/zmail_core.dir/audit.cpp.o.d"
  "CMakeFiles/zmail_core.dir/bank.cpp.o"
  "CMakeFiles/zmail_core.dir/bank.cpp.o.d"
  "CMakeFiles/zmail_core.dir/federated_system.cpp.o"
  "CMakeFiles/zmail_core.dir/federated_system.cpp.o.d"
  "CMakeFiles/zmail_core.dir/federation.cpp.o"
  "CMakeFiles/zmail_core.dir/federation.cpp.o.d"
  "CMakeFiles/zmail_core.dir/isp.cpp.o"
  "CMakeFiles/zmail_core.dir/isp.cpp.o.d"
  "CMakeFiles/zmail_core.dir/mailing_list.cpp.o"
  "CMakeFiles/zmail_core.dir/mailing_list.cpp.o.d"
  "CMakeFiles/zmail_core.dir/messages.cpp.o"
  "CMakeFiles/zmail_core.dir/messages.cpp.o.d"
  "CMakeFiles/zmail_core.dir/scenario.cpp.o"
  "CMakeFiles/zmail_core.dir/scenario.cpp.o.d"
  "CMakeFiles/zmail_core.dir/system.cpp.o"
  "CMakeFiles/zmail_core.dir/system.cpp.o.d"
  "libzmail_core.a"
  "libzmail_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zmail_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
