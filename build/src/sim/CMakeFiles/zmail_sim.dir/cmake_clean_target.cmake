file(REMOVE_RECURSE
  "libzmail_sim.a"
)
