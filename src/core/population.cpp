#include "core/population.hpp"

#include <bit>

namespace zmail::core {

// Raw column sections are written as the in-memory (little-endian) bytes;
// a big-endian port would need byte-swapping load/store here.
static_assert(std::endian::native == std::endian::little,
              "ZSNP v2 column sections are little-endian");
static_assert(sizeof(Money) == sizeof(std::int64_t) &&
                  alignof(Money) == alignof(std::int64_t),
              "Money must column-pack as a bare i64 (micros)");

const char* Population::column_name(Column c) noexcept {
  switch (c) {
    case Column::kAccount: return "account";
    case Column::kBalance: return "balance";
    case Column::kSent: return "sent";
    case Column::kLimit: return "limit";
    case Column::kBlockedToday: return "blocked_today";
    case Column::kWarnings: return "warnings";
    case Column::kQuarantined: return "quarantined";
    case Column::kLifetimeSent: return "lifetime_sent";
    case Column::kLifetimeReceivedPaid: return "lifetime_received_paid";
    case Column::kLifetimeEpenniesBought: return "lifetime_epennies_bought";
    case Column::kLifetimeEpenniesSold: return "lifetime_epennies_sold";
  }
  return "?";
}

void Population::reset(std::size_t n, Money account, EPenny balance,
                       std::int64_t limit) {
  n_ = n;
  account_.assign(n, account);
  balance_.assign(n, balance);
  limit_.assign(n, limit);
  warnings_.assign(n, 0);
  quarantined_.assign(n, 0);
  lifetime_sent_.assign(n, 0);
  lifetime_received_paid_.assign(n, 0);
  lifetime_bought_.assign(n, 0);
  lifetime_sold_.assign(n, 0);
  // sent[] first so the i64 block sits at offset 0 of the (max-aligned)
  // allocation; blocked_today[] is byte-granular and follows.
  day_arena_bytes_ = n * sizeof(std::int64_t) + n * sizeof(std::uint8_t);
  if (day_arena_bytes_ != 0) {
    day_arena_ = std::make_unique<std::uint8_t[]>(day_arena_bytes_);
    sent_ = reinterpret_cast<std::int64_t*>(day_arena_.get());
    blocked_ = day_arena_.get() + n * sizeof(std::int64_t);
    reset_day();
  } else {
    day_arena_.reset();
    sent_ = nullptr;
    blocked_ = nullptr;
  }
  policy_.clear();
}

const std::uint8_t* Population::column_data(Column c) const noexcept {
  switch (c) {
    case Column::kAccount:
      return reinterpret_cast<const std::uint8_t*>(account_.data());
    case Column::kBalance:
      return reinterpret_cast<const std::uint8_t*>(balance_.data());
    case Column::kSent:
      return reinterpret_cast<const std::uint8_t*>(sent_);
    case Column::kLimit:
      return reinterpret_cast<const std::uint8_t*>(limit_.data());
    case Column::kBlockedToday:
      return blocked_;
    case Column::kWarnings:
      return reinterpret_cast<const std::uint8_t*>(warnings_.data());
    case Column::kQuarantined:
      return quarantined_.data();
    case Column::kLifetimeSent:
      return reinterpret_cast<const std::uint8_t*>(lifetime_sent_.data());
    case Column::kLifetimeReceivedPaid:
      return reinterpret_cast<const std::uint8_t*>(
          lifetime_received_paid_.data());
    case Column::kLifetimeEpenniesBought:
      return reinterpret_cast<const std::uint8_t*>(lifetime_bought_.data());
    case Column::kLifetimeEpenniesSold:
      return reinterpret_cast<const std::uint8_t*>(lifetime_sold_.data());
  }
  return nullptr;
}

bool Population::load_column(Column c, const std::uint8_t* data,
                             std::size_t len) {
  if (len != column_bytes(c)) return false;
  if (len != 0) std::memcpy(mutable_column_data(c), data, len);
  return true;
}

}  // namespace zmail::core
