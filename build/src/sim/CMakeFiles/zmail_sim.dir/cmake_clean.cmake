file(REMOVE_RECURSE
  "CMakeFiles/zmail_sim.dir/simulator.cpp.o"
  "CMakeFiles/zmail_sim.dir/simulator.cpp.o.d"
  "libzmail_sim.a"
  "libzmail_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zmail_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
