// E12 — Reconciliation scalability (paper Sections 1.3 / 4.4).
//
// Claim: Zmail "is an accounting relationship among compliant ISPs, which
// reconcile payments to and from their users" — the bank's work is per-ISP,
// not per-message, so verification stays cheap as the system grows.
//
// Regenerates:
//   E12.a  snapshot-round cost vs the number of ISPs: messages exchanged,
//          report bytes, verify wall-clock — run as a parallel sweep with
//          --replicas replicas per deployment size
//   E12.b  the per-message amortization: reconciliation bytes per email as
//          volume grows
//   E12.c  verify-matrix wall-clock at bank scale (pure computation)
//   E12.d  the sweep harness itself: merged statistics must be bit-identical
//          at 1 thread and --threads, and the wall-clock speedup of an
//          8-replica sweep is recorded in BENCH_e12_reconciliation_scale.json
#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "core/system.hpp"
#include "util/table.hpp"
#include "workload/traffic.hpp"

using namespace zmail;

namespace {

// One replica of the snapshot-round workload: n ISPs exchange a burst of
// mail, then the bank runs a full snapshot round.  All randomness descends
// from the sweep-derived seed.
sweep::MetricBag snapshot_round_replica(const sweep::Point& point,
                                        std::uint64_t seed) {
  const auto n = static_cast<std::size_t>(point.param("isps"));
  core::ZmailParams p;
  p.n_isps = n;
  p.users_per_isp = 4;
  p.initial_user_balance = 1'000;
  p.record_inboxes = false;
  core::ZmailSystem sys(p, seed);
  Rng seeder(seed ^ 0x517EED5ULL);
  workload::CorpusGenerator corpus(workload::CorpusParams{}, seeder.split());
  workload::TrafficGenerator traffic(sys, workload::TrafficParams{}, corpus,
                                     seeder.split());
  traffic.build_contacts();
  traffic.burst(static_cast<std::size_t>(point.param("burst", 200)));
  sys.run_for(sim::kHour);

  const std::uint64_t dg_before = sys.network().datagrams_sent();
  const auto t0 = std::chrono::steady_clock::now();
  sys.start_snapshot();
  sys.run_for(30 * sim::kMinute);
  const auto t1 = std::chrono::steady_clock::now();

  sweep::MetricBag bag;
  bag.stat("round_us").add(
      std::chrono::duration<double, std::micro>(t1 - t0).count());
  bag.stat("round_msgs").add(
      static_cast<double>(sys.network().datagrams_sent() - dg_before));
  bag.count("events", static_cast<double>(sys.simulator().events_executed()));
  bag.count("emails_delivered",
            static_cast<double>(sys.total_isp_metrics().emails_delivered));
  return bag;
}

void e12a_isp_sweep(bench::Bench& harness) {
  const std::vector<std::size_t> sizes =
      harness.options().smoke ? std::vector<std::size_t>{2, 4}
                              : std::vector<std::size_t>{2, 4, 8, 16, 32};
  std::vector<sweep::Point> grid;
  for (std::size_t n : sizes)
    grid.push_back(
        {"isps=" + std::to_string(n), {{"isps", static_cast<double>(n)}}});

  const sweep::SweepResult result = harness.run_sweep(
      "e12a_isp_sweep", grid,
      [](const sweep::Point& pt, std::uint64_t seed, std::size_t) {
        return snapshot_round_replica(pt, seed);
      });

  Table t({"ISPs", "request+reply msgs", "report bytes",
           "round wall-clock (us)"});
  double us_small = 0, us_large = 0;
  for (const auto& pr : result.points) {
    const auto n = static_cast<std::size_t>(pr.point.param("isps"));
    // A report is one credit vector: n * 8 bytes + envelope overhead.
    const std::uint64_t report_bytes = n * (n * 8 + 64);
    const double us = pr.merged.find_stat("round_us")->mean();
    t.add_row({Table::num(std::uint64_t{n}),
               Table::num(pr.merged.find_stat("round_msgs")->mean(), 0),
               Table::num(report_bytes), Table::num(us, 0)});
    if (n == sizes.front()) us_small = us;
    if (n == sizes.back()) us_large = us;
  }
  t.print("E12.a  snapshot-round cost vs deployment size (" +
          std::to_string(result.replicas) + " replica(s)/point)");
  bench::check(us_large < us_small * 400,
               "round cost grows polynomially in ISPs, not explosively");
}

void e12b_amortization() {
  Table t({"emails in the billing period", "reconciliation bytes",
           "bytes per email"});
  double per_email_small = 0, per_email_large = 0;
  for (std::size_t volume : {1'000u, 10'000u, 100'000u}) {
    // 8 ISPs; reconciliation data is independent of volume.
    const std::size_t n = 8;
    const double bytes = static_cast<double>(n) * (n * 8 + 64) + n * 72.0;
    const double per_email = bytes / static_cast<double>(volume);
    t.add_row({Table::num(std::uint64_t{volume}), Table::num(bytes, 0),
               Table::num(per_email, 4)});
    if (volume == 1'000) per_email_small = per_email;
    if (volume == 100'000) per_email_large = per_email;
  }
  t.print("E12.b  reconciliation overhead amortized per email (8 ISPs)");
  bench::check(per_email_large < per_email_small / 50,
               "per-email reconciliation cost vanishes with volume");
}

void e12c_verify_wallclock() {
  Table t({"ISPs", "verify pairs", "verify wall-clock (us)"});
  for (std::size_t n : {64u, 256u, 1'024u}) {
    // Pure bank computation: fill a synthetic antisymmetric matrix and
    // time the pairwise check, exactly as Bank::verify_round performs it.
    std::vector<std::vector<EPenny>> verify(n, std::vector<EPenny>(n, 0));
    Rng rng(124);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const EPenny v = rng.uniform_int(-1'000, 1'000);
        verify[j][i] = v;
        verify[i][j] = -v;
      }
    }
    const auto t0 = std::chrono::steady_clock::now();
    std::size_t violations = 0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        if (verify[j][i] + verify[i][j] != 0) ++violations;
    const auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    t.add_row({Table::num(std::uint64_t{n}),
               Table::num(std::uint64_t{n * (n - 1) / 2}),
               Table::num(us, 0)});
    bench::check(violations == 0, "synthetic honest matrix verifies clean");
  }
  t.print("E12.c  bank verify wall-clock at scale");
}

// True when two merged bags carry bit-identical statistics (exact double
// equality — the determinism contract of the sweep harness, not a
// tolerance comparison).  Stats named *_us are wall-clock measurements and
// legitimately differ run to run, so they are excluded.
bool bags_identical(const sweep::MetricBag& a, const sweep::MetricBag& b) {
  if (a.counters() != b.counters()) return false;
  if (a.stats().size() != b.stats().size()) return false;
  for (const auto& [name, s] : a.stats()) {
    if (name.size() >= 3 && name.compare(name.size() - 3, 3, "_us") == 0)
      continue;
    const OnlineStats* o = b.find_stat(name);
    if (!o) return false;
    if (s.count() != o->count() || s.mean() != o->mean() ||
        s.variance() != o->variance() || s.min() != o->min() ||
        s.max() != o->max())
      return false;
  }
  return true;
}

void e12d_parallel_speedup(bench::Bench& harness) {
  // The acceptance workload: an 8-replica sweep of the 8-ISP snapshot
  // round, once on 1 thread and once on --threads.  Merged statistics must
  // match bit-for-bit; the wall-clock ratio is the harness speedup.
  const std::size_t replicas =
      harness.options().smoke
          ? 2
          : std::max<std::size_t>(8, harness.options().replicas);
  const std::size_t threads =
      std::max<std::size_t>(1, harness.options().threads);
  const sweep::Point point{"isps=8", {{"isps", 8.0}, {"burst", 400}}};
  const auto fn = [](const sweep::Point& pt, std::uint64_t seed,
                     std::size_t) { return snapshot_round_replica(pt, seed); };

  sweep::SweepOptions serial;
  serial.base_seed = harness.options().seed;
  serial.replicas = replicas;
  serial.threads = 1;
  const auto r1 = harness.run_sweep("e12d_threads_1", {point}, serial, fn);

  sweep::SweepOptions parallel = serial;
  parallel.threads = threads;
  const auto rn = harness.run_sweep("e12d_threads_n", {point}, parallel, fn);

  const double speedup =
      rn.wall_seconds > 0 ? r1.wall_seconds / rn.wall_seconds : 0.0;
  const unsigned hw = std::thread::hardware_concurrency();
  Table t({"threads", "wall (s)", "speedup"});
  t.add_row({"1", Table::num(r1.wall_seconds, 3), "1.00"});
  t.add_row({Table::num(std::uint64_t{threads}),
             Table::num(rn.wall_seconds, 3), Table::num(speedup, 2)});
  t.print("E12.d  " + std::to_string(replicas) +
          "-replica sweep wall-clock (hardware threads: " +
          std::to_string(hw) + ")");

  json::Value& m = harness.metrics();
  m["e12d_replicas"] = static_cast<std::uint64_t>(replicas);
  m["e12d_threads"] = static_cast<std::uint64_t>(threads);
  m["e12d_wall_seconds_1_thread"] = r1.wall_seconds;
  m["e12d_wall_seconds_n_threads"] = rn.wall_seconds;
  m["e12d_speedup"] = speedup;
  m["hardware_concurrency"] = static_cast<std::uint64_t>(hw);

  bench::check(bags_identical(r1.points[0].merged, rn.points[0].merged),
               "merged statistics bit-identical at 1 and " +
                   std::to_string(threads) + " thread(s)");
  // The >= 3x target needs real cores to spread over; below 4 hardware
  // threads (or a 1-thread invocation) the ratio is recorded in the JSON
  // but not asserted.
  if (threads >= 4 && hw >= 4) {
    bench::check(speedup >= 3.0, "8-replica sweep >= 3x faster at " +
                                     std::to_string(threads) + " threads");
  } else {
    std::printf("note: speedup check skipped (threads=%zu, hardware=%u)\n",
                threads, hw);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Bench harness("e12_reconciliation_scale", argc, argv);
  std::printf("=== E12: reconciliation scalability ===\n");
  e12a_isp_sweep(harness);
  e12b_amortization();
  e12c_verify_wallclock();
  e12d_parallel_speedup(harness);
  return harness.finish();
}
