// Zero-sum invariants under failure: the InvariantAuditor, the bank's
// idempotent trade ledger, the ISP's retry/backoff machinery, and the
// reliable email transport.
#include "core/invariants.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/bank.hpp"
#include "core/isp.hpp"
#include "core/system.hpp"
#include "net/address.hpp"
#include "net/faults.hpp"

namespace zmail::core {
namespace {

ZmailParams small_params() {
  ZmailParams p;
  p.n_isps = 2;
  p.users_per_isp = 2;
  p.initial_user_balance = 50;
  p.default_daily_limit = 100;
  p.initial_avail = 100;
  p.minavail = 50;
  p.maxavail = 200;
  return p;
}

net::EmailMessage mail(std::size_t fi, std::size_t fu, std::size_t ti,
                       std::size_t tu) {
  return net::make_email(net::make_user_address(fi, fu),
                         net::make_user_address(ti, tu), "s", "b",
                         net::MailClass::kLegitimate);
}

std::string first_message(const InvariantAuditor& aud) {
  return aud.report().messages.empty() ? "" : aud.report().messages.front();
}

TEST(InvariantAuditorTest, CleanTimedRunAuditsGreen) {
  ZmailParams p;
  p.n_isps = 3;
  p.users_per_isp = 4;
  p.initial_user_balance = 1'000;
  p.default_daily_limit = 10'000;
  p.record_inboxes = false;
  ZmailSystem sys(p, 21);
  sys.enable_bank_trading();

  InvariantAuditor auditor(sys);
  auditor.run_continuously(sim::kMinute);

  Rng rng(22);
  for (int i = 0; i < 60; ++i) {
    const std::size_t src = rng.next_below(p.n_isps);
    const std::size_t dst = (src + 1) % p.n_isps;
    sys.send_email(net::make_user_address(src, rng.next_below(p.users_per_isp)),
                   net::make_user_address(dst, rng.next_below(p.users_per_isp)),
                   "t", "b" + std::to_string(i));
    sys.run_for(sim::kMinute);
  }
  sys.start_snapshot();
  sys.run_for(sim::kHour);

  auditor.check_now();
  EXPECT_TRUE(auditor.report().ok()) << first_message(auditor);
  EXPECT_GT(auditor.report().checks, 60u);
  EXPECT_EQ(auditor.report().replays_absorbed, 0u);
}

TEST(BankIdempotencyTest, DuplicatedBuyMintsOnceAndReplaysTheReply) {
  Rng rng(101);
  const crypto::KeyPair keys = crypto::generate_keypair(rng);
  const ZmailParams p = small_params();
  Isp isp(0, p, keys.pub, 7);
  Bank bank(p, keys, 8);

  isp.set_avail(10);  // below minavail: triggers a buy of 190
  isp.maybe_trade_with_bank();
  crypto::Bytes wire;
  for (const auto& o : isp.take_outbox()) wire = o.payload;
  ASSERT_FALSE(wire.empty());

  const crypto::Bytes r1 = bank.on_buy(0, wire);
  const crypto::Bytes r2 = bank.on_buy(0, wire);  // network duplicate
  EXPECT_EQ(r1, r2);  // the cached sealed reply is replayed byte-for-byte
  EXPECT_EQ(bank.metrics().duplicate_buys, 1u);
  EXPECT_EQ(bank.metrics().epennies_minted, 190);  // once, not twice

  isp.on_buyreply(r1);
  EXPECT_EQ(isp.avail(), 200);
  isp.on_buyreply(r2);  // duplicate reply: nonce already consumed
  EXPECT_EQ(isp.avail(), 200);
  EXPECT_EQ(isp.metrics().bad_nonce_replies, 1u);
}

TEST(BankIdempotencyTest, OutOfDateTradeWireIsDropped) {
  Rng rng(102);
  const crypto::KeyPair keys = crypto::generate_keypair(rng);
  const ZmailParams p = small_params();
  Isp isp(0, p, keys.pub, 9);
  Bank bank(p, keys, 10);

  isp.set_avail(10);
  isp.maybe_trade_with_bank();
  crypto::Bytes wire1;
  for (const auto& o : isp.take_outbox()) wire1 = o.payload;
  isp.on_buyreply(bank.on_buy(0, wire1));

  isp.set_avail(10);  // a second, newer buy
  isp.maybe_trade_with_bank();
  crypto::Bytes wire2;
  for (const auto& o : isp.take_outbox()) wire2 = o.payload;
  isp.on_buyreply(bank.on_buy(0, wire2));
  const EPenny minted = bank.metrics().epennies_minted;

  // A straggler copy of the *older* wire must be dropped, not re-applied
  // and not answered from the (newer) cache.
  EXPECT_TRUE(bank.on_buy(0, wire1).empty());
  EXPECT_EQ(bank.metrics().stale_trades, 1u);
  EXPECT_EQ(bank.metrics().epennies_minted, minted);
}

TEST(IspRetryTest, LostBuyReplyIsRecoveredByBackoffRetry) {
  Rng rng(103);
  const crypto::KeyPair keys = crypto::generate_keypair(rng);
  ZmailParams p = small_params();
  p.retry.enabled = true;  // base 2s, jitter 25%: first retry due <= 2.5s
  Isp isp(0, p, keys.pub, 11);
  Bank bank(p, keys, 12);

  isp.set_avail(10);
  isp.maybe_trade_with_bank(/*now=*/0);
  crypto::Bytes wire;
  for (const auto& o : isp.take_outbox()) wire = o.payload;
  bank.on_buy(0, wire);  // the bank applies it, but the reply is LOST
  EXPECT_TRUE(isp.bank_exchange_pending());

  isp.poll_retries(sim::kSecond);  // before any backoff deadline
  EXPECT_TRUE(isp.outbox_empty());

  isp.poll_retries(3 * sim::kSecond);
  auto out = isp.take_outbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, kMsgBuy);
  EXPECT_EQ(out[0].payload, wire);  // same sealed bytes, same nonce
  EXPECT_EQ(isp.metrics().bank_retries, 1u);

  // The bank absorbs the duplicate and replays the cached reply; the
  // exchange completes exactly once.
  const crypto::Bytes reply = bank.on_buy(0, out[0].payload);
  EXPECT_EQ(bank.metrics().duplicate_buys, 1u);
  isp.on_buyreply(reply);
  EXPECT_EQ(isp.avail(), 200);
  EXPECT_FALSE(isp.bank_exchange_pending());
  EXPECT_EQ(bank.metrics().epennies_minted, 190);

  // Settled exchanges never retry again.
  isp.poll_retries(sim::kHour);
  EXPECT_TRUE(isp.outbox_empty());
}

TEST(ReliableTransportTest, EveryPaidEmailLandsUnderHeavyLoss) {
  ZmailParams p = small_params();
  p.initial_user_balance = 200;
  p.default_daily_limit = 1'000;
  p.retry.enabled = true;
  p.reliable_email_transport = true;
  ZmailSystem sys(p, 33);

  net::FaultPlan plan;
  plan.rates.drop = 0.25;
  net::FaultInjector inj(plan, 44);
  sys.attach_faults(&inj);

  InvariantAuditor auditor(sys);
  for (int i = 0; i < 40; ++i) {
    sys.send_email(net::make_user_address(0, 0), net::make_user_address(1, 1),
                   "lossy", "m" + std::to_string(i));
    sys.run_for(30 * sim::kSecond);
  }
  sys.run_for(sim::kHour);
  sys.attach_faults(nullptr);

  const IspMetrics m = sys.total_isp_metrics();
  EXPECT_EQ(m.emails_sent_compliant, 40u);
  EXPECT_EQ(m.emails_received_compliant, 40u);
  EXPECT_EQ(m.emails_refunded, 0u);
  EXPECT_GT(m.emails_retransmitted, 0u);
  EXPECT_EQ(sys.pending_transfers(), 0u);
  EXPECT_TRUE(sys.conservation_holds());
  auditor.check_now();
  EXPECT_TRUE(auditor.report().ok()) << first_message(auditor);
}

// Drives one complete snapshot round at the unit level (no network).
void run_round(Bank& bank, Isp& isp0, Isp& isp1,
               std::vector<Outbound>* mail_out = nullptr) {
  auto requests = bank.start_snapshot();
  for (auto& [idx, wire] : requests) (idx == 0 ? isp0 : isp1).on_request(wire);
  isp0.on_quiesce_timeout();
  isp1.on_quiesce_timeout();
  for (auto& o : isp0.take_outbox()) {
    if (o.type == kMsgReply)
      bank.on_reply(0, o.payload);
    else if (mail_out)
      mail_out->push_back(std::move(o));
  }
  for (auto& o : isp1.take_outbox())
    if (o.type == kMsgReply) bank.on_reply(1, o.payload);
}

TEST(PersistentDriftTest, SingleRoundSkewSelfCancels) {
  Rng rng(104);
  const crypto::KeyPair keys = crypto::generate_keypair(rng);
  const ZmailParams p = small_params();
  Isp isp0(0, p, keys.pub, 13);
  Isp isp1(1, p, keys.pub, 14);
  Bank bank(p, keys, 15);

  // isp0 pays for a send whose delivery straggles past the next round: the
  // +1 is reported this round, the -1 only in the following one.
  EXPECT_EQ(isp0.user_send(0, 1, 0, mail(0, 0, 1, 0)), SendResult::kSentPaid);
  crypto::Bytes in_flight;
  for (const auto& o : isp0.take_outbox()) in_flight = o.payload;

  run_round(bank, isp0, isp1);
  EXPECT_EQ(bank.metrics().inconsistent_pairs_found, 1u);
  EXPECT_EQ(bank.persistent_drift_pairs(), 0u);  // streak of one round

  isp1.on_email(0, in_flight);  // the straggler lands: -1 in the new epoch
  run_round(bank, isp0, isp1);
  EXPECT_EQ(bank.metrics().inconsistent_pairs_found, 2u);
  EXPECT_EQ(bank.persistent_drift_pairs(), 0u);  // drift netted to zero

  run_round(bank, isp0, isp1);  // and stays clean from here on
  EXPECT_EQ(bank.metrics().inconsistent_pairs_found, 2u);
  EXPECT_EQ(bank.persistent_drift_pairs(), 0u);
}

TEST(PersistentDriftTest, FreeRidingPairStaysFlagged) {
  Rng rng(105);
  const crypto::KeyPair keys = crypto::generate_keypair(rng);
  const ZmailParams p = small_params();
  Isp isp0(0, p, keys.pub, 16);
  Isp isp1(1, p, keys.pub, 17);
  Bank bank(p, keys, 18);
  isp0.set_misbehavior(Isp::Misbehavior::kFreeRide);

  const auto cheat_once = [&] {
    isp0.user_send(0, 1, 0, mail(0, 0, 1, 0));
    for (const auto& o : isp0.take_outbox())
      if (o.type == kMsgEmail) isp1.on_email(0, o.payload);
  };

  cheat_once();
  run_round(bank, isp0, isp1);
  EXPECT_EQ(bank.persistent_drift_pairs(), 0u);  // one round could be skew

  cheat_once();
  run_round(bank, isp0, isp1);
  EXPECT_EQ(bank.persistent_drift_pairs(), 1u);  // two rounds cannot

  cheat_once();
  run_round(bank, isp0, isp1);
  EXPECT_EQ(bank.persistent_drift_pairs(), 1u);  // counted once per episode
}

}  // namespace
}  // namespace zmail::core
