#include "baselines/pow_mail.hpp"

#include <cmath>

namespace zmail::baselines {

PowSendRecord PowMailer::send(const std::string& recipient) {
  PowSendRecord rec;
  rec.stamp = crypto::pow_solve(recipient, params_.difficulty_bits,
                                counter_seed_, &rec.hash_attempts);
  counter_seed_ = rec.stamp.counter + 1;
  rec.projected_seconds =
      static_cast<double>(rec.hash_attempts) / params_.sender_hash_rate;
  total_attempts_ += rec.hash_attempts;
  ++messages_;
  return rec;
}

double PowMailer::expected_attempts() const noexcept {
  return std::pow(2.0, params_.difficulty_bits);
}

double PowMailer::max_daily_rate() const noexcept {
  const double secs_per_msg = expected_attempts() / params_.sender_hash_rate;
  return secs_per_msg > 0.0 ? 86'400.0 / secs_per_msg : 0.0;
}

}  // namespace zmail::baselines
