// Email addresses: `local@domain` with RFC-821-ish validation.
//
// In the simulation a domain names an ISP ("isp3.example") and a local part
// names a user within it ("u17"); the MX directory resolves domains to
// simulated hosts.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace zmail::net {

struct EmailAddress {
  std::string local;
  std::string domain;

  std::string str() const { return local + "@" + domain; }

  bool operator==(const EmailAddress&) const = default;
  auto operator<=>(const EmailAddress&) const = default;
};

// Parses "local@domain"; rejects empty parts, whitespace, angle brackets and
// a second '@'.  Returns nullopt on malformed input.
std::optional<EmailAddress> parse_address(std::string_view s);

// Parses the bracketed form used in SMTP paths: "<local@domain>".
std::optional<EmailAddress> parse_path(std::string_view s);

// Convenience constructor for simulated populations: user `u` at ISP `i`.
EmailAddress make_user_address(std::size_t isp_index, std::size_t user_index);

// The reverse mapping; returns false if the address is not of the simulated
// "u<k>@isp<i>.example" shape.
bool decode_user_address(const EmailAddress& a, std::size_t& isp_index,
                         std::size_t& user_index);

// Domain of the simulated ISP `i`.
std::string isp_domain(std::size_t isp_index);

}  // namespace zmail::net
