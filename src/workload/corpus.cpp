#include "workload/corpus.hpp"

#include <cctype>

namespace zmail::workload {

CorpusGenerator::CorpusGenerator(const CorpusParams& params, zmail::Rng rng)
    : params_(params), rng_(rng) {}

std::string CorpusGenerator::token(bool spam_vocab, std::uint64_t rank) const {
  // Deterministic synthetic words: prefix encodes the vocabulary, the rank
  // is spelled in letters so tokenization round-trips.
  std::string word = spam_vocab ? "zx" : "w";
  std::uint64_t v = rank;
  do {
    word += static_cast<char>('a' + (v % 26));
    v /= 26;
  } while (v > 0);
  return word;
}

bool CorpusGenerator::is_spam_token(const std::string& t) const {
  return t.size() >= 2 && t[0] == 'z' && t[1] == 'x';
}

std::string CorpusGenerator::draw_body(double spam_fraction) {
  std::string body;
  for (std::size_t i = 0; i < params_.tokens_per_message; ++i) {
    const bool spam_vocab = rng_.bernoulli(spam_fraction);
    const std::uint64_t vocab =
        spam_vocab ? params_.spam_vocab : params_.ham_vocab;
    const std::uint64_t rank = rng_.zipf(vocab, params_.zipf_exponent) - 1;
    if (!body.empty()) body += ' ';
    body += token(spam_vocab, rank);
  }
  return body;
}

std::string CorpusGenerator::ham_body() { return draw_body(0.0); }

std::string CorpusGenerator::spam_body() {
  return draw_body(1.0 - params_.spam_ham_mix);
}

std::string CorpusGenerator::newsletter_body() {
  return draw_body(params_.newsletter_spam_mix);
}

std::string CorpusGenerator::evade(const std::string& body, double strength) {
  // Obfuscate spam-vocabulary tokens: "zx..." -> "z-x..." / char swaps,
  // producing tokens the filter has never seen (the paper's "se><" trick).
  std::string out;
  std::string current;
  auto flush = [&]() {
    if (!current.empty() && is_spam_token(current) &&
        rng_.bernoulli(strength)) {
      // Replace a letter with a lookalike symbol, splitting the token.
      std::string mangled = current;
      const std::size_t pos = 2 + rng_.next_below(mangled.size() - 2);
      mangled[pos] = '0';  // digit breaks the learned token
      out += mangled;
    } else {
      out += current;
    }
    current.clear();
  };
  for (char c : body) {
    if (c == ' ') {
      flush();
      out += ' ';
    } else {
      current += c;
    }
  }
  flush();
  return out;
}

net::EmailMessage CorpusGenerator::make_message(const net::EmailAddress& from,
                                                const net::EmailAddress& to,
                                                net::MailClass cls) {
  std::string subject, body;
  switch (cls) {
    case net::MailClass::kSpam:
      subject = "zxgreat zxoffer " + token(true, rng_.next_below(30));
      body = spam_body();
      break;
    case net::MailClass::kNewsletter:
      subject = "weekly wnews zxdeal";
      body = newsletter_body();
      break;
    default:
      subject = "wmeeting wnotes";
      body = ham_body();
      break;
  }
  return net::make_email(from, to, subject, body, cls);
}

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    const auto u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      current += static_cast<char>(std::tolower(u));
    } else if (!current.empty()) {
      if (current.size() >= 2) tokens.push_back(current);
      current.clear();
    }
  }
  if (current.size() >= 2) tokens.push_back(current);
  return tokens;
}

}  // namespace zmail::workload
