// HMAC-SHA256 (RFC 2104) over the from-scratch SHA-256.
//
// Used as the integrity tag inside Envelope and as the PRF behind NNC.
#pragma once

#include "crypto/bytes.hpp"
#include "crypto/sha256.hpp"

namespace zmail::crypto {

Digest hmac_sha256(const Bytes& key, const Bytes& message) noexcept;
Digest hmac_sha256(const Bytes& key, std::string_view message) noexcept;

// Constant-time digest comparison (good hygiene even in a simulation; the
// replay-resistance bench deliberately probes tag checks).
bool digest_equal(const Digest& a, const Digest& b) noexcept;

}  // namespace zmail::crypto
