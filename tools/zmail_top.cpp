// zmail_top — terminal dashboard over recorded (or live-growing) telemetry.
//
//   ./zmail_top run.csv --once          one render, then exit (CI / piping)
//   ./zmail_top run.csv                 follow mode: re-read + redraw until ^C
//   ./zmail_top run.csv --interval 2    follow-mode poll seconds (default 1)
//   ./zmail_top run.csv --width 64      sparkline width
//
// Input is the long-format CSV written by `scenario_runner --telemetry`
// (or telemetry::write_csv).  The dashboard renders:
//   - market panel: mean stamp price, per-ISP price range;
//   - mail panel: delivered/blocked/refused rates with sparklines;
//   - health panel: WAL backlogs, quiesce buffers, delivery-latency p99;
//   - engine panel: event backlog and rate per shard (partition-dependent);
//   - probe panel: the default health rules re-evaluated over the series,
//     with fire/clear transition history.
// In follow mode the CSV is re-parsed each poll, so pointing it at a file
// a running scenario rewrites gives a live view without any socket.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/probes.hpp"
#include "util/table.hpp"

using namespace zmail;

namespace {

struct Args {
  std::string csv_path;
  bool once = false;
  double interval_sec = 1.0;
  std::size_t width = 48;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s telemetry.csv [--once] [--interval SEC]"
               " [--width N]\n",
               argv0);
  return 2;
}

const telemetry::Series* find(const std::vector<telemetry::Series>& all,
                              const std::string& key) {
  for (const auto& s : all)
    if (s.key() == key) return &s;
  return nullptr;
}

std::vector<double> values_of(const telemetry::Series& s) {
  std::vector<double> v;
  v.reserve(s.points.size());
  for (const auto& p : s.points)
    v.push_back(telemetry::probe_value(s.kind, p));
  return v;
}

double last_of(const telemetry::Series& s) {
  return s.points.empty()
             ? 0.0
             : telemetry::probe_value(s.kind, s.points.back());
}

std::string fmt(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof buf, "%.3f", v);
  }
  return buf;
}

// One dashboard row: name, last value, sparkline over the whole series.
void panel_row(Table& t, const std::string& name,
               const telemetry::Series& s, std::size_t width) {
  t.add_row({name, fmt(last_of(s)), Table::sparkline(values_of(s), width)});
}

void render(const std::vector<telemetry::Series>& merged, const Args& args) {
  sim::SimTime end_ts = 0;
  for (const auto& s : merged)
    if (!s.points.empty()) end_ts = std::max(end_ts, s.points.back().t_us);
  std::printf("zmail_top — %s — sim time %.1f h\n", args.csv_path.c_str(),
              static_cast<double>(end_ts) / (3600.0 * 1e6));

  // Market panel.
  {
    Table t({"series", "last", "trend"});
    for (const char* key : {"econ.market.stamp_price_micros",
                            "econ.bank.epenny_supply",
                            "econ.total.epennies_held",
                            "econ.total.conservation_gap"})
      if (const telemetry::Series* s = find(merged, key))
        panel_row(t, key, *s, args.width);
    t.print("market");
  }

  // Mail-flow panel: world totals first, then any per-ISP latency tails.
  {
    Table t({"series", "last", "trend"});
    for (const char* key :
         {"core.total.delivered", "core.total.blocked", "core.total.refused"})
      if (const telemetry::Series* s = find(merged, key))
        panel_row(t, key, *s, args.width);
    for (const auto& s : merged)
      if (!s.engine && s.kind == telemetry::Kind::kHistogram)
        panel_row(t, s.key() + " (p99)", s, args.width);
    t.print("mail flow");
  }

  // Health panel: WAL backlogs and quiesce buffers.
  {
    Table t({"series", "last", "trend"});
    for (const auto& s : merged) {
      if (s.engine) continue;
      const bool wal = s.name.size() > 19 &&
                       s.name.rfind(".wal_backlog_records") ==
                           s.name.size() - 20;
      const bool quiesce =
          s.name.size() > 16 &&
          s.name.rfind(".quiesce_buffered") == s.name.size() - 17;
      if (wal || quiesce) panel_row(t, s.key(), *&s, args.width);
    }
    t.print("durability & quiesce");
  }

  // Engine panel (partition-dependent by nature).
  {
    Table t({"series", "last", "trend"});
    for (const auto& s : merged)
      if (s.engine && s.scope == "sim") panel_row(t, s.key(), s, args.width);
    t.print("engine");
  }

  // Probe panel: re-evaluate the default rules over the recorded series.
  {
    telemetry::ProbeEngine probes;
    for (telemetry::ProbeRule& r : telemetry::default_rules())
      probes.add_rule(std::move(r));
    const telemetry::ProbeReport report =
        probes.evaluate(merged, /*log_transitions=*/false);
    Table t({"probe", "series", "state", "last", "fires", "transitions"});
    for (const auto& p : report.probes) {
      std::string transitions;
      for (const auto& tr : p.transitions) {
        if (!transitions.empty()) transitions += " ";
        transitions += (tr.fired ? "F@" : "c@") +
                       fmt(static_cast<double>(tr.t_us) / 60e6) + "m";
      }
      t.add_row({p.rule.name, p.rule.series,
                 !p.evaluated ? "no-data" : (p.firing ? "FIRING" : "ok"),
                 fmt(p.last_value),
                 fmt(static_cast<double>(p.times_fired())),
                 transitions.empty() ? "-" : transitions});
    }
    t.print(report.ok() ? "probes (ok)" : "probes (UNHEALTHY)");
  }
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(a, "--once") == 0) {
      args.once = true;
    } else if (std::strcmp(a, "--interval") == 0) {
      const char* v = value();
      if (!v) return usage(argv[0]);
      args.interval_sec = std::strtod(v, nullptr);
      if (args.interval_sec <= 0) return usage(argv[0]);
    } else if (std::strcmp(a, "--width") == 0) {
      const char* v = value();
      if (!v) return usage(argv[0]);
      args.width = std::strtoull(v, nullptr, 10);
      if (args.width == 0) return usage(argv[0]);
    } else if (a[0] == '-') {
      return usage(argv[0]);
    } else if (args.csv_path.empty()) {
      args.csv_path = a;
    } else {
      return usage(argv[0]);
    }
  }
  if (args.csv_path.empty()) return usage(argv[0]);

  for (;;) {
    std::vector<telemetry::Series> series;
    std::string err;
    if (!telemetry::load_csv(args.csv_path, &series, &err)) {
      std::fprintf(stderr, "cannot read %s: %s\n", args.csv_path.c_str(),
                   err.c_str());
      return 1;
    }
    // The CSV may predate the derived aggregates (or come from a raw
    // registry dump); merging is idempotent, so derive unconditionally.
    const std::vector<telemetry::Series> merged =
        telemetry::merge_collected(std::move(series));
    if (!args.once) std::printf("\x1b[2J\x1b[H");  // clear + home
    render(merged, args);
    if (args.once) break;
    std::fflush(stdout);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(
            static_cast<long long>(args.interval_sec * 1000.0)));
  }
  return 0;
}
