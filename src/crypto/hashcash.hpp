// Hashcash-style proof-of-work (Back, 2002).
//
// This is the substrate for the *computational-cost* baseline of Section 2.3
// ("pricing via processing"): a sender must find a counter whose SHA-256
// together with the message stamp has `difficulty_bits` leading zero bits.
// Expected work doubles per difficulty bit, which is exactly the knob the
// baseline bench sweeps.
#pragma once

#include <cstdint>
#include <string>

#include "crypto/sha256.hpp"

namespace zmail::crypto {

struct PowStamp {
  std::string resource;      // e.g. recipient address
  std::uint64_t counter = 0; // the found solution
  int difficulty_bits = 0;
};

// Solve a stamp for `resource` at the given difficulty; `attempts_out`, when
// non-null, receives the number of hash evaluations performed (the "cost").
PowStamp pow_solve(const std::string& resource, int difficulty_bits,
                   std::uint64_t start_counter = 0,
                   std::uint64_t* attempts_out = nullptr);

// Cheap verification: a single hash.
bool pow_verify(const PowStamp& stamp);

}  // namespace zmail::crypto
