#include "core/invariants.hpp"

#include "util/assert.hpp"

namespace zmail::core {

namespace {
constexpr std::size_t kMaxMessages = 16;
}  // namespace

InvariantAuditor::InvariantAuditor(ZmailSystem& sys)
    : sys_(&sys),
      initial_real_money_(
          sys.total_real_money() +
          Money::from_epennies(sys.bank().epennies_outstanding())) {}

void InvariantAuditor::fail(std::string msg) {
  ++report_.violations;
  if (report_.messages.size() < kMaxMessages)
    report_.messages.push_back(std::move(msg));
}

void InvariantAuditor::check_now() {
  const ZmailSystem& sys = *sys_;
  const ZmailParams& params = sys.params();

  // 1. e-penny conservation: holdings == endowment + net mint.
  if (!sys.conservation_holds())
    fail("e-penny conservation broken: holdings != initial + minted - burned");
  if (sys.epennies_in_flight() < 0)
    fail("negative in-flight escrow");

  // 2. real money is only ever moved, never created.  A mint swaps dollars
  //    out of the measured accounts into the bank's vault (where they back
  //    the outstanding e-pennies) and a burn swaps them back, so the
  //    conserved quantity is accounts + vault, not accounts alone.
  if (!(sys.total_real_money() +
            Money::from_epennies(sys.bank().epennies_outstanding()) ==
        initial_real_money_))
    fail("real-money total (accounts + e-penny backing) drifted from its"
         " initial value");

  // 3. per-user limit safety and non-negative pools.
  for (std::size_t i = 0; i < params.n_isps; ++i) {
    if (!params.is_compliant(i)) continue;
    const Isp& isp = sys.isp(i);
    if (isp.avail() < 0) fail("negative avail pool at isp " + std::to_string(i));
    if (isp.buffered_paid() < 0)
      fail("negative buffered-paid escrow at isp " + std::to_string(i));
    isp.users().for_each_active([&](UserId u, ConstUserRef acc) {
      if (acc.balance < 0)
        fail("negative balance: user " + std::to_string(u.slot()) +
             " at isp " + std::to_string(i));
      if (acc.sent > acc.limit)
        fail("daily limit exceeded: user " + std::to_string(u.slot()) +
             " at isp " + std::to_string(i));
    });
  }

  // 4. nonce non-reuse: duplicates were absorbed, not re-applied.  A
  //    re-applied nonce mints or burns twice, which invariant (1) catches;
  //    here we tally how much duplication the shields ate.
  const BankMetrics& bm = sys.bank().metrics();
  report_.replays_absorbed = bm.duplicate_buys + bm.duplicate_sells +
                             bm.stale_trades + bm.stale_reports +
                             sys.total_isp_metrics().duplicate_emails_dropped;
  if (sys.bank().epennies_outstanding() < 0)
    fail("bank burned more e-pennies than it minted");

  // 5. credit consistency (unless misbehaviour was injected on purpose).
  //    Persistent drift only: a snapshot recovered after a lost request
  //    legitimately skews one pair by +/-d across two adjacent rounds, and
  //    that skew nets out; a dishonest pair keeps drifting and is counted.
  if (expect_consistent_ && sys.bank().persistent_drift_pairs() != 0)
    fail("bank saw " + std::to_string(sys.bank().persistent_drift_pairs()) +
         " ISP pair(s) in persistent credit drift without injected"
         " misbehaviour");

  ++report_.checks;
}

void InvariantAuditor::run_continuously(sim::Duration period) {
  sys_->simulator().schedule_every(period, [this] {
    check_now();
    return true;
  });
}

void InvariantAuditor::assert_ok() const {
  ZMAIL_ASSERT_MSG(report_.ok(), report_.messages.empty()
                                     ? "invariant violated"
                                     : report_.messages.front().c_str());
}

}  // namespace zmail::core
