// ShardedSystem — one Zmail world partitioned across shards, driven in
// parallel by the conservative sharded engine (sim::ShardedSimulator).
//
// Each shard is a slice-mode ZmailSystem (see core::ShardSlice): it
// registers every global host id, but owns state only for its ISPs (ISP i
// lives on shard i % shards) and, on shard 0, the Bank.  Traffic between
// hosts on different shards is resolved at the source (keyed latency +
// per-pair FIFO) and carried across the lookahead barrier in the engine's
// mailboxes; everything else never leaves its shard.
//
// With shards == 1 the facade holds a single *whole-world* ZmailSystem and
// no engine at all, so single-shard runs are byte-identical to the
// pre-sharding code path (same RNG stream, same event schedule).  With
// shards >= 2 and deterministic mode on, the merged observable state is
// bit-identical across shard counts and thread counts: keyed latency and
// fault draws, partition-independent construction seeds, a state-derived
// barrier schedule, and canonical mailbox merge order remove every source
// of partition dependence.
//
// The facade exposes the subset of ZmailSystem's API the harnesses drive
// (sends, trades, compliance flips, snapshots, crashes, time), routing each
// verb to the owning shard, plus merged observability (summed counters,
// sorted latency sample, global conservation) whose values do not depend on
// the partition.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "net/faults.hpp"
#include "sim/sharded.hpp"
#include "util/thread_pool.hpp"

namespace zmail::core {

struct ShardOptions {
  std::size_t shards = 1;
  // Worker threads driving the windows; 0 means one per shard.  Any value
  // yields the same merged world in deterministic mode.
  std::size_t threads = 0;
  // Deterministic barrier schedule + canonical mailbox merge (see
  // sim::ShardedOptions).  Off = free-running: fewer barriers, no cross-run
  // identity promise.
  bool deterministic = true;
  // Conservative lookahead override; 0 derives it from the network's
  // minimum latency (the only safe default — tests use the override to
  // exercise window edge cases, never to exceed the latency floor).
  sim::Duration lookahead = 0;
};

// Result of the engine's barrier-point audits: at every lookahead barrier
// all shards are quiescent on one global cut, and the zero-sum invariants
// must hold *there*, not just at the end of the run.
struct BarrierAudit {
  std::uint64_t checks = 0;
  std::uint64_t failures = 0;
  std::vector<std::string> messages;  // first few failures, for humans

  bool ok() const noexcept { return failures == 0; }
};

class ShardedSystem {
 public:
  explicit ShardedSystem(ZmailParams params, std::uint64_t seed = 42,
                         ShardOptions opts = {});
  ~ShardedSystem();

  // --- Verbs (routed to the owning shard) ----------------------------------
  SendOutcome send_email(const net::EmailAddress& from,
                         const net::EmailAddress& to, std::string subject,
                         std::string body,
                         net::MailClass truth = net::MailClass::kLegitimate);
  bool buy_epennies(const net::EmailAddress& user, EPenny n);
  bool sell_epennies(const net::EmailAddress& user, EPenny n);
  // End-of-day reset on every compliant ISP (the scenario `day` verb).
  void end_of_day();
  // Compliance flip, world-wide: asserts no paid mail is in flight
  // globally, reads the bank's period seq on shard 0, constructs the ISP on
  // its owner, and flips every other shard's published-compliant copy.
  void make_compliant(IspId isp);
  void start_snapshot();  // bank shard starts the round
  void crash_host(std::size_t host, sim::Duration down_for);

  // --- Periodic machinery (mirrors ZmailSystem) ----------------------------
  void enable_daily_resets();
  void enable_bank_trading(sim::Duration poll = 5 * sim::kMinute);
  void enable_periodic_snapshots(sim::Duration period);
  // Telemetry: one registry per shard, each sampling only its owned
  // entities at the same sim-time cadence, so the merged series (see
  // telemetry::merge_series) are bit-identical at any shard count.  The
  // Prometheus exposition path is single-registry-only and ignored here
  // when sharded (shards would race on the file).
  void enable_telemetry(const telemetry::TelemetryConfig& cfg);
  // Per-shard registries for merge/export (empty vector entries never
  // happen: all shards enable together).  Empty when telemetry is off.
  std::vector<const telemetry::TelemetryRegistry*> telemetry_registries()
      const;

  // Fault injection: one injector per shard, same plan and seed, keyed
  // per-pair draws (sharded mode) so the injected pattern is identical at
  // any shard count.  The facade owns the injectors.
  void attach_faults(const net::FaultPlan& plan, std::uint64_t fault_seed);

  // --- Time ----------------------------------------------------------------
  void run_for(sim::Duration d);
  void run_until_quiet(sim::Duration max = 365 * sim::kDay);
  sim::SimTime now() const noexcept;

  // --- Topology ------------------------------------------------------------
  bool sharded() const noexcept { return shards_.size() > 1; }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  // Which shard owns global host id `host` (bank_index() for the bank).
  std::size_t owner_shard(std::size_t host) const noexcept;
  ZmailSystem& shard(std::size_t s) { return *shards_.at(s); }
  const ZmailSystem& shard(std::size_t s) const { return *shards_.at(s); }

  // --- Introspection (owner-routed; state lives wholly on its shard) -------
  const ZmailParams& params() const noexcept { return shards_[0]->params(); }
  bool is_compliant(std::size_t i) const {
    return shards_[0]->params().is_compliant(i);
  }
  std::size_t bank_index() const noexcept { return shards_[0]->bank_index(); }
  Isp& isp(IspId i);
  const Isp& isp(IspId i) const;
  Bank& bank() { return shards_[0]->bank(); }
  const Bank& bank() const { return shards_[0]->bank(); }

  // --- Merged observability (partition-independent values) -----------------
  IspMetrics total_isp_metrics() const;
  LegacyHostStats total_legacy_stats() const;
  // All shards' delivery latencies, sorted ascending.  The sort is what
  // makes the float reductions (mean/sum) independent of which shard
  // observed which email; Sample::mean adds in insertion order.
  Sample merged_delivery_latency() const;
  std::uint64_t datagrams_sent() const;  // cross-shard sends counted once
  std::uint64_t bytes_sent() const;
  std::uint64_t smtp_bytes_received(std::size_t isp) const;
  std::size_t pending_transfers() const noexcept;
  std::uint64_t state_recoveries() const noexcept;
  std::uint64_t calendar_rebases() const noexcept;
  ZmailSystem::StoreTotals store_totals() const;

  // --- Global zero-sum invariants ------------------------------------------
  EPenny total_epennies() const;
  EPenny epennies_in_flight() const noexcept;
  Money total_real_money() const;
  // Global conservation: sum of per-shard holdings (per-shard escrow counts
  // drift +/- across shards; only the sum is meaningful) against the owned
  // initial endowments plus the bank's net mint.
  bool conservation_holds() const;
  // World-wide initial e-penny endowment (Σ per-shard owned shares); the
  // conservation baseline telemetry's derived gap series subtracts from.
  EPenny initial_endowment() const;
  const BarrierAudit& barrier_audit() const noexcept { return audit_; }

  // --- Engine --------------------------------------------------------------
  // nullptr when shards == 1 (no engine runs).
  const sim::ShardedStats* engine_stats() const noexcept {
    return engine_ ? &engine_->stats() : nullptr;
  }
  // Lookahead-bound violations observed anywhere (destination-network
  // clamps + engine drain clamps).  Deterministic runs must keep this 0.
  std::uint64_t horizon_clamps() const noexcept;

 private:
  void wire_shard(std::size_t s);
  void audit_barrier(sim::SimTime at);

  ShardOptions opts_;
  std::vector<std::unique_ptr<ZmailSystem>> shards_;
  std::unique_ptr<util::ThreadPool> pool_;        // null when shards == 1
  std::unique_ptr<sim::ShardedSimulator> engine_; // null when shards == 1
  std::vector<std::unique_ptr<net::FaultInjector>> injectors_;
  Money initial_real_money_ = Money::zero();
  BarrierAudit audit_;
};

}  // namespace zmail::core
