#include "core/messages.hpp"

#include <algorithm>

#include "trace/trace.hpp"

namespace zmail::core {

namespace {
constexpr std::uint8_t kTagBuy = 1;
constexpr std::uint8_t kTagBuyReply = 2;
constexpr std::uint8_t kTagSell = 3;
constexpr std::uint8_t kTagSellReply = 4;
constexpr std::uint8_t kTagRequest = 5;
constexpr std::uint8_t kTagReport = 6;
}  // namespace

namespace {
// Tag byte + (counter, prf) pair of a serialized nonce.
constexpr std::size_t kNonceWireSize = 16;
}  // namespace

std::size_t BuyRequest::serialized_size() const noexcept {
  return 1 + 8 + kNonceWireSize;
}

crypto::Bytes BuyRequest::serialize() const {
  crypto::Bytes b;
  b.reserve(serialized_size());
  crypto::put_u8(b, kTagBuy);
  crypto::put_i64(b, buyvalue);
  crypto::put_nonce(b, nonce);
  return b;
}

std::optional<BuyRequest> BuyRequest::deserialize(const crypto::Bytes& b) {
  crypto::ByteReader r(b);
  if (r.get_u8() != kTagBuy) return std::nullopt;
  BuyRequest m;
  m.buyvalue = r.get_i64();
  m.nonce = crypto::get_nonce(r);
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return m;
}

std::size_t BuyReply::serialized_size() const noexcept {
  return 1 + kNonceWireSize + 1;
}

crypto::Bytes BuyReply::serialize() const {
  crypto::Bytes b;
  b.reserve(serialized_size());
  crypto::put_u8(b, kTagBuyReply);
  crypto::put_nonce(b, nonce);
  crypto::put_u8(b, accepted ? 1 : 0);
  return b;
}

std::optional<BuyReply> BuyReply::deserialize(const crypto::Bytes& b) {
  crypto::ByteReader r(b);
  if (r.get_u8() != kTagBuyReply) return std::nullopt;
  BuyReply m;
  m.nonce = crypto::get_nonce(r);
  m.accepted = r.get_u8() != 0;
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return m;
}

std::size_t SellRequest::serialized_size() const noexcept {
  return 1 + 8 + kNonceWireSize;
}

crypto::Bytes SellRequest::serialize() const {
  crypto::Bytes b;
  b.reserve(serialized_size());
  crypto::put_u8(b, kTagSell);
  crypto::put_i64(b, sellvalue);
  crypto::put_nonce(b, nonce);
  return b;
}

std::optional<SellRequest> SellRequest::deserialize(const crypto::Bytes& b) {
  crypto::ByteReader r(b);
  if (r.get_u8() != kTagSell) return std::nullopt;
  SellRequest m;
  m.sellvalue = r.get_i64();
  m.nonce = crypto::get_nonce(r);
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return m;
}

std::size_t SellReply::serialized_size() const noexcept {
  return 1 + kNonceWireSize;
}

crypto::Bytes SellReply::serialize() const {
  crypto::Bytes b;
  b.reserve(serialized_size());
  crypto::put_u8(b, kTagSellReply);
  crypto::put_nonce(b, nonce);
  return b;
}

std::optional<SellReply> SellReply::deserialize(const crypto::Bytes& b) {
  crypto::ByteReader r(b);
  if (r.get_u8() != kTagSellReply) return std::nullopt;
  SellReply m;
  m.nonce = crypto::get_nonce(r);
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return m;
}

std::size_t SnapshotRequest::serialized_size() const noexcept {
  return 1 + 8;
}

crypto::Bytes SnapshotRequest::serialize() const {
  crypto::Bytes b;
  b.reserve(serialized_size());
  crypto::put_u8(b, kTagRequest);
  crypto::put_u64(b, seq);
  return b;
}

std::optional<SnapshotRequest> SnapshotRequest::deserialize(
    const crypto::Bytes& b) {
  crypto::ByteReader r(b);
  if (r.get_u8() != kTagRequest) return std::nullopt;
  SnapshotRequest m;
  m.seq = r.get_u64();
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return m;
}

std::size_t CreditReport::serialized_size() const noexcept {
  return 1 + 8 + 4 + 8 * credit.size();
}

crypto::Bytes CreditReport::serialize() const {
  crypto::Bytes b;
  b.reserve(serialized_size());
  crypto::put_u8(b, kTagReport);
  crypto::put_u64(b, seq);
  crypto::put_u32(b, static_cast<std::uint32_t>(credit.size()));
  for (EPenny c : credit) crypto::put_i64(b, c);
  return b;
}

std::optional<CreditReport> CreditReport::deserialize(const crypto::Bytes& b) {
  crypto::ByteReader r(b);
  if (r.get_u8() != kTagReport) return std::nullopt;
  CreditReport m;
  m.seq = r.get_u64();
  const std::uint32_t n = r.get_u32();
  // The count is attacker-controlled; never reserve more than the buffer
  // could actually carry (8 bytes per entry), or a corrupt length field
  // turns into an allocation bomb before the ok() checks run.
  m.credit.reserve(std::min<std::size_t>(n, b.size() / 8));
  for (std::uint32_t i = 0; i < n && r.ok(); ++i)
    m.credit.push_back(r.get_i64());
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return m;
}

crypto::Bytes seal(const crypto::RsaKey& key, const crypto::Bytes& plaintext,
                   Rng& rng) {
  return crypto::ncr(key, plaintext, rng).serialize();
}

std::optional<crypto::Bytes> unseal(const crypto::RsaKey& key,
                                    const crypto::Bytes& wire) {
  auto env = crypto::Envelope::deserialize(wire);
  if (!env) return std::nullopt;
  return crypto::dcr(key, *env);
}

void seal_into(const crypto::RsaKey& key, const crypto::Bytes& plaintext,
               Rng& rng, crypto::Envelope& scratch, crypto::Bytes& wire) {
  ZMAIL_PROF_SCOPE("crypto.seal");
  crypto::ncr_into(key, plaintext, rng, scratch);
  scratch.serialize_into(wire);
}

bool unseal_into(const crypto::RsaKey& key, const crypto::Bytes& wire,
                 crypto::Envelope& scratch, crypto::Bytes& plain_out) {
  ZMAIL_PROF_SCOPE("crypto.unseal");
  if (!crypto::Envelope::deserialize_into(wire, scratch)) return false;
  return crypto::dcr_into(key, scratch, plain_out);
}

}  // namespace zmail::core
