// Spam-campaign economics (paper Section 1.2, claim 1).
//
// "The cost of sending spam will increase by at least two orders of
//  magnitude ... The response rate required to break even will increase
//  similarly."
//
// The model is deliberately simple — a campaign is (volume, cost/message,
// response rate, revenue/response) — because the paper's claim is about the
// *ratio* between the SMTP regime (infrastructure-amortized cost per
// message) and the Zmail regime (one e-penny per message).
#pragma once

#include <cstdint>

#include "util/money.hpp"

namespace zmail::econ {

using zmail::Money;

// Cost regimes a campaign can run under.
struct SendingRegime {
  const char* name = "";
  Money cost_per_message;      // marginal cost of one message
  double delivery_rate = 1.0;  // fraction of sent mail actually delivered
};

// Industry-figure defaults used across the benches (2004-era estimates):
// bulk SMTP spam cost is commonly cited around $0.0001/message or less;
// Zmail prices a message at exactly one e-penny ($0.01).
SendingRegime smtp_regime() noexcept;
SendingRegime zmail_regime() noexcept;
// Zmail with part of the recipient population non-compliant (mail to them
// stays free): effective cost scales with the compliant share.
SendingRegime zmail_partial_regime(double compliant_share) noexcept;

// Zmail with a non-default e-penny price (the paper assumes $0.01 "for
// simplicity"; this regime supports the price-sensitivity analysis).
SendingRegime zmail_priced_regime(Money price_per_message) noexcept;

struct Campaign {
  std::uint64_t messages = 1'000'000;
  double response_rate = 1e-5;          // buyers per delivered message
  Money revenue_per_response = Money::from_dollars(25.0);
  Money fixed_costs = Money::from_dollars(100.0);  // address list, hosting
};

struct CampaignOutcome {
  Money sending_cost;
  Money revenue;
  Money profit;     // revenue - sending - fixed
  double roi = 0.0; // profit / total cost (0 when cost is 0)
};

CampaignOutcome evaluate(const Campaign& c, const SendingRegime& r) noexcept;

// Response rate at which profit is exactly zero under regime r.
double break_even_response_rate(const Campaign& c,
                                const SendingRegime& r) noexcept;

// The paper's headline ratio: break-even response rate under Zmail divided
// by break-even under SMTP (>= 100 when the e-penny is >= 100x SMTP cost).
double break_even_ratio(const Campaign& c) noexcept;

// Largest profitable campaign volume under regime r (0 if none), given that
// fixed costs must also be recovered.
std::uint64_t max_profitable_volume(const Campaign& c,
                                    const SendingRegime& r) noexcept;

// --- Market equilibrium: endogenous spam volume ---------------------------
//
// Real spam is a population of campaigns with wildly different response
// rates (lognormal across campaigns).  A per-message price kills exactly
// the campaigns whose response rate is below break-even, so the surviving
// spam share is the volume-weighted tail of that distribution.  This is
// the paper's "market forces will control the volume of spam" made
// quantitative.
struct CampaignPopulation {
  // ln(response rate) ~ Normal(mu, sigma).  Defaults put the median
  // campaign at 1e-5 with a heavy right tail of well-targeted campaigns.
  double log_response_mu = -11.5;  // ln(1e-5)
  double log_response_sigma = 1.5;
  Money revenue_per_response = Money::from_dollars(25.0);
};

// Fraction of spam volume still profitable at the given per-message price
// (campaign volume assumed independent of response rate).
double surviving_spam_share(const CampaignPopulation& pop,
                            Money price_per_message) noexcept;

// Price at which the surviving share drops below `target_share` (searched
// over [lo, hi]; returns hi if never reached).
Money price_for_spam_reduction(const CampaignPopulation& pop,
                               double target_share) noexcept;

}  // namespace zmail::econ
