// Computational-cost baseline (paper Section 2.3: hashcash, Penny Black,
// "pricing via processing").
//
// Every message must carry a proof-of-work stamp for its recipient.  The
// model runs *real* hashcash puzzles (crypto/hashcash.hpp) so the CPU cost
// is measured, not assumed, and exposes the two drawbacks the paper names:
// sending becomes slow for everyone, and high-volume legitimate senders
// (ISPs, mailing lists) pay the most.
#pragma once

#include <cstdint>
#include <string>

#include "crypto/hashcash.hpp"

namespace zmail::baselines {

struct PowMailParams {
  int difficulty_bits = 16;
  // Hashes/second the modelled sender can afford (for cost projections;
  // the benchmark also measures real wall-clock hashing).
  double sender_hash_rate = 2e6;
};

struct PowSendRecord {
  crypto::PowStamp stamp;
  std::uint64_t hash_attempts = 0;
  double projected_seconds = 0.0;  // attempts / sender_hash_rate
};

class PowMailer {
 public:
  explicit PowMailer(const PowMailParams& params) : params_(params) {}

  // Solves a stamp for one message to `recipient`; the counter seed keeps
  // consecutive sends from resolving to the same stamp.
  PowSendRecord send(const std::string& recipient);

  // Receiver-side check: one hash.
  static bool verify(const crypto::PowStamp& stamp) {
    return crypto::pow_verify(stamp);
  }

  std::uint64_t total_attempts() const noexcept { return total_attempts_; }
  std::uint64_t messages_sent() const noexcept { return messages_; }
  // Expected attempts per message at this difficulty (2^bits).
  double expected_attempts() const noexcept;
  // Messages/day the modelled sender can sustain.
  double max_daily_rate() const noexcept;

 private:
  PowMailParams params_;
  std::uint64_t total_attempts_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t counter_seed_ = 0;
};

}  // namespace zmail::baselines
