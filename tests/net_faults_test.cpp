#include "net/faults.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/network.hpp"

namespace zmail::net {
namespace {

constexpr sim::Duration kBase = 10 * sim::kMillisecond;
constexpr sim::Duration kJitter = 5 * sim::kMillisecond;

// A two-host network with a recording receiver; the injector (if any) is
// attached by the individual test.
struct Rig {
  sim::Simulator sim;
  Network net{sim, Rng(5), LatencyModel{kBase, kJitter}};
  HostId a = kNoHost;
  HostId b = kNoHost;
  std::vector<crypto::Bytes> received;
  std::vector<sim::SimTime> times;

  Rig() {
    a = net.add_host("a", [](const Datagram&) {});
    b = net.add_host("b", [this](const Datagram& d) {
      received.push_back(d.payload);
      times.push_back(sim.now());
    });
  }

  // Drains the queue and moves the clock to the absolute time `t`.
  void advance_to(sim::SimTime t) {
    sim.schedule_at(t, [] {});
    sim.run(t);
  }
};

TEST(FaultInjectorTest, ZeroRatePlanIsBehaviourTransparent) {
  // Same seed, one network bare and one with an all-zero injector attached:
  // the latency stream is untouched, so delivery times are bit-identical.
  Rig bare;
  Rig faulty;
  FaultInjector inj(FaultPlan{}, 99);
  faulty.net.attach_faults(&inj);
  const MsgType m = MsgType::intern("zct");
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(bare.net.send(bare.a, bare.b, m, {1}), SendStatus::kOk);
    EXPECT_EQ(faulty.net.send(faulty.a, faulty.b, m, {1}), SendStatus::kOk);
    bare.sim.run();
    faulty.sim.run();
  }
  EXPECT_EQ(bare.times, faulty.times);
  EXPECT_EQ(inj.counters().total_injected(), 0u);
}

TEST(FaultInjectorTest, SameSeedReplaysBitIdentically) {
  const auto run = [](std::uint64_t seed) {
    Rig rig;
    FaultPlan plan;
    plan.rates.drop = 0.2;
    plan.rates.duplicate = 0.2;
    plan.rates.corrupt = 0.1;
    plan.rates.delay_spike = 0.1;
    FaultInjector inj(plan, seed);
    rig.net.attach_faults(&inj);
    const MsgType m = MsgType::intern("replay");
    for (std::uint8_t i = 0; i < 100; ++i)
      rig.net.send(rig.a, rig.b, m, crypto::Bytes(16, i));
    rig.sim.run();
    return std::make_pair(rig.times, inj.counters());
  };
  const auto [t1, c1] = run(7);
  const auto [t2, c2] = run(7);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(c1.dropped, c2.dropped);
  EXPECT_EQ(c1.duplicated, c2.duplicated);
  EXPECT_EQ(c1.corrupted, c2.corrupted);
  EXPECT_EQ(c1.delayed, c2.delayed);
  EXPECT_GT(c1.total_injected(), 0u);
  const auto [t3, c3] = run(8);
  EXPECT_NE(t1, t3);  // a different fault stream really is different
  (void)c3;
}

TEST(FaultInjectorTest, CertainDropLosesEverySend) {
  Rig rig;
  FaultPlan plan;
  plan.rates.drop = 1.0;
  FaultInjector inj(plan, 1);
  rig.net.attach_faults(&inj);
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(rig.net.send(rig.a, rig.b, MsgType::intern("d"), {1, 2}),
              SendStatus::kFaultDropped);
  rig.sim.run();
  EXPECT_TRUE(rig.received.empty());
  EXPECT_EQ(inj.counters().dropped, 10u);
}

TEST(FaultInjectorTest, CertainDuplicationDeliversTwoCopies) {
  Rig rig;
  FaultPlan plan;
  plan.rates.duplicate = 1.0;
  FaultInjector inj(plan, 2);
  rig.net.attach_faults(&inj);
  for (int i = 0; i < 10; ++i)
    rig.net.send(rig.a, rig.b, MsgType::intern("dup"), {9});
  rig.sim.run();
  EXPECT_EQ(rig.received.size(), 20u);
  EXPECT_EQ(inj.counters().duplicated, 10u);
  EXPECT_EQ(rig.net.datagrams_sent(), 20u);  // extra copies are accounted
}

TEST(FaultInjectorTest, CorruptionFlipsExactlyOneBit) {
  Rig rig;
  FaultPlan plan;
  plan.rates.corrupt = 1.0;
  FaultInjector inj(plan, 3);
  rig.net.attach_faults(&inj);
  const crypto::Bytes original(32, 0xAB);
  rig.net.send(rig.a, rig.b, MsgType::intern("c"), crypto::Bytes(original));
  rig.sim.run();
  ASSERT_EQ(rig.received.size(), 1u);
  int differing_bits = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    std::uint8_t x = original[i] ^ rig.received[0][i];
    while (x != 0) {
      differing_bits += x & 1;
      x >>= 1;
    }
  }
  EXPECT_EQ(differing_bits, 1);
  EXPECT_EQ(inj.counters().corrupted, 1u);
}

TEST(FaultInjectorTest, TruncationShortensThePayload) {
  Rig rig;
  FaultPlan plan;
  plan.rates.truncate = 1.0;
  FaultInjector inj(plan, 4);
  rig.net.attach_faults(&inj);
  rig.net.send(rig.a, rig.b, MsgType::intern("t"), crypto::Bytes(64, 1));
  rig.sim.run();
  ASSERT_EQ(rig.received.size(), 1u);
  EXPECT_LT(rig.received[0].size(), 64u);
  EXPECT_EQ(inj.counters().truncated, 1u);
}

TEST(FaultInjectorTest, ReorderBreaksPerPairFifo) {
  Rig rig;
  FaultPlan plan;
  plan.rates.reorder = 1.0;
  FaultInjector inj(plan, 6);
  rig.net.attach_faults(&inj);
  const MsgType m = MsgType::intern("ro");
  for (std::uint8_t i = 0; i < 50; ++i) rig.net.send(rig.a, rig.b, m, {i});
  rig.sim.run();
  ASSERT_EQ(rig.received.size(), 50u);
  EXPECT_EQ(inj.counters().reordered, 50u);
  // All 50 arrive, but with the FIFO clamp skipped the jittered latencies
  // leak through as at least one inversion.
  std::vector<std::uint8_t> order;
  for (const auto& p : rig.received) order.push_back(p.at(0));
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
  std::sort(order.begin(), order.end());
  for (std::uint8_t i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(FaultInjectorTest, PartitionSwallowsOnlyTheWindow) {
  Rig rig;
  FaultPlan plan;
  plan.partitions.push_back(
      Partition{0, 1, sim::kSecond, 2 * sim::kSecond});
  FaultInjector inj(plan, 7);
  rig.net.attach_faults(&inj);
  const MsgType m = MsgType::intern("p");

  EXPECT_EQ(rig.net.send(rig.a, rig.b, m, {0}), SendStatus::kOk);
  rig.advance_to(sim::kSecond + 100 * sim::kMillisecond);
  EXPECT_EQ(rig.net.send(rig.a, rig.b, m, {1}), SendStatus::kFaultDropped);
  EXPECT_EQ(rig.net.send(rig.b, rig.a, m, {2}),
            SendStatus::kFaultDropped);  // cuts both directions
  rig.advance_to(2 * sim::kSecond + 100 * sim::kMillisecond);
  EXPECT_EQ(rig.net.send(rig.a, rig.b, m, {3}), SendStatus::kOk);
  rig.sim.run();

  ASSERT_EQ(rig.received.size(), 2u);
  EXPECT_EQ(rig.received[0].at(0), 0);
  EXPECT_EQ(rig.received[1].at(0), 3);
  EXPECT_EQ(inj.counters().partitioned, 2u);
}

TEST(FaultInjectorTest, ReceiverOutageLosesInflightByDefault) {
  Rig rig;
  FaultPlan plan;
  plan.outages.push_back(HostOutage{1, 0, sim::kSecond});
  FaultInjector inj(plan, 8);
  rig.net.attach_faults(&inj);
  // Sent from a healthy host, delivery lands inside b's crash window.
  rig.net.send(rig.a, rig.b, MsgType::intern("o"), {1});
  rig.sim.run();
  EXPECT_TRUE(rig.received.empty());
  EXPECT_EQ(inj.counters().outage_lost, 1u);
}

TEST(FaultInjectorTest, ReceiverOutageCanDeferUntilRestart) {
  Rig rig;
  FaultPlan plan;
  plan.outages.push_back(HostOutage{1, 0, sim::kSecond});
  plan.outage_preserves_inflight = true;
  FaultInjector inj(plan, 9);
  rig.net.attach_faults(&inj);
  rig.net.send(rig.a, rig.b, MsgType::intern("o2"), {1});
  rig.sim.run();
  ASSERT_EQ(rig.received.size(), 1u);
  EXPECT_GE(rig.times[0], sim::kSecond);  // held until the restart
  EXPECT_EQ(inj.counters().outage_deferred, 1u);
  EXPECT_EQ(inj.counters().outage_lost, 0u);
}

TEST(FaultInjectorTest, CrashedSenderEmitsNothing) {
  Rig rig;
  FaultPlan plan;
  plan.outages.push_back(HostOutage{0, 0, sim::kSecond});
  FaultInjector inj(plan, 10);
  rig.net.attach_faults(&inj);
  EXPECT_EQ(rig.net.send(rig.a, rig.b, MsgType::intern("s"), {1}),
            SendStatus::kFaultDropped);
  rig.sim.run();
  EXPECT_TRUE(rig.received.empty());
  EXPECT_EQ(inj.counters().outage_lost, 1u);
}

TEST(FaultInjectorTest, OnlyTypesFilterExemptsControlTraffic) {
  Rig rig;
  FaultPlan plan;
  plan.rates.drop = 1.0;
  plan.only_types = {kMsgEmail};
  FaultInjector inj(plan, 11);
  rig.net.attach_faults(&inj);
  EXPECT_EQ(rig.net.send(rig.a, rig.b, kMsgEmail, {1}),
            SendStatus::kFaultDropped);
  EXPECT_EQ(rig.net.send(rig.a, rig.b, kMsgBuy, {2}), SendStatus::kOk);
  rig.sim.run();
  ASSERT_EQ(rig.received.size(), 1u);
  EXPECT_EQ(rig.received[0].at(0), 2);
}

TEST(FaultInjectorTest, DetachRestoresTheCleanPath) {
  Rig rig;
  FaultPlan plan;
  plan.rates.drop = 1.0;
  FaultInjector inj(plan, 12);
  rig.net.attach_faults(&inj);
  EXPECT_EQ(rig.net.send(rig.a, rig.b, MsgType::intern("x"), {1}),
            SendStatus::kFaultDropped);
  rig.net.attach_faults(nullptr);
  EXPECT_EQ(rig.net.send(rig.a, rig.b, MsgType::intern("x"), {2}),
            SendStatus::kOk);
  rig.sim.run();
  ASSERT_EQ(rig.received.size(), 1u);
  EXPECT_EQ(rig.received[0].at(0), 2);
}

}  // namespace
}  // namespace zmail::net
