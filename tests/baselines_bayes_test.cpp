#include "baselines/bayes.hpp"

#include <gtest/gtest.h>

#include "workload/corpus.hpp"

namespace zmail::baselines {
namespace {

class TrainedBayesTest : public ::testing::Test {
 protected:
  TrainedBayesTest() : corpus_(workload::CorpusParams{}, zmail::Rng(303)) {
    for (int i = 0; i < 400; ++i) {
      filter_.train(corpus_.ham_body(), false);
      filter_.train(corpus_.spam_body(), true);
    }
  }

  workload::CorpusGenerator corpus_;
  NaiveBayesFilter filter_;
};

TEST(NaiveBayes, UntrainedScoresNeutral) {
  NaiveBayesFilter f;
  EXPECT_EQ(f.score("anything at all"), 0.0);
  EXPECT_FALSE(f.is_spam("anything"));
}

TEST(NaiveBayes, TrainingCountsDocsAndVocabulary) {
  NaiveBayesFilter f;
  f.train("buy pills now", true);
  f.train("meeting at noon", false);
  EXPECT_EQ(f.spam_docs(), 1u);
  EXPECT_EQ(f.ham_docs(), 1u);
  EXPECT_EQ(f.vocabulary_size(), 6u);
}

TEST(NaiveBayes, ObviousSeparation) {
  NaiveBayesFilter f;
  for (int i = 0; i < 50; ++i) {
    f.train("viagra casino lottery winner free", true);
    f.train("project meeting report budget agenda", false);
  }
  EXPECT_GT(f.score("viagra lottery free"), 0.0);
  EXPECT_LT(f.score("project budget agenda"), 0.0);
  EXPECT_TRUE(f.is_spam("casino casino winner"));
  EXPECT_FALSE(f.is_spam("meeting report"));
}

TEST_F(TrainedBayesTest, HighAccuracyOnCleanCorpus) {
  workload::CorpusGenerator fresh(workload::CorpusParams{}, zmail::Rng(404));
  FilterEvaluation eval;
  for (int i = 0; i < 300; ++i) {
    eval.add(true, filter_.is_spam(fresh.spam_body()));
    eval.add(false, filter_.is_spam(fresh.ham_body()));
  }
  EXPECT_GT(eval.recall(), 0.9);
  EXPECT_LT(eval.false_positive_rate(), 0.05);
}

TEST_F(TrainedBayesTest, MisspellingEvasionRaisesFalseNegatives) {
  workload::CorpusGenerator fresh(workload::CorpusParams{}, zmail::Rng(405));
  FilterEvaluation plain, evaded;
  for (int i = 0; i < 300; ++i) {
    const std::string body = fresh.spam_body();
    plain.add(true, filter_.is_spam(body));
    evaded.add(true, filter_.is_spam(fresh.evade(body, 0.9)));
  }
  EXPECT_GT(evaded.false_negative_rate(),
            plain.false_negative_rate() + 0.2);
}

TEST_F(TrainedBayesTest, NewslettersSufferFalsePositives) {
  // The paper's false-positive story: solicited bulk mail looks spammy.
  workload::CorpusGenerator fresh(workload::CorpusParams{}, zmail::Rng(406));
  FilterEvaluation eval;
  for (int i = 0; i < 300; ++i)
    eval.add(false, filter_.is_spam(fresh.newsletter_body()));
  EXPECT_GT(eval.false_positive_rate(), 0.02);
}

TEST_F(TrainedBayesTest, RaisingThresholdTradesFpForFn) {
  workload::CorpusGenerator fresh(workload::CorpusParams{}, zmail::Rng(407));
  std::vector<std::string> spams, newsletters;
  for (int i = 0; i < 200; ++i) {
    spams.push_back(fresh.spam_body());
    newsletters.push_back(fresh.newsletter_body());
  }
  auto measure = [&](double threshold) {
    NaiveBayesFilter f = filter_;
    f.set_threshold(threshold);
    FilterEvaluation e;
    for (const auto& s : spams) e.add(true, f.is_spam(s));
    for (const auto& n : newsletters) e.add(false, f.is_spam(n));
    return e;
  };
  const FilterEvaluation strict = measure(0.0);
  const FilterEvaluation lenient = measure(40.0);
  EXPECT_LE(lenient.false_positive_rate(), strict.false_positive_rate());
  EXPECT_GE(lenient.false_negative_rate(), strict.false_negative_rate());
}

TEST_F(TrainedBayesTest, MessageInterfaceUsesSubjectAndBody) {
  const net::EmailMessage spam = corpus_.make_message(
      {"s", "x.example"}, {"r", "y.example"}, net::MailClass::kSpam);
  EXPECT_TRUE(filter_.is_spam(spam));
  const net::EmailMessage ham = corpus_.make_message(
      {"s", "x.example"}, {"r", "y.example"}, net::MailClass::kLegitimate);
  EXPECT_FALSE(filter_.is_spam(ham));
}

TEST(FilterEvaluation, CountersAndRates) {
  FilterEvaluation e;
  e.add(true, true);    // TP
  e.add(true, false);   // FN
  e.add(false, true);   // FP
  e.add(false, false);  // TN
  EXPECT_EQ(e.true_positive, 1u);
  EXPECT_EQ(e.false_negative, 1u);
  EXPECT_EQ(e.false_positive, 1u);
  EXPECT_EQ(e.true_negative, 1u);
  EXPECT_DOUBLE_EQ(e.false_positive_rate(), 0.5);
  EXPECT_DOUBLE_EQ(e.false_negative_rate(), 0.5);
  EXPECT_DOUBLE_EQ(e.precision(), 0.5);
  EXPECT_DOUBLE_EQ(e.recall(), 0.5);
}

TEST(FilterEvaluation, EmptyRatesAreZero) {
  FilterEvaluation e;
  EXPECT_EQ(e.false_positive_rate(), 0.0);
  EXPECT_EQ(e.false_negative_rate(), 0.0);
  EXPECT_EQ(e.precision(), 0.0);
  EXPECT_EQ(e.recall(), 0.0);
}

}  // namespace
}  // namespace zmail::baselines
