// Hot-path regression tests for the calendar queue and InlineEvent: the
// rewritten simulator must replay events in exactly the (at, seq) order the
// old single priority queue produced, and the inline storage must hold every
// closure shape the network schedules without touching the heap.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "sim/inline_event.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace zmail::sim {
namespace {

// --- Calendar queue ordering ---------------------------------------------

// 10k schedules at random times spanning sub-bucket ties, in-wheel spread,
// and far-overflow outliers; execution order must equal a stable sort by
// (at, insertion order) — the contract the old heap provided.
TEST(CalendarQueueTest, MatchesReferenceOrderOnRandomSchedules) {
  Simulator sim;
  Rng rng(123);
  constexpr int kN = 10000;
  std::vector<std::pair<SimTime, int>> expected;  // (at, id)
  std::vector<int> executed;
  executed.reserve(kN);
  for (int i = 0; i < kN; ++i) {
    SimTime at;
    switch (rng.next_u64() % 4) {
      case 0:  // dense ties inside one bucket
        at = static_cast<SimTime>(rng.next_u64() % 16);
        break;
      case 1:  // within the wheel span
        at = static_cast<SimTime>(rng.next_u64() % (200 * kMillisecond));
        break;
      case 2:  // beyond the wheel: overflow heap
        at = static_cast<SimTime>(rng.next_u64() % (90 * kDay));
        break;
      default:  // bucket-boundary values
        at = static_cast<SimTime>((rng.next_u64() % 512) * kMillisecond);
        break;
    }
    expected.emplace_back(at, i);
    sim.schedule_at(at, [&executed, i] { executed.push_back(i); });
  }
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  sim.run();
  ASSERT_EQ(executed.size(), expected.size());
  for (int i = 0; i < kN; ++i) EXPECT_EQ(executed[i], expected[i].second);
}

// Cascading schedules (each event schedules the next) repeatedly re-base the
// wheel as simulated time crosses its span; ordering and timestamps must
// survive the migrations.
TEST(CalendarQueueTest, CascadeAcrossWheelRebasesKeepsTime) {
  Simulator sim;
  std::vector<SimTime> fired;
  // Far outlier sits in overflow from the start and must come out last.
  bool outlier_ran = false;
  sim.schedule_at(400 * kDay, [&] { outlier_ran = true; });
  struct Chain {
    Simulator& sim;
    std::vector<SimTime>& fired;
    int left;
    void operator()() {
      fired.push_back(sim.now());
      if (--left > 0)
        sim.schedule_after(7 * kHour + 13 * kMinute + 1, Chain{sim, fired, left});
    }
  };
  sim.schedule_at(0, Chain{sim, fired, 200});
  sim.run();
  ASSERT_EQ(fired.size(), 200u);
  for (std::size_t i = 1; i < fired.size(); ++i)
    EXPECT_EQ(fired[i] - fired[i - 1], 7 * kHour + 13 * kMinute + 1);
  EXPECT_TRUE(outlier_ran);
}

// Scheduling "behind" the wheel cursor (at == now, earlier bucket already
// drained) must still run before later events.
TEST(CalendarQueueTest, ImmediateEventDuringDrainRunsFirst) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5 * kMillisecond, [&] {
    order.push_back(1);
    sim.schedule_at(sim.now(), [&] { order.push_back(2); });
  });
  sim.schedule_at(9 * kMillisecond, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, ScheduleEveryOptionalFirst) {
  Simulator sim;
  std::vector<SimTime> ticks;
  int left = 3;
  sim.schedule_every(
      10 * kSecond,
      [&] {
        ticks.push_back(sim.now());
        return --left > 0;
      },
      /*first=*/SimTime{2 * kSecond});
  sim.run();
  EXPECT_EQ(ticks, (std::vector<SimTime>{2 * kSecond, 12 * kSecond,
                                         22 * kSecond}));

  // Default first = now + period.
  std::vector<SimTime> defaults;
  int n = 2;
  sim.schedule_every(kSecond, [&] {
    defaults.push_back(sim.now());
    return --n > 0;
  });
  sim.run();
  ASSERT_EQ(defaults.size(), 2u);
  EXPECT_EQ(defaults[0], sim.now() - kSecond);
}

// --- InlineEvent ----------------------------------------------------------

TEST(InlineEventTest, SmallCaptureStaysInline) {
  int hits = 0;
  int* p = &hits;
  InlineEvent e([p] { ++*p; });
  EXPECT_TRUE(e.is_inline());
  e();
  EXPECT_EQ(hits, 1);
}

TEST(InlineEventTest, DeliveryShapedCaptureStaysInline) {
  // The network's delivery closure: a pointer plus a slot index.  This must
  // never fall back to the heap or the whole design is moot.
  struct Fake {
    std::uint64_t sum = 0;
  } fake;
  const std::uint32_t slot = 7;
  InlineEvent e([f = &fake, slot] { f->sum += slot; });
  EXPECT_TRUE(e.is_inline());
  // Capture at the 48-byte boundary still fits.
  struct Big {
    unsigned char bytes[InlineEvent::kInlineSize] = {};
  } big;
  InlineEvent at_limit([big]() mutable { big.bytes[0] = 1; });
  EXPECT_TRUE(at_limit.is_inline());
  e();
  EXPECT_EQ(fake.sum, 7u);
}

TEST(InlineEventTest, OversizedCaptureFallsBackToHeap) {
  struct Huge {
    unsigned char bytes[InlineEvent::kInlineSize + 1] = {};
  } huge;
  huge.bytes[0] = 42;
  int seen = -1;
  InlineEvent e([huge, &seen] { seen = huge.bytes[0]; });
  EXPECT_FALSE(e.is_inline());
  e();
  EXPECT_EQ(seen, 42);
}

TEST(InlineEventTest, MoveTransfersOwnershipAndState) {
  // A move-only capture with a destructor-visible side effect: exactly one
  // live copy must exist at any time and it must run from the moved-to slot.
  auto counter = std::make_shared<int>(0);
  InlineEvent a([counter] { ++*counter; });
  InlineEvent b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(*counter, 1);

  InlineEvent c;
  c = std::move(b);
  c();
  EXPECT_EQ(*counter, 2);
  // a, b released their captures on move: only c (and our local) remain.
  EXPECT_EQ(counter.use_count(), 2);
}

TEST(InlineEventTest, DestructionReleasesCapture) {
  auto tracker = std::make_shared<int>(7);
  {
    InlineEvent e([tracker] { ++*tracker; });
    EXPECT_EQ(tracker.use_count(), 2);
  }
  EXPECT_EQ(tracker.use_count(), 1);

  {
    struct Huge {
      std::shared_ptr<int> p;
      unsigned char pad[64] = {};
    };
    InlineEvent e(
        [h = Huge{tracker, {}}] { ++*h.p; });
    EXPECT_FALSE(e.is_inline());
    EXPECT_EQ(tracker.use_count(), 2);
  }
  EXPECT_EQ(tracker.use_count(), 1);
}

}  // namespace
}  // namespace zmail::sim
