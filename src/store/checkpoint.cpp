#include "store/checkpoint.hpp"

#include <sys/stat.h>

#include <cerrno>
#include <cstring>

namespace zmail::store {

bool ensure_dir(const std::string& dir, std::string* error) {
  if (dir.empty()) {
    if (error) *error = "store: empty directory";
    return false;
  }
  std::string path;
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    const std::size_t slash = dir.find('/', pos);
    path = slash == std::string::npos ? dir : dir.substr(0, slash);
    pos = slash == std::string::npos ? dir.size() + 1 : slash + 1;
    if (path.empty()) continue;  // leading '/'
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      if (error) *error = "store: mkdir " + path + ": " + std::strerror(errno);
      return false;
    }
  }
  return true;
}

bool Checkpointer::open(const StoreConfig& cfg, const std::string& party,
                        std::string* error) {
  cfg_ = cfg;
  if (!ensure_dir(cfg.dir, error)) return false;
  wal_path_ = cfg.dir + "/" + party + ".zwal";
  snap_path_ = cfg.dir + "/" + party + ".zsnap";
  return wal_.open(wal_path_, cfg.group_commit_records, cfg.fsync_data, error);
}

bool Checkpointer::write_checkpoint(SnapshotData& snap,
                                    std::uint64_t sim_time_us,
                                    std::string* error) {
  // next_lsn() (not durable_lsn()) — commands still in the group-commit
  // buffer are already reflected in the state, so the snapshot covers them.
  snap.meta.next_lsn = wal_.next_lsn();
  snap.meta.sim_time_us = sim_time_us;
  const StoreStatus ws =
      write_snapshot_file(snap_path_, snap, cfg_.fsync_data, error);
  if (ws != StoreStatus::kOk) return false;
  if (!wal_.truncate_behind_checkpoint(error)) return false;
  ++stats_.checkpoints;
  stats_.last_snapshot_bytes = encode_snapshot(snap).size();
  stats_.wal_records_truncated +=
      wal_.stats().records_appended - records_at_last_ckpt_;
  records_at_last_ckpt_ = wal_.stats().records_appended;
  return true;
}

bool Checkpointer::checkpoint(const crypto::Bytes& state,
                              std::uint64_t sim_time_us, std::string* error) {
  SnapshotData snap;
  snap.sections.push_back(SnapshotSection{kStateSection, state});
  return write_checkpoint(snap, sim_time_us, error);
}

bool Checkpointer::checkpoint_sections(std::vector<SnapshotSection> sections,
                                       std::uint64_t sim_time_us,
                                       std::string* error) {
  SnapshotData snap;
  snap.meta.version = kSnapshotVersionColumnar;
  snap.meta.features = kFeatureColumnarUserState;
  snap.sections = std::move(sections);
  return write_checkpoint(snap, sim_time_us, error);
}

bool Checkpointer::recover(
    const std::function<void(const crypto::Bytes&)>& restore,
    const std::function<void(std::uint8_t, const crypto::Bytes&)>& replay,
    RecoveryStats* stats, std::string* error) {
  RecoveryStats local;
  RecoveryStats& st = stats ? *stats : local;
  st = RecoveryStats{};

  Lsn replay_from = 1;
  SnapshotData snap;
  st.snapshot_status = read_snapshot_file(snap_path_, snap);
  if (st.snapshot_status == StoreStatus::kOk) {
    const SnapshotSection* state = nullptr;
    for (const SnapshotSection& s : snap.sections)
      if (s.id == kStateSection) state = &s;
    if (!state) {
      if (error) *error = "recover: snapshot has no state section";
      return false;
    }
    restore(state->payload);
    st.snapshot_loaded = true;
    st.snapshot_bytes = encode_snapshot(snap).size();
    st.recovered_lsn = snap.meta.next_lsn - 1;
    replay_from = snap.meta.next_lsn;
  } else if (st.snapshot_status != StoreStatus::kNotFound) {
    if (error)
      *error = std::string("recover: snapshot unreadable: ") +
               store_status_name(st.snapshot_status);
    return false;
  }

  return replay_wal_tail(replay_from, replay, st, error);
}

bool Checkpointer::recover_view(
    const std::function<bool(const SnapshotFileView&)>& restore,
    const std::function<void(std::uint8_t, const crypto::Bytes&)>& replay,
    RecoveryStats* stats, std::string* error) {
  RecoveryStats local;
  RecoveryStats& st = stats ? *stats : local;
  st = RecoveryStats{};

  Lsn replay_from = 1;
  SnapshotFileView view;
  st.snapshot_status = view.open(snap_path_);
  if (st.snapshot_status == StoreStatus::kOk) {
    if (!restore(view)) {
      if (error) *error = "recover: snapshot sections failed to restore";
      return false;
    }
    st.snapshot_loaded = true;
    st.snapshot_bytes = view.file_size();
    st.recovered_lsn = view.meta().next_lsn - 1;
    replay_from = view.meta().next_lsn;
  } else if (st.snapshot_status != StoreStatus::kNotFound) {
    if (error)
      *error = std::string("recover: snapshot unreadable: ") +
               store_status_name(st.snapshot_status);
    return false;
  }
  view.close();  // unmap before replay; the restored state owns its copies

  return replay_wal_tail(replay_from, replay, st, error);
}

bool Checkpointer::replay_wal_tail(
    Lsn replay_from,
    const std::function<void(std::uint8_t, const crypto::Bytes&)>& replay,
    RecoveryStats& st, std::string* error) {
  crypto::Bytes wal_image;
  st.wal_status = read_file(wal_path_, wal_image);
  if (st.wal_status == StoreStatus::kNotFound) return true;  // fresh party
  if (st.wal_status != StoreStatus::kOk) {
    if (error) *error = "recover: wal unreadable";
    return false;
  }
  st.wal_bytes = wal_image.size();

  bool gap = false;
  const WalScanResult scan =
      wal_scan(wal_image, [&](const WalRecord& rec) {
        if (rec.lsn < replay_from) return;  // covered by the snapshot
        if (rec.lsn != replay_from + st.wal_records_replayed) {
          gap = true;  // hole between snapshot and log: cannot apply safely
          return;
        }
        crypto::Bytes payload(rec.payload, rec.payload + rec.payload_len);
        replay(rec.type, payload);
        ++st.wal_records_replayed;
        st.recovered_lsn = rec.lsn;
      });
  st.wal_status = scan.status;
  switch (scan.status) {
    case StoreStatus::kOk:
    case StoreStatus::kTruncated:
    case StoreStatus::kCorrupt:
      break;  // torn tail ⇒ clean stop at last valid record (the contract)
    default:
      if (error)
        *error = std::string("recover: wal header: ") +
                 store_status_name(scan.status);
      return false;
  }
  if (gap || (st.snapshot_loaded && scan.base_lsn > replay_from)) {
    if (error) *error = "recover: LSN gap between snapshot and WAL";
    return false;
  }
  return true;
}

}  // namespace zmail::store
