#include "core/scenario.hpp"

#include <gtest/gtest.h>

#include <filesystem>

namespace zmail::core {
namespace {

// --- Low-level parsing helpers ------------------------------------------------

TEST(ParseUserRef, DotForm) {
  const auto r = parse_user_ref("1.2");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 1u);
  EXPECT_EQ(r->second, 2u);
}

TEST(ParseUserRef, AddressForm) {
  const auto r = parse_user_ref("u2@isp1.example");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->first, 1u);
  EXPECT_EQ(r->second, 2u);
}

TEST(ParseUserRef, Malformed) {
  EXPECT_FALSE(parse_user_ref("").has_value());
  EXPECT_FALSE(parse_user_ref("12").has_value());
  EXPECT_FALSE(parse_user_ref("a.b").has_value());
  EXPECT_FALSE(parse_user_ref("bob@gmail.com").has_value());
}

TEST(ParseDuration, AllSuffixes) {
  EXPECT_EQ(parse_duration("90s"), 90 * sim::kSecond);
  EXPECT_EQ(parse_duration("15m"), 15 * sim::kMinute);
  EXPECT_EQ(parse_duration("2h"), 2 * sim::kHour);
  EXPECT_EQ(parse_duration("1d"), sim::kDay);
}

TEST(ParseDuration, Malformed) {
  EXPECT_FALSE(parse_duration("").has_value());
  EXPECT_FALSE(parse_duration("10").has_value());
  EXPECT_FALSE(parse_duration("m").has_value());
  EXPECT_FALSE(parse_duration("10w").has_value());
  EXPECT_FALSE(parse_duration("-5m").has_value());
}

// --- Script parsing -------------------------------------------------------------

TEST(ScenarioParse, MinimalScript) {
  const auto s = Scenario::parse("world isps=2 users=3\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->params().n_isps, 2u);
  EXPECT_EQ(s->params().users_per_isp, 3u);
  EXPECT_EQ(s->command_count(), 0u);
}

TEST(ScenarioParse, CommentsAndBlanksIgnored) {
  const auto s = Scenario::parse(
      "# a zmail scenario\n"
      "world isps=2 users=2   # inline comment\n"
      "\n"
      "send 0.0 1.1\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->command_count(), 1u);
}

TEST(ScenarioParse, CompliantMask) {
  const auto s = Scenario::parse("world isps=3 users=2 compliant=110\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->params().is_compliant(0));
  EXPECT_TRUE(s->params().is_compliant(1));
  EXPECT_FALSE(s->params().is_compliant(2));
}

TEST(ScenarioParse, BadMaskLengthRejected) {
  ScenarioError err;
  EXPECT_FALSE(
      Scenario::parse("world isps=3 users=2 compliant=11\n", &err)
          .has_value());
  EXPECT_EQ(err.line, 1u);
}

TEST(ScenarioParse, UnknownVerbRejected) {
  ScenarioError err;
  EXPECT_FALSE(Scenario::parse("world isps=2 users=2\nfrobnicate\n", &err)
                   .has_value());
  EXPECT_EQ(err.line, 2u);
  EXPECT_NE(err.message.find("frobnicate"), std::string::npos);
}

TEST(ScenarioParse, MissingWorldRejected) {
  ScenarioError err;
  EXPECT_FALSE(Scenario::parse("send 0.0 1.0\n", &err).has_value());
}

TEST(ScenarioParse, DuplicateWorldRejected) {
  ScenarioError err;
  EXPECT_FALSE(Scenario::parse("world isps=2 users=2\nworld isps=3 users=2\n",
                               &err)
                   .has_value());
}

// --- Execution -------------------------------------------------------------------

TEST(ScenarioRun, SendAndExpectBalance) {
  const auto s = Scenario::parse(
      "world isps=2 users=2 balance=10\n"
      "send 0.0 1.1 subject hi\n"
      "run 5m\n"
      "expect balance 0.0 9\n"
      "expect balance 1.1 11\n"
      "expect conservation\n");
  ASSERT_TRUE(s.has_value());
  ScenarioRunner runner(*s);
  const ScenarioResult r = runner.run();
  EXPECT_TRUE(r.ok()) << (r.failures.empty() ? "" : r.failures[0].message);
  EXPECT_EQ(r.commands_executed, 5u);
}

TEST(ScenarioRun, FailedExpectationIsReported) {
  const auto s = Scenario::parse(
      "world isps=2 users=2 balance=10\n"
      "expect balance 0.0 999\n");
  ASSERT_TRUE(s.has_value());
  ScenarioRunner runner(*s);
  const ScenarioResult r = runner.run();
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_EQ(r.failures[0].line, 2u);
  EXPECT_NE(r.failures[0].message.find("want 999"), std::string::npos);
}

TEST(ScenarioRun, SnapshotAndViolationsExpectation) {
  const auto s = Scenario::parse(
      "world isps=2 users=2 balance=50\n"
      "send 0.0 1.0\n"
      "run 1h\n"
      "snapshot\n"
      "run 30m\n"
      "expect violations 0\n"
      "expect conservation\n");
  ASSERT_TRUE(s.has_value());
  ScenarioRunner runner(*s);
  EXPECT_TRUE(runner.run().ok());
  EXPECT_EQ(runner.system().bank().seq(), 1u);
}

TEST(ScenarioRun, SpamBuySellDayFlip) {
  const auto s = Scenario::parse(
      "world isps=3 users=3 balance=30 limit=10 compliant=110\n"
      "spam 0.0 count=15\n"   // daily limit refuses some
      "day\n"
      "buy 1.1 20\n"
      "sell 1.1 5\n"
      "run 1h\n"
      "flip 2\n"
      "send 2.0 0.0\n"
      "run 10m\n"
      "expect conservation\n");
  ASSERT_TRUE(s.has_value());
  ScenarioRunner runner(*s);
  const ScenarioResult r = runner.run();
  EXPECT_TRUE(r.ok()) << (r.failures.empty() ? "" : r.failures[0].message);
  EXPECT_TRUE(runner.system().is_compliant(2));
  // 30 initial + 20 bought - 5 sold, plus any spam windfall that happened
  // to land on this user.
  const auto u = runner.system().isp(1).user(1);
  EXPECT_EQ(u.balance, 45 + u.lifetime_received_paid);
}

TEST(ScenarioRun, PrintBalancesProducesOutput) {
  const auto s = Scenario::parse(
      "world isps=2 users=2 balance=7\n"
      "print balances\n");
  ASSERT_TRUE(s.has_value());
  ScenarioRunner runner(*s);
  const ScenarioResult r = runner.run();
  ASSERT_EQ(r.output.size(), 4u);
  EXPECT_NE(r.output[0].find("balance=7"), std::string::npos);
  EXPECT_NE(r.output_text().find("u1@isp1.example"), std::string::npos);
}

TEST(ScenarioRun, PolicyVerbSetsUserOverrides) {
  const auto s = Scenario::parse(
      "world isps=3 users=2 compliant=110\n"
      "policy 0 discard\n"
      "spam 2.0 count=10\n"   // legacy spammer
      "run 1h\n");
  ASSERT_TRUE(s.has_value());
  ScenarioRunner runner(*s);
  const ScenarioResult r = runner.run();
  EXPECT_TRUE(r.ok()) << (r.failures.empty() ? "" : r.failures[0].message);
  // ISP 0's users discard legacy mail; ISP 1's accept it.
  EXPECT_EQ(runner.system().isp(0).metrics().emails_delivered, 0u);
  EXPECT_GT(runner.system().isp(0).metrics().emails_discarded +
                runner.system().isp(1).metrics().emails_delivered,
            0u);
}

TEST(ScenarioRun, PolicyVerbRejectsBadArguments) {
  const auto s = Scenario::parse(
      "world isps=3 users=2 compliant=110\n"
      "policy 2 discard\n"    // legacy isp
      "policy 0 frobnicate\n"
      "policy 0\n");
  ASSERT_TRUE(s.has_value());
  ScenarioRunner runner(*s);
  EXPECT_EQ(runner.run().failures.size(), 3u);
}

TEST(ScenarioRun, OutOfRangeUserRefsFailGracefully) {
  const auto s = Scenario::parse(
      "world isps=2 users=2\n"
      "send 5.0 0.0\n"     // isp 5 does not exist
      "send 0.0 0.9\n"     // user 9 does not exist
      "buy 3.3 10\n"
      "expect balance 7.7 1\n");
  ASSERT_TRUE(s.has_value());
  ScenarioRunner runner(*s);
  const ScenarioResult r = runner.run();
  EXPECT_EQ(r.failures.size(), 4u);  // reported, not crashed
  EXPECT_EQ(r.commands_executed, 4u);
}

TEST(ScenarioRun, BuyRefusalIsAFailure) {
  const auto s = Scenario::parse(
      "world isps=2 users=2 balance=5\n"
      "buy 0.0 100000\n");  // far beyond the user's real-money account
  ASSERT_TRUE(s.has_value());
  ScenarioRunner runner(*s);
  EXPECT_FALSE(runner.run().ok());
}

// --- The durable-store verbs ---------------------------------------------------

TEST(ScenarioParse, WorldHardenedTransportKeys) {
  const auto s = Scenario::parse("world isps=2 users=2 retry=1 reliable=1\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_TRUE(s->params().retry.enabled);
  EXPECT_TRUE(s->params().reliable_email_transport);
  const auto off = Scenario::parse("world isps=2 users=2\n");
  ASSERT_TRUE(off.has_value());
  EXPECT_FALSE(off->params().retry.enabled);
  EXPECT_FALSE(off->params().reliable_email_transport);
}

TEST(ScenarioRun, CrashVerbRequiresTheStore) {
  const auto s = Scenario::parse(
      "world isps=2 users=2\n"
      "crash 0 10m\n");
  ASSERT_TRUE(s.has_value());
  ScenarioRunner runner(*s);
  const ScenarioResult r = runner.run();
  ASSERT_EQ(r.failures.size(), 1u);
  EXPECT_NE(r.failures[0].message.find("durable store"), std::string::npos);
}

TEST(ScenarioRun, CrashVerbRecoversFromTheStore) {
  auto s = Scenario::parse(
      "world isps=2 users=3 balance=50 limit=100 retry=1 reliable=1\n"
      "send 0.0 1.1 subject hi\n"
      "run 10m\n"
      "snapshot\n"
      "run 30m\n"
      "crash 0 15m\n"
      "crash bank 15m\n"
      "run 1h\n"
      "crash 7 10m\n"    // no such host: reported, not asserted
      "crash bank\n"     // missing duration
      "expect conservation\n"
      "expect violations 0\n");
  ASSERT_TRUE(s.has_value());
  s->mutable_params().store.enabled = true;
  s->mutable_params().store.dir = "scenario_crash_test_store";
  ScenarioRunner runner(*s);
  const ScenarioResult r = runner.run();
  EXPECT_EQ(r.failures.size(), 2u);  // exactly the two malformed crash lines
  EXPECT_EQ(runner.system().state_recoveries(), 2u);
  std::filesystem::remove_all("scenario_crash_test_store");
}

}  // namespace
}  // namespace zmail::core
