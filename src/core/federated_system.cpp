#include "core/federated_system.hpp"

#include "util/assert.hpp"

namespace zmail::core {

namespace {
constexpr sim::Duration kQuiesceWindow = 10 * sim::kMinute;
}  // namespace

FederatedZmailSystem::FederatedZmailSystem(ZmailParams params,
                                           std::size_t n_banks,
                                           std::uint64_t seed)
    : params_(std::move(params)),
      n_banks_(n_banks),
      rng_(seed),
      sim_(),
      net_(sim_, Rng(seed ^ 0xFEDE7ULL), net::LatencyModel{}) {
  const auto problems = params_.validate();
  ZMAIL_ASSERT_MSG(problems.empty(),
                   problems.empty() ? "" : problems.front().c_str());
  ZMAIL_ASSERT_MSG(params_.compliant.empty(),
                   "FederatedZmailSystem models an all-compliant world");
  ZMAIL_ASSERT(n_banks_ >= 1);

  fed_ = std::make_unique<BankFederation>(params_, n_banks_, seed ^ 0xFE);

  isps_.resize(params_.n_isps);
  for (std::size_t i = 0; i < params_.n_isps; ++i) {
    isps_[i] = std::make_unique<Isp>(i, params_, fed_->public_key_for(i),
                                     seed * 0x2545F4914F6CDD1DULL + i);
    const net::HostId h = net_.add_host(
        net::isp_domain(i),
        [this, i](const net::Datagram& d) { on_isp_datagram(i, d); });
    ZMAIL_ASSERT(h == i);
  }
  for (std::size_t b = 0; b < n_banks_; ++b) {
    const net::HostId h = net_.add_host(
        "bank" + std::to_string(b) + ".example",
        [this, b](const net::Datagram& d) { on_bank_datagram(b, d); });
    ZMAIL_ASSERT(h == bank_host(b));
  }
}

SendOutcome FederatedZmailSystem::send_email(const net::EmailAddress& from,
                                             const net::EmailAddress& to,
                                             std::string subject,
                                             std::string body) {
  std::size_t fi = 0, fu = 0, ti = 0, tu = 0;
  ZMAIL_ASSERT(net::decode_user_address(from, fi, fu) &&
               net::decode_user_address(to, ti, tu));
  const SendResult r = isps_.at(fi)->user_send(fu, ti, tu,
                                               net::make_email(from, to,
                                                               std::move(subject),
                                                               std::move(body)));
  pump_isp(fi);
  return SendOutcome::from(r);
}

bool FederatedZmailSystem::buy_epennies(const net::EmailAddress& user,
                                        EPenny n) {
  std::size_t i = 0, u = 0;
  if (!net::decode_user_address(user, i, u)) return false;
  const bool ok = isps_.at(i)->user_buy(u, n);
  pump_isp(i);
  return ok;
}

void FederatedZmailSystem::enable_bank_trading(sim::Duration poll) {
  sim_.schedule_every(poll, [this] {
    for (std::size_t i = 0; i < isps_.size(); ++i) {
      isps_[i]->maybe_trade_with_bank();
      pump_isp(i);
    }
    return true;
  });
}

void FederatedZmailSystem::start_snapshot() {
  auto requests = fed_->start_snapshot();
  if (requests.empty()) return;
  const sim::SimTime deadline = sim_.now() + kQuiesceWindow;
  for (auto& [isp_index, wire] : requests) {
    net_.send(bank_host(fed_->home_bank(isp_index)), isp_index, kMsgRequest,
              std::move(wire));
    sim_.schedule_at(deadline, [this, i = isp_index] {
      if (isps_[i]->in_quiesce()) {
        isps_[i]->on_quiesce_timeout();
        pump_isp(i);
      }
    });
  }
}

void FederatedZmailSystem::run_for(sim::Duration d) {
  sim_.run(sim_.now() + d);
}

void FederatedZmailSystem::pump_isp(std::size_t i) {
  for (Outbound& o : isps_[i]->take_outbox()) {
    if (o.dest == Outbound::Dest::kBank) {
      net_.send(i, bank_host(fed_->home_bank(i)), std::move(o.type),
                std::move(o.payload));
      continue;
    }
    if (o.type == kMsgEmail) in_flight_paid_ += 1;
    net_.send(i, o.isp_index, std::move(o.type), std::move(o.payload));
  }
}

void FederatedZmailSystem::on_isp_datagram(std::size_t isp_index,
                                           const net::Datagram& d) {
  Isp& isp = *isps_.at(isp_index);
  if (d.type == kMsgEmail) {
    in_flight_paid_ -= 1;
    isp.on_email(d.from, d.payload);
  } else if (d.type == kMsgBuyReply) {
    isp.on_buyreply(d.payload);
  } else if (d.type == kMsgSellReply) {
    isp.on_sellreply(d.payload);
  } else if (d.type == kMsgRequest) {
    isp.on_request(d.payload);
  }
  pump_isp(isp_index);
}

void FederatedZmailSystem::on_bank_datagram(std::size_t bank_index,
                                            const net::Datagram& d) {
  const std::size_t g = d.from;
  ZMAIL_ASSERT_MSG(fed_->home_bank(g) == bank_index,
                   "ISP contacted a foreign bank");
  if (d.type == kMsgBuy) {
    crypto::Bytes reply = fed_->on_buy(g, d.payload);
    if (!reply.empty())
      net_.send(bank_host(bank_index), g, kMsgBuyReply, std::move(reply));
  } else if (d.type == kMsgSell) {
    crypto::Bytes reply = fed_->on_sell(g, d.payload);
    if (!reply.empty())
      net_.send(bank_host(bank_index), g, kMsgSellReply, std::move(reply));
  } else if (d.type == kMsgReply) {
    fed_->on_reply(g, d.payload);
  }
}

std::uint64_t FederatedZmailSystem::bank_host_bytes() const {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < n_banks_; ++b)
    total += net_.bytes_sent_to(bank_host(b));
  return total;
}

EPenny FederatedZmailSystem::total_epennies() const {
  EPenny total = in_flight_paid_;
  for (const auto& isp : isps_)
    total += isp->epennies_held() + isp->buffered_paid();
  return total;
}

bool FederatedZmailSystem::conservation_holds() const {
  const EPenny initial =
      static_cast<EPenny>(params_.n_isps) *
      (params_.initial_avail +
       static_cast<EPenny>(params_.users_per_isp) *
           params_.initial_user_balance);
  const EPenny outstanding = fed_->metrics().epennies_minted -
                             fed_->metrics().epennies_burned;
  return total_epennies() == initial + outstanding;
}

}  // namespace zmail::core
