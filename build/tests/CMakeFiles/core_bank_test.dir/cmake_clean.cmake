file(REMOVE_RECURSE
  "CMakeFiles/core_bank_test.dir/core_bank_test.cpp.o"
  "CMakeFiles/core_bank_test.dir/core_bank_test.cpp.o.d"
  "core_bank_test"
  "core_bank_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_bank_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
