file(REMOVE_RECURSE
  "CMakeFiles/core_ap_spec_test.dir/core_ap_spec_test.cpp.o"
  "CMakeFiles/core_ap_spec_test.dir/core_ap_spec_test.cpp.o.d"
  "core_ap_spec_test"
  "core_ap_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_ap_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
