file(REMOVE_RECURSE
  "CMakeFiles/crypto_primes_test.dir/crypto_primes_test.cpp.o"
  "CMakeFiles/crypto_primes_test.dir/crypto_primes_test.cpp.o.d"
  "crypto_primes_test"
  "crypto_primes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_primes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
