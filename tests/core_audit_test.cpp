#include "core/audit.hpp"

#include <gtest/gtest.h>

#include "core/system.hpp"

namespace zmail::core {
namespace {

net::EmailAddress user(std::size_t i, std::size_t u) {
  return net::make_user_address(i, u);
}

ZmailParams params2() {
  ZmailParams p;
  p.n_isps = 2;
  p.users_per_isp = 3;
  p.initial_user_balance = 20;
  p.minavail = 50;
  p.maxavail = 200;
  p.initial_avail = 100;
  return p;
}

TEST(AuditJournal, RecordsAndCounts) {
  AuditJournal j;
  j.record({AuditKind::kMint, 0, 1, 0, 100});
  j.record({AuditKind::kBurn, 0, 1, 0, 30});
  j.record({AuditKind::kMint, 1, 2, 0, 50});
  EXPECT_EQ(j.size(), 3u);
  EXPECT_EQ(j.count(AuditKind::kMint), 2u);
  EXPECT_EQ(j.count(AuditKind::kBurn), 1u);
  EXPECT_EQ(j.count(AuditKind::kSettlement), 0u);
  EXPECT_EQ(j.net_minted(), 120);
}

TEST(AuditJournal, SettlementVolumeIsAbsolute) {
  AuditJournal j;
  j.record({AuditKind::kSettlement, 0, 0, 1, 10});
  j.record({AuditKind::kSettlement, 0, 1, 0, -4});
  EXPECT_EQ(j.settlement_volume(), 14);
}

TEST(AuditJournal, TextRendering) {
  AuditJournal j;
  j.record({AuditKind::kViolationFlagged, 3, 1, 2, -5});
  const std::string text = j.text();
  EXPECT_NE(text.find("violation"), std::string::npos);
  EXPECT_NE(text.find("seq 3"), std::string::npos);
  EXPECT_NE(text.find("a=1"), std::string::npos);
  EXPECT_NE(text.find("amount=-5"), std::string::npos);
}

TEST(AuditKindNames, AllNamed) {
  EXPECT_STREQ(audit_kind_name(AuditKind::kMint), "mint");
  EXPECT_STREQ(audit_kind_name(AuditKind::kRoundCompleted),
               "round-completed");
  EXPECT_STREQ(audit_kind_name(AuditKind::kStaleReport), "stale-report");
}

class BankAuditTest : public ::testing::Test {
 protected:
  BankAuditTest() : sys_(params2(), 61) {
    sys_.bank().attach_journal(&journal_);
  }
  AuditJournal journal_;
  ZmailSystem sys_;
};

TEST_F(BankAuditTest, SnapshotRoundLeavesAFullTrail) {
  sys_.send_email(user(0, 0), user(1, 0), "s", "b");
  sys_.run_for(sim::kHour);
  sys_.start_snapshot();
  sys_.run_for(30 * sim::kMinute);

  EXPECT_EQ(journal_.count(AuditKind::kRoundStarted), 1u);
  EXPECT_EQ(journal_.count(AuditKind::kReportReceived), 2u);
  EXPECT_EQ(journal_.count(AuditKind::kRoundCompleted), 1u);
  EXPECT_EQ(journal_.count(AuditKind::kSettlement), 1u);
  EXPECT_EQ(journal_.count(AuditKind::kViolationFlagged), 0u);
  EXPECT_EQ(journal_.settlement_volume(), 1);
}

TEST_F(BankAuditTest, MintAndBurnRederiveOutstandingSupply) {
  sys_.enable_bank_trading(sim::kMinute);
  // Deplete below minavail to force a mint, then inflate above maxavail to
  // force a burn.
  sys_.buy_epennies(user(0, 0), 60);  // avail 100 -> 40 < 50
  sys_.run_for(10 * sim::kMinute);
  sys_.isp(1).set_avail(500);  // > 200: will sell 300 back
  sys_.run_for(10 * sim::kMinute);

  EXPECT_GE(journal_.count(AuditKind::kMint), 1u);
  EXPECT_GE(journal_.count(AuditKind::kBurn), 1u);
  // The journal alone reproduces the bank's supply accounting.
  EXPECT_EQ(journal_.net_minted(), sys_.bank().epennies_outstanding());
}

TEST_F(BankAuditTest, ViolationsAreJournaled) {
  sys_.isp(0).set_misbehavior(Isp::Misbehavior::kFreeRide);
  for (int i = 0; i < 3; ++i) sys_.send_email(user(0, 0), user(1, 0), "s", "b");
  sys_.run_for(sim::kHour);
  sys_.start_snapshot();
  sys_.run_for(30 * sim::kMinute);
  ASSERT_EQ(journal_.count(AuditKind::kViolationFlagged), 1u);
  for (const auto& e : journal_.events()) {
    if (e.kind != AuditKind::kViolationFlagged) continue;
    EXPECT_EQ(e.a, 0u);
    EXPECT_EQ(e.b, 1u);
    EXPECT_EQ(e.amount, -3);
  }
  // Disputed pair: no settlement recorded.
  EXPECT_EQ(journal_.count(AuditKind::kSettlement), 0u);
}

TEST_F(BankAuditTest, DetachingStopsRecording) {
  sys_.bank().attach_journal(nullptr);
  sys_.start_snapshot();
  sys_.run_for(30 * sim::kMinute);
  EXPECT_EQ(journal_.size(), 0u);
}

}  // namespace
}  // namespace zmail::core
