#include "core/obs.hpp"

#include "core/bank.hpp"
#include "core/isp.hpp"
#include "telemetry/export.hpp"
#include "telemetry/probes.hpp"
#include "trace/analyze.hpp"
#include "trace/trace.hpp"
#include "util/log.hpp"

namespace zmail::obs {

const char* schema_name(Schema v) noexcept {
  switch (v) {
    case Schema::kV1: return "zmail-obs-v1";
    case Schema::kV2: return "zmail-obs-v2";
    case Schema::kV3: return "zmail-obs-v3";
  }
  return "zmail-obs-v1";
}

namespace {

// The kV3 telemetry sections, shared by every facade's snapshot: merged
// deterministic series, engine series, and the default probe rules
// evaluated over the run (without re-logging transitions the live run
// already logged).
void append_timeseries(
    json::Value& j,
    const std::vector<const telemetry::TelemetryRegistry*>& regs,
    double endowment_epennies) {
  if (regs.empty()) return;
  telemetry::DeriveSpec spec;
  spec.endowment_epennies = endowment_epennies;
  const std::vector<telemetry::Series> merged =
      telemetry::merge_series(regs, spec);
  j["timeseries"] = telemetry::timeseries_json(merged, /*engine=*/false);
  j["timeseries_engine"] = telemetry::timeseries_json(merged, /*engine=*/true);
  telemetry::ProbeEngine probes;
  for (telemetry::ProbeRule& r : telemetry::default_rules())
    probes.add_rule(std::move(r));
  j["probes"] =
      telemetry::to_json(probes.evaluate(merged, /*log_transitions=*/false));
}

}  // namespace

json::Value to_json(const core::IspMetrics& m, Schema v) {
  json::Value j = json::Value::object();
  j["emails_sent_local"] = m.emails_sent_local;
  j["emails_sent_compliant"] = m.emails_sent_compliant;
  j["emails_sent_noncompliant"] = m.emails_sent_noncompliant;
  j["emails_received_compliant"] = m.emails_received_compliant;
  j["emails_received_noncompliant"] = m.emails_received_noncompliant;
  j["emails_delivered"] = m.emails_delivered;
  j["emails_segregated"] = m.emails_segregated;
  j["emails_discarded"] = m.emails_discarded;
  j["emails_filtered_out"] = m.emails_filtered_out;
  j["refused_no_balance"] = m.refused_no_balance;
  j["refused_daily_limit"] = m.refused_daily_limit;
  j["emails_buffered_during_quiesce"] = m.emails_buffered_during_quiesce;
  j["snapshots_answered"] = m.snapshots_answered;
  j["zombie_warnings_sent"] = m.zombie_warnings_sent;
  j["acks_generated"] = m.acks_generated;
  j["acks_received"] = m.acks_received;
  j["bank_buys_attempted"] = m.bank_buys_attempted;
  j["bank_buys_accepted"] = m.bank_buys_accepted;
  j["bank_sells"] = m.bank_sells;
  j["bad_nonce_replies"] = m.bad_nonce_replies;
  j["bad_envelopes"] = m.bad_envelopes;
  j["stale_requests"] = m.stale_requests;
  if (v != Schema::kV1) {
    // PR3 fault-recovery counters, folded into the snapshot from v2 on.
    j["bank_retries"] = m.bank_retries;
    j["report_retries"] = m.report_retries;
    j["emails_retransmitted"] = m.emails_retransmitted;
    j["emails_refunded"] = m.emails_refunded;
    j["emails_shed"] = m.emails_shed;
    j["duplicate_emails_dropped"] = m.duplicate_emails_dropped;
  }
  return j;
}

json::Value to_json(const core::BankMetrics& m, Schema v) {
  json::Value j = json::Value::object();
  j["buys_received"] = m.buys_received;
  j["buys_accepted"] = m.buys_accepted;
  j["buys_rejected"] = m.buys_rejected;
  j["sells_received"] = m.sells_received;
  j["snapshot_rounds"] = m.snapshot_rounds;
  j["credit_reports_received"] = m.credit_reports_received;
  j["inconsistent_pairs_found"] = m.inconsistent_pairs_found;
  j["bad_envelopes"] = m.bad_envelopes;
  j["stale_reports"] = m.stale_reports;
  if (v != Schema::kV1) {
    // Bank idempotency-shield counters (duplicate/stale trade absorption).
    j["duplicate_buys"] = m.duplicate_buys;
    j["duplicate_sells"] = m.duplicate_sells;
    j["stale_trades"] = m.stale_trades;
    j["snapshot_rerequests"] = m.snapshot_rerequests;
  }
  j["epennies_minted"] = static_cast<std::int64_t>(m.epennies_minted);
  j["epennies_burned"] = static_cast<std::int64_t>(m.epennies_burned);
  j["settlement_transfers"] = m.settlement_transfers;
  j["settlement_bytes"] = m.settlement_bytes;
  return j;
}

json::Value to_json(const core::LegacyHostStats& s) {
  json::Value j = json::Value::object();
  j["emails_sent"] = s.emails_sent;
  j["emails_received"] = s.emails_received;
  j["emails_received_spam"] = s.emails_received_spam;
  return j;
}

json::Value to_json(const OnlineStats& s) {
  json::Value j = json::Value::object();
  j["count"] = s.count();
  j["mean"] = s.mean();
  j["stddev"] = s.stddev();
  j["min"] = s.min();
  j["max"] = s.max();
  j["sum"] = s.sum();
  return j;
}

json::Value to_json(const Histogram& h) {
  json::Value j = json::Value::object();
  j["lo"] = h.lo();
  j["hi"] = h.hi();
  j["total"] = h.total();
  j["p50"] = h.percentile(50);
  j["p90"] = h.percentile(90);
  j["p99"] = h.percentile(99);
  json::Value& counts = j["counts"];
  counts = json::Value::array();
  for (std::uint64_t c : h.buckets()) counts.push_back(c);
  return j;
}

json::Value to_json(const Sample& s) {
  json::Value j = json::Value::object();
  j["count"] = static_cast<std::uint64_t>(s.size());
  if (!s.empty()) {
    j["mean"] = s.mean();
    j["min"] = s.min();
    j["max"] = s.max();
    j["p50"] = s.percentile(50);
    j["p90"] = s.percentile(90);
    j["p99"] = s.percentile(99);
  }
  return j;
}

json::Value snapshot(const core::ZmailSystem& sys, Schema v) {
  const core::ZmailParams& p = sys.params();
  json::Value j = json::Value::object();
  j["sim_time"] = static_cast<std::int64_t>(sys.now());
  j["n_isps"] = static_cast<std::uint64_t>(p.n_isps);
  j["users_per_isp"] = static_cast<std::uint64_t>(p.users_per_isp);
  j["compliant_isps"] = static_cast<std::uint64_t>(p.compliant_count());

  j["isp_totals"] = to_json(sys.total_isp_metrics(), v);
  j["legacy_totals"] = to_json(sys.total_legacy_stats());
  j["bank"] = to_json(sys.bank().metrics(), v);
  j["delivery_latency_seconds"] = to_json(sys.delivery_latency());

  json::Value& net = j["network"];
  net["datagrams_sent"] = sys.network().datagrams_sent();
  net["bytes_sent"] = sys.network().bytes_sent();
  json::Value& smtp = net["smtp_bytes_received"];
  smtp = json::Value::array();
  for (std::size_t i = 0; i < p.n_isps; ++i)
    smtp.push_back(sys.smtp_bytes_received(i));

  json::Value& per_isp = j["per_isp"];
  per_isp = json::Value::array();
  for (std::size_t i = 0; i < p.n_isps; ++i) {
    json::Value e = json::Value::object();
    e["isp"] = static_cast<std::uint64_t>(i);
    e["compliant"] = p.is_compliant(i);
    if (p.is_compliant(i))
      e["metrics"] = to_json(sys.isp(i).metrics(), v);
    else
      e["legacy"] = to_json(sys.legacy_stats(i));
    per_isp.push_back(std::move(e));
  }

  json::Value& cons = j["conservation"];
  cons["total_epennies"] = static_cast<std::int64_t>(sys.total_epennies());
  cons["epennies_in_flight"] =
      static_cast<std::int64_t>(sys.epennies_in_flight());
  cons["holds"] = sys.conservation_holds();

  if (v != Schema::kV1) {
    const core::ZmailSystem::StoreTotals st = sys.store_totals();
    json::Value& store = j["store"];
    store["checkpoints"] = st.checkpoints;
    store["snapshot_bytes"] = st.snapshot_bytes;
    store["wal_records_appended"] = st.wal_records_appended;
    store["wal_records_truncated"] = st.wal_records_truncated;
    store["wal_bytes_appended"] = st.wal_bytes_appended;
    store["wal_syncs"] = st.wal_syncs;
    store["wal_fsyncs"] = st.wal_fsyncs;
    store["state_recoveries"] = sys.state_recoveries();
    store["pending_transfers"] =
        static_cast<std::uint64_t>(sys.pending_transfers());
    // Calendar-queue far-bucket rebases: each one re-sorts the overflow
    // heap into the wheel, so a growing count under a fixed workload is a
    // queue-tuning regression signal.
    j["calendar_rebase_count"] = sys.simulator().calendar_rebases();

    // Flight-recorder sections only when the recorder is live; a v2
    // snapshot of an untraced run omits them rather than emitting zeros.
    if (trace::enabled()) {
      j["trace_breakdown"] =
          trace::breakdown_to_json(trace::breakdown(trace::collect()));
      j["profiles"] = trace::profiles_to_json();
    }
  }
  if (v == Schema::kV3 && sys.telemetry())
    append_timeseries(j, {sys.telemetry()},
                      static_cast<double>(sys.initial_endowment_owned()));
  return j;
}

json::Value snapshot(const core::ShardedSystem& sys, Schema v) {
  // Single shard == the legacy whole world: defer so the output is
  // byte-identical to the pre-sharding snapshot (same code path).
  if (!sys.sharded()) return snapshot(sys.shard(0), v);

  const core::ZmailParams& p = sys.params();
  json::Value j = json::Value::object();
  j["sim_time"] = static_cast<std::int64_t>(sys.now());
  j["n_isps"] = static_cast<std::uint64_t>(p.n_isps);
  j["users_per_isp"] = static_cast<std::uint64_t>(p.users_per_isp);
  j["compliant_isps"] = static_cast<std::uint64_t>(p.compliant_count());

  j["isp_totals"] = to_json(sys.total_isp_metrics(), v);
  j["legacy_totals"] = to_json(sys.total_legacy_stats());
  j["bank"] = to_json(sys.bank().metrics(), v);
  // Merged and sorted before the float reductions run, so which shard
  // observed which email cannot change the exported quantiles or mean.
  j["delivery_latency_seconds"] = to_json(sys.merged_delivery_latency());

  json::Value& net = j["network"];
  net["datagrams_sent"] = sys.datagrams_sent();
  net["bytes_sent"] = sys.bytes_sent();
  json::Value& smtp = net["smtp_bytes_received"];
  smtp = json::Value::array();
  for (std::size_t i = 0; i < p.n_isps; ++i)
    smtp.push_back(sys.smtp_bytes_received(i));

  json::Value& per_isp = j["per_isp"];
  per_isp = json::Value::array();
  for (std::size_t i = 0; i < p.n_isps; ++i) {
    json::Value e = json::Value::object();
    e["isp"] = static_cast<std::uint64_t>(i);
    e["compliant"] = p.is_compliant(i);
    if (p.is_compliant(i))
      e["metrics"] = to_json(sys.isp(i).metrics(), v);
    else
      e["legacy"] = to_json(sys.shard(sys.owner_shard(i)).legacy_stats(i));
    per_isp.push_back(std::move(e));
  }

  json::Value& cons = j["conservation"];
  cons["total_epennies"] = static_cast<std::int64_t>(sys.total_epennies());
  cons["epennies_in_flight"] =
      static_cast<std::int64_t>(sys.epennies_in_flight());
  cons["holds"] = sys.conservation_holds();

  if (v != Schema::kV1) {
    const core::ZmailSystem::StoreTotals st = sys.store_totals();
    json::Value& store = j["store"];
    store["checkpoints"] = st.checkpoints;
    store["snapshot_bytes"] = st.snapshot_bytes;
    store["wal_records_appended"] = st.wal_records_appended;
    store["wal_records_truncated"] = st.wal_records_truncated;
    store["wal_bytes_appended"] = st.wal_bytes_appended;
    store["wal_syncs"] = st.wal_syncs;
    store["wal_fsyncs"] = st.wal_fsyncs;
    store["state_recoveries"] = sys.state_recoveries();
    store["pending_transfers"] =
        static_cast<std::uint64_t>(sys.pending_transfers());
    j["calendar_rebase_count"] = sys.calendar_rebases();

    // Engine execution counters.  windows/cross_shard_msgs describe *how*
    // the run executed, not the world: they vary with the partition, so
    // they live in their own section and never feed bit-identity diffs.
    if (const sim::ShardedStats* es = sys.engine_stats()) {
      json::Value& eng = j["engine"];
      eng["shards"] = static_cast<std::uint64_t>(sys.shard_count());
      eng["windows"] = es->windows;
      eng["cross_shard_msgs"] = es->cross_shard_msgs;
      eng["mailbox_overflows"] = es->mailbox_overflows;
      eng["horizon_clamps"] = sys.horizon_clamps();
      eng["max_window_events"] = es->max_window_events;
      eng["barrier_audit_checks"] = sys.barrier_audit().checks;
      eng["barrier_audit_failures"] = sys.barrier_audit().failures;
    }

    if (trace::enabled()) {
      j["trace_breakdown"] =
          trace::breakdown_to_json(trace::breakdown(trace::collect()));
      j["profiles"] = trace::profiles_to_json();
    }
  }
  if (v == Schema::kV3)
    append_timeseries(j, sys.telemetry_registries(),
                      static_cast<double>(sys.initial_endowment()));
  return j;
}

json::Value snapshot(const core::FederatedZmailSystem& sys, Schema v) {
  const core::ZmailParams& p = sys.params();
  const core::BankFederation& fed = sys.federation();
  json::Value j = json::Value::object();
  j["sim_time"] = static_cast<std::int64_t>(sys.now());
  j["n_isps"] = static_cast<std::uint64_t>(p.n_isps);
  j["users_per_isp"] = static_cast<std::uint64_t>(p.users_per_isp);
  j["n_banks"] = static_cast<std::uint64_t>(sys.bank_count());

  j["isp_totals"] = to_json(sys.total_isp_metrics(), v);

  const core::FederationMetrics m = fed.metrics();
  json::Value& f = j["federation"];
  f["rounds_completed"] = m.rounds_completed;
  f["requests_sent"] = m.requests_sent;
  f["reports_received"] = m.reports_received;
  f["interbank_messages"] = m.interbank_messages;
  f["interbank_bytes"] = m.interbank_bytes;
  f["settlements_intra_bank"] = m.settlements_intra_bank;
  f["settlements_cross_bank"] = m.settlements_cross_bank;
  f["clearing_transfers"] = m.clearing_transfers;
  f["violations_found"] = m.violations_found;
  f["epennies_minted"] = static_cast<std::int64_t>(m.epennies_minted);
  f["epennies_burned"] = static_cast<std::int64_t>(m.epennies_burned);
  if (v != Schema::kV1) {
    f["clearing_messages"] = m.clearing_messages;
    f["interbank_acks"] = m.interbank_acks;
    f["interbank_retries"] = m.interbank_retries;
    f["duplicate_trades"] = m.duplicate_trades;
    f["stale_trades"] = m.stale_trades;
    f["duplicate_interbank"] = m.duplicate_interbank;
    f["stale_interbank"] = m.stale_interbank;
    f["bad_envelopes"] = m.bad_envelopes;
    f["snapshot_rerequests"] = m.snapshot_rerequests;
  }
  json::Value& banks = f["per_bank"];
  banks = json::Value::array();
  for (std::size_t b = 0; b < sys.bank_count(); ++b) {
    json::Value e = json::Value::object();
    e["bank"] = static_cast<std::uint64_t>(b);
    e["seq"] = fed.seq(b);
    e["round_open"] = fed.round_open(b);
    e["clearing_position_micros"] =
        static_cast<std::int64_t>(fed.clearing_position(b).micros());
    banks.push_back(std::move(e));
  }

  json::Value& net = j["network"];
  net["datagrams_sent"] = sys.network().datagrams_sent();
  net["bytes_sent"] = sys.network().bytes_sent();
  net["bank_host_bytes"] = sys.bank_host_bytes();

  json::Value& cons = j["conservation"];
  cons["total_epennies"] = static_cast<std::int64_t>(sys.total_epennies());
  cons["holds"] = sys.conservation_holds();

  if (v != Schema::kV1) {
    const core::ZmailSystem::StoreTotals st = sys.store_totals();
    json::Value& store = j["store"];
    store["checkpoints"] = st.checkpoints;
    store["snapshot_bytes"] = st.snapshot_bytes;
    store["wal_records_appended"] = st.wal_records_appended;
    store["wal_records_truncated"] = st.wal_records_truncated;
    store["wal_bytes_appended"] = st.wal_bytes_appended;
    store["wal_syncs"] = st.wal_syncs;
    store["wal_fsyncs"] = st.wal_fsyncs;
    store["state_recoveries"] = sys.state_recoveries();
  }
  if (v == Schema::kV3 && sys.telemetry()) {
    // Federated endowment: every ISP is compliant in this facade.
    const double endowment =
        static_cast<double>(p.n_isps) *
        (static_cast<double>(p.initial_avail) +
         static_cast<double>(p.users_per_isp) *
             static_cast<double>(p.initial_user_balance));
    append_timeseries(j, {sys.telemetry()}, endowment);
  }
  return j;
}

bool MetricsRegistry::add(std::string name, Provider provider) {
  for (const auto& entry : providers_) {
    if (entry.first == name) {
      ZMAIL_LOG(LogLevel::kError, "obs",
                "duplicate metric name \"%s\" rejected: first registration "
                "wins, this provider is dropped",
                name.c_str());
      return false;
    }
  }
  providers_.emplace_back(std::move(name), std::move(provider));
  return true;
}

bool MetricsRegistry::add_system(std::string name,
                                 const core::ZmailSystem& sys) {
  // Captures `this` so the schema chosen via set_schema() — possibly after
  // registration — governs the export.
  return add(std::move(name),
             [this, &sys] { return zmail::obs::snapshot(sys, schema_); });
}

bool MetricsRegistry::add_system(std::string name,
                                 const core::ShardedSystem& sys) {
  return add(std::move(name),
             [this, &sys] { return zmail::obs::snapshot(sys, schema_); });
}

bool MetricsRegistry::add_system(std::string name,
                                 const core::FederatedZmailSystem& sys) {
  return add(std::move(name),
             [this, &sys] { return zmail::obs::snapshot(sys, schema_); });
}

json::Value MetricsRegistry::snapshot() const {
  json::Value j = json::Value::object();
  j["schema"] = schema_name(schema_);
  for (const auto& [name, provider] : providers_) j[name] = provider();
  return j;
}

bool MetricsRegistry::write_file(const std::string& path,
                                 std::string* error) const {
  return json::write_file(path, snapshot(), error);
}

}  // namespace zmail::obs
