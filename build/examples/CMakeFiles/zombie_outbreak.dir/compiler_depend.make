# Empty compiler generated dependencies file for zombie_outbreak.
# This may be replaced when dependencies are built.
