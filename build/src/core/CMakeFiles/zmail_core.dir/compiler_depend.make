# Empty compiler generated dependencies file for zmail_core.
# This may be replaced when dependencies are built.
