#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/assert.hpp"

namespace zmail::json {

namespace {

void escape_into(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 passes through byte-for-byte
        }
    }
  }
  out += '"';
}

void number_into(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; null is the least-surprising encoding.
    out += "null";
    return;
  }
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);  // shortest form
  out.append(buf, r.ptr);
  // Ensure a double stays a double on re-parse.
  if (out.find_first_of(".eE", out.size() - static_cast<std::size_t>(
                                                r.ptr - buf)) ==
      std::string::npos)
    out += ".0";
}

}  // namespace

bool Value::as_bool() const {
  ZMAIL_ASSERT(kind_ == Kind::kBool);
  return bool_;
}

std::int64_t Value::as_int64() const {
  if (kind_ == Kind::kUint) return static_cast<std::int64_t>(uint_);
  if (kind_ == Kind::kDouble) return static_cast<std::int64_t>(double_);
  ZMAIL_ASSERT(kind_ == Kind::kInt);
  return int_;
}

std::uint64_t Value::as_uint64() const {
  if (kind_ == Kind::kInt) return static_cast<std::uint64_t>(int_);
  if (kind_ == Kind::kDouble) return static_cast<std::uint64_t>(double_);
  ZMAIL_ASSERT(kind_ == Kind::kUint);
  return uint_;
}

double Value::as_double() const {
  switch (kind_) {
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kUint: return static_cast<double>(uint_);
    case Kind::kDouble: return double_;
    default: ZMAIL_ASSERT_MSG(false, "not a number"); return 0.0;
  }
}

const std::string& Value::as_string() const {
  ZMAIL_ASSERT(kind_ == Kind::kString);
  return string_;
}

void Value::push_back(Value v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  ZMAIL_ASSERT(kind_ == Kind::kArray);
  array_.push_back(std::move(v));
}

std::size_t Value::size() const noexcept {
  return kind_ == Kind::kObject ? object_.size() : array_.size();
}

const Value& Value::at(std::size_t i) const {
  ZMAIL_ASSERT(kind_ == Kind::kArray);
  return array_.at(i);
}

Value& Value::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  ZMAIL_ASSERT(kind_ == Kind::kObject);
  for (auto& [k, v] : object_)
    if (k == key) return v;
  object_.emplace_back(key, Value());
  return object_.back().second;
}

const Value* Value::find(const std::string& key) const noexcept {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const std::vector<std::pair<std::string, Value>>& Value::items() const {
  ZMAIL_ASSERT(kind_ == Kind::kObject);
  return object_;
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent > 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kInt: {
      char buf[24];
      const auto r = std::to_chars(buf, buf + sizeof buf, int_);
      out.append(buf, r.ptr);
      break;
    }
    case Kind::kUint: {
      char buf[24];
      const auto r = std::to_chars(buf, buf + sizeof buf, uint_);
      out.append(buf, r.ptr);
      break;
    }
    case Kind::kDouble: number_into(out, double_); break;
    case Kind::kString: escape_into(out, string_); break;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        newline_pad(depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        newline_pad(depth + 1);
        escape_into(out, object_[i].first);
        out += pretty ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

// --- Parser ----------------------------------------------------------------

namespace {

struct Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;
  static constexpr int kMaxDepth = 128;

  bool fail(const std::string& msg) {
    if (error.empty())
      error = "offset " + std::to_string(pos) + ": " + msg;
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    switch (c) {
      case '{': return parse_object(out, depth);
      case '[': return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Value(std::move(s));
        return true;
      }
      case 't':
        if (text.compare(pos, 4, "true") == 0) {
          pos += 4;
          out = Value(true);
          return true;
        }
        return fail("bad literal");
      case 'f':
        if (text.compare(pos, 5, "false") == 0) {
          pos += 5;
          out = Value(false);
          return true;
        }
        return fail("bad literal");
      case 'n':
        if (text.compare(pos, 4, "null") == 0) {
          pos += 4;
          out = Value();
          return true;
        }
        return fail("bad literal");
      default: return parse_number(out);
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        ++pos;
        continue;
      }
      if (++pos >= text.size()) return fail("dangling escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos + static_cast<std::size_t>(i)];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              cp |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          pos += 4;
          // Encode the code point as UTF-8 (surrogate pairs not combined —
          // the writer never emits them for this codebase's ASCII keys).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    bool is_double = false;
    if (pos < text.size() && text[pos] == '.') {
      is_double = true;
      ++pos;
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      is_double = true;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos == start || (text[start] == '-' && pos == start + 1))
      return fail("bad number");
    const char* b = text.data() + start;
    const char* e = text.data() + pos;
    if (!is_double) {
      if (text[start] == '-') {
        std::int64_t v = 0;
        if (std::from_chars(b, e, v).ec == std::errc()) {
          out = Value(static_cast<long long>(v));
          return true;
        }
      } else {
        std::uint64_t v = 0;
        if (std::from_chars(b, e, v).ec == std::errc()) {
          out = Value(static_cast<unsigned long long>(v));
          return true;
        }
      }
      // Integer overflow: fall through to double.
    }
    double d = 0.0;
    const auto r = std::from_chars(b, e, d);
    if (r.ec != std::errc() && r.ec != std::errc::result_out_of_range)
      return fail("bad number");
    out = Value(d);
    return true;
  }

  bool parse_array(Value& out, int depth) {
    ++pos;  // '['
    out = Value::array();
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      out.push_back(std::move(v));
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume(']');
    }
  }

  bool parse_object(Value& out, int depth) {
    ++pos;  // '{'
    out = Value::object();
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      out[key] = std::move(v);
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      return consume('}');
    }
  }
};

}  // namespace

std::optional<Value> parse(const std::string& text, std::string* error) {
  Parser p{text};
  Value v;
  if (!p.parse_value(v, 0)) {
    if (error) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    p.fail("trailing characters after document");
    if (error) *error = p.error;
    return std::nullopt;
  }
  return v;
}

bool write_file(const std::string& path, const Value& v, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    if (error) *error = "cannot open " + path + ": " + std::strerror(errno);
    return false;
  }
  const std::string text = v.dump(2);
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                  std::fputc('\n', f) != EOF;
  const bool closed = std::fclose(f) == 0;
  if (!(ok && closed)) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace zmail::json
