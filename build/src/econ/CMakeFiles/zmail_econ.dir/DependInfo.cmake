
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/econ/adoption.cpp" "src/econ/CMakeFiles/zmail_econ.dir/adoption.cpp.o" "gcc" "src/econ/CMakeFiles/zmail_econ.dir/adoption.cpp.o.d"
  "/root/repo/src/econ/isp_cost.cpp" "src/econ/CMakeFiles/zmail_econ.dir/isp_cost.cpp.o" "gcc" "src/econ/CMakeFiles/zmail_econ.dir/isp_cost.cpp.o.d"
  "/root/repo/src/econ/legal.cpp" "src/econ/CMakeFiles/zmail_econ.dir/legal.cpp.o" "gcc" "src/econ/CMakeFiles/zmail_econ.dir/legal.cpp.o.d"
  "/root/repo/src/econ/spammer.cpp" "src/econ/CMakeFiles/zmail_econ.dir/spammer.cpp.o" "gcc" "src/econ/CMakeFiles/zmail_econ.dir/spammer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/zmail_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
