// trace_report: offline reader for flight-recorder captures.
//
//   ./trace_report run.trace                per-stage latency breakdown
//   ./trace_report run.json --chains        plus one line per message chain
//   ./trace_report run.trace --validate     exit nonzero on span violations
//
// Reads either export format (compact binary or Chrome trace-event JSON;
// the loader sniffs the magic), reconstructs spans and per-message causal
// chains, and prints the stamp-buy / transit / classify / settle latency
// table that EXPERIMENTS.md quotes.  --validate runs the same span
// invariants as the CI trace-smoke step: every span closed (crash- and
// loss-forgiveness applied), end >= begin, child events inside the root
// message interval, and exactly one root mint per id.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "trace/analyze.hpp"
#include "trace/export.hpp"
#include "util/table.hpp"

using namespace zmail;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s TRACE_FILE [--validate] [--chains] [--logs]\n"
               "  TRACE_FILE  flight-recorder capture, binary or chrome\n"
               "              JSON (as written by --trace PATH)\n"
               "  --validate  check span invariants; exit 1 on violations\n"
               "  --chains    print one line per traced message chain\n"
               "  --logs      print the captured log mirror\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  bool validate = false, chains = false, logs = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--validate") == 0) {
      validate = true;
    } else if (std::strcmp(a, "--chains") == 0) {
      chains = true;
    } else if (std::strcmp(a, "--logs") == 0) {
      logs = true;
    } else if (a[0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = a;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  std::vector<trace::TraceEvent> events;
  std::vector<trace::LogRecord> log_records;
  std::string err;
  if (!trace::load(path, &events, &log_records, &err)) {
    std::fprintf(stderr, "cannot load %s: %s\n", path.c_str(), err.c_str());
    return 2;
  }
  if (events.empty()) {
    std::fprintf(stderr, "%s: no trace events (empty capture?)\n",
                 path.c_str());
    return 2;
  }

  const auto spans = trace::build_spans(events);
  const auto chain_map = trace::build_chains(events);
  std::printf("%s: %zu events, %zu spans, %zu chains, %zu log records\n",
              path.c_str(), events.size(), spans.size(), chain_map.size(),
              log_records.size());

  const auto stages = trace::breakdown(events);
  if (!stages.empty()) {
    Table t({"stage", "count", "sim_mean_us", "sim_min_us", "sim_max_us",
             "sim_total_us", "wall_mean_us", "wall_total_us"});
    for (const auto& [name, s] : stages)
      t.add_row({name, Table::num(s.count), Table::num(s.mean_us(), 1),
                 Table::num(s.min_us), Table::num(s.max_us),
                 Table::num(s.total_us), Table::num(s.wall_mean_us(), 1),
                 Table::num(static_cast<double>(s.wall_total_ns) / 1000.0,
                            1)});
    t.print("per-stage latency (sim-time & wall-time)");
  }

  if (chains) {
    Table t({"id", "events", "transmits", "terminal", "closed", "lost"});
    for (const auto& [id, c] : chain_map) {
      char idbuf[24];
      std::snprintf(idbuf, sizeof idbuf, "0x%llx",
                    static_cast<unsigned long long>(id));
      t.add_row({idbuf, Table::num(static_cast<std::uint64_t>(c.events.size())),
                 Table::num(static_cast<std::uint64_t>(c.transmits)),
                 trace::ev_name(c.terminal), c.root_closed ? "yes" : "no",
                 c.lost ? "yes" : "no"});
    }
    t.print("message chains");
  }

  if (logs) {
    for (const auto& r : log_records)
      std::printf("[%lld us] %-8s %s\n",
                  static_cast<long long>(r.ev.sim_us), r.tag.c_str(),
                  r.text.c_str());
  }

  if (validate) {
    const trace::ValidationResult v = trace::validate(events);
    std::printf(
        "validate: %zu spans (%zu closed, %zu forgiven), %zu chains "
        "(%zu terminal): %s\n",
        v.spans_total, v.spans_closed, v.spans_forgiven, v.chains_total,
        v.chains_terminal, v.ok ? "ok" : "FAIL");
    for (const auto& p : v.problems)
      std::fprintf(stderr, "  violation: %s\n", p.c_str());
    if (!v.ok) return 1;
  }
  return 0;
}
