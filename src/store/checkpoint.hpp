// Per-party durability: WAL + snapshot + recovery orchestration.
//
// A Checkpointer owns one party's on-disk pair
//
//   <dir>/<party>.zwal    append-only command log (store/wal.hpp)
//   <dir>/<party>.zsnap   latest full-state snapshot (store/snapshot.hpp)
//
// and is deliberately generic: the party hands it opaque state blobs and
// replay callbacks, so this layer knows nothing about Bank/Isp internals
// and `zmail_store` stays below `zmail_core` in the link graph.
//
// Lifecycle:
//   open()        — open/create both files; scan + trim the WAL tail
//   wal()         — the sink the party logs commands to
//   checkpoint()  — atomically write a snapshot covering all logged
//                   commands, then truncate the WAL behind it
//   simulate_crash() — drop un-fsynced WAL buffer (models process death)
//   recover()     — load snapshot (if any), replay the WAL tail, report
//                   what happened; stops *cleanly* at a torn tail
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "crypto/bytes.hpp"
#include "store/snapshot.hpp"
#include "store/status.hpp"
#include "store/wal.hpp"

namespace zmail::store {

// Durability knobs for a simulation run.  Lives here (not core/config.hpp)
// so benches and tests can drive a Checkpointer without pulling in core.
struct StoreConfig {
  bool enabled = false;        // off ⇒ zero store objects, zero overhead
  std::string dir;             // directory for <party>.zwal/.zsnap files
  // Records per group commit: 1 = sync every append (strict durability);
  // N > 1 batches, trading the un-synced tail on crash for throughput.
  std::uint32_t group_commit_records = 1;
  bool fsync_data = true;      // issue fsync(2) barriers at sync points
  // Extra periodic checkpoint cadence in sim microseconds (0 = only at
  // protocol-driven boundaries: ISP quiesce flush, bank round close).
  std::int64_t checkpoint_interval_us = 0;
  bool checkpoint_at_snapshot = true;  // checkpoint at quiesce boundaries
};

struct RecoveryStats {
  bool snapshot_loaded = false;
  StoreStatus snapshot_status = StoreStatus::kNotFound;
  StoreStatus wal_status = StoreStatus::kNotFound;
  std::uint64_t wal_records_replayed = 0;
  Lsn recovered_lsn = 0;       // last applied LSN (0 = nothing)
  std::uint64_t snapshot_bytes = 0;
  std::uint64_t wal_bytes = 0;
};

class Checkpointer {
 public:
  struct Stats {
    std::uint64_t checkpoints = 0;
    std::uint64_t last_snapshot_bytes = 0;
    std::uint64_t wal_records_truncated = 0;
  };

  Checkpointer() = default;

  // Opens `<dir>/<party>.zwal` for appending (creating it if absent).  The
  // snapshot file is only touched by checkpoint()/recover().
  bool open(const StoreConfig& cfg, const std::string& party,
            std::string* error = nullptr);
  bool is_open() const { return wal_.is_open(); }

  WalWriter& wal() { return wal_; }
  const WalWriter& wal() const { return wal_; }

  // Writes a snapshot of `state` (one kStateSection blob, v1 layout)
  // covering every command logged so far, then truncates the WAL behind
  // it.  Single-threaded simulation makes snapshot+truncate atomic: both
  // happen within one event, and a modeled crash can only land between
  // events.
  bool checkpoint(const crypto::Bytes& state, std::uint64_t sim_time_us,
                  std::string* error = nullptr);

  // Same, but writes the party-provided section list as a v2 columnar
  // snapshot (kFeatureColumnarUserState set).  Used by ISPs, whose state
  // serializes as a scalar section plus whole Population columns.
  bool checkpoint_sections(std::vector<SnapshotSection> sections,
                           std::uint64_t sim_time_us,
                           std::string* error = nullptr);

  // Models process death: the un-synced WAL tail vanishes.
  void simulate_crash() { wal_.simulate_crash(); }

  // Rebuilds party state from disk.  `restore` installs a snapshot state
  // blob; `replay` applies one logged command.  Neither is called when the
  // corresponding file is absent (fresh party).  A torn/corrupt WAL tail
  // is not an error — replay simply stops at the last valid record, which
  // is exactly the crash contract.  Returns false only on unrecoverable
  // problems (unreadable snapshot, unknown snapshot version, WAL/snapshot
  // LSN mismatch).
  bool recover(const std::function<void(const crypto::Bytes&)>& restore,
               const std::function<void(std::uint8_t, const crypto::Bytes&)>& replay,
               RecoveryStats* stats = nullptr, std::string* error = nullptr);

  // Like recover(), but hands the restore callback a read-only mmap view
  // of the snapshot file instead of a copied state blob, so columnar
  // restores bulk-copy sections straight from the mapping.  `restore`
  // returns false if the snapshot contents are unusable (missing
  // sections, decode failure), which recover_view treats as fatal.
  bool recover_view(const std::function<bool(const SnapshotFileView&)>& restore,
                    const std::function<void(std::uint8_t, const crypto::Bytes&)>& replay,
                    RecoveryStats* stats = nullptr,
                    std::string* error = nullptr);

  const Stats& stats() const { return stats_; }
  const std::string& wal_path() const { return wal_path_; }
  const std::string& snapshot_path() const { return snap_path_; }

 private:
  // Stamps LSN coverage, writes the snapshot atomically, truncates the
  // WAL, and updates stats — shared by both checkpoint flavors.
  bool write_checkpoint(SnapshotData& snap, std::uint64_t sim_time_us,
                        std::string* error);
  // Replays the WAL tail from `replay_from` into `replay`; shared by both
  // recovery flavors.  Updates `st` and tolerates a torn tail.
  bool replay_wal_tail(
      Lsn replay_from,
      const std::function<void(std::uint8_t, const crypto::Bytes&)>& replay,
      RecoveryStats& st, std::string* error);

  StoreConfig cfg_;
  std::string wal_path_;
  std::string snap_path_;
  WalWriter wal_;
  Stats stats_;
  std::uint64_t records_at_last_ckpt_ = 0;
};

// Creates `dir` (and parents) if needed.  Returns false on failure.
bool ensure_dir(const std::string& dir, std::string* error = nullptr);

}  // namespace zmail::store
