#include "crypto/nonce.hpp"

#include "crypto/hmac.hpp"

namespace zmail::crypto {

void put_nonce(Bytes& b, const Nonce& n) {
  put_u64(b, n.counter);
  put_u64(b, n.prf);
}

Nonce get_nonce(ByteReader& r) {
  Nonce n;
  n.counter = r.get_u64();
  n.prf = r.get_u64();
  return n;
}

NonceGenerator::NonceGenerator(std::uint64_t secret) noexcept {
  put_u64(secret_, secret);
}

Nonce NonceGenerator::next() noexcept {
  Nonce n;
  n.counter = counter_++;
  Bytes msg;
  put_u64(msg, n.counter);
  const Digest d = hmac_sha256(secret_, msg);
  std::uint64_t prf = 0;
  for (int i = 0; i < 8; ++i) prf = (prf << 8) | d[static_cast<std::size_t>(i)];
  n.prf = prf;
  return n;
}

}  // namespace zmail::crypto
