#include "baselines/shred.hpp"

namespace zmail::baselines {

void ShredScheme::process(bool truth_spam) {
  ++stats_.messages;
  if (!truth_spam) return;
  ++stats_.spam_messages;
  if (!rng_.bernoulli(params_.report_prob)) return;

  // The receiver spends effort to trigger the payment (weakness 1 & 2).
  ++stats_.reports;
  stats_.receiver_human_seconds += params_.human_seconds_per_report;

  // One individually handled payment (weakness 4).
  ++stats_.ledger_operations;
  stats_.isp_handling_cost += params_.handling_cost_per_payment;

  if (params_.isp_colludes) {
    // Weakness 3: the ISP quietly refunds its spammer; deterrence vanishes
    // while the receiver's effort was still spent.
    return;
  }
  stats_.spammer_paid += params_.payment;
  stats_.isp_revenue += params_.payment;
}

Money ShredScheme::expected_spammer_cost_per_spam() const noexcept {
  if (params_.isp_colludes) return Money::zero();
  return params_.payment * params_.report_prob;
}

ShredParams vanquish_as_shred(const VanquishParams& p) noexcept {
  ShredParams out = p.base;
  out.report_prob = p.report_prob;
  // Escrowed bond: the claim is one click, cheaper than SHRED's report.
  out.human_seconds_per_report = 1.0;
  return out;
}

}  // namespace zmail::baselines
